package edisim

import (
	"fmt"
	"math"

	"edisim/internal/carbon"
	"edisim/internal/core"
	"edisim/internal/hw"
	"edisim/internal/report"
	"edisim/internal/tco"
)

// This file is the public face of the energy/carbon/price layers: the grid
// region catalog, the carbon accounting helpers, and the CarbonStudy
// workload that prices platform fleets across regions (see API.md's
// "Energy, carbon and price" section).

// Grid is one electricity-grid region: a region key (the grammar Scenario.
// Region and CarbonStudy.Regions accept), a human label and an average
// carbon intensity in gCO2e per kWh.
type Grid = carbon.Grid

// EnergyProfile is a platform's component-level energy catalog data (CPU
// TDP, memory and disk draw, PSU overhead, embodied carbon); platforms with
// a zero profile only support the calibrated linear power model.
type EnergyProfile = hw.EnergyProfile

// PowerModel maps CPU utilization to wall draw; PowerModelKind names one
// (see EnergyModelNames and Platform.PowerModelFor).
type (
	PowerModel     = hw.PowerModel
	PowerModelKind = hw.PowerModelKind
)

// The named power models: the paper-calibrated linear interpolation (the
// default) and the component-level TDP curve.
const (
	PowerLinear   = hw.PowerLinear
	PowerTDPCurve = hw.PowerTDPCurve
)

// DefaultPUE is the facility power-usage-effectiveness the carbon layer
// assumes when a region is selected (a modern, efficient facility).
const DefaultPUE = carbon.DefaultPUE

// Regions returns the grid-region catalog in registration order.
func Regions() []Grid { return carbon.Regions() }

// RegionNames lists the valid region keys in registration order.
func RegionNames() []string { return carbon.RegionNames() }

// LookupRegion resolves a region key (case/whitespace tolerant).
func LookupRegion(name string) (Grid, bool) { return carbon.Lookup(name) }

// RegionElectricityPrice reports a region's industrial electricity price in
// USD/kWh.
func RegionElectricityPrice(region string) (float64, bool) { return tco.RegionPrice(region) }

// EnergyModelNames lists the valid Scenario.EnergyModel spellings.
func EnergyModelNames() []string { return []string{"linear", "tdp-curve"} }

// OperationalCarbon converts IT energy to operational gCO2e: joules to kWh,
// scaled by the facility PUE (values below 1 are treated as 1) and the
// grid's intensity.
func OperationalCarbon(energy Joules, pue float64, g Grid) float64 {
	return carbon.Operational(energy, pue, g)
}

// EmbodiedCarbon amortizes manufacturing carbon (kgCO2e per server over a
// service life in years) across a fleet for a time window, in grams.
func EmbodiedCarbon(kgCO2ePerServer, serviceLifeYears float64, servers int, seconds float64) float64 {
	return carbon.Embodied(kgCO2ePerServer, serviceLifeYears, servers, seconds)
}

// CarbonStudy prices platform fleets across grid regions: 3-year wall
// energy (facility PUE included), operational and embodied carbon, and the
// cost split at each region's electricity tariff — the closed-form
// companion of TCOStudy for the question "where should this fleet run".
// The power endpoints follow Scenario.EnergyModel, so the same study
// re-prices under the component TDP-curve model by flipping one knob.
type CarbonStudy struct {
	// ID names the artifact (default "carbon_study").
	ID string
	// Platforms to price (default: the whole catalog).
	Platforms []PlatformRef
	// Nodes matches Platforms entry for entry (default: each platform's
	// fleet slave count). Every count must be positive.
	Nodes []int
	// Regions selects the compared grid regions by key (see RegionNames);
	// empty compares all of them.
	Regions []string
	// Utilization in [0,1] (default 0.5; ZeroUtilization for idle).
	Utilization float64
	// CarbonPricePerTonne prices operational carbon in USD per tCO2e
	// (a carbon tax or internal fee); 0 adds no cost column weight.
	CarbonPricePerTonne float64
}

func (cs *CarbonStudy) expand(core.Config) ([]unit, error) {
	id := cs.ID
	if id == "" {
		id = "carbon_study"
	}
	var plats []*hw.Platform
	for _, r := range cs.Platforms {
		p, err := r.resolve()
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("edisim: %s: empty platform ref", id)
		}
		plats = append(plats, p)
	}
	if len(plats) == 0 {
		plats = hw.Platforms()
	}
	if cs.Nodes != nil && len(cs.Nodes) != len(plats) {
		return nil, fmt.Errorf("edisim: %s: %d node counts for %d platforms", id, len(cs.Nodes), len(plats))
	}
	for i, n := range cs.Nodes {
		if n <= 0 {
			return nil, fmt.Errorf("edisim: %s: bad node count %d for %s", id, n, plats[i].Label)
		}
	}
	grids := carbon.Regions()
	if len(cs.Regions) > 0 {
		grids = grids[:0:0]
		seen := map[string]bool{}
		for _, name := range cs.Regions {
			g, ok := carbon.Lookup(name)
			if !ok {
				return nil, unknownNameError("region", name, carbon.RegionNames())
			}
			if seen[g.Region] {
				continue
			}
			seen[g.Region] = true
			grids = append(grids, g)
		}
	}
	if math.IsNaN(cs.CarbonPricePerTonne) || cs.CarbonPricePerTonne < 0 {
		return nil, fmt.Errorf("edisim: %s: negative carbon price %v $/tCO2e", id, cs.CarbonPricePerTonne)
	}
	util := cs.Utilization
	if util == 0 {
		util = 0.5
	}
	if util < 0 { // ZeroUtilization sentinel
		util = 0
	}
	if util > 1 {
		return nil, fmt.Errorf("edisim: %s: utilization %v outside [0,1]", id, util)
	}
	title := fmt.Sprintf("3-year energy, carbon and cost by region at %.0f%% utilization", util*100)

	run := func(cfg core.Config) (*core.Outcome, error) {
		o := &core.Outcome{}
		t := report.NewTable(title,
			"platform", "region", "nodes", "MWh (3y)", "op tCO2e", "embodied tCO2e", "total tCO2e",
			"electricity $", "carbon $", "total 3y $").
			WithUnits("", "", "nodes", "MWh", "t", "t", "t", "$", "$", "$")
		lifeSeconds := tco.LifeYears * 365 * 24 * 3600
		for pi, p := range plats {
			n := p.Fleet.Slaves
			if cs.Nodes != nil {
				n = cs.Nodes[pi]
			}
			if n <= 0 {
				return nil, fmt.Errorf("edisim: %s: %s has no catalog fleet to price — set Nodes", id, p.Label)
			}
			for _, g := range grids {
				in, err := tco.ForPlatformInRegion(p, n, util, cfg.Energy, g.Region, cs.CarbonPricePerTonne)
				if err != nil {
					return nil, fmt.Errorf("edisim: %s: %w", id, err)
				}
				r, err := tco.Compute(in)
				if err != nil {
					return nil, fmt.Errorf("edisim: %s: %w", id, err)
				}
				embodied := carbon.Embodied(p.Energy.EmbodiedKgCO2e, p.Energy.ServiceLifeYears, n, lifeSeconds)
				t.AddRow(p.Label, g.Region,
					report.Count(int64(n), "nodes"),
					report.Num(r.KWh/1000, "MWh"),
					report.Num(r.CarbonGrams/1e6, "t"),
					report.Num(embodied/1e6, "t"),
					report.Num((r.CarbonGrams+embodied)/1e6, "t"),
					report.Num(r.Electricity, "$"),
					report.Num(r.Carbon, "$"),
					report.Num(r.Total(), "$"))
			}
			if !p.Energy.Modeled() {
				o.Notes = append(o.Notes, fmt.Sprintf(
					"%s has no energy catalog data: embodied carbon is unreported and the TDP-curve model falls back to the calibrated linear endpoints", p.Label))
			}
		}
		o.Tables = append(o.Tables, t)
		o.Notes = append(o.Notes, fmt.Sprintf(
			"wall energy includes the default facility PUE of %.2f; operational carbon uses each region's average grid intensity; embodied carbon amortizes manufacturing over each platform's service life (catalog data, PLATFORMS.md)",
			carbon.DefaultPUE))
		return o, nil
	}
	return []unit{{id: id, title: title, section: "scenario", run: run}}, nil
}
