package edisim

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"edisim/internal/cluster"
)

// TestParsePlatformRefs pins the shared -platforms parsing: whitespace
// trimmed, empties dropped, duplicates (alias spellings included) collapsed
// to their first occurrence, unknown names preserved for resolution errors.
func TestParsePlatformRefs(t *testing.T) {
	names := func(refs []PlatformRef) []string {
		var out []string
		for _, r := range refs {
			out = append(out, r.Name)
		}
		return out
	}
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{"plain", "edison,dell", []string{"edison", "dell"}},
		{"whitespace", " edison , dell-r620 ", []string{"edison", "dell-r620"}},
		{"duplicates", "edison,edison", []string{"edison"}},
		{"case-insensitive dup", "Edison,EDISON", []string{"Edison"}},
		{"alias dup", "dell,r620,dell-r620", []string{"dell"}},
		{"empties dropped", ",edison,,dell,", []string{"edison", "dell"}},
		{"only separators", " , ,", nil},
		{"unknown preserved", "edison,pdp11", []string{"edison", "pdp11"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := names(ParsePlatformRefs(tc.in))
			if len(got) != len(tc.want) {
				t.Fatalf("ParsePlatformRefs(%q) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("ParsePlatformRefs(%q) = %v, want %v", tc.in, got, tc.want)
				}
			}
		})
	}
}

// TestWhitespacePlatformRefResolves: a ref with stray spaces (the CLI shape
// "edison, dell-r620") must resolve instead of failing lookup.
func TestWhitespacePlatformRefResolves(t *testing.T) {
	scn := Scenario{Quick: true,
		Matrix:    []PlatformRef{Ref(" edison "), Ref(" dell-r620")},
		Workloads: []Workload{&TCOStudy{Platforms: []PlatformRef{Ref(" dell-r620 ")}}}}
	var col Collector
	if err := Run(context.Background(), scn, &col); err != nil {
		t.Fatalf("whitespace refs did not resolve: %v", err)
	}
	if got := col.Artifacts[0].Tables[0].Rows[0][0].String(); got != "Dell" {
		t.Fatalf("resolved platform %q, want Dell", got)
	}
}

// mixedTerasortScenario is the hybrid Edison+Dell slave set of the
// acceptance criteria: a mixed-platform Hadoop cluster run end to end
// through the public API.
func mixedTerasortScenario(workers int) Scenario {
	return Scenario{
		Quick:   true,
		Workers: workers,
		Workloads: []Workload{&MapReduceJob{
			Job: "terasort",
			SlaveGroups: []TierSpec{
				{Platform: Ref("edison"), Nodes: 3},
				{Platform: Ref("dell"), Nodes: 1},
			},
			Trace: true,
		}},
	}
}

// TestMixedSlaveGroupTerasort runs terasort on a hybrid Edison+Dell slave
// set through the scenario API and requires byte-identical output across
// worker counts (the -j 1 / -j 4 determinism contract).
func TestMixedSlaveGroupTerasort(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a Hadoop job")
	}
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := Run(context.Background(), mixedTerasortScenario(workers), NewTextSink(&buf)); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return buf.String()
	}
	serial := render(1)
	if !strings.Contains(serial, "terasort on 3 Edison + 1 Dell slaves") {
		t.Fatalf("mixed title missing:\n%s", serial)
	}
	if parallel := render(4); serial != parallel {
		t.Fatalf("mixed slave set output depends on worker count:\n-- -j 1 --\n%s\n-- -j 4 --\n%s", serial, parallel)
	}
	var col Collector
	if err := Run(context.Background(), mixedTerasortScenario(2), &col); err != nil {
		t.Fatal(err)
	}
	a := col.Artifacts[0]
	if a.ID != "mapreduce_terasort" || len(a.Figures) != 1 {
		t.Fatalf("artifact shape: %q figures=%d", a.ID, len(a.Figures))
	}
	if dur, ok := a.Tables[0].Rows[0][3].Float(); !ok || dur <= 0 {
		t.Fatalf("mixed job duration cell bogus: %#v", a.Tables[0].Rows[0][3])
	}
	if lbl := a.Tables[0].Rows[0][1].String(); lbl != "mixed" {
		t.Fatalf("platform cell %q, want mixed", lbl)
	}
}

// TestSlaveGroupValidationErrors pins the public-API guards for mixed
// slave sets: every failure is an expansion error, never a worker panic.
func TestSlaveGroupValidationErrors(t *testing.T) {
	mk := func(groups ...TierSpec) Scenario {
		return Scenario{Quick: true,
			Workloads: []Workload{&MapReduceJob{Job: "terasort", SlaveGroups: groups}}}
	}
	cases := []struct {
		name string
		scn  Scenario
		want string
	}{
		{"zero nodes", mk(TierSpec{Platform: Ref("edison"), Nodes: 0}), "positive node count"},
		{"negative nodes", mk(TierSpec{Platform: Ref("edison"), Nodes: -2}), "positive node count"},
		{"empty platform", mk(TierSpec{Nodes: 2}), "explicit platform"},
		{"unknown platform", mk(TierSpec{Platform: Ref("pdp11"), Nodes: 2}), `"pdp11"`},
		{"duplicate group", mk(TierSpec{Platform: Ref("edison"), Nodes: 2}, TierSpec{Platform: Ref("Edison"), Nodes: 1}), "duplicate slave group"},
		{"over group cap", mk(TierSpec{Platform: Ref("edison"), Nodes: cluster.MaxGroupNodes + 300}), "group cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Run(context.Background(), tc.scn, &Collector{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestFleetComparisonScenario runs the equal-budget comparison over the
// baseline pair through the public API: every table populated, and the
// Dell-budget-sized Dell fleet must (by construction) match its own
// catalog fleet cost.
func TestFleetComparisonScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates web sweeps and a Hadoop job")
	}
	var col Collector
	scn := Scenario{Quick: true, Workers: 2, Workloads: []Workload{
		&FleetComparison{Platforms: []PlatformRef{Ref("edison"), Ref("dell")}},
	}}
	if err := Run(context.Background(), scn, &col); err != nil {
		t.Fatalf("Run: %v", err)
	}
	a := col.Artifacts[0]
	if a.ID != "fleet_comparison" {
		t.Fatalf("artifact ID %q", a.ID)
	}
	// Sizing, web matrix, scale ladder, Hadoop matrix.
	if len(a.Tables) != 4 {
		t.Fatalf("got %d tables, want 4", len(a.Tables))
	}
	sizing := a.Tables[0]
	if len(sizing.Rows) != 2 {
		t.Fatalf("sizing rows = %d, want 2", len(sizing.Rows))
	}
	// The Edison fleet bought by the Dell web budget must be paper-scale
	// (tens of web nodes) and every sized fleet must have spent > 0.
	if webNodes, ok := sizing.Rows[0][2].Float(); !ok || webNodes < 20 {
		t.Fatalf("Edison web fleet %v nodes; want the paper's tens-of-nodes scale", sizing.Rows[0][2])
	}
	for _, row := range sizing.Rows {
		if cost, ok := row[5].Float(); !ok || cost <= 0 {
			t.Fatalf("web fleet cost cell bogus: %#v", row[5])
		}
	}
	// Web matrix: peak throughput and per-dollar columns live.
	for _, row := range a.Tables[1].Rows {
		if peak, ok := row[4].Float(); !ok || peak <= 0 {
			t.Fatalf("web peak cell bogus: %#v", row[4])
		}
		if perK, ok := row[7].Float(); !ok || perK <= 0 {
			t.Fatalf("req/s per TCO-k$ cell bogus: %#v", row[7])
		}
	}
	// Hadoop matrix: both platforms ran the job.
	for _, row := range a.Tables[3].Rows {
		if dur, ok := row[3].Float(); !ok || dur <= 0 {
			t.Fatalf("hadoop duration cell bogus: %#v", row[3])
		}
	}
	if len(a.Comparisons) == 0 {
		t.Fatal("fleet comparison recorded no ledger comparisons")
	}
}

// TestFleetComparisonValidation pins the expansion guards.
func TestFleetComparisonValidation(t *testing.T) {
	cases := []struct {
		name string
		fc   *FleetComparison
		want string
	}{
		{"negative budget", &FleetComparison{Budget: -100}, "must be positive"},
		{"NaN budget", &FleetComparison{Budget: math.NaN()}, "finite"},
		{"unknown job", &FleetComparison{Job: "sort9000"}, `"sort9000"`},
		{"unknown baseline", &FleetComparison{Baseline: Ref("pdp11")}, `"pdp11"`},
		{"empty platform ref", &FleetComparison{Platforms: []PlatformRef{{}}}, "empty platform ref"},
		{"fleet-less baseline", &FleetComparison{Baseline: Custom(&Platform{Name: "bare"})}, "no catalog fleet"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scn := Scenario{Quick: true, Workloads: []Workload{tc.fc}}
			err := Run(context.Background(), scn, &Collector{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestTCOStudyBudgetSizing: Budget sizes fleets instead of Nodes, a
// platform whose single server exceeds the budget prices as a zero-node
// row, and the guards hold.
func TestTCOStudyBudgetSizing(t *testing.T) {
	var col Collector
	scn := Scenario{Workloads: []Workload{&TCOStudy{
		Platforms:   []PlatformRef{Ref("edison"), Ref("xeon")},
		Budget:      5000,
		Utilization: 0.75,
	}}}
	if err := Run(context.Background(), scn, &col); err != nil {
		t.Fatalf("Run: %v", err)
	}
	tab := col.Artifacts[0].Tables[0]
	if n, ok := tab.Rows[0][1].Float(); !ok || n < 30 {
		t.Fatalf("$5000 should buy tens of Edisons, got %v", tab.Rows[0][1])
	}
	if total, ok := tab.Rows[0][4].Float(); !ok || total <= 0 || total > 5000 {
		t.Fatalf("sized Edison fleet total $%v must be positive and within budget", total)
	}
	if n, ok := tab.Rows[1][1].Float(); !ok || n != 0 {
		t.Fatalf("a $5000 budget cannot buy a Xeon; got %v nodes", tab.Rows[1][1])
	}
	found := false
	for _, note := range col.Artifacts[0].Notes {
		found = found || strings.Contains(note, "exceeds")
	}
	if !found {
		t.Fatalf("zero-node row not explained in notes: %v", col.Artifacts[0].Notes)
	}

	for name, study := range map[string]*TCOStudy{
		"negative budget":  {Budget: -10},
		"NaN budget":       {Budget: math.NaN()},
		"infinite budget":  {Budget: math.Inf(1)},
		"budget and nodes": {Platforms: []PlatformRef{Ref("edison")}, Nodes: []int{3}, Budget: 1000},
		"negative nodes":   {Platforms: []PlatformRef{Ref("edison")}, Nodes: []int{-5}},
	} {
		t.Run(name, func(t *testing.T) {
			err := Run(context.Background(), Scenario{Workloads: []Workload{study}}, &Collector{})
			if err == nil {
				t.Fatalf("%s accepted", name)
			}
		})
	}
}
