package edisim

import (
	"context"
	"strings"
	"testing"
)

// overloadScenario is a flash crowd against a small Edison web tier with a
// mid-spike crash, every resilience knob on.
func overloadScenario(workers int) Scenario {
	return Scenario{
		Quick:   true,
		Workers: workers,
		Faults:  RollingCrashFaults("web", 1, 2.2, 0.5, 1),
		Workloads: []Workload{&OverloadStudy{
			ID:          "drill",
			Web:         TierSpec{Nodes: 6},
			Cache:       TierSpec{Nodes: 3},
			Profile:     SpikeLoad{Base: 120, Peak: 540, Start: 1.5, Duration: 1.5},
			Duration:    4,
			RetryBudget: 0.1,
			Shed:        ShedPolicy{Mode: ShedDeadline, Deadline: 0.5},
			SLO:         &SLO{Latency: 0.5, Window: 0.5, Brownout: true},
		}},
	}
}

// TestOverloadStudyScenario runs the overload drill end to end through the
// public Scenario API: open-loop profile, shedding, retry budget, SLO
// controller and an injected crash, all in one artifact.
func TestOverloadStudyScenario(t *testing.T) {
	var col Collector
	if err := Run(context.Background(), overloadScenario(2), &col); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(col.Artifacts) != 1 {
		t.Fatalf("got %d artifacts, want 1", len(col.Artifacts))
	}
	a := col.Artifacts[0]
	if a.ID != "drill" || len(a.Tables) != 1 {
		t.Fatalf("artifact shape: id=%q tables=%d", a.ID, len(a.Tables))
	}
	if len(a.Figures) != 1 {
		t.Fatalf("SLO set but no controller time-series figure (got %d figures)", len(a.Figures))
	}
	row := a.Tables[0].Rows[0]
	offered, _ := row[0].Float()
	goodput, _ := row[1].Float()
	if offered <= 0 || goodput <= 0 {
		t.Fatalf("no traffic: offered %v, goodput %v", offered, goodput)
	}
	// The spike runs 2x past the 6-server tier's connection capacity, so
	// admission control must have rejected something.
	shed, _ := row[2].Float()
	if shed <= 0 {
		t.Fatalf("spike past capacity shed nothing: %v", row)
	}
	if !strings.Contains(strings.Join(a.Notes, "\n"), "SLO:") {
		t.Fatalf("missing SLO note: %v", a.Notes)
	}
}

// TestOverloadStudyWorkerIndependence: the open-loop drill must be
// bit-identical for any Workers value, like every other workload.
func TestOverloadStudyWorkerIndependence(t *testing.T) {
	render := func(workers int) string {
		var col Collector
		if err := Run(context.Background(), overloadScenario(workers), &col); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		var b strings.Builder
		for _, a := range col.Artifacts {
			for _, tab := range a.Tables {
				b.WriteString(tab.String())
			}
			for _, f := range a.Figures {
				b.WriteString(f.String())
			}
			for _, n := range a.Notes {
				b.WriteString(n)
			}
		}
		return b.String()
	}
	if one, four := render(1), render(4); one != four {
		t.Errorf("workers=1 and workers=4 outcomes differ:\n--- 1 ---\n%s\n--- 4 ---\n%s", one, four)
	}
}

// TestOverloadStudyValidation: a missing profile and invalid knobs fail at
// expansion with errors naming the study.
func TestOverloadStudyValidation(t *testing.T) {
	run := func(ov *OverloadStudy) error {
		return Run(context.Background(), Scenario{Quick: true, Workloads: []Workload{ov}}, &Collector{})
	}
	if err := run(&OverloadStudy{}); err == nil || !strings.Contains(err.Error(), "Profile") {
		t.Errorf("missing profile: got %v", err)
	}
	if err := run(&OverloadStudy{Profile: SteadyLoad{Rate: -1}}); err == nil {
		t.Error("negative rate accepted")
	}
	if err := run(&OverloadStudy{Profile: SteadyLoad{Rate: 100}, Shed: ShedPolicy{Mode: "yolo"}}); err == nil {
		t.Error("bad shed mode accepted")
	}
	if err := run(&OverloadStudy{Profile: SteadyLoad{Rate: 100}, SLO: &SLO{Latency: -1}}); err == nil {
		t.Error("bad SLO accepted")
	}
}
