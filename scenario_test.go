package edisim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"edisim/internal/cluster"
)

// heteroScenario is the ROADMAP's mixed-platform testbed: a Pi3 web tier in
// front of a Xeon cache tier, in one cluster.
func heteroScenario(workers int) Scenario {
	return Scenario{
		Quick:   true,
		Workers: workers,
		Workloads: []Workload{&WebSweep{
			ID:            "hetero",
			Web:           TierSpec{Platform: Ref("pi3"), Nodes: 4},
			Cache:         TierSpec{Platform: Ref("xeon"), Nodes: 1},
			Concurrencies: []float64{64, 256},
			Duration:      3,
		}},
	}
}

// TestHeterogeneousTierScenario runs a mixed Pi3-web/Xeon-cache testbed end
// to end through the scenario API and checks the sweep produced real
// traffic on both tiers.
func TestHeterogeneousTierScenario(t *testing.T) {
	var col Collector
	if err := Run(context.Background(), heteroScenario(2), &col); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(col.Artifacts) != 1 {
		t.Fatalf("got %d artifacts, want 1", len(col.Artifacts))
	}
	a := col.Artifacts[0]
	if a.ID != "hetero" || len(a.Tables) != 1 || len(a.Figures) != 3 {
		t.Fatalf("artifact shape: id=%q tables=%d figures=%d", a.ID, len(a.Tables), len(a.Figures))
	}
	tput := a.Figures[0].Series[0].Y
	if len(tput) != 2 || tput[0] <= 0 || tput[1] <= tput[0] {
		t.Fatalf("throughput curve not increasing and positive: %v", tput)
	}
	// Cache CPU column must be live: the Xeon tier actually served GETs.
	var cacheBusy bool
	for _, row := range a.Tables[0].Rows {
		if v, ok := row[6].Float(); ok && v > 0 {
			cacheBusy = true
		}
	}
	if !cacheBusy {
		t.Fatal("cache tier shows zero utilization — heterogeneous tier not exercised")
	}
}

// TestScenarioWorkerIndependence requires bit-identical artifacts for any
// Workers value, the core reproducibility contract of the API.
func TestScenarioWorkerIndependence(t *testing.T) {
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := Run(context.Background(), heteroScenario(workers), NewTextSink(&buf)); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return buf.String()
	}
	if serial, parallel := render(1), render(4); serial != parallel {
		t.Fatalf("output depends on worker count:\n-- serial --\n%s\n-- parallel --\n%s", serial, parallel)
	}
}

// TestUnknownExperimentIDErrors pins the -only typo bugfix: one bad ID in a
// list with valid ones must fail the whole run, naming the valid set.
func TestUnknownExperimentIDErrors(t *testing.T) {
	scn := Scenario{Quick: true,
		Workloads: []Workload{&PaperExperiments{IDs: []string{"table2", "tabel3"}}}}
	err := Run(context.Background(), scn, &Collector{})
	if err == nil {
		t.Fatal("unknown experiment ID did not error")
	}
	if !strings.Contains(err.Error(), `"tabel3"`) || !strings.Contains(err.Error(), "table10") {
		t.Fatalf("error does not name the bad ID and the valid set: %v", err)
	}
}

// TestUnknownPlatformErrors covers the same contract for platform refs.
func TestUnknownPlatformErrors(t *testing.T) {
	scn := Scenario{Quick: true,
		Workloads: []Workload{&WebSweep{Web: TierSpec{Platform: Ref("pdp11"), Nodes: 2}}}}
	err := Run(context.Background(), scn, &Collector{})
	if err == nil || !strings.Contains(err.Error(), `"pdp11"`) {
		t.Fatalf("unknown platform not rejected usefully: %v", err)
	}
}

// TestNegativeInfraTierRejected: a bad DBNodes/Clients count must fail
// expansion with an error, not panic a background worker goroutine.
func TestNegativeInfraTierRejected(t *testing.T) {
	scn := heteroScenario(1)
	scn.Workloads[0].(*WebSweep).DBNodes = -1
	err := Run(context.Background(), scn, &Collector{})
	if err == nil || !strings.Contains(err.Error(), "DBNodes") {
		t.Fatalf("negative DBNodes not rejected usefully: %v", err)
	}
}

// TestTCOZeroUtilizationSentinel pins the idle-fleet sentinel: the zero
// value defaults to 50%, ZeroUtilization prices a genuinely idle fleet.
func TestTCOZeroUtilizationSentinel(t *testing.T) {
	total := func(u float64) float64 {
		var col Collector
		scn := Scenario{Workloads: []Workload{
			&TCOStudy{Platforms: []PlatformRef{Ref("pi3")}, Utilization: u}}}
		if err := Run(context.Background(), scn, &col); err != nil {
			t.Fatalf("Run(util=%v): %v", u, err)
		}
		v, ok := col.Artifacts[0].Tables[0].Rows[0][4].Float()
		if !ok {
			t.Fatal("total cell not numeric")
		}
		return v
	}
	idle, def, half := total(ZeroUtilization), total(0), total(0.5)
	if def != half {
		t.Fatalf("zero value (%v) must mean the 50%% default (%v)", def, half)
	}
	if !(idle < def) {
		t.Fatalf("idle fleet (%v) must cost less than 50%% utilization (%v)", idle, def)
	}
}

// TestDuplicateArtifactIDsRejected: two sweeps sharing an ID would draw
// correlated seed streams and emit indistinguishable artifacts.
func TestDuplicateArtifactIDsRejected(t *testing.T) {
	ws := func() *WebSweep {
		return &WebSweep{Web: TierSpec{Platform: Ref("pi3"), Nodes: 2},
			Cache: TierSpec{Platform: Ref("pi3"), Nodes: 1}, Concurrencies: []float64{32}}
	}
	scn := Scenario{Quick: true, Workloads: []Workload{ws(), ws()}}
	err := Run(context.Background(), scn, &Collector{})
	if err == nil || !strings.Contains(err.Error(), "duplicate artifact ID") {
		t.Fatalf("duplicate IDs not rejected usefully: %v", err)
	}
}

// TestOversizedTiersRejected: node counts beyond the cluster builder's
// group cap must error at expansion, not panic a worker goroutine.
func TestOversizedTiersRejected(t *testing.T) {
	scn := heteroScenario(1)
	scn.Workloads[0].(*WebSweep).Web.Nodes = cluster.MaxGroupNodes + 100
	if err := Run(context.Background(), scn, &Collector{}); err == nil || !strings.Contains(err.Error(), "group cap") {
		t.Fatalf("oversized web tier not rejected usefully: %v", err)
	}
	scn2 := Scenario{Quick: true, Workloads: []Workload{
		&MapReduceJob{Job: "pi", Slaves: cluster.MaxGroupNodes + 300}}}
	if err := Run(context.Background(), scn2, &Collector{}); err == nil || !strings.Contains(err.Error(), "group cap") {
		t.Fatalf("oversized slave count not rejected usefully: %v", err)
	}
}

// TestEmptyMatrixRefRejected: a blank -platforms entry ("edison,") must
// error instead of silently running the matrix over fewer platforms.
func TestEmptyMatrixRefRejected(t *testing.T) {
	scn := heteroScenario(1)
	scn.Matrix = []PlatformRef{Ref("edison"), {}}
	err := Run(context.Background(), scn, &Collector{})
	if err == nil || !strings.Contains(err.Error(), "empty platform ref") {
		t.Fatalf("empty matrix ref not rejected usefully: %v", err)
	}
}

// TestSinkErrorAborts checks a failing sink stops the run with its error.
func TestSinkErrorAborts(t *testing.T) {
	boom := SinkFunc(func(*Artifact) error { return context.Canceled })
	if err := Run(context.Background(), heteroScenario(1), boom); err != context.Canceled {
		t.Fatalf("sink error not propagated: %v", err)
	}
}

// TestContextCancellation checks an already-cancelled context returns
// promptly without emitting artifacts.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var col Collector
	if err := Run(ctx, heteroScenario(1), &col); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(col.Artifacts) != 0 {
		t.Fatalf("cancelled run emitted %d artifacts", len(col.Artifacts))
	}
}

// TestMapReduceAndTCOWorkloads smoke-runs the other two workload kinds,
// trace figure included.
func TestMapReduceAndTCOWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a Hadoop job")
	}
	var col Collector
	scn := Scenario{Quick: true, Workers: 2, Workloads: []Workload{
		&MapReduceJob{Job: "logcount2", Platform: Ref("pi3"), Slaves: 4, Trace: true},
		&TCOStudy{Platforms: []PlatformRef{Ref("pi3"), Ref("xeon")}, Utilization: 0.75},
	}}
	if err := Run(context.Background(), scn, &col); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(col.Artifacts) != 2 {
		t.Fatalf("got %d artifacts, want 2", len(col.Artifacts))
	}
	mr := col.Artifacts[0]
	if mr.ID != "mapreduce_logcount2" || len(mr.Figures) != 1 {
		t.Fatalf("mapreduce artifact shape: %q figures=%d", mr.ID, len(mr.Figures))
	}
	if dur, ok := mr.Tables[0].Rows[0][3].Float(); !ok || dur <= 0 {
		t.Fatalf("job duration cell bogus: %#v", mr.Tables[0].Rows[0][3])
	}
	tcoTab := col.Artifacts[1].Tables[0]
	if len(tcoTab.Rows) != 2 {
		t.Fatalf("tco study rows = %d, want 2", len(tcoTab.Rows))
	}
	if total, ok := tcoTab.Rows[0][4].Float(); !ok || total <= 0 {
		t.Fatalf("tco total cell bogus: %#v", tcoTab.Rows[0][4])
	}
}
