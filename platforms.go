package edisim

import (
	"strings"

	"edisim/internal/hw"
)

// Platform is one hardware catalog entry: spec, costs, network profile and
// per-workload calibration as pure data (see PLATFORMS.md). It aliases the
// internal catalog type, so custom platforms can be built as plain struct
// literals without importing any internal package.
type Platform = hw.Platform

// NodeSpec is a platform's hardware description (CPU, memory, disk, NIC,
// power envelope).
type NodeSpec = hw.NodeSpec

// Platforms returns every catalog entry in registration order.
func Platforms() []*Platform { return hw.Platforms() }

// PlatformNames lists the catalog names in registration order.
func PlatformNames() []string { return hw.PlatformNames() }

// LookupPlatform resolves a catalog platform by name or alias,
// case-insensitively.
func LookupPlatform(name string) (*Platform, bool) { return hw.LookupPlatform(name) }

// BaselinePair returns the paper's compared pair: the Intel Edison micro
// server and the Dell R620.
func BaselinePair() (micro, brawny *Platform) { return hw.BaselinePair() }

// ReplacementEstimate is the Table 2 back-of-the-envelope sizing: how many
// micro servers replace one brawny server, per resource.
type ReplacementEstimate = hw.ReplacementEstimate

// EstimateReplacement computes the Table 2 sizing for a platform pair.
func EstimateReplacement(micro, brawny *Platform) ReplacementEstimate {
	return hw.EstimateReplacement(micro.Spec, brawny.Spec)
}

// PlatformRef names a platform: a catalog entry by Name, or a custom
// Platform built by the caller (which takes precedence). The zero ref means
// "unset" and resolves to each field's documented default.
type PlatformRef struct {
	Name     string
	Platform *Platform
}

// Ref is shorthand for a catalog reference.
func Ref(name string) PlatformRef { return PlatformRef{Name: name} }

// Custom wraps a caller-built platform.
func Custom(p *Platform) PlatformRef { return PlatformRef{Platform: p} }

// resolve returns the referenced platform, nil for the zero ref, or an
// error naming the catalog when the name is unknown. Names are
// whitespace-trimmed, so refs built from comma-separated CLI lists
// ("edison, dell-r620") resolve and report cleanly.
func (r PlatformRef) resolve() (*Platform, error) {
	if r.Platform != nil {
		return r.Platform, nil
	}
	name := strings.TrimSpace(r.Name)
	if name == "" {
		return nil, nil
	}
	p, ok := hw.LookupPlatform(name)
	if !ok {
		return nil, unknownNameError("platform", name, hw.PlatformNames())
	}
	return p, nil
}

// ParsePlatformRefs parses a comma-separated platform list (the shape of
// the cmds' -platforms flag) into refs: entries are whitespace-trimmed,
// empties dropped, and duplicates — including alias spellings of the same
// catalog entry ("dell,r620") — collapsed to their first occurrence, so a
// repeated platform is never priced or simulated twice. Unknown names are
// kept verbatim; resolution reports them against the valid catalog set.
func ParsePlatformRefs(list string) []PlatformRef {
	var out []PlatformRef
	seen := map[string]bool{}
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key := strings.ToLower(tok)
		if p, ok := hw.LookupPlatform(tok); ok {
			key = p.Name
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Ref(tok))
	}
	return out
}
