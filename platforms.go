package edisim

import (
	"edisim/internal/hw"
)

// Platform is one hardware catalog entry: spec, costs, network profile and
// per-workload calibration as pure data (see PLATFORMS.md). It aliases the
// internal catalog type, so custom platforms can be built as plain struct
// literals without importing any internal package.
type Platform = hw.Platform

// NodeSpec is a platform's hardware description (CPU, memory, disk, NIC,
// power envelope).
type NodeSpec = hw.NodeSpec

// Platforms returns every catalog entry in registration order.
func Platforms() []*Platform { return hw.Platforms() }

// PlatformNames lists the catalog names in registration order.
func PlatformNames() []string { return hw.PlatformNames() }

// LookupPlatform resolves a catalog platform by name or alias,
// case-insensitively.
func LookupPlatform(name string) (*Platform, bool) { return hw.LookupPlatform(name) }

// BaselinePair returns the paper's compared pair: the Intel Edison micro
// server and the Dell R620.
func BaselinePair() (micro, brawny *Platform) { return hw.BaselinePair() }

// ReplacementEstimate is the Table 2 back-of-the-envelope sizing: how many
// micro servers replace one brawny server, per resource.
type ReplacementEstimate = hw.ReplacementEstimate

// EstimateReplacement computes the Table 2 sizing for a platform pair.
func EstimateReplacement(micro, brawny *Platform) ReplacementEstimate {
	return hw.EstimateReplacement(micro.Spec, brawny.Spec)
}

// PlatformRef names a platform: a catalog entry by Name, or a custom
// Platform built by the caller (which takes precedence). The zero ref means
// "unset" and resolves to each field's documented default.
type PlatformRef struct {
	Name     string
	Platform *Platform
}

// Ref is shorthand for a catalog reference.
func Ref(name string) PlatformRef { return PlatformRef{Name: name} }

// Custom wraps a caller-built platform.
func Custom(p *Platform) PlatformRef { return PlatformRef{Platform: p} }

// resolve returns the referenced platform, nil for the zero ref, or an
// error naming the catalog when the name is unknown.
func (r PlatformRef) resolve() (*Platform, error) {
	if r.Platform != nil {
		return r.Platform, nil
	}
	if r.Name == "" {
		return nil, nil
	}
	p, ok := hw.LookupPlatform(r.Name)
	if !ok {
		return nil, unknownNameError("platform", r.Name, hw.PlatformNames())
	}
	return p, nil
}
