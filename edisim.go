// Package edisim is the public face of the paper reproduction: a typed,
// streaming simulation library for evaluating datacenter workloads on
// micro-server and brawny-server platforms.
//
// The entry point is a Scenario — a declarative spec of what to measure
// (paper experiments, web sweeps over possibly heterogeneous tiers,
// MapReduce jobs with optional utilization traces, TCO studies), on which
// platforms, at which fidelity — executed by Run, which streams each
// completed Artifact to a Sink in deterministic order:
//
//	micro, brawny := edisim.BaselinePair()
//	_ = brawny
//	scn := edisim.Scenario{
//		Quick: true,
//		Workloads: []edisim.Workload{
//			&edisim.WebSweep{
//				Web:   edisim.TierSpec{Platform: edisim.Ref(micro.Name), Nodes: 6},
//				Cache: edisim.TierSpec{Platform: edisim.Ref("xeon"), Nodes: 1},
//			},
//		},
//	}
//	err := edisim.Run(context.Background(), scn, edisim.NewTextSink(os.Stdout))
//
// Results are typed (report values carry units), so the same run can render
// as aligned text, the documented JSON schema, or CSV — see API.md.
//
// Identical seeds reproduce results bit for bit regardless of Workers: every
// sweep point derives its seed from the point's identity, never from
// scheduling order.
package edisim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"edisim/internal/carbon"
	"edisim/internal/core"
	"edisim/internal/faults"
	"edisim/internal/hw"
	"edisim/internal/runner"
)

// Scenario declares one evaluation: platform selection, fidelity, and the
// workloads to run. The zero value of every field has a sensible default;
// an empty Workloads list is the only invalid spec.
type Scenario struct {
	// Name labels the scenario in errors and logs (optional).
	Name string

	// Seed is the root random seed; 0 means 1. Identical seeds reproduce
	// results bit for bit.
	Seed int64
	// Quick trades statistical tightness for speed (shorter measurement
	// windows, fewer sweep points).
	Quick bool
	// Workers sizes the worker pool each unit's sweep points fan across.
	// Up to two units overlap to hide serial stretches, so instantaneous
	// load can briefly reach 2×Workers simulations. 0 or 1 is serial;
	// results are identical for any value.
	Workers int

	// Micro/Brawny override the compared pair for paper experiments; zero
	// refs select the catalog baseline (Edison / Dell R620).
	Micro, Brawny PlatformRef
	// Matrix lists the platforms cross-platform matrix experiments cover;
	// empty selects the whole catalog.
	Matrix []PlatformRef

	// EnergyModel selects the node power model for every testbed the
	// scenario builds: "" (or "linear"/"paper") keeps the paper-calibrated
	// linear model — byte-identical defaults — while "tdp-curve" arms the
	// component-level TDP interpolation model for platforms with energy
	// catalog data (see PLATFORMS.md). Unknown names fail at Run.
	EnergyModel string
	// Region attributes energy to an electricity-grid region for carbon and
	// price accounting (see RegionNames). Empty means unattributed; setting
	// either EnergyModel or Region makes the matrix experiments report their
	// gCO2e and per-region columns.
	Region string

	// Faults, when non-nil, overrides the built-in fault schedule of the
	// fault-injecting workloads (the fault_tolerance experiment; the default
	// paper reproduction never injects faults). Every event is validated at
	// Run; the schedule itself is deterministic — each workload unit derives
	// its injection seed from the unit's identity, so a faulty scenario is
	// exactly as reproducible as a healthy one, for any Workers value.
	Faults *FaultPlan

	// Workloads are evaluated in order; each produces one or more
	// Artifacts, emitted to the Sink in workload order.
	Workloads []Workload
}

// FaultPlan is a reproducible fault-injection schedule (see API.md for the
// schedule grammar). The zero value injects nothing.
type FaultPlan struct {
	// Events are applied in order; see FaultEvent.
	Events []FaultEvent
	// Jitter perturbs every event time by a uniform seed-derived offset in
	// [0, Jitter) seconds; 0 keeps the literal schedule.
	Jitter float64
}

// FaultEvent is one scheduled fault against a named role of the workload's
// testbed ("web" for the web tier, "slave"/"master" for a Hadoop cluster).
type FaultEvent struct {
	// Kind is one of "node_crash", "straggler", "link_cut", "link_degrade".
	Kind string
	// At is the injection time in seconds into the run; Duration is how long
	// the fault lasts before the target recovers (0 = permanent).
	At, Duration float64
	// Factor scales CPU/disk speed (straggler) or link capacity
	// (link_degrade); ignored by the other kinds.
	Factor float64
	// Role names the target set; Index picks the target within it (reduced
	// modulo the role's size).
	Role  string
	Index int
}

// compile converts the public plan into the internal one, validating it.
func (fp *FaultPlan) compile() (*faults.Plan, error) {
	if fp == nil {
		return nil, nil
	}
	p := &faults.Plan{Jitter: fp.Jitter}
	for _, e := range fp.Events {
		p.Events = append(p.Events, faults.Event{
			Kind:     faults.Kind(e.Kind),
			At:       e.At,
			Duration: e.Duration,
			Factor:   e.Factor,
			Role:     e.Role,
			Index:    e.Index,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Workload is one unit of evaluation inside a Scenario. Implementations
// are the exported workload types of this package (PaperExperiments,
// WebSweep, MapReduceJob, TCOStudy); the interface is sealed.
type Workload interface {
	// expand resolves the workload into runnable units under the scenario.
	expand(cfg core.Config) ([]unit, error)
}

// unit is one independently runnable artifact producer.
type unit struct {
	id, title, section string
	run                func(cfg core.Config) (*core.Outcome, error)
}

// config resolves the Scenario-level knobs into the internal experiment
// config.
func (s *Scenario) config() (core.Config, error) {
	cfg := core.Config{Seed: s.Seed, Quick: s.Quick, Workers: s.Workers}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var err error
	if cfg.Micro, err = s.Micro.resolve(); err != nil {
		return cfg, err
	}
	if cfg.Brawny, err = s.Brawny.resolve(); err != nil {
		return cfg, err
	}
	for _, r := range s.Matrix {
		p, err := r.resolve()
		if err != nil {
			return cfg, err
		}
		if p == nil {
			// A zero ref means "unset" for Micro/Brawny, but a Matrix
			// entry must name something: dropping it silently would run
			// the matrix over fewer platforms than asked for.
			return cfg, errors.New("edisim: empty platform ref in Matrix")
		}
		cfg.Matrix = append(cfg.Matrix, p)
	}
	if cfg.Faults, err = s.Faults.compile(); err != nil {
		return cfg, err
	}
	if cfg.Energy, err = hw.ParsePowerModelKind(s.EnergyModel); err != nil {
		return cfg, fmt.Errorf("edisim: %w", err)
	}
	if s.Region != "" {
		g, ok := carbon.Lookup(s.Region)
		if !ok {
			return cfg, unknownNameError("region", s.Region, carbon.RegionNames())
		}
		cfg.Region = g.Region // canonical spelling
	}
	return cfg, nil
}

// Run evaluates the scenario, streaming each completed Artifact to sink in
// workload order. Units (experiments, sweeps) run concurrently up to
// Scenario.Workers, but emission order — and every number — is independent
// of the worker count. The context is observed between units and polled at
// engine-step checkpoints inside long-running units: cancellation stops new
// work and returns ctx.Err() promptly, aborting in-flight simulations at
// their next checkpoint (a few thousand events away, so within
// milliseconds of wall clock).
//
// A unit that panics fails with that unit's error (carrying the worker
// stack); other units complete normally first. A sink error aborts the run
// and is returned as-is.
func Run(ctx context.Context, s Scenario, sink Sink) error {
	cfg, err := s.config()
	if err != nil {
		return err
	}
	cfg.Interrupt = func() bool { return ctx.Err() != nil }
	var units []unit
	for _, w := range s.Workloads {
		if w == nil {
			return errors.New("edisim: nil workload")
		}
		us, err := w.expand(cfg)
		if err != nil {
			return err
		}
		units = append(units, us...)
	}
	if len(units) == 0 {
		return errors.New("edisim: scenario has no workloads")
	}
	// Unit IDs must be unique: they namespace per-point seed derivation
	// (two sweeps sharing an ID would draw correlated random streams) and
	// are the document formats' stable artifact key.
	seen := make(map[string]bool, len(units))
	for _, u := range units {
		if seen[u.id] {
			return fmt.Errorf("edisim: duplicate artifact ID %q — give each workload a distinct ID", u.id)
		}
		seen[u.id] = true
	}

	// Units stream in order as the completed prefix grows. Sweep points
	// carry almost all of the work and fan across the full worker pool
	// inside each unit, so the unit level only needs enough overlap to
	// hide the serial (non-sweep) units: two at a time keeps the
	// worst-case goroutine and testbed-memory load near 2×Workers rather
	// than Workers².
	outer := 1
	if cfg.Workers > 1 {
		outer = 2
	}
	// An internal cancel stops the background workers from starting
	// further units once Run returns early (unit error, sink error, caller
	// cancellation) — an in-flight simulation still finishes, but nothing
	// new launches after the caller has its error.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		o   *core.Outcome
		err error
	}
	var (
		mu      sync.Mutex
		ready   = sync.NewCond(&mu)
		results = make([]*result, len(units))
	)
	// Unit panics must not kill the caller's process: a poisoned unit fails
	// with its own error (worker stack attached) while the others complete.
	runUnit := func(i int) (o *core.Outcome, err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &runner.PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		return units[i].run(cfg)
	}
	go runner.Map(outer, len(units), func(i int) *result {
		r := &result{}
		if ctx.Err() != nil {
			r.err = ctx.Err()
		} else {
			r.o, r.err = runUnit(i)
		}
		mu.Lock()
		results[i] = r
		ready.Broadcast()
		mu.Unlock()
		return r
	})

	for i, u := range units {
		mu.Lock()
		for results[i] == nil {
			ready.Wait()
		}
		r := results[i]
		mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		if r.err != nil {
			return fmt.Errorf("edisim: %s: %w", u.id, r.err)
		}
		if err := sink.Emit(artifactFromOutcome(u, r.o)); err != nil {
			return err
		}
	}
	return nil
}

// unknownNameError formats the shared unknown-name error shape: what was
// asked for and the valid set.
func unknownNameError(kind, name string, valid []string) error {
	return fmt.Errorf("edisim: unknown %s %q (valid: %v)", kind, name, valid)
}
