package edisim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"edisim/internal/core"
	"edisim/internal/report"
)

// Re-exported typed report building blocks: artifacts are built from these,
// and custom sinks consume them. They alias the internal types, so fields
// and methods are usable without importing any internal package.
type (
	// Table is a column-aligned table of typed Value cells.
	Table = report.Table
	// Figure is a set of named curves over a shared x axis.
	Figure = report.Figure
	// Value is one typed cell: float + unit, exact int, or label.
	Value = report.Value
	// Comparison is one paper-reported vs simulator-measured pair.
	Comparison = report.Comparison
)

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table { return report.NewTable(title, headers...) }

// NewFigure creates an empty figure over the given x axis.
func NewFigure(name, xlabel, ylabel string, x []float64) *Figure {
	return report.NewFigure(name, xlabel, ylabel, x)
}

// Num builds a measurement cell with a unit tag; Count an exact integer
// cell. Plain floats, ints and strings passed to Table.AddRow convert
// implicitly.
func Num(v float64, unit string) Value { return report.Num(v, unit) }

// Count builds an exact integer cell with a unit tag.
func Count(n int64, unit string) Value { return report.Count(n, unit) }

// Artifact is one completed evaluation result: the renderable tables and
// figures of an experiment, sweep or study, plus its paper-vs-measured
// comparisons.
type Artifact struct {
	// ID is the stable artifact identifier ("fig4_fig7", "web_sweep").
	ID string
	// Title and Section describe the artifact (Section is the paper
	// section for registry experiments, "scenario" for custom workloads).
	Title   string
	Section string

	Tables      []*Table
	Figures     []*Figure
	Comparisons []Comparison
	Notes       []string
}

// artifactFromOutcome pairs a unit's identity with what it produced.
func artifactFromOutcome(u unit, o *core.Outcome) *Artifact {
	return &Artifact{
		ID: u.id, Title: u.title, Section: u.section,
		Tables: o.Tables, Figures: o.Figures,
		Comparisons: o.Comparisons, Notes: o.Notes,
	}
}

// Sink receives artifacts as they complete, in scenario order. Each
// artifact is freshly built and never touched by the runner after Emit, so
// sinks may retain it (Collector does). Returning an error aborts the run.
type Sink interface {
	Emit(a *Artifact) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Artifact) error

// Emit calls f.
func (f SinkFunc) Emit(a *Artifact) error { return f(a) }

// MultiSink fans each artifact out to every sink in order, stopping at the
// first error.
func MultiSink(sinks ...Sink) Sink {
	return SinkFunc(func(a *Artifact) error {
		for _, s := range sinks {
			if err := s.Emit(a); err != nil {
				return err
			}
		}
		return nil
	})
}

// Collector is a Sink that accumulates every artifact, for emitters that
// need the whole run at once (JSON and CSV documents, ledgers).
type Collector struct {
	Artifacts []*Artifact
}

// Emit appends the artifact.
func (c *Collector) Emit(a *Artifact) error {
	c.Artifacts = append(c.Artifacts, a)
	return nil
}

// NewTextSink streams artifacts as the aligned-text blocks cmd/paper has
// always printed: a "==== id (§section) — title ====" header, then each
// table, figure and note. Any write error aborts the run.
func NewTextSink(w io.Writer) Sink {
	return SinkFunc(func(a *Artifact) error {
		var err error
		write := func(format string, args ...any) {
			if err == nil {
				_, err = fmt.Fprintf(w, format, args...)
			}
		}
		write("==== %s (§%s) — %s ====\n", a.ID, a.Section, a.Title)
		for _, t := range a.Tables {
			write("%v\n", t)
		}
		for _, f := range a.Figures {
			write("%v\n", f)
		}
		for _, n := range a.Notes {
			write("note: %s\n", n)
		}
		write("\n")
		return err
	})
}

// WriteLedger writes the paper-vs-simulated comparison ledger: one line per
// comparison across all artifacts, in order.
func WriteLedger(w io.Writer, artifacts []*Artifact) error {
	if _, err := fmt.Fprintln(w, "==== paper-vs-simulated ledger ===="); err != nil {
		return err
	}
	for _, a := range artifacts {
		for _, c := range a.Comparisons {
			if _, err := fmt.Fprintln(w, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- JSON ------------------------------------------------------------------

// DocumentSchema identifies the JSON document layout written by WriteJSON.
// The schema is documented in API.md and is a compatibility surface:
// removing or renaming a field is a breaking change; additions bump the
// version suffix.
const DocumentSchema = "edisim.report/v1"

// Document is the JSON wire form of a whole run.
type Document struct {
	Schema    string         `json:"schema"`
	Artifacts []ArtifactJSON `json:"artifacts"`
}

// ArtifactJSON is one artifact on the wire.
type ArtifactJSON struct {
	ID          string                  `json:"id"`
	Title       string                  `json:"title,omitempty"`
	Section     string                  `json:"section,omitempty"`
	Tables      []report.TableJSON      `json:"tables,omitempty"`
	Figures     []report.FigureJSON     `json:"figures,omitempty"`
	Comparisons []report.ComparisonJSON `json:"comparisons,omitempty"`
	Notes       []string                `json:"notes,omitempty"`
}

// JSON converts the artifact to its wire form.
func (a *Artifact) JSON() ArtifactJSON {
	out := ArtifactJSON{ID: a.ID, Title: a.Title, Section: a.Section, Notes: a.Notes}
	for _, t := range a.Tables {
		out.Tables = append(out.Tables, t.JSON())
	}
	for _, f := range a.Figures {
		out.Figures = append(out.Figures, f.JSON())
	}
	for _, c := range a.Comparisons {
		out.Comparisons = append(out.Comparisons, c.JSON())
	}
	return out
}

// Artifact converts the wire form back to a typed artifact.
func (a ArtifactJSON) Artifact() *Artifact {
	out := &Artifact{ID: a.ID, Title: a.Title, Section: a.Section, Notes: a.Notes}
	for _, t := range a.Tables {
		out.Tables = append(out.Tables, t.Table())
	}
	for _, f := range a.Figures {
		out.Figures = append(out.Figures, f.Figure())
	}
	for _, c := range a.Comparisons {
		out.Comparisons = append(out.Comparisons, c.Comparison())
	}
	return out
}

// WriteJSON writes the artifacts as one DocumentSchema JSON document
// (two-space indented, trailing newline). Encoding uses only structs and
// slices, so WriteJSON(ReadJSON(x)) == x byte for byte.
func WriteJSON(w io.Writer, artifacts []*Artifact) error {
	doc := Document{Schema: DocumentSchema, Artifacts: make([]ArtifactJSON, len(artifacts))}
	for i, a := range artifacts {
		doc.Artifacts[i] = a.JSON()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON decodes a WriteJSON document back into typed artifacts,
// rejecting unknown schemas.
func ReadJSON(r io.Reader) ([]*Artifact, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("edisim: decoding report document: %w", err)
	}
	if doc.Schema != DocumentSchema {
		return nil, fmt.Errorf("edisim: unsupported document schema %q (want %q)", doc.Schema, DocumentSchema)
	}
	out := make([]*Artifact, len(doc.Artifacts))
	for i, a := range doc.Artifacts {
		out[i] = a.Artifact()
	}
	return out, nil
}

// ValidOutputFormat reports whether format names an output mode the
// bundled cmds accept: "text" (streamed via NewTextSink) or a
// WriteDocument format. CLI front-ends share this so a format the library
// gains is accepted everywhere at once.
func ValidOutputFormat(format string) bool {
	switch format {
	case "text", "json", "csv":
		return true
	}
	return false
}

// WriteDocument dispatches to the document emitter named by format: "json"
// (WriteJSON) or "csv" (WriteCSV). The streaming "text" rendering is a
// Sink, not a document — use NewTextSink during the run instead.
func WriteDocument(format string, w io.Writer, artifacts []*Artifact) error {
	switch format {
	case "json":
		return WriteJSON(w, artifacts)
	case "csv":
		return WriteCSV(w, artifacts)
	default:
		return fmt.Errorf("edisim: unknown document format %q (want json or csv)", format)
	}
}

// --- CSV -------------------------------------------------------------------

// WriteCSV writes every table of every artifact (figures render through
// their table form) as comma-separated blocks. Each block is introduced by
// a "# <artifact-id>: <title>" comment line — plus a "# units: ..." line
// when the table carries column units — and separated by a blank line; a
// final "# run: ..." block carries the paper-vs-measured ledger. See
// API.md for the exact layout.
func WriteCSV(w io.Writer, artifacts []*Artifact) error {
	var comparisons []Comparison
	blank := false
	block := func(id string, t *Table) error {
		if blank {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		blank = true
		if _, err := fmt.Fprintf(w, "# %s: %s\n", id, t.Title); err != nil {
			return err
		}
		for _, u := range t.Units {
			if u != "" {
				if _, err := fmt.Fprintf(w, "# units: %s\n", strings.Join(t.Units, ",")); err != nil {
					return err
				}
				break
			}
		}
		_, err := io.WriteString(w, t.CSV())
		return err
	}
	for _, a := range artifacts {
		for _, t := range a.Tables {
			if err := block(a.ID, t); err != nil {
				return err
			}
		}
		for _, f := range a.Figures {
			if err := block(a.ID, f.Table()); err != nil {
				return err
			}
		}
		comparisons = append(comparisons, a.Comparisons...)
	}
	if len(comparisons) == 0 {
		return nil
	}
	t := report.NewTable("paper-vs-simulated comparisons", "artifact", "metric", "paper", "measured", "ratio")
	for _, c := range comparisons {
		t.AddRow(c.Artifact, c.Metric, c.Paper, c.Measured, c.RatioError())
	}
	return block("run", t)
}
