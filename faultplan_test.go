package edisim

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// faultyScenario runs the fault_tolerance experiment on the smallest catalog
// fleet under a custom plan hitting both the web tier and the Hadoop slaves.
func faultyScenario(workers int) Scenario {
	return Scenario{
		Quick:   true,
		Seed:    7,
		Workers: workers,
		Matrix:  []PlatformRef{Ref("r620")},
		Faults: &FaultPlan{Events: []FaultEvent{
			{Kind: "node_crash", At: 3, Duration: 2, Role: "web"},
			{Kind: "straggler", At: 2, Duration: 10, Factor: 0.4, Role: "slave", Index: 1},
		}},
		Workloads: []Workload{&PaperExperiments{IDs: []string{"fault_tolerance"}}},
	}
}

// TestFaultyScenarioDeterminism is the fault-injection reproducibility
// contract: the full artifact stream of a faulty scenario is byte-identical
// across worker counts and across repeated runs at the same seed.
func TestFaultyScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates web sweeps and Hadoop jobs")
	}
	render := func(workers int) string {
		var buf bytes.Buffer
		if err := Run(context.Background(), faultyScenario(workers), NewTextSink(&buf)); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return buf.String()
	}
	serial := render(1)
	if !strings.Contains(serial, "availability") {
		t.Fatalf("fault_tolerance artifact lacks availability output:\n%s", serial)
	}
	if parallel := render(4); serial != parallel {
		t.Fatalf("faulty output depends on worker count:\n-- serial --\n%s\n-- parallel --\n%s", serial, parallel)
	}
	if again := render(1); serial != again {
		t.Fatal("two faulty runs at the same seed differ")
	}
}

// TestFaultPlanValidationErrors checks a bad plan fails Run up front with a
// descriptive error, before any simulation starts.
func TestFaultPlanValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		plan    *FaultPlan
		wantErr string
	}{
		{"unknown kind", &FaultPlan{Events: []FaultEvent{{Kind: "meteor", Role: "web"}}}, "unknown kind"},
		{"negative at", &FaultPlan{Events: []FaultEvent{{Kind: "node_crash", At: -1, Role: "web"}}}, "time"},
		{"negative duration", &FaultPlan{Events: []FaultEvent{{Kind: "node_crash", Duration: -2, Role: "web"}}}, "duration"},
		{"zero factor straggler", &FaultPlan{Events: []FaultEvent{{Kind: "straggler", Role: "slave"}}}, "factor"},
		{"empty role", &FaultPlan{Events: []FaultEvent{{Kind: "link_cut"}}}, "empty role"},
		{"negative jitter", &FaultPlan{Jitter: -1, Events: []FaultEvent{{Kind: "node_crash", Role: "web"}}}, "jitter"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			scn := faultyScenario(1)
			scn.Faults = c.plan
			err := Run(context.Background(), scn, NewTextSink(&bytes.Buffer{}))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Run = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

// TestExpiredDeadlineFaultHeavyRun: a context that is already past its
// deadline must fail a fault-heavy scenario promptly with ctx.Err(), not
// simulate anything first.
func TestExpiredDeadlineFaultHeavyRun(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	var col Collector
	start := time.Now()
	err := Run(ctx, faultyScenario(2), &col)
	if err != context.DeadlineExceeded {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if len(col.Artifacts) != 0 {
		t.Fatalf("expired run emitted %d artifacts", len(col.Artifacts))
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("expired-deadline run took %v; cancellation is not prompt", el)
	}
}

// TestCancellationAbortsFaultHeavyRun cancels mid-run: the engine-step
// checkpoints must abort the in-flight fault simulation long before it
// would finish on its own.
func TestCancellationAbortsFaultHeavyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates part of a fault-heavy run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Run(ctx, faultyScenario(2), NewTextSink(&bytes.Buffer{})) }()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled fault-heavy run did not return within 60 s")
	}
}
