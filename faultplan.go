package edisim

import (
	"fmt"
	"strconv"
	"strings"

	"edisim/internal/faults"
)

// ParseFaultPlan parses the textual fault-schedule grammar the CLIs accept
// (see API.md). A schedule is a semicolon-separated list of events:
//
//	KIND@AT[+DURATION][xFACTOR]:ROLE[INDEX]
//
// where KIND is node_crash, straggler, link_cut or link_degrade; AT is the
// injection time in seconds into the run; +DURATION (optional) is how long
// the fault lasts before the target recovers (omitted = permanent); xFACTOR
// (straggler and link_degrade only) is the speed/capacity scale; ROLE names
// the target set ("web", "slave", "master"); and [INDEX] (optional,
// default 0) picks the target within it. Examples:
//
//	node_crash@30+120:slave[1]
//	straggler@10+60x0.25:web[2]
//	link_degrade@5x0.5:slave
//
// An empty spec returns a nil plan (no faults). The parsed plan is
// validated; a malformed or invalid event is an error naming it.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	fp := &FaultPlan{}
	for _, raw := range strings.Split(spec, ";") {
		s := strings.TrimSpace(raw)
		if s == "" {
			continue
		}
		ev, err := parseFaultEvent(s)
		if err != nil {
			return nil, fmt.Errorf("edisim: fault event %q: %w", s, err)
		}
		fp.Events = append(fp.Events, ev)
	}
	if len(fp.Events) == 0 {
		return nil, nil
	}
	if _, err := fp.compile(); err != nil {
		return nil, err
	}
	return fp, nil
}

// parseFaultEvent parses one KIND@AT[+DURATION][xFACTOR]:ROLE[INDEX] term.
func parseFaultEvent(s string) (FaultEvent, error) {
	var ev FaultEvent
	kind, rest, ok := strings.Cut(s, "@")
	if !ok {
		return ev, fmt.Errorf("missing '@AT' (want KIND@AT[+DURATION][xFACTOR]:ROLE[INDEX])")
	}
	ev.Kind = strings.TrimSpace(kind)
	timing, target, ok := strings.Cut(rest, ":")
	if !ok {
		return ev, fmt.Errorf("missing ':ROLE'")
	}
	if head, factor, ok := strings.Cut(timing, "x"); ok {
		f, err := strconv.ParseFloat(strings.TrimSpace(factor), 64)
		if err != nil {
			return ev, fmt.Errorf("bad factor %q", factor)
		}
		ev.Factor = f
		timing = head
	}
	at, dur, hasDur := strings.Cut(timing, "+")
	v, err := strconv.ParseFloat(strings.TrimSpace(at), 64)
	if err != nil {
		return ev, fmt.Errorf("bad time %q", at)
	}
	ev.At = v
	if hasDur {
		v, err := strconv.ParseFloat(strings.TrimSpace(dur), 64)
		if err != nil {
			return ev, fmt.Errorf("bad duration %q", dur)
		}
		ev.Duration = v
	}
	target = strings.TrimSpace(target)
	if i := strings.IndexByte(target, '['); i >= 0 {
		if !strings.HasSuffix(target, "]") {
			return ev, fmt.Errorf("unclosed index in %q", target)
		}
		n, err := strconv.Atoi(target[i+1 : len(target)-1])
		if err != nil {
			return ev, fmt.Errorf("bad index in %q", target)
		}
		ev.Index = n
		target = target[:i]
	}
	ev.Role = target
	return ev, nil
}

// RollingCrashFaults builds the classic rolling-failure availability drill:
// count distinct targets of the role crash one after another — target i goes
// down at start + i×gap and reboots downtime seconds later.
func RollingCrashFaults(role string, count int, start, gap, downtime float64) *FaultPlan {
	fp := &FaultPlan{}
	for i := 0; i < count; i++ {
		fp.Events = append(fp.Events, FaultEvent{
			Kind:     "node_crash",
			At:       start + float64(i)*gap,
			Duration: downtime,
			Role:     role,
			Index:    i,
		})
	}
	return fp
}

// ScheduleWebFaults arms a fault plan against a web deployment before a Run:
// roles "web" and "cache" resolve to the deployment's server tiers in ring
// order. Call it after building (and warming) the deployment and before
// Deployment.Run; event times are relative to the run's start. The seed
// drives the plan's jitter. A nil or empty plan is a no-op; an invalid plan
// or one naming any other role is an error.
func ScheduleWebFaults(dep *WebDeployment, plan *FaultPlan, seed int64) error {
	p, err := plan.compile()
	if err != nil {
		return err
	}
	if p.Empty() {
		return nil
	}
	roster := map[string][]faults.Target{}
	for _, w := range dep.Web {
		roster["web"] = append(roster["web"], faults.Target{Node: w.Node, Fab: dep.Fab})
	}
	for _, c := range dep.Cache {
		roster["cache"] = append(roster["cache"], faults.Target{Node: c.Node, Fab: dep.Fab})
	}
	for _, r := range p.Roles() {
		if _, ok := roster[r]; !ok {
			return fmt.Errorf("edisim: fault plan targets role %q; a web deployment has roles web and cache", r)
		}
	}
	faults.Schedule(dep.Eng, p, seed, roster)
	return nil
}
