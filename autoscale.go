package edisim

import (
	"fmt"

	"edisim/internal/autoscale"
	"edisim/internal/cluster"
	"edisim/internal/core"
	"edisim/internal/faults"
	"edisim/internal/report"
	"edisim/internal/web"
)

// --- Autoscaling -------------------------------------------------------------

// AutoscalePolicy decides how many web servers should be serving, evaluated
// once per SLO controller window. The built-in policies are
// TargetUtilPolicy, QueueDepthPolicy and PredictivePolicy; custom
// implementations must be deterministic pure functions of the signals.
type AutoscalePolicy = autoscale.Policy

type (
	// TargetUtilPolicy sizes the fleet to hold mean CPU utilization at
	// Target (the horizontal-pod-autoscaler shape).
	TargetUtilPolicy = autoscale.TargetUtil
	// QueueDepthPolicy reacts to per-server in-flight depth and admission-
	// control shedding; thresholds default from the platform's limits.
	QueueDepthPolicy = autoscale.QueueDepth
	// PredictivePolicy reads the declared LoadProfile one boot delay ahead
	// and provisions for it now — the only policy that can beat the boot
	// delay on a known cycle, and blind to anything the profile omits.
	PredictivePolicy = autoscale.Predictive
)

// AutoscaleConfig arms the elasticity engine on a run: a Policy plus fleet
// lifecycle knobs (boot delay, warm-up penalty, cooldowns, serving bounds).
// Zero boot/warm-up knobs resolve from the web platform's Boot calibration.
type AutoscaleConfig = autoscale.Config

// ScaleEvent is one fleet transition (boot, join, drain, park), delivered
// to AutoscaleConfig.Observer; ScaleEventKind labels it.
type (
	ScaleEvent     = autoscale.Event
	ScaleEventKind = autoscale.EventKind
)

// The fleet transitions an Observer sees.
const (
	ScaleBootStart   = autoscale.EventBootStart
	ScaleBootAbort   = autoscale.EventBootAbort
	ScaleJoin        = autoscale.EventJoin
	ScaleDrainStart  = autoscale.EventDrainStart
	ScaleDrainCancel = autoscale.EventDrainCancel
	ScalePark        = autoscale.EventPark
)

// AutoscaleStudy drives a middle tier with an open-loop LoadProfile while
// an elastic fleet policy sizes the web tier: servers boot with the
// platform's power-on delay (at busy draw), join cold (warm-up speed
// penalty), and drain before parking at zero draw — so the reported energy
// prices the whole elasticity story, not just the serving steady state. A
// nil Autoscale runs the identical traffic on the static fleet, making a
// fixed-vs-elastic comparison two studies in one Scenario. Composes with
// Scenario.Faults (roles "web" and "cache") and all OverloadStudy knobs.
//
// Determinism contract: for a fixed Scenario seed the study is bit-identical
// across Workers settings — policy decisions run on simulated time from
// windowed signals, never on wall clock or scheduling order.
type AutoscaleStudy struct {
	// ID names the artifact (default "autoscale_study") and namespaces the
	// run's seed: two studies in one scenario need distinct IDs.
	ID string

	// Web and Cache size the middle tier exactly like WebSweep: the web
	// platform defaults to the baseline micro server at its fleet size, the
	// cache tier to the web platform at its fleet size.
	Web   TierSpec
	Cache TierSpec
	// DBNodes and Clients size the shared infrastructure tier (defaults:
	// the paper's 2 database servers and 8 load generators).
	DBNodes, Clients int

	// Profile is the open-loop arrival profile (required). PredictivePolicy
	// extrapolates this same profile.
	Profile LoadProfile
	// Duration is the simulated seconds (default 30, 8 in Quick — longer
	// than OverloadStudy so the fleet has room to move).
	Duration float64
	// ImageFrac and CacheHit mirror WebSweep's workload knobs.
	ImageFrac float64
	CacheHit  float64

	// RequestTimeout is the client timeout in seconds (default 0.5).
	RequestTimeout float64
	// RetryBudget caps client retries (0: unbudgeted).
	RetryBudget float64
	// Shed is the admission-control policy; the zero value accepts
	// everything.
	Shed ShedPolicy
	// SLO is the controller the policy observes (default: p99 <= 0.5 s,
	// availability >= 99%, 1 s windows). SLO.Reserve is incompatible with
	// autoscaling — both edit the routing rotation.
	SLO *SLO

	// Autoscale arms the elasticity engine. Nil runs the static fully-
	// provisioned fleet as the baseline under identical traffic.
	Autoscale *AutoscaleConfig
}

// autoscaleStudySLO is the default objective an AutoscaleStudy is judged
// against when SLO is nil.
func autoscaleStudySLO() *SLO {
	return &SLO{Latency: 0.5, Availability: 0.99, Window: 1}
}

func (as *AutoscaleStudy) expand(cfg core.Config) ([]unit, error) {
	id := as.ID
	if id == "" {
		id = "autoscale_study"
	}
	ts, err := resolveTiers(id, as.Web, as.Cache, as.DBNodes, as.Clients)
	if err != nil {
		return nil, err
	}
	if as.Profile == nil {
		return nil, fmt.Errorf("edisim: %s: an autoscale study needs a load Profile (e.g. DiurnalLoad{Min: 60, Max: 400, Period: 30})", id)
	}
	if err := as.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("edisim: %s: %w", id, err)
	}
	if err := as.Shed.Validate(); err != nil {
		return nil, fmt.Errorf("edisim: %s: %w", id, err)
	}
	if err := as.SLO.Validate(); err != nil {
		return nil, fmt.Errorf("edisim: %s: %w", id, err)
	}
	if as.Autoscale != nil {
		if err := as.Autoscale.Validate(); err != nil {
			return nil, fmt.Errorf("edisim: %s: %w", id, err)
		}
		if as.SLO != nil && as.SLO.Reserve > 0 {
			return nil, fmt.Errorf("edisim: %s: Autoscale and SLO.Reserve both edit the routing rotation; use one", id)
		}
	}

	mode := "static fleet"
	if as.Autoscale != nil {
		mode = as.Autoscale.Policy.Name() + " policy"
	}
	title := fmt.Sprintf("Autoscale study: %v, %s on %d %s web + %d %s cache",
		as.Profile, mode, ts.nWeb, ts.webPlat.Label, ts.nCache, ts.cachePlat.Label)

	run := func(cfg core.Config) (*core.Outcome, error) {
		duration := as.Duration
		if duration == 0 {
			duration = 30
			if cfg.Quick {
				duration = 8
			}
		}
		timeout := as.RequestTimeout
		if timeout == 0 {
			timeout = 0.5
		}
		rc := web.RunConfig{
			Profile:        as.Profile,
			Duration:       duration,
			ImageFrac:      as.ImageFrac,
			CacheHit:       as.CacheHit,
			RequestTimeout: timeout,
			RetryBudget:    as.RetryBudget,
			Shed:           as.Shed,
		}
		if as.Autoscale != nil {
			ac := *as.Autoscale
			rc.Autoscale = &ac
		}
		s := autoscaleStudySLO()
		if as.SLO != nil {
			c := *as.SLO
			s = &c
		}
		// The controller time series backs the figure and the SLO-met
		// fraction; a caller-provided Observer still sees every window.
		var wins []SLOWindow
		chain := s.Observer
		s.Observer = func(w SLOWindow) {
			wins = append(wins, w)
			if chain != nil {
				chain(w)
			}
		}
		rc.SLO = s

		seed := cfg.PointSeed(id, 0)
		cc := ts.clusterConfig()
		cc.Energy = cfg.Energy
		tb := cluster.New(cc)
		dep := web.NewTieredDeployment(tb, ts.webPlat, ts.nWeb, ts.cachePlat, ts.nCache, seed)
		dep.WarmFor(rc)
		if cfg.Faults != nil {
			roster := map[string][]faults.Target{}
			for _, w := range dep.Web {
				roster["web"] = append(roster["web"], faults.Target{Node: w.Node, Fab: dep.Fab})
			}
			for _, c := range dep.Cache {
				roster["cache"] = append(roster["cache"], faults.Target{Node: c.Node, Fab: dep.Fab})
			}
			plan := cfg.Faults.Filter("web", "cache")
			if !plan.Empty() {
				faults.Schedule(dep.Eng, plan, seed, roster)
			}
		}
		res := dep.Run(rc)

		// SLO-met fraction over the measurement window's controller
		// evaluations (window ends after warm-up, T is relative to run
		// start).
		wInWin, burned := 0, 0
		for _, w := range wins {
			if w.T > 0.1*duration && w.T <= duration {
				wInWin++
				if w.Burning {
					burned++
				}
			}
		}
		sloMet := 1.0
		if wInWin > 0 {
			sloMet = 1 - float64(burned)/float64(wInWin)
		}
		meanActive := res.MeanActive
		if as.Autoscale == nil {
			meanActive = float64(ts.nWeb)
		}
		perW := 0.0
		if res.MeanPower > 0 {
			perW = res.Throughput / float64(res.MeanPower)
		}

		window := duration * 0.9
		o := &core.Outcome{}
		t := report.NewTable(title,
			"offered conn/s", "goodput req/s", "SLO met", "mean active", "scale events", "boots", "boot J", "power W", "req/s/W", "shed /s", "err rate").
			WithUnits("conn/s", "req/s", "", "servers", "", "", "J", "W", "req/s/W", "/s", "")
		t.AddRow(
			report.Num(float64(res.Offered)/window, "conn/s"),
			report.Num(res.Throughput, "req/s"),
			report.Num(sloMet, ""),
			report.Num(meanActive, "servers"),
			report.Count(res.ScaleUps+res.ScaleDowns, ""),
			report.Count(res.Boots, ""),
			report.Num(float64(res.BootEnergy), "J"),
			report.Num(float64(res.MeanPower), "W"),
			report.Num(perW, "req/s/W"),
			report.Num(float64(res.Shed)/window, "/s"),
			report.Num(res.ErrorRate, ""),
		)
		o.Tables = append(o.Tables, t)
		if len(wins) > 0 {
			x := make([]float64, len(wins))
			served := make([]float64, len(wins))
			active := make([]float64, len(wins))
			for i, w := range wins {
				x[i] = w.T
				served[i] = float64(w.Served) / s.Window
				active[i] = float64(w.Active)
			}
			f := report.NewFigure(title+" — fleet vs load", "t (s)", "per second / servers", x)
			f.Add("served ops/s", served)
			f.Add("servers in rotation", active)
			o.Figures = append(o.Figures, f)
		}
		o.Notes = append(o.Notes, fmt.Sprintf(
			"%s; boot and idle-parked energy are inside power W and req/s/W; scale-down drains before parking (no request is killed by elasticity)",
			mode))
		return o, nil
	}
	return []unit{{id: id, title: title, section: "scenario", run: run}}, nil
}
