// Faulttolerance: availability under failure on the paper's compared pair —
// the Edison micro-server fleet vs the Dell R620 brawny fleet, each running
// the web workload while a rolling wave of node crashes takes a third of its
// web tier down and back up, with client timeouts, capped-backoff retries
// and failover to live replicas carrying the traffic through.
//
// The micro fleet's availability story is the flip side of its
// energy-efficiency one: many small servers mean each crash removes a small
// slice of capacity (graceful degradation), while the brawny fleet loses a
// large share per node — but recovers it just as fast. The same scenario
// also runs TeraSort with a mid-job slave crash under task re-execution, so
// the batch tier's recovery cost (retries, re-executed map output, stretch
// in completion time) lands in the same report.
//
// The injected schedule is deterministic: the same seed reproduces the
// same crashes, timeouts and retries bit for bit, for any worker count.
//
// Uses only the public edisim package; -quick trims the sweep for CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "shorter measurement windows (CI smoke run)")
	seed := flag.Int64("seed", 1, "root random seed; also drives fault-time jitter")
	format := flag.String("format", "text", "output format: text, json or csv")
	flag.Parse()

	// The fault_tolerance experiment builds each platform's catalog fleets
	// and runs them healthy and under its built-in drills: a rolling crash
	// through a third of the web tier, and one mid-job slave crash for
	// TeraSort. Scenario.Faults could replace those drills with a custom
	// schedule (see API.md); the built-ins are what this comparison wants.
	scn := edisim.Scenario{
		Name:  "faulttolerance",
		Seed:  *seed,
		Quick: *quick,
		Matrix: []edisim.PlatformRef{
			edisim.Ref("edison"),
			edisim.Ref("dell"),
		},
		Workloads: []edisim.Workload{
			&edisim.PaperExperiments{IDs: []string{"fault_tolerance"}},
		},
	}

	switch *format {
	case "text":
		if err := edisim.Run(context.Background(), scn, edisim.NewTextSink(os.Stdout)); err != nil {
			log.Fatal(err)
		}
		fmt.Println("same drill on both fleets: compare availability and p99-under-failure —")
		fmt.Println("the 24-node Edison web tier sheds a crash as a 1/24 capacity dip, the")
		fmt.Println("2-node Dell tier as half its servers; retries and failover fill both gaps")
	case "json", "csv":
		var col edisim.Collector
		if err := edisim.Run(context.Background(), scn, &col); err != nil {
			log.Fatal(err)
		}
		if err := edisim.WriteDocument(*format, os.Stdout, col.Artifacts); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "faulttolerance: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}
}
