// Carbon: the energy/carbon/price layers over the paper's cost model —
// compare the calibrated linear and component TDP-curve power models per
// platform, then price fleets across electricity-grid regions (operational
// and embodied carbon, regional tariffs, an explicit carbon price) with the
// CarbonStudy and TCOStudy workloads.
//
// Uses only the public edisim package. The studies are closed-form, so
// -quick changes nothing; the flag exists so CI can run every example
// uniformly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"edisim"
)

func main() {
	flag.Bool("quick", false, "accepted for CI uniformity (the studies are instant)")
	flag.Parse()

	micro, brawny := edisim.BaselinePair()

	// Layer 1 — node power models. The linear model is the paper's measured
	// calibration; the TDP curve rebuilds the envelope from component data
	// (CPU TDP interpolation, W/GB memory, disks, PSU overhead).
	fmt.Println("Power model endpoints, idle -> busy wall draw:")
	for _, p := range []*edisim.Platform{micro, brawny} {
		lin := p.PowerModelFor(edisim.PowerLinear)
		curve := p.PowerModelFor(edisim.PowerTDPCurve)
		fmt.Printf("  %-8s linear %6.2f -> %7.2f W    tdp-curve %6.2f -> %7.2f W\n",
			p.Label, float64(lin.IdleDraw()), float64(lin.BusyDraw()),
			float64(curve.IdleDraw()), float64(curve.BusyDraw()))
	}

	// Layer 2 — grid regions: carbon intensity and electricity price.
	fmt.Println("\nGrid regions (gCO2e/kWh, USD/kWh):")
	for _, g := range edisim.Regions() {
		price, _ := edisim.RegionElectricityPrice(g.Region)
		fmt.Printf("  %-14s %5.0f g/kWh   $%.3f/kWh   %s\n", g.Region, float64(g.Grams), price, g.Label)
	}

	// Layer 3 — the studies. CarbonStudy prices the baseline pair's fleets
	// across three contrasting grids under the TDP-curve model with an $80
	// carbon price; TCOStudy adds its carbon columns for one region.
	scn := edisim.Scenario{
		Name:        "carbon-example",
		EnergyModel: "tdp-curve",
		Workloads: []edisim.Workload{
			&edisim.CarbonStudy{
				Platforms:           []edisim.PlatformRef{edisim.Ref(micro.Name), edisim.Ref(brawny.Name)},
				Regions:             []string{"eu-north", "us-east", "ap-south"},
				Utilization:         0.75,
				CarbonPricePerTonne: 80,
			},
			&edisim.TCOStudy{
				ID:                  "tco_eu_north",
				Platforms:           []edisim.PlatformRef{edisim.Ref(micro.Name), edisim.Ref(brawny.Name)},
				Utilization:         0.75,
				Region:              "eu-north",
				CarbonPricePerTonne: 80,
			},
		},
	}
	fmt.Println()
	if err := edisim.Run(context.Background(), scn, edisim.NewTextSink(os.Stdout)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("low-carbon grids (eu-north hydro) shrink the carbon column to noise;")
	fmt.Println("coal-heavy grids (ap-south) make it a visible fraction of the electricity bill")
}
