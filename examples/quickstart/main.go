// Quickstart: build the paper's testbed, check the back-of-the-envelope
// sizing (Table 2), run a small MapReduce job both functionally (real
// records through LocalRun) and on the simulated cluster (time + energy),
// and print the work-done-per-joule comparison that motivates the paper.
package main

import (
	"fmt"
	"log"

	"edisim/internal/hw"
	"edisim/internal/jobs"
	"edisim/internal/mapred"
)

func main() {
	// 1. How many Edison micro servers replace one Dell R620? (§3.1)
	est := hw.EstimateReplacement(hw.EdisonSpec(), hw.DellR620Spec())
	fmt.Printf("Table 2: %d Edison nodes match one Dell R620 (CPU %d, RAM %d, NIC %d)\n\n",
		est.Required, est.ByCPU, est.ByRAM, est.ByNIC)

	// 2. Functional check: the real wordcount counts real words.
	job := jobs.Wordcount(4, 4, jobs.EdisonPlatform)
	local, err := mapred.LocalRun(job, map[string][]string{
		"part-0": jobs.GenerateTextLines(1, 200, 8),
		"part-1": jobs.GenerateTextLines(2, 200, 8),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount (local executor): %d input records -> %d distinct words\n\n",
		local.MapInputRecords, local.ReduceInputGroups)

	// 3. The same workload on both simulated clusters (small scale for a
	// fast demo): who does more work per joule?
	fmt.Println("logcount2 on simulated clusters:")
	edison, err := jobs.Run("logcount2", jobs.EdisonPlatform, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	dell, err := jobs.Run("logcount2", jobs.DellPlatform, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  8 Edison slaves: %5.0f s, %6.0f J\n", edison.Duration, float64(edison.Energy))
	fmt.Printf("  1 Dell slave:    %5.0f s, %6.0f J\n", dell.Duration, float64(dell.Energy))
	fmt.Printf("  Edison work-done-per-joule advantage: %.2fx\n",
		float64(dell.Energy)/float64(edison.Energy))
}
