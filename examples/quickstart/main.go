// Quickstart: build the paper's testbed, check the back-of-the-envelope
// sizing (Table 2), run a small MapReduce job both functionally (real
// records through LocalRun) and on the simulated cluster (time + energy),
// and print the work-done-per-joule comparison that motivates the paper.
package main

import (
	"fmt"
	"log"

	"edisim/internal/hw"
	"edisim/internal/jobs"
	"edisim/internal/mapred"
)

func main() {
	micro, brawny := hw.BaselinePair()

	// 1. How many micro servers replace one brawny server? (§3.1)
	est := hw.EstimateReplacement(micro.Spec, brawny.Spec)
	fmt.Printf("Table 2: %d %s nodes match one %s (CPU %d, RAM %d, NIC %d)\n\n",
		est.Required, micro.Label, brawny.FullName, est.ByCPU, est.ByRAM, est.ByNIC)

	// 2. Functional check: the real wordcount counts real words.
	job := jobs.Wordcount(4, micro)
	local, err := mapred.LocalRun(job, map[string][]string{
		"part-0": jobs.GenerateTextLines(1, 200, 8),
		"part-1": jobs.GenerateTextLines(2, 200, 8),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount (local executor): %d input records -> %d distinct words\n\n",
		local.MapInputRecords, local.ReduceInputGroups)

	// 3. The same workload on both simulated clusters (small scale for a
	// fast demo): who does more work per joule?
	fmt.Println("logcount2 on simulated clusters:")
	e, err := jobs.Run("logcount2", micro, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	d, err := jobs.Run("logcount2", brawny, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  8 %s slaves: %5.0f s, %6.0f J\n", micro.Label, e.Duration, float64(e.Energy))
	fmt.Printf("  1 %s slave:    %5.0f s, %6.0f J\n", brawny.Label, d.Duration, float64(d.Energy))
	fmt.Printf("  %s work-done-per-joule advantage: %.2fx\n",
		micro.Label, float64(d.Energy)/float64(e.Energy))
}
