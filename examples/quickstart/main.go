// Quickstart: build the paper's testbed, check the back-of-the-envelope
// sizing (Table 2), run a small MapReduce job both functionally (real
// records through LocalRun) and on the simulated cluster (time + energy),
// and print the work-done-per-joule comparison that motivates the paper.
//
// Everything comes from the public edisim package; -quick shrinks the
// simulated clusters for CI smoke runs.
package main

import (
	"flag"
	"fmt"
	"log"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "smaller simulated clusters (CI smoke run)")
	flag.Parse()

	micro, brawny := edisim.BaselinePair()

	// 1. How many micro servers replace one brawny server? (§3.1)
	est := edisim.EstimateReplacement(micro, brawny)
	fmt.Printf("Table 2: %d %s nodes match one %s (CPU %d, RAM %d, NIC %d)\n\n",
		est.Required, micro.Label, brawny.FullName, est.ByCPU, est.ByRAM, est.ByNIC)

	// 2. Functional check: the real wordcount counts real words.
	job := edisim.WordcountJob(4, micro)
	local, err := edisim.LocalRun(job, map[string][]string{
		"part-0": edisim.GenerateTextLines(1, 200, 8),
		"part-1": edisim.GenerateTextLines(2, 200, 8),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wordcount (local executor): %d input records -> %d distinct words\n\n",
		local.MapInputRecords, local.ReduceInputGroups)

	// 3. The same workload on both simulated clusters (small scale for a
	// fast demo): who does more work per joule?
	microSlaves := 8
	if *quick {
		microSlaves = 4
	}
	fmt.Println("logcount2 on simulated clusters:")
	e, err := edisim.RunJob("logcount2", micro, microSlaves, 1)
	if err != nil {
		log.Fatal(err)
	}
	d, err := edisim.RunJob("logcount2", brawny, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d %s slaves: %5.0f s, %6.0f J\n", microSlaves, micro.Label, e.Duration, float64(e.Energy))
	fmt.Printf("  1 %s slave:    %5.0f s, %6.0f J\n", brawny.Label, d.Duration, float64(d.Energy))
	fmt.Printf("  %s work-done-per-joule advantage: %.2fx\n",
		micro.Label, float64(d.Energy)/float64(e.Energy))
}
