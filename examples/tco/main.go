// TCO: evaluate the paper's cost model (Section 6) for the published
// scenarios and a sensitivity sweep over electricity price, showing when
// the micro cluster's lower equipment + energy cost wins.
package main

import (
	"fmt"

	"edisim/internal/tco"
)

func main() {
	fmt.Println("Table 10 — 3-year TCO:")
	for _, s := range tco.Table10() {
		fmt.Printf("  %-34s Dell $%7.1f   Edison $%7.1f   savings %4.1f%%\n",
			s.Name, s.Dell.Total(), s.Edison.Total(), 100*s.Savings())
	}

	fmt.Println("\nSensitivity: web-service high utilization vs electricity price")
	for _, price := range []float64{0.05, 0.10, 0.20, 0.40} {
		d := tco.DellInputs(3, 0.75)
		e := tco.EdisonInputs(35, 0.75)
		d.PricePerKWh, e.PricePerKWh = price, price
		rd, re := tco.Compute(d), tco.Compute(e)
		fmt.Printf("  $%.2f/kWh: Dell $%8.1f  Edison $%7.1f  savings %4.1f%%\n",
			price, rd.Total(), re.Total(), 100*(1-re.Total()/rd.Total()))
	}
	fmt.Println("\nhigher electricity prices widen the micro cluster's advantage")
}
