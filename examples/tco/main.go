// TCO: evaluate the paper's cost model (Section 6) for the published
// scenarios and a sensitivity sweep over electricity price, showing when
// the micro cluster's lower equipment + energy cost wins.
//
// Uses only the public edisim package. The cost model is closed-form, so
// -quick changes nothing; the flag exists so CI can run every example
// uniformly.
package main

import (
	"flag"
	"fmt"
	"log"

	"edisim"
)

func main() {
	flag.Bool("quick", false, "accepted for CI uniformity (the cost model is instant)")
	flag.Parse()

	micro, brawny := edisim.BaselinePair()
	fmt.Println("Table 10 — 3-year TCO:")
	for _, s := range edisim.TCOTable10() {
		fmt.Printf("  %-34s %s $%7.1f   %s $%7.1f   savings %4.1f%%\n",
			s.Name, brawny.Label, s.Brawny.Total(), micro.Label, s.Micro.Total(), 100*s.Savings())
	}

	fmt.Println("\nSensitivity: web-service high utilization vs electricity price")
	for _, price := range []float64{0.05, 0.10, 0.20, 0.40} {
		d := edisim.TCOForPlatform(brawny, 3, 0.75)
		e := edisim.TCOForPlatform(micro, 35, 0.75)
		d.PricePerKWh, e.PricePerKWh = price, price
		rd, err := edisim.ComputeTCO(d)
		if err != nil {
			log.Fatal(err)
		}
		re, err := edisim.ComputeTCO(e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  $%.2f/kWh: %s $%8.1f  %s $%7.1f  savings %4.1f%%\n",
			price, brawny.Label, rd.Total(), micro.Label, re.Total(), 100*(1-re.Total()/rd.Total()))
	}
	fmt.Println("\nhigher electricity prices widen the micro cluster's advantage")

	fmt.Println("\nEqual-budget sizing: what the brawny web fleet's spend buys per platform")
	budget, err := edisim.ComputeTCO(edisim.TCOForPlatform(brawny, 3, 0.75))
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range edisim.Platforms() {
		n, err := edisim.SizeFleetForBudget(p, budget.Total(), 0.75)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  $%.0f buys %3d × %s\n", budget.Total(), n, p.FullName)
	}
}
