// Failure: exercise the HDFS recovery path the paper's durability argument
// rests on (advantage 2 in §1: node failures matter less in micro
// clusters): kill a datanode mid-life and watch re-replication restore
// every block's replica count.
//
// Uses only the public edisim package; -quick shrinks the stored corpus
// for CI smoke runs.
package main

import (
	"flag"
	"fmt"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "smaller corpus (CI smoke run)")
	flag.Parse()

	micro, brawny := edisim.BaselinePair()
	tb := edisim.NewTestbed(edisim.ClusterConfig{
		Groups: []edisim.ClusterGroup{{Platform: micro, Nodes: 8}, {Platform: brawny, Nodes: 1}},
	})
	corpus := 512 * edisim.MB
	if *quick {
		corpus = 128 * edisim.MB
	}
	fs := edisim.NewHDFS(tb, tb.Nodes(brawny)[0].ID, tb.Nodes(micro), 16*edisim.MB, 2, 1)
	fs.CreateInstant("/data/corpus", corpus)

	victim := fs.DataNodes()[0]
	fmt.Printf("stored %v across %d datanodes (replication 2)\n",
		fs.TotalStored(), len(fs.DataNodes()))
	fmt.Printf("failing %s, which holds %v...\n", victim.Node.ID, victim.Used())

	start := tb.Eng.Now()
	fs.FailNode(victim, func(n int) {
		fmt.Printf("re-replicated %d blocks in %.1f simulated seconds\n",
			n, float64(tb.Eng.Now()-start))
	})
	tb.Eng.Run()

	if err := fs.CheckInvariants(); err != nil {
		fmt.Println("INVARIANT VIOLATION:", err)
		return
	}
	fmt.Println("all blocks have a full live replica set; metadata consistent")
	fmt.Printf("recovery network traffic: %v\n", tb.Fab.TotalBytes())
}
