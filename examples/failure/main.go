// Failure: exercise the HDFS recovery path the paper's durability argument
// rests on (advantage 2 in §1: node failures matter less in micro
// clusters): kill a datanode mid-life and watch re-replication restore
// every block's replica count.
package main

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/hdfs"
	"edisim/internal/hw"
	"edisim/internal/units"
)

func main() {
	micro, brawny := hw.BaselinePair()
	tb := cluster.New(cluster.Config{
		Groups: []cluster.GroupConfig{{Platform: micro, Nodes: 8}, {Platform: brawny, Nodes: 1}},
	})
	fs := hdfs.New(tb.Fab, tb.Nodes(brawny)[0].ID, tb.Nodes(micro), 16*units.MB, 2, 1)
	fs.CreateInstant("/data/corpus", 512*units.MB)

	victim := fs.DataNodes()[0]
	fmt.Printf("stored %v across %d datanodes (replication 2)\n",
		fs.TotalStored(), len(fs.DataNodes()))
	fmt.Printf("failing %s, which holds %v...\n", victim.Node.ID, victim.Used())

	start := tb.Eng.Now()
	fs.FailNode(victim, func(n int) {
		fmt.Printf("re-replicated %d blocks in %.1f simulated seconds\n",
			n, float64(tb.Eng.Now()-start))
	})
	tb.Eng.Run()

	if err := fs.CheckInvariants(); err != nil {
		fmt.Println("INVARIANT VIOLATION:", err)
		return
	}
	fmt.Println("all blocks have a full live replica set; metadata consistent")
	fmt.Printf("recovery network traffic: %v\n", tb.Fab.TotalBytes())
}
