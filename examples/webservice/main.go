// Webservice: drive the LLMP stack (Lighttpd + memcached + MySQL behind
// HAProxy) on both middle tiers at a few httperf concurrency levels,
// showing the paper's headline trade-off: comparable peak throughput,
// higher micro-server latency, and ≈3.5× better energy efficiency (§5.1).
//
// Uses only the public edisim package (the composition toolkit: testbeds
// and web deployments built by hand); -quick trims the sweep for CI smoke
// runs. See examples/mixedtier for the declarative Scenario API.
package main

import (
	"flag"
	"fmt"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "fewer concurrency levels, shorter windows (CI smoke run)")
	flag.Parse()

	micro, brawny := edisim.BaselinePair()
	concs := []float64{128, 512, 1024}
	duration := 8.0
	if *quick {
		concs = []float64{512}
		duration = 4.0
	}
	fmt.Println("httperf sweep, 93% cache hit, no image queries (Figure 4 excerpt)")
	fmt.Printf("%-8s %-8s %-10s %-10s %-10s %-12s\n",
		"tier", "conn/s", "req/s", "delay", "power", "req/joule")

	for _, conc := range concs {
		for _, tier := range []struct {
			p            *edisim.Platform
			nWeb, nCache int
		}{
			{micro, 24, 11},
			{brawny, 2, 1},
		} {
			tb := edisim.NewTestbed(edisim.ClusterConfig{
				Groups:  []edisim.ClusterGroup{{Platform: tier.p, Nodes: tier.nWeb + tier.nCache}},
				DBNodes: 2, Clients: 8,
			})
			dep := edisim.NewWebDeployment(tb, tier.p, tier.nWeb, tier.nCache, 1)
			dep.Warm(0.93)
			r := dep.Run(edisim.WebRunConfig{Concurrency: conc, Duration: duration})
			fmt.Printf("%-8s %-8.0f %-10.0f %-10s %-10s %-12.1f\n",
				tier.p.Label, conc, r.Throughput,
				fmt.Sprintf("%.1fms", r.MeanDelay*1e3),
				fmt.Sprintf("%.1fW", float64(r.MeanPower)),
				r.Throughput/float64(r.MeanPower))
		}
	}
	fmt.Println("\nreq/joule at peak is the paper's 3.5x energy-efficiency result")
}
