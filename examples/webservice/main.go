// Webservice: drive the LLMP stack (Lighttpd + memcached + MySQL behind
// HAProxy) on both middle tiers at a few httperf concurrency levels,
// showing the paper's headline trade-off: comparable peak throughput,
// higher micro-server latency, and ≈3.5× better energy efficiency (§5.1).
package main

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/web"
)

func main() {
	micro, brawny := hw.BaselinePair()
	fmt.Println("httperf sweep, 93% cache hit, no image queries (Figure 4 excerpt)")
	fmt.Printf("%-8s %-8s %-10s %-10s %-10s %-12s\n",
		"tier", "conn/s", "req/s", "delay", "power", "req/joule")

	for _, conc := range []float64{128, 512, 1024} {
		for _, tier := range []struct {
			p            *hw.Platform
			nWeb, nCache int
		}{
			{micro, 24, 11},
			{brawny, 2, 1},
		} {
			tb := cluster.New(cluster.Config{
				Groups:  []cluster.GroupConfig{{Platform: tier.p, Nodes: tier.nWeb + tier.nCache}},
				DBNodes: 2, Clients: 8,
			})
			dep := web.NewDeployment(tb, tier.p, tier.nWeb, tier.nCache, 1)
			dep.Warm(0.93)
			r := dep.Run(web.RunConfig{Concurrency: conc, Duration: 8})
			fmt.Printf("%-8s %-8.0f %-10.0f %-10s %-10s %-12.1f\n",
				tier.p.Label, conc, r.Throughput,
				fmt.Sprintf("%.1fms", r.MeanDelay*1e3),
				fmt.Sprintf("%.1fW", float64(r.MeanPower)),
				r.Throughput/float64(r.MeanPower))
		}
	}
	fmt.Println("\nreq/joule at peak is the paper's 3.5x energy-efficiency result")
}
