// Mixedtier: the heterogeneous-testbed scenario the platform catalog was
// built for (ROADMAP: mixed-platform testbeds in one cluster) — a
// Raspberry-Pi-3 web tier in front of a modern-Xeon cache tier, compared
// with the all-Pi3 fleet, through the declarative Scenario API.
//
// One Xeon cache server replaces four Pi3 cache nodes: the web tier keeps
// its wimpy-core energy profile while cache GETs stop queueing behind slow
// cores at high concurrency.
//
// Uses only the public edisim package; -quick trims the sweep for CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "fewer concurrency levels, shorter windows (CI smoke run)")
	format := flag.String("format", "text", "output format: text, json or csv")
	flag.Parse()

	scn := edisim.Scenario{
		Name:  "mixedtier",
		Quick: *quick,
		Workloads: []edisim.Workload{
			&edisim.WebSweep{
				ID:    "pi3_homogeneous",
				Web:   edisim.TierSpec{Platform: edisim.Ref("pi3"), Nodes: 8},
				Cache: edisim.TierSpec{Platform: edisim.Ref("pi3"), Nodes: 4},
			},
			&edisim.WebSweep{
				ID:    "pi3_web_xeon_cache",
				Web:   edisim.TierSpec{Platform: edisim.Ref("pi3"), Nodes: 8},
				Cache: edisim.TierSpec{Platform: edisim.Ref("xeon"), Nodes: 1},
			},
		},
	}

	switch *format {
	case "text":
		if err := edisim.Run(context.Background(), scn, edisim.NewTextSink(os.Stdout)); err != nil {
			log.Fatal(err)
		}
		fmt.Println("same web tier, same workload: the mixed testbed trades 4 Pi3")
		fmt.Println("cache nodes for 1 Xeon — compare the delay columns near saturation")
	case "json", "csv":
		var col edisim.Collector
		if err := edisim.Run(context.Background(), scn, &col); err != nil {
			log.Fatal(err)
		}
		if err := edisim.WriteDocument(*format, os.Stdout, col.Artifacts); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "mixedtier: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}
}
