// Equalbudget: the paper's §6 economic question asked properly — not "what
// does a fixed fleet cost" but "what does a fixed spend buy". The 3-year
// TCO of the Dell baseline fleets becomes a budget, every platform's web
// and Hadoop fleets are sized to it (edisim.FleetComparison), and the
// equal-spend fleets race: peak web throughput across a Table-6-style
// scale ladder, terasort on the sized slave sets, throughput-per-watt and
// throughput-per-dollar matrices. A mixed Edison+Dell slave group then runs
// the same terasort, showing the hybrid cluster the paper's Dell-master
// configuration stops short of.
//
// Uses only the public edisim package; -quick trims sweeps for CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "fewer concurrency levels and ladder rungs, shorter windows (CI smoke run)")
	format := flag.String("format", "text", "output format: text, json or csv")
	platforms := flag.String("platforms", "edison,dell", "comma-separated platforms to size and compare")
	flag.Parse()

	refs := edisim.ParsePlatformRefs(*platforms)
	if len(refs) == 0 {
		fmt.Fprintf(os.Stderr, "equalbudget: no platforms in %q (have %v)\n", *platforms, edisim.PlatformNames())
		os.Exit(2)
	}

	scn := edisim.Scenario{
		Name:  "equalbudget",
		Quick: *quick,
		Workloads: []edisim.Workload{
			&edisim.FleetComparison{Platforms: refs},
			&edisim.MapReduceJob{
				ID:  "mixed_terasort",
				Job: "terasort",
				SlaveGroups: []edisim.TierSpec{
					{Platform: edisim.Ref("edison"), Nodes: 3},
					{Platform: edisim.Ref("dell"), Nodes: 1},
				},
			},
		},
	}

	switch *format {
	case "text":
		if err := edisim.Run(context.Background(), scn, edisim.NewTextSink(os.Stdout)); err != nil {
			log.Fatal(err)
		}
		fmt.Println("every fleet above spends the same 3-year budget; compare the")
		fmt.Println("req/s-per-TCO-k$ and GB-per-$ columns — and the mixed Edison+Dell")
		fmt.Println("slave group shows budget splits need not be all-or-nothing")
	case "json", "csv":
		var col edisim.Collector
		if err := edisim.Run(context.Background(), scn, &col); err != nil {
			log.Fatal(err)
		}
		if err := edisim.WriteDocument(*format, os.Stdout, col.Artifacts); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "equalbudget: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}
}
