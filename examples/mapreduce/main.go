// Mapreduce: run the paper's wordcount and its combine-input optimization
// on both simulated clusters, printing the per-phase trace the paper plots
// in Figures 12–16 and the container-allocation-overhead story of §5.2.1.
//
// Uses only the public edisim package; -quick shrinks the clusters for CI
// smoke runs.
package main

import (
	"flag"
	"fmt"
	"log"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "smaller simulated clusters (CI smoke run)")
	flag.Parse()

	micro, brawny := edisim.BaselinePair()
	microSlaves, brawnySlaves := 35, 2
	if *quick {
		microSlaves, brawnySlaves = 8, 1
	}
	for _, name := range []string{"wordcount", "wordcount2"} {
		fmt.Printf("== %s ==\n", name)
		for _, side := range []struct {
			platform *edisim.Platform
			slaves   int
		}{
			{micro, microSlaves},
			{brawny, brawnySlaves},
		} {
			r, err := edisim.RunJob(name, side.platform, side.slaves, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%d %s slaves: %.0f s, %.0f J, %d maps (%d%% data-local), %d reduces\n",
				side.slaves, side.platform.Label, r.Duration, float64(r.Energy),
				r.MapTasks, int(100*r.LocalityFraction()), r.ReduceTasks)
			printPhases(r)
		}
		fmt.Println()
	}
	fmt.Println("combining 200 small inputs into one split per vcore removes most")
	fmt.Println("container-allocation overhead — and most of the micro cluster's advantage (§5.2.1)")
}

// printPhases prints a compact five-point trace of the job.
func printPhases(r *edisim.JobResult) {
	fmt.Printf("   %8s %8s %8s %8s %8s\n", "t(s)", "cpu%", "map%", "reduce%", "power(W)")
	for i := 0; i <= 4; i++ {
		t := r.Duration * float64(i) / 4
		fmt.Printf("   %8.0f %8.0f %8.0f %8.0f %8.1f\n",
			t, r.CPU.At(t), r.MapProgress.At(t), r.ReduceProgress.At(t), r.Power.At(t))
	}
}
