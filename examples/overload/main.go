// Overload: push an Edison web fleet past its capacity with open-loop
// traffic — the regime the paper's closed-loop httperf sweeps cannot reach,
// because closed-loop clients slow down with the server instead of burying
// it. A flash crowd spikes to ~2x the tier's connection-accept capacity
// while one web server crashes mid-spike; admission control, a client retry
// budget and the SLO controller (reserve + brownout) keep the fleet
// degrading instead of collapsing. The same drill runs twice — resilience
// off, then on — so the metastable accept-thrash collapse and its fix are
// both visible in one output.
//
// Uses only the public edisim package; -quick shortens the run for CI
// smoke runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "shorter drill (CI smoke run)")
	format := flag.String("format", "text", "output format: text, json or csv")
	flag.Parse()
	if !edisim.ValidOutputFormat(*format) {
		fmt.Fprintf(os.Stderr, "overload: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}

	duration := 20.0
	if *quick {
		duration = 6
	}
	// A 6-server Edison web tier accepts ~270 conn/s; the spike offers 2x
	// that through the middle third of the run.
	profile := edisim.SpikeLoad{
		Base:     120,
		Peak:     540,
		Start:    duration / 3,
		Duration: duration / 3,
	}
	// One web server crashes right as the spike lands and reboots later.
	faults := edisim.RollingCrashFaults("web", 1, profile.Start+0.2*profile.Duration, 1, duration/4)

	naive := &edisim.OverloadStudy{
		ID:       "naive",
		Web:      edisim.TierSpec{Nodes: 6},
		Cache:    edisim.TierSpec{Nodes: 3},
		Profile:  profile,
		Duration: duration,
	}
	resilient := &edisim.OverloadStudy{
		ID:          "resilient",
		Web:         edisim.TierSpec{Nodes: 6},
		Cache:       edisim.TierSpec{Nodes: 3},
		Profile:     profile,
		Duration:    duration,
		RetryBudget: 0.1,
		Shed:        edisim.ShedPolicy{Mode: edisim.ShedDeadline, Deadline: 0.5},
		SLO:         &edisim.SLO{Latency: 0.5, Window: 1, Brownout: true},
	}

	scn := edisim.Scenario{
		Name:      "overload drill",
		Quick:     *quick,
		Faults:    faults,
		Workloads: []edisim.Workload{naive, resilient},
	}
	if *format == "text" {
		if err := edisim.Run(context.Background(), scn, edisim.NewTextSink(os.Stdout)); err != nil {
			fmt.Fprintf(os.Stderr, "overload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var col edisim.Collector
	if err := edisim.Run(context.Background(), scn, &col); err != nil {
		fmt.Fprintf(os.Stderr, "overload: %v\n", err)
		os.Exit(1)
	}
	if err := edisim.WriteDocument(*format, os.Stdout, col.Artifacts); err != nil {
		fmt.Fprintf(os.Stderr, "overload: %v\n", err)
		os.Exit(1)
	}
}
