// Autoscale: one simulated day of diurnal traffic over an elastic web
// tier, on both sides of the paper's trade — a 6-server Edison micro fleet
// (1.5 W servers, 2 s boots) and a 2-server Dell R620 fleet (165+ W
// servers, 10 s boots). Each platform runs the identical day three ways:
// a fixed fully-provisioned fleet, a reactive target-utilization policy,
// and a predictive policy that reads the declared profile one boot delay
// ahead. Servers boot at busy draw, join cold, drain before parking — so
// the power column prices the whole elasticity story. The micro fleet
// scales in 45 conn/s steps and cheap boots; the brawny fleet parks half
// its capacity at a time or nothing. The tables show which granularity
// wins the day.
//
// Uses only the public edisim package; -quick shortens the run for CI
// smoke runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "shorter day (CI smoke run)")
	format := flag.String("format", "text", "output format: text, json or csv")
	flag.Parse()
	if !edisim.ValidOutputFormat(*format) {
		fmt.Fprintf(os.Stderr, "autoscale: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}

	day := 36.0
	if *quick {
		day = 12
	}

	type tier struct {
		key        string
		platform   edisim.PlatformRef
		web, cache int
		// One compressed day between trough and crest, shaped to the
		// tier's connection-accept capacity.
		profile edisim.DiurnalLoad
	}
	tiers := []tier{
		// 6 Edisons accept ~270 conn/s; the trough parks most of them.
		{"edison", edisim.Ref("edison"), 6, 3,
			edisim.DiurnalLoad{Min: 40, Max: 230, Period: day}},
		// 2 Dells accept ~1120 conn/s; parking one halves the fleet.
		{"dell", edisim.Ref("dell"), 2, 1,
			edisim.DiurnalLoad{Min: 170, Max: 950, Period: day}},
	}

	var workloads []edisim.Workload
	for _, tr := range tiers {
		policies := []struct {
			key string
			cfg *edisim.AutoscaleConfig
		}{
			{"fixed", nil},
			{"target-util", &edisim.AutoscaleConfig{
				Policy: edisim.TargetUtilPolicy{Target: 0.6},
			}},
			{"predictive", &edisim.AutoscaleConfig{
				Policy: edisim.PredictivePolicy{Profile: tr.profile},
			}},
		}
		for _, pol := range policies {
			workloads = append(workloads, &edisim.AutoscaleStudy{
				ID:        tr.key + "_" + pol.key,
				Web:       edisim.TierSpec{Platform: tr.platform, Nodes: tr.web},
				Cache:     edisim.TierSpec{Platform: tr.platform, Nodes: tr.cache},
				Profile:   tr.profile,
				Duration:  day,
				Autoscale: pol.cfg,
			})
		}
	}

	scn := edisim.Scenario{
		Name:      "autoscale day",
		Quick:     *quick,
		Workloads: workloads,
	}
	if *format == "text" {
		if err := edisim.Run(context.Background(), scn, edisim.NewTextSink(os.Stdout)); err != nil {
			fmt.Fprintf(os.Stderr, "autoscale: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var col edisim.Collector
	if err := edisim.Run(context.Background(), scn, &col); err != nil {
		fmt.Fprintf(os.Stderr, "autoscale: %v\n", err)
		os.Exit(1)
	}
	if err := edisim.WriteDocument(*format, os.Stdout, col.Artifacts); err != nil {
		fmt.Fprintf(os.Stderr, "autoscale: %v\n", err)
		os.Exit(1)
	}
}
