// Scalability: re-run one light and one heavy MapReduce job across the
// paper's cluster sizes (Figures 18–19, §5.3), showing where bigger micro
// clusters help (heavier jobs, more allocation overhead) and where
// coordination "friction loss" makes small clusters more efficient.
//
// Uses only the public edisim package; -quick trims the job list and the
// size ladder for CI smoke runs.
package main

import (
	"flag"
	"fmt"
	"log"

	"edisim"
)

func main() {
	quick := flag.Bool("quick", false, "fewer jobs and sizes (CI smoke run)")
	flag.Parse()

	micro, _ := edisim.BaselinePair()
	sizes := []int{35, 17, 8, 4}
	jobList := []string{"terasort", "logcount2"}
	if *quick {
		sizes = []int{8, 4}
		jobList = []string{"logcount2"}
	}
	for _, job := range jobList {
		fmt.Printf("== %s on %s clusters ==\n", job, micro.Label)
		fmt.Printf("%-8s %-10s %-10s %-14s\n", "slaves", "time(s)", "energy(J)", "speedup-vs-4")
		var base float64
		for i := len(sizes) - 1; i >= 0; i-- {
			n := sizes[i]
			r, err := edisim.RunJob(job, micro, n, 1)
			if err != nil {
				log.Fatal(err)
			}
			if n == 4 {
				base = r.Duration
			}
			fmt.Printf("%-8d %-10.0f %-10.0f %-14.2f\n",
				n, r.Duration, float64(r.Energy), base/r.Duration)
		}
		fmt.Println()
	}
	fmt.Println("terasort: larger clusters pay off (heavy job, many containers)")
	fmt.Println("logcount2: coordination overhead dominates — the 4-node cluster")
	fmt.Println("uses the least energy, exactly the paper's §5.3 observation")
}
