package edisim

import (
	"strings"
	"testing"
)

func TestParseFaultPlan(t *testing.T) {
	fp, err := ParseFaultPlan("node_crash@30+120:slave[1]; straggler@10+60x0.25:web[2] ;link_degrade@5x0.5:slave;link_cut@7:master")
	if err != nil {
		t.Fatalf("ParseFaultPlan: %v", err)
	}
	want := []FaultEvent{
		{Kind: "node_crash", At: 30, Duration: 120, Role: "slave", Index: 1},
		{Kind: "straggler", At: 10, Duration: 60, Factor: 0.25, Role: "web", Index: 2},
		{Kind: "link_degrade", At: 5, Factor: 0.5, Role: "slave"},
		{Kind: "link_cut", At: 7, Role: "master"},
	}
	if len(fp.Events) != len(want) {
		t.Fatalf("%d events, want %d", len(fp.Events), len(want))
	}
	for i := range want {
		if fp.Events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, fp.Events[i], want[i])
		}
	}
}

func TestParseFaultPlanEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		fp, err := ParseFaultPlan(spec)
		if err != nil || fp != nil {
			t.Fatalf("ParseFaultPlan(%q) = (%v, %v), want (nil, nil)", spec, fp, err)
		}
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	cases := []struct{ spec, wantErr string }{
		{"node_crash:web", "missing '@AT'"},
		{"node_crash@30", "missing ':ROLE'"},
		{"node_crash@abc:web", "bad time"},
		{"node_crash@1+abc:web", "bad duration"},
		{"straggler@1x?:web", "bad factor"},
		{"node_crash@1:web[2", "unclosed index"},
		{"node_crash@1:web[two]", "bad index"},
		{"meteor@1:web", "unknown kind"},
		{"straggler@1:web", "factor"},          // validation: straggler needs a factor
		{"node_crash@-5:web", "time"},          // validation: negative time
		{"node_crash@1+2:web[-1]", "negative"}, // validation: negative index
	}
	for _, c := range cases {
		if _, err := ParseFaultPlan(c.spec); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseFaultPlan(%q) = %v, want error containing %q", c.spec, err, c.wantErr)
		}
	}
}

func TestRollingCrashFaults(t *testing.T) {
	fp := RollingCrashFaults("web", 3, 10, 5, 4)
	if len(fp.Events) != 3 {
		t.Fatalf("%d events, want 3", len(fp.Events))
	}
	for i, e := range fp.Events {
		want := FaultEvent{Kind: "node_crash", At: 10 + float64(i)*5, Duration: 4, Role: "web", Index: i}
		if e != want {
			t.Fatalf("event %d = %+v, want %+v", i, e, want)
		}
	}
	if _, err := fp.compile(); err != nil {
		t.Fatalf("rolling plan invalid: %v", err)
	}
}

func TestScheduleWebFaults(t *testing.T) {
	micro, _ := BaselinePair()
	build := func() *WebDeployment {
		tb := NewTestbed(ClusterConfig{
			Groups:  []ClusterGroup{{Platform: micro, Nodes: 9}},
			DBNodes: 2, Clients: 4,
		})
		return NewWebDeployment(tb, micro, 6, 3, 1)
	}
	d := build()
	if err := ScheduleWebFaults(d, RollingCrashFaults("web", 2, 5, 2, 2), 1); err != nil {
		t.Fatalf("ScheduleWebFaults: %v", err)
	}
	if err := ScheduleWebFaults(build(), nil, 1); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	err := ScheduleWebFaults(build(), RollingCrashFaults("slave", 1, 5, 2, 2), 1)
	if err == nil || !strings.Contains(err.Error(), `role "slave"`) {
		t.Fatalf("foreign role error = %v", err)
	}
	bad := &FaultPlan{Events: []FaultEvent{{Kind: "straggler", Role: "web"}}}
	if err := ScheduleWebFaults(build(), bad, 1); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
