package edisim

import (
	"edisim/internal/cluster"
	"edisim/internal/core"
	"edisim/internal/hdfs"
	"edisim/internal/hw"
	"edisim/internal/jobs"
	"edisim/internal/mapred"
	"edisim/internal/tco"
	"edisim/internal/units"
	"edisim/internal/web"
)

// This file is the composition toolkit: typed access to the simulation
// substrate for programs that need more than a declarative Scenario —
// custom testbeds, direct web deployments, HDFS failure injection, the TCO
// model and the functional MapReduce executor. Everything aliases internal
// types, so external consumers never import edisim/internal/...; the
// Scenario API (edisim.go) remains the front door for measurements.

// --- Units -----------------------------------------------------------------

// Bytes is a byte count; BytesPerSec a rate; Watts and Joules power and
// energy.
type (
	Bytes       = units.Bytes
	BytesPerSec = units.BytesPerSec
	Watts       = units.Watts
	Joules      = units.Joules
)

// Byte-size constants for building workloads and testbeds.
const (
	KB = units.KB
	MB = units.MB
	GB = units.GB
	TB = units.TB
)

// --- Testbeds --------------------------------------------------------------

// Node is one simulated machine (CPU scheduler, memory, disk, power model).
type Node = hw.Node

// Testbed is a full experimental setup — per-platform node groups, the
// infrastructure tier, one engine and one network fabric.
type Testbed = cluster.Testbed

// ClusterConfig sizes a testbed; ClusterGroup is one platform's node group.
type (
	ClusterConfig = cluster.Config
	ClusterGroup  = cluster.GroupConfig
)

// NewTestbed builds a testbed on a fresh simulation engine.
func NewTestbed(cfg ClusterConfig) *Testbed { return cluster.New(cfg) }

// PaperTestbedConfig is the paper's full setup: 35 Edisons, 3 Dells, 2
// database servers, 8 client machines.
func PaperTestbedConfig() ClusterConfig { return cluster.DefaultConfig() }

// WebScale is one row of the paper's Table 6 scale ladder; WebTier one
// platform's web/cache contribution in it.
type (
	WebScale = cluster.WebScale
	WebTier  = cluster.WebTier
)

// Table6 returns the paper's web cluster scale configurations.
func Table6() []WebScale { return cluster.Table6() }

// --- Web deployments -------------------------------------------------------

// WebDeployment is the paper's LLMP middle tier (Lighttpd + memcached +
// MySQL behind HAProxy) deployed on a testbed.
type WebDeployment = web.Deployment

// WebRunConfig drives one httperf measurement; WebResult is its outcome.
type (
	WebRunConfig = web.RunConfig
	WebResult    = web.Result
)

// NewWebDeployment builds a homogeneous middle tier: nWeb web servers and
// nCache cache servers on platform p's node group of tb.
func NewWebDeployment(tb *Testbed, p *Platform, nWeb, nCache int, seed int64) *WebDeployment {
	return web.NewDeployment(tb, p, nWeb, nCache, seed)
}

// NewTieredWebDeployment builds a heterogeneous middle tier: the web and
// cache tiers may sit on different platforms.
func NewTieredWebDeployment(tb *Testbed, webPlat *Platform, nWeb int, cachePlat *Platform, nCache int, seed int64) *WebDeployment {
	return web.NewTieredDeployment(tb, webPlat, nWeb, cachePlat, nCache, seed)
}

// --- MapReduce -------------------------------------------------------------

// JobResult is a simulated Hadoop run: duration, energy, task counts and
// the 1 Hz utilization/power/progress series.
type JobResult = mapred.JobResult

// RunJob simulates one named Hadoop job (see JobNames) on a cluster of
// `slaves` workers of platform p, staging input and running YARN, HDFS and
// the shuffle in full.
func RunJob(job string, p *Platform, slaves int, seed int64) (*JobResult, error) {
	return jobs.Run(job, p, slaves, seed)
}

// TraceFigure converts a JobResult's sampled series (CPU/memory/progress/
// power at the 1 Hz power sample times) into a figure — the paper's
// Figure 12–17 shape.
func TraceFigure(name string, r *JobResult) *Figure { return core.TraceFigure(name, r) }

// JobDef is a runnable MapReduce program definition; LocalResult is what
// the in-process functional executor reports.
type (
	JobDef      = mapred.JobDef
	LocalResult = mapred.LocalResult
)

// WordcountJob builds the paper's wordcount program (real map/reduce
// functions over real records) for functional checks with LocalRun.
func WordcountJob(reduces int, p *Platform) *JobDef { return jobs.Wordcount(reduces, p) }

// LocalRun executes a JobDef functionally in-process: real records through
// the map, combine, shuffle and reduce phases, no simulation.
func LocalRun(job *JobDef, inputs map[string][]string) (*LocalResult, error) {
	return mapred.LocalRun(job, inputs)
}

// GenerateTextLines returns deterministic pseudo-text input for functional
// MapReduce runs.
func GenerateTextLines(seed int64, lines, wordsPerLine int) []string {
	return jobs.GenerateTextLines(seed, lines, wordsPerLine)
}

// --- HDFS ------------------------------------------------------------------

// FileSystem is the simulated HDFS namespace (placement, replication,
// re-replication on failure); HDFSDataNode is one datanode's state.
type (
	FileSystem   = hdfs.FileSystem
	HDFSDataNode = hdfs.DataNode
)

// NewHDFS builds a filesystem over the given datanodes, with the master
// (namenode) on the named testbed vertex.
func NewHDFS(tb *Testbed, master string, datanodes []*Node, blockSize Bytes, replication int, seed int64) *FileSystem {
	return hdfs.New(tb.Fab, master, datanodes, blockSize, replication, seed)
}

// --- TCO -------------------------------------------------------------------

// TCOInputs parameterizes the paper's 3-year cost model (Equation 1);
// TCOResult is the equipment + electricity split it produces.
type (
	TCOInputs = tco.Inputs
	TCOResult = tco.Result
)

// TCOScenario is one published Table 10 row: a named micro-vs-brawny
// comparison.
type TCOScenario = tco.Scenario

// TCOForPlatform builds cost-model inputs for n nodes of platform p at the
// given utilization.
func TCOForPlatform(p *Platform, n int, utilization float64) TCOInputs {
	return tco.ForPlatform(p, n, utilization)
}

// ComputeTCO evaluates the cost model. Invalid inputs — a non-positive
// server count, utilization outside [0,1], negative costs — return an
// error rather than panicking or pricing a negative fleet.
func ComputeTCO(in TCOInputs) (TCOResult, error) { return tco.Compute(in) }

// SizeFleetForBudget reports the largest fleet of platform p whose 3-year
// TCO at the given utilization fits within budgetUSD — the equal-spend
// sizing behind the paper's 35-Edisons-vs-3-Dells comparison (§6). Zero
// means one server already exceeds the budget.
func SizeFleetForBudget(p *Platform, budgetUSD, utilization float64) (int, error) {
	return tco.SizeForBudget(p, budgetUSD, utilization)
}

// TCOTable10 returns the paper's four published TCO scenarios.
func TCOTable10() []TCOScenario { return tco.Table10() }
