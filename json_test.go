package edisim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"edisim/internal/report"
)

// runOneQuick runs a single quick experiment through the scenario API and
// returns its artifacts.
func runOneQuick(t *testing.T, id string) []*Artifact {
	t.Helper()
	var col Collector
	scn := Scenario{Quick: true, Workers: 2,
		Workloads: []Workload{&PaperExperiments{IDs: []string{id}}}}
	if err := Run(context.Background(), scn, &col); err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if len(col.Artifacts) != 1 {
		t.Fatalf("got %d artifacts, want 1", len(col.Artifacts))
	}
	return col.Artifacts
}

// TestJSONRoundTripStable encodes a real experiment outcome, decodes it,
// re-encodes it, and requires the two encodings to match byte for byte —
// the documented schema loses nothing and the encoder is deterministic.
func TestJSONRoundTripStable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick web sweep")
	}
	arts := runOneQuick(t, "fig4_fig7")

	var first bytes.Buffer
	if err := WriteJSON(&first, arts); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	decoded, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	var second bytes.Buffer
	if err := WriteJSON(&second, decoded); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-encoded document differs from the original (%d vs %d bytes)",
			first.Len(), second.Len())
	}
}

// TestJSONDecodedValuesMatchTypedCells checks the decoded document cell by
// cell against the typed in-memory outcome of a real experiment: kinds,
// numbers, units, figure series and comparisons all survive the wire.
func TestJSONDecodedValuesMatchTypedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick web sweep")
	}
	arts := runOneQuick(t, "fig4_fig7")

	var buf bytes.Buffer
	if err := WriteJSON(&buf, arts); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	decoded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(decoded) != len(arts) {
		t.Fatalf("decoded %d artifacts, want %d", len(decoded), len(arts))
	}
	for ai, want := range arts {
		got := decoded[ai]
		if got.ID != want.ID || got.Title != want.Title || got.Section != want.Section {
			t.Fatalf("artifact identity diverged: got %+v", got)
		}
		if len(got.Tables) != len(want.Tables) || len(got.Figures) != len(want.Figures) {
			t.Fatalf("artifact %s shape diverged", want.ID)
		}
		for ti, wt := range want.Tables {
			compareTables(t, want.ID, got.Tables[ti], wt)
		}
		for fi, wf := range want.Figures {
			gf := got.Figures[fi]
			if gf.Name != wf.Name || gf.XLabel != wf.XLabel || gf.YLabel != wf.YLabel {
				t.Fatalf("figure %q metadata diverged", wf.Name)
			}
			compareFloats(t, wf.Name+" x", gf.X, wf.X)
			if len(gf.Series) != len(wf.Series) {
				t.Fatalf("figure %q has %d series, want %d", wf.Name, len(gf.Series), len(wf.Series))
			}
			for si, ws := range wf.Series {
				if gf.Series[si].Label != ws.Label {
					t.Fatalf("figure %q series %d label %q, want %q", wf.Name, si, gf.Series[si].Label, ws.Label)
				}
				compareFloats(t, wf.Name+"/"+ws.Label, gf.Series[si].Y, ws.Y)
			}
		}
		if len(got.Comparisons) != len(want.Comparisons) {
			t.Fatalf("artifact %s has %d comparisons, want %d", want.ID, len(got.Comparisons), len(want.Comparisons))
		}
		for ci, wc := range want.Comparisons {
			if got.Comparisons[ci] != wc {
				t.Fatalf("comparison %d diverged: got %+v want %+v", ci, got.Comparisons[ci], wc)
			}
		}
	}
	// The sweep must actually have produced figures with numeric content —
	// guard against a vacuous pass on an empty outcome.
	if len(arts[0].Figures) == 0 || len(arts[0].Figures[0].Series) == 0 {
		t.Fatal("fig4_fig7 produced no figure series")
	}
}

func compareTables(t *testing.T, id string, got, want *Table) {
	t.Helper()
	if got.Title != want.Title {
		t.Fatalf("%s: table title %q, want %q", id, got.Title, want.Title)
	}
	if strings.Join(got.Headers, "|") != strings.Join(want.Headers, "|") ||
		strings.Join(got.Units, "|") != strings.Join(want.Units, "|") {
		t.Fatalf("%s: table %q header/unit rows diverged", id, want.Title)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: table %q has %d rows, want %d", id, want.Title, len(got.Rows), len(want.Rows))
	}
	for ri, wr := range want.Rows {
		for ciVal, wc := range wr {
			gc := got.Rows[ri][ciVal]
			if gc != wc {
				t.Fatalf("%s: table %q cell (%d,%d) = %#v, want %#v", id, want.Title, ri, ciVal, gc, wc)
			}
		}
	}
}

func compareFloats(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %v, want %v (must be exact across the wire)", what, i, got[i], want[i])
		}
	}
}

// TestValueTextRendering pins the Value → text contract the golden output
// rests on: floats as %.4g, ints exact, labels untouched.
func TestValueTextRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Num(1.23456, "s"), "1.235"},
		{Num(17670, "J"), "1.767e+04"},
		{Count(17670, "J"), "17670"},
		{report.S("Edison"), "Edison"},
		{report.Cell(42), "42"},
		{report.Cell(3.5), "3.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v renders %q, want %q", c.v, got, c.want)
		}
	}
}
