// Command benchjson converts `go test -bench` output into machine-readable
// JSON records — the repo's perf trajectory format (BENCH_scale.json).
//
// It reads benchmark output from stdin and writes a JSON array of records,
// one per benchmark result line:
//
//	go test ./internal/cluster -bench BenchmarkScale -benchtime 2000x |
//	    benchjson -label pr7 -o BENCH_scale.json
//
// Flags:
//
//	-o file    write to file instead of stdout
//	-append    merge with the records already in -o (the trajectory grows
//	           across PRs; earlier records are preserved verbatim)
//	-label s   stamp each new record with a label (e.g. the PR number)
//
// A record carries the benchmark name (Benchmark prefix stripped), the
// fleet size parsed from a "nodes=N" component of the name when present,
// and the standard per-op measurements. No timestamps: the file must be
// byte-stable for a given benchmark output, so re-runs diff cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one benchmark result in the perf trajectory.
type Record struct {
	Label      string  `json:"label,omitempty"`
	Name       string  `json:"name"`
	Fleet      int     `json:"fleet,omitempty"` // nodes=N parsed from the name
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op"`
}

var fleetRE = regexp.MustCompile(`nodes=(\d+)`)

// parse extracts benchmark records from go test -bench output.
func parse(r io.Reader, label string) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: some diagnostic"
		}
		rec := Record{
			Label:      label,
			Name:       strings.TrimPrefix(fields[0], "Benchmark"),
			Iterations: iters,
		}
		if m := fleetRE.FindStringSubmatch(rec.Name); m != nil {
			rec.Fleet, _ = strconv.Atoi(m[1])
		}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				rec.NsPerOp = v
			case "B/op":
				rec.BytesPerOp = v
			case "allocs/op":
				rec.AllocsOp = v
			}
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

func run(in io.Reader, outPath, label string, appendTo bool) error {
	recs, err := parse(in, label)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	var all []Record
	if appendTo && outPath != "" {
		if prev, err := os.ReadFile(outPath); err == nil {
			if err := json.Unmarshal(prev, &all); err != nil {
				return fmt.Errorf("benchjson: existing %s is not a record array: %v", outPath, err)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	all = append(all, recs...)
	buf, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	appendTo := flag.Bool("append", false, "merge with records already in -o")
	label := flag.String("label", "", "label stamped on each new record")
	flag.Parse()
	if err := run(os.Stdin, *outPath, *label, *appendTo); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
