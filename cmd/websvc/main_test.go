package main

import (
	"strings"
	"testing"

	"edisim"
)

// TestParseProfileArgErrors: every malformed -profile value must fail with
// the specific parse error plus the full grammar and the list of valid
// kinds, so the operator can fix the spec without opening API.md.
func TestParseProfileArgErrors(t *testing.T) {
	grammarLines := []string{
		"steady:RATE",
		"spike:BASE,PEAK@START+DURATION",
		"diurnal:MIN..MAX/PERIOD",
		"bursty:BASE,BURST,MEANBURST,MEANGAP",
		"kinds: steady, spike, diurnal, bursty",
	}
	cases := []struct {
		name, spec string
		wantErr    string // the spec-specific part of the message
	}{
		{"no colon", "steady", "missing ':'"},
		{"unknown kind", "sawtooth:10..90/5", `unknown profile kind "sawtooth"`},
		{"bad number", "steady:fast", `bad number "fast"`},
		{"spike missing timing", "spike:100,900", "missing '@START+DURATION'"},
		{"spike missing duration", "spike:100,900@5", "missing '+DURATION'"},
		{"diurnal missing period", "diurnal:10..90", "missing '/PERIOD'"},
		{"diurnal missing range", "diurnal:90/5", "missing '..'"},
		{"bursty wrong arity", "bursty:10,200", "want 4 comma-separated numbers"},
		{"invalid profile", "steady:-5", "Rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := parseProfileArg(tc.spec)
			if err == nil {
				t.Fatalf("parseProfileArg(%q) accepted a bad spec: %v", tc.spec, p)
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.wantErr) {
				t.Errorf("error %q missing the specific cause %q", msg, tc.wantErr)
			}
			for _, line := range grammarLines {
				if !strings.Contains(msg, line) {
					t.Errorf("error for %q missing grammar line %q:\n%s", tc.spec, line, msg)
				}
			}
		})
	}
}

// TestParseProfileArgValid: good specs pass through untouched and an empty
// spec keeps the closed-loop default (nil profile, no error).
func TestParseProfileArgValid(t *testing.T) {
	p, err := parseProfileArg("")
	if err != nil || p != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", p, err)
	}
	cases := []struct {
		spec string
		want edisim.LoadProfile
	}{
		{"steady:120", edisim.SteadyLoad{Rate: 120}},
		{"spike:120,600@6+6", edisim.SpikeLoad{Base: 120, Peak: 600, Start: 6, Duration: 6}},
		{"diurnal:30..230/12", edisim.DiurnalLoad{Min: 30, Max: 230, Period: 12}},
		{"bursty:50,400,2,8", edisim.BurstyLoad{Base: 50, Burst: 400, MeanBurst: 2, MeanGap: 8}},
	}
	for _, tc := range cases {
		p, err := parseProfileArg(tc.spec)
		if err != nil {
			t.Errorf("parseProfileArg(%q): %v", tc.spec, err)
			continue
		}
		if p != tc.want {
			t.Errorf("parseProfileArg(%q) = %#v, want %#v", tc.spec, p, tc.want)
		}
	}
}
