// Command websvc reproduces the paper's web-service experiments (§5.1):
// httperf concurrency sweeps over the middle-tier platforms, reporting
// throughput, response delay, error onset, cluster power (Figures 4–9),
// delay distributions (Figures 10–11) and the Table 7 delay decomposition.
//
// Usage:
//
//	websvc -image 0.20 -cachehit 0.93 -duration 30 -scale full
//	websvc -format csv    # figures as CSV blocks (progress lines omitted)
//	websvc -scale 1/4 -timeout 0.5 -crash 2 -downtime 10   # availability drill
//
// With -profile the closed-loop concurrency sweep is replaced by one
// open-loop overload run per tier (see API.md for the profile grammar):
//
//	websvc -scale 1/4 -profile spike:120,600@6+6 -shed deadline:0.5 \
//	       -retrybudget 0.1 -slo 0.5 -brownout
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edisim"
)

func main() {
	var (
		image    = flag.Float64("image", 0.0, "image query fraction (paper: 0, 0.06, 0.10, 0.20)")
		cacheHit = flag.Float64("cachehit", 0.93, "cache hit ratio (paper: 0.93, 0.77, 0.60; 0 = cold cache)")
		duration = flag.Float64("duration", 20, "simulated seconds per concurrency level")
		scale    = flag.String("scale", "full", "cluster scale: full, 1/2, 1/4, 1/8")
		seed     = flag.Int64("seed", 1, "root random seed")
		format   = flag.String("format", "text", "output format: text, json or csv")
		timeout  = flag.Float64("timeout", 0, "client request timeout in seconds; 0 disables recovery (the paper's behavior)")
		retries  = flag.Int("retries", 0, "max retries per request after a timeout (0 = default 3 when -timeout is set)")
		crash    = flag.Int("crash", 0, "crash drill: this many web servers crash in a rolling wave mid-measurement")
		downtime = flag.Float64("downtime", 30, "seconds each crashed server stays down before rebooting")

		profileSpec = flag.String("profile", "", "open-loop load profile (steady:RATE, spike:BASE,PEAK@START+DUR, diurnal:MIN..MAX/PERIOD, bursty:BASE,BURST,MEANBURST,MEANGAP); replaces the concurrency sweep")
		shedSpec    = flag.String("shed", "", "admission control: drop[:QUEUE], deadline[:SECS] or priority[:LOWFRAC]")
		retryBudget = flag.Float64("retrybudget", 0, "client retry budget as a fraction of first attempts (0 = unbudgeted); needs -timeout")
		sloTarget   = flag.Float64("slo", 0, "SLO: p99 latency target in seconds, evaluated per 1s window (0 = no controller)")
		brownout    = flag.Bool("brownout", false, "degrade cache misses to stale answers while the SLO burns (needs -slo)")
	)
	flag.Parse()
	profile, err := parseProfileArg(*profileSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "websvc: %v\n", err)
		os.Exit(2)
	}
	shed, err := parseShed(*shedSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "websvc: %v\n", err)
		os.Exit(2)
	}
	if profile != nil && *timeout == 0 {
		// Open-loop clients must time out: an unanswered open-loop request
		// otherwise waits forever.
		*timeout = 0.5
	}
	if !edisim.ValidOutputFormat(*format) {
		fmt.Fprintf(os.Stderr, "websvc: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}
	if *cacheHit == 0 {
		// An explicit -cachehit 0 means a cold cache; the WebRunConfig zero
		// value would mean "use the default", so pass the sentinel through.
		*cacheHit = edisim.ColdCache
	}

	var ws *edisim.WebScale
	for _, s := range edisim.Table6() {
		if s.Name == *scale {
			s := s
			ws = &s
		}
	}
	if ws == nil {
		fmt.Fprintf(os.Stderr, "websvc: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if profile != nil {
		runOverload(ws, profile, shed, *retryBudget, *sloTarget, *brownout,
			*image, *cacheHit, *duration, *seed, *timeout, *retries, *crash, *downtime, *format)
		return
	}

	concurrencies := []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	fig := edisim.NewFigure("Throughput", "conn/s", "req/s", concurrencies)
	dfig := edisim.NewFigure("Response delay", "conn/s", "ms", concurrencies)
	pfig := edisim.NewFigure("Cluster power", "conn/s", "W", concurrencies)

	if *crash > 0 && *timeout == 0 {
		fmt.Fprintln(os.Stderr, "websvc: a -crash drill without -timeout loses every request on the dead servers; set -timeout to measure recovery")
	}

	run := func(p *edisim.Platform, nWeb, nCache int) {
		var tput, delay, pow []float64
		for _, c := range concurrencies {
			r := sweepPoint(p, nWeb, nCache, c, *image, *cacheHit, *duration, *seed, *timeout, *retries, *crash, *downtime)
			if *format == "text" {
				mark := ""
				if r.ErrorRate > 0.01 {
					mark = " [errors]"
				}
				if r.Timeouts > 0 || r.Retries > 0 {
					mark += fmt.Sprintf(" [timeouts=%d retries=%d]", r.Timeouts, r.Retries)
				}
				fmt.Printf("%-7s web=%-2d conc=%-6.0f tput=%-7.0f delay=%-8.2fms err=%-6.3f power=%-7.1fW cpu(web)=%.0f%% cpu(cache)=%.0f%% hit=%.2f%s\n",
					p.Label, nWeb, c, r.Throughput, r.MeanDelay*1e3, r.ErrorRate,
					float64(r.MeanPower), r.WebCPU*100, r.CacheCPU*100, r.HitRatio, mark)
			}
			tput = append(tput, r.Throughput)
			delay = append(delay, r.MeanDelay*1e3)
			pow = append(pow, float64(r.MeanPower))
		}
		label := fmt.Sprintf("%d %s", nWeb, p.Label)
		fig.Add(label, tput)
		dfig.Add(label, delay)
		pfig.Add(label, pow)
	}

	for _, tier := range ws.Tiers {
		if tier.Web > 0 {
			run(tier.Platform, tier.Web, tier.Cache)
		}
	}

	if *format != "text" {
		a := &edisim.Artifact{
			ID: "websvc", Title: "httperf concurrency sweep", Section: "5.1",
			Figures: []*edisim.Figure{fig, dfig, pfig},
		}
		if err := edisim.WriteDocument(*format, os.Stdout, []*edisim.Artifact{a}); err != nil {
			fmt.Fprintf(os.Stderr, "websvc: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println()
	fmt.Println(fig)
	fmt.Println(dfig)
	fmt.Println(pfig)
}

// profileGrammar is the whole -profile grammar, one line per kind, shown
// whenever a spec fails to parse so the operator never has to dig the
// shapes out of API.md mid-flight.
const profileGrammar = `  steady:RATE                          constant RATE conn/s
  spike:BASE,PEAK@START+DURATION       flash crowd to PEAK during the window
  diurnal:MIN..MAX/PERIOD              raised-cosine day/night cycle
  bursty:BASE,BURST,MEANBURST,MEANGAP  two-state MMPP`

// parseProfileArg wraps edisim.ParseLoadProfile so a bad -profile value
// fails with the specific parse error followed by the full grammar and the
// valid kinds, not just whichever token tripped first.
func parseProfileArg(spec string) (edisim.LoadProfile, error) {
	p, err := edisim.ParseLoadProfile(spec)
	if err != nil {
		return nil, fmt.Errorf("%w\nvalid -profile forms (kinds: steady, spike, diurnal, bursty):\n%s", err, profileGrammar)
	}
	return p, nil
}

// parseShed parses the -shed grammar: MODE[:PARAM], where drop takes a
// queue bound, deadline takes seconds and priority takes the low-priority
// fraction; the parameter is optional (policy defaults apply).
func parseShed(spec string) (edisim.ShedPolicy, error) {
	var p edisim.ShedPolicy
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	mode, param, hasParam := strings.Cut(spec, ":")
	var v float64
	if hasParam {
		var err error
		if v, err = strconv.ParseFloat(strings.TrimSpace(param), 64); err != nil {
			return p, fmt.Errorf("shed %q: bad parameter %q", spec, param)
		}
	}
	switch strings.TrimSpace(mode) {
	case "drop":
		p.Mode = edisim.ShedDropTail
		p.Queue = int(v)
	case "deadline":
		p.Mode = edisim.ShedDeadline
		p.Deadline = v
	case "priority":
		p.Mode = edisim.ShedPriority
		p.LowFrac = v
	default:
		return p, fmt.Errorf("shed %q: unknown mode (want drop, deadline or priority)", spec)
	}
	return p, nil
}

// runOverload replaces the concurrency sweep with one open-loop run per
// tier: the profile sets the offered load, and the resilience knobs
// (shedding, retry budget, SLO controller) shape how the tier degrades.
func runOverload(ws *edisim.WebScale, profile edisim.LoadProfile, shed edisim.ShedPolicy,
	retryBudget, sloTarget float64, brownout bool,
	image, hit, duration float64, seed int64, timeout float64, retries, crash int, downtime float64, format string) {
	t := edisim.NewTable(fmt.Sprintf("Open-loop overload: %v", profile),
		"platform", "web", "offered conn/s", "goodput req/s", "shed /s", "degraded /s",
		"p50 ms", "p99 ms", "p999 ms", "err rate", "denied", "power W").
		WithUnits("", "nodes", "conn/s", "req/s", "/s", "/s", "ms", "ms", "ms", "", "", "W")
	for _, tier := range ws.Tiers {
		if tier.Web == 0 {
			continue
		}
		p, nWeb, nCache := tier.Platform, tier.Web, tier.Cache
		tb := edisim.NewTestbed(edisim.ClusterConfig{
			Groups:  []edisim.ClusterGroup{{Platform: p, Nodes: nWeb + nCache}},
			DBNodes: 2, Clients: 8,
		})
		dep := edisim.NewWebDeployment(tb, p, nWeb, nCache, seed)
		rc := edisim.WebRunConfig{
			Profile:        profile,
			ImageFrac:      image,
			CacheHit:       hit,
			Duration:       duration,
			RequestTimeout: timeout,
			MaxRetries:     retries,
			RetryBudget:    retryBudget,
			Shed:           shed,
		}
		if sloTarget > 0 {
			rc.SLO = &edisim.SLO{Latency: sloTarget, Window: 1, Brownout: brownout}
		}
		dep.WarmFor(rc)
		if crash > 0 {
			if crash > nWeb {
				crash = nWeb
			}
			start := 0.3 * duration
			gap := 0.5 * duration / float64(crash)
			plan := edisim.RollingCrashFaults("web", crash, start, gap, downtime)
			if err := edisim.ScheduleWebFaults(dep, plan, seed); err != nil {
				fmt.Fprintf(os.Stderr, "websvc: %v\n", err)
				os.Exit(2)
			}
		}
		r := dep.Run(rc)
		window := duration * (1 - 0.25) // default warmup fraction
		if r.Config.WarmupFrac > 0 {
			window = duration * (1 - r.Config.WarmupFrac)
		}
		t.AddRow(p.Label, nWeb,
			edisim.Num(float64(r.Offered)/window, "conn/s"),
			edisim.Num(r.Throughput, "req/s"),
			edisim.Num(float64(r.Shed)/window, "/s"),
			edisim.Num(float64(r.Degraded)/window, "/s"),
			edisim.Num(r.Latency.Quantile(0.5)*1e3, "ms"),
			edisim.Num(r.Latency.Quantile(0.99)*1e3, "ms"),
			edisim.Num(r.Latency.Quantile(0.999)*1e3, "ms"),
			edisim.Num(r.ErrorRate, ""),
			edisim.Count(r.RetryDenied, ""),
			edisim.Num(float64(r.MeanPower), "W"),
		)
	}
	if format == "text" {
		fmt.Println(t)
		return
	}
	a := &edisim.Artifact{
		ID: "websvc_overload", Title: "open-loop overload run", Section: "beyond-paper",
		Tables: []*edisim.Table{t},
	}
	if err := edisim.WriteDocument(format, os.Stdout, []*edisim.Artifact{a}); err != nil {
		fmt.Fprintf(os.Stderr, "websvc: %v\n", err)
		os.Exit(1)
	}
}

// sweepPoint runs one concurrency level on a fresh testbed so runs are
// independent and reproducible. With crash > 0, that many web servers go
// down in a rolling wave through the middle of the measurement window.
func sweepPoint(p *edisim.Platform, nWeb, nCache int, conc, image, hit, duration float64,
	seed int64, timeout float64, retries, crash int, downtime float64) edisim.WebResult {
	tb := edisim.NewTestbed(edisim.ClusterConfig{
		Groups:  []edisim.ClusterGroup{{Platform: p, Nodes: nWeb + nCache}},
		DBNodes: 2, Clients: 8,
	})
	dep := edisim.NewWebDeployment(tb, p, nWeb, nCache, seed)
	rc := edisim.WebRunConfig{
		Concurrency:    conc,
		ImageFrac:      image,
		CacheHit:       hit,
		Duration:       duration,
		RequestTimeout: timeout,
		MaxRetries:     retries,
	}
	dep.WarmFor(rc)
	if crash > 0 {
		if crash > nWeb {
			crash = nWeb
		}
		// The wave starts after the warm-up quarter and spreads over the
		// middle half of the window.
		start := 0.3 * duration
		gap := 0.5 * duration / float64(crash)
		plan := edisim.RollingCrashFaults("web", crash, start, gap, downtime)
		if err := edisim.ScheduleWebFaults(dep, plan, seed); err != nil {
			fmt.Fprintf(os.Stderr, "websvc: %v\n", err)
			os.Exit(2)
		}
	}
	return dep.Run(rc)
}
