// Command tcocalc evaluates the paper's total-cost-of-ownership model
// (Section 6, Equation 1): the four Table 10 scenarios by default, a custom
// micro-vs-brawny configuration via flags, or any set of hw catalog
// platforms via -platforms (a TCOStudy scenario of the edisim package).
//
// Usage:
//
//	tcocalc                                  # Table 10
//	tcocalc -format json                     # same, as the documented schema
//	tcocalc -custom -micro 35 -brawny 3 -util 0.75
//	tcocalc -platforms pi3,xeon-modern -nodes 16,1 -util 0.5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edisim"
)

func main() {
	var (
		custom    = flag.Bool("custom", false, "evaluate a custom baseline-pair scenario instead of Table 10")
		micros    = flag.Int("micro", 35, "micro node count (custom)")
		brawnies  = flag.Int("brawny", 3, "brawny server count (custom)")
		util      = flag.Float64("util", 0.5, "utilization in [0,1] (custom / -platforms)")
		platforms = flag.String("platforms", "", "comma-separated hw catalog platforms to price side by side")
		nodes     = flag.String("nodes", "", "comma-separated node counts matching -platforms (default: catalog fleet slave counts)")
		format    = flag.String("format", "text", "output format: text, json or csv")
	)
	flag.Parse()

	if !edisim.ValidOutputFormat(*format) {
		fmt.Fprintf(os.Stderr, "tcocalc: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}

	if *platforms != "" {
		priceMatrix(*platforms, *nodes, *util, *format)
		return
	}

	micro, brawny := edisim.BaselinePair()
	if *custom {
		e := edisim.ComputeTCO(edisim.TCOForPlatform(micro, *micros, *util))
		d := edisim.ComputeTCO(edisim.TCOForPlatform(brawny, *brawnies, *util))
		if *format == "text" {
			fmt.Printf("%s x%d @ %.0f%%: equipment $%.0f + electricity $%.0f = $%.0f\n",
				micro.Label, *micros, *util*100, e.Equipment, e.Electricity, e.Total())
			fmt.Printf("%s   x%d @ %.0f%%: equipment $%.0f + electricity $%.0f = $%.0f\n",
				brawny.Label, *brawnies, *util*100, d.Equipment, d.Electricity, d.Total())
			fmt.Printf("Savings: %.0f%%\n", 100*(1-e.Total()/d.Total()))
			return
		}
		t := edisim.NewTable(fmt.Sprintf("Custom TCO at %.0f%% utilization", *util*100),
			"platform", "nodes", "equipment $", "electricity $", "total $").
			WithUnits("", "nodes", "$", "$", "$")
		t.AddRow(micro.Label, *micros, edisim.Num(e.Equipment, "$"), edisim.Num(e.Electricity, "$"), edisim.Num(e.Total(), "$"))
		t.AddRow(brawny.Label, *brawnies, edisim.Num(d.Equipment, "$"), edisim.Num(d.Electricity, "$"), edisim.Num(d.Total(), "$"))
		emit(*format, &edisim.Artifact{ID: "tco_custom", Title: t.Title, Section: "6", Tables: []*edisim.Table{t}})
		return
	}

	t := edisim.NewTable("Table 10 — 3-year TCO (USD)", "scenario", brawny.Label, micro.Label, "savings %").
		WithUnits("", "$", "$", "%")
	for _, s := range edisim.TCOTable10() {
		t.AddRow(s.Name, edisim.Num(s.Brawny.Total(), "$"), edisim.Num(s.Micro.Total(), "$"), edisim.Num(100*s.Savings(), "%"))
	}
	if *format == "text" {
		fmt.Println(t)
		return
	}
	emit(*format, &edisim.Artifact{ID: "table10", Title: t.Title, Section: "6", Tables: []*edisim.Table{t}})
}

// priceMatrix prices an arbitrary catalog platform set side by side — a
// TCOStudy scenario.
func priceMatrix(platforms, nodes string, util float64, format string) {
	if util == 0 {
		// An explicit -util 0 prices an idle fleet; the TCOStudy zero
		// value would mean "use the 50% default", so pass the sentinel.
		util = edisim.ZeroUtilization
	}
	study := &edisim.TCOStudy{Utilization: util}
	for _, name := range strings.Split(platforms, ",") {
		study.Platforms = append(study.Platforms, edisim.Ref(name))
	}
	if nodes != "" {
		for _, c := range strings.Split(nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "tcocalc: bad node count %q\n", c)
				os.Exit(2)
			}
			study.Nodes = append(study.Nodes, n)
		}
	}

	var col edisim.Collector
	scn := edisim.Scenario{Name: "tcocalc", Workloads: []edisim.Workload{study}}
	if err := edisim.Run(context.Background(), scn, &col); err != nil {
		fmt.Fprintf(os.Stderr, "tcocalc: %v\n", err)
		os.Exit(2)
	}
	if format == "text" {
		for _, t := range col.Artifacts[0].Tables {
			fmt.Println(t)
		}
		return
	}
	emit(format, col.Artifacts...)
}

// emit writes artifacts in the chosen document format.
func emit(format string, artifacts ...*edisim.Artifact) {
	if err := edisim.WriteDocument(format, os.Stdout, artifacts); err != nil {
		fmt.Fprintf(os.Stderr, "tcocalc: %v\n", err)
		os.Exit(1)
	}
}
