// Command tcocalc evaluates the paper's total-cost-of-ownership model
// (Section 6, Equation 1): the four Table 10 scenarios by default, a custom
// micro-vs-brawny configuration via flags, or any set of hw catalog
// platforms via -platforms (a TCOStudy scenario of the edisim package) —
// either at fixed node counts (-nodes) or sized to an equal spending cap
// (-budget), the paper's comparable-cost framing.
//
// Usage:
//
//	tcocalc                                  # Table 10
//	tcocalc -format json                     # same, as the documented schema
//	tcocalc -custom -micro 35 -brawny 3 -util 0.75
//	tcocalc -platforms pi3,xeon-modern -nodes 16,1 -util 0.5
//	tcocalc -platforms edison,dell -budget 8236 -util 0.75
//	tcocalc -platforms edison,dell -region eu-north -carbonprice 80
//	tcocalc -platforms edison,dell -energy tdp-curve -pue 1.3
//
// -region prices at a grid region's electricity tariff with that grid's
// carbon intensity (adding tCO2e and carbon-cost columns), -carbonprice
// prices the carbon in USD/tCO2e, -pue overrides the facility overhead, and
// -energy switches the power endpoints to the component TDP-curve model —
// the energy/carbon/price layers of API.md.
//
// Invalid inputs (utilization outside [0,1], non-positive node counts or
// budgets, PUE below 1, unknown regions) exit 2 with a usage message.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"edisim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit code lifted out, so the validation
// table tests drive the real flag and error paths.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcocalc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		custom    = fs.Bool("custom", false, "evaluate a custom baseline-pair scenario instead of Table 10")
		micros    = fs.Int("micro", 35, "micro node count (custom)")
		brawnies  = fs.Int("brawny", 3, "brawny server count (custom)")
		util      = fs.Float64("util", 0.5, "utilization in [0,1] (custom / -platforms)")
		platforms = fs.String("platforms", "", "comma-separated hw catalog platforms to price side by side")
		nodes     = fs.String("nodes", "", "comma-separated node counts matching -platforms (default: catalog fleet slave counts)")
		budget    = fs.Float64("budget", 0, "3-year budget in USD: size each -platforms fleet to it instead of fixed node counts")
		format    = fs.String("format", "text", "output format: text, json or csv")
		region    = fs.String("region", "", "grid region for electricity tariff and carbon intensity (-platforms; see API.md)")
		pue       = fs.Float64("pue", 0, "facility PUE override >= 1 (-platforms; default: 1.15 with -region, none otherwise)")
		carbonFee = fs.Float64("carbonprice", 0, "carbon price in USD per tCO2e (-platforms; 0 = no carbon cost)")
		energy    = fs.String("energy", "", "node power model: linear (default, paper-calibrated) or tdp-curve (-platforms)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "tcocalc: "+format+"\n", a...)
		fs.Usage()
		return 2
	}
	if !edisim.ValidOutputFormat(*format) {
		return usage("unknown format %q (want text, json or csv)", *format)
	}
	if math.IsNaN(*util) || *util < 0 || *util > 1 {
		return usage("-util %v outside [0,1]", *util)
	}

	if *platforms != "" {
		return priceMatrix(matrixSpec{
			platforms: *platforms, nodes: *nodes, budget: *budget, util: *util,
			region: *region, pue: *pue, carbonPrice: *carbonFee, energy: *energy,
			format: *format,
		}, stdout, stderr, usage)
	}
	if *budget != 0 {
		return usage("-budget needs a -platforms selection to size")
	}
	if *region != "" || *pue != 0 || *carbonFee != 0 || *energy != "" {
		return usage("-region, -pue, -carbonprice and -energy need a -platforms selection")
	}

	micro, brawny := edisim.BaselinePair()
	if *custom {
		if *micros <= 0 || *brawnies <= 0 {
			return usage("-micro and -brawny need positive node counts (got %d, %d)", *micros, *brawnies)
		}
		e, err := edisim.ComputeTCO(edisim.TCOForPlatform(micro, *micros, *util))
		if err != nil {
			return usage("%v", err)
		}
		d, err := edisim.ComputeTCO(edisim.TCOForPlatform(brawny, *brawnies, *util))
		if err != nil {
			return usage("%v", err)
		}
		if *format == "text" {
			fmt.Fprintf(stdout, "%s x%d @ %.0f%%: equipment $%.0f + electricity $%.0f = $%.0f\n",
				micro.Label, *micros, *util*100, e.Equipment, e.Electricity, e.Total())
			fmt.Fprintf(stdout, "%s   x%d @ %.0f%%: equipment $%.0f + electricity $%.0f = $%.0f\n",
				brawny.Label, *brawnies, *util*100, d.Equipment, d.Electricity, d.Total())
			fmt.Fprintf(stdout, "Savings: %.0f%%\n", 100*(1-e.Total()/d.Total()))
			return 0
		}
		t := edisim.NewTable(fmt.Sprintf("Custom TCO at %.0f%% utilization", *util*100),
			"platform", "nodes", "equipment $", "electricity $", "total $").
			WithUnits("", "nodes", "$", "$", "$")
		t.AddRow(micro.Label, *micros, edisim.Num(e.Equipment, "$"), edisim.Num(e.Electricity, "$"), edisim.Num(e.Total(), "$"))
		t.AddRow(brawny.Label, *brawnies, edisim.Num(d.Equipment, "$"), edisim.Num(d.Electricity, "$"), edisim.Num(d.Total(), "$"))
		return emit(*format, stdout, stderr, &edisim.Artifact{ID: "tco_custom", Title: t.Title, Section: "6", Tables: []*edisim.Table{t}})
	}

	t := edisim.NewTable("Table 10 — 3-year TCO (USD)", "scenario", brawny.Label, micro.Label, "savings %").
		WithUnits("", "$", "$", "%")
	for _, s := range edisim.TCOTable10() {
		t.AddRow(s.Name, edisim.Num(s.Brawny.Total(), "$"), edisim.Num(s.Micro.Total(), "$"), edisim.Num(100*s.Savings(), "%"))
	}
	if *format == "text" {
		fmt.Fprintln(stdout, t)
		return 0
	}
	return emit(*format, stdout, stderr, &edisim.Artifact{ID: "table10", Title: t.Title, Section: "6", Tables: []*edisim.Table{t}})
}

// matrixSpec carries the -platforms pricing mode's flags.
type matrixSpec struct {
	platforms, nodes string
	budget, util     float64
	region, energy   string
	pue, carbonPrice float64
	format           string
}

// priceMatrix prices an arbitrary catalog platform set side by side — a
// TCOStudy scenario, at fixed node counts or sized to an equal budget,
// optionally at a region's tariff/grid with a carbon price and a
// non-default power model.
func priceMatrix(ms matrixSpec, stdout, stderr io.Writer, usage func(string, ...any) int) int {
	util, budget, nodes, format := ms.util, ms.budget, ms.nodes, ms.format
	if util == 0 {
		// An explicit -util 0 prices an idle fleet; the TCOStudy zero
		// value would mean "use the 50% default", so pass the sentinel.
		util = edisim.ZeroUtilization
	}
	if budget < 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return usage("-budget $%v must be positive and finite", budget)
	}
	if budget > 0 && nodes != "" {
		return usage("-budget and -nodes are mutually exclusive")
	}
	study := &edisim.TCOStudy{Utilization: util, Budget: budget,
		Platforms: edisim.ParsePlatformRefs(ms.platforms),
		Region:    ms.region, PUE: ms.pue, CarbonPricePerTonne: ms.carbonPrice}
	if len(study.Platforms) == 0 {
		return usage("no platforms in %q", ms.platforms)
	}
	if nodes != "" {
		for _, c := range strings.Split(nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n <= 0 {
				return usage("bad node count %q", c)
			}
			study.Nodes = append(study.Nodes, n)
		}
	}

	var col edisim.Collector
	scn := edisim.Scenario{Name: "tcocalc", EnergyModel: ms.energy,
		Workloads: []edisim.Workload{study}}
	if err := edisim.Run(context.Background(), scn, &col); err != nil {
		fmt.Fprintf(stderr, "tcocalc: %v\n", err)
		return 2
	}
	if format == "text" {
		for _, t := range col.Artifacts[0].Tables {
			fmt.Fprintln(stdout, t)
		}
		for _, n := range col.Artifacts[0].Notes {
			fmt.Fprintf(stdout, "note: %s\n", n)
		}
		return 0
	}
	return emit(format, stdout, stderr, col.Artifacts...)
}

// emit writes artifacts in the chosen document format.
func emit(format string, stdout, stderr io.Writer, artifacts ...*edisim.Artifact) int {
	if err := edisim.WriteDocument(format, stdout, artifacts); err != nil {
		fmt.Fprintf(stderr, "tcocalc: %v\n", err)
		return 1
	}
	return 0
}
