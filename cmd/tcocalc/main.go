// Command tcocalc evaluates the paper's total-cost-of-ownership model
// (Section 6, Equation 1): the four Table 10 scenarios by default, or a
// custom configuration via flags.
package main

import (
	"flag"
	"fmt"

	"edisim/internal/report"
	"edisim/internal/tco"
)

func main() {
	var (
		custom  = flag.Bool("custom", false, "evaluate a custom scenario instead of Table 10")
		edisons = flag.Int("edison", 35, "Edison node count (custom)")
		dells   = flag.Int("dell", 3, "Dell server count (custom)")
		util    = flag.Float64("util", 0.5, "utilization in [0,1] (custom)")
	)
	flag.Parse()

	if *custom {
		e := tco.Compute(tco.EdisonInputs(*edisons, *util))
		d := tco.Compute(tco.DellInputs(*dells, *util))
		fmt.Printf("Edison x%d @ %.0f%%: equipment $%.0f + electricity $%.0f = $%.0f\n",
			*edisons, *util*100, e.Equipment, e.Electricity, e.Total())
		fmt.Printf("Dell   x%d @ %.0f%%: equipment $%.0f + electricity $%.0f = $%.0f\n",
			*dells, *util*100, d.Equipment, d.Electricity, d.Total())
		fmt.Printf("Savings: %.0f%%\n", 100*(1-e.Total()/d.Total()))
		return
	}

	t := report.NewTable("Table 10 — 3-year TCO (USD)", "scenario", "Dell", "Edison", "savings %")
	for _, s := range tco.Table10() {
		t.AddRow(s.Name, s.Dell.Total(), s.Edison.Total(), 100*s.Savings())
	}
	fmt.Println(t)
}
