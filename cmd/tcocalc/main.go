// Command tcocalc evaluates the paper's total-cost-of-ownership model
// (Section 6, Equation 1): the four Table 10 scenarios by default, a custom
// micro-vs-brawny configuration via flags, or any set of hw catalog
// platforms via -platforms.
//
// Usage:
//
//	tcocalc                                  # Table 10
//	tcocalc -custom -micro 35 -brawny 3 -util 0.75
//	tcocalc -platforms pi3,xeon-modern -nodes 16,1 -util 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edisim/internal/hw"
	"edisim/internal/report"
	"edisim/internal/tco"
)

func main() {
	var (
		custom    = flag.Bool("custom", false, "evaluate a custom baseline-pair scenario instead of Table 10")
		micros    = flag.Int("micro", 35, "micro node count (custom)")
		brawnies  = flag.Int("brawny", 3, "brawny server count (custom)")
		util      = flag.Float64("util", 0.5, "utilization in [0,1] (custom / -platforms)")
		platforms = flag.String("platforms", "", "comma-separated hw catalog platforms to price side by side")
		nodes     = flag.String("nodes", "", "comma-separated node counts matching -platforms (default: catalog fleet slave counts)")
	)
	flag.Parse()

	if *platforms != "" {
		priceMatrix(*platforms, *nodes, *util)
		return
	}

	micro, brawny := hw.BaselinePair()
	if *custom {
		e := tco.Compute(tco.ForPlatform(micro, *micros, *util))
		d := tco.Compute(tco.ForPlatform(brawny, *brawnies, *util))
		fmt.Printf("%s x%d @ %.0f%%: equipment $%.0f + electricity $%.0f = $%.0f\n",
			micro.Label, *micros, *util*100, e.Equipment, e.Electricity, e.Total())
		fmt.Printf("%s   x%d @ %.0f%%: equipment $%.0f + electricity $%.0f = $%.0f\n",
			brawny.Label, *brawnies, *util*100, d.Equipment, d.Electricity, d.Total())
		fmt.Printf("Savings: %.0f%%\n", 100*(1-e.Total()/d.Total()))
		return
	}

	t := report.NewTable("Table 10 — 3-year TCO (USD)", "scenario", brawny.Label, micro.Label, "savings %")
	for _, s := range tco.Table10() {
		t.AddRow(s.Name, s.Brawny.Total(), s.Micro.Total(), 100*s.Savings())
	}
	fmt.Println(t)
}

// priceMatrix prices an arbitrary catalog platform set side by side.
func priceMatrix(platforms, nodes string, util float64) {
	names := strings.Split(platforms, ",")
	var counts []int
	if nodes != "" {
		for _, c := range strings.Split(nodes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "tcocalc: bad node count %q\n", c)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		if len(counts) != len(names) {
			fmt.Fprintf(os.Stderr, "tcocalc: -nodes needs %d entries, got %d\n", len(names), len(counts))
			os.Exit(2)
		}
	}

	t := report.NewTable(fmt.Sprintf("3-year TCO at %.0f%% utilization", util*100),
		"platform", "nodes", "equipment $", "electricity $", "total $", "$ per node")
	for i, name := range names {
		p, ok := hw.LookupPlatform(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "tcocalc: unknown platform %q (catalog: %v)\n", name, hw.PlatformNames())
			os.Exit(2)
		}
		n := p.Fleet.Slaves
		if counts != nil {
			n = counts[i]
		}
		r := tco.Compute(tco.ForPlatform(p, n, util))
		t.AddRow(p.Label, n, r.Equipment, r.Electricity, r.Total(), r.Total()/float64(n))
	}
	fmt.Println(t)
}
