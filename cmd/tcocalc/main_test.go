package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestArgValidation drives the real flag/validation paths table-style: the
// probed invocations of the input-hardening bugfixes must exit 2 with a
// usage message on stderr — never panic, and never price a negative fleet.
func TestArgValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"util above 1", []string{"-custom", "-util", "1.5"}, "outside [0,1]"},
		{"util below 0", []string{"-custom", "-util", "-0.5"}, "outside [0,1]"},
		{"util above 1, matrix", []string{"-platforms", "edison", "-util", "2"}, "outside [0,1]"},
		{"negative micro", []string{"-custom", "-micro", "-5"}, "positive node counts"},
		{"zero micro", []string{"-custom", "-micro", "0"}, "positive node counts"},
		{"negative brawny", []string{"-custom", "-brawny", "-1"}, "positive node counts"},
		{"unknown platform", []string{"-platforms", "pdp11"}, `"pdp11"`},
		{"empty platform list", []string{"-platforms", " , "}, "no platforms"},
		{"bad node count", []string{"-platforms", "edison", "-nodes", "-4"}, "bad node count"},
		{"node count mismatch", []string{"-platforms", "edison", "-nodes", "3,4"}, "node counts for"},
		{"negative budget", []string{"-platforms", "edison", "-budget", "-100"}, "must be positive"},
		{"budget without platforms", []string{"-budget", "5000"}, "-platforms"},
		{"budget and nodes", []string{"-platforms", "edison", "-budget", "5000", "-nodes", "3"}, "mutually exclusive"},
		{"unknown format", []string{"-format", "xml"}, "unknown format"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("exit code %d, want 2\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tc.want)
			}
			// Every rejection explains itself on stderr ("tcocalc: ...");
			// flag-shaped mistakes additionally print the flag usage.
			if !strings.Contains(stderr.String(), "tcocalc:") {
				t.Fatalf("stderr lacks the error prefix:\n%s", stderr.String())
			}
		})
	}
}

// TestValidInvocations pins the happy paths, including the once-broken
// whitespace/duplicate platform lists and the equal-budget sizing flag.
func TestValidInvocations(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		want     []string // substrings of stdout
		wantNot  []string
		wantRows int // rows mentioning a platform label, 0 = don't check
	}{
		{
			name: "table 10 default",
			want: []string{"Table 10", "Web service, low utilization"},
		},
		{
			name: "custom valid",
			args: []string{"-custom", "-micro", "35", "-brawny", "3", "-util", "0.75"},
			want: []string{"Savings:"},
		},
		{
			name: "whitespace platform list",
			args: []string{"-platforms", "edison, dell-r620", "-util", "0.75"},
			want: []string{"Edison", "Dell"},
		},
		{
			name:    "duplicate platforms priced once",
			args:    []string{"-platforms", "edison,edison"},
			want:    []string{"Edison"},
			wantNot: []string{"Edison "}, // only checked via row count below
		},
		{
			name: "budget sizing",
			args: []string{"-platforms", "edison,dell", "-budget", "8236", "-util", "0.75"},
			want: []string{"sized to $8236", "Edison", "Dell"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != 0 {
				t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
			}
			for _, w := range tc.want {
				if !strings.Contains(stdout.String(), w) {
					t.Fatalf("stdout missing %q:\n%s", w, stdout.String())
				}
			}
			if strings.Contains(stdout.String(), "-") && strings.Contains(stdout.String(), "$-") {
				t.Fatalf("output prices a negative fleet:\n%s", stdout.String())
			}
		})
	}
}

// TestDuplicatePlatformsPricedOnce: "-platforms edison,edison" must yield
// exactly one Edison row, not price the same fleet twice.
func TestDuplicatePlatformsPricedOnce(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-platforms", "edison,edison"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if n := strings.Count(stdout.String(), "Edison"); n != 1 {
		t.Fatalf("Edison appears %d times, want 1:\n%s", n, stdout.String())
	}
}

// TestCustomRejectsNegativeOutput: the exact probed invocation of the
// negative-fleet bug must fail cleanly rather than print "Savings: 108%".
func TestCustomRejectsNegativeOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-custom", "-micro", "-5"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if out := stdout.String(); strings.Contains(out, "$-") || strings.Contains(out, "Savings") {
		t.Fatalf("negative fleet still priced:\n%s", out)
	}
}
