// Command mapreduce reproduces the paper's Hadoop experiments (§5.2–5.3):
// the six workloads on the 35-Edison/2-Dell clusters (Table 8, Figures
// 12–17) and the scalability sweep (Figures 18–19).
//
// Usage:
//
//	mapreduce                 # Table 8 at full scale
//	mapreduce -scaling        # all cluster sizes (Figs 18–19)
//	mapreduce -job wordcount -trace   # 1 Hz utilization/power trace
//	mapreduce -format json    # Table 8 as the documented schema
package main

import (
	"flag"
	"fmt"
	"os"

	"edisim"
)

// paperTable8 holds the published numbers for side-by-side comparison:
// seconds and joules per (job, cluster label).
var paperTable8 = map[string]map[string][2]float64{
	"wordcount":  {"35E": {310, 17670}, "17E": {1065, 29485}, "8E": {1817, 23673}, "4E": {3283, 21386}, "2D": {213, 40214}, "1D": {310, 30552}},
	"wordcount2": {"35E": {182, 10370}, "17E": {270, 7475}, "8E": {450, 5862}, "4E": {1192, 7765}, "2D": {66, 11695}, "1D": {93, 8124}},
	"logcount":   {"35E": {279, 15903}, "17E": {601, 16860}, "8E": {990, 12898}, "4E": {2233, 14546}, "2D": {206, 40803}, "1D": {516, 53303}},
	"logcount2":  {"35E": {115, 6555}, "17E": {118, 3267}, "8E": {125, 1629}, "4E": {162, 1055}, "2D": {59, 9486}, "1D": {88, 6905}},
	"pi":         {"35E": {200, 11445}, "17E": {334, 9247}, "8E": {577, 7517}, "4E": {1076, 7009}, "2D": {50, 9285}, "1D": {77, 6878}},
	"terasort":   {"35E": {750, 43440}, "17E": {1364, 37763}, "8E": {3736, 48675}, "4E": {8220, 53547}, "2D": {331, 64210}, "1D": {1336, 111422}},
}

func main() {
	var (
		scaling = flag.Bool("scaling", false, "run every cluster size (Figures 18-19)")
		job     = flag.String("job", "", "run a single job (default: all)")
		trace   = flag.Bool("trace", false, "print the 1 Hz utilization/power trace")
		seed    = flag.Int64("seed", 1, "root random seed")
		format  = flag.String("format", "text", "output format: text, json or csv")
	)
	flag.Parse()
	if !edisim.ValidOutputFormat(*format) {
		fmt.Fprintf(os.Stderr, "mapreduce: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}

	names := edisim.JobNames()
	if *job != "" {
		names = []string{*job}
	}

	micro, brawny := edisim.BaselinePair()
	type config struct {
		label    string
		platform *edisim.Platform
		slaves   int
	}
	configs := []config{
		{"35E", micro, 35},
		{"2D", brawny, 2},
	}
	if *scaling {
		configs = []config{
			{"35E", micro, 35}, {"17E", micro, 17},
			{"8E", micro, 8}, {"4E", micro, 4},
			{"2D", brawny, 2}, {"1D", brawny, 1},
		}
	}

	tab := edisim.NewTable("Table 8 — execution time and energy",
		"job", "cluster", "time(s)", "paper(s)", "energy(J)", "paper(J)", "local%").
		WithUnits("", "", "s", "s", "J", "J", "%")
	var traces []*edisim.Figure
	for _, name := range names {
		for _, cfg := range configs {
			r, err := edisim.RunJob(name, cfg.platform, cfg.slaves, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mapreduce: %s on %s: %v\n", name, cfg.label, err)
				os.Exit(1)
			}
			paper := paperTable8[name][cfg.label]
			tab.AddRow(name, cfg.label,
				edisim.Num(r.Duration, "s"), edisim.Num(paper[0], "s"),
				edisim.Num(float64(r.Energy), "J"), edisim.Num(paper[1], "J"),
				edisim.Num(100*r.LocalityFraction(), "%"))
			if *trace && *format != "text" {
				traces = append(traces, edisim.TraceFigure(fmt.Sprintf("%s on %s — 1 Hz trace", name, cfg.label), r))
			}
			if *format == "text" {
				fmt.Printf("%-11s %-4s time=%6.0fs (paper %5.0f)  energy=%7.0fJ (paper %6.0f)  maps=%d reduces=%d local=%.0f%%\n",
					name, cfg.label, r.Duration, paper[0], float64(r.Energy), paper[1],
					r.MapTasks, r.ReduceTasks, 100*r.LocalityFraction())
				if *trace {
					printTrace(r)
				}
			}
		}
	}

	if *format != "text" {
		a := &edisim.Artifact{ID: "mapreduce", Title: tab.Title, Section: "5.2", Tables: []*edisim.Table{tab}, Figures: traces}
		if err := edisim.WriteDocument(*format, os.Stdout, []*edisim.Artifact{a}); err != nil {
			fmt.Fprintf(os.Stderr, "mapreduce: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println()
	fmt.Println(tab)
}

// printTrace renders the Figure 12–17 style 1 Hz trace: CPU%, memory%,
// map/reduce progress and cluster power.
func printTrace(r *edisim.JobResult) {
	fmt.Printf("  %6s %6s %6s %6s %6s %8s\n", "t(s)", "cpu%", "mem%", "map%", "red%", "power(W)")
	pts := r.Power.Points()
	step := 1
	if len(pts) > 40 {
		step = len(pts) / 40
	}
	for i := 0; i < len(pts); i += step {
		t := pts[i].T
		fmt.Printf("  %6.0f %6.1f %6.1f %6.1f %6.1f %8.1f\n",
			t, r.CPU.At(t), r.Mem.At(t), r.MapProgress.At(t), r.ReduceProgress.At(t), pts[i].V)
	}
}
