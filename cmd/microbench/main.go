// Command microbench reproduces the paper's individual-server tests
// (Section 4): Dhrystone and Sysbench CPU (Figures 2–3), the memory
// bandwidth sweep (§4.2), dd/ioping storage (Table 5) and the iperf3/ping
// network matrix (§4.4).
package main

import (
	"flag"
	"fmt"

	"edisim/internal/core"
)

func main() {
	seed := flag.Int64("seed", 1, "root random seed")
	flag.Parse()

	ids := []string{"table2", "table3", "sec41_dhrystone", "fig2_fig3",
		"sec42_memory", "table5", "sec44_network"}
	cfg := core.Config{Seed: *seed}
	for _, id := range ids {
		e, ok := core.Lookup(id)
		if !ok {
			panic("missing experiment " + id)
		}
		o := e.Run(cfg)
		fmt.Printf("== %s (§%s): %s ==\n", e.ID, e.Section, e.Title)
		for _, t := range o.Tables {
			fmt.Println(t)
		}
		for _, f := range o.Figures {
			fmt.Println(f)
		}
	}
}
