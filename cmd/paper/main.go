// Command paper runs the complete reproduction: every registered
// experiment, printing each artifact and a final paper-vs-measured ledger.
// With -experiments it writes the EXPERIMENTS.md comparison section to
// stdout in markdown.
//
// Experiments and their sweep points are independent simulations, so -j
// fans them across CPUs (default: GOMAXPROCS). Output is bit-identical for
// any -j: every sweep point derives its seed from its identity, and results
// are printed in registration order.
//
// Usage:
//
//	paper               # full fidelity, all paper artifacts (minutes)
//	paper -quick        # reduced sweeps for a fast smoke run
//	paper -j 1          # serial (same output, slower)
//	paper -only fig4_fig7
//	paper -only platform_matrix -platforms pi3,xeon-modern
//	paper -experiments > comparisons.md
//
// Experiments marked opt-in (cross-platform matrices beyond the paper's
// artifact set) run only when named with -only or when -platforms is
// given, keeping the default output exactly the paper reproduction.
// -platforms selects which hw catalog platforms those matrices cover
// (default: the whole catalog).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"edisim/internal/core"
	"edisim/internal/hw"
	"edisim/internal/runner"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "short sweeps (smoke run)")
		only      = flag.String("only", "", "comma-separated experiment IDs (default: all paper artifacts)")
		seed      = flag.Int64("seed", 1, "root random seed")
		jobs      = flag.Int("j", runner.DefaultWorkers(), "parallel workers for experiments and sweep points")
		markdown  = flag.Bool("experiments", false, "emit the EXPERIMENTS.md comparison ledger as markdown")
		platforms = flag.String("platforms", "", "comma-separated hw catalog platforms for matrix experiments (default: whole catalog)")
	)
	flag.Parse()

	cfg := core.Config{Seed: *seed, Quick: *quick, Workers: *jobs}
	if *platforms != "" {
		for _, name := range strings.Split(*platforms, ",") {
			p, ok := hw.LookupPlatform(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "paper: unknown platform %q (catalog: %v)\n", name, hw.PlatformNames())
				os.Exit(2)
			}
			cfg.Matrix = append(cfg.Matrix, p)
		}
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	var all []core.Experiment
	for _, e := range core.Experiments() {
		if len(wanted) > 0 {
			if !wanted[e.ID] {
				continue
			}
		} else if e.OptIn && *platforms == "" {
			// Opt-in matrices run when named with -only or when a
			// -platforms selection implies them; never in the default
			// paper reproduction.
			continue
		}
		all = append(all, e)
	}
	if len(all) == 0 {
		fmt.Fprintf(os.Stderr, "paper: no experiments match %q (have %v)\n", *only, core.IDs())
		os.Exit(2)
	}

	// Run every experiment, streaming results in registration order as the
	// completed prefix grows — long full-fidelity runs show progress, and
	// output stays bit-identical for any -j. Sweep points carry almost all
	// of the work and fan across the full -j pool inside each experiment,
	// so the experiment level only needs enough overlap to hide the serial
	// (non-sweep) experiments: two at a time keeps the worst-case goroutine
	// and testbed-memory load near 2×j rather than j².
	outer := 1
	if *jobs > 1 {
		outer = 2
	}
	var (
		mu       sync.Mutex
		ready    = sync.NewCond(&mu)
		outcomes = make([]*core.Outcome, len(all))
	)
	go runner.Map(outer, len(all), func(i int) *core.Outcome {
		o := all[i].Run(cfg)
		mu.Lock()
		outcomes[i] = o
		ready.Broadcast()
		mu.Unlock()
		return o
	})

	if *markdown {
		fmt.Println("| artifact | metric | paper | simulated | ratio |")
		fmt.Println("|---|---|---:|---:|---:|")
	}
	for i, e := range all {
		mu.Lock()
		for outcomes[i] == nil {
			ready.Wait()
		}
		o := outcomes[i]
		mu.Unlock()
		if *markdown {
			for _, c := range o.Comparisons {
				fmt.Printf("| %s | %s | %.4g | %.4g | %.2f |\n",
					c.Artifact, c.Metric, c.Paper, c.Measured, c.RatioError())
			}
			continue
		}
		fmt.Printf("==== %s (§%s) — %s ====\n", e.ID, e.Section, e.Title)
		for _, t := range o.Tables {
			fmt.Println(t)
		}
		for _, f := range o.Figures {
			fmt.Println(f)
		}
		for _, n := range o.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
	}
	if *markdown {
		return
	}

	fmt.Println("==== paper-vs-simulated ledger ====")
	for _, o := range outcomes {
		for _, c := range o.Comparisons {
			fmt.Println(c)
		}
	}
}
