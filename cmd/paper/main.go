// Command paper runs the complete reproduction: every registered
// experiment, printing each artifact and a final paper-vs-measured ledger.
// With -experiments it writes the EXPERIMENTS.md comparison section to
// stdout in markdown.
//
// The command is a thin shell over the public edisim package: it builds a
// Scenario of paper experiments and streams the artifacts through a sink.
// Experiments and their sweep points are independent simulations, so -j
// fans them across CPUs (default: GOMAXPROCS). Output is bit-identical for
// any -j: every sweep point derives its seed from its identity, and results
// are printed in registration order.
//
// Usage:
//
//	paper               # full fidelity, all paper artifacts (minutes)
//	paper -quick        # reduced sweeps for a fast smoke run
//	paper -j 1          # serial (same output, slower)
//	paper -only fig4_fig7
//	paper -only fig4_fig7 -format json   # the documented JSON schema
//	paper -only platform_matrix -platforms pi3,xeon-modern
//	paper -only platform_matrix -energy tdp-curve -region eu-north
//	paper -only fault_tolerance -platforms edison,r620 \
//	      -faults 'node_crash@30+120:slave[1];straggler@10+60x0.25:web'
//	paper -experiments > comparisons.md
//
// Experiments marked opt-in (cross-platform matrices beyond the paper's
// artifact set) run only when named with -only or when -platforms is
// given, keeping the default output exactly the paper reproduction.
// -platforms selects which hw catalog platforms those matrices cover
// (default: the whole catalog).
//
// -energy selects the node power model (linear is the paper-calibrated
// default; tdp-curve arms the component model) and -region attributes
// energy to an electricity grid for carbon and price accounting; either
// flag makes the matrix experiments report their gCO2e and per-region
// columns. The default run with neither flag is byte-identical to the
// paper reproduction.
//
// -faults overrides the built-in fault schedules of the fault-injecting
// experiments (fault_tolerance) with the API.md schedule grammar; the
// default paper reproduction never injects faults, so the flag changes
// nothing unless such an experiment is selected.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"edisim"
	"edisim/internal/runner"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "short sweeps (smoke run)")
		only      = flag.String("only", "", "comma-separated experiment IDs (default: all paper artifacts)")
		seed      = flag.Int64("seed", 1, "root random seed")
		jobs      = flag.Int("j", runner.DefaultWorkers(), "parallel workers for experiments and sweep points")
		markdown  = flag.Bool("experiments", false, "emit the EXPERIMENTS.md comparison ledger as markdown")
		platforms = flag.String("platforms", "", "comma-separated hw catalog platforms for matrix experiments (default: whole catalog)")
		format    = flag.String("format", "text", "output format: text, json or csv")
		faultSpec = flag.String("faults", "", "fault schedule for fault-injecting experiments, e.g. 'node_crash@30+120:slave[1];straggler@10+60x0.25:web' (see API.md)")
		jitter    = flag.Float64("fault-jitter", 0, "uniform seed-derived jitter bound in seconds added to every fault time")
		energy    = flag.String("energy", "", "node power model: linear (default, paper-calibrated) or tdp-curve (component model; see API.md)")
		region    = flag.String("region", "", "grid region for carbon/price accounting (see API.md; arms the matrix experiments' gCO2e columns)")
	)
	flag.Parse()

	if !edisim.ValidOutputFormat(*format) {
		fmt.Fprintf(os.Stderr, "paper: unknown format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}
	if *markdown && *format != "text" {
		fmt.Fprintf(os.Stderr, "paper: -experiments emits markdown; it cannot combine with -format %s\n", *format)
		os.Exit(2)
	}

	scn := edisim.Scenario{Name: "paper", Seed: *seed, Quick: *quick, Workers: *jobs,
		EnergyModel: *energy, Region: *region}
	if *faultSpec != "" || *jitter != 0 {
		plan, err := edisim.ParseFaultPlan(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper: %v\n", err)
			os.Exit(2)
		}
		if plan == nil {
			fmt.Fprintln(os.Stderr, "paper: -fault-jitter without -faults schedules nothing")
			os.Exit(2)
		}
		plan.Jitter = *jitter
		scn.Faults = plan
	}
	if *platforms != "" {
		// Shared -platforms parsing: whitespace-trimmed, duplicates (and
		// alias respellings) collapsed so no fleet is simulated twice.
		scn.Matrix = edisim.ParsePlatformRefs(*platforms)
		if len(scn.Matrix) == 0 {
			fmt.Fprintf(os.Stderr, "paper: no platforms in %q (have %v)\n", *platforms, edisim.PlatformNames())
			os.Exit(2)
		}
	}
	exps := &edisim.PaperExperiments{IncludeOptIn: *platforms != ""}
	if *only != "" {
		// Unknown IDs are a hard error (listing the valid set), not a
		// silent drop — edisim.Run validates the whole list up front.
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				exps.IDs = append(exps.IDs, id)
			}
		}
		if len(exps.IDs) == 0 {
			fmt.Fprintf(os.Stderr, "paper: no experiments match %q (have %v)\n", *only, edisim.ExperimentIDs())
			os.Exit(2)
		}
	}
	scn.Workloads = []edisim.Workload{exps}

	// Stream as artifacts complete (text blocks, or markdown ledger rows
	// with -experiments); collect everything for the final ledger and the
	// document formats.
	var col edisim.Collector
	sink := edisim.Sink(&col)
	switch {
	case *markdown:
		fmt.Println("| artifact | metric | paper | simulated | ratio |")
		fmt.Println("|---|---|---:|---:|---:|")
		sink = edisim.SinkFunc(func(a *edisim.Artifact) error {
			for _, c := range a.Comparisons {
				fmt.Printf("| %s | %s | %.4g | %.4g | %.2f |\n",
					c.Artifact, c.Metric, c.Paper, c.Measured, c.RatioError())
			}
			return nil
		})
	case *format == "text":
		sink = edisim.MultiSink(edisim.NewTextSink(os.Stdout), &col)
	}

	if err := edisim.Run(context.Background(), scn, sink); err != nil {
		fmt.Fprintf(os.Stderr, "paper: %v\n", err)
		os.Exit(2)
	}
	if *markdown {
		return
	}

	var err error
	if *format == "text" {
		err = edisim.WriteLedger(os.Stdout, col.Artifacts)
	} else {
		err = edisim.WriteDocument(*format, os.Stdout, col.Artifacts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "paper: %v\n", err)
		os.Exit(1)
	}
}
