// Command paper runs the complete reproduction: every registered
// experiment, printing each artifact and a final paper-vs-measured ledger.
// With -experiments it writes the EXPERIMENTS.md comparison section to
// stdout in markdown.
//
// Usage:
//
//	paper               # full fidelity, all artifacts (minutes)
//	paper -quick        # reduced sweeps for a fast smoke run
//	paper -only fig4_fig7
//	paper -experiments > comparisons.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"edisim/internal/core"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "short sweeps (smoke run)")
		only     = flag.String("only", "", "comma-separated experiment IDs (default all)")
		seed     = flag.Int64("seed", 1, "root random seed")
		markdown = flag.Bool("experiments", false, "emit the EXPERIMENTS.md comparison ledger as markdown")
	)
	flag.Parse()

	cfg := core.Config{Seed: *seed, Quick: *quick}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	var all []core.Experiment
	for _, e := range core.Experiments() {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		all = append(all, e)
	}
	if len(all) == 0 {
		fmt.Fprintf(os.Stderr, "paper: no experiments match %q (have %v)\n", *only, core.IDs())
		os.Exit(2)
	}

	type ran struct {
		e core.Experiment
		o *core.Outcome
	}
	var results []ran
	for _, e := range all {
		if !*markdown {
			fmt.Printf("==== %s (§%s) — %s ====\n", e.ID, e.Section, e.Title)
		}
		o := e.Run(cfg)
		results = append(results, ran{e, o})
		if *markdown {
			continue
		}
		for _, t := range o.Tables {
			fmt.Println(t)
		}
		for _, f := range o.Figures {
			fmt.Println(f)
		}
		for _, n := range o.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
	}

	if *markdown {
		fmt.Println("| artifact | metric | paper | simulated | ratio |")
		fmt.Println("|---|---|---:|---:|---:|")
		for _, r := range results {
			for _, c := range r.o.Comparisons {
				fmt.Printf("| %s | %s | %.4g | %.4g | %.2f |\n",
					c.Artifact, c.Metric, c.Paper, c.Measured, c.RatioError())
			}
		}
		return
	}

	fmt.Println("==== paper-vs-simulated ledger ====")
	for _, r := range results {
		for _, c := range r.o.Comparisons {
			fmt.Println(c)
		}
	}
}
