package edisim

import (
	"context"
	"strings"
	"testing"
)

// autoscaleScenario is a fixed-vs-elastic pair on one diurnal cycle over a
// small Edison web tier, through the public Scenario API.
func autoscaleScenario(workers int) Scenario {
	prof := DiurnalLoad{Min: 30, Max: 230, Period: 10}
	return Scenario{
		Quick:   true,
		Workers: workers,
		Workloads: []Workload{
			&AutoscaleStudy{
				ID:       "fixed",
				Web:      TierSpec{Nodes: 6},
				Cache:    TierSpec{Nodes: 3},
				Profile:  prof,
				Duration: 20,
			},
			&AutoscaleStudy{
				ID:        "elastic",
				Web:       TierSpec{Nodes: 6},
				Cache:     TierSpec{Nodes: 3},
				Profile:   prof,
				Duration:  20,
				Autoscale: &AutoscaleConfig{Policy: PredictivePolicy{Profile: prof}},
			},
		},
	}
}

// TestAutoscaleStudyScenario runs the fixed-vs-elastic pair end to end:
// both artifacts produced, the elastic one scales and undercuts the static
// fleet's power under identical traffic.
func TestAutoscaleStudyScenario(t *testing.T) {
	var col Collector
	if err := Run(context.Background(), autoscaleScenario(2), &col); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(col.Artifacts) != 2 {
		t.Fatalf("got %d artifacts, want 2 (fixed + elastic)", len(col.Artifacts))
	}
	byID := map[string]*Artifact{}
	for _, a := range col.Artifacts {
		byID[a.ID] = a
	}
	fixed, elastic := byID["fixed"], byID["elastic"]
	if fixed == nil || elastic == nil {
		t.Fatalf("missing artifacts: %v", byID)
	}
	if len(elastic.Figures) != 1 {
		t.Fatalf("elastic study missing the fleet-vs-load figure (got %d)", len(elastic.Figures))
	}

	col9 := func(a *Artifact, i int) float64 {
		v, _ := a.Tables[0].Rows[0][i].Float()
		return v
	}
	// Columns: 0 offered, 1 goodput, 2 SLO met, 3 mean active, 4 scale
	// events, 5 boots, 6 boot J, 7 power W, 8 req/s/W, ...
	if events := col9(elastic, 4); events == 0 {
		t.Fatal("elastic study never scaled on a diurnal cycle")
	}
	if ma := col9(elastic, 3); ma <= 0 || ma >= 6 {
		t.Fatalf("elastic mean active %.2f, want inside (0,6)", ma)
	}
	if fixedMA := col9(fixed, 3); fixedMA != 6 {
		t.Fatalf("static mean active %.2f, want the full tier 6", fixedMA)
	}
	fixedP, elasticP := col9(fixed, 7), col9(elastic, 7)
	if elasticP >= fixedP {
		t.Fatalf("elastic power %.1fW did not undercut static %.1fW", elasticP, fixedP)
	}
	if !strings.Contains(strings.Join(elastic.Notes, "\n"), "predictive") {
		t.Fatalf("elastic notes missing the policy name: %v", elastic.Notes)
	}
}

// TestAutoscaleStudyWorkerIndependence: the determinism contract of the
// study's doc comment, at the public API level.
func TestAutoscaleStudyWorkerIndependence(t *testing.T) {
	render := func(workers int) string {
		var col Collector
		if err := Run(context.Background(), autoscaleScenario(workers), &col); err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		var b strings.Builder
		for _, a := range col.Artifacts {
			for _, tab := range a.Tables {
				b.WriteString(tab.String())
			}
			for _, f := range a.Figures {
				b.WriteString(f.String())
			}
			for _, n := range a.Notes {
				b.WriteString(n)
			}
		}
		return b.String()
	}
	if serial, parallel := render(1), render(4); serial != parallel {
		t.Errorf("worker count changed the study output:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestAutoscaleStudyValidation: config mistakes surface as errors from Run,
// not as panics inside the engine.
func TestAutoscaleStudyValidation(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
		want string
	}{
		{"no profile", &AutoscaleStudy{}, "needs a load Profile"},
		{"bad policy", &AutoscaleStudy{
			Profile:   SteadyLoad{Rate: 100},
			Autoscale: &AutoscaleConfig{Policy: TargetUtilPolicy{Target: 2}},
		}, "must be in [0,1]"},
		{"nil policy", &AutoscaleStudy{
			Profile:   SteadyLoad{Rate: 100},
			Autoscale: &AutoscaleConfig{},
		}, "needs a Policy"},
		{"reserve conflict", &AutoscaleStudy{
			Profile:   SteadyLoad{Rate: 100},
			SLO:       &SLO{Latency: 0.5, Reserve: 2},
			Autoscale: &AutoscaleConfig{Policy: TargetUtilPolicy{}},
		}, "both edit the routing rotation"},
	}
	for _, tc := range cases {
		var col Collector
		err := Run(context.Background(), Scenario{Quick: true, Workloads: []Workload{tc.w}}, &col)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
