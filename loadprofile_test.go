package edisim

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseLoadProfile(t *testing.T) {
	cases := []struct {
		spec string
		want LoadProfile
	}{
		{"steady:400", SteadyLoad{Rate: 400}},
		{" steady:12.5 ", SteadyLoad{Rate: 12.5}},
		{"spike:120,600@6+4", SpikeLoad{Base: 120, Peak: 600, Start: 6, Duration: 4}},
		{"diurnal:50..400/86400", DiurnalLoad{Min: 50, Max: 400, Period: 86400}},
		{"bursty:100,800,2,10", BurstyLoad{Base: 100, Burst: 800, MeanBurst: 2, MeanGap: 10}},
	}
	for _, c := range cases {
		got, err := ParseLoadProfile(c.spec)
		if err != nil {
			t.Errorf("ParseLoadProfile(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseLoadProfile(%q) = %#v, want %#v", c.spec, got, c.want)
		}
	}
}

// TestParseLoadProfileRoundTrip: every profile's String() is re-parseable
// to the same profile — the grammar and the display form never drift.
func TestParseLoadProfileRoundTrip(t *testing.T) {
	profiles := []LoadProfile{
		SteadyLoad{Rate: 400},
		SpikeLoad{Base: 120, Peak: 600, Start: 6, Duration: 4},
		DiurnalLoad{Min: 50, Max: 400, Period: 86400},
		BurstyLoad{Base: 100, Burst: 800, MeanBurst: 2, MeanGap: 10},
	}
	for _, p := range profiles {
		spec := fmt.Sprint(p)
		got, err := ParseLoadProfile(spec)
		if err != nil {
			t.Errorf("ParseLoadProfile(%q) [String of %#v]: %v", spec, p, err)
			continue
		}
		if got != p {
			t.Errorf("round trip %#v -> %q -> %#v", p, spec, got)
		}
	}
}

func TestParseLoadProfileEmpty(t *testing.T) {
	p, err := ParseLoadProfile("  ")
	if err != nil || p != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", p, err)
	}
}

func TestParseLoadProfileErrors(t *testing.T) {
	bad := []string{
		"steady",               // no colon
		"square:100",           // unknown kind
		"steady:fast",          // bad number
		"steady:-5",            // invalid rate
		"steady:0",             // zero rate
		"spike:120@6+4",        // missing peak
		"spike:120,600@6",      // missing duration
		"spike:120,600",        // missing timing
		"spike:120,600@6+0",    // zero duration
		"diurnal:50..400",      // missing period
		"diurnal:50/86400",     // missing max
		"diurnal:400..50/3600", // max below min
		"bursty:100,800,2",     // missing gap
		"bursty:100,800,2,0",   // zero gap
	}
	for _, spec := range bad {
		if p, err := ParseLoadProfile(spec); err == nil {
			t.Errorf("ParseLoadProfile(%q) = %#v, want error", spec, p)
		} else if !strings.Contains(err.Error(), "edisim: load profile") {
			t.Errorf("ParseLoadProfile(%q) error %q lacks context prefix", spec, err)
		}
	}
}
