package edisim

import (
	"fmt"
	"strconv"
	"strings"

	"edisim/internal/load"
	"edisim/internal/web"
)

// --- Load profiles & overload controls --------------------------------------

// LoadProfile is a deterministic open-loop arrival-rate profile: clients
// send at the profiled rate whether or not the service keeps up (the
// opposite of the paper's closed-loop httperf sessions, where slow replies
// throttle the offered load). Profiles drive OverloadStudy and
// WebRunConfig.Profile.
type LoadProfile = load.Profile

// The built-in profile shapes.
type (
	// SteadyLoad offers a constant rate (Poisson arrivals).
	SteadyLoad = load.Steady
	// SpikeLoad is a flash crowd: Base, stepping to Peak during
	// [Start, Start+Duration).
	SpikeLoad = load.Spike
	// DiurnalLoad is a raised-cosine day/night cycle between Min and Max.
	DiurnalLoad = load.Diurnal
	// BurstyLoad alternates Base and Burst rates with exponential
	// burst/gap durations (a two-state MMPP).
	BurstyLoad = load.Bursty
)

// ShedPolicy bounds what a web server accepts under overload; ShedMode
// selects the policy (ShedDropTail, ShedDeadline, ShedPriority).
type (
	ShedMode   = web.ShedMode
	ShedPolicy = web.ShedPolicy
)

// The admission-control policies.
const (
	ShedOff      = web.ShedOff
	ShedDropTail = web.ShedDropTail
	ShedDeadline = web.ShedDeadline
	ShedPriority = web.ShedPriority
)

// SLO is a service-level objective plus the reactive controller defending
// it (reserve activation, brownout); SLOWindow is one controller
// evaluation, delivered to SLO.Observer.
type (
	SLO       = web.SLO
	SLOWindow = web.SLOWindow
)

// ParseLoadProfile parses the textual load-profile grammar the CLIs accept
// (see API.md). One of:
//
//	steady:RATE                          constant RATE conn/s
//	spike:BASE,PEAK@START+DURATION       flash crowd to PEAK during the window
//	diurnal:MIN..MAX/PERIOD              raised-cosine day/night cycle
//	bursty:BASE,BURST,MEANBURST,MEANGAP  two-state MMPP
//
// The grammar round-trips with each profile's String method. An empty spec
// returns a nil profile (closed-loop operation). The parsed profile is
// validated; a malformed or invalid spec is an error naming it.
func ParseLoadProfile(spec string) (LoadProfile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("edisim: load profile %q: missing ':' (want steady:RATE, spike:BASE,PEAK@START+DURATION, diurnal:MIN..MAX/PERIOD or bursty:BASE,BURST,MEANBURST,MEANGAP)", spec)
	}
	var p LoadProfile
	var err error
	switch strings.TrimSpace(kind) {
	case "steady":
		var rate float64
		if rate, err = parseNum(rest); err == nil {
			p = load.Steady{Rate: rate}
		}
	case "spike":
		p, err = parseSpike(rest)
	case "diurnal":
		p, err = parseDiurnal(rest)
	case "bursty":
		var v []float64
		if v, err = parseNums(rest, 4); err == nil {
			p = load.Bursty{Base: v[0], Burst: v[1], MeanBurst: v[2], MeanGap: v[3]}
		}
	default:
		err = fmt.Errorf("unknown profile kind %q (want steady, spike, diurnal or bursty)", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("edisim: load profile %q: %w", spec, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("edisim: load profile %q: %w", spec, err)
	}
	return p, nil
}

// parseSpike parses BASE,PEAK@START+DURATION.
func parseSpike(s string) (LoadProfile, error) {
	rates, timing, ok := strings.Cut(s, "@")
	if !ok {
		return nil, fmt.Errorf("missing '@START+DURATION'")
	}
	v, err := parseNums(rates, 2)
	if err != nil {
		return nil, err
	}
	start, dur, ok := strings.Cut(timing, "+")
	if !ok {
		return nil, fmt.Errorf("missing '+DURATION' after %q", start)
	}
	sp := load.Spike{Base: v[0], Peak: v[1]}
	if sp.Start, err = parseNum(start); err != nil {
		return nil, err
	}
	if sp.Duration, err = parseNum(dur); err != nil {
		return nil, err
	}
	return sp, nil
}

// parseDiurnal parses MIN..MAX/PERIOD.
func parseDiurnal(s string) (LoadProfile, error) {
	rates, period, ok := strings.Cut(s, "/")
	if !ok {
		return nil, fmt.Errorf("missing '/PERIOD'")
	}
	lo, hi, ok := strings.Cut(rates, "..")
	if !ok {
		return nil, fmt.Errorf("missing '..' between MIN and MAX in %q", rates)
	}
	var d load.Diurnal
	var err error
	if d.Min, err = parseNum(lo); err != nil {
		return nil, err
	}
	if d.Max, err = parseNum(hi); err != nil {
		return nil, err
	}
	if d.Period, err = parseNum(period); err != nil {
		return nil, err
	}
	return d, nil
}

func parseNum(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", strings.TrimSpace(s))
	}
	return v, nil
}

func parseNums(s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d comma-separated numbers, got %d in %q", n, len(parts), s)
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := parseNum(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
