// The root benchmarks regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment from the
// internal/core registry and reports domain metrics (req/s, joules,
// seconds) alongside the usual ns/op. Run all of them with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use Quick mode under -short; full fidelity otherwise.
package edisim

import (
	"os"
	"strconv"
	"testing"

	"edisim/internal/core"
	"edisim/internal/hw"
	"edisim/internal/jobs"
	"edisim/internal/runner"
)

// benchCfg picks fidelity. Sweep-style experiments default to Quick so the
// whole suite finishes in minutes; set EDISIM_FULL=1 for the full-fidelity
// sweeps used to produce EXPERIMENTS.md (cmd/paper runs those by default).
// MapReduce job benches always run at the paper's full cluster scale.
//
// Sweep points fan across GOMAXPROCS workers (so `go test -bench -cpu 1,4`
// compares serial vs parallel wall-clock); override with EDISIM_J=n.
// Results are bit-identical either way.
func benchCfg() core.Config {
	workers := runner.DefaultWorkers()
	if j, err := strconv.Atoi(os.Getenv("EDISIM_J")); err == nil && j > 0 {
		workers = j
	}
	return core.Config{Seed: 1, Quick: os.Getenv("EDISIM_FULL") == "", Workers: workers}
}

// runExperiment executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	e, ok := core.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := e.Run(cfg)
		if len(o.Tables)+len(o.Figures)+len(o.Comparisons) == 0 {
			b.Fatalf("%s produced no artifacts", id)
		}
	}
}

// --- Section 3: testbed ------------------------------------------------------

func BenchmarkTable2_Replacement(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3_PowerStates(b *testing.B) { runExperiment(b, "table3") }

// --- Section 4: individual server tests --------------------------------------

func BenchmarkSec41_Dhrystone(b *testing.B)       { runExperiment(b, "sec41_dhrystone") }
func BenchmarkFig2_Fig3_SysbenchCPU(b *testing.B) { runExperiment(b, "fig2_fig3") }
func BenchmarkSec42_Memory(b *testing.B)          { runExperiment(b, "sec42_memory") }
func BenchmarkTable5_Storage(b *testing.B)        { runExperiment(b, "table5") }
func BenchmarkSec44_Network(b *testing.B)         { runExperiment(b, "sec44_network") }

// --- Section 5.1: web service workloads --------------------------------------

func BenchmarkFig4_Fig7_WebLight(b *testing.B)        { runExperiment(b, "fig4_fig7") }
func BenchmarkFig5_Fig8_WebMixes(b *testing.B)        { runExperiment(b, "fig5_fig8") }
func BenchmarkFig6_Fig9_WebHeavy(b *testing.B)        { runExperiment(b, "fig6_fig9") }
func BenchmarkFig10_Fig11_DelayDist(b *testing.B)     { runExperiment(b, "fig10_fig11") }
func BenchmarkTable7_DelayDecomposition(b *testing.B) { runExperiment(b, "table7") }

// --- Section 5.2: MapReduce workloads -----------------------------------------

// benchJob runs one job on one cluster configuration, reporting simulated
// seconds and joules as benchmark metrics.
func benchJob(b *testing.B, job string, platform *hw.Platform, slaves int) {
	var secs, joules float64
	for i := 0; i < b.N; i++ {
		r, err := jobs.Run(job, platform, slaves, 1)
		if err != nil {
			b.Fatal(err)
		}
		secs = r.Duration
		joules = float64(r.Energy)
	}
	b.ReportMetric(secs, "sim-s")
	b.ReportMetric(joules, "sim-J")
}

func benchPair() (micro, brawny *hw.Platform) { return hw.BaselinePair() }

func BenchmarkFig12_Wordcount_Micro(b *testing.B) {
	m, _ := benchPair()
	benchJob(b, "wordcount", m, 35)
}
func BenchmarkFig15_Wordcount_Brawny(b *testing.B) {
	_, br := benchPair()
	benchJob(b, "wordcount", br, 2)
}
func BenchmarkFig13_Wordcount2_Micro(b *testing.B) {
	m, _ := benchPair()
	benchJob(b, "wordcount2", m, 35)
}
func BenchmarkFig16_Wordcount2_Brawny(b *testing.B) {
	_, br := benchPair()
	benchJob(b, "wordcount2", br, 2)
}
func BenchmarkSec522_Logcount_Micro(b *testing.B) {
	m, _ := benchPair()
	benchJob(b, "logcount", m, 35)
}
func BenchmarkSec522_Logcount_Brawny(b *testing.B) {
	_, br := benchPair()
	benchJob(b, "logcount", br, 2)
}
func BenchmarkSec522_Logcount2_Micro(b *testing.B) {
	m, _ := benchPair()
	benchJob(b, "logcount2", m, 35)
}
func BenchmarkFig14_Pi_Micro(b *testing.B) {
	m, _ := benchPair()
	benchJob(b, "pi", m, 35)
}
func BenchmarkFig17_Pi_Brawny(b *testing.B) {
	_, br := benchPair()
	benchJob(b, "pi", br, 2)
}
func BenchmarkSec524_Terasort_Micro(b *testing.B) {
	m, _ := benchPair()
	benchJob(b, "terasort", m, 35)
}
func BenchmarkSec524_Terasort_Brawny(b *testing.B) {
	_, br := benchPair()
	benchJob(b, "terasort", br, 2)
}

// BenchmarkPlatformMatrix exercises the cross-platform matrix experiment
// over the whole catalog (quick fidelity under -short).
func BenchmarkPlatformMatrix(b *testing.B) { runExperiment(b, "platform_matrix") }

// --- Section 5.3: scalability --------------------------------------------------

func BenchmarkFig18_Fig19_Table8_Scalability(b *testing.B) {
	runExperiment(b, "fig18_fig19_table8")
}

// --- Section 6: TCO ------------------------------------------------------------

func BenchmarkTable10_TCO(b *testing.B) { runExperiment(b, "table10") }

// --- Ablations (design choices called out in DESIGN.md) ------------------------

// BenchmarkAblation_DelayScheduling quantifies what delay scheduling buys:
// data-locality and runtime of wordcount with the scheduler as configured.
func BenchmarkAblation_DelayScheduling(b *testing.B) {
	m, _ := benchPair()
	var locality float64
	for i := 0; i < b.N; i++ {
		r, err := jobs.Run("wordcount", m, 17, 1)
		if err != nil {
			b.Fatal(err)
		}
		locality = r.LocalityFraction()
	}
	b.ReportMetric(100*locality, "local%")
}
