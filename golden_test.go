package edisim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestPaperQuickGolden pins the default `cmd/paper -quick` text output byte
// for byte: the golden file was captured from the pre-typed-report tree, so
// any rendering drift in the typed report layer, the scenario runner or the
// text sink fails here instead of surfacing as a silent baseline change.
// (PRs 1–3 verified this property by hand with cmp; this automates it.)
//
// The test goes through exactly the cmd/paper code path: a PaperExperiments
// scenario streamed through NewTextSink plus the ledger. Workers is fixed
// >1 deliberately — output must be identical for any worker count.
func TestPaperQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick reproduction (~5 s)")
	}
	var buf bytes.Buffer
	var col Collector
	scn := Scenario{Seed: 1, Quick: true, Workers: 4,
		Workloads: []Workload{&PaperExperiments{}}}
	if err := Run(t.Context(), scn, MultiSink(NewTextSink(&buf), &col)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := WriteLedger(&buf, col.Artifacts); err != nil {
		t.Fatalf("WriteLedger: %v", err)
	}

	golden := filepath.Join("testdata", "paper_quick.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("quick reproduction output diverged from %s (got %d bytes, want %d); "+
			"run `go test -run TestPaperQuickGolden -update` only with a planned baseline refresh",
			golden, buf.Len(), len(want))
	}
}
