module edisim

go 1.24
