package load

import (
	"math"
	"testing"

	"edisim/internal/rng"
)

func count(t *testing.T, p Profile, seed int64, horizon, from, to float64) int {
	t.Helper()
	a := NewArrivals(p, rng.New(seed).Derive("arrivals"), horizon)
	n := 0
	for {
		at, ok := a.Next()
		if !ok {
			return n
		}
		if at >= from && at < to {
			n++
		}
	}
}

// Empirical rate over a long window must track the profiled rate.
func TestSteadyRateAccuracy(t *testing.T) {
	const rate, horizon = 200.0, 100.0
	n := count(t, Steady{Rate: rate}, 1, horizon, 0, horizon)
	want := rate * horizon
	if math.Abs(float64(n)-want) > 4*math.Sqrt(want) { // ±4σ for a Poisson count
		t.Fatalf("steady arrivals = %d, want %v ± %v", n, want, 4*math.Sqrt(want))
	}
}

func TestSpikeShape(t *testing.T) {
	p := Spike{Base: 50, Peak: 500, Start: 40, Duration: 20}
	horizon := 100.0
	pre := count(t, p, 3, horizon, 0, 40)
	mid := count(t, p, 3, horizon, 40, 60)
	post := count(t, p, 3, horizon, 60, 100)
	if got, want := float64(mid), 500.0*20; math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("spike window arrivals = %v, want %v", got, want)
	}
	if got, want := float64(pre+post), 50.0*80; math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("base window arrivals = %v, want %v", got, want)
	}
}

func TestDiurnalShape(t *testing.T) {
	p := Diurnal{Min: 20, Max: 400, Period: 100}
	// Trough at the origin, crest at half a period.
	if r := p.At(0); math.Abs(r-20) > 1e-9 {
		t.Fatalf("At(0) = %v, want trough 20", r)
	}
	if r := p.At(50); math.Abs(r-400) > 1e-9 {
		t.Fatalf("At(50) = %v, want crest 400", r)
	}
	// Integral over a full cycle is the mean of Min and Max.
	n := count(t, p, 5, 100, 0, 100)
	want := (20 + 400) / 2.0 * 100
	if math.Abs(float64(n)-want) > 4*math.Sqrt(want) {
		t.Fatalf("diurnal cycle arrivals = %d, want %v", n, want)
	}
}

func TestBurstyLongRunMean(t *testing.T) {
	p := Bursty{Base: 50, Burst: 500, MeanBurst: 2, MeanGap: 8}
	horizon := 400.0
	n := count(t, p, 9, horizon, 0, horizon)
	// Stationary split: 20% of time in burst, 80% quiet.
	want := (0.8*50 + 0.2*500) * horizon
	// MMPP counts are overdispersed vs Poisson; allow a wide band.
	if math.Abs(float64(n)-want) > 0.25*want {
		t.Fatalf("bursty arrivals = %d, want ~%v", n, want)
	}
	// Bursts must actually modulate: some 1-second window near a burst
	// should far exceed the base rate.
	a := NewArrivals(p, rng.New(9).Derive("arrivals"), horizon)
	peakWindow := 0
	cur, curStart := 0, 0.0
	for {
		at, ok := a.Next()
		if !ok {
			break
		}
		for at >= curStart+1 {
			if cur > peakWindow {
				peakWindow = cur
			}
			cur, curStart = 0, curStart+1
		}
		cur++
	}
	if peakWindow < 200 {
		t.Fatalf("max 1s window = %d arrivals, expected burst windows near 500", peakWindow)
	}
}

// The same (profile, seed) pair must replay the identical instant sequence.
func TestArrivalsDeterministic(t *testing.T) {
	mk := func() *Arrivals {
		return NewArrivals(Bursty{Base: 100, Burst: 800, MeanBurst: 1, MeanGap: 4}, rng.New(11).Derive("arrivals"), 30)
	}
	a, b := mk(), mk()
	for i := 0; ; i++ {
		at1, ok1 := a.Next()
		at2, ok2 := b.Next()
		if at1 != at2 || ok1 != ok2 {
			t.Fatalf("arrival %d diverged: (%v,%v) vs (%v,%v)", i, at1, ok1, at2, ok2)
		}
		if !ok1 {
			return
		}
	}
}

func TestArrivalsStrictlyIncreasingAndBounded(t *testing.T) {
	a := NewArrivals(Steady{Rate: 300}, rng.New(2).Derive("arrivals"), 10)
	prev := 0.0
	for {
		at, ok := a.Next()
		if !ok {
			if at <= 10 {
				t.Fatalf("final instant %v should exceed the horizon", at)
			}
			return
		}
		if at <= prev {
			t.Fatalf("non-increasing arrival: %v after %v", at, prev)
		}
		if at > 10 {
			t.Fatalf("arrival %v past horizon reported ok", at)
		}
		prev = at
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		Steady{},
		Steady{Rate: -1},
		Steady{Rate: math.NaN()},
		Steady{Rate: math.Inf(1)},
		Spike{Base: 10, Peak: 0, Start: 1, Duration: 1},
		Spike{Base: 10, Peak: 20, Start: -1, Duration: 1},
		Spike{Base: 10, Peak: 20, Start: 0, Duration: 0},
		Diurnal{Min: -1, Max: 10, Period: 5},
		Diurnal{Min: 20, Max: 10, Period: 5},
		Diurnal{Min: 1, Max: 10, Period: 0},
		Diurnal{Min: 1, Max: 10, Period: 5, Phase: 1.5},
		Bursty{Base: 10, Burst: 100, MeanBurst: 0, MeanGap: 1},
		Bursty{Base: 0, Burst: 100, MeanBurst: 1, MeanGap: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted an invalid profile", i, p)
		}
	}
	good := []Profile{
		Steady{Rate: 100},
		Spike{Base: 10, Peak: 200, Start: 0, Duration: 3},
		Diurnal{Min: 0, Max: 10, Period: 5, Phase: 0.25},
		Bursty{Base: 10, Burst: 100, MeanBurst: 1, MeanGap: 4},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("case %d (%+v): Validate rejected a valid profile: %v", i, p, err)
		}
	}
}

// The arrival generator runs once per request at datacenter rates; it must
// not allocate in steady state (CI-gated alongside the web request path).
func TestArrivalsNextSteadyStateNoAlloc(t *testing.T) {
	a := NewArrivals(Bursty{Base: 500, Burst: 2000, MeanBurst: 1, MeanGap: 2}, rng.New(4).Derive("arrivals"), 1e9)
	allocs := testing.AllocsPerRun(2000, func() {
		a.Next()
	})
	if allocs != 0 {
		t.Fatalf("Arrivals.Next allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkArrivalsNext(b *testing.B) {
	a := NewArrivals(Diurnal{Min: 100, Max: 2000, Period: 60}, rng.New(1).Derive("arrivals"), 1e12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Next()
	}
}
