// Package load provides deterministic open-loop arrival processes for the
// web-serving simulations: a traffic shape (Profile) describes the target
// arrival rate over time, and Arrivals turns it into a concrete sequence of
// arrival instants via Poisson thinning (Lewis & Shedler). Open-loop means
// the client population does not wait for responses — arrivals keep coming
// at the profiled rate whether or not the servers keep up, which is what
// exposes overload behaviour that closed-loop concurrency ladders hide.
//
// Everything is driven by a seeded rng.Source substream, so a (profile,
// seed) pair always yields the same arrival sequence regardless of worker
// count or wall-clock.
package load

import (
	"fmt"
	"math"

	"edisim/internal/rng"
)

// Profile is a deterministic time-varying arrival-rate shape, in arrivals
// per second of simulated time.
type Profile interface {
	// At reports the target arrival rate at time t seconds after the
	// process origin. Arrivals only calls it with non-decreasing t, which
	// lets stateful shapes (Bursty) advance a cursor instead of
	// materialising a schedule.
	At(t float64) float64
	// PeakRate is a finite upper bound on At over any horizon: the
	// thinning envelope.
	PeakRate() float64
	// Validate rejects shapes that would fail silently (non-finite or
	// non-positive rates, negative times, degenerate periods).
	Validate() error
}

// binder is implemented by profiles whose shape itself is stochastic
// (Bursty): NewArrivals hands them a dedicated substream so modulation
// draws never interleave with thinning draws.
type binder interface {
	bind(src *rng.Source) Profile
}

func checkRate(what string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return fmt.Errorf("load: %s must be a positive finite rate, got %v", what, v)
	}
	return nil
}

// Steady is a homogeneous Poisson process at a fixed rate — the open-loop
// analogue of one concurrency-ladder point.
type Steady struct {
	Rate float64 // arrivals per second
}

func (s Steady) At(float64) float64 { return s.Rate }
func (s Steady) PeakRate() float64  { return s.Rate }
func (s Steady) Validate() error    { return checkRate("Steady.Rate", s.Rate) }
func (s Steady) String() string     { return fmt.Sprintf("steady:%g", s.Rate) }

// Spike is base traffic with one rectangular surge — a flash crowd, a
// failover of a sibling datacenter, a retry storm from a buggy client.
type Spike struct {
	Base     float64 // rate outside the spike
	Peak     float64 // rate inside [Start, Start+Duration)
	Start    float64 // seconds after the origin
	Duration float64 // seconds
}

func (s Spike) At(t float64) float64 {
	if t >= s.Start && t < s.Start+s.Duration {
		return s.Peak
	}
	return s.Base
}

func (s Spike) PeakRate() float64 { return math.Max(s.Base, s.Peak) }

func (s Spike) Validate() error {
	if err := checkRate("Spike.Base", s.Base); err != nil {
		return err
	}
	if err := checkRate("Spike.Peak", s.Peak); err != nil {
		return err
	}
	if math.IsNaN(s.Start) || math.IsInf(s.Start, 0) || s.Start < 0 {
		return fmt.Errorf("load: Spike.Start must be >= 0, got %v", s.Start)
	}
	if math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) || s.Duration <= 0 {
		return fmt.Errorf("load: Spike.Duration must be > 0, got %v", s.Duration)
	}
	return nil
}

func (s Spike) String() string {
	return fmt.Sprintf("spike:%g,%g@%g+%g", s.Base, s.Peak, s.Start, s.Duration)
}

// Diurnal is a raised-cosine day/night cycle: rate Min at the trough, Max
// at the crest, one full cycle per Period seconds. Compressing Period to a
// few sim-seconds replays a day of traffic from millions of users inside
// one run.
type Diurnal struct {
	Min    float64 // trough rate
	Max    float64 // crest rate
	Period float64 // seconds per full cycle
	Phase  float64 // fraction of a cycle to shift the origin, in [0,1)
}

func (d Diurnal) At(t float64) float64 {
	x := 2 * math.Pi * (t/d.Period + d.Phase)
	// Trough at the origin when Phase is 0: traffic builds from night.
	return d.Min + (d.Max-d.Min)*0.5*(1-math.Cos(x))
}

func (d Diurnal) PeakRate() float64 { return d.Max }

func (d Diurnal) Validate() error {
	if math.IsNaN(d.Min) || math.IsInf(d.Min, 0) || d.Min < 0 {
		return fmt.Errorf("load: Diurnal.Min must be >= 0, got %v", d.Min)
	}
	if err := checkRate("Diurnal.Max", d.Max); err != nil {
		return err
	}
	if d.Max < d.Min {
		return fmt.Errorf("load: Diurnal.Max (%v) must be >= Min (%v)", d.Max, d.Min)
	}
	if math.IsNaN(d.Period) || math.IsInf(d.Period, 0) || d.Period <= 0 {
		return fmt.Errorf("load: Diurnal.Period must be > 0, got %v", d.Period)
	}
	if math.IsNaN(d.Phase) || math.IsInf(d.Phase, 0) || d.Phase < 0 || d.Phase >= 1 {
		return fmt.Errorf("load: Diurnal.Phase must be in [0,1), got %v", d.Phase)
	}
	return nil
}

func (d Diurnal) String() string {
	return fmt.Sprintf("diurnal:%g..%g/%g", d.Min, d.Max, d.Period)
}

// Bursty is a two-state Markov-modulated Poisson process: traffic dwells
// at Base, jumps to Burst for exponentially distributed bursts, and back.
// Dwell times are drawn from the Arrivals substream, so the burst schedule
// is deterministic per seed.
type Bursty struct {
	Base      float64 // rate in the quiet state
	Burst     float64 // rate in the burst state
	MeanBurst float64 // mean burst dwell, seconds
	MeanGap   float64 // mean quiet dwell, seconds
}

func (b Bursty) At(float64) float64 { return b.Base } // unbound fallback: quiet state
func (b Bursty) PeakRate() float64  { return math.Max(b.Base, b.Burst) }

func (b Bursty) Validate() error {
	if err := checkRate("Bursty.Base", b.Base); err != nil {
		return err
	}
	if err := checkRate("Bursty.Burst", b.Burst); err != nil {
		return err
	}
	if err := checkRate("Bursty.MeanBurst", b.MeanBurst); err != nil {
		return err
	}
	return checkRate("Bursty.MeanGap", b.MeanGap)
}

func (b Bursty) String() string {
	return fmt.Sprintf("bursty:%g,%g,%g,%g", b.Base, b.Burst, b.MeanBurst, b.MeanGap)
}

func (b Bursty) bind(src *rng.Source) Profile {
	return &burstyState{Bursty: b, src: src}
}

// burstyState carries the modulation cursor. At is only ever called with
// non-decreasing t (the thinning clock), so a single forward cursor
// suffices and Next stays allocation-free.
type burstyState struct {
	Bursty
	src     *rng.Source
	started bool
	inBurst bool
	next    float64 // time of the next state flip
}

func (s *burstyState) At(t float64) float64 {
	if !s.started {
		s.started = true
		s.next = s.src.Exp(s.MeanGap)
	}
	for t >= s.next {
		s.inBurst = !s.inBurst
		if s.inBurst {
			s.next += s.src.Exp(s.MeanBurst)
		} else {
			s.next += s.src.Exp(s.MeanGap)
		}
	}
	if s.inBurst {
		return s.Burst
	}
	return s.Base
}

// Arrivals samples concrete arrival instants from a Profile by thinning a
// homogeneous Poisson process at PeakRate. Next is allocation-free.
type Arrivals struct {
	prof    Profile
	src     *rng.Source
	peak    float64
	horizon float64
	t       float64
}

// NewArrivals builds a sampler over [0, horizon] seconds. It panics on an
// invalid profile (callers validate user input through Profile.Validate
// first; reaching here invalid is a programming error). Stochastic shapes
// are bound to a derived substream of src, so the caller's stream only
// ever sees thinning draws.
func NewArrivals(p Profile, src *rng.Source, horizon float64) *Arrivals {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) || horizon <= 0 {
		panic(fmt.Errorf("load: horizon must be > 0, got %v", horizon))
	}
	if b, ok := p.(binder); ok {
		p = b.bind(src.Derive("load/modulation"))
	}
	return &Arrivals{prof: p, src: src, peak: p.PeakRate(), horizon: horizon}
}

// Next returns the instant of the next arrival, in seconds after the
// origin, strictly increasing across calls. ok is false once the process
// has run past the horizon; the returned instant is then past the horizon
// and must not be scheduled.
func (a *Arrivals) Next() (t float64, ok bool) {
	for {
		a.t += a.src.Exp(1 / a.peak)
		if a.t > a.horizon {
			return a.t, false
		}
		if a.src.Float64()*a.peak < a.prof.At(a.t) {
			return a.t, true
		}
	}
}
