// Package microbench reproduces the paper's individual-server tests
// (Section 4): Dhrystone and Sysbench for CPU (Figures 2–3), Sysbench
// memory bandwidth sweeps (§4.2), dd/ioping storage tests (Table 5) and
// iperf3/ping network tests (§4.4). The CPU tests run through the DES
// processor-sharing model so thread contention emerges from the same
// substrate the cluster workloads use.
package microbench

import (
	"edisim/internal/hw"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// DhrystoneResult is the §4.1 Dhrystone outcome for one platform.
type DhrystoneResult struct {
	Platform string
	DMIPS    units.DMIPS
	// RunTime is how long 100 million runs take at -O3 on one core.
	RunTime float64
}

// dhrystonesPerDMIPS is the divisor from the paper: DMIPS = loops/s ÷ 1757.
const dhrystonesPerDMIPS = 1757

// Dhrystone reports the single-core Dhrystone result for a platform.
func Dhrystone(spec hw.NodeSpec) DhrystoneResult {
	loopsPerSec := float64(spec.CPU.DMIPS) * dhrystonesPerDMIPS
	return DhrystoneResult{
		Platform: spec.Name,
		DMIPS:    spec.CPU.DMIPS,
		RunTime:  100e6 / loopsPerSec,
	}
}

// CPUPoint is one thread-count sample of the Sysbench CPU test
// (primes < 20000), matching Figures 2 and 3: total completion time and
// the average per-event response time.
type CPUPoint struct {
	Threads     int
	TotalTime   float64 // seconds
	AvgResponse float64 // seconds per event
}

// sysbenchWorkDMIPSSeconds is the total work of "calculate all primes below
// 20000" under Sysbench 0.5, expressed in Dell-measured DMIPS-seconds and
// calibrated so the Dell 1-thread run takes ≈40 s (Figure 3).
const sysbenchWorkDMIPSSeconds = 40 * 11383

// sysbenchEvents is Sysbench's default event count for the CPU test.
const sysbenchEvents = 10000

// sysbenchEfficiency captures that the prime loop is less sensitive to the
// Xeon's deep pipeline than Dhrystone is: per §4.1 the Sysbench single-core
// gap is 15–18× while the Dhrystone gap is 18×. Edison therefore runs this
// benchmark slightly "above" its Dhrystone rating.
func sysbenchEfficiency(spec hw.NodeSpec) float64 {
	if spec.CPU.Clock < 1000 { // Atom-class in-order core
		return 1.15
	}
	return 1.0
}

// SysbenchCPU runs the primes benchmark with the given thread counts on the
// DES processor model and reports one point per thread count.
func SysbenchCPU(spec hw.NodeSpec, threads []int) []CPUPoint {
	eff := sysbenchEfficiency(spec)
	points := make([]CPUPoint, 0, len(threads))
	for _, th := range threads {
		eng := sim.NewEngine()
		node := hw.NewNode(eng, spec, "bench")
		perThread := sysbenchWorkDMIPSSeconds / eff / float64(th)
		var last sim.Time
		for i := 0; i < th; i++ {
			node.Compute(perThread, func() {
				if eng.Now() > last {
					last = eng.Now()
				}
			})
		}
		eng.Run()
		total := float64(last)
		// Sysbench response time: mean latency of one event. Each thread
		// serves its share of events sequentially at the per-thread rate.
		eventWork := sysbenchWorkDMIPSSeconds / eff / sysbenchEvents
		perThreadRate := float64(spec.CPU.DMIPS)
		if c := spec.CPU.EffectiveCores(); float64(th) > c {
			perThreadRate *= c / float64(th)
		}
		points = append(points, CPUPoint{
			Threads:     th,
			TotalTime:   total,
			AvgResponse: eventWork / perThreadRate,
		})
	}
	return points
}

// MemoryPoint is one (block size, threads) sample of the Sysbench memory
// transfer test (§4.2).
type MemoryPoint struct {
	Block   units.Bytes
	Threads int
	Rate    units.BytesPerSec
}

// memOpOverhead is the fixed per-block software cost that makes small-block
// transfers slow; calibrated so rates saturate between 256 KB and 1 MB as
// the paper observes.
func memOpOverhead(spec hw.NodeSpec) float64 {
	if spec.CPU.Clock < 1000 {
		return 30e-6 // Edison: slow core, higher per-op cost
	}
	return 1.8e-6
}

// SysbenchMemory sweeps block sizes and thread counts, reporting the
// achieved transfer rate for each combination.
func SysbenchMemory(spec hw.NodeSpec, blocks []units.Bytes, threads []int) []MemoryPoint {
	var out []MemoryPoint
	ov := memOpOverhead(spec)
	for _, bl := range blocks {
		for _, th := range threads {
			// Per-thread streaming rate limited by fixed per-op cost...
			perThread := float64(bl) / (float64(bl)/float64(spec.Mem.Bandwidth) + ov)
			// ...scaled by threads until the controller saturates.
			eff := float64(th)
			if sat := float64(spec.Mem.SaturationThreads); eff > sat {
				eff = sat
			}
			rate := perThread * eff
			if max := float64(spec.Mem.Bandwidth); rate > max {
				rate = max
			}
			out = append(out, MemoryPoint{Block: bl, Threads: th, Rate: units.BytesPerSec(rate)})
		}
	}
	return out
}

// PeakMemoryBandwidth reports the saturated rate (large blocks, enough
// threads), which the paper quotes as 2.2 GB/s vs 36 GB/s.
func PeakMemoryBandwidth(spec hw.NodeSpec) units.BytesPerSec {
	pts := SysbenchMemory(spec, []units.Bytes{units.MB}, []int{16})
	return pts[0].Rate
}

// StorageResult is the Table 5 row set for one platform, measured by
// running dd-style streaming transfers and ioping-style single requests
// through the DES disk model.
type StorageResult struct {
	Platform                  string
	Write, BufWrite           units.BytesPerSec
	Read, BufRead             units.BytesPerSec
	WriteLatency, ReadLatency float64
}

// ddBytes is the transfer volume used for throughput measurement.
const ddBytes = 64 * units.MB

// Storage measures the platform's disk with dd and ioping equivalents.
func Storage(spec hw.NodeSpec) StorageResult {
	run := func(write, buffered bool) units.BytesPerSec {
		eng := sim.NewEngine()
		d := hw.NewDisk(eng, spec.Disk)
		var doneAt sim.Time
		record := func() { doneAt = eng.Now() }
		// dd streams in blocks; issue sequentially like dd does.
		const blocks = 64
		block := ddBytes / blocks
		var issue func(i int)
		issue = func(i int) {
			if i == blocks {
				record()
				return
			}
			if write {
				d.Write(block, buffered, func() { issue(i + 1) })
			} else {
				d.Read(block, buffered, func() { issue(i + 1) })
			}
		}
		issue(0)
		eng.Run()
		return units.BytesPerSec(float64(ddBytes) / float64(doneAt))
	}
	lat := func(write bool) float64 {
		eng := sim.NewEngine()
		d := hw.NewDisk(eng, spec.Disk)
		var doneAt sim.Time
		if write {
			d.Write(4*units.KB, false, func() { doneAt = eng.Now() })
		} else {
			d.Read(4*units.KB, false, func() { doneAt = eng.Now() })
		}
		eng.Run()
		return float64(doneAt)
	}
	return StorageResult{
		Platform:     spec.Name,
		Write:        run(true, false),
		BufWrite:     run(true, true),
		Read:         run(false, false),
		BufRead:      run(false, true),
		WriteLatency: lat(true),
		ReadLatency:  lat(false),
	}
}

// NetworkResult is one §4.4 measurement between a pair of hosts.
type NetworkResult struct {
	Pair     string
	TCP, UDP units.BytesPerSec
	RTT      float64
}

// iperfBytes is the paper's 1 GB transfer volume.
const iperfBytes = units.GB
