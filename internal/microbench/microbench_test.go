package microbench

import (
	"math"
	"testing"

	"edisim/internal/hw"
	"edisim/internal/units"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDhrystoneReportsSpecDMIPS(t *testing.T) {
	e := Dhrystone(hw.EdisonSpec())
	d := Dhrystone(hw.DellR620Spec())
	if float64(e.DMIPS) != 632.3 || float64(d.DMIPS) != 11383 {
		t.Fatalf("DMIPS %v / %v, want 632.3 / 11383 (§4.1)", e.DMIPS, d.DMIPS)
	}
	if e.RunTime <= d.RunTime {
		t.Fatal("micro Dhrystone should take longer than brawny")
	}
	// Ratio should be the per-core gap, ≈18×.
	if r := e.RunTime / d.RunTime; r < 17 || r > 19 {
		t.Fatalf("run time ratio %.1f, want ≈18", r)
	}
}

func TestSysbenchCPUSingleThreadGap(t *testing.T) {
	th := []int{1}
	e := SysbenchCPU(hw.EdisonSpec(), th)[0]
	d := SysbenchCPU(hw.DellR620Spec(), th)[0]
	gap := e.TotalTime / d.TotalTime
	// §4.1: "a Dell server is 15-18 times faster" single-threaded.
	if gap < 15 || gap > 18 {
		t.Fatalf("1-thread Sysbench gap %.1f, want 15–18", gap)
	}
	// Figure 3: Dell 1-thread completes in ≈40 s.
	if !almost(d.TotalTime, 40, 2) {
		t.Fatalf("Dell 1-thread time %.1fs, want ≈40s", d.TotalTime)
	}
	// Figure 2: Edison 1-thread in the 550–700 s band.
	if e.TotalTime < 550 || e.TotalTime > 700 {
		t.Fatalf("micro 1-thread time %.1fs, want 550–700s", e.TotalTime)
	}
}

func TestSysbenchCPUThreadScaling(t *testing.T) {
	pts := SysbenchCPU(hw.EdisonSpec(), []int{1, 2, 4, 8})
	// Two physical cores: halving from 1→2 threads, flat afterwards (Fig 2).
	if !almost(pts[1].TotalTime, pts[0].TotalTime/2, 1) {
		t.Fatalf("2 threads %.1fs, want half of %.1fs", pts[1].TotalTime, pts[0].TotalTime)
	}
	if !almost(pts[2].TotalTime, pts[1].TotalTime, 1) || !almost(pts[3].TotalTime, pts[1].TotalTime, 1) {
		t.Fatalf("4/8 threads should stay flat: %v", pts)
	}
	// Response time rises once threads exceed cores (Fig 2 secondary axis).
	if pts[3].AvgResponse <= pts[1].AvgResponse {
		t.Fatal("8-thread response should exceed 2-thread response")
	}
}

func TestSysbenchCPUDellResponseBand(t *testing.T) {
	pts := SysbenchCPU(hw.DellR620Spec(), []int{1, 2, 4, 8})
	// Figure 3 secondary axis: 3–5 ms per event throughout.
	for _, p := range pts {
		if p.AvgResponse < 3e-3 || p.AvgResponse > 5e-3 {
			t.Fatalf("Dell response %.2fms at %d threads, want 3–5ms",
				p.AvgResponse*1e3, p.Threads)
		}
	}
}

func TestMemoryBandwidthMatchesSection42(t *testing.T) {
	e := float64(PeakMemoryBandwidth(hw.EdisonSpec())) / float64(units.GBps)
	d := float64(PeakMemoryBandwidth(hw.DellR620Spec())) / float64(units.GBps)
	if !almost(e, 2.2, 0.15) {
		t.Fatalf("micro peak bandwidth %.2f GB/s, want ≈2.2", e)
	}
	if !almost(d, 36, 2) {
		t.Fatalf("Dell peak bandwidth %.1f GB/s, want ≈36", d)
	}
}

func TestMemorySaturationCurve(t *testing.T) {
	blocks := []units.Bytes{4 * units.KB, 64 * units.KB, 256 * units.KB, units.MB}
	pts := SysbenchMemory(hw.EdisonSpec(), blocks, []int{2})
	// Monotone non-decreasing in block size.
	for i := 1; i < len(pts); i++ {
		if pts[i].Rate < pts[i-1].Rate {
			t.Fatalf("rate not monotone in block size: %v", pts)
		}
	}
	// Saturation: 256KB within 15% of 1MB rate (paper: saturates 256KB–1MB).
	r256, r1m := float64(pts[2].Rate), float64(pts[3].Rate)
	if r256 < 0.85*r1m {
		t.Fatalf("256KB rate %.2g not near-saturated vs 1MB rate %.2g", r256, r1m)
	}
	// 4KB distinctly slower.
	if float64(pts[0].Rate) > 0.7*r1m {
		t.Fatalf("4KB rate should be well below saturation")
	}
}

func TestMemoryThreadSaturation(t *testing.T) {
	blocks := []units.Bytes{units.MB}
	one := SysbenchMemory(hw.EdisonSpec(), blocks, []int{1})[0].Rate
	two := SysbenchMemory(hw.EdisonSpec(), blocks, []int{2})[0].Rate
	four := SysbenchMemory(hw.EdisonSpec(), blocks, []int{4})[0].Rate
	if two <= one {
		t.Fatal("2 threads should beat 1 on the micro server")
	}
	if four > two {
		t.Fatal("beyond 2 threads the micro memory rate should not increase (§4.2)")
	}
	dEleven := SysbenchMemory(hw.DellR620Spec(), blocks, []int{12})[0].Rate
	dSixteen := SysbenchMemory(hw.DellR620Spec(), blocks, []int{16})[0].Rate
	if dSixteen > dEleven {
		t.Fatal("beyond 12 threads Dell memory rate should not increase (§4.2)")
	}
}

func TestStorageMatchesTable5(t *testing.T) {
	e := Storage(hw.EdisonSpec())
	d := Storage(hw.DellR620Spec())
	checks := []struct {
		name      string
		got, want float64
		tolerance float64
	}{
		{"edison write", float64(e.Write) / float64(units.MBps), 4.5, 0.5},
		{"edison buf write", float64(e.BufWrite) / float64(units.MBps), 9.3, 1},
		{"edison read", float64(e.Read) / float64(units.MBps), 19.5, 2.5},
		{"dell write", float64(d.Write) / float64(units.MBps), 24.0, 3},
		{"dell read", float64(d.Read) / float64(units.MBps), 86.1, 9},
		{"edison write latency", e.WriteLatency, 18.0e-3, 1e-3},
		{"edison read latency", e.ReadLatency, 7.0e-3, 1e-3},
		{"dell write latency", d.WriteLatency, 5.04e-3, 0.5e-3},
		{"dell read latency", d.ReadLatency, 0.829e-3, 0.1e-3},
	}
	for _, c := range checks {
		if !almost(c.got, c.want, c.tolerance) {
			t.Errorf("%s: %.3g, want ≈%.3g", c.name, c.got, c.want)
		}
	}
	// Ratios the paper calls out: direct write 5.3×, buffered write 8.9×.
	if r := float64(d.Write) / float64(e.Write); r < 4.5 || r > 6 {
		t.Errorf("direct write ratio %.1f, want ≈5.3", r)
	}
	if r := float64(d.BufWrite) / float64(e.BufWrite); r < 8 || r > 10 {
		t.Errorf("buffered write ratio %.1f, want ≈8.9", r)
	}
}

func TestNetworkMatchesSection44(t *testing.T) {
	micro, brawny := hw.BaselinePair()
	res := MeasureNetwork(micro, brawny)
	if len(res) != 3 {
		t.Fatalf("got %d pairs", len(res))
	}
	byName := map[string]NetworkResult{}
	for _, r := range res {
		byName[r.Pair] = r
	}
	dd := byName[brawny.Label+" to "+brawny.Label]
	if got := float64(dd.TCP) * 8 / 1e6; !almost(got, 942, 10) {
		t.Errorf("D-D TCP %.0f Mbit/s, want ≈942", got)
	}
	if got := dd.RTT * 1e3; !almost(got, 0.24, 0.05) {
		t.Errorf("D-D RTT %.2fms, want ≈0.24", got)
	}
	de := byName[brawny.Label+" to "+micro.Label]
	if got := float64(de.TCP) * 8 / 1e6; !almost(got, 93.9, 2) {
		t.Errorf("D-E TCP %.1f Mbit/s, want ≈93.9", got)
	}
	ee := byName[micro.Label+" to "+micro.Label]
	if got := float64(ee.TCP) * 8 / 1e6; !almost(got, 93.9, 2) {
		t.Errorf("E-E TCP %.1f Mbit/s, want ≈93.9", got)
	}
	if got := ee.RTT * 1e3; got < 1.0 || got > 1.5 {
		t.Errorf("E-E RTT %.2fms, want ≈1.3", got)
	}
	if got := float64(ee.UDP) * 8 / 1e6; !almost(got, 94.8, 1) {
		t.Errorf("E-E UDP %.1f Mbit/s, want 94.8", got)
	}
}
