package microbench

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// MeasureNetwork reproduces the §4.4 iperf3/ping matrix on the full testbed:
// Dell→Dell, Dell→Edison, and Edison→Edison TCP transfers of 1 GB, plus
// ping RTTs. UDP rates come from the slower endpoint's measured goodput
// (UDP has no congestion control; iperf UDP just paces at line rate).
func MeasureNetwork() []NetworkResult {
	tb := cluster.New(cluster.Config{EdisonNodes: 35, DellNodes: 2, DBNodes: 0, Clients: 0})
	ed, dl := hw.EdisonSpec(), hw.DellR620Spec()

	pairs := []struct {
		name     string
		src, dst string
		udp      units.BytesPerSec
	}{
		{"Dell to Dell", tb.Dell[0].ID, tb.Dell[1].ID, dl.NIC.UDPGoodput},
		{"Dell to Edison", tb.Dell[0].ID, tb.Edison[0].ID, ed.NIC.UDPGoodput},
		{"Edison to Edison", tb.Edison[0].ID, tb.Edison[34].ID, ed.NIC.UDPGoodput},
	}

	var out []NetworkResult
	for _, p := range pairs {
		var doneAt sim.Time
		start := tb.Eng.Now()
		tb.Fab.StartFlow(p.src, p.dst, iperfBytes, func() { doneAt = tb.Eng.Now() })
		tb.Eng.Run()
		elapsed := float64(doneAt - start)
		if elapsed <= 0 {
			panic(fmt.Sprintf("microbench: zero-time transfer %s", p.name))
		}
		out = append(out, NetworkResult{
			Pair: p.name,
			TCP:  units.BytesPerSec(float64(iperfBytes) / elapsed),
			UDP:  p.udp,
			RTT:  tb.Fab.RTT(p.src, p.dst),
		})
	}
	return out
}
