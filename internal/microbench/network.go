package microbench

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// MeasureNetwork reproduces the §4.4 iperf3/ping matrix on the testbed:
// brawny→brawny, brawny→micro, and micro→micro TCP transfers of 1 GB, plus
// ping RTTs. UDP rates come from the slower endpoint's measured goodput
// (UDP has no congestion control; iperf UDP just paces at line rate).
func MeasureNetwork(micro, brawny *hw.Platform) []NetworkResult {
	tb := cluster.New(cluster.Config{
		Groups:  []cluster.GroupConfig{{Platform: micro, Nodes: 35}, {Platform: brawny, Nodes: 2}},
		DBNodes: 0, Clients: 0,
	})
	mn := tb.Nodes(micro)
	bn := tb.Nodes(brawny)

	pairs := []struct {
		name     string
		src, dst string
		udp      units.BytesPerSec
	}{
		{fmt.Sprintf("%s to %s", brawny.Label, brawny.Label), bn[0].ID, bn[1].ID, brawny.Spec.NIC.UDPGoodput},
		{fmt.Sprintf("%s to %s", brawny.Label, micro.Label), bn[0].ID, mn[0].ID, micro.Spec.NIC.UDPGoodput},
		{fmt.Sprintf("%s to %s", micro.Label, micro.Label), mn[0].ID, mn[34].ID, micro.Spec.NIC.UDPGoodput},
	}

	var out []NetworkResult
	for _, p := range pairs {
		var doneAt sim.Time
		start := tb.Eng.Now()
		tb.Fab.StartFlow(p.src, p.dst, iperfBytes, func() { doneAt = tb.Eng.Now() })
		tb.Eng.Run()
		elapsed := float64(doneAt - start)
		if elapsed <= 0 {
			panic(fmt.Sprintf("microbench: zero-time transfer %s", p.name))
		}
		out = append(out, NetworkResult{
			Pair: p.name,
			TCP:  units.BytesPerSec(float64(iperfBytes) / elapsed),
			UDP:  p.udp,
			RTT:  tb.Fab.RTT(p.src, p.dst),
		})
	}
	return out
}
