package cluster

import (
	"fmt"

	"edisim/internal/netsim"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// LeafSpineConfig sizes a generic datacenter leaf-spine fabric: Leaves leaf
// switches, each with HostsPerLeaf hosts on access links, every leaf
// connected to every spine. This is the scale-out shape the paper's testbed
// grows into past its five-boxes-and-a-core layout (§3) — the topology the
// datacenter-scale benchmarks and the ROADMAP's million-user fleets run on.
type LeafSpineConfig struct {
	Spines, Leaves, HostsPerLeaf int

	HostLink units.BytesPerSec // host access capacity; 0 means 1 Gbps
	Uplink   units.BytesPerSec // each leaf-spine link; 0 means 10 Gbps

	AccessDelay float64 // host-leaf propagation; 0 means 0.02 ms
	UplinkDelay float64 // leaf-spine propagation; 0 means 0.01 ms
}

func (c LeafSpineConfig) withDefaults() LeafSpineConfig {
	if c.HostLink == 0 {
		c.HostLink = units.Gbps(1)
	}
	if c.Uplink == 0 {
		c.Uplink = units.Gbps(10)
	}
	if c.AccessDelay == 0 {
		c.AccessDelay = 0.02e-3
	}
	if c.UplinkDelay == 0 {
		c.UplinkDelay = 0.01e-3
	}
	return c
}

// LeafSpine builds the leaf-spine fabric on the engine and returns it with
// the host vertex names, leaf-major ("h<leaf>-<index>"). Host counts are
// bounded by Leaves × HostsPerLeaf ≤ MaxGroupNodes, the same sanity cap as
// testbed groups.
func LeafSpine(eng *sim.Engine, cfg LeafSpineConfig) (*netsim.Fabric, []string) {
	cfg = cfg.withDefaults()
	if cfg.Spines <= 0 || cfg.Leaves <= 0 || cfg.HostsPerLeaf <= 0 {
		panic(fmt.Sprintf("cluster: leaf-spine needs positive dimensions, got %d/%d/%d",
			cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf))
	}
	if n := cfg.Leaves * cfg.HostsPerLeaf; n > MaxGroupNodes {
		panic(fmt.Sprintf("cluster: leaf-spine host count %d exceeds group cap %d", n, MaxGroupNodes))
	}
	f := netsim.NewFabric(eng)
	for s := 0; s < cfg.Spines; s++ {
		f.AddVertex(fmt.Sprintf("spine%d", s))
	}
	hosts := make([]string, 0, cfg.Leaves*cfg.HostsPerLeaf)
	for l := 0; l < cfg.Leaves; l++ {
		leaf := fmt.Sprintf("leaf%d", l)
		f.AddVertex(leaf)
		for s := 0; s < cfg.Spines; s++ {
			f.Connect(leaf, fmt.Sprintf("spine%d", s), cfg.Uplink, cfg.UplinkDelay)
		}
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			host := fmt.Sprintf("h%d-%d", l, h)
			f.AddVertex(host)
			f.Connect(host, leaf, cfg.HostLink, cfg.AccessDelay)
			hosts = append(hosts, host)
		}
	}
	return f, hosts
}
