package cluster

import (
	"math"
	"testing"

	"edisim/internal/hw"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func pair() (micro, brawny *hw.Platform) { return hw.BaselinePair() }

func TestTestbedSizes(t *testing.T) {
	micro, brawny := pair()
	tb := New(DefaultConfig())
	if len(tb.Nodes(micro)) != 35 || len(tb.Nodes(brawny)) != 3 || len(tb.DB) != 2 || len(tb.Clients) != 8 {
		t.Fatalf("sizes: %d micro, %d brawny, %d db, %d clients",
			len(tb.Nodes(micro)), len(tb.Nodes(brawny)), len(tb.DB), len(tb.Clients))
	}
}

func TestMeasuredRTTsMatchSection44(t *testing.T) {
	micro, brawny := pair()
	tb := New(DefaultConfig())
	mn, bn := tb.Nodes(micro), tb.Nodes(brawny)
	// Micro <-> micro across boxes: paper measures ≈1.3 ms.
	ee := tb.Fab.RTT(mn[0].ID, mn[34].ID)
	if ee < 1.0e-3 || ee > 1.5e-3 {
		t.Errorf("micro-micro RTT %.2fms, want ≈1.3ms", ee*1e3)
	}
	// Brawny <-> brawny: ≈0.24 ms.
	dd := tb.Fab.RTT(bn[0].ID, bn[1].ID)
	if dd < 0.20e-3 || dd > 0.30e-3 {
		t.Errorf("brawny-brawny RTT %.2fms, want ≈0.24ms", dd*1e3)
	}
	// Brawny <-> micro: ≈0.8 ms.
	de := tb.Fab.RTT(bn[0].ID, mn[0].ID)
	if de < 0.6e-3 || de > 1.0e-3 {
		t.Errorf("brawny-micro RTT %.2fms, want ≈0.8ms", de*1e3)
	}
}

func TestClusterIdlePowerMatchesTable3(t *testing.T) {
	micro, brawny := pair()
	tb := New(DefaultConfig())
	if got := float64(tb.Group(micro).Meter.Power()); !almost(got, 49.0, 0.01) {
		t.Errorf("micro cluster idle power %.2fW, want 49.0W", got)
	}
	if got := float64(tb.Group(brawny).Meter.Power()); !almost(got, 156, 0.01) {
		t.Errorf("brawny cluster idle power %.2fW, want 156W", got)
	}
}

func TestTable3Rows(t *testing.T) {
	rows := Table3()
	want := []struct{ idle, busy float64 }{
		{0.36, 0.75}, {1.40, 1.68}, {49.0, 58.8}, {52, 109}, {156, 327},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, w := range want {
		if !almost(float64(rows[i].Idle), w.idle, 1e-6) || !almost(float64(rows[i].Busy), w.busy, 1e-6) {
			t.Errorf("row %q: %.2f/%.2f, want %.2f/%.2f",
				rows[i].Label, float64(rows[i].Idle), float64(rows[i].Busy), w.idle, w.busy)
		}
	}
}

func TestTable6Configuration(t *testing.T) {
	micro, brawny := pair()
	rows := Table6()
	full := rows[0]
	mt, bt := full.Tier(micro), full.Tier(brawny)
	if mt.Web != 24 || mt.Cache != 11 || bt.Web != 2 || bt.Cache != 1 {
		t.Fatalf("full-scale row wrong: %+v", full)
	}
	// Web servers ≈ 2× cache servers throughout (paper's provisioning rule).
	for _, r := range rows {
		mt := r.Tier(micro)
		if mt.Cache > 0 && (mt.Web < mt.Cache || mt.Web > 3*mt.Cache) {
			t.Errorf("scale %s: web/cache ratio off: %d/%d", r.Name, mt.Web, mt.Cache)
		}
	}
}

func TestMicroUplinkIsBottleneck(t *testing.T) {
	// The client room reaches the micro room through a single 1 Gbps path;
	// each individual link to a brawny host is also ≈1 Gbps. Verify topology
	// wiring by comparing hop counts.
	micro, brawny := pair()
	tb := New(DefaultConfig())
	pEd := tb.Fab.Route("client0", tb.Nodes(micro)[0].ID)
	pDl := tb.Fab.Route("client0", tb.Nodes(brawny)[0].ID)
	if len(pEd) <= len(pDl) {
		t.Fatalf("micro path (%d hops) should be longer than brawny path (%d hops)",
			len(pEd), len(pDl))
	}
}

func TestScaledDownCluster(t *testing.T) {
	micro, brawny := pair()
	tb := New(Config{
		Groups:  []GroupConfig{{Platform: micro, Nodes: 8}, {Platform: brawny, Nodes: 1}},
		DBNodes: 2, Clients: 4,
	})
	if len(tb.Nodes(micro)) != 8 || len(tb.Nodes(brawny)) != 1 {
		t.Fatal("scaled config not honored")
	}
	// All nodes still mutually routable.
	tb.Fab.Route(tb.Nodes(micro)[7].ID, tb.DB[1].ID)
	tb.Fab.Route(tb.Nodes(micro)[0].ID, tb.Nodes(micro)[7].ID)
}

func TestNodesUseCorrectSpecs(t *testing.T) {
	micro, brawny := pair()
	tb := New(DefaultConfig())
	if tb.Nodes(micro)[0].Spec.Name != micro.Spec.Name {
		t.Fatal("micro node has wrong spec")
	}
	if tb.Nodes(brawny)[0].Spec.CPU.Cores != 6 {
		t.Fatal("brawny node has wrong spec")
	}
}

// TestAnyCatalogPlatformDeploys: the testbed builder must handle every
// catalog entry — leaf-switched or flat — with DB/client infra present.
func TestAnyCatalogPlatformDeploys(t *testing.T) {
	for _, p := range hw.Platforms() {
		tb := New(Config{
			Groups:  []GroupConfig{{Platform: p, Nodes: 9}},
			DBNodes: 1, Clients: 2,
		})
		nodes := tb.Nodes(p)
		if len(nodes) != 9 {
			t.Fatalf("%s: %d nodes", p.Name, len(nodes))
		}
		// Mutually routable and reachable from infra.
		tb.Fab.Route(nodes[0].ID, nodes[8].ID)
		tb.Fab.Route("client0", nodes[0].ID)
		tb.Fab.Route(nodes[8].ID, tb.DB[0].ID)
		if g := tb.Group(p); g.Meter == nil {
			t.Fatalf("%s: no meter", p.Name)
		}
	}
}

// TestInfraSwitchNotDuplicated: deploying a group on the infra platform
// must reuse its root switch rather than panicking or double-adding.
func TestInfraSwitchNotDuplicated(t *testing.T) {
	_, brawny := pair()
	tb := New(Config{
		Groups:  []GroupConfig{{Platform: brawny, Nodes: 3}},
		DBNodes: 2, Clients: 2,
	})
	tb.Fab.Route(tb.Nodes(brawny)[0].ID, tb.DB[1].ID)
}
