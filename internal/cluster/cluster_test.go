package cluster

import (
	"math"
	"testing"

	"edisim/internal/hw"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTestbedSizes(t *testing.T) {
	tb := New(DefaultConfig())
	if len(tb.Edison) != 35 || len(tb.Dell) != 3 || len(tb.DB) != 2 || len(tb.Clients) != 8 {
		t.Fatalf("sizes: %d edison, %d dell, %d db, %d clients",
			len(tb.Edison), len(tb.Dell), len(tb.DB), len(tb.Clients))
	}
}

func TestMeasuredRTTsMatchSection44(t *testing.T) {
	tb := New(DefaultConfig())
	// Edison <-> Edison across boxes: paper measures ≈1.3 ms.
	ee := tb.Fab.RTT(tb.Edison[0].ID, tb.Edison[34].ID)
	if ee < 1.0e-3 || ee > 1.5e-3 {
		t.Errorf("E-E RTT %.2fms, want ≈1.3ms", ee*1e3)
	}
	// Dell <-> Dell: ≈0.24 ms.
	dd := tb.Fab.RTT(tb.Dell[0].ID, tb.Dell[1].ID)
	if dd < 0.20e-3 || dd > 0.30e-3 {
		t.Errorf("D-D RTT %.2fms, want ≈0.24ms", dd*1e3)
	}
	// Dell <-> Edison: ≈0.8 ms.
	de := tb.Fab.RTT(tb.Dell[0].ID, tb.Edison[0].ID)
	if de < 0.6e-3 || de > 1.0e-3 {
		t.Errorf("D-E RTT %.2fms, want ≈0.8ms", de*1e3)
	}
}

func TestClusterIdlePowerMatchesTable3(t *testing.T) {
	tb := New(DefaultConfig())
	if got := float64(tb.EdisonMeter.Power()); !almost(got, 49.0, 0.01) {
		t.Errorf("Edison cluster idle power %.2fW, want 49.0W", got)
	}
	if got := float64(tb.DellMeter.Power()); !almost(got, 156, 0.01) {
		t.Errorf("Dell cluster idle power %.2fW, want 156W", got)
	}
}

func TestTable3Rows(t *testing.T) {
	rows := Table3()
	want := []struct{ idle, busy float64 }{
		{0.36, 0.75}, {1.40, 1.68}, {49.0, 58.8}, {52, 109}, {156, 327},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, w := range want {
		if !almost(float64(rows[i].Idle), w.idle, 1e-6) || !almost(float64(rows[i].Busy), w.busy, 1e-6) {
			t.Errorf("row %q: %.2f/%.2f, want %.2f/%.2f",
				rows[i].Label, float64(rows[i].Idle), float64(rows[i].Busy), w.idle, w.busy)
		}
	}
}

func TestTable6Configuration(t *testing.T) {
	rows := Table6()
	if rows[0].EdisonWeb != 24 || rows[0].EdisonCache != 11 || rows[0].DellWeb != 2 || rows[0].DellCache != 1 {
		t.Fatalf("full-scale row wrong: %+v", rows[0])
	}
	// Web servers ≈ 2× cache servers throughout (paper's provisioning rule).
	for _, r := range rows {
		if r.EdisonCache > 0 && (r.EdisonWeb < r.EdisonCache || r.EdisonWeb > 3*r.EdisonCache) {
			t.Errorf("scale %s: web/cache ratio off: %d/%d", r.Name, r.EdisonWeb, r.EdisonCache)
		}
	}
}

func TestEdisonUplinkIsBottleneck(t *testing.T) {
	// The client room reaches the Edison room through a single 1 Gbps path;
	// each individual link to a Dell host is also ≈1 Gbps. Verify topology
	// wiring by comparing hop counts.
	tb := New(DefaultConfig())
	pEd := tb.Fab.Route("client0", tb.Edison[0].ID)
	pDl := tb.Fab.Route("client0", tb.Dell[0].ID)
	if len(pEd) <= len(pDl) {
		t.Fatalf("Edison path (%d hops) should be longer than Dell path (%d hops)",
			len(pEd), len(pDl))
	}
}

func TestScaledDownCluster(t *testing.T) {
	tb := New(Config{EdisonNodes: 8, DellNodes: 1, DBNodes: 2, Clients: 4})
	if len(tb.Edison) != 8 || len(tb.Dell) != 1 {
		t.Fatal("scaled config not honored")
	}
	// All nodes still mutually routable.
	tb.Fab.Route(tb.Edison[7].ID, tb.DB[1].ID)
	tb.Fab.Route(tb.Edison[0].ID, tb.Edison[7].ID)
}

func TestNodesUseCorrectSpecs(t *testing.T) {
	tb := New(DefaultConfig())
	if tb.Edison[0].Spec.Name != hw.EdisonSpec().Name {
		t.Fatal("Edison node has wrong spec")
	}
	if tb.Dell[0].Spec.CPU.Cores != 6 {
		t.Fatal("Dell node has wrong spec")
	}
}
