package cluster

import (
	"fmt"
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// scaleShape picks leaf-spine dimensions for a target fleet size.
func scaleShape(nodes int) LeafSpineConfig {
	switch nodes {
	case 100:
		return LeafSpineConfig{Spines: 2, Leaves: 5, HostsPerLeaf: 20}
	case 1024:
		return LeafSpineConfig{Spines: 4, Leaves: 32, HostsPerLeaf: 32}
	case 4096:
		return LeafSpineConfig{Spines: 4, Leaves: 64, HostsPerLeaf: 64}
	default:
		panic(fmt.Sprintf("no shape for %d nodes", nodes))
	}
}

// The background load in both benchmarks is one long-lived flow per host —
// an intra-leaf ring (host i → host i+1 on the same leaf), so the live flow
// set equals the fleet size and components stay leaf-local.

// BenchmarkScaleFlowChurn measures the cost of one flow arrival + departure
// against a datacenter-scale live flow set (one background flow per host):
// the per-event flow path of the lazy default must be independent of the
// fleet size, while the eager reference pays O(flows) per event. The
// lazy/eager ratio at nodes=1024 is the PR 7 ≥10× acceptance gate; the
// lazy ns/op across 100 → 1024 → 4096 pins sub-linear event cost.
// nodes=4096 runs lazy-only: the eager quadratic blowup is the point, not a
// case worth minutes of benchtime.
func BenchmarkScaleFlowChurn(b *testing.B) {
	for _, nodes := range []int{100, 1024, 4096} {
		for _, mode := range []struct {
			name  string
			eager bool
		}{{"lazy", false}, {"eager", true}} {
			if mode.eager && nodes > 1024 {
				continue
			}
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, mode.name), func(b *testing.B) {
				cfg := scaleShape(nodes)
				eng := sim.NewEngine()
				f, hosts := LeafSpine(eng, cfg)
				f.SetEagerReference(mode.eager)
				for l := 0; l < cfg.Leaves; l++ {
					base := l * cfg.HostsPerLeaf
					for h := 0; h < cfg.HostsPerLeaf; h++ {
						f.StartFlow(hosts[base+h], hosts[base+(h+1)%cfg.HostsPerLeaf], units.Bytes(1e18), nil)
					}
				}
				eng.RunUntil(eng.Now() + 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Churn inside leaf 0's component, then across the spine.
					f.StartFlow(hosts[0], hosts[1], units.Bytes(1e6), nil)
					eng.RunUntil(eng.Now() + 1)
				}
			})
		}
	}
}

// BenchmarkScaleCrossLeafChurn is the multi-hop variant: the churn flow
// crosses the spine, touching two leaf components plus the spine links.
func BenchmarkScaleCrossLeafChurn(b *testing.B) {
	for _, nodes := range []int{100, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			cfg := scaleShape(nodes)
			eng := sim.NewEngine()
			f, hosts := LeafSpine(eng, cfg)
			for l := 0; l < cfg.Leaves; l++ {
				base := l * cfg.HostsPerLeaf
				for h := 0; h < cfg.HostsPerLeaf; h++ {
					f.StartFlow(hosts[base+h], hosts[base+(h+1)%cfg.HostsPerLeaf], units.Bytes(1e18), nil)
				}
			}
			eng.RunUntil(eng.Now() + 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.StartFlow(hosts[0], hosts[len(hosts)-1], units.Bytes(1e6), nil)
				eng.RunUntil(eng.Now() + 1)
			}
		})
	}
}
