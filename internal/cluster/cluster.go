// Package cluster assembles testbeds from the hw platform catalog. The
// default configuration is the paper's setup (§3, Figure 1): a 35-node
// Edison cluster packed as five boxes of seven nodes each with a per-box
// switch, a Dell PowerEdge R620 cluster under a top-of-rack switch, two Dell
// database servers, and the client machines — all joined by a core switch.
// Link capacities and propagation delays come from each platform's
// NetworkProfile and reproduce the measured §4.4 numbers for the baseline
// pair: 1.3 ms RTT micro–micro, 0.8 ms brawny–micro, 0.24 ms brawny–brawny,
// and the 1 Gbps aggregate path between the clients' room and the micro
// room that motivates the paper's "20% image" fairness argument.
//
// Any catalog platform can be deployed: a testbed is an ordered list of
// per-platform node groups plus the shared infrastructure tier (database
// servers and load generators) that always runs on the infra platform.
package cluster

import (
	"fmt"

	"edisim/internal/hw"
	"edisim/internal/netsim"
	"edisim/internal/power"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// Group is one platform's node set inside a testbed, with its own power
// instrument (the paper: a Mastech DC supply / an SNMP rack PDU).
type Group struct {
	Platform *hw.Platform
	Nodes    []*hw.Node
	Meter    *power.Meter
}

// Testbed is the full experimental setup on one engine and one fabric.
type Testbed struct {
	Eng *sim.Engine
	Fab *netsim.Fabric

	Groups  []*Group   // per-platform node groups, in Config order
	DB      []*hw.Node // database servers (shared by all groups)
	Clients []string   // client machine vertex names (load generators)

	// Infra is the platform the DB and client tier attaches to (the
	// paper's machine room: always the brawny baseline).
	Infra *hw.Platform
}

// Group returns the node group for a platform, or nil if the testbed has
// none.
func (tb *Testbed) Group(p *hw.Platform) *Group {
	for _, g := range tb.Groups {
		if g.Platform == p {
			return g
		}
	}
	return nil
}

// Nodes returns the platform's nodes (nil when absent).
func (tb *Testbed) Nodes(p *hw.Platform) []*hw.Node {
	if g := tb.Group(p); g != nil {
		return g.Nodes
	}
	return nil
}

// MaxGroupNodes caps one platform group's node count — a sanity bound
// against typo-sized configs. Datacenter-scale sweeps (leaf-spine fleets up
// to ~10k nodes, the ROADMAP north-star) are in range; only clearly absurd
// sizes are rejected. Public-API validation (edisim workload expansion)
// checks against this same constant so oversized scenarios fail with an
// error before reaching the builder's panic.
const MaxGroupNodes = 10000

// GroupConfig sizes one platform's node group.
type GroupConfig struct {
	Platform *hw.Platform
	Nodes    int
}

// Config sizes the testbed.
type Config struct {
	Groups  []GroupConfig
	DBNodes int // database servers, paper uses 2
	Clients int // load generator machines, paper uses 8 httperf + 30 logger
	// Infra hosts the DB/client tier; nil selects the baseline brawny
	// platform (the paper's Dell machine room).
	Infra *hw.Platform
	// Interrupt, when non-nil, is polled by the testbed's engine every few
	// thousand events; returning true stops the run early (sim.Engine's
	// cooperative cancellation — edisim.Run wires the caller's context here
	// so a long faulty simulation honors cancellation mid-run).
	Interrupt func() bool
	// Energy selects the power model armed on every node the builder
	// creates (group, DB); the zero value keeps each platform's calibrated
	// linear model, byte-identical to the seed behavior.
	Energy hw.PowerModelKind
}

// PairConfig sizes a two-group testbed over the baseline pair — the shape
// every paper experiment uses.
func PairConfig(microNodes, brawnyNodes, dbNodes, clients int) Config {
	micro, brawny := hw.BaselinePair()
	return Config{
		Groups:  []GroupConfig{{Platform: micro, Nodes: microNodes}, {Platform: brawny, Nodes: brawnyNodes}},
		DBNodes: dbNodes,
		Clients: clients,
	}
}

// DefaultConfig is the paper's full setup.
func DefaultConfig() Config { return PairConfig(35, 3, 2, 8) }

// New builds a testbed on a fresh engine.
func New(cfg Config) *Testbed {
	eng := sim.NewEngine()
	return NewOn(eng, cfg)
}

// NewOn builds a testbed on an existing engine. Group subtrees are built in
// Config order; the infra root switch is created on demand when no group
// already built it, then the DB and client tiers attach there.
func NewOn(eng *sim.Engine, cfg Config) *Testbed {
	infra := cfg.Infra
	if infra == nil {
		_, infra = hw.BaselinePair()
	}
	if cfg.Interrupt != nil {
		eng.SetInterrupt(cfg.Interrupt)
	}
	tb := &Testbed{Eng: eng, Fab: netsim.NewFabric(eng), Infra: infra}
	f := tb.Fab

	f.AddVertex("core")

	buildRoot := func(p *hw.Platform) {
		net := p.Net
		f.AddVertex(net.SwitchName)
		f.Connect(net.SwitchName, "core", net.CoreUplink, net.CoreDelay)
	}

	built := map[string]bool{}
	for _, gc := range cfg.Groups {
		p := gc.Platform
		if p == nil {
			panic("cluster: group without a platform")
		}
		if gc.Nodes < 0 || gc.Nodes > MaxGroupNodes {
			panic(fmt.Sprintf("cluster: invalid %s node count %d", p.Name, gc.Nodes))
		}
		if gc.Nodes == 0 {
			continue
		}
		if built[p.Net.SwitchName] {
			panic(fmt.Sprintf("cluster: duplicate group for %s", p.Name))
		}
		buildRoot(p)
		built[p.Net.SwitchName] = true

		net := p.Net
		if net.LeafFanout > 0 {
			nLeaves := (gc.Nodes + net.LeafFanout - 1) / net.LeafFanout
			for b := 0; b < nLeaves; b++ {
				sw := fmt.Sprintf("%s%d", net.LeafPrefix, b)
				f.AddVertex(sw)
				f.Connect(sw, net.SwitchName, net.LeafUplink, net.LeafUplinkDelay)
			}
		}
		g := &Group{Platform: p}
		for i := 0; i < gc.Nodes; i++ {
			name := fmt.Sprintf(net.HostFormat, i)
			f.AddVertex(name)
			attach := net.SwitchName
			if net.LeafFanout > 0 {
				attach = fmt.Sprintf("%s%d", net.LeafPrefix, i/net.LeafFanout)
			}
			f.Connect(name, attach, p.Spec.NIC.TCPGoodput, net.AccessDelay)
			n := hw.NewNode(eng, p.Spec, name)
			if cfg.Energy != hw.PowerLinear {
				n.SetPowerModel(p.PowerModelFor(cfg.Energy))
			}
			g.Nodes = append(g.Nodes, n)
		}
		tb.Groups = append(tb.Groups, g)
	}

	// --- Infrastructure tier: DB servers and clients under the infra
	// platform's root switch (the paper's Dell machine room, which exists
	// even in micro-only deployments).
	if !built[infra.Net.SwitchName] {
		buildRoot(infra)
	}
	for i := 0; i < cfg.DBNodes; i++ {
		name := fmt.Sprintf("db%d", i)
		f.AddVertex(name)
		f.Connect(name, infra.Net.SwitchName, infra.Spec.NIC.TCPGoodput, infra.Net.AccessDelay)
		n := hw.NewNode(eng, infra.Spec, name)
		if cfg.Energy != hw.PowerLinear {
			n.SetPowerModel(infra.PowerModelFor(cfg.Energy))
		}
		tb.DB = append(tb.DB, n)
	}
	// Clients: each with its own 1 Gbps-class access link.
	for i := 0; i < cfg.Clients; i++ {
		name := fmt.Sprintf("client%d", i)
		f.AddVertex(name)
		f.Connect(name, infra.Net.SwitchName, units.Mbps(942), infra.Net.AccessDelay)
		tb.Clients = append(tb.Clients, name)
	}

	for _, g := range tb.Groups {
		g.Meter = power.NewMeter(g.Platform.MeterName, g.Nodes)
	}
	return tb
}

// PowerState is one row of Table 3.
type PowerState struct {
	Label      string
	Idle, Busy units.Watts
}

// Table3 reproduces the paper's measured power states from the baseline
// pair's specs.
func Table3() []PowerState {
	micro, brawny := hw.BaselinePair()
	e := micro.Spec.Power
	d := brawny.Spec.Power
	bare := hw.PowerSpec{Idle: e.Idle, Busy: e.Busy}
	rows := []PowerState{
		{fmt.Sprintf("1 %s without Ethernet adaptor", micro.Label), bare.IdleDraw(), bare.BusyDraw()},
		{fmt.Sprintf("1 %s with Ethernet adaptor", micro.Label), e.IdleDraw(), e.BusyDraw()},
		{fmt.Sprintf("%s cluster of 35 nodes", micro.Label), 35 * e.IdleDraw(), 35 * e.BusyDraw()},
		{fmt.Sprintf("1 %s server", brawny.Label), d.IdleDraw(), d.BusyDraw()},
		{fmt.Sprintf("%s cluster of 3 nodes", brawny.Label), 3 * d.IdleDraw(), 3 * d.BusyDraw()},
	}
	return rows
}

// WebTier is one platform's web/cache contribution at a scale factor.
type WebTier struct {
	Platform   *hw.Platform
	Web, Cache int
}

// WebScale is a row of Table 6: how many web/cache servers each cluster
// contributes at each scale factor. Tiers are ordered micro then brawny.
type WebScale struct {
	Name  string
	Tiers []WebTier
}

// Tier returns the row's tier for a platform (zero sizes when absent).
func (s WebScale) Tier(p *hw.Platform) WebTier {
	for _, t := range s.Tiers {
		if t.Platform == p {
			return t
		}
	}
	return WebTier{Platform: p}
}

// Table6 returns the paper's cluster scale configurations over the
// baseline pair.
func Table6() []WebScale {
	return Table6For(hw.BaselinePair())
}

// Table6For returns the paper's scale ladder over an arbitrary compared
// pair (the tier sizes are the paper's; the platforms are the caller's).
func Table6For(micro, brawny *hw.Platform) []WebScale {
	return []WebScale{
		{Name: "full", Tiers: []WebTier{{micro, 24, 11}, {brawny, 2, 1}}},
		{Name: "1/2", Tiers: []WebTier{{micro, 12, 6}, {brawny, 1, 1}}},
		{Name: "1/4", Tiers: []WebTier{{micro, 6, 3}}},
		{Name: "1/8", Tiers: []WebTier{{micro, 3, 2}}},
	}
}
