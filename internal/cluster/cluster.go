// Package cluster assembles the paper's testbed (§3, Figure 1): a 35-node
// Edison cluster packed as five boxes of seven nodes each with a per-box
// switch, a Dell PowerEdge R620 cluster under a top-of-rack switch, two Dell
// database servers, and the client machines — all joined by a core switch.
// Link capacities and propagation delays reproduce the measured §4.4
// numbers: 1.3 ms RTT Edison–Edison, 0.8 ms Dell–Edison, 0.24 ms Dell–Dell,
// and the 1 Gbps aggregate path between the clients' room and the Edison
// room that motivates the paper's "20% image" fairness argument.
package cluster

import (
	"fmt"

	"edisim/internal/hw"
	"edisim/internal/netsim"
	"edisim/internal/power"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// Topology constants (one-way propagation delays in seconds), chosen so the
// fabric reproduces the paper's measured RTTs.
const (
	edisonAccessDelay = 0.30e-3 // Edison host <-> box switch
	boxUplinkDelay    = 0.05e-3 // box switch <-> Edison root switch
	dellAccessDelay   = 0.06e-3 // Dell host <-> ToR
	coreDelay         = 0       // room interconnects
)

// Testbed is the full experimental setup on one engine and one fabric.
type Testbed struct {
	Eng *sim.Engine
	Fab *netsim.Fabric

	Edison  []*hw.Node // up to 35 micro servers
	Dell    []*hw.Node // up to 3 brawny servers
	DB      []*hw.Node // 2 Dell R620 database servers (shared by both clusters)
	Clients []string   // client machine vertex names (load generators)

	EdisonMeter *power.Meter // the Mastech DC supply
	DellMeter   *power.Meter // the rack PDU
}

// Config sizes the testbed.
type Config struct {
	EdisonNodes int // 0..35
	DellNodes   int // 0..3
	DBNodes     int // database servers, paper uses 2
	Clients     int // load generator machines, paper uses 8 httperf + 30 logger
}

// DefaultConfig is the paper's full setup.
func DefaultConfig() Config {
	return Config{EdisonNodes: 35, DellNodes: 3, DBNodes: 2, Clients: 8}
}

// New builds a testbed on a fresh engine.
func New(cfg Config) *Testbed {
	eng := sim.NewEngine()
	return NewOn(eng, cfg)
}

// NewOn builds a testbed on an existing engine.
func NewOn(eng *sim.Engine, cfg Config) *Testbed {
	if cfg.EdisonNodes < 0 || cfg.EdisonNodes > 200 {
		panic(fmt.Sprintf("cluster: invalid Edison node count %d", cfg.EdisonNodes))
	}
	tb := &Testbed{Eng: eng, Fab: netsim.NewFabric(eng)}
	f := tb.Fab

	f.AddVertex("core")

	// --- Edison room: boxes of 7 under per-box switches, root switch,
	// 1 Gbps uplink to the core (the inter-room bottleneck).
	if cfg.EdisonNodes > 0 {
		f.AddVertex("edison-root")
		f.Connect("edison-root", "core", units.Gbps(1), coreDelay)
		spec := hw.EdisonSpec()
		nBoxes := (cfg.EdisonNodes + 6) / 7
		for b := 0; b < nBoxes; b++ {
			sw := fmt.Sprintf("edison-box%d", b)
			f.AddVertex(sw)
			f.Connect(sw, "edison-root", units.Gbps(1), boxUplinkDelay)
		}
		for i := 0; i < cfg.EdisonNodes; i++ {
			name := fmt.Sprintf("edison%02d", i)
			f.AddVertex(name)
			f.Connect(name, fmt.Sprintf("edison-box%d", i/7), spec.NIC.TCPGoodput, edisonAccessDelay)
			tb.Edison = append(tb.Edison, hw.NewNode(eng, spec, name))
		}
	}

	// --- Dell room: ToR switch directly on the core (same machine room as
	// the clients; aggregate bandwidth limited only by the hosts' own NICs).
	f.AddVertex("dell-tor")
	f.Connect("dell-tor", "core", units.Gbps(10), coreDelay)
	dellSpec := hw.DellR620Spec()
	for i := 0; i < cfg.DellNodes; i++ {
		name := fmt.Sprintf("dell%d", i)
		f.AddVertex(name)
		f.Connect(name, "dell-tor", dellSpec.NIC.TCPGoodput, dellAccessDelay)
		tb.Dell = append(tb.Dell, hw.NewNode(eng, dellSpec, name))
	}
	for i := 0; i < cfg.DBNodes; i++ {
		name := fmt.Sprintf("db%d", i)
		f.AddVertex(name)
		f.Connect(name, "dell-tor", dellSpec.NIC.TCPGoodput, dellAccessDelay)
		tb.DB = append(tb.DB, hw.NewNode(eng, dellSpec, name))
	}

	// --- Clients: in the Dell room, each with its own 1 Gbps access link.
	for i := 0; i < cfg.Clients; i++ {
		name := fmt.Sprintf("client%d", i)
		f.AddVertex(name)
		f.Connect(name, "dell-tor", units.Mbps(942), dellAccessDelay)
		tb.Clients = append(tb.Clients, name)
	}

	tb.EdisonMeter = power.NewMeter("mastech-supply", tb.Edison)
	tb.DellMeter = power.NewMeter("rack-pdu", tb.Dell)
	return tb
}

// PowerState is one row of Table 3.
type PowerState struct {
	Label      string
	Idle, Busy units.Watts
}

// Table3 reproduces the paper's measured power states from the specs.
func Table3() []PowerState {
	e := hw.EdisonSpec().Power
	d := hw.DellR620Spec().Power
	bare := hw.PowerSpec{Idle: e.Idle, Busy: e.Busy}
	rows := []PowerState{
		{"1 Edison without Ethernet adaptor", bare.IdleDraw(), bare.BusyDraw()},
		{"1 Edison with Ethernet adaptor", e.IdleDraw(), e.BusyDraw()},
		{"Edison cluster of 35 nodes", 35 * e.IdleDraw(), 35 * e.BusyDraw()},
		{"1 Dell server", d.IdleDraw(), d.BusyDraw()},
		{"Dell cluster of 3 nodes", 3 * d.IdleDraw(), 3 * d.BusyDraw()},
	}
	return rows
}

// WebScale is a row of Table 6: how many web/cache servers each cluster
// contributes at each scale factor.
type WebScale struct {
	Name                   string
	EdisonWeb, EdisonCache int
	DellWeb, DellCache     int
}

// Table6 returns the paper's cluster scale configurations.
func Table6() []WebScale {
	return []WebScale{
		{Name: "full", EdisonWeb: 24, EdisonCache: 11, DellWeb: 2, DellCache: 1},
		{Name: "1/2", EdisonWeb: 12, EdisonCache: 6, DellWeb: 1, DellCache: 1},
		{Name: "1/4", EdisonWeb: 6, EdisonCache: 3},
		{Name: "1/8", EdisonWeb: 3, EdisonCache: 2},
	}
}
