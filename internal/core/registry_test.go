package core

import (
	"runtime"
	"testing"

	"edisim/internal/faults"
	"edisim/internal/hw"
)

// figureOnly lists experiments that render figures the paper publishes
// without headline numbers to compare against (Figures 5/8 show mix
// sweeps; every other artifact carries at least one paper-vs-measured
// comparison).
var figureOnly = map[string]bool{"fig5_fig8": true}

// TestEveryExperimentQuickSmoke runs EVERY registered experiment —
// including opt-in ones — under Quick fidelity and asserts it produces a
// usable Outcome. This is the registry's safety net: a new experiment (or
// a new catalog platform wired into platform_matrix) cannot merge if it
// panics, returns nil, or yields nothing to compare.
func TestEveryExperimentQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep in -short mode")
	}
	cfg := Config{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0)}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			o := e.Run(cfg)
			if o == nil {
				t.Fatalf("%s returned nil outcome", e.ID)
			}
			if len(o.Tables)+len(o.Figures)+len(o.Comparisons) == 0 {
				t.Fatalf("%s produced no artifacts", e.ID)
			}
			if !figureOnly[e.ID] && len(o.Comparisons) == 0 {
				t.Fatalf("%s recorded no comparisons", e.ID)
			}
			for _, c := range o.Comparisons {
				if c.Artifact == "" || c.Metric == "" {
					t.Fatalf("%s: blank comparison %+v", e.ID, c)
				}
			}
		})
	}
}

// TestWebSweepHonorsPairOverride: with Config.Micro overridden, the
// scaled web sweeps must deploy the override platform (labels and peak
// comparisons follow it), not the baked-in baseline pair.
func TestWebSweepHonorsPairOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("web sweep in -short mode")
	}
	alt, ok := hw.LookupPlatform("pi3")
	if !ok {
		t.Fatal("pi3 not in catalog")
	}
	e, _ := Lookup("fig4_fig7")
	o := e.Run(Config{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0), Micro: alt})
	foundPeak := false
	for _, c := range o.Comparisons {
		if c.Metric == "peak "+alt.Label+" req/s" {
			foundPeak = true
			if c.Measured <= 0 {
				t.Fatalf("override peak not measured: %+v", c)
			}
		}
	}
	if !foundPeak {
		t.Fatalf("no peak comparison for override platform; comparisons: %+v", o.Comparisons)
	}
	for _, f := range o.Figures {
		for _, s := range f.Series {
			if s.Label == "24 "+alt.Label {
				return
			}
		}
	}
	t.Fatal("no figure series labeled for the override platform")
}

// TestPlatformMatrixCoversConfiguredPlatforms: the matrix experiment must
// honor Config.Matrix (cmd/paper's -platforms) and emit one web and one
// terasort comparison per platform.
func TestPlatformMatrixCoversConfiguredPlatforms(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	e, ok := Lookup("platform_matrix")
	if !ok {
		t.Fatal("platform_matrix not registered")
	}
	if !e.OptIn {
		t.Fatal("platform_matrix must be opt-in to keep default paper output stable")
	}
	micro, brawny := Config{}.Pair()
	cfg := Config{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0),
		Matrix: []*hw.Platform{micro, brawny}}
	o := e.Run(cfg)
	if got := len(o.Comparisons); got != 4 {
		t.Fatalf("matrix over 2 platforms produced %d comparisons, want 4", got)
	}
	if len(o.Tables) != 2 {
		t.Fatalf("matrix produced %d tables, want 2", len(o.Tables))
	}
}

// TestFaultTolerancePlanOverride smoke-runs the fault_tolerance experiment
// with a caller-supplied (non-empty) quick plan, the cfg.Faults path the
// default registry sweep never exercises: events against both rosters must
// replace the built-in drills without panicking on role mismatches.
func TestFaultTolerancePlanOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection sweep in -short mode")
	}
	r620, ok := hw.LookupPlatform("r620")
	if !ok {
		t.Fatal("r620 not in catalog")
	}
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.NodeCrash, At: 3, Duration: 2, Role: "web"},
		{Kind: faults.Straggler, At: 1, Duration: 30, Factor: 0.4, Role: "slave", Index: 1},
		{Kind: faults.LinkDegrade, At: 2, Duration: 20, Factor: 0.5, Role: "slave"},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatalf("quick plan invalid: %v", err)
	}
	e, ok := Lookup("fault_tolerance")
	if !ok {
		t.Fatal("fault_tolerance not registered")
	}
	cfg := Config{Seed: 1, Quick: true, Workers: runtime.GOMAXPROCS(0),
		Matrix: []*hw.Platform{r620}, Faults: plan}
	o := e.Run(cfg)
	if o == nil || len(o.Tables) != 2 {
		t.Fatalf("fault_tolerance with a custom plan returned %+v", o)
	}
	if len(o.Comparisons) == 0 {
		t.Fatal("no availability comparisons recorded under the custom plan")
	}
}
