package core

import (
	"fmt"
	"math"

	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/jobs"
	"edisim/internal/mapred"
	"edisim/internal/report"
	"edisim/internal/tco"
	"edisim/internal/units"
	"edisim/internal/web"
)

func init() {
	register(Experiment{
		ID:      "equal_budget",
		Title:   "Equal-budget fleet comparison (fleets sized to the brawny baseline's 3-year TCO)",
		Section: "beyond-paper",
		OptIn:   true,
		Run:     runEqualBudget,
	})
}

// runEqualBudget is the registry wrapper: catalog data cannot produce an
// invalid spec, so errors here are programming bugs.
func runEqualBudget(cfg Config) *Outcome {
	o, err := EqualBudget(cfg, EqualBudgetSpec{})
	if err != nil {
		panic(fmt.Sprintf("core: equal_budget: %v", err))
	}
	return o
}

// EqualBudgetSpec parameterizes the equal-budget comparison. The zero value
// reproduces the paper's framing: every platform sized to what the brawny
// baseline fleet costs over 3 years.
type EqualBudgetSpec struct {
	// SweepName namespaces per-point seeds (default "equal_budget"). Two
	// comparisons in one scenario need distinct names.
	SweepName string
	// Baseline sets the budget: its catalog web and Hadoop fleets priced
	// with the 3-year TCO model. Nil selects the configured brawny
	// platform (the paper's Dell R620).
	Baseline *hw.Platform
	// Platforms is the compared set; nil selects cfg.MatrixPlatforms().
	Platforms []*hw.Platform
	// Job is the Hadoop workload sized fleets run (default "terasort").
	Job string
	// Budget overrides both derived budgets with an explicit 3-year spend
	// in USD; 0 derives them from the baseline fleets.
	Budget float64
}

// Equal-budget utilization points follow Table 10: web fleets at the
// paper's high-utilization point; big-data micro fleets pinned at 100%
// (their jobs run 1.35–4× longer), brawny fleets at 74%.
const equalBudgetWebUtil = 0.75

func hadoopUtil(p *hw.Platform) float64 {
	if p.Micro {
		return 1.0
	}
	return 0.74
}

// fleetSizing is one platform's budget-normalized deployment.
type fleetSizing struct {
	p          *hw.Platform
	web, cache int     // web-tier split (0,0 when the budget is too small)
	slaves     int     // Hadoop slave count (0 when too small)
	webCost    float64 // 3-year TCO of the sized web+cache fleet
	hadoopCost float64 // 3-year TCO of the sized slave fleet
}

// sizeWebTier splits a node total between web and cache in the platform's
// catalog fleet ratio (the shape its reference deployment uses), keeping
// at least one node of each role. Totals below two nodes cannot field both
// tiers and return (0, 0).
func sizeWebTier(p *hw.Platform, total int) (nWeb, nCache int) {
	if total < 2 {
		return 0, 0
	}
	w, c := p.Fleet.Web, p.Fleet.Cache
	if w <= 0 || c <= 0 {
		w, c = 2, 1 // sensible default ratio for fleet-less custom platforms
	}
	nWeb = int(math.Round(float64(total) * float64(w) / float64(w+c)))
	if nWeb < 1 {
		nWeb = 1
	}
	if nWeb > total-1 {
		nWeb = total - 1
	}
	return nWeb, total - nWeb
}

// ladderScales labels the Table-6-style rungs.
var ladderScales = []string{"full", "1/2", "1/4", "1/8"}

// ladderFor builds a platform's scale ladder by successively halving the
// sized fleet (ceil, as the paper's Table 6 does: 24/11 → 12/6 → 6/3 →
// 3/2), stopping once both tiers hit one node. Quick runs keep two rungs.
func ladderFor(cfg Config, nWeb, nCache int) [][2]int {
	rungs := [][2]int{{nWeb, nCache}}
	maxRungs := len(ladderScales)
	if cfg.Quick {
		maxRungs = 2
	}
	for len(rungs) < maxRungs {
		prev := rungs[len(rungs)-1]
		if prev[0] == 1 && prev[1] == 1 {
			break
		}
		rungs = append(rungs, [2]int{(prev[0] + 1) / 2, (prev[1] + 1) / 2})
	}
	return rungs
}

// EqualBudget runs the equal-budget fleet comparison: it prices the
// baseline's catalog web and Hadoop fleets with the 3-year TCO model, sizes
// every compared platform's fleets to those budgets (tco.SizeForBudget),
// then measures what each equal-spend fleet actually delivers — peak web
// throughput across a Table-6-style scale ladder and one Hadoop job —
// reporting throughput-per-watt and throughput-per-dollar matrices. This is
// the paper's §6 economic question asked of the whole catalog: not "what
// does a fixed fleet cost" but "what does a fixed spend buy".
func EqualBudget(cfg Config, spec EqualBudgetSpec) (*Outcome, error) {
	name := spec.SweepName
	if name == "" {
		name = "equal_budget"
	}
	baseline := spec.Baseline
	if baseline == nil {
		_, baseline = cfg.Pair()
	}
	job := spec.Job
	if job == "" {
		job = "terasort"
	}
	known := false
	for _, n := range jobs.Names() {
		known = known || n == job
	}
	if !known {
		return nil, fmt.Errorf("unknown Hadoop job %q (valid: %v)", job, jobs.Names())
	}
	plats := spec.Platforms
	if len(plats) == 0 {
		plats = cfg.MatrixPlatforms()
	}

	// --- Budgets: what the baseline fleets cost over the model lifetime.
	webBudget, hadoopBudget := spec.Budget, spec.Budget
	if spec.Budget < 0 || math.IsNaN(spec.Budget) || math.IsInf(spec.Budget, 0) {
		return nil, fmt.Errorf("budget $%v must be positive and finite", spec.Budget)
	}
	if spec.Budget == 0 {
		f := baseline.Fleet
		if f.Web <= 0 || f.Cache <= 0 || f.Slaves <= 0 {
			return nil, fmt.Errorf("baseline %s has no catalog fleet to price (web %d, cache %d, slaves %d) — set an explicit Budget",
				baseline.Name, f.Web, f.Cache, f.Slaves)
		}
		wb, err := tco.Compute(tco.ForPlatform(baseline, f.Web+f.Cache, equalBudgetWebUtil))
		if err != nil {
			return nil, err
		}
		hb, err := tco.Compute(tco.ForPlatform(baseline, f.Slaves, hadoopUtil(baseline)))
		if err != nil {
			return nil, err
		}
		webBudget, hadoopBudget = wb.Total(), hb.Total()
	}

	// --- Sizing: pure math, no simulation yet.
	o := &Outcome{}
	sizings := make([]fleetSizing, len(plats))
	for i, p := range plats {
		total, err := tco.SizeForBudget(p, webBudget, equalBudgetWebUtil)
		if err != nil {
			return nil, err
		}
		if total > cluster.MaxGroupNodes {
			o.Notes = append(o.Notes, fmt.Sprintf("%s: web fleet capped at the %d-node group bound (budget buys %d)",
				p.Label, cluster.MaxGroupNodes, total))
			total = cluster.MaxGroupNodes
		}
		slaves, err := tco.SizeForBudget(p, hadoopBudget, hadoopUtil(p))
		if err != nil {
			return nil, err
		}
		if slaves > cluster.MaxGroupNodes-1 { // a self-hosted master shares the group
			o.Notes = append(o.Notes, fmt.Sprintf("%s: slave fleet capped at %d nodes (budget buys %d)",
				p.Label, cluster.MaxGroupNodes-1, slaves))
			slaves = cluster.MaxGroupNodes - 1
		}
		s := fleetSizing{p: p, slaves: slaves}
		s.web, s.cache = sizeWebTier(p, total)
		if s.web > 0 {
			s.webCost = tco.MustCompute(tco.ForPlatform(p, s.web+s.cache, equalBudgetWebUtil)).Total()
		}
		if s.slaves > 0 {
			s.hadoopCost = tco.MustCompute(tco.ForPlatform(p, s.slaves, hadoopUtil(p))).Total()
		}
		sizings[i] = s
		if s.web == 0 {
			o.Notes = append(o.Notes, fmt.Sprintf("%s: the $%.0f web budget cannot field a two-tier fleet", p.Label, webBudget))
		}
		if s.slaves == 0 {
			o.Notes = append(o.Notes, fmt.Sprintf("%s: the $%.0f big-data budget cannot buy one slave", p.Label, hadoopBudget))
		}
	}

	sizeTab := report.NewTable(
		fmt.Sprintf("Equal-budget sizing — web $%.0f / big data $%.0f (3-year TCO of %d+%d / %d %s)",
			webBudget, hadoopBudget, baseline.Fleet.Web, baseline.Fleet.Cache, baseline.Fleet.Slaves, baseline.Label),
		"platform", "$ per server (3y)", "web", "cache", "slaves", "web fleet $", "slave fleet $").
		WithUnits("", "$", "nodes", "nodes", "nodes", "$", "$")
	for _, s := range sizings {
		per := tco.MustCompute(tco.ForPlatform(s.p, 1, equalBudgetWebUtil)).Total()
		sizeTab.AddRow(s.p.Label, report.Num(per, "$"),
			report.Count(int64(s.web), "nodes"), report.Count(int64(s.cache), "nodes"),
			report.Count(int64(s.slaves), "nodes"),
			report.Num(s.webCost, "$"), report.Num(s.hadoopCost, "$"))
	}
	o.Tables = append(o.Tables, sizeTab)

	// --- Web serving: every (platform, ladder rung, concurrency) cell is
	// an independent simulation in one flat sweep; rung 0 (the full sized
	// fleet) feeds the matrix, all rungs feed the scale-ladder table.
	type webCell struct {
		sizing     int // index into sizings
		rung       int
		web, cache int
		conc       float64
	}
	concs := matrixConcurrencies(cfg)
	ladders := make([][][2]int, len(sizings))
	s := Sweep[webCell, web.Result]{Name: name + "/web"}
	for i, sz := range sizings {
		if sz.web == 0 {
			continue
		}
		ladders[i] = ladderFor(cfg, sz.web, sz.cache)
		for r, rung := range ladders[i] {
			for _, conc := range concs {
				s.Points = append(s.Points, webCell{sizing: i, rung: r, web: rung[0], cache: rung[1], conc: conc})
			}
		}
	}
	s.Point = func(_ int, c webCell, seed int64) web.Result {
		return runWebPoint(cfg, sizings[c.sizing].p, c.web, c.cache, web.RunConfig{
			Concurrency: c.conc,
			Duration:    webDuration(cfg),
		}, seed)
	}
	webResults := s.Run(cfg)

	// Regroup the flat results: peak throughput and its power per rung.
	type rungPeak struct{ peak, power float64 }
	peaks := make([][]rungPeak, len(sizings))
	for i := range sizings {
		peaks[i] = make([]rungPeak, len(ladders[i]))
	}
	for pi, c := range s.Points {
		r := webResults[pi]
		if r.Throughput > peaks[c.sizing][c.rung].peak {
			peaks[c.sizing][c.rung] = rungPeak{peak: r.Throughput, power: float64(r.MeanPower)}
		}
	}

	armed := cfg.CarbonArmed()
	webCols := []string{"platform", "web", "cache", "fleet 3y $", "peak req/s", "W at peak", "req/s per W", "req/s per TCO-k$"}
	webColUnits := []string{"", "nodes", "nodes", "$", "req/s", "W", "req/s/W", "req/s/k$"}
	if armed {
		webCols = append(webCols, "gCO2e/h at peak", "req per gCO2e", regionCostHeader(cfg))
		webColUnits = append(webColUnits, "g/h", "req/g", "$")
	}
	webTab := report.NewTable("Equal-budget web serving — what the same spend buys",
		webCols...).WithUnits(webColUnits...)
	for i, sz := range sizings {
		row := []any{sz.p.Label, report.Count(int64(sz.web), "nodes"), report.Count(int64(sz.cache), "nodes"),
			report.Num(sz.webCost, "$"), report.Num(0, "req/s"), report.Num(0, "W"),
			report.Num(0, "req/s/W"), report.Num(0, "req/s/k$")}
		if sz.web == 0 {
			if armed {
				row = append(row, report.Num(0, "g/h"), report.Num(0, "req/g"), report.Num(0, "$"))
			}
			webTab.AddRow(row...)
			continue
		}
		pk := peaks[i][0]
		perWatt, perK := 0.0, 0.0
		if pk.power > 0 {
			perWatt = pk.peak / pk.power
		}
		if sz.webCost > 0 {
			perK = pk.peak / (sz.webCost / 1000)
		}
		row[4] = report.Num(pk.peak, "req/s")
		row[5] = report.Num(pk.power, "W")
		row[6] = report.Num(perWatt, "req/s/W")
		row[7] = report.Num(perK, "req/s/k$")
		if armed {
			gph := gramsPerHourAt(cfg, pk.power)
			reqPerG := 0.0
			if gph > 0 {
				reqPerG = pk.peak * 3600 / gph
			}
			row = append(row, report.Num(gph, "g/h"), report.Num(reqPerG, "req/g"),
				report.Num(regionalFleetCost(cfg, sz.p, sz.web+sz.cache, equalBudgetWebUtil), "$"))
			o.AddComparison("equal budget / web", sz.p.Label+" req per gCO2e", 0, reqPerG)
		}
		webTab.AddRow(row...)
		o.AddComparison("equal budget / web", sz.p.Label+" peak req/s per TCO-k$", 0, perK)
	}
	o.Tables = append(o.Tables, webTab)

	ladderTab := report.NewTable("Equal-budget web scale ladders (Table 6 shape per platform)",
		"platform", "scale", "web", "cache", "peak req/s", "req/s per W").
		WithUnits("", "", "nodes", "nodes", "req/s", "req/s/W")
	for i, sz := range sizings {
		for r, rung := range ladders[i] {
			pk := peaks[i][r]
			perWatt := 0.0
			if pk.power > 0 {
				perWatt = pk.peak / pk.power
			}
			ladderTab.AddRow(sz.p.Label, ladderScales[r],
				report.Count(int64(rung[0]), "nodes"), report.Count(int64(rung[1]), "nodes"),
				report.Num(pk.peak, "req/s"), report.Num(perWatt, "req/s/W"))
		}
	}
	o.Tables = append(o.Tables, ladderTab)

	// --- Hadoop: one whole job per platform on its budget-sized slave
	// fleet.
	type hadoopCell struct{ sizing int }
	var hCells []hadoopCell
	for i, sz := range sizings {
		if sz.slaves > 0 {
			hCells = append(hCells, hadoopCell{sizing: i})
		}
	}
	hResults := RunSweep(cfg, name+"/hadoop", len(hCells),
		func(i int, seed int64) *mapred.JobResult {
			sz := sizings[hCells[i].sizing]
			r, err := jobs.RunEnergy(job, sz.p, sz.slaves, seed, cfg.Energy)
			if err != nil {
				panic(fmt.Sprintf("core: %s: %s on %s: %v", name, job, sz.p.Label, err))
			}
			return r
		})

	jobBytes := float64(jobs.TerasortBytes)
	switch job {
	case "wordcount", "wordcount2":
		jobBytes = float64(jobs.WordcountBytes)
	case "logcount", "logcount2":
		jobBytes = float64(jobs.LogcountBytes)
	case "pi":
		jobBytes = 0 // compute-bound: per-byte ratios are meaningless
	}
	hCols := []string{"platform", "slaves", "fleet 3y $", "time s", "energy J", "MB per J", "GB per TCO-$"}
	hColUnits := []string{"", "nodes", "$", "s", "J", "MB/J", "GB/$"}
	if armed {
		hCols = append(hCols, "gCO2e per run", "MB per gCO2e", regionCostHeader(cfg))
		hColUnits = append(hColUnits, "g", "MB/g", "$")
	}
	hTab := report.NewTable(fmt.Sprintf("Equal-budget %s — what the same spend buys", job),
		hCols...).WithUnits(hColUnits...)
	hi := 0
	for _, sz := range sizings {
		if sz.slaves == 0 {
			row := []any{sz.p.Label, report.Count(0, "nodes"), report.Num(0, "$"),
				report.Num(0, "s"), report.Num(0, "J"), report.Num(0, "MB/J"), report.Num(0, "GB/$")}
			if armed {
				row = append(row, report.Num(0, "g"), report.Num(0, "MB/g"), report.Num(0, "$"))
			}
			hTab.AddRow(row...)
			continue
		}
		r := hResults[hi]
		hi++
		mbPerJ, perDollar := 0.0, 0.0
		if r.Energy > 0 && jobBytes > 0 {
			mbPerJ = jobBytes / float64(units.MB) / float64(r.Energy)
		}
		if sz.hadoopCost > 0 && jobBytes > 0 {
			perDollar = jobBytes / float64(units.GB) / sz.hadoopCost
		}
		row := []any{sz.p.Label, report.Count(int64(sz.slaves), "nodes"), report.Num(sz.hadoopCost, "$"),
			report.Num(r.Duration, "s"), report.Num(float64(r.Energy), "J"),
			report.Num(mbPerJ, "MB/J"), report.Num(perDollar, "GB/$")}
		if armed {
			grams := gramsFromJoules(cfg, r.Energy)
			mbPerG := 0.0
			if grams > 0 && jobBytes > 0 {
				mbPerG = jobBytes / float64(units.MB) / grams
			}
			row = append(row, report.Num(grams, "g"), report.Num(mbPerG, "MB/g"),
				report.Num(regionalFleetCost(cfg, sz.p, sz.slaves, hadoopUtil(sz.p)), "$"))
			o.AddComparison("equal budget / "+job, sz.p.Label+" MB per gCO2e", 0, mbPerG)
		}
		hTab.AddRow(row...)
		o.AddComparison("equal budget / "+job, sz.p.Label+" MB per J", 0, mbPerJ)
	}
	o.Tables = append(o.Tables, hTab)

	o.Notes = append(o.Notes,
		fmt.Sprintf("fleets sized by tco.SizeForBudget to the %s baseline's 3-year TCO (web at %.0f%% utilization; big data pinned at 100%% on micro platforms, 74%% on brawny, as in Table 10)",
			baseline.Label, equalBudgetWebUtil*100))
	if armed {
		o.Notes = append(o.Notes, carbonLensNote(cfg))
	}
	return o, nil
}
