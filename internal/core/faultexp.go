package core

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/faults"
	"edisim/internal/jobs"
	"edisim/internal/mapred"
	"edisim/internal/report"
	"edisim/internal/web"
)

func init() {
	register(Experiment{
		ID:      "fault_tolerance",
		Title:   "Availability under failure: web & TeraSort with fault injection",
		Section: "beyond-paper",
		OptIn:   true,
		Run:     runFaultTolerance,
	})
}

// defaultWebFaultPlan is the built-in web drill: a third of the tier crashes
// in a rolling wave through the middle of the measurement window, each node
// rebooting after downtime seconds.
func defaultWebFaultPlan(nWeb int, duration float64) *faults.Plan {
	count := nWeb / 3
	if count == 0 {
		count = 1
	}
	start := 0.25 * duration
	gap := 0.5 * duration / float64(count)
	return faults.RollingCrashes("web", count, start, gap, gap*0.8)
}

// defaultBatchFaultPlan is the built-in Hadoop drill: one slave crashes
// mid-job and reboots two minutes later.
func defaultBatchFaultPlan(baseline float64) *faults.Plan {
	return &faults.Plan{Events: []faults.Event{
		{Kind: faults.NodeCrash, At: 0.3 * baseline, Duration: 120, Role: "slave", Index: 1},
	}}
}

// webFaultRecovery is the client-side recovery policy every web availability
// point runs with: 500 ms request timeout, defaults for retries/backoff.
var webFaultRecovery = web.RunConfig{RequestTimeout: 0.5}

// faultWebResult is one platform's availability measurement.
type faultWebResult struct {
	healthy, faulty web.Result
}

// runFaultTolerance measures availability under failure across the
// configured platform set (cmd/paper's -platforms): every platform's
// catalog web fleet runs the httperf workload twice — healthy, then under a
// rolling-crash fault plan with client timeouts/retries/failover enabled —
// and its Hadoop fleet runs TeraSort healthy and with a mid-job slave crash
// under task re-execution. Reported per platform: availability (successful
// share of attempted operations), goodput, p99 delay under failure, retry
// amplification, and job-completion slowdown. cfg.Faults, when set,
// replaces the built-in plans (events against roles "web", "slave" and
// "master" are honored; other roles are for rosters this experiment does
// not build).
func runFaultTolerance(cfg Config) *Outcome {
	o := &Outcome{}
	plats := cfg.MatrixPlatforms()
	duration := webDuration(cfg) * 2
	conc := 512.0
	if cfg.Quick {
		conc = 256
	}

	// --- Web availability: per platform, healthy + faulty on one sweep.
	webResults := RunSweep(cfg, "fault_tolerance/web", len(plats),
		func(i int, seed int64) faultWebResult {
			p := plats[i]
			run := func(rc web.RunConfig, plan *faults.Plan) web.Result {
				tb := cluster.New(cluster.Config{
					Groups:  []cluster.GroupConfig{{Platform: p, Nodes: p.Fleet.Web + p.Fleet.Cache}},
					DBNodes: 2, Clients: 8,
					Interrupt: cfg.Interrupt,
				})
				dep := web.NewDeployment(tb, p, p.Fleet.Web, p.Fleet.Cache, seed)
				dep.WarmFor(rc)
				if !plan.Empty() {
					targets := make([]faults.Target, len(dep.Web))
					for i, w := range dep.Web {
						targets[i] = faults.Target{Node: w.Node, Fab: dep.Fab}
					}
					faults.Schedule(dep.Eng, plan, seed, map[string][]faults.Target{"web": targets})
				}
				return dep.Run(rc)
			}
			rc := webFaultRecovery
			rc.Concurrency = conc
			rc.Duration = duration
			plan := defaultWebFaultPlan(p.Fleet.Web, duration)
			if cfg.Faults != nil {
				plan = cfg.Faults.Filter("web")
			}
			return faultWebResult{
				healthy: run(rc, nil),
				faulty:  run(rc, plan),
			}
		})

	webTab := report.NewTable("Fault tolerance — web availability under rolling crashes",
		"platform", "web", "healthy req/s", "goodput req/s", "availability %", "p99 delay s", "retry amp", "timeouts").
		WithUnits("", "nodes", "req/s", "req/s", "%", "s", "x", "")
	for pi, p := range plats {
		r := webResults[pi]
		// A faulty run that settled no operations at all (total outage or a
		// degenerate plan) must say so, not report a vacuous 100%
		// availability computed over zero attempts.
		if r.faulty.Throughput == 0 && r.faulty.Errors500 == 0 && r.faulty.ConnFailures == 0 {
			webTab.AddRow(p.Label, p.Fleet.Web,
				report.Num(r.healthy.Throughput, "req/s"),
				report.Num(0, "req/s"),
				"no traffic", "no traffic",
				report.Num(1, "x"),
				report.Count(r.faulty.Timeouts, ""))
			o.AddComparison("fault tolerance / web", p.Label+" availability %", 0, 0)
			continue
		}
		avail := 100 * (1 - r.faulty.ErrorRate)
		amp := safeDiv(float64(r.faulty.Attempts), float64(r.faulty.Attempts-r.faulty.Retries), 1)
		p99 := r.faulty.Delays.Quantile(0.99)
		webTab.AddRow(p.Label, p.Fleet.Web,
			report.Num(r.healthy.Throughput, "req/s"),
			report.Num(r.faulty.Throughput, "req/s"),
			report.Num(avail, "%"),
			report.Num(p99, "s"),
			report.Num(amp, "x"),
			report.Count(r.faulty.Timeouts, ""))
		o.AddComparison("fault tolerance / web", p.Label+" availability %", 0, avail)
		o.AddComparison("fault tolerance / web", p.Label+" p99 under failure s", 0, p99)
	}
	o.Tables = append(o.Tables, webTab)

	// --- TeraSort under a mid-job slave crash, against the healthy run.
	type teraPair struct{ healthy, faulty *mapred.JobResult }
	teraResults := RunSweep(cfg, "fault_tolerance/terasort", len(plats),
		func(i int, seed int64) teraPair {
			p := plats[i]
			groups := []jobs.SlaveGroup{{Platform: p, Nodes: p.Fleet.Slaves}}
			healthy, err := jobs.RunGroups("terasort", groups, seed)
			if err != nil {
				panic(fmt.Sprintf("core: terasort on %s: %v", p.Label, err))
			}
			plan := defaultBatchFaultPlan(healthy.Duration)
			if cfg.Faults != nil {
				plan = cfg.Faults.Filter("slave", "master")
			}
			ft := &mapred.FaultTolerance{TaskTimeout: healthy.Duration}
			faulty, err := jobs.RunGroupsFaulty("terasort", groups, seed, plan, ft,
				20*healthy.Duration, cfg.Interrupt)
			if err != nil {
				panic(fmt.Sprintf("core: faulty terasort on %s: %v", p.Label, err))
			}
			return teraPair{healthy, faulty}
		})

	teraTab := report.NewTable("Fault tolerance — TeraSort with a mid-job slave crash",
		"platform", "slaves", "healthy s", "faulty s", "slowdown", "completed", "retries", "lost map outputs").
		WithUnits("", "nodes", "s", "s", "x", "", "", "")
	for pi, p := range plats {
		r := teraResults[pi]
		slow := safeDiv(r.faulty.Duration, r.healthy.Duration, 0)
		state := "yes"
		if !r.faulty.Completed {
			state = "NO: " + r.faulty.FailReason
		}
		teraTab.AddRow(p.Label, p.Fleet.Slaves,
			report.Num(r.healthy.Duration, "s"),
			report.Num(r.faulty.Duration, "s"),
			report.Num(slow, "x"),
			state,
			report.Count(int64(r.faulty.TaskRetries), ""),
			report.Count(int64(r.faulty.LostMapOutputs), ""))
		o.AddComparison("fault tolerance / terasort", p.Label+" slowdown x", 0, slow)
	}
	o.Tables = append(o.Tables, teraTab)

	o.Notes = append(o.Notes,
		"web drill: a third of the web tier crashes in a rolling wave with client timeout/retry/failover on; batch drill: one slave crashes at 30% of the healthy runtime and reboots 2 minutes later",
		"availability = successful share of attempted operations in the measurement window; retry amplification = request transmissions per settled operation")
	return o
}
