package core

import (
	"fmt"

	"edisim/internal/carbon"
	"edisim/internal/hw"
	"edisim/internal/tco"
	"edisim/internal/units"
)

// The carbon lens: when Config arms the energy/carbon layers (a non-default
// power model or a region), the matrix experiments attribute metered joules
// and steady wall draws to the configured grid at the default facility PUE,
// and price fleets at the region's electricity tariff. Helpers here are the
// shared arithmetic; each experiment decides which columns it grows.

// gramsFromJoules converts metered IT energy to operational gCO2e under the
// configured grid and the default facility PUE.
func gramsFromJoules(cfg Config, e units.Joules) float64 {
	return carbon.Operational(e, carbon.DefaultPUE, cfg.Grid())
}

// gramsPerHourAt converts a steady wall draw to an hourly emission rate.
func gramsPerHourAt(cfg Config, watts float64) float64 {
	return watts / 1000 * carbon.DefaultPUE * cfg.Grid().Grams
}

// regionalFleetCost prices n nodes of p at utilization u in the configured
// region with the armed power model — the per-region TCO column. Zero nodes
// price to zero (budget-sized fleets can be empty).
func regionalFleetCost(cfg Config, p *hw.Platform, n int, u float64) float64 {
	if n <= 0 {
		return 0
	}
	in, err := tco.ForPlatformInRegion(p, n, u, cfg.Energy, cfg.Grid().Region, 0)
	if err != nil {
		panic(fmt.Sprintf("core: regional TCO: %v", err)) // Config.Region is pre-validated
	}
	return tco.MustCompute(in).Total()
}

// regionCostHeader labels the per-region TCO column.
func regionCostHeader(cfg Config) string {
	return fmt.Sprintf("3y TCO $ (%s)", cfg.Grid().Region)
}

// carbonLensNote documents the armed lens at the bottom of an experiment.
func carbonLensNote(cfg Config) string {
	g := cfg.Grid()
	model := "calibrated linear power model"
	if cfg.Energy == hw.PowerTDPCurve {
		model = "component TDP-curve power model"
	}
	return fmt.Sprintf("carbon lens armed: %s; grid %s (%s, %.0f gCO2e/kWh) at PUE %.2f; per-region TCO uses that grid's electricity tariff",
		model, g.Region, g.Label, float64(g.Grams), carbon.DefaultPUE)
}
