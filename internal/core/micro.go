package core

import (
	"fmt"

	"edisim/internal/hw"
	"edisim/internal/microbench"
	"edisim/internal/report"
	"edisim/internal/tco"
	"edisim/internal/units"
)

func init() {
	micro, brawny := hw.BaselinePair()
	register(Experiment{ID: "table2", Title: "Replacement estimate", Section: "3.1", Run: runTable2})
	register(Experiment{ID: "table3", Title: "Power states", Section: "3.2", Run: runTable3})
	register(Experiment{ID: "sec41_dhrystone", Title: "Dhrystone DMIPS", Section: "4.1", Run: runDhrystone})
	register(Experiment{ID: "fig2_fig3", Title: fmt.Sprintf("Sysbench CPU (%s & %s)", micro.Label, brawny.Label), Section: "4.1", Run: runSysbenchCPU})
	register(Experiment{ID: "sec42_memory", Title: "Memory bandwidth sweep", Section: "4.2", Run: runMemory})
	register(Experiment{ID: "table5", Title: "Storage I/O", Section: "4.3", Run: runStorage})
	register(Experiment{ID: "sec44_network", Title: "iperf3/ping matrix", Section: "4.4", Run: runNetwork})
	register(Experiment{ID: "table10", Title: "TCO comparison", Section: "6", Run: runTCO})
}

func runTable2(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	r := hw.EstimateReplacement(micro.Spec, brawny.Spec)
	t := report.NewTable(fmt.Sprintf("Table 2 — %s servers needed to replace one %s", micro.Label, brawny.FullName),
		"resource", "replacement")
	t.AddRow("CPU", r.ByCPU)
	t.AddRow("RAM", r.ByRAM)
	t.AddRow("NIC", r.ByNIC)
	t.AddRow("max", r.Required)
	o.Tables = append(o.Tables, t)
	pair := func(res string) string { return fmt.Sprintf("%s per %s (%s)", micro.Label, brawny.Label, res) }
	o.AddComparison("Table 2", pair("CPU"), 12, float64(r.ByCPU))
	o.AddComparison("Table 2", pair("RAM"), 16, float64(r.ByRAM))
	o.AddComparison("Table 2", pair("NIC"), 10, float64(r.ByNIC))
	o.AddComparison("Table 2", pair("required"), 16, float64(r.Required))
	return o
}

func runTable3(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	e, d := micro.Spec.Power, brawny.Spec.Power
	t := report.NewTable("Table 3 — power states", "server state", "idle (W)", "busy (W)").
		WithUnits("", "W", "W")
	rows := []struct {
		label        string
		idle, busy   units.Watts
		pIdle, pBusy float64
	}{
		{fmt.Sprintf("1 %s without Ethernet adaptor", micro.Label), e.Idle, e.Busy, 0.36, 0.75},
		{fmt.Sprintf("1 %s with Ethernet adaptor", micro.Label), e.IdleDraw(), e.BusyDraw(), 1.40, 1.68},
		{fmt.Sprintf("%s cluster of 35 nodes", micro.Label), 35 * e.IdleDraw(), 35 * e.BusyDraw(), 49.0, 58.8},
		{fmt.Sprintf("1 %s server", brawny.Label), d.IdleDraw(), d.BusyDraw(), 52, 109},
		{fmt.Sprintf("%s cluster of 3 nodes", brawny.Label), 3 * d.IdleDraw(), 3 * d.BusyDraw(), 156, 327},
	}
	for _, r := range rows {
		t.AddRow(r.label, report.Num(float64(r.idle), "W"), report.Num(float64(r.busy), "W"))
		o.AddComparison("Table 3 / "+r.label, "idle W", r.pIdle, float64(r.idle))
		o.AddComparison("Table 3 / "+r.label, "busy W", r.pBusy, float64(r.busy))
	}
	o.Tables = append(o.Tables, t)
	return o
}

func runDhrystone(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	e := microbench.Dhrystone(micro.Spec)
	d := microbench.Dhrystone(brawny.Spec)
	t := report.NewTable("§4.1 — Dhrystone", "platform", "DMIPS", "time for 100M runs (s)").
		WithUnits("", "DMIPS", "s")
	t.AddRow(e.Platform, report.Num(float64(e.DMIPS), "DMIPS"), report.Num(e.RunTime, "s"))
	t.AddRow(d.Platform, report.Num(float64(d.DMIPS), "DMIPS"), report.Num(d.RunTime, "s"))
	o.Tables = append(o.Tables, t)
	o.AddComparison("§4.1 Dhrystone", micro.Label+" DMIPS", 632.3, float64(e.DMIPS))
	o.AddComparison("§4.1 Dhrystone", brawny.Label+" DMIPS", 11383, float64(d.DMIPS))
	return o
}

func runSysbenchCPU(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	threads := []int{1, 2, 4, 8}
	x := []float64{1, 2, 4, 8}
	specs := []hw.NodeSpec{micro.Spec, brawny.Spec}

	// One sweep cell per (platform, thread count), each on its own engine.
	type cpuCell struct {
		spec hw.NodeSpec
		th   int
	}
	s := Sweep[cpuCell, microbench.CPUPoint]{Name: "fig2_fig3"}
	for _, spec := range specs {
		for _, th := range threads {
			s.Points = append(s.Points, cpuCell{spec: spec, th: th})
		}
	}
	s.Point = func(_ int, c cpuCell, _ int64) microbench.CPUPoint {
		return microbench.SysbenchCPU(c.spec, []int{c.th})[0]
	}
	pts := s.Run(cfg)

	for si, spec := range specs {
		name := "Figure 2"
		if si != 0 {
			name = "Figure 3"
		}
		fig := report.NewFigure(fmt.Sprintf("%s — Sysbench CPU on %s", name, spec.Name),
			"threads", "seconds / ms", x)
		var total, resp []float64
		for _, p := range pts[si*len(threads) : (si+1)*len(threads)] {
			total = append(total, p.TotalTime)
			resp = append(resp, p.AvgResponse*1e3)
		}
		fig.Add("total time (s)", total)
		fig.Add("avg response (ms)", resp)
		o.Figures = append(o.Figures, fig)
	}
	micro1, brawny1 := pts[0], pts[len(threads)]
	gap := micro1.TotalTime / brawny1.TotalTime
	o.AddComparison("Figures 2–3", "1-thread gap (x)", 16.5, gap)
	o.AddComparison("Figure 3", brawny.Label+" 1-thread total (s)", 40, brawny1.TotalTime)
	return o
}

func runMemory(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	blocks := []units.Bytes{4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB, units.MB}
	x := make([]float64, len(blocks))
	for i, b := range blocks {
		x[i] = float64(b) / 1024
	}
	fig := report.NewFigure("§4.2 — memory transfer rate vs block size", "block (KB)", "GB/s", x)
	for _, spec := range []hw.NodeSpec{micro.Spec, brawny.Spec} {
		pts := microbench.SysbenchMemory(spec, blocks, []int{16})
		var y []float64
		for _, p := range pts {
			y = append(y, float64(p.Rate)/float64(units.GBps))
		}
		fig.Add(spec.Name, y)
	}
	o.Figures = append(o.Figures, fig)
	o.AddComparison("§4.2", micro.Label+" peak GB/s", 2.2,
		float64(microbench.PeakMemoryBandwidth(micro.Spec))/float64(units.GBps))
	o.AddComparison("§4.2", brawny.Label+" peak GB/s", 36,
		float64(microbench.PeakMemoryBandwidth(brawny.Spec))/float64(units.GBps))
	return o
}

func runStorage(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	// Rows mix dimensions (rates vs latencies), so units ride on the
	// cells, not the columns.
	t := report.NewTable("Table 5 — storage I/O", "metric", micro.Label, brawny.Label)
	e := microbench.Storage(micro.Spec)
	d := microbench.Storage(brawny.Spec)
	mbv := func(r units.BytesPerSec) float64 { return float64(r) / float64(units.MBps) }
	mb := func(r units.BytesPerSec) report.Value { return report.Num(mbv(r), "MB/s") }
	ms := func(sec float64) report.Value { return report.Num(sec*1e3, "ms") }
	t.AddRow("write MB/s", mb(e.Write), mb(d.Write))
	t.AddRow("buffered write MB/s", mb(e.BufWrite), mb(d.BufWrite))
	t.AddRow("read MB/s", mb(e.Read), mb(d.Read))
	t.AddRow("buffered read MB/s", mb(e.BufRead), mb(d.BufRead))
	t.AddRow("write latency ms", ms(e.WriteLatency), ms(d.WriteLatency))
	t.AddRow("read latency ms", ms(e.ReadLatency), ms(d.ReadLatency))
	o.Tables = append(o.Tables, t)
	o.AddComparison("Table 5", micro.Label+" write MB/s", 4.5, mbv(e.Write))
	o.AddComparison("Table 5", brawny.Label+" write MB/s", 24.0, mbv(d.Write))
	o.AddComparison("Table 5", micro.Label+" read MB/s", 19.5, mbv(e.Read))
	o.AddComparison("Table 5", brawny.Label+" read MB/s", 86.1, mbv(d.Read))
	o.AddComparison("Table 5", micro.Label+" write latency ms", 18.0, e.WriteLatency*1e3)
	o.AddComparison("Table 5", brawny.Label+" read latency ms", 0.829, d.ReadLatency*1e3)
	return o
}

func runNetwork(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	t := report.NewTable("§4.4 — network", "pair", "TCP Mbit/s", "UDP Mbit/s", "RTT ms").
		WithUnits("", "Mbit/s", "Mbit/s", "ms")
	pairName := func(a, b *hw.Platform) string { return a.Label + " to " + b.Label }
	paperTCP := map[string]float64{
		pairName(brawny, brawny): 942,
		pairName(brawny, micro):  93.9,
		pairName(micro, micro):   93.9,
	}
	paperRTT := map[string]float64{
		pairName(brawny, brawny): 0.24,
		pairName(brawny, micro):  0.8,
		pairName(micro, micro):   1.3,
	}
	for _, r := range microbench.MeasureNetwork(micro, brawny) {
		tcp := float64(r.TCP) * 8 / 1e6
		udp := float64(r.UDP) * 8 / 1e6
		t.AddRow(r.Pair, report.Num(tcp, "Mbit/s"), report.Num(udp, "Mbit/s"), report.Num(r.RTT*1e3, "ms"))
		o.AddComparison("§4.4 "+r.Pair, "TCP Mbit/s", paperTCP[r.Pair], tcp)
		o.AddComparison("§4.4 "+r.Pair, "RTT ms", paperRTT[r.Pair], r.RTT*1e3)
	}
	o.Tables = append(o.Tables, t)
	return o
}

func runTCO(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	t := report.NewTable("Table 10 — 3-year TCO (USD)", "scenario", brawny.Label, micro.Label, "savings %").
		WithUnits("", "$", "$", "%")
	paper := map[string][2]float64{
		"Web service, low utilization":  {7948.7, 4329.5},
		"Web service, high utilization": {8236.8, 4346.1},
		"Big data, low utilization":     {5348.2, 4352.4},
		"Big data, high utilization":    {5495.0, 4352.4},
	}
	for _, s := range tco.Table10() {
		t.AddRow(s.Name, report.Num(s.Brawny.Total(), "$"), report.Num(s.Micro.Total(), "$"), report.Num(100*s.Savings(), "%"))
		p := paper[s.Name]
		o.AddComparison("Table 10 / "+s.Name, brawny.Label+" TCO $", p[0], s.Brawny.Total())
		o.AddComparison("Table 10 / "+s.Name, micro.Label+" TCO $", p[1], s.Micro.Total())
	}
	o.Tables = append(o.Tables, t)
	return o
}
