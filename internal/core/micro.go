package core

import (
	"fmt"

	"edisim/internal/hw"
	"edisim/internal/microbench"
	"edisim/internal/report"
	"edisim/internal/tco"
	"edisim/internal/units"
)

func init() {
	register(Experiment{ID: "table2", Title: "Replacement estimate", Section: "3.1", Run: runTable2})
	register(Experiment{ID: "table3", Title: "Power states", Section: "3.2", Run: runTable3})
	register(Experiment{ID: "sec41_dhrystone", Title: "Dhrystone DMIPS", Section: "4.1", Run: runDhrystone})
	register(Experiment{ID: "fig2_fig3", Title: "Sysbench CPU (Edison & Dell)", Section: "4.1", Run: runSysbenchCPU})
	register(Experiment{ID: "sec42_memory", Title: "Memory bandwidth sweep", Section: "4.2", Run: runMemory})
	register(Experiment{ID: "table5", Title: "Storage I/O", Section: "4.3", Run: runStorage})
	register(Experiment{ID: "sec44_network", Title: "iperf3/ping matrix", Section: "4.4", Run: runNetwork})
	register(Experiment{ID: "table10", Title: "TCO comparison", Section: "6", Run: runTCO})
}

func runTable2(cfg Config) *Outcome {
	o := &Outcome{}
	r := hw.EstimateReplacement(hw.EdisonSpec(), hw.DellR620Spec())
	t := report.NewTable("Table 2 — Edison servers needed to replace one Dell R620",
		"resource", "replacement")
	t.AddRow("CPU", r.ByCPU)
	t.AddRow("RAM", r.ByRAM)
	t.AddRow("NIC", r.ByNIC)
	t.AddRow("max", r.Required)
	o.Tables = append(o.Tables, t)
	o.AddComparison("Table 2", "Edison per Dell (CPU)", 12, float64(r.ByCPU))
	o.AddComparison("Table 2", "Edison per Dell (RAM)", 16, float64(r.ByRAM))
	o.AddComparison("Table 2", "Edison per Dell (NIC)", 10, float64(r.ByNIC))
	o.AddComparison("Table 2", "Edison per Dell (required)", 16, float64(r.Required))
	return o
}

func runTable3(cfg Config) *Outcome {
	o := &Outcome{}
	e, d := hw.EdisonSpec().Power, hw.DellR620Spec().Power
	t := report.NewTable("Table 3 — power states", "server state", "idle (W)", "busy (W)")
	rows := []struct {
		label        string
		idle, busy   units.Watts
		pIdle, pBusy float64
	}{
		{"1 Edison without Ethernet adaptor", e.Idle, e.Busy, 0.36, 0.75},
		{"1 Edison with Ethernet adaptor", e.IdleDraw(), e.BusyDraw(), 1.40, 1.68},
		{"Edison cluster of 35 nodes", 35 * e.IdleDraw(), 35 * e.BusyDraw(), 49.0, 58.8},
		{"1 Dell server", d.IdleDraw(), d.BusyDraw(), 52, 109},
		{"Dell cluster of 3 nodes", 3 * d.IdleDraw(), 3 * d.BusyDraw(), 156, 327},
	}
	for _, r := range rows {
		t.AddRow(r.label, float64(r.idle), float64(r.busy))
		o.AddComparison("Table 3 / "+r.label, "idle W", r.pIdle, float64(r.idle))
		o.AddComparison("Table 3 / "+r.label, "busy W", r.pBusy, float64(r.busy))
	}
	o.Tables = append(o.Tables, t)
	return o
}

func runDhrystone(cfg Config) *Outcome {
	o := &Outcome{}
	e := microbench.Dhrystone(hw.EdisonSpec())
	d := microbench.Dhrystone(hw.DellR620Spec())
	t := report.NewTable("§4.1 — Dhrystone", "platform", "DMIPS", "time for 100M runs (s)")
	t.AddRow(e.Platform, float64(e.DMIPS), e.RunTime)
	t.AddRow(d.Platform, float64(d.DMIPS), d.RunTime)
	o.Tables = append(o.Tables, t)
	o.AddComparison("§4.1 Dhrystone", "Edison DMIPS", 632.3, float64(e.DMIPS))
	o.AddComparison("§4.1 Dhrystone", "Dell DMIPS", 11383, float64(d.DMIPS))
	return o
}

func runSysbenchCPU(cfg Config) *Outcome {
	o := &Outcome{}
	threads := []int{1, 2, 4, 8}
	x := []float64{1, 2, 4, 8}
	specs := []hw.NodeSpec{hw.EdisonSpec(), hw.DellR620Spec()}

	// One sweep cell per (platform, thread count), each on its own engine.
	type cpuCell struct {
		spec hw.NodeSpec
		th   int
	}
	s := Sweep[cpuCell, microbench.CPUPoint]{Name: "fig2_fig3"}
	for _, spec := range specs {
		for _, th := range threads {
			s.Points = append(s.Points, cpuCell{spec: spec, th: th})
		}
	}
	s.Point = func(_ int, c cpuCell, _ int64) microbench.CPUPoint {
		return microbench.SysbenchCPU(c.spec, []int{c.th})[0]
	}
	pts := s.Run(cfg)

	for si, spec := range specs {
		name := "Figure 2"
		if spec.Name != "Edison" {
			name = "Figure 3"
		}
		fig := report.NewFigure(fmt.Sprintf("%s — Sysbench CPU on %s", name, spec.Name),
			"threads", "seconds / ms", x)
		var total, resp []float64
		for _, p := range pts[si*len(threads) : (si+1)*len(threads)] {
			total = append(total, p.TotalTime)
			resp = append(resp, p.AvgResponse*1e3)
		}
		fig.Add("total time (s)", total)
		fig.Add("avg response (ms)", resp)
		o.Figures = append(o.Figures, fig)
	}
	edison1, dell1 := pts[0], pts[len(threads)]
	gap := edison1.TotalTime / dell1.TotalTime
	o.AddComparison("Figures 2–3", "1-thread gap (x)", 16.5, gap)
	o.AddComparison("Figure 3", "Dell 1-thread total (s)", 40, dell1.TotalTime)
	return o
}

func runMemory(cfg Config) *Outcome {
	o := &Outcome{}
	blocks := []units.Bytes{4 * units.KB, 16 * units.KB, 64 * units.KB, 256 * units.KB, units.MB}
	x := make([]float64, len(blocks))
	for i, b := range blocks {
		x[i] = float64(b) / 1024
	}
	fig := report.NewFigure("§4.2 — memory transfer rate vs block size", "block (KB)", "GB/s", x)
	for _, spec := range []hw.NodeSpec{hw.EdisonSpec(), hw.DellR620Spec()} {
		pts := microbench.SysbenchMemory(spec, blocks, []int{16})
		var y []float64
		for _, p := range pts {
			y = append(y, float64(p.Rate)/float64(units.GBps))
		}
		fig.Add(spec.Name, y)
	}
	o.Figures = append(o.Figures, fig)
	o.AddComparison("§4.2", "Edison peak GB/s", 2.2,
		float64(microbench.PeakMemoryBandwidth(hw.EdisonSpec()))/float64(units.GBps))
	o.AddComparison("§4.2", "Dell peak GB/s", 36,
		float64(microbench.PeakMemoryBandwidth(hw.DellR620Spec()))/float64(units.GBps))
	return o
}

func runStorage(cfg Config) *Outcome {
	o := &Outcome{}
	t := report.NewTable("Table 5 — storage I/O", "metric", "Edison", "Dell")
	e := microbench.Storage(hw.EdisonSpec())
	d := microbench.Storage(hw.DellR620Spec())
	mb := func(r units.BytesPerSec) float64 { return float64(r) / float64(units.MBps) }
	t.AddRow("write MB/s", mb(e.Write), mb(d.Write))
	t.AddRow("buffered write MB/s", mb(e.BufWrite), mb(d.BufWrite))
	t.AddRow("read MB/s", mb(e.Read), mb(d.Read))
	t.AddRow("buffered read MB/s", mb(e.BufRead), mb(d.BufRead))
	t.AddRow("write latency ms", e.WriteLatency*1e3, d.WriteLatency*1e3)
	t.AddRow("read latency ms", e.ReadLatency*1e3, d.ReadLatency*1e3)
	o.Tables = append(o.Tables, t)
	o.AddComparison("Table 5", "Edison write MB/s", 4.5, mb(e.Write))
	o.AddComparison("Table 5", "Dell write MB/s", 24.0, mb(d.Write))
	o.AddComparison("Table 5", "Edison read MB/s", 19.5, mb(e.Read))
	o.AddComparison("Table 5", "Dell read MB/s", 86.1, mb(d.Read))
	o.AddComparison("Table 5", "Edison write latency ms", 18.0, e.WriteLatency*1e3)
	o.AddComparison("Table 5", "Dell read latency ms", 0.829, d.ReadLatency*1e3)
	return o
}

func runNetwork(cfg Config) *Outcome {
	o := &Outcome{}
	t := report.NewTable("§4.4 — network", "pair", "TCP Mbit/s", "UDP Mbit/s", "RTT ms")
	paperTCP := map[string]float64{"Dell to Dell": 942, "Dell to Edison": 93.9, "Edison to Edison": 93.9}
	paperRTT := map[string]float64{"Dell to Dell": 0.24, "Dell to Edison": 0.8, "Edison to Edison": 1.3}
	for _, r := range microbench.MeasureNetwork() {
		tcp := float64(r.TCP) * 8 / 1e6
		udp := float64(r.UDP) * 8 / 1e6
		t.AddRow(r.Pair, tcp, udp, r.RTT*1e3)
		o.AddComparison("§4.4 "+r.Pair, "TCP Mbit/s", paperTCP[r.Pair], tcp)
		o.AddComparison("§4.4 "+r.Pair, "RTT ms", paperRTT[r.Pair], r.RTT*1e3)
	}
	o.Tables = append(o.Tables, t)
	return o
}

func runTCO(cfg Config) *Outcome {
	o := &Outcome{}
	t := report.NewTable("Table 10 — 3-year TCO (USD)", "scenario", "Dell", "Edison", "savings %")
	paper := map[string][2]float64{
		"Web service, low utilization":  {7948.7, 4329.5},
		"Web service, high utilization": {8236.8, 4346.1},
		"Big data, low utilization":     {5348.2, 4352.4},
		"Big data, high utilization":    {5495.0, 4352.4},
	}
	for _, s := range tco.Table10() {
		t.AddRow(s.Name, s.Dell.Total(), s.Edison.Total(), 100*s.Savings())
		p := paper[s.Name]
		o.AddComparison("Table 10 / "+s.Name, "Dell TCO $", p[0], s.Dell.Total())
		o.AddComparison("Table 10 / "+s.Name, "Edison TCO $", p[1], s.Edison.Total())
	}
	o.Tables = append(o.Tables, t)
	return o
}
