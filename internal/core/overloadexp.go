package core

import (
	"fmt"

	"edisim/internal/carbon"
	"edisim/internal/cluster"
	"edisim/internal/faults"
	"edisim/internal/hw"
	"edisim/internal/load"
	"edisim/internal/report"
	"edisim/internal/tco"
	"edisim/internal/web"
)

func init() {
	register(Experiment{
		ID:      "overload",
		Title:   "Overload resilience: open-loop load, shedding, retry budgets, SLO",
		Section: "beyond-paper",
		OptIn:   true,
		Run:     runOverload,
	})
}

// safeDiv divides num by den, returning whenZero instead of NaN/Inf when
// the denominator is empty — report tables get explicit zero-traffic
// values, never NaN.
func safeDiv(num, den, whenZero float64) float64 {
	if den == 0 {
		return whenZero
	}
	return num / den
}

// overloadSLO is the objective every overload point is judged against:
// p99 under half a second with 99% availability, evaluated per 1 s window.
func overloadSLO() web.SLO {
	return web.SLO{Latency: 0.5, Percentile: 0.99, Availability: 0.99, Window: 1}
}

// overloadRecovery are the client/server resilience knobs the ladder runs
// with: timeouts + budgeted retries, deadline shedding.
func overloadRunConfig(dur float64) web.RunConfig {
	return web.RunConfig{
		Duration:       dur,
		WarmupFrac:     0.1,
		RequestTimeout: 0.5,
		RetryBudget:    0.1,
		Shed:           web.ShedPolicy{Mode: web.ShedDeadline, Deadline: 0.5},
	}
}

// connCapacity is a platform fleet's nominal connection-accept capacity.
func connCapacity(p *hw.Platform) float64 {
	return float64(p.Fleet.Web) * p.Web.ConnRate
}

// overloadTestbed builds one platform's catalog web fleet.
func overloadTestbed(cfg Config, p *hw.Platform, seed int64) *web.Deployment {
	tb := cluster.New(cluster.Config{
		Groups:  []cluster.GroupConfig{{Platform: p, Nodes: p.Fleet.Web + p.Fleet.Cache}},
		DBNodes: 2, Clients: 8,
		Interrupt: cfg.Interrupt,
		Energy:    cfg.Energy,
	})
	return web.NewDeployment(tb, p, p.Fleet.Web, p.Fleet.Cache, seed)
}

// runOverload re-asks the paper's req/s/W question the way production asks
// it: under open-loop traffic, what does each platform fleet serve at an
// SLO, and how does it behave past saturation? Two stages per platform:
//
//   - Ladder: steady open-loop arrivals at 0.5×..3× the fleet's connection
//     capacity with shedding + retry budgets on, reporting goodput, shed
//     rate, p99/p999, power, and req/s/W at the SLO (the
//     energy-proportionality lens — a fleet that only meets the SLO at
//     full saturation is not the fleet that meets it in production).
//   - Drill: a flash-crowd spike to ~2.2× capacity with a rolling crash of
//     a quarter of the web tier mid-spike (cfg.Faults, when set, replaces
//     the built-in crash plan via its "web" events), brownout enabled —
//     pinning "degrades, recovers, never collapses": goodput during and
//     after the incident is compared against the pre-spike level.
func runOverload(cfg Config) *Outcome {
	o := &Outcome{}
	plats := cfg.MatrixPlatforms()
	dur := webDuration(cfg) * 2

	mults := []float64{0.5, 1, 1.5, 2, 3}
	if cfg.Quick {
		mults = []float64{0.5, 1, 2}
	}

	// --- Ladder: platforms × offered-load multipliers on one sweep.
	type ladderPoint struct {
		res  web.Result
		p99  float64
		p999 float64
		ok   bool // met the SLO over the whole window
	}
	slo := overloadSLO()
	ladder := RunSweep(cfg, "overload/ladder", len(plats)*len(mults),
		func(i int, seed int64) ladderPoint {
			p := plats[i/len(mults)]
			offered := connCapacity(p) * mults[i%len(mults)]
			dep := overloadTestbed(cfg, p, seed)
			rc := overloadRunConfig(dur)
			rc.Profile = load.Steady{Rate: offered}
			s := slo
			rc.SLO = &s
			dep.WarmFor(rc)
			res := dep.Run(rc)
			p99 := res.Latency.Quantile(0.99)
			p999 := res.Latency.Quantile(0.999)
			avail := 1 - res.ErrorRate
			return ladderPoint{
				res:  res,
				p99:  p99,
				p999: p999,
				ok:   p99 <= slo.Latency && avail >= slo.Availability,
			}
		})

	armed := cfg.CarbonArmed()
	ladderCols := []string{"platform", "offered conn/s", "×capacity", "goodput req/s", "shed/s", "p99 s", "p999 s", "power W", "req/s/W", "SLO"}
	ladderUnits := []string{"", "conn/s", "x", "req/s", "/s", "s", "s", "W", "req/s/W", ""}
	if armed {
		ladderCols = append(ladderCols, "gCO2e/h", "req per gCO2e", fmt.Sprintf("energy $/h (%s)", cfg.Grid().Region))
		ladderUnits = append(ladderUnits, "g/h", "req/g", "$/h")
	}
	regionPrice, _ := tco.RegionPrice(cfg.Grid().Region)
	tab := report.NewTable("Overload ladder — open-loop goodput, shedding and tails at the SLO (p99 ≤ 0.5 s, availability ≥ 99%)",
		ladderCols...).WithUnits(ladderUnits...)
	for pi, p := range plats {
		window := dur * 0.9
		bestAtSLO := 0.0 // req/s/W of the highest-goodput SLO-compliant point
		bestGoodput := 0.0
		bestPerG := 0.0 // req per gCO2e at the same SLO-compliant point
		for mi, m := range mults {
			lp := ladder[pi*len(mults)+mi]
			r := lp.res
			perW := safeDiv(r.Throughput, float64(r.MeanPower), 0)
			verdict := "ok"
			if !lp.ok {
				verdict = "burned"
			}
			gph := gramsPerHourAt(cfg, float64(r.MeanPower))
			perG := safeDiv(r.Throughput*3600, gph, 0)
			if lp.ok && r.Throughput > bestGoodput {
				bestGoodput, bestAtSLO, bestPerG = r.Throughput, perW, perG
			}
			row := []any{p.Label,
				report.Num(connCapacity(p)*m, "conn/s"),
				report.Num(m, "x"),
				report.Num(r.Throughput, "req/s"),
				report.Num(safeDiv(float64(r.Shed), window, 0), "/s"),
				report.Num(lp.p99, "s"),
				report.Num(lp.p999, "s"),
				report.Num(float64(r.MeanPower), "W"),
				report.Num(perW, "req/s/W"),
				verdict}
			if armed {
				// Wall draw at the regional tariff, facility overhead included.
				dollarsPerHour := float64(r.MeanPower) / 1000 * carbon.DefaultPUE * regionPrice
				row = append(row, report.Num(gph, "g/h"), report.Num(perG, "req/g"),
					report.Num(dollarsPerHour, "$/h"))
			}
			tab.AddRow(row...)
		}
		o.AddComparison("overload / ladder", p.Label+" req/s/W at SLO", 0, bestAtSLO)
		o.AddComparison("overload / ladder", p.Label+" goodput at SLO req/s", 0, bestGoodput)
		if armed {
			o.AddComparison("overload / ladder", p.Label+" req per gCO2e at SLO", 0, bestPerG)
		}
	}
	o.Tables = append(o.Tables, tab)

	// p99-vs-offered-load and goodput-vs-offered-load curves (x in units of
	// fleet capacity so platforms share an axis).
	figP99 := report.NewFigure("Overload — p99 vs offered load", "offered load (x fleet capacity)", "p99 delay (s)", mults)
	figGood := report.NewFigure("Overload — goodput vs offered load", "offered load (x fleet capacity)", "goodput (req/s)", mults)
	for pi, p := range plats {
		p99s := make([]float64, len(mults))
		goods := make([]float64, len(mults))
		for mi := range mults {
			lp := ladder[pi*len(mults)+mi]
			p99s[mi] = lp.p99
			goods[mi] = lp.res.Throughput
		}
		figP99.Add(p.Label, p99s)
		figGood.Add(p.Label, goods)
	}
	o.Figures = append(o.Figures, figP99, figGood)

	// --- Drill: spike + mid-spike rolling crash, brownout on.
	spikeStart := dur / 3
	spikeDur := dur / 3
	crashAt := spikeStart + 0.2*spikeDur
	type drillResult struct {
		res            web.Result
		pre, mid, post float64 // goodput req/s by phase
		p999           float64
	}
	drill := RunSweep(cfg, "overload/drill", len(plats),
		func(i int, seed int64) drillResult {
			p := plats[i]
			dep := overloadTestbed(cfg, p, seed)
			rc := overloadRunConfig(dur)
			cap := connCapacity(p)
			rc.Profile = load.Spike{Base: 0.5 * cap, Peak: 2.2 * cap, Start: spikeStart, Duration: spikeDur}
			var wins []web.SLOWindow
			s := slo
			s.Brownout = true
			s.Observer = func(w web.SLOWindow) { wins = append(wins, w) }
			rc.SLO = &s
			dep.WarmFor(rc)

			victims := p.Fleet.Web / 4
			if victims == 0 {
				victims = 1
			}
			plan := faults.RollingCrashes("web", victims, crashAt, 0.3, 0.25*dur)
			if cfg.Faults != nil {
				plan = cfg.Faults.Filter("web")
			}
			if !plan.Empty() {
				targets := make([]faults.Target, len(dep.Web))
				for wi, w := range dep.Web {
					targets[wi] = faults.Target{Node: w.Node, Fab: dep.Fab}
				}
				faults.Schedule(dep.Eng, plan, seed, map[string][]faults.Target{"web": targets})
			}
			res := dep.Run(rc)

			phase := func(from, to float64) float64 {
				var served int64
				n := 0
				for _, w := range wins {
					if w.T > from && w.T <= to {
						served += w.Served
						n++
					}
				}
				return safeDiv(float64(served), float64(n)*s.Window, 0)
			}
			return drillResult{
				res:  res,
				pre:  phase(1, spikeStart),
				mid:  phase(crashAt, spikeStart+spikeDur),
				post: phase(spikeStart+spikeDur+0.25*dur, dur),
				p999: res.Latency.Quantile(0.999),
			}
		})

	dtab := report.NewTable(
		fmt.Sprintf("Overload drill — flash crowd to 2.2x capacity with a rolling crash of a quarter of the web tier at t=%.0fs (brownout on)", crashAt),
		"platform", "web", "pre req/s", "spike+crash req/s", "recovered req/s", "p999 s", "shed/s", "degraded/s", "retry amp", "denied", "verdict").
		WithUnits("", "nodes", "req/s", "req/s", "req/s", "s", "/s", "/s", "x", "", "")
	for pi, p := range plats {
		d := drill[pi]
		r := d.res
		window := dur * 0.9
		amp := safeDiv(float64(r.Attempts), float64(r.Attempts-r.Retries), 1)
		// "Never collapses": both the incident and the recovered phases hold
		// at least 80% of the pre-spike goodput.
		verdict := "degrades+recovers"
		if d.pre == 0 {
			verdict = "no traffic"
		} else if d.mid < 0.8*d.pre || d.post < 0.8*d.pre {
			verdict = "COLLAPSED"
		}
		dtab.AddRow(p.Label, p.Fleet.Web,
			report.Num(d.pre, "req/s"),
			report.Num(d.mid, "req/s"),
			report.Num(d.post, "req/s"),
			report.Num(d.p999, "s"),
			report.Num(safeDiv(float64(r.Shed), window, 0), "/s"),
			report.Num(safeDiv(float64(r.Degraded), window, 0), "/s"),
			report.Num(amp, "x"),
			report.Count(r.RetryDenied, ""),
			verdict)
		o.AddComparison("overload / drill", p.Label+" spike goodput vs pre", 1, safeDiv(d.mid, d.pre, 0))
		o.AddComparison("overload / drill", p.Label+" recovered goodput vs pre", 1, safeDiv(d.post, d.pre, 0))
	}
	o.Tables = append(o.Tables, dtab)

	o.Notes = append(o.Notes,
		"open-loop arrivals: the client population sends at the profiled rate whether or not the fleet keeps up; goodput is successful replies inside the measurement window",
		"every point runs with deadline shedding (0.5 s), a 10% retry budget and 0.5 s client timeouts; the drill adds brownout (stale cache-only answers while the SLO burns)",
		"req/s/W at SLO takes each platform's highest-goodput ladder point that met p99 <= 0.5 s and availability >= 99% — the energy-proportionality lens of Subramaniam & Feng rather than peak-throughput-per-watt",
	)
	if armed {
		o.Notes = append(o.Notes, carbonLensNote(cfg))
	}
	return o
}
