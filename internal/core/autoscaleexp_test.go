package core

import (
	"math"
	"runtime"
	"strings"
	"testing"
)

// TestAutoscaleExperimentQuick checks the autoscale experiment's artifact
// shape: the elasticity ladder table, the fleet-size trace figure, finite
// comparisons, and the PR's headline pin — on the micro fleet some elastic
// policy beats the static fleet on energy at SLO parity.
func TestAutoscaleExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment in -short mode")
	}
	e, ok := Lookup("autoscale")
	if !ok {
		t.Fatal("autoscale experiment not registered")
	}
	if !e.OptIn {
		t.Fatal("autoscale must be opt-in: it is beyond the paper's artifact set")
	}
	o := e.Run(overloadPairConfig(1, runtime.GOMAXPROCS(0)))
	if len(o.Tables) != 1 {
		t.Fatalf("got %d tables, want 1 (elasticity ladder)", len(o.Tables))
	}
	if len(o.Figures) != 1 {
		t.Fatalf("got %d figures, want 1 (fleet-size trace)", len(o.Figures))
	}
	if len(o.Comparisons) == 0 {
		t.Fatal("no comparisons recorded")
	}
	for _, c := range o.Comparisons {
		if math.IsNaN(c.Measured) || math.IsInf(c.Measured, 0) {
			t.Errorf("comparison %q measured %v is not finite", c.Metric, c.Measured)
		}
	}
	ladder := o.Tables[0].String()
	for _, want := range []string{"static", "target-util", "queue-depth", "predictive", "diurnal", "spike"} {
		if !strings.Contains(ladder, want) {
			t.Errorf("ladder table missing %q:\n%s", want, ladder)
		}
	}
	if strings.Contains(ladder, "NaN") {
		t.Errorf("ladder table contains NaN:\n%s", ladder)
	}

	// The headline pin: on the baseline micro fleet (24 × ~1.5 W servers,
	// 2 s boots) at least one elastic policy must beat the static fleet on
	// energy over the diurnal cycle without giving up SLO attainment, and
	// must improve the energy-proportionality score. The brawny fleet
	// (2 servers, 10 s boots) is allowed to lose — that asymmetry is the
	// experiment's point — so only the micro side is pinned.
	comp := func(metric string) float64 {
		t.Helper()
		for _, c := range o.Comparisons {
			if c.Metric == metric {
				return c.Measured
			}
		}
		t.Fatalf("comparison %q missing", metric)
		return 0
	}
	microEnergy := comp("Edison best elastic energy vs static")
	if microEnergy <= 0 || microEnergy >= 1 {
		t.Errorf("micro elastic energy ratio %.3f: no elastic policy beat the static fleet at SLO parity", microEnergy)
	}
	if bestEP, staticEP := comp("Edison best EP score"), comp("Edison static EP score"); bestEP <= staticEP {
		t.Errorf("micro best EP %.3f did not improve on static EP %.3f", bestEP, staticEP)
	}
	if perW := comp("Edison best elastic req/s/W vs static"); perW <= 1 {
		t.Errorf("micro elastic req/s/W ratio %.3f: elasticity should raise efficiency at parity", perW)
	}
}

// TestAutoscaleParallelMatchesSerial pins the -j guarantee for the
// autoscale experiment: boot timers, drain polls, warm-up penalties and the
// policy ticks must be deterministic per point, so Workers 1 and 4 produce
// byte-identical outcomes — at more than one seed, since fleet trajectories
// are seed-dependent.
func TestAutoscaleParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment in -short mode")
	}
	e, ok := Lookup("autoscale")
	if !ok {
		t.Fatal("autoscale experiment not registered")
	}
	for _, seed := range []int64{1, 7} {
		serial := renderOutcome(e.Run(overloadPairConfig(seed, 1)))
		parallel := renderOutcome(e.Run(overloadPairConfig(seed, 4)))
		if serial != parallel {
			t.Errorf("seed %d: parallel outcome differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				seed, serial, parallel)
		}
	}
}
