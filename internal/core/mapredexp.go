package core

import (
	"fmt"

	"edisim/internal/hw"
	"edisim/internal/jobs"
	"edisim/internal/mapred"
	"edisim/internal/report"
	"edisim/internal/runner"
)

func init() {
	register(Experiment{ID: "fig12_fig15", Title: "Wordcount traces", Section: "5.2.1", Run: traceExperiment("wordcount")})
	register(Experiment{ID: "fig13_fig16", Title: "Wordcount2 traces", Section: "5.2.1", Run: traceExperiment("wordcount2")})
	register(Experiment{ID: "sec522_logcount", Title: "Logcount & logcount2", Section: "5.2.2", Run: runLogcount})
	register(Experiment{ID: "fig14_fig17", Title: "Pi estimation traces", Section: "5.2.3", Run: traceExperiment("pi")})
	register(Experiment{ID: "sec524_terasort", Title: "Terasort", Section: "5.2.4", Run: runTerasort})
	register(Experiment{ID: "fig18_fig19_table8", Title: "Scalability: time & energy across cluster sizes", Section: "5.3", Run: runScalability})
}

// PaperTable8 holds the published Table 8: (seconds, joules) per job and
// cluster label. Exported for the benches and EXPERIMENTS.md generation.
var PaperTable8 = map[string]map[string][2]float64{
	"wordcount":  {"35E": {310, 17670}, "17E": {1065, 29485}, "8E": {1817, 23673}, "4E": {3283, 21386}, "2D": {213, 40214}, "1D": {310, 30552}},
	"wordcount2": {"35E": {182, 10370}, "17E": {270, 7475}, "8E": {450, 5862}, "4E": {1192, 7765}, "2D": {66, 11695}, "1D": {93, 8124}},
	"logcount":   {"35E": {279, 15903}, "17E": {601, 16860}, "8E": {990, 12898}, "4E": {2233, 14546}, "2D": {206, 40803}, "1D": {516, 53303}},
	"logcount2":  {"35E": {115, 6555}, "17E": {118, 3267}, "8E": {125, 1629}, "4E": {162, 1055}, "2D": {59, 9486}, "1D": {88, 6905}},
	"pi":         {"35E": {200, 11445}, "17E": {334, 9247}, "8E": {577, 7517}, "4E": {1076, 7009}, "2D": {50, 9285}, "1D": {77, 6878}},
	"terasort":   {"35E": {750, 43440}, "17E": {1364, 37763}, "8E": {3736, 48675}, "4E": {8220, 53547}, "2D": {331, 64210}, "1D": {1336, 111422}},
}

// clusterConfig is one Table 8 cluster configuration.
type clusterConfig struct {
	Label    string
	Platform *hw.Platform
	Slaves   int
}

// clusterConfigs lists the Table 8 cluster configurations over the pair.
func clusterConfigs(micro, brawny *hw.Platform) []clusterConfig {
	return []clusterConfig{
		{"35E", micro, 35},
		{"17E", micro, 17},
		{"8E", micro, 8},
		{"4E", micro, 4},
		{"2D", brawny, 2},
		{"1D", brawny, 1},
	}
}

// runPairJobs executes the same job list on both paper-scale clusters (35
// micro slaves, 2 brawny slaves), fanning the independent simulations
// across the worker pool. Every run keeps the experiment's root seed — the
// same seed each run used when they were serial — so results are
// bit-identical to the serial path, just computed concurrently. Results
// are ordered [job0-micro, job0-brawny, job1-micro, ...].
func runPairJobs(cfg Config, jobNames []string) []*mapred.JobResult {
	micro, brawny := cfg.Pair()
	type cell struct {
		job    string
		p      *hw.Platform
		slaves int
	}
	var cells []cell
	for _, j := range jobNames {
		cells = append(cells, cell{j, micro, 35}, cell{j, brawny, 2})
	}
	return runner.Map(cfg.Workers, len(cells), func(i int) *mapred.JobResult {
		c := cells[i]
		r, err := jobs.Run(c.job, c.p, c.slaves, cfg.Seed)
		if err != nil {
			panic(fmt.Sprintf("core: %s on %s: %v", c.job, c.p.Label, err))
		}
		return r
	})
}

// TraceFigure converts a JobResult's sampled series (CPU/memory/progress/
// power at the 1 Hz power sample times) into a report figure — the Figure
// 12–17 shape. Exported for the public scenario package's trace workload.
func TraceFigure(name string, r *mapred.JobResult) *report.Figure {
	pts := r.Power.Points()
	x := make([]float64, len(pts))
	power := make([]float64, len(pts))
	cpu := make([]float64, len(pts))
	mem := make([]float64, len(pts))
	mp := make([]float64, len(pts))
	rp := make([]float64, len(pts))
	for i, p := range pts {
		x[i] = p.T
		power[i] = p.V
		cpu[i] = r.CPU.At(p.T)
		mem[i] = r.Mem.At(p.T)
		mp[i] = r.MapProgress.At(p.T)
		rp[i] = r.ReduceProgress.At(p.T)
	}
	fig := report.NewFigure(name, "time (s)", "% / W", x)
	fig.Add("CPU %", cpu)
	fig.Add("Mem %", mem)
	fig.Add("Map %", mp)
	fig.Add("Reduce %", rp)
	fig.Add("Power W", power)
	return fig
}

// reduceStartFraction reports when the reduce phase first progresses, as a
// fraction of total runtime (the paper: 61% on Edison vs 28% on Dell for
// wordcount).
func reduceStartFraction(r *mapred.JobResult) float64 {
	for _, p := range r.ReduceProgress.Points() {
		if p.V > 0 {
			return p.T / r.Duration
		}
	}
	return 1
}

func traceExperiment(job string) func(cfg Config) *Outcome {
	figNames := map[string][2]string{
		"wordcount":  {"Figure 12 — wordcount on %s cluster", "Figure 15 — wordcount on %s cluster"},
		"wordcount2": {"Figure 13 — wordcount2 on %s cluster", "Figure 16 — wordcount2 on %s cluster"},
		"pi":         {"Figure 14 — pi on %s cluster", "Figure 17 — pi on %s cluster"},
	}
	return func(cfg Config) *Outcome {
		o := &Outcome{}
		micro, brawny := cfg.Pair()
		names := figNames[job]
		results := runPairJobs(cfg, []string{job})
		re, rd := results[0], results[1]
		o.Figures = append(o.Figures,
			TraceFigure(fmt.Sprintf(names[0], micro.Label), re),
			TraceFigure(fmt.Sprintf(names[1], brawny.Label), rd))
		addTable8Comparisons(o, job, "35E", re)
		addTable8Comparisons(o, job, "2D", rd)
		if job == "wordcount" {
			o.AddComparison("Figure 12", fmt.Sprintf("%s reduce start (fraction of runtime)", micro.Label), 0.61, reduceStartFraction(re))
			o.AddComparison("Figure 15", fmt.Sprintf("%s reduce start (fraction of runtime)", brawny.Label), 0.28, reduceStartFraction(rd))
		}
		return o
	}
}

func addTable8Comparisons(o *Outcome, job, label string, r *mapred.JobResult) {
	p := PaperTable8[job][label]
	o.AddComparison(fmt.Sprintf("Table 8 / %s / %s", job, label), "time s", p[0], r.Duration)
	o.AddComparison(fmt.Sprintf("Table 8 / %s / %s", job, label), "energy J", p[1], float64(r.Energy))
}

func runLogcount(cfg Config) *Outcome {
	o := &Outcome{}
	jobNames := []string{"logcount", "logcount2"}
	results := runPairJobs(cfg, jobNames)
	for ji, job := range jobNames {
		addTable8Comparisons(o, job, "35E", results[2*ji])
		addTable8Comparisons(o, job, "2D", results[2*ji+1])
	}
	micro, _ := cfg.Pair()
	o.Notes = append(o.Notes, fmt.Sprintf(
		"logcount: %s reaches ≈2.6× work-done-per-joule; logcount2 shrinks the gap to ≈1.4× (container-allocation overhead removed)",
		micro.Label))
	return o
}

func runTerasort(cfg Config) *Outcome {
	o := &Outcome{}
	results := runPairJobs(cfg, []string{"terasort"})
	re, rd := results[0], results[1]
	addTable8Comparisons(o, "terasort", "35E", re)
	addTable8Comparisons(o, "terasort", "2D", rd)
	eff := (float64(rd.Energy) / float64(re.Energy))
	o.AddComparison("§5.2.4", "terasort energy-efficiency gain (x)", 1.48, eff)
	return o
}

func runScalability(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	names := jobs.Names()
	labels := clusterConfigs(micro, brawny)
	if cfg.Quick {
		names = []string{"wordcount2", "pi"}
		labels = labels[:1]
	}
	timeTab := report.NewTable("Figure 18 / Table 8 — job finish time (s)",
		append([]string{"job"}, labelNames(labels)...)...).
		WithUnits(uniformUnits("s", len(labels))...)
	energyTab := report.NewTable("Figure 19 / Table 8 — energy (J)",
		append([]string{"job"}, labelNames(labels)...)...).
		WithUnits(uniformUnits("J", len(labels))...)
	// The (job × cluster) grid is one flat sweep: every cell simulates a
	// whole Hadoop run on its own testbed, so cells parallelize perfectly.
	results := RunSweep(cfg, "fig18_fig19_table8", len(names)*len(labels),
		func(i int, seed int64) *mapred.JobResult {
			job, l := names[i/len(labels)], labels[i%len(labels)]
			r, err := jobs.Run(job, l.Platform, l.Slaves, seed)
			if err != nil {
				panic(err)
			}
			return r
		})
	for ji, job := range names {
		trow := []any{job}
		erow := []any{job}
		for li, l := range labels {
			r := results[ji*len(labels)+li]
			trow = append(trow, report.Num(r.Duration, "s"))
			erow = append(erow, report.Num(float64(r.Energy), "J"))
			addTable8Comparisons(o, job, l.Label, r)
		}
		timeTab.AddRow(trow...)
		energyTab.AddRow(erow...)
	}
	o.Tables = append(o.Tables, timeTab, energyTab)
	return o
}

// uniformUnits tags a label column followed by n columns of one unit.
func uniformUnits(unit string, n int) []string {
	out := make([]string, n+1)
	for i := 1; i <= n; i++ {
		out[i] = unit
	}
	return out
}

func labelNames(labels []clusterConfig) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = l.Label
	}
	return out
}
