package core

import (
	"fmt"

	"edisim/internal/autoscale"
	"edisim/internal/carbon"
	"edisim/internal/hw"
	"edisim/internal/load"
	"edisim/internal/power"
	"edisim/internal/report"
	"edisim/internal/sim"
	"edisim/internal/tco"
	"edisim/internal/web"
)

func init() {
	register(Experiment{
		ID:      "autoscale",
		Title:   "Elastic fleet autoscaling: policies, boot-delayed capacity, energy proportionality",
		Section: "beyond-paper",
		OptIn:   true,
		Run:     runAutoscale,
	})
}

// asProfile is one traffic shape of the autoscale ladder, parameterized by
// the fleet's connection capacity so every platform sees the same relative
// load.
type asProfile struct {
	key string
	mk  func(cap, dur float64) load.Profile
}

func autoscaleProfiles() []asProfile {
	return []asProfile{
		// A compressed day: trough at 15% of capacity, crest at 85%. The
		// whole point of elasticity — most of the day is not the peak.
		{"diurnal", func(cap, dur float64) load.Profile {
			return load.Diurnal{Min: 0.15 * cap, Max: 0.85 * cap, Period: dur}
		}},
		// A flash crowd from a quiet base: the shape boot delays hate.
		{"spike", func(cap, dur float64) load.Profile {
			return load.Spike{Base: 0.25 * cap, Peak: 0.85 * cap, Start: dur / 3, Duration: dur / 3}
		}},
	}
}

// asPolicy names one fleet-sizing strategy; mk returns nil for the static
// (fully provisioned, never scales) baseline.
type asPolicy struct {
	key string
	mk  func(prof load.Profile) *autoscale.Config
}

func autoscalePolicies() []asPolicy {
	return []asPolicy{
		{"static", func(load.Profile) *autoscale.Config { return nil }},
		{"target-util", func(load.Profile) *autoscale.Config {
			return &autoscale.Config{Policy: autoscale.TargetUtil{Target: 0.6}}
		}},
		{"queue-depth", func(load.Profile) *autoscale.Config {
			return &autoscale.Config{Policy: autoscale.QueueDepth{}}
		}},
		{"predictive", func(prof load.Profile) *autoscale.Config {
			return &autoscale.Config{Policy: autoscale.Predictive{Profile: prof}}
		}},
	}
}

type asPoint struct {
	res       web.Result
	sloMet    float64   // fraction of controller windows that met the SLO
	ep        float64   // energy-proportionality score of the web tier
	perW      float64   // goodput per cluster watt (boot + idle priced in)
	webEnergy float64   // web-tier joules over the window
	actives   []float64 // rotation size per controller window
}

// runAutoscale asks the elasticity question the paper's fixed testbeds
// cannot: when traffic has a shape, which fleet tracks it cheapest? Every
// platform runs a diurnal cycle and a flash-crowd spike under each sizing
// policy (static, target-utilization, queue/shed reactive, predictive),
// with the platform's own boot delay and cold-cache warm-up charged at
// busy draw. Reported per point: SLO-met fraction, goodput, req/s/W with
// boot and idle-parked energy included, scale events, and an
// energy-proportionality score — ideal web-tier joules (offered work at
// busy draw) over actual. Micro fleets win on granularity (24 small steps,
// 2 s boots); brawny fleets amortize boots but park in units of half the
// fleet — the tables show which effect dominates per platform.
func runAutoscale(cfg Config) *Outcome {
	o := &Outcome{}
	plats := cfg.MatrixPlatforms()
	dur := webDuration(cfg) * 2
	profiles := autoscaleProfiles()
	policies := autoscalePolicies()
	slo := overloadSLO()

	points := RunSweep(cfg, "autoscale/matrix", len(plats)*len(profiles)*len(policies),
		func(i int, seed int64) asPoint {
			p := plats[i/(len(profiles)*len(policies))]
			rest := i % (len(profiles) * len(policies))
			prof := profiles[rest/len(policies)].mk(connCapacity(p), dur)
			ac := policies[rest%len(policies)].mk(prof)

			dep := overloadTestbed(cfg, p, seed)
			rc := overloadRunConfig(dur)
			rc.Profile = prof
			s := slo
			wins, burned := 0, 0
			var actives []float64
			s.Observer = func(w web.SLOWindow) {
				actives = append(actives, float64(w.Active))
				if w.T > 0.1*dur && w.T <= dur {
					wins++
					if w.Burning {
						burned++
					}
				}
			}
			rc.SLO = &s
			rc.Autoscale = ac
			dep.WarmFor(rc)

			// Meter the web tier alone over the measurement window: the
			// energy-proportionality score compares what the offered work
			// would cost on always-busy servers against what the tier
			// actually burned (idle floors, parked zeros, boot burn).
			webNodes := make([]*hw.Node, len(dep.Web))
			for wi, w := range dep.Web {
				webNodes[wi] = w.Node
			}
			meter := power.NewMeter("web-tier", webNodes)
			origin := dep.Eng.Now()
			var webEnergy float64
			dep.Eng.At(origin+sim.Time(0.1*dur), func() { meter.Reset() })
			dep.Eng.At(origin+sim.Time(dur), func() { webEnergy = float64(meter.Energy()) })

			res := dep.Run(rc)

			// Ideal joules price offered work at the armed model's busy draw,
			// so the EP score stays consistent with what the nodes meter.
			ideal := float64(res.Offered) / p.Web.ConnRate * float64(p.PowerModelFor(cfg.Energy).BusyDraw())
			ep := safeDiv(ideal, webEnergy, 0)
			if ep > 1 {
				ep = 1
			}
			return asPoint{
				res:       res,
				sloMet:    1 - safeDiv(float64(burned), float64(wins), 0),
				ep:        ep,
				perW:      safeDiv(res.Throughput, float64(res.MeanPower), 0),
				webEnergy: webEnergy,
				actives:   actives,
			}
		})
	at := func(pi, fi, ci int) asPoint {
		return points[pi*len(profiles)*len(policies)+fi*len(policies)+ci]
	}

	armed := cfg.CarbonArmed()
	asCols := []string{"platform", "profile", "policy", "SLO met", "goodput req/s", "power W", "req/s/W", "mean active", "scale events", "boots", "boot J", "EP score"}
	asUnits := []string{"", "", "", "", "req/s", "W", "req/s/W", "servers", "", "", "J", ""}
	if armed {
		asCols = append(asCols, "gCO2e/h", "req per gCO2e", fmt.Sprintf("energy $/h (%s)", cfg.Grid().Region))
		asUnits = append(asUnits, "g/h", "req/g", "$/h")
	}
	regionPrice, _ := tco.RegionPrice(cfg.Grid().Region)
	tab := report.NewTable("Autoscaling ladder — fleet elasticity per platform, boot and idle energy priced in (SLO: p99 <= 0.5 s, availability >= 99%)",
		asCols...).WithUnits(asUnits...)
	for pi, p := range plats {
		for fi, prof := range profiles {
			for ci, pol := range policies {
				pt := at(pi, fi, ci)
				r := pt.res
				meanActive := r.MeanActive
				if pol.key == "static" {
					meanActive = float64(p.Fleet.Web)
				}
				row := []any{p.Label, prof.key, pol.key,
					report.Num(pt.sloMet, ""),
					report.Num(r.Throughput, "req/s"),
					report.Num(float64(r.MeanPower), "W"),
					report.Num(pt.perW, "req/s/W"),
					report.Num(meanActive, "servers"),
					report.Count(r.ScaleUps+r.ScaleDowns, ""),
					report.Count(r.Boots, ""),
					report.Num(float64(r.BootEnergy), "J"),
					report.Num(pt.ep, "")}
				if armed {
					gph := gramsPerHourAt(cfg, float64(r.MeanPower))
					perG := safeDiv(r.Throughput*3600, gph, 0)
					dollarsPerHour := float64(r.MeanPower) / 1000 * carbon.DefaultPUE * regionPrice
					row = append(row, report.Num(gph, "g/h"), report.Num(perG, "req/g"),
						report.Num(dollarsPerHour, "$/h"))
				}
				tab.AddRow(row...)
			}
		}
	}
	o.Tables = append(o.Tables, tab)

	// Per-platform pins on the diurnal cycle: the best elastic policy at SLO
	// parity (within 5 points of static attainment) against the static
	// fleet's energy and efficiency. Ratio < 1 on energy means elasticity
	// paid for its boots; the regression test requires that on the micro
	// fleets, whose 1–2 W servers and 2–3 s boots make granularity cheap.
	const sloParity = 0.05
	for pi, p := range plats {
		static := at(pi, 0, 0)
		bestEnergy := 0.0 // ratio vs static; 0 = no elastic policy at parity
		bestPerW := 0.0
		bestEP := static.ep
		for ci := 1; ci < len(policies); ci++ {
			pt := at(pi, 0, ci)
			if pt.ep > bestEP {
				bestEP = pt.ep
			}
			if pt.sloMet < static.sloMet-sloParity {
				continue
			}
			if ratio := safeDiv(float64(pt.res.Energy), float64(static.res.Energy), 0); bestEnergy == 0 || ratio < bestEnergy {
				bestEnergy = ratio
			}
			if ratio := safeDiv(pt.perW, static.perW, 0); ratio > bestPerW {
				bestPerW = ratio
			}
		}
		o.AddComparison("autoscale / diurnal", p.Label+" best elastic energy vs static", 1, bestEnergy)
		o.AddComparison("autoscale / diurnal", p.Label+" best elastic req/s/W vs static", 1, bestPerW)
		o.AddComparison("autoscale / proportionality", p.Label+" best EP score", 1, bestEP)
		o.AddComparison("autoscale / proportionality", p.Label+" static EP score", 1, static.ep)
	}

	// Fleet-size trace on the baseline micro's diurnal cycle: the shape of
	// each policy following (or failing to follow) the day curve.
	micro, _ := cfg.Pair()
	figPi := 0
	for pi, p := range plats {
		if p.Label == micro.Label {
			figPi = pi
			break
		}
	}
	trace := at(figPi, 0, 0).actives
	xs := make([]float64, len(trace))
	for i := range xs {
		xs[i] = float64(i + 1) // controller windows are 1 s wide
	}
	fig := report.NewFigure(
		fmt.Sprintf("Autoscale — serving fleet vs time, %s diurnal cycle", plats[figPi].Label),
		"time (s)", "servers in rotation", xs)
	for ci, pol := range policies {
		ys := at(figPi, 0, ci).actives
		if len(ys) > len(xs) {
			ys = ys[:len(xs)]
		}
		fig.Add(pol.key, ys)
	}
	o.Figures = append(o.Figures, fig)

	o.Notes = append(o.Notes,
		"every policy starts fully provisioned and must discover the trough; booting servers burn busy draw for the platform's boot delay and join cold (warm-up speed penalty), parked servers draw zero",
		"req/s/W divides goodput by whole-cluster mean power, so boot burn and anything left idling is priced in; the EP score is ideal web-tier joules (offered conns / conn rate, at busy draw) over measured web-tier joules",
		"scale-down always drains before parking: a server leaves the rotation, finishes its in-flight work, then powers off — the drain pin in internal/web proves no request is ever killed by elasticity",
		"the predictive policy reads the declared load profile one boot delay ahead, so it pre-boots for the diurnal crest but is blind to anything the profile does not model",
	)
	if armed {
		o.Notes = append(o.Notes, carbonLensNote(cfg))
	}
	return o
}
