// Package core is the evaluation harness: every table and figure of the
// paper is registered here as a runnable Experiment that regenerates its
// data on the simulated testbed and records paper-vs-measured comparisons.
// cmd/paper, the examples and the root benchmarks all drive this registry.
package core

import (
	"fmt"
	"sort"

	"edisim/internal/carbon"
	"edisim/internal/faults"
	"edisim/internal/hw"
	"edisim/internal/report"
)

// Config controls experiment fidelity and platform selection.
type Config struct {
	// Seed is the root random seed; identical seeds reproduce results
	// bit-for-bit.
	Seed int64
	// Quick trades statistical tightness for speed (shorter httperf
	// windows, fewer sweep points) — used by unit tests and -short benches.
	Quick bool
	// Workers bounds how many sweep points run concurrently (cmd/paper's
	// -j). 0 or 1 runs serially. Results are bit-identical for any value:
	// every point runs on its own engine with a seed derived from the
	// point's identity, and results are assembled in point order.
	Workers int

	// Micro/Brawny override the compared platform pair; nil selects the
	// catalog baseline (the paper's Edison / Dell R620 testbed).
	Micro, Brawny *hw.Platform
	// Matrix lists the platforms cross-platform matrix experiments cover;
	// empty selects the whole catalog (cmd/paper's -platforms).
	Matrix []*hw.Platform

	// Faults overrides the fault_tolerance experiment's built-in fault plan
	// (edisim.Scenario.Faults, cmd/paper's fault flags). Nil keeps the
	// built-in schedule; the default paper experiments never inject faults
	// regardless.
	Faults *faults.Plan
	// Interrupt, when non-nil, is polled by long-running experiment engines;
	// returning true aborts the simulation early. edisim.Run wires context
	// cancellation here.
	Interrupt func() bool

	// Energy selects the node power model for every testbed the experiments
	// build. The zero value keeps the paper's calibrated linear model —
	// byte-identical defaults; hw.PowerTDPCurve arms the component model.
	Energy hw.PowerModelKind
	// Region attributes metered energy to a grid region for carbon and
	// price accounting ("" = none). Callers validate the key against
	// carbon.Regions before it reaches experiments.
	Region string
}

// CarbonArmed reports whether the energy/carbon layers are in play — either
// a non-default power model or a region was selected — and therefore whether
// matrix experiments add their gCO2e and per-region columns.
func (c Config) CarbonArmed() bool { return c.Energy != hw.PowerLinear || c.Region != "" }

// Grid resolves the carbon-accounting grid: the configured region, or the
// world average when only the power model was armed.
func (c Config) Grid() carbon.Grid {
	if c.Region == "" {
		return carbon.MustLookup("global")
	}
	return carbon.MustLookup(c.Region)
}

// Interrupted reports whether the run has been cancelled (nil-safe).
func (c Config) Interrupted() bool { return c.Interrupt != nil && c.Interrupt() }

// Pair resolves the compared platform pair, defaulting to the catalog
// baseline.
func (c Config) Pair() (micro, brawny *hw.Platform) {
	micro, brawny = hw.BaselinePair()
	if c.Micro != nil {
		micro = c.Micro
	}
	if c.Brawny != nil {
		brawny = c.Brawny
	}
	return micro, brawny
}

// MatrixPlatforms resolves the platform set for cross-platform matrix
// experiments: Config.Matrix when set, the whole catalog otherwise.
func (c Config) MatrixPlatforms() []*hw.Platform {
	if len(c.Matrix) > 0 {
		return c.Matrix
	}
	return hw.Platforms()
}

// DefaultConfig runs experiments at full fidelity with seed 1.
func DefaultConfig() Config { return Config{Seed: 1} }

// Outcome is what an experiment produces: renderable artifacts plus
// paper-vs-measured comparisons for EXPERIMENTS.md.
type Outcome struct {
	Tables      []*report.Table
	Figures     []*report.Figure
	Comparisons []report.Comparison
	Notes       []string
}

// AddComparison records one paper-vs-measured pair.
func (o *Outcome) AddComparison(artifact, metric string, paper, measured float64) {
	o.Comparisons = append(o.Comparisons, report.Comparison{
		Artifact: artifact, Metric: metric, Paper: paper, Measured: measured,
	})
}

// Experiment regenerates one paper artifact (or a tightly coupled group).
type Experiment struct {
	ID      string // e.g. "fig4_fig7"
	Title   string
	Section string // paper section
	// OptIn experiments go beyond the paper's artifact set (cross-platform
	// matrices); cmd/paper runs them only when selected with -only, so the
	// default reproduction output stays exactly the paper's.
	OptIn bool
	Run   func(cfg Config) *Outcome
}

var registry []Experiment

func register(e Experiment) {
	for _, existing := range registry {
		if existing.ID == e.ID {
			panic(fmt.Sprintf("core: duplicate experiment %q", e.ID))
		}
	}
	registry = append(registry, e)
}

// Experiments returns all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists registered experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
