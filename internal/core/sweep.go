package core

import (
	"fmt"

	"edisim/internal/rng"
	"edisim/internal/runner"
)

// Sweep is a named grid of independent measurement points — one httperf
// concurrency curve, a (job × cluster) scalability grid, a thread-count
// ladder. Every sweep-style experiment is expressed through this type so
// the runner can split it: points run on their own sim.Engine with a seed
// derived from (experiment seed, sweep name, point index), never from
// scheduling order, which keeps outputs bit-identical whatever
// Config.Workers says.
type Sweep[P, R any] struct {
	// Name namespaces the per-point seed derivation. Two sweeps with
	// different names draw independent randomness even at the same index.
	Name   string
	Points []P
	// Point measures one grid cell. It must not share mutable state with
	// other points: build a fresh testbed/engine from seed inside.
	Point func(i int, p P, seed int64) R
}

// Run evaluates every point, fanning across cfg.Workers goroutines, and
// returns results in point order.
func (s Sweep[P, R]) Run(cfg Config) []R {
	return runner.Map(cfg.Workers, len(s.Points), func(i int) R {
		return s.Point(i, s.Points[i], cfg.PointSeed(s.Name, i))
	})
}

// PointSeed derives the root seed for point i of the named sweep. The
// derivation depends only on (cfg.Seed, name, i): stable across runs,
// worker counts and point orderings.
func (cfg Config) PointSeed(name string, i int) int64 {
	return rng.New(cfg.Seed).Derive(fmt.Sprintf("sweep/%s/%d", name, i)).Seed()
}

// RunSweep is the function-literal form of Sweep for grids whose points are
// described by the index alone.
func RunSweep[R any](cfg Config, name string, n int, point func(i int, seed int64) R) []R {
	return Sweep[int, R]{Name: name, Points: seqInts(n), Point: func(i, _ int, seed int64) R {
		return point(i, seed)
	}}.Run(cfg)
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
