package core

import (
	"fmt"

	"edisim/internal/hw"
	"edisim/internal/jobs"
	"edisim/internal/mapred"
	"edisim/internal/report"
	"edisim/internal/tco"
	"edisim/internal/units"
	"edisim/internal/web"
)

func init() {
	register(Experiment{
		ID:      "platform_matrix",
		Title:   "Cross-platform web & TeraSort matrix",
		Section: "beyond-paper",
		OptIn:   true,
		Run:     runPlatformMatrix,
	})
}

// matrixConcurrencies is the httperf axis swept per platform to locate the
// peak; the catalog's fleet sizes keep every platform in its sensible
// operating band across this range.
func matrixConcurrencies(cfg Config) []float64 {
	if cfg.Quick {
		return []float64{256, 1024}
	}
	return []float64{128, 256, 512, 1024, 2048}
}

// runPlatformMatrix runs the web-serving and TeraSort workloads across the
// configured platform set (cmd/paper's -platforms; the whole catalog by
// default), each on its catalog fleet, and reports throughput-per-watt and
// 3-year-TCO matrices. This is the experiment the platform catalog exists
// for: adding a platform to hw makes it show up here with zero code.
func runPlatformMatrix(cfg Config) *Outcome {
	o := &Outcome{}
	plats := cfg.MatrixPlatforms()
	concs := matrixConcurrencies(cfg)

	// --- Web serving: one sweep cell per (platform, concurrency).
	type webCell struct {
		p    *hw.Platform
		conc float64
	}
	s := Sweep[webCell, web.Result]{Name: "platform_matrix/web"}
	for _, p := range plats {
		for _, conc := range concs {
			s.Points = append(s.Points, webCell{p, conc})
		}
	}
	s.Point = func(_ int, c webCell, seed int64) web.Result {
		return runWebPoint(cfg, c.p, c.p.Fleet.Web, c.p.Fleet.Cache, web.RunConfig{
			Concurrency: c.conc,
			Duration:    webDuration(cfg),
		}, seed)
	}
	webResults := s.Run(cfg)

	armed := cfg.CarbonArmed()
	webCols := []string{"platform", "web", "cache", "peak req/s", "W at peak", "req/s per W", "3y TCO $", "req/s per TCO-k$"}
	webUnits := []string{"", "nodes", "nodes", "req/s", "W", "req/s/W", "$", "req/s/k$"}
	if armed {
		webCols = append(webCols, "gCO2e/h at peak", "req per gCO2e", regionCostHeader(cfg))
		webUnits = append(webUnits, "g/h", "req/g", "$")
	}
	webTab := report.NewTable("Platform matrix — web serving (catalog fleets, 93% cache hit)",
		webCols...).WithUnits(webUnits...)
	for pi, p := range plats {
		var peak, peakPower float64
		for _, r := range webResults[pi*len(concs) : (pi+1)*len(concs)] {
			if r.Throughput > peak {
				peak = r.Throughput
				peakPower = float64(r.MeanPower)
			}
		}
		perWatt := 0.0
		if peakPower > 0 {
			perWatt = peak / peakPower
		}
		// Web-service TCO at the paper's high-utilization point (75%),
		// priced with the armed power model's endpoints.
		cost := tco.MustCompute(tco.ForPlatformModel(p, p.Fleet.Web+p.Fleet.Cache, 0.75, cfg.Energy)).Total()
		perK := 0.0
		if cost > 0 {
			perK = peak / (cost / 1000)
		}
		row := []any{p.Label, p.Fleet.Web, p.Fleet.Cache, report.Num(peak, "req/s"),
			report.Num(peakPower, "W"), report.Num(perWatt, "req/s/W"), report.Num(cost, "$"), report.Num(perK, "req/s/k$")}
		if armed {
			gph := gramsPerHourAt(cfg, peakPower)
			reqPerG := 0.0
			if gph > 0 {
				reqPerG = peak * 3600 / gph
			}
			row = append(row, report.Num(gph, "g/h"), report.Num(reqPerG, "req/g"),
				report.Num(regionalFleetCost(cfg, p, p.Fleet.Web+p.Fleet.Cache, 0.75), "$"))
			o.AddComparison("platform matrix / web", p.Label+" req per gCO2e", 0, reqPerG)
		}
		webTab.AddRow(row...)
		o.AddComparison("platform matrix / web", p.Label+" peak req/s per W", 0, perWatt)
	}
	o.Tables = append(o.Tables, webTab)

	// --- TeraSort: one cell per platform, each a whole Hadoop run.
	teraResults := RunSweep(cfg, "platform_matrix/terasort", len(plats),
		func(i int, seed int64) *mapred.JobResult {
			p := plats[i]
			r, err := jobs.RunEnergy("terasort", p, p.Fleet.Slaves, seed, cfg.Energy)
			if err != nil {
				panic(fmt.Sprintf("core: terasort on %s: %v", p.Label, err))
			}
			return r
		})

	teraCols := []string{"platform", "slaves", "time s", "energy J", "MB per J", "3y TCO $", "GB per TCO-$"}
	teraUnits := []string{"", "nodes", "s", "J", "MB/J", "$", "GB/$"}
	if armed {
		teraCols = append(teraCols, "gCO2e per run", "MB per gCO2e", regionCostHeader(cfg))
		teraUnits = append(teraUnits, "g", "MB/g", "$")
	}
	teraTab := report.NewTable("Platform matrix — TeraSort (10 GB, catalog fleets)",
		teraCols...).WithUnits(teraUnits...)
	for pi, p := range plats {
		r := teraResults[pi]
		mbPerJ := 0.0
		if r.Energy > 0 {
			mbPerJ = float64(jobs.TerasortBytes) / float64(units.MB) / float64(r.Energy)
		}
		// Big-data TCO: micro fleets run pinned near 100% as in Table 10;
		// brawny fleets at the paper's high-utilization point.
		util := 0.74
		if p.Micro {
			util = 1.0
		}
		cost := tco.MustCompute(tco.ForPlatformModel(p, p.Fleet.Slaves, util, cfg.Energy)).Total()
		perDollar := 0.0
		if cost > 0 {
			perDollar = float64(jobs.TerasortBytes) / float64(units.GB) / cost
		}
		row := []any{p.Label, p.Fleet.Slaves, report.Num(r.Duration, "s"), report.Num(float64(r.Energy), "J"),
			report.Num(mbPerJ, "MB/J"), report.Num(cost, "$"), report.Num(perDollar, "GB/$")}
		if armed {
			grams := gramsFromJoules(cfg, r.Energy)
			mbPerG := 0.0
			if grams > 0 {
				mbPerG = float64(jobs.TerasortBytes) / float64(units.MB) / grams
			}
			row = append(row, report.Num(grams, "g"), report.Num(mbPerG, "MB/g"),
				report.Num(regionalFleetCost(cfg, p, p.Fleet.Slaves, util), "$"))
			o.AddComparison("platform matrix / terasort", p.Label+" MB per gCO2e", 0, mbPerG)
		}
		teraTab.AddRow(row...)
		o.AddComparison("platform matrix / terasort", p.Label+" MB per J", 0, mbPerJ)
	}
	o.Tables = append(o.Tables, teraTab)

	o.Notes = append(o.Notes,
		"fleets and calibration are catalog data (internal/hw, PLATFORMS.md); peak is the best point of the swept concurrency axis")
	if armed {
		o.Notes = append(o.Notes, carbonLensNote(cfg))
	}
	return o
}
