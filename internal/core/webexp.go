package core

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/report"
	"edisim/internal/stats"
	"edisim/internal/web"
)

func init() {
	register(Experiment{ID: "fig4_fig7", Title: "Web throughput & delay, no image", Section: "5.1.2", Run: runWebLight})
	register(Experiment{ID: "fig5_fig8", Title: "Web sweeps, higher image % / lower cache hit", Section: "5.1.2", Run: runWebMixes})
	register(Experiment{ID: "fig6_fig9", Title: "Web throughput & delay, 20% image", Section: "5.1.2", Run: runWebHeavy})
	register(Experiment{ID: "fig10_fig11", Title: "Response delay distributions", Section: "5.1.2", Run: runWebDelayDist})
	register(Experiment{ID: "table7", Title: "Delay decomposition", Section: "5.1.2", Run: runTable7})
}

// webDuration picks the per-point simulated window.
func webDuration(cfg Config) float64 {
	if cfg.Quick {
		return 4
	}
	return 15
}

func webConcurrencies(cfg Config) []float64 {
	if cfg.Quick {
		return []float64{64, 512, 1024}
	}
	return []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
}

// runWebPoint executes one concurrency level on a fresh single-platform
// testbed, under the config's power model.
func runWebPoint(cfg Config, p *hw.Platform, nWeb, nCache int, rc web.RunConfig, seed int64) web.Result {
	tb := cluster.New(cluster.Config{
		Groups:  []cluster.GroupConfig{{Platform: p, Nodes: nWeb + nCache}},
		DBNodes: 2, Clients: 8,
		Energy: cfg.Energy,
	})
	dep := web.NewDeployment(tb, p, nWeb, nCache, seed)
	dep.WarmFor(rc)
	return dep.Run(rc)
}

// webCurve is one line of a web figure: a tier configuration and workload
// mix swept across the concurrency axis.
type webCurve struct {
	label        string
	p            *hw.Platform
	nWeb, nCache int
	image, hit   float64
}

// webPoint is one (curve, concurrency) cell of a figure's sweep grid.
type webPoint struct {
	curve webCurve
	conc  float64
}

// sweepWebCurves runs every (curve × concurrency) cell of an experiment as
// one flat Sweep — the runner splits cells, not whole curves, so a few
// expensive saturated points don't serialize behind each other — and
// regroups the results per curve, in concurrency order.
func sweepWebCurves(cfg Config, name string, curves []webCurve) [][]web.Result {
	concs := webConcurrencies(cfg)
	s := Sweep[webPoint, web.Result]{Name: name}
	for _, c := range curves {
		for _, conc := range concs {
			s.Points = append(s.Points, webPoint{curve: c, conc: conc})
		}
	}
	s.Point = func(_ int, p webPoint, seed int64) web.Result {
		return runWebPoint(cfg, p.curve.p, p.curve.nWeb, p.curve.nCache, web.RunConfig{
			Concurrency: p.conc,
			ImageFrac:   p.curve.image,
			CacheHit:    p.curve.hit,
			Duration:    webDuration(cfg),
		}, seed)
	}
	flat := s.Run(cfg)
	out := make([][]web.Result, len(curves))
	for i := range curves {
		out[i] = flat[i*len(concs) : (i+1)*len(concs)]
	}
	return out
}

// curveSeries extracts the plotted series from one curve's results.
func curveSeries(results []web.Result) (tput, delay, power []float64) {
	for _, r := range results {
		tput = append(tput, r.Throughput)
		delay = append(delay, r.MeanDelay*1e3)
		power = append(power, float64(r.MeanPower))
	}
	return
}

// webScales lists the Table 6 tier sizes over the configured pair,
// trimmed in Quick mode.
func webScales(cfg Config) []cluster.WebScale {
	all := cluster.Table6For(cfg.Pair())
	if cfg.Quick {
		return all[:1]
	}
	return all
}

// runWebScaledSweeps renders one scaled throughput/delay/power figure set.
// id is the stable experiment ID, used (not the display titles, which may
// be reworded) to namespace per-point seed derivation.
func runWebScaledSweeps(cfg Config, id string, image float64, figTput, figDelay string) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	x := webConcurrencies(cfg)
	ft := report.NewFigure(figTput, "conn/s", "req/s", x)
	fd := report.NewFigure(figDelay, "conn/s", "ms", x)
	fp := report.NewFigure(figTput+" (power)", "conn/s", "W", x)

	var curves []webCurve
	for _, s := range webScales(cfg) {
		for _, tier := range s.Tiers {
			if tier.Web > 0 {
				curves = append(curves, webCurve{
					label: fmt.Sprintf("%d %s", tier.Web, tier.Platform.Label),
					p:     tier.Platform, nWeb: tier.Web, nCache: tier.Cache,
					image: image, hit: 0.93,
				})
			}
		}
	}

	// Peak tracking at the full-scale tier sizes (Table 6's first row).
	full := cluster.Table6For(micro, brawny)[0]
	microFull := full.Tier(micro).Web
	brawnyFull := full.Tier(brawny).Web
	var microPeak, brawnyPeak, microPeakPower, brawnyPeakPower float64
	for ci, results := range sweepWebCurves(cfg, id, curves) {
		c := curves[ci]
		tput, delay, power := curveSeries(results)
		ft.Add(c.label, tput)
		fd.Add(c.label, delay)
		fp.Add(c.label, power)
		for i, v := range tput {
			if c.p == micro && c.nWeb == microFull && v > microPeak {
				microPeak = v
				microPeakPower = power[i]
			}
			if c.p == brawny && c.nWeb == brawnyFull && v > brawnyPeak {
				brawnyPeak = v
				brawnyPeakPower = power[i]
			}
		}
	}
	o.Figures = append(o.Figures, ft, fd, fp)

	if microPeak > 0 && brawnyPeak > 0 {
		// Work-done-per-joule at peak: the paper's 3.5× headline.
		eff := (microPeak / microPeakPower) / (brawnyPeak / brawnyPeakPower)
		o.AddComparison(figTput, fmt.Sprintf("peak %s req/s", micro.Label), 7500, microPeak)
		o.AddComparison(figTput, fmt.Sprintf("peak %s req/s", brawny.Label), 7500, brawnyPeak)
		o.AddComparison(figTput, "energy-efficiency ratio (x)", 3.5, eff)
	}
	return o
}

func runWebLight(cfg Config) *Outcome {
	micro, brawny := cfg.Pair()
	o := runWebScaledSweeps(cfg, "fig4_fig7", 0.0, "Figure 4", "Figure 7")
	o.Notes = append(o.Notes, fmt.Sprintf(
		"lightest load: 93%% cache hit, no image queries; %s errors beyond 1024 conn/s, %s beyond 2048",
		micro.Label, brawny.Label))
	return o
}

func runWebHeavy(cfg Config) *Outcome {
	micro, _ := cfg.Pair()
	o := runWebScaledSweeps(cfg, "fig6_fig9", 0.20, "Figure 6", "Figure 9")
	o.Notes = append(o.Notes, fmt.Sprintf(
		"heaviest fair load: 20%% image queries utilize half of each %s NIC; throughput ≈85%% of the lightest workload",
		micro.Label))
	return o
}

func runWebMixes(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	x := webConcurrencies(cfg)
	ft := report.NewFigure("Figure 5", "conn/s", "req/s", x)
	fd := report.NewFigure("Figure 8", "conn/s", "ms", x)
	mixes := []struct {
		label      string
		image, hit float64
	}{
		{"cache=77%", 0.0, 0.77},
		{"cache=60%", 0.0, 0.60},
		{"img=6%", 0.06, 0.93},
		{"img=10%", 0.10, 0.93},
	}
	if cfg.Quick {
		mixes = mixes[:2]
	}
	full := cluster.Table6For(micro, brawny)[0]
	mt, bt := full.Tier(micro), full.Tier(brawny)
	var curves []webCurve
	for _, m := range mixes {
		curves = append(curves,
			webCurve{label: micro.Label + " " + m.label, p: micro, nWeb: mt.Web, nCache: mt.Cache, image: m.image, hit: m.hit},
			webCurve{label: brawny.Label + " " + m.label, p: brawny, nWeb: bt.Web, nCache: bt.Cache, image: m.image, hit: m.hit})
	}
	for ci, results := range sweepWebCurves(cfg, "fig5_fig8", curves) {
		tput, delay, _ := curveSeries(results)
		ft.Add(curves[ci].label, tput)
		fd.Add(curves[ci].label, delay)
	}
	o.Figures = append(o.Figures, ft, fd)
	return o
}

func runWebDelayDist(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	// ≈6000 req/s at 20% image: concurrency 768 × 8 calls.
	rc := web.RunConfig{Concurrency: 768, ImageFrac: 0.20, CacheHit: 0.93, Duration: webDuration(cfg) * 2}
	full := cluster.Table6For(micro, brawny)[0]
	mt, bt := full.Tier(micro), full.Tier(brawny)
	sides := []struct {
		p            *hw.Platform
		nWeb, nCache int
		name         string
	}{
		{micro, mt.Web, mt.Cache, "Figure 10 — " + micro.Label},
		{brawny, bt.Web, bt.Cache, "Figure 11 — " + brawny.Label},
	}
	results := RunSweep(cfg, "fig10_fig11", len(sides), func(i int, seed int64) web.Result {
		return runWebPoint(cfg, sides[i].p, sides[i].nWeb, sides[i].nCache, rc, seed)
	})
	for i, side := range sides {
		r := results[i]
		h := stats.NewHistogram(0, 8, 32)
		for _, v := range r.ConnDelays.Values() {
			h.Add(v)
		}
		x := make([]float64, h.NumBins())
		y := make([]float64, h.NumBins())
		for i := range x {
			x[i] = h.BinCenter(i)
			y[i] = float64(h.Bin(i))
		}
		fig := report.NewFigure(side.name+" delay distribution", "delay (s)", "# samples", x)
		fig.Add("samples", y)
		o.Figures = append(o.Figures, fig)

		// The retry spikes: share of samples beyond 0.5 s (SYN retries).
		var late int64
		for i := 2; i < h.NumBins(); i++ {
			late += h.Bin(i)
		}
		o.AddComparison(side.name, "p99 conn delay (s)", 0, r.ConnDelays.Quantile(0.99))
		_ = late
	}
	o.Notes = append(o.Notes, fmt.Sprintf(
		"%s histogram shows mass near 1s/3s/7s (SYN retransmission backoff); %s spreads thinner across its %d servers",
		brawny.Label, micro.Label, mt.Web))
	return o
}

func runTable7(cfg Config) *Outcome {
	o := &Outcome{}
	micro, brawny := cfg.Pair()
	t := report.NewTable("Table 7 — delay decomposition (ms)",
		"req/s", "DB (E)", "DB (D)", "cache (E)", "cache (D)", "total (E)", "total (D)").
		WithUnits("req/s", "ms", "ms", "ms", "ms", "ms", "ms")
	rates := []float64{480, 960, 1920, 3840, 7680}
	if cfg.Quick {
		rates = []float64{480, 3840}
	}
	paper := map[float64][6]float64{
		480:  {5.44, 1.61, 4.61, 0.37, 9.18, 1.43},
		960:  {5.25, 1.56, 9.37, 0.38, 14.79, 1.60},
		1920: {5.33, 1.56, 76.7, 0.39, 83.4, 1.73},
		3840: {8.74, 1.60, 105.1, 0.46, 114.7, 1.70},
		7680: {10.99, 1.98, 212.0, 0.74, 225.1, 2.93},
	}
	full := cluster.Table6For(micro, brawny)[0]
	mt, bt := full.Tier(micro), full.Tier(brawny)
	// One sweep cell per (rate, platform): micro at even indices, brawny odd.
	results := RunSweep(cfg, "table7", 2*len(rates), func(i int, seed int64) web.Result {
		rc := web.RunConfig{Concurrency: rates[i/2] / 8, ImageFrac: 0.20, CacheHit: 0.93, Duration: webDuration(cfg)}
		if i%2 == 0 {
			return runWebPoint(cfg, micro, mt.Web, mt.Cache, rc, seed)
		}
		return runWebPoint(cfg, brawny, bt.Web, bt.Cache, rc, seed)
	})
	for ri, rate := range rates {
		re, rd := results[2*ri], results[2*ri+1]
		row := []float64{
			re.DBDelay.Mean() * 1e3, rd.DBDelay.Mean() * 1e3,
			re.CacheDelay.Mean() * 1e3, rd.CacheDelay.Mean() * 1e3,
			re.WebTotal.Mean() * 1e3, rd.WebTotal.Mean() * 1e3,
		}
		t.AddRow(report.Num(rate, "req/s"), report.Num(row[0], "ms"), report.Num(row[1], "ms"),
			report.Num(row[2], "ms"), report.Num(row[3], "ms"), report.Num(row[4], "ms"), report.Num(row[5], "ms"))
		p := paper[rate]
		names := []string{"DB delay E ms", "DB delay D ms", "cache delay E ms", "cache delay D ms", "total E ms", "total D ms"}
		for i, n := range names {
			o.AddComparison(fmt.Sprintf("Table 7 @ %.0f req/s", rate), n, p[i], row[i])
		}
	}
	o.Tables = append(o.Tables, t)
	return o
}
