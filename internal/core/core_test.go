package core

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	required := []string{
		"table2", "table3", "sec41_dhrystone", "fig2_fig3", "sec42_memory",
		"table5", "sec44_network", "fig4_fig7", "fig5_fig8", "fig6_fig9",
		"fig10_fig11", "table7", "fig12_fig15", "fig13_fig16", "sec522_logcount",
		"fig14_fig17", "sec524_terasort", "fig18_fig19_table8", "table10",
	}
	for _, id := range required {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing from registry (have %v)", id, IDs())
		}
	}
	if len(Experiments()) < len(required) {
		t.Fatalf("registry has %d experiments, want >= %d", len(Experiments()), len(required))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

// runQuick executes an experiment in Quick mode and does generic sanity
// checks on its outcome.
func runQuick(t *testing.T, id string) *Outcome {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	o := e.Run(Config{Seed: 1, Quick: true})
	if o == nil {
		t.Fatalf("%s returned nil outcome", id)
	}
	if len(o.Tables)+len(o.Figures)+len(o.Comparisons) == 0 {
		t.Fatalf("%s produced no artifacts", id)
	}
	return o
}

func TestMicroExperiments(t *testing.T) {
	for _, id := range []string{"table2", "table3", "sec41_dhrystone", "fig2_fig3",
		"sec42_memory", "table5", "sec44_network", "table10"} {
		o := runQuick(t, id)
		for _, c := range o.Comparisons {
			if c.Paper == 0 {
				continue
			}
			if r := c.RatioError(); r < 0.5 || r > 2.0 {
				t.Errorf("%s: %s %s off by %.2fx (paper %.4g, sim %.4g)",
					id, c.Artifact, c.Metric, r, c.Paper, c.Measured)
			}
		}
	}
}

func TestTable2ExactMatch(t *testing.T) {
	o := runQuick(t, "table2")
	for _, c := range o.Comparisons {
		if c.Paper != c.Measured {
			t.Errorf("Table 2 %s: %g != %g", c.Metric, c.Measured, c.Paper)
		}
	}
}

func TestWebExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("web sweep in -short mode")
	}
	o := runQuick(t, "fig4_fig7")
	if len(o.Figures) < 3 {
		t.Fatalf("fig4_fig7 produced %d figures", len(o.Figures))
	}
	// Peak throughput and the 3.5x efficiency headline within band.
	for _, c := range o.Comparisons {
		switch {
		case strings.Contains(c.Metric, "energy-efficiency"):
			if c.Measured < 2.5 || c.Measured > 5.0 {
				t.Errorf("efficiency ratio %.2f, paper says 3.5x", c.Measured)
			}
		case strings.Contains(c.Metric, "peak"):
			if c.Measured < 5000 || c.Measured > 10000 {
				t.Errorf("%s: %.0f req/s, want ≈7500", c.Metric, c.Measured)
			}
		}
	}
}

func TestMapReduceExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	o := runQuick(t, "fig13_fig16")
	for _, c := range o.Comparisons {
		if r := c.RatioError(); r < 0.6 || r > 1.7 {
			t.Errorf("%s %s off by %.2fx", c.Artifact, c.Metric, r)
		}
	}
	if len(o.Figures) != 2 {
		t.Fatalf("trace experiment produced %d figures, want 2", len(o.Figures))
	}
}

func TestQuickDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check in -short mode")
	}
	e, _ := Lookup("fig13_fig16")
	a := e.Run(Config{Seed: 7, Quick: true})
	b := e.Run(Config{Seed: 7, Quick: true})
	if len(a.Comparisons) != len(b.Comparisons) {
		t.Fatal("different comparison counts")
	}
	for i := range a.Comparisons {
		if a.Comparisons[i].Measured != b.Comparisons[i].Measured {
			t.Fatalf("seeded rerun diverged: %v vs %v", a.Comparisons[i], b.Comparisons[i])
		}
	}
}
