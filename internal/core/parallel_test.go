package core

import (
	"fmt"
	"strings"
	"testing"
)

// renderOutcome serializes every artifact of an outcome to text, so two
// outcomes can be compared byte-for-byte.
func renderOutcome(o *Outcome) string {
	var b strings.Builder
	for _, t := range o.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, f := range o.Figures {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	for _, c := range o.Comparisons {
		fmt.Fprintf(&b, "%s|%s|%v|%v\n", c.Artifact, c.Metric, c.Paper, c.Measured)
	}
	for _, n := range o.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelSweepMatchesSerial: the parallel runner must produce
// byte-identical outcomes to the serial path for the same seed — the core
// guarantee that makes -j safe to use for EXPERIMENTS.md regeneration.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiments in -short mode")
	}
	for _, id := range []string{"fig2_fig3", "fig4_fig7", "fig5_fig8", "fig18_fig19_table8"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		serial := renderOutcome(e.Run(Config{Seed: 3, Quick: true, Workers: 1}))
		parallel := renderOutcome(e.Run(Config{Seed: 3, Quick: true, Workers: 4}))
		if serial != parallel {
			t.Errorf("%s: parallel outcome differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

// TestPointSeedStability: point seeds must depend only on (seed, name,
// index) — this is what keeps outputs independent of worker scheduling.
func TestPointSeedStability(t *testing.T) {
	cfg := Config{Seed: 42}
	if cfg.PointSeed("s", 0) != cfg.PointSeed("s", 0) {
		t.Fatal("PointSeed not stable")
	}
	if cfg.PointSeed("s", 0) == cfg.PointSeed("s", 1) {
		t.Fatal("adjacent points share a seed")
	}
	if cfg.PointSeed("a", 0) == cfg.PointSeed("b", 0) {
		t.Fatal("distinct sweeps share a seed")
	}
	if (Config{Seed: 1}).PointSeed("s", 0) == (Config{Seed: 2}).PointSeed("s", 0) {
		t.Fatal("distinct root seeds share a point seed")
	}
}
