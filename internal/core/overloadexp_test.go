package core

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"edisim/internal/hw"
)

func TestSafeDiv(t *testing.T) {
	if got := safeDiv(6, 3, -1); got != 2 {
		t.Fatalf("safeDiv(6,3) = %g, want 2", got)
	}
	if got := safeDiv(6, 0, -1); got != -1 {
		t.Fatalf("safeDiv(6,0) = %g, want the whenZero value -1", got)
	}
	if got := safeDiv(0, 0, 0); got != 0 {
		t.Fatalf("safeDiv(0,0) = %g, want 0", got)
	}
}

// overloadPairConfig keeps the experiment to the baseline pair so tests
// stay fast; the full catalog runs via TestEveryExperimentQuickSmoke.
func overloadPairConfig(seed int64, workers int) Config {
	micro, brawny := hw.BaselinePair()
	return Config{Seed: seed, Quick: true, Workers: workers,
		Matrix: []*hw.Platform{micro, brawny}}
}

// TestOverloadExperimentQuick checks the overload experiment's artifact
// shape: ladder + drill tables, the two offered-load figures, finite
// comparisons, and a drill that degrades and recovers on every platform.
func TestOverloadExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment in -short mode")
	}
	e, ok := Lookup("overload")
	if !ok {
		t.Fatal("overload experiment not registered")
	}
	if !e.OptIn {
		t.Fatal("overload must be opt-in: it is beyond the paper's artifact set")
	}
	o := e.Run(overloadPairConfig(1, runtime.GOMAXPROCS(0)))
	if len(o.Tables) != 2 {
		t.Fatalf("got %d tables, want 2 (ladder + drill)", len(o.Tables))
	}
	if len(o.Figures) != 2 {
		t.Fatalf("got %d figures, want 2 (p99 + goodput vs offered load)", len(o.Figures))
	}
	if len(o.Comparisons) == 0 {
		t.Fatal("no comparisons recorded")
	}
	for _, c := range o.Comparisons {
		if math.IsNaN(c.Measured) || math.IsInf(c.Measured, 0) {
			t.Errorf("comparison %q measured %v is not finite", c.Metric, c.Measured)
		}
	}
	// Every platform must meet the SLO at least at the 0.5x point, so the
	// req/s/W-at-SLO comparison is positive.
	for _, c := range o.Comparisons {
		if strings.HasSuffix(c.Metric, "req/s/W at SLO") && c.Measured <= 0 {
			t.Errorf("%s = %g: no ladder point met the SLO", c.Metric, c.Measured)
		}
	}
	// The drill's verdict column must never read COLLAPSED: goodput during
	// the spike+crash and after recovery holds >= 80% of pre-spike.
	drill := o.Tables[1].String()
	if strings.Contains(drill, "COLLAPSED") {
		t.Errorf("overload drill collapsed:\n%s", drill)
	}
	if !strings.Contains(drill, "degrades+recovers") {
		t.Errorf("overload drill verdicts missing:\n%s", drill)
	}
}

// TestOverloadParallelMatchesSerial pins the -j guarantee for the overload
// experiment: open-loop arrivals, shedding, retry budgets and the SLO
// controller must all be deterministic per point, so Workers 1 and 4
// produce byte-identical outcomes.
func TestOverloadParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment in -short mode")
	}
	e, ok := Lookup("overload")
	if !ok {
		t.Fatal("overload experiment not registered")
	}
	serial := renderOutcome(e.Run(overloadPairConfig(3, 1)))
	parallel := renderOutcome(e.Run(overloadPairConfig(3, 4)))
	if serial != parallel {
		t.Errorf("parallel outcome differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestFaultToleranceNoNaN: recovery-metric arithmetic must produce finite
// values even on degenerate inputs (satellite of the overload PR — the amp
// and slowdown divisions are now guarded by safeDiv).
func TestFaultToleranceNoNaN(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment in -short mode")
	}
	e, ok := Lookup("fault_tolerance")
	if !ok {
		t.Fatal("fault_tolerance experiment not registered")
	}
	o := e.Run(overloadPairConfig(1, runtime.GOMAXPROCS(0)))
	for _, c := range o.Comparisons {
		if math.IsNaN(c.Measured) || math.IsInf(c.Measured, 0) {
			t.Errorf("comparison %q measured %v is not finite", c.Metric, c.Measured)
		}
	}
	for _, tab := range o.Tables {
		if s := tab.String(); strings.Contains(s, "NaN") {
			t.Errorf("table contains NaN:\n%s", s)
		}
	}
}
