package mapred

import (
	"fmt"

	"edisim/internal/hdfs"
	"edisim/internal/hw"
	"edisim/internal/netsim"
	"edisim/internal/power"
	"edisim/internal/sim"
	"edisim/internal/stats"
	"edisim/internal/units"
	"edisim/internal/yarn"
)

// Cluster is a Hadoop deployment: HDFS + YARN over a set of worker nodes,
// with a (Dell) master hosting namenode and ResourceManager. The paper's
// hybrid configuration — Dell master, Edison slaves — exists because an
// Edison master cannot hold the daemons (yarn.ErrMasterTooSmall).
type Cluster struct {
	Eng *sim.Engine
	Fab *netsim.Fabric

	Master  *hw.Node
	Workers []*hw.Node

	FS *hdfs.FileSystem
	RM *yarn.ResourceManager

	meter *power.Meter
}

// daemonMemory is what datanode+nodemanager consume on a worker (§5.2:
// ≈360 MB total on an Edison incl. the OS, ≈4 GB on a Dell), resolved from
// the hw platform catalog with a clock-speed heuristic for ad-hoc specs.
func daemonMemory(n *hw.Node) units.Bytes {
	if p := hw.PlatformForSpec(n.Spec.Name); p != nil {
		return p.Hadoop.DaemonMem
	}
	if n.Spec.CPU.Clock < 1000 {
		return 360 * units.MB
	}
	return 4 * units.GB
}

// NewCluster assembles HDFS and YARN. blockSize/replication follow the
// paper: 16 MB / 2 on the Edison cluster, 64 MB / 1 on the Dell cluster.
func NewCluster(eng *sim.Engine, fab *netsim.Fabric, master *hw.Node, workers []*hw.Node,
	blockSize units.Bytes, replication int, seed int64) (*Cluster, error) {
	rm, err := yarn.NewResourceManager(eng, master, workers, yarn.DefaultResources)
	if err != nil {
		return nil, err
	}
	for _, w := range workers {
		if err := w.AllocMem(daemonMemory(w)); err != nil {
			return nil, fmt.Errorf("mapred: worker %s cannot run daemons: %w", w.ID, err)
		}
		// Datanode + nodemanager keep a small steady load (heartbeats,
		// GC); reflected as a power floor.
		w.SetBusyFloor(0.04)
	}
	c := &Cluster{
		Eng:     eng,
		Fab:     fab,
		Master:  master,
		Workers: workers,
		RM:      rm,
		FS:      hdfs.New(fab, master.ID, workers, blockSize, replication, seed),
		// Energy accounting excludes the master on both platforms, as the
		// paper does ("the power consumed by the Dell master can be
		// considered as a static offset").
		meter: power.NewMeter("workers", workers),
	}
	return c, nil
}

// JobResult is the outcome of one simulated job (one cell of Table 8).
type JobResult struct {
	Job      string
	Duration float64      // seconds
	Energy   units.Joules // worker nodes only, as in the paper

	MapTasks, ReduceTasks int
	DataLocalMaps         int

	// Traces sampled at 1 Hz for Figures 12–17.
	Power, CPU, Mem, MapProgress, ReduceProgress *stats.TimeSeries

	ShuffledBytes units.Bytes
	OutputBytes   units.Bytes

	// Completion state. A healthy run always completes; with fault injection
	// a job either completes (possibly degraded), fails (a task ran out of
	// attempts — FailReason says which), or is cut off by the driver's
	// deadline (jobs.RunGroupsFaulty marks that as failed too).
	Completed  bool
	Failed     bool
	FailReason string

	// Recovery accounting (all zero without fault tolerance configured).
	TaskAttempts       int // containers granted for map+reduce attempts
	TaskRetries        int // attempts re-launched after a failure/timeout
	LostMapOutputs     int // completed maps re-executed after their node died
	SpeculativeBackups int // backup attempts launched for stragglers
}

// LocalityFraction reports the share of data-local map tasks (the paper
// tunes replication so both clusters sit near 95%).
func (r *JobResult) LocalityFraction() float64 {
	if r.MapTasks == 0 {
		return 0
	}
	return float64(r.DataLocalMaps) / float64(r.MapTasks)
}

// split is one map task's input.
type split struct {
	blocks []*hdfs.Block
	size   units.Bytes
}

// makeSplits builds map inputs: one split per block normally, or packed
// splits up to MaxSplitSize with CombineFileInputFormat.
func (c *Cluster) makeSplits(job *JobDef) []*split {
	var blocks []*hdfs.Block
	for _, name := range job.Inputs {
		f, ok := c.FS.Lookup(name)
		if !ok {
			panic(fmt.Sprintf("mapred: input %q not in HDFS", name))
		}
		blocks = append(blocks, f.Blocks...)
	}
	var splits []*split
	if !job.CombineInput {
		for _, b := range blocks {
			splits = append(splits, &split{blocks: []*hdfs.Block{b}, size: b.Size})
		}
		return splits
	}
	// CombineFileInputFormat groups blocks by node so a combined split
	// stays data-local; pack within each node's group up to MaxSplitSize.
	byNode := make(map[*hw.Node][]*hdfs.Block)
	var order []*hw.Node
	for _, b := range blocks {
		n := b.Replicas[0].Node
		if _, seen := byNode[n]; !seen {
			order = append(order, n)
		}
		byNode[n] = append(byNode[n], b)
	}
	for _, n := range order {
		cur := &split{}
		for _, b := range byNode[n] {
			if cur.size > 0 && cur.size+b.Size > job.MaxSplitSize {
				splits = append(splits, cur)
				cur = &split{}
			}
			cur.blocks = append(cur.blocks, b)
			cur.size += b.Size
		}
		if cur.size > 0 {
			splits = append(splits, cur)
		}
	}
	return splits
}

// preferredNodes lists NodeManagers holding any block of the split.
func (c *Cluster) preferredNodes(s *split) []*yarn.NodeManager {
	var out []*yarn.NodeManager
	seen := map[*yarn.NodeManager]bool{}
	for _, b := range s.blocks {
		for _, r := range b.Replicas {
			if nm := c.RM.NodeManagerOf(r.Node); nm != nil && !seen[nm] {
				seen[nm] = true
				out = append(out, nm)
			}
		}
	}
	return out
}
