package mapred

import (
	"testing"

	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/units"
)

// smallCluster builds a 4-micro + brawny-master deployment with tiny inputs.
func smallCluster(t *testing.T) *Cluster {
	t.Helper()
	micro, brawny := hw.BaselinePair()
	tb := cluster.New(cluster.Config{
		Groups: []cluster.GroupConfig{{Platform: micro, Nodes: 4}, {Platform: brawny, Nodes: 1}},
	})
	c, err := NewCluster(tb.Eng, tb.Fab, tb.Nodes(brawny)[0], tb.Nodes(micro), 16*units.MB, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tinyJob(name string, inputs []string, combine bool) *JobDef {
	j := &JobDef{
		Name:           name,
		Inputs:         inputs,
		NumReduces:     4,
		MapMemoryMB:    150,
		ReduceMemoryMB: 300,
		AMMemoryMB:     100,
		CombineInput:   combine,
		Cost: CostModel{
			MapMBps:             2,
			ReduceMBps:          2,
			OutputRatio:         1,
			CombineRatio:        1,
			ReduceOutputRatio:   0.5,
			TaskOverheadSeconds: 1,
		},
	}
	if combine {
		j.MaxSplitSize = 32 * units.MB
	}
	return j
}

func TestClusterRunCompletes(t *testing.T) {
	c := smallCluster(t)
	for i, name := range []string{"/in/a", "/in/b", "/in/c"} {
		_ = i
		c.FS.CreateInstant(name, 8*units.MB)
	}
	r, err := c.Run(tinyJob("t", []string{"/in/a", "/in/b", "/in/c"}, false))
	if err != nil {
		t.Fatal(err)
	}
	if r.MapTasks != 3 || r.ReduceTasks != 4 {
		t.Fatalf("tasks: %d maps, %d reduces", r.MapTasks, r.ReduceTasks)
	}
	if r.Duration <= 0 || r.Energy <= 0 {
		t.Fatalf("duration %v energy %v", r.Duration, r.Energy)
	}
	if err := c.FS.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reduce output was written back to HDFS.
	if r.OutputBytes <= 0 {
		t.Fatal("no output bytes recorded")
	}
	if got := len(c.FS.Files()); got != 3+4 { // inputs + one part per reducer
		t.Fatalf("HDFS has %d files, want 7", got)
	}
}

func TestCombineInputReducesSplitCount(t *testing.T) {
	c := smallCluster(t)
	var names []string
	for i := 0; i < 8; i++ {
		n := "/in/f" + string(rune('0'+i))
		c.FS.CreateInstant(n, 4*units.MB)
		names = append(names, n)
	}
	plain := c.makeSplits(tinyJob("p", names, false))
	combined := c.makeSplits(tinyJob("c", names, true))
	if len(plain) != 8 {
		t.Fatalf("plain splits %d, want 8", len(plain))
	}
	if len(combined) >= len(plain) {
		t.Fatalf("combining did not reduce splits: %d", len(combined))
	}
	// Combined splits respect MaxSplitSize and group whole blocks.
	var total units.Bytes
	for _, s := range combined {
		if s.size > 32*units.MB {
			t.Fatalf("split exceeds max: %v", s.size)
		}
		total += s.size
	}
	if total != 32*units.MB {
		t.Fatalf("splits lose data: %v", total)
	}
}

func TestProgressSeriesMonotone(t *testing.T) {
	c := smallCluster(t)
	c.FS.CreateInstant("/in/x", 32*units.MB)
	r, err := c.Run(tinyJob("m", []string{"/in/x"}, false))
	if err != nil {
		t.Fatal(err)
	}
	checkMonotone := func(name string, pts []struct{ T, V float64 }) {
		for i := 1; i < len(pts); i++ {
			if pts[i].V < pts[i-1].V {
				t.Fatalf("%s regressed at %v", name, pts[i].T)
			}
		}
	}
	mp := r.MapProgress.Points()
	conv := make([]struct{ T, V float64 }, len(mp))
	for i, p := range mp {
		conv[i] = struct{ T, V float64 }{p.T, p.V}
	}
	checkMonotone("map progress", conv)
	if mp[len(mp)-1].V != 100 {
		t.Fatalf("map progress ends at %v, want 100", mp[len(mp)-1].V)
	}
	rp := r.ReduceProgress.Points()
	if rp[len(rp)-1].V != 100 {
		t.Fatalf("reduce progress ends at %v, want 100", rp[len(rp)-1].V)
	}
}

func TestHybridMasterRequired(t *testing.T) {
	micro, _ := hw.BaselinePair()
	tb := cluster.New(cluster.Config{Groups: []cluster.GroupConfig{{Platform: micro, Nodes: 3}}})
	// Using a micro node as master must fail, as in the paper.
	nodes := tb.Nodes(micro)
	_, err := NewCluster(tb.Eng, tb.Fab, nodes[0], nodes[1:], 16*units.MB, 2, 1)
	if err == nil {
		t.Fatal("micro master accepted; the paper shows it cannot host RM+namenode")
	}
}

func TestShuffleMovesBytes(t *testing.T) {
	c := smallCluster(t)
	c.FS.CreateInstant("/in/x", 32*units.MB)
	r, err := c.Run(tinyJob("s", []string{"/in/x"}, false))
	if err != nil {
		t.Fatal(err)
	}
	// OutputRatio 1: all 32 MB of map output shuffles to reducers.
	if r.ShuffledBytes < 30*units.MB {
		t.Fatalf("shuffled only %v", r.ShuffledBytes)
	}
}
