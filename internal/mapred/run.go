package mapred

import (
	"fmt"
	"sort"

	"edisim/internal/hw"
	"edisim/internal/power"
	"edisim/internal/stats"
	"edisim/internal/units"
	"edisim/internal/yarn"
)

// mapSeconds resolves the per-core map duration for a split on node n
// (mixed-platform slave sets calibrate rates per platform).
func mapSeconds(job *JobDef, n *hw.Node, size units.Bytes) float64 {
	c := job.rates(n)
	if c.MapFixedSeconds > 0 {
		return c.MapFixedSeconds
	}
	if c.MapMBps <= 0 {
		panic(fmt.Sprintf("mapred: job %q has no map rate", job.Name))
	}
	return float64(size) / float64(units.MBps) / c.MapMBps
}

func reduceSeconds(job *JobDef, n *hw.Node, size units.Bytes) float64 {
	c := job.rates(n)
	if c.ReduceMBps <= 0 {
		panic(fmt.Sprintf("mapred: job %q has no reduce rate", job.Name))
	}
	return float64(size) / float64(units.MBps) / c.ReduceMBps
}

// overheadSeconds is the fixed per-task-attempt cost on node n's platform.
func overheadSeconds(job *JobDef, n *hw.Node) float64 {
	return job.rates(n).TaskOverheadSeconds
}

// maxShuffleFetches bounds a reducer's parallel fetch streams (Hadoop's
// mapreduce.reduce.shuffle.parallelcopies is 5 by default).
const maxShuffleFetches = 4

// slowstartFraction is the completed-maps fraction before reduce containers
// are requested (Hadoop default 0.05); actual reduce start is later because
// map containers still hold the slots — which is exactly why the reduce
// phase starts at 61% of run time on the Edison cluster vs 28% on Dell.
const slowstartFraction = 0.05

// Run executes the job on the simulated cluster, returning when it
// completes. It drives the engine itself (synchronous convenience).
func (c *Cluster) Run(job *JobDef) (*JobResult, error) {
	res, err := c.Start(job, nil)
	if err != nil {
		return nil, err
	}
	c.Eng.Run()
	return res, nil
}

// Start launches the job asynchronously; done (optional) runs at completion.
// The returned JobResult is filled in progressively and final once done.
func (c *Cluster) Start(job *JobDef, done func()) (*JobResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	eng := c.Eng
	splits := c.makeSplits(job)
	nMaps := len(splits)
	if nMaps == 0 {
		return nil, fmt.Errorf("mapred: job %q has no input splits", job.Name)
	}

	res := &JobResult{
		Job:            job.Name,
		MapTasks:       nMaps,
		ReduceTasks:    job.NumReduces,
		Power:          stats.NewTimeSeries(job.Name + "/power"),
		CPU:            stats.NewTimeSeries(job.Name + "/cpu"),
		Mem:            stats.NewTimeSeries(job.Name + "/mem"),
		MapProgress:    stats.NewTimeSeries(job.Name + "/map"),
		ReduceProgress: stats.NewTimeSeries(job.Name + "/reduce"),
	}

	start := eng.Now()
	c.meter.Reset()

	// 1 Hz psutil-style sampling (Figures 12–17).
	sampler := power.NewSampler(eng, c.meter, 1.0)
	cpuGauge := power.MeanUtilization(c.Workers)
	memGauge := power.MeanMemUtilization(c.Workers)

	mapsDone := 0
	reducersDone := 0
	outSeq := 0
	reducersStarted := 0
	reducersRequested := false
	var mapOutPerNode map[*yarn.NodeManager]units.Bytes
	mapOutPerNode = make(map[*yarn.NodeManager]units.Bytes)
	var totalMapOut units.Bytes

	finished := false
	sample := func() {
		t := float64(eng.Now() - start)
		res.Power.Add(t, float64(c.meter.Power()))
		res.CPU.Add(t, cpuGauge())
		res.Mem.Add(t, memGauge())
		res.MapProgress.Add(t, 100*float64(mapsDone)/float64(nMaps))
		// Hadoop's reduce progress spans shuffle+sort+reduce; a granted
		// reducer in its shuffle phase contributes the first third.
		rp := (float64(reducersStarted)/3 + float64(reducersDone)*2/3) / float64(job.NumReduces)
		res.ReduceProgress.Add(t, 100*rp)
	}
	var tick func()
	tick = func() {
		if finished {
			return
		}
		sample()
		eng.After(1.0, tick)
	}

	finish := func() {
		finished = true
		res.Duration = float64(eng.Now() - start)
		res.Energy = c.meter.Energy()
		sample()
		sampler.Stop()
		if done != nil {
			done()
		}
	}

	// The job holds an AM container for its whole life.
	var amContainer *yarn.Container
	combine := 1.0
	if job.UseCombiner {
		combine = job.Cost.CombineRatio
	}

	maybeFinish := func() {
		if reducersDone == job.NumReduces {
			c.RM.Release(amContainer)
			finish()
		}
	}

	var runReducer func(ct *yarn.Container, shuffleShare units.Bytes, sources []*yarn.NodeManager)
	runReducer = func(ct *yarn.Container, shuffleShare units.Bytes, sources []*yarn.NodeManager) {
		node := ct.Node.Node
		// Fetch phase: pull this reducer's partition from every map node,
		// at most maxShuffleFetches streams at once.
		idx := 0
		active := 0
		var fetchNext func()
		fetched := 0
		afterFetch := func() {
			fetched++
			active--
			if fetched >= len(sources) {
				// Sort+merge+reduce, then write output to HDFS.
				node.ComputeSeconds(reduceSeconds(job, node, shuffleShare), func() {
					out := units.Bytes(float64(shuffleShare) * job.Cost.ReduceOutputRatio)
					res.OutputBytes += out
					outSeq++
					outName := fmt.Sprintf("%s/part-r-%05d", job.Name, outSeq)
					c.FS.Write(node.ID, node, outName, out, func() {
						c.RM.Release(ct)
						reducersDone++
						maybeFinish()
					})
				})
				return
			}
			fetchNext()
		}
		fetchNext = func() {
			for active < maxShuffleFetches && idx < len(sources) {
				src := sources[idx]
				idx++
				active++
				seg := units.Bytes(float64(shuffleShare) / float64(len(sources)))
				res.ShuffledBytes += seg
				// Read the spilled segment, then stream it over.
				src.Node.Disk().Read(seg, true, func() {
					c.Fab.StartFlow(src.Node.ID, node.ID, seg, func() {
						node.Disk().Write(seg, true, afterFetch)
					})
				})
			}
			if len(sources) == 0 {
				afterFetch() // degenerate: no map output at all
			}
		}
		fetchNext()
	}

	// expectedMapOut is the job's total map output, known up front from the
	// split sizes and the cost model. Reducers size their shuffle share
	// from it so that fetches overlapping the map tail (as Hadoop's
	// incremental shuffle does) still account for every byte.
	var expectedMapOut units.Bytes
	for _, s := range splits {
		expectedMapOut += units.Bytes(float64(s.size) * job.Cost.OutputRatio * combine)
	}
	// Hadoop's AM lets a few reducers start shuffling while the map backlog
	// is still queued — but only where a node can spare ≈10% of its memory.
	// A 12 GB Dell node can host an early 1 GB reducer; a 600 MB Edison
	// node cannot spare 300 MB, which is exactly why the paper's reduce
	// phase starts at 28% of runtime on Dell but 61% on Edison (§5.2.1).
	earlyReducers := 0
	for _, nm := range c.RM.Nodes() {
		earlyReducers += int(0.1 * float64(nm.Capacity().MemoryMB) / float64(job.ReduceMemoryMB))
	}
	requestReducers := func() {
		if reducersRequested {
			return
		}
		reducersRequested = true
		for r := 0; r < job.NumReduces; r++ {
			prio := 0
			if r < earlyReducers {
				prio = 1
			}
			c.RM.Request(yarn.ContainerRequest{MemoryMB: job.ReduceMemoryMB, Priority: prio}, func(ct *yarn.Container) {
				reducersStarted++
				// Fetch from the nodes holding map output at grant time;
				// output still being produced is folded into the evenly
				// divided expected share (incremental-shuffle model).
				// Deterministic source order: map iteration order would
				// perturb event ordering run-to-run.
				var sources []*yarn.NodeManager
				for nm, b := range mapOutPerNode {
					if b > 0 {
						sources = append(sources, nm)
					}
				}
				sort.Slice(sources, func(i, j int) bool {
					return sources[i].Node.ID < sources[j].Node.ID
				})
				share := units.Bytes(float64(expectedMapOut) / float64(job.NumReduces))
				// Reduce attempts pay the same (CPU-bound) setup overhead.
				ct.Node.Node.ComputeSeconds(overheadSeconds(job, ct.Node.Node), func() {
					runReducer(ct, share, sources)
				})
			})
		}
	}

	runMapper := func(ct *yarn.Container, s *split) {
		node := ct.Node.Node
		// Read every block of the split (local disk or remote flow).
		remaining := len(s.blocks)
		local := true
		for _, b := range s.blocks {
			wasLocal := c.FS.ReadBlock(node.ID, node, b, func() {
				remaining--
				if remaining > 0 {
					return
				}
				// Task setup overhead (JVM, jar localization, JIT warmup —
				// CPU-bound, which is why the paper's Dell trace pegs 100%
				// CPU through the map phase), then the map computation and
				// the spill of (combined) output.
				work := overheadSeconds(job, node) +
					mapSeconds(job, node, s.size)
				node.ComputeSeconds(work, func() {
					out := units.Bytes(float64(s.size) * job.Cost.OutputRatio * combine)
					node.Disk().Write(out, true, func() {
						mapOutPerNode[ct.Node] += out
						totalMapOut += out
						mapsDone++
						c.RM.Release(ct)
						if float64(mapsDone) >= slowstartFraction*float64(nMaps) {
							requestReducers()
						}
					})
				})
			})
			local = local && wasLocal
		}
		if local {
			res.DataLocalMaps++
		}
	}

	// Kick off: AM first, then all map requests with locality preferences.
	c.RM.Request(yarn.ContainerRequest{MemoryMB: job.AMMemoryMB}, func(am *yarn.Container) {
		amContainer = am
		for _, s := range splits {
			s := s
			c.RM.Request(yarn.ContainerRequest{
				MemoryMB:       job.MapMemoryMB,
				PreferredNodes: c.preferredNodes(s),
			}, func(ct *yarn.Container) { runMapper(ct, s) })
		}
	})
	eng.After(0, tick)
	return res, nil
}
