package mapred

import (
	"fmt"
	"sort"

	"edisim/internal/hw"
	"edisim/internal/power"
	"edisim/internal/sim"
	"edisim/internal/stats"
	"edisim/internal/units"
	"edisim/internal/yarn"
)

// mapSeconds resolves the per-core map duration for a split on node n
// (mixed-platform slave sets calibrate rates per platform).
func mapSeconds(job *JobDef, n *hw.Node, size units.Bytes) float64 {
	c := job.rates(n)
	if c.MapFixedSeconds > 0 {
		return c.MapFixedSeconds
	}
	if c.MapMBps <= 0 {
		panic(fmt.Sprintf("mapred: job %q has no map rate", job.Name))
	}
	return float64(size) / float64(units.MBps) / c.MapMBps
}

func reduceSeconds(job *JobDef, n *hw.Node, size units.Bytes) float64 {
	c := job.rates(n)
	if c.ReduceMBps <= 0 {
		panic(fmt.Sprintf("mapred: job %q has no reduce rate", job.Name))
	}
	return float64(size) / float64(units.MBps) / c.ReduceMBps
}

// overheadSeconds is the fixed per-task-attempt cost on node n's platform.
func overheadSeconds(job *JobDef, n *hw.Node) float64 {
	return job.rates(n).TaskOverheadSeconds
}

// maxShuffleFetches bounds a reducer's parallel fetch streams (Hadoop's
// mapreduce.reduce.shuffle.parallelcopies is 5 by default).
const maxShuffleFetches = 4

// slowstartFraction is the completed-maps fraction before reduce containers
// are requested (Hadoop default 0.05); actual reduce start is later because
// map containers still hold the slots — which is exactly why the reduce
// phase starts at 61% of run time on the Edison cluster vs 28% on Dell.
const slowstartFraction = 0.05

// Run executes the job on the simulated cluster, returning when it
// completes. It drives the engine itself (synchronous convenience). Jobs
// with fault tolerance enabled under an injected fault plan should use
// Start plus Engine.RunUntil instead: a cluster that never recovers keeps
// heartbeating, so its event stream need not drain.
func (c *Cluster) Run(job *JobDef) (*JobResult, error) {
	res, err := c.Start(job, nil)
	if err != nil {
		return nil, err
	}
	c.Eng.Run()
	return res, nil
}

// attempt is one container-backed try at a task. A dead attempt's callbacks
// are inert: every stage of the task pipeline checks the flag, so a killed
// or superseded attempt can never release its container twice or corrupt
// job progress, no matter which of its events still fire.
type attempt struct {
	ct       *yarn.Container
	dead     bool
	watchdog sim.EventRef
	started  sim.Time
}

// mapTask tracks one split across its attempts. outputOn remembers where
// the winning attempt spilled its map output: if that node dies before the
// job finishes, the output is lost and the task reverts to not-done.
type mapTask struct {
	idx       int
	s         *split
	tries     int
	done      bool
	outputOn  *yarn.NodeManager
	out       units.Bytes
	cur, spec *attempt
}

// reduceTask tracks one reducer across its attempts.
type reduceTask struct {
	idx   int
	tries int
	done  bool
	cur   *attempt
}

// Start launches the job asynchronously; done (optional) runs at completion
// (successful or failed — check JobResult.Failed). The returned JobResult is
// filled in progressively and final once done.
//
// Without job.FT the execution path is the original fail-free engine, event
// for event. With it, every task attempt is watched: a timeout kills and
// re-launches it (up to MaxAttempts), a detected node crash fails the
// node's attempts immediately, re-executes completed maps whose output died
// with the node, and excludes the node from placement until it returns;
// repeated non-crash failures blacklist a node for the rest of the job.
func (c *Cluster) Start(job *JobDef, done func()) (*JobResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	eng := c.Eng
	splits := c.makeSplits(job)
	nMaps := len(splits)
	if nMaps == 0 {
		return nil, fmt.Errorf("mapred: job %q has no input splits", job.Name)
	}
	ftOn := job.FT != nil
	var ft FaultTolerance
	if ftOn {
		ft = job.FT.withDefaults()
	}

	res := &JobResult{
		Job:            job.Name,
		MapTasks:       nMaps,
		ReduceTasks:    job.NumReduces,
		Power:          stats.NewTimeSeries(job.Name + "/power"),
		CPU:            stats.NewTimeSeries(job.Name + "/cpu"),
		Mem:            stats.NewTimeSeries(job.Name + "/mem"),
		MapProgress:    stats.NewTimeSeries(job.Name + "/map"),
		ReduceProgress: stats.NewTimeSeries(job.Name + "/reduce"),
	}

	start := eng.Now()
	c.meter.Reset()

	// 1 Hz psutil-style sampling (Figures 12–17).
	sampler := power.NewSampler(eng, c.meter, 1.0)
	cpuGauge := power.MeanUtilization(c.Workers)
	memGauge := power.MeanMemUtilization(c.Workers)

	mapsDone := 0
	reducersDone := 0
	outSeq := 0
	reducersStarted := 0
	reducersRequested := false
	mapOutPerNode := make(map[*yarn.NodeManager]units.Bytes)
	var totalMapOut units.Bytes

	maps := make([]*mapTask, nMaps)
	for i, s := range splits {
		maps[i] = &mapTask{idx: i, s: s}
	}
	reduces := make([]*reduceTask, job.NumReduces)
	for i := range reduces {
		reduces[i] = &reduceTask{idx: i}
	}
	// Completed-map durations feed the speculative-execution straggler
	// threshold; nodeWasUp and the failure counts drive detection and
	// blacklisting (indexed/keyed over the RM's fixed node slice, so every
	// scan is deterministic).
	var mapDurSum float64
	var mapDurN int
	var nodeWasUp []bool
	nodeFailures := make(map[*yarn.NodeManager]int)
	blacklisted := make(map[*yarn.NodeManager]bool)
	if ftOn {
		nodeWasUp = make([]bool, len(c.RM.Nodes()))
		for i := range nodeWasUp {
			nodeWasUp[i] = true
		}
	}

	finished := false
	sample := func() {
		t := float64(eng.Now() - start)
		res.Power.Add(t, float64(c.meter.Power()))
		res.CPU.Add(t, cpuGauge())
		res.Mem.Add(t, memGauge())
		res.MapProgress.Add(t, 100*float64(mapsDone)/float64(nMaps))
		// Hadoop's reduce progress spans shuffle+sort+reduce; a granted
		// reducer in its shuffle phase contributes the first third.
		rp := (float64(reducersStarted)/3 + float64(reducersDone)*2/3) / float64(job.NumReduces)
		res.ReduceProgress.Add(t, 100*rp)
	}

	finish := func() {
		finished = true
		res.Completed = !res.Failed
		res.Duration = float64(eng.Now() - start)
		res.Energy = c.meter.Energy()
		sample()
		sampler.Stop()
		if done != nil {
			done()
		}
	}

	// The job holds an AM container for its whole life. (The AM is assumed
	// resilient — YARN restarts it elsewhere on failure — so it is not a
	// fault target here.)
	var amContainer *yarn.Container
	combine := 1.0
	if job.UseCombiner {
		combine = job.Cost.CombineRatio
	}

	maybeFinish := func() {
		if finished {
			return
		}
		if reducersDone == job.NumReduces {
			c.RM.Release(amContainer)
			finish()
		}
	}

	failJob := func(reason string) {
		if finished {
			return
		}
		res.Failed = true
		res.FailReason = reason
		if amContainer != nil {
			c.RM.Release(amContainer)
		}
		finish()
	}

	// killAttempt retires a live attempt: its remaining pipeline callbacks
	// become no-ops and its container is released exactly once.
	killAttempt := func(at *attempt) {
		if at == nil || at.dead {
			return
		}
		at.dead = true
		at.watchdog.Cancel()
		c.RM.Release(at.ct)
	}

	// noteFailure counts a non-crash attempt failure against the node and
	// blacklists it at the threshold (crashes are not counted: the node is
	// already excluded while down and is fine once rebooted).
	noteFailure := func(nm *yarn.NodeManager) {
		nodeFailures[nm]++
		if nodeFailures[nm] >= ft.BlacklistAfter && !blacklisted[nm] {
			blacklisted[nm] = true
			c.RM.SetNodeUsable(nm.Node, false)
		}
	}

	armWatchdog := func(at *attempt, expire func()) {
		if ftOn {
			at.watchdog = eng.After(ft.TaskTimeout, expire)
		}
	}

	var launchMap func(mt *mapTask, speculative bool)
	var launchReduce func(rt *reduceTask)

	// failMapAttempt retires a map attempt and re-launches the task unless a
	// sibling attempt is still running. countNode distinguishes timeout-ish
	// failures (blacklistable) from detected crashes.
	failMapAttempt := func(mt *mapTask, at *attempt, countNode bool) {
		if finished || at == nil || at.dead {
			return
		}
		nm := at.ct.Node
		killAttempt(at)
		if mt.cur == at {
			mt.cur = nil
		}
		if mt.spec == at {
			mt.spec = nil
		}
		if countNode {
			noteFailure(nm)
		}
		if mt.done || mt.cur != nil || mt.spec != nil {
			return
		}
		if mt.tries >= ft.MaxAttempts {
			failJob(fmt.Sprintf("map %d failed %d attempts", mt.idx, mt.tries))
			return
		}
		res.TaskRetries++
		launchMap(mt, false)
	}

	failReduceAttempt := func(rt *reduceTask, at *attempt, countNode bool) {
		if finished || at == nil || at.dead {
			return
		}
		nm := at.ct.Node
		killAttempt(at)
		if rt.cur == at {
			rt.cur = nil
		}
		if countNode {
			noteFailure(nm)
		}
		if rt.done {
			return
		}
		if rt.tries >= ft.MaxAttempts {
			failJob(fmt.Sprintf("reduce %d failed %d attempts", rt.idx, rt.tries))
			return
		}
		res.TaskRetries++
		launchReduce(rt)
	}

	var runReducer func(at *attempt, rt *reduceTask, shuffleShare units.Bytes, sources []*yarn.NodeManager)
	runReducer = func(at *attempt, rt *reduceTask, shuffleShare units.Bytes, sources []*yarn.NodeManager) {
		ct := at.ct
		node := ct.Node.Node
		// Fetch phase: pull this reducer's partition from every map node,
		// at most maxShuffleFetches streams at once.
		idx := 0
		active := 0
		var fetchNext func()
		fetched := 0
		afterFetch := func() {
			if at.dead {
				return
			}
			fetched++
			active--
			if fetched >= len(sources) {
				// Sort+merge+reduce, then write output to HDFS.
				node.ComputeSeconds(reduceSeconds(job, node, shuffleShare), func() {
					if at.dead {
						return
					}
					out := units.Bytes(float64(shuffleShare) * job.Cost.ReduceOutputRatio)
					outSeq++
					outName := fmt.Sprintf("%s/part-r-%05d", job.Name, outSeq)
					c.FS.Write(node.ID, node, outName, out, func() {
						if at.dead || rt.done {
							return
						}
						at.dead = true
						at.watchdog.Cancel()
						rt.done = true
						rt.cur = nil
						res.OutputBytes += out
						c.RM.Release(ct)
						reducersDone++
						maybeFinish()
					})
				})
				return
			}
			fetchNext()
		}
		fetchNext = func() {
			for active < maxShuffleFetches && idx < len(sources) {
				src := sources[idx]
				idx++
				active++
				seg := units.Bytes(float64(shuffleShare) / float64(len(sources)))
				res.ShuffledBytes += seg
				// Read the spilled segment, then stream it over.
				src.Node.Disk().Read(seg, true, func() {
					c.Fab.StartFlow(src.Node.ID, node.ID, seg, func() {
						node.Disk().Write(seg, true, afterFetch)
					})
				})
			}
			if len(sources) == 0 {
				afterFetch() // degenerate: no map output at all
			}
		}
		fetchNext()
	}

	// expectedMapOut is the job's total map output, known up front from the
	// split sizes and the cost model. Reducers size their shuffle share
	// from it so that fetches overlapping the map tail (as Hadoop's
	// incremental shuffle does) still account for every byte.
	var expectedMapOut units.Bytes
	for _, s := range splits {
		expectedMapOut += units.Bytes(float64(s.size) * job.Cost.OutputRatio * combine)
	}
	// Hadoop's AM lets a few reducers start shuffling while the map backlog
	// is still queued — but only where a node can spare ≈10% of its memory.
	// A 12 GB Dell node can host an early 1 GB reducer; a 600 MB Edison
	// node cannot spare 300 MB, which is exactly why the paper's reduce
	// phase starts at 28% of runtime on Dell but 61% on Edison (§5.2.1).
	earlyReducers := 0
	for _, nm := range c.RM.Nodes() {
		earlyReducers += int(0.1 * float64(nm.Capacity().MemoryMB) / float64(job.ReduceMemoryMB))
	}

	launchReduce = func(rt *reduceTask) {
		rt.tries++
		prio := 0
		if rt.idx < earlyReducers {
			prio = 1
		}
		c.RM.Request(yarn.ContainerRequest{MemoryMB: job.ReduceMemoryMB, Priority: prio}, func(ct *yarn.Container) {
			if finished || rt.done {
				c.RM.Release(ct)
				return
			}
			reducersStarted++
			res.TaskAttempts++
			at := &attempt{ct: ct, started: eng.Now()}
			rt.cur = at
			armWatchdog(at, func() { failReduceAttempt(rt, at, true) })
			// Fetch from the nodes holding map output at grant time;
			// output still being produced is folded into the evenly
			// divided expected share (incremental-shuffle model).
			// Deterministic source order: map iteration order would
			// perturb event ordering run-to-run.
			var sources []*yarn.NodeManager
			for nm, b := range mapOutPerNode {
				if b > 0 {
					sources = append(sources, nm)
				}
			}
			sort.Slice(sources, func(i, j int) bool {
				return sources[i].Node.ID < sources[j].Node.ID
			})
			share := units.Bytes(float64(expectedMapOut) / float64(job.NumReduces))
			// Reduce attempts pay the same (CPU-bound) setup overhead.
			ct.Node.Node.ComputeSeconds(overheadSeconds(job, ct.Node.Node), func() {
				if at.dead {
					return
				}
				runReducer(at, rt, share, sources)
			})
		})
	}

	requestReducers := func() {
		if reducersRequested {
			return
		}
		reducersRequested = true
		for _, rt := range reduces {
			launchReduce(rt)
		}
	}

	runMapper := func(at *attempt, mt *mapTask) {
		ct := at.ct
		node := ct.Node.Node
		s := mt.s
		// Read every block of the split (local disk or remote flow).
		remaining := len(s.blocks)
		local := true
		for _, b := range s.blocks {
			wasLocal := c.FS.ReadBlock(node.ID, node, b, func() {
				if at.dead {
					return
				}
				remaining--
				if remaining > 0 {
					return
				}
				// Task setup overhead (JVM, jar localization, JIT warmup —
				// CPU-bound, which is why the paper's Dell trace pegs 100%
				// CPU through the map phase), then the map computation and
				// the spill of (combined) output.
				work := overheadSeconds(job, node) +
					mapSeconds(job, node, s.size)
				node.ComputeSeconds(work, func() {
					if at.dead {
						return
					}
					out := units.Bytes(float64(s.size) * job.Cost.OutputRatio * combine)
					node.Disk().Write(out, true, func() {
						if at.dead || mt.done {
							return
						}
						at.dead = true
						at.watchdog.Cancel()
						mt.done = true
						mt.outputOn = ct.Node
						mt.out = out
						if local {
							res.DataLocalMaps++
						}
						mapDurSum += float64(eng.Now() - at.started)
						mapDurN++
						// Kill the losing speculative sibling, if any.
						loser := mt.cur
						if loser == at {
							loser = mt.spec
						}
						mt.cur, mt.spec = nil, nil
						mapOutPerNode[ct.Node] += out
						totalMapOut += out
						mapsDone++
						c.RM.Release(ct)
						killAttempt(loser)
						if float64(mapsDone) >= slowstartFraction*float64(nMaps) {
							requestReducers()
						}
					})
				})
			})
			local = local && wasLocal
		}
	}

	launchMap = func(mt *mapTask, speculative bool) {
		mt.tries++
		req := yarn.ContainerRequest{
			MemoryMB:       job.MapMemoryMB,
			PreferredNodes: c.preferredNodes(mt.s),
		}
		if speculative {
			// Backup attempts run wherever there is room, right away.
			req.PreferredNodes = nil
		}
		c.RM.Request(req, func(ct *yarn.Container) {
			if finished || mt.done {
				c.RM.Release(ct)
				return
			}
			res.TaskAttempts++
			at := &attempt{ct: ct, started: eng.Now()}
			if speculative {
				mt.spec = at
			} else {
				mt.cur = at
			}
			armWatchdog(at, func() { failMapAttempt(mt, at, true) })
			runMapper(at, mt)
		})
	}

	// Failure detection, piggybacked on the job's existing 1 Hz sampling
	// tick (no extra events): an up→down transition fails the node's live
	// attempts and re-executes completed maps whose output died with it; a
	// down→up transition re-admits the node (unless blacklisted).
	onNodeDown := func(nm *yarn.NodeManager) {
		c.RM.SetNodeUsable(nm.Node, false)
		c.FS.SetNodeAlive(nm.Node, false)
		for _, mt := range maps {
			if mt.cur != nil && mt.cur.ct.Node == nm {
				failMapAttempt(mt, mt.cur, false)
			}
			if mt.spec != nil && mt.spec.ct.Node == nm {
				failMapAttempt(mt, mt.spec, false)
			}
		}
		for _, rt := range reduces {
			if rt.cur != nil && rt.cur.ct.Node == nm {
				failReduceAttempt(rt, rt.cur, false)
			}
		}
		if finished {
			return
		}
		// Map output on the dead node is gone; those maps must run again
		// (the shuffle can no longer fetch from it).
		if mapOutPerNode[nm] > 0 {
			mapOutPerNode[nm] = 0
			for _, mt := range maps {
				if !mt.done || mt.outputOn != nm {
					continue
				}
				mt.done = false
				mt.outputOn = nil
				totalMapOut -= mt.out
				mapsDone--
				res.LostMapOutputs++
				if mt.cur != nil || mt.spec != nil {
					continue // a (speculative) attempt is already running
				}
				if mt.tries >= ft.MaxAttempts {
					failJob(fmt.Sprintf("map %d failed %d attempts", mt.idx, mt.tries))
					return
				}
				res.TaskRetries++
				launchMap(mt, false)
			}
		}
	}
	onNodeUp := func(nm *yarn.NodeManager) {
		c.FS.SetNodeAlive(nm.Node, true)
		if !blacklisted[nm] {
			c.RM.SetNodeUsable(nm.Node, true)
		}
	}
	detect := func() {
		for i, nm := range c.RM.Nodes() {
			up := nm.Node.Up()
			if nodeWasUp[i] == up {
				continue
			}
			nodeWasUp[i] = up
			if up {
				onNodeUp(nm)
			} else {
				onNodeDown(nm)
			}
		}
	}
	speculate := func() {
		if 2*mapsDone < nMaps || mapDurN == 0 {
			return
		}
		threshold := 2 * mapDurSum / float64(mapDurN)
		for _, mt := range maps {
			if mt.done || mt.spec != nil || mt.cur == nil {
				continue
			}
			if float64(eng.Now()-mt.cur.started) > threshold {
				res.SpeculativeBackups++
				launchMap(mt, true)
			}
		}
	}
	var tick func()
	tick = func() {
		if finished {
			return
		}
		if ftOn {
			detect()
			if finished {
				return // detection can fail the job (attempts exhausted)
			}
			if ft.Speculative {
				speculate()
			}
		}
		sample()
		eng.After(1.0, tick)
	}

	// Kick off: AM first, then all map requests with locality preferences.
	c.RM.Request(yarn.ContainerRequest{MemoryMB: job.AMMemoryMB}, func(am *yarn.Container) {
		amContainer = am
		for _, mt := range maps {
			launchMap(mt, false)
		}
	})
	eng.After(0, tick)
	return res, nil
}
