package mapred

import (
	"strconv"
	"strings"
	"testing"

	"edisim/internal/units"
)

// countJob is a minimal wordcount used to exercise the local executor.
func countJob(combiner bool, reduces int) *JobDef {
	return &JobDef{
		Name:           "count",
		Inputs:         []string{"in"},
		NumReduces:     reduces,
		UseCombiner:    combiner,
		MapMemoryMB:    100,
		ReduceMemoryMB: 100,
		AMMemoryMB:     100,
		Cost: CostModel{
			MapMBps:           1,
			ReduceMBps:        1,
			OutputRatio:       1,
			CombineRatio:      1,
			ReduceOutputRatio: 1,
		},
		Map: func(rec string, emit func(k, v string)) {
			for _, w := range strings.Fields(rec) {
				emit(w, "1")
			}
		},
		Reduce: func(key string, vals []string, emit func(k, v string)) {
			sum := 0
			for _, v := range vals {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			emit(key, strconv.Itoa(sum))
		},
	}
}

func TestLocalRunCountsExactly(t *testing.T) {
	job := countJob(false, 3)
	res, err := LocalRun(job, map[string][]string{
		"a": {"x y x", "z"},
		"b": {"y y", "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"x": "3", "y": "3", "z": "1"}
	got := map[string]string{}
	for _, kv := range res.Output() {
		got[kv.Key] = kv.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %q, want %q (all: %v)", k, got[k], v, got)
		}
	}
	if res.MapInputRecords != 4 || res.MapOutputRecords != 7 {
		t.Fatalf("counters: in=%d out=%d", res.MapInputRecords, res.MapOutputRecords)
	}
}

func TestLocalRunCombinerEquivalence(t *testing.T) {
	inputs := map[string][]string{
		"s1": {"a b a", "c a"},
		"s2": {"b b", "a c c a"},
	}
	plain, err := LocalRun(countJob(false, 4), inputs)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := LocalRun(countJob(true, 4), inputs)
	if err != nil {
		t.Fatal(err)
	}
	po, co := plain.Output(), combined.Output()
	if len(po) != len(co) {
		t.Fatalf("output lengths differ: %d vs %d", len(po), len(co))
	}
	for i := range po {
		if po[i] != co[i] {
			t.Fatalf("combiner changed results: %v vs %v", po[i], co[i])
		}
	}
	if combined.CombineOutRecords >= combined.MapOutputRecords {
		t.Fatal("combiner did not reduce record volume")
	}
}

func TestLocalRunPartitionsByHash(t *testing.T) {
	job := countJob(false, 4)
	res, err := LocalRun(job, map[string][]string{"in": {"a b c d e f g h"}})
	if err != nil {
		t.Fatal(err)
	}
	for p, kvs := range res.Partitions {
		for _, kv := range kvs {
			if got := partition(kv.Key, 4); got != p {
				t.Fatalf("key %q in partition %d, hash says %d", kv.Key, p, got)
			}
		}
	}
}

func TestLocalRunPartitionsSorted(t *testing.T) {
	job := countJob(false, 2)
	res, err := LocalRun(job, map[string][]string{"in": {"m z a q b k"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, kvs := range res.Partitions {
		for i := 1; i < len(kvs); i++ {
			if kvs[i-1].Key > kvs[i].Key {
				t.Fatalf("partition not key-sorted: %v", kvs)
			}
		}
	}
}

func TestLocalRunValidation(t *testing.T) {
	job := countJob(false, 0)
	if _, err := LocalRun(job, nil); err == nil {
		t.Fatal("zero reducers accepted")
	}
}

func TestPartitionStableAndInRange(t *testing.T) {
	for _, k := range []string{"", "a", "word0001", "2016-02-01 INFO", strings.Repeat("x", 100)} {
		p := partition(k, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition(%q) = %d out of range", k, p)
		}
		if p != partition(k, 7) {
			t.Fatal("partition not deterministic")
		}
	}
}

func TestJobValidate(t *testing.T) {
	good := countJob(false, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	bad := countJob(false, 1)
	bad.CombineInput = true // without MaxSplitSize
	if err := bad.Validate(); err == nil {
		t.Fatal("combine without MaxSplitSize accepted")
	}
	bad2 := countJob(false, 1)
	bad2.MapMemoryMB = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero map memory accepted")
	}
	_ = units.MB
}
