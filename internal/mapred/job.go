// Package mapred implements the MapReduce execution engine used for the
// paper's §5.2 experiments: input splits (per-file and combined à la
// CombineFileInputFormat), YARN container scheduling, the
// map→combine→spill→shuffle→sort→reduce pipeline with real byte accounting
// through the HDFS/network/disk models, and per-phase progress tracking
// (Figures 12–17).
//
// The engine separates semantics from timing: LocalRun executes a job's
// real Map/Reduce functions on real records (functional correctness —
// wordcount counts, terasort sorts), while Cluster.Run plays the same job
// through the discrete-event simulation with calibrated per-platform cost
// models (timing and energy — Table 8).
package mapred

import (
	"fmt"
	"math"

	"edisim/internal/hw"
	"edisim/internal/units"
)

// KV is one key/value record.
type KV struct {
	Key, Value string
}

// MapFunc consumes one input record and emits intermediate pairs.
type MapFunc func(record string, emit func(k, v string))

// ReduceFunc folds all values of one key and emits output pairs.
type ReduceFunc func(key string, values []string, emit func(k, v string))

// CostModel carries the calibrated rates for a job on the worker platform
// it runs on (internal/jobs resolves it from the hw platform catalog).
// Rates are per container running on one dedicated core; oversubscription
// slowdowns (4 containers on 2 Edison cores, 24 on ≈11 Dell
// core-equivalents) emerge from the processor-sharing CPU model. On a
// homogeneous cluster JobDef.Cost is the whole story; mixed-platform slave
// sets add per-platform rate overrides via JobDef.PlatformCosts, resolved
// per container node at run time.
type CostModel struct {
	// MapMBps is map-function throughput over its split, MB per core-second.
	MapMBps float64
	// MapFixedSeconds, when positive, replaces the rate model (pi estimation
	// has no meaningful input bytes).
	MapFixedSeconds float64
	// ReduceMBps is sort+merge+reduce throughput over shuffled bytes.
	ReduceMBps float64
	// OutputRatio is map-output bytes per input byte before the combiner.
	OutputRatio float64
	// CombineRatio scales map output when the job's combiner runs (1 = no
	// combiner configured, as in the original wordcount).
	CombineRatio float64
	// ReduceOutputRatio is final-output bytes per shuffled byte.
	ReduceOutputRatio float64
	// TaskOverheadSeconds is the fixed wall-clock cost of every task
	// attempt beyond the JVM launch: scheduler round-trips, split
	// localization, task setup/commit. This is what makes 200 tiny maps so
	// much more expensive than 24 big ones (§5.2.1's container-allocation
	// overhead, the original-vs-optimized wordcount gap).
	TaskOverheadSeconds float64
}

// JobDef is a complete MapReduce job description.
type JobDef struct {
	Name string

	// Inputs are HDFS file names (already written).
	Inputs []string

	NumReduces int

	// CombineInput merges small files into splits of at most MaxSplitSize
	// (the wordcount2/logcount2 optimization).
	CombineInput bool
	MaxSplitSize units.Bytes

	// UseCombiner runs the reducer as a combiner on map output.
	UseCombiner bool

	// MapMemoryMB / ReduceMemoryMB / AMMemoryMB are the YARN container
	// sizes (§5.2 lists them for every job and platform).
	MapMemoryMB, ReduceMemoryMB, AMMemoryMB int

	Cost CostModel

	// PlatformCosts overrides Cost's compute rates per worker platform
	// (keyed by NodeSpec.Name) for mixed-platform slave sets: a task's
	// map/reduce rate, fixed map seconds and per-attempt overhead follow
	// the node its container lands on. The byte-shape ratios (OutputRatio,
	// CombineRatio, ReduceOutputRatio) are properties of the workload, not
	// the platform, and always come from Cost. Nil on the paper's
	// homogeneous clusters.
	PlatformCosts map[string]CostModel

	// FT enables failure recovery for the job: task-attempt watchdogs,
	// re-execution, node blacklisting and (optionally) speculative backup
	// attempts. Nil (the default) runs the pre-fault-injection engine with a
	// byte-identical event stream; a healthy cluster never needs it, a
	// faulty one deadlocks without it.
	FT *FaultTolerance

	// Functional implementations for LocalRun.
	Map    MapFunc
	Reduce ReduceFunc
}

// FaultTolerance is the job's recovery policy, mirroring the Hadoop knobs
// that matter for availability-under-failure: mapreduce.task.timeout,
// mapreduce.map/reduce.maxattempts, the AM's node blacklisting threshold and
// speculative execution.
type FaultTolerance struct {
	// TaskTimeout declares a task attempt dead when it has not completed
	// this many seconds after its container was granted. Required (> 0): it
	// is the only way a task stranded on a crashed node is ever noticed.
	TaskTimeout float64
	// MaxAttempts bounds attempts per task before the whole job fails
	// (0 = 4, Hadoop's default).
	MaxAttempts int
	// BlacklistAfter excludes a node from further placement once this many
	// attempts have failed on it for reasons other than a detected crash
	// (0 = 3, mirroring yarn.app.mapreduce.am.job.node-blacklisting).
	BlacklistAfter int
	// Speculative launches one backup attempt for a straggling map task
	// (running > 2× the mean completed-map duration once half the maps are
	// done); the first attempt to finish wins, the loser is killed.
	Speculative bool
}

// withDefaults fills the Hadoop-default knobs.
func (ft FaultTolerance) withDefaults() FaultTolerance {
	if ft.MaxAttempts == 0 {
		ft.MaxAttempts = 4
	}
	if ft.BlacklistAfter == 0 {
		ft.BlacklistAfter = 3
	}
	return ft
}

// Validate rejects the silent-failure values: a zero, negative or non-finite
// timeout would disable the only crash detector without saying so.
func (ft *FaultTolerance) Validate() error {
	if ft == nil {
		return nil
	}
	if math.IsNaN(ft.TaskTimeout) || math.IsInf(ft.TaskTimeout, 0) || ft.TaskTimeout <= 0 {
		return fmt.Errorf("mapred: task timeout %g must be positive and finite", ft.TaskTimeout)
	}
	if ft.MaxAttempts < 0 {
		return fmt.Errorf("mapred: max attempts %d must be non-negative", ft.MaxAttempts)
	}
	if ft.BlacklistAfter < 0 {
		return fmt.Errorf("mapred: blacklist threshold %d must be non-negative", ft.BlacklistAfter)
	}
	return nil
}

// rates resolves the compute-rate model for a container on node n: the
// per-platform override when the slave set is mixed, Cost otherwise.
func (j *JobDef) rates(n *hw.Node) CostModel {
	if c, ok := j.PlatformCosts[n.Spec.Name]; ok {
		return c
	}
	return j.Cost
}

// Validate reports a configuration error, if any.
func (j *JobDef) Validate() error {
	switch {
	case j.Name == "":
		return errString("job needs a name")
	case len(j.Inputs) == 0:
		return errString("job needs inputs")
	case j.NumReduces <= 0:
		return errString("job needs reducers")
	case j.CombineInput && j.MaxSplitSize <= 0:
		return errString("combined input needs MaxSplitSize")
	case j.MapMemoryMB <= 0 || j.ReduceMemoryMB <= 0 || j.AMMemoryMB <= 0:
		return errString("job needs container memory sizes")
	}
	return j.FT.Validate()
}

type errString string

func (e errString) Error() string { return string(e) }

// partition assigns a key to a reducer, Hadoop's default hash partitioner.
func partition(key string, numReduces int) int {
	var h uint32 = 0
	for i := 0; i < len(key); i++ {
		h = h*31 + uint32(key[i])
	}
	return int(h%uint32(numReduces)+uint32(numReduces)) % numReduces
}
