package mapred

import (
	"sort"
)

// LocalResult is the output of a LocalRun: the final key/value pairs per
// reducer partition, plus pipeline counters mirroring Hadoop's job counters.
type LocalResult struct {
	// Partitions[r] holds reducer r's output, sorted by key.
	Partitions [][]KV

	MapInputRecords   int64
	MapOutputRecords  int64
	CombineOutRecords int64
	ReduceInputGroups int64
	OutputRecords     int64
}

// Output flattens all partitions into one key-sorted list.
func (lr *LocalResult) Output() []KV {
	var out []KV
	for _, p := range lr.Partitions {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// LocalRun executes the job's real Map/Reduce functions over the provided
// input records, faithfully following the MapReduce contract: map per
// record, optional combine per map task, hash partitioning, sort by key
// within each partition, one reduce call per key group. It is the
// functional-correctness twin of Cluster.Run (which simulates timing).
//
// inputs maps "split name" → records; each entry is treated as one map task
// so the combiner semantics match Hadoop's per-task combining.
func LocalRun(job *JobDef, inputs map[string][]string) (*LocalResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	res := &LocalResult{Partitions: make([][]KV, job.NumReduces)}

	// Stable task order for determinism.
	names := make([]string, 0, len(inputs))
	for name := range inputs {
		names = append(names, name)
	}
	sort.Strings(names)

	// Map (+ combine) phase.
	intermediate := make([]map[string][]string, job.NumReduces)
	for i := range intermediate {
		intermediate[i] = make(map[string][]string)
	}
	for _, name := range names {
		taskOut := make(map[string][]string)
		for _, rec := range inputs[name] {
			res.MapInputRecords++
			job.Map(rec, func(k, v string) {
				res.MapOutputRecords++
				taskOut[k] = append(taskOut[k], v)
			})
		}
		if job.UseCombiner {
			combined := make(map[string][]string, len(taskOut))
			keys := sortedKeys(taskOut)
			for _, k := range keys {
				job.Reduce(k, taskOut[k], func(ck, cv string) {
					res.CombineOutRecords++
					combined[ck] = append(combined[ck], cv)
				})
			}
			taskOut = combined
		}
		for k, vs := range taskOut {
			p := partition(k, job.NumReduces)
			intermediate[p][k] = append(intermediate[p][k], vs...)
		}
	}

	// Reduce phase: each partition sorted by key, one reduce per group.
	for p := 0; p < job.NumReduces; p++ {
		keys := sortedKeys(intermediate[p])
		for _, k := range keys {
			res.ReduceInputGroups++
			job.Reduce(k, intermediate[p][k], func(ok, ov string) {
				res.OutputRecords++
				res.Partitions[p] = append(res.Partitions[p], KV{Key: ok, Value: ov})
			})
		}
	}
	return res, nil
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
