package web

import (
	"math"
	"testing"

	"edisim/internal/faults"
	"edisim/internal/load"
)

// drillTargets wraps the web tier as fault targets.
func drillTargets(d *Deployment) map[string][]faults.Target {
	targets := make([]faults.Target, len(d.Web))
	for i, w := range d.Web {
		targets[i] = faults.Target{Node: w.Node, Fab: d.Fab}
	}
	return map[string][]faults.Target{"web": targets}
}

// The 6-server micro web tier accepts ~45 conn/s per server, so ~270 conn/s
// is its connection capacity; the drills below size their profiles off it.
const microTierCap = 270.0

func TestOpenLoopSteadyMatchesOffered(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	rate := 120.0 // well under capacity
	r := d.Run(RunConfig{Profile: load.Steady{Rate: rate}, Duration: 20, WarmupFrac: 0.1})
	window := 18.0
	wantConns := rate * window
	if math.Abs(float64(r.Offered)-wantConns) > 4*math.Sqrt(wantConns) {
		t.Fatalf("offered %d conns, want ≈%v", r.Offered, wantConns)
	}
	// Every offered conn carries 8 calls; under capacity goodput tracks it.
	wantTp := rate * 8
	if r.Throughput < 0.9*wantTp || r.Throughput > 1.1*wantTp {
		t.Fatalf("throughput %.0f, want ≈%v", r.Throughput, wantTp)
	}
	// Open-loop runs keep no per-request Sample, only the bounded digest.
	if r.Delays.N() != 0 {
		t.Fatalf("open-loop run retained %d exact samples, want 0", r.Delays.N())
	}
	if r.Latency.N() == 0 {
		t.Fatal("latency digest empty on an open-loop run")
	}
	if r.MeanDelay <= 0 {
		t.Fatalf("mean delay %v must come from the digest", r.MeanDelay)
	}
}

// The same open-loop overload scenario must replay identically: the whole
// drill is a deterministic function of (config, seed).
func TestOpenLoopRunDeterministic(t *testing.T) {
	run := func() Result {
		d := smallDeployment(t, microP(), 6, 3)
		faults.Schedule(d.Eng, faults.RollingCrashes("web", 2, 8, 0.5, 2), 1, drillTargets(d))
		return d.Run(RunConfig{
			Profile:  load.Spike{Base: 120, Peak: 600, Start: 6, Duration: 6},
			Duration: 20, WarmupFrac: 0.1,
			RequestTimeout: 0.25, RetryBudget: 0.1,
			Shed: ShedPolicy{Mode: ShedDeadline, Deadline: 0.5},
			SLO:  &SLO{Latency: 0.5, Window: 1},
		})
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Offered != b.Offered || a.Shed != b.Shed ||
		a.Retries != b.Retries || a.RetryDenied != b.RetryDenied ||
		a.Attempts != b.Attempts || a.SLOBreaches != b.SLOBreaches ||
		a.Latency.Quantile(0.999) != b.Latency.Quantile(0.999) {
		t.Fatalf("open-loop drill not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestShedPreventsAcceptThrash: at 3× connection capacity the unshed tier
// collapses — the SYN backlog crosses the port-churn thrash region and the
// accept rate halves exactly when it is needed most. Deadline shedding
// refuses the excess with cheap RSTs, keeps accepts at full rate, and
// keeps the served tail bounded.
func TestShedPreventsAcceptThrash(t *testing.T) {
	over := load.Steady{Rate: 3 * microTierCap}
	noShed := smallDeployment(t, microP(), 6, 3).Run(RunConfig{
		Profile: over, Duration: 10, WarmupFrac: 0.1,
	})
	shed := smallDeployment(t, microP(), 6, 3).Run(RunConfig{
		Profile: over, Duration: 10, WarmupFrac: 0.1,
		Shed: ShedPolicy{Mode: ShedDeadline, Deadline: 0.5},
	})
	if shed.Shed == 0 {
		t.Fatal("deadline shedding at 3× capacity rejected nothing")
	}
	// Goodput under shedding must beat the thrashing baseline decisively.
	if shed.Throughput < 1.3*noShed.Throughput {
		t.Fatalf("shed goodput %.0f/s does not beat the thrash collapse %.0f/s", shed.Throughput, noShed.Throughput)
	}
	if p99 := shed.Latency.Quantile(0.99); p99 > 0.5 {
		t.Fatalf("shed p99 %.3fs, want bounded under overload", p99)
	}
}

func TestShedPriorityKeepsInteractive(t *testing.T) {
	over := load.Steady{Rate: 3 * microTierCap}
	r := smallDeployment(t, microP(), 6, 3).Run(RunConfig{
		Profile: over, Duration: 10, WarmupFrac: 0.1,
		Shed: ShedPolicy{Mode: ShedPriority, Queue: 32, LowFrac: 0.3},
	})
	if r.Shed == 0 {
		t.Fatal("priority shedding at 3× capacity rejected nothing")
	}
	if r.Throughput == 0 {
		t.Fatal("priority shedding starved all traffic")
	}
}

// TestOverloadCrashDrill is the PR's acceptance pin: a spike at ≥2×
// capacity with a mid-spike rolling crash, retry budgets and shedding on.
// The fleet must degrade, recover, and never collapse: goodput in every
// phase stays ≥80% of the pre-spike level, p999 stays bounded by the
// timeout discipline, shed is reported, and retries never exceed the
// budget.
func TestOverloadCrashDrill(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	faults.Schedule(d.Eng, faults.RollingCrashes("web", 2, 7, 0.5, 2), 1, drillTargets(d))
	var wins []SLOWindow
	r := d.Run(RunConfig{
		// Base at ~0.44× capacity, spike to ~2.2× during [6s, 12s); two of
		// six servers crash at 7s/7.5s and reboot ~2s later — failure at
		// the worst moment.
		Profile:  load.Spike{Base: 120, Peak: 600, Start: 6, Duration: 6},
		Duration: 20, WarmupFrac: 0.1,
		RequestTimeout: 0.25, RetryBudget: 0.1,
		Shed: ShedPolicy{Mode: ShedDeadline, Deadline: 0.5},
		SLO:  &SLO{Latency: 0.5, Window: 1, Observer: func(w SLOWindow) { wins = append(wins, w) }},
	})

	// Phase goodput from the controller windows (T is the window end).
	phase := func(from, to float64) float64 {
		var served int64
		n := 0
		for _, w := range wins {
			if w.T > from && w.T <= to {
				served += w.Served
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no controller windows in (%v,%v]", from, to)
		}
		return float64(served) / float64(n)
	}
	pre := phase(2, 6)
	during := phase(7, 12)
	post := phase(15, 20)
	if pre <= 0 {
		t.Fatal("no pre-spike goodput")
	}
	if during < 0.8*pre {
		t.Fatalf("goodput during spike+crash %.0f/s fell below 80%% of pre-spike %.0f/s", during, pre)
	}
	if post < 0.8*pre {
		t.Fatalf("goodput after recovery %.0f/s fell below 80%% of pre-spike %.0f/s", post, pre)
	}

	// p999 bounded by the timeout discipline: at most 1+MaxRetries
	// attempts of RequestTimeout each plus backoffs — nowhere near the
	// unbounded queueing a collapse produces.
	p999 := r.Latency.Quantile(0.999)
	if math.IsNaN(p999) || math.IsInf(p999, 0) || p999 <= 0 || p999 > 3 {
		t.Fatalf("p999 %.3fs not finite and bounded", p999)
	}

	// Shed rate is reported: the spike exceeded capacity, something must
	// have been rejected early.
	if r.Shed == 0 {
		t.Fatal("2× capacity spike shed nothing")
	}

	// Retries never exceed the budget: burst allowance plus 10% of first
	// attempts (token-bucket invariant).
	first := r.Attempts - r.Retries
	if maxRetries := float64(retryBurst) + 0.1*float64(first); float64(r.Retries) > maxRetries {
		t.Fatalf("retries %d exceed the budget bound %.0f (first attempts %d)", r.Retries, maxRetries, first)
	}
	if r.Timeouts == 0 {
		t.Fatal("a mid-spike crash produced no timeouts — drill did not bite")
	}
}

// TestRetryStormWithoutBudget documents what the budget prevents: the same
// drill with budgets off completes (no livelock) but amplifies retries.
func TestRetryStormWithoutBudget(t *testing.T) {
	run := func(budget float64) Result {
		d := smallDeployment(t, microP(), 6, 3)
		// Two thirds of the tier crashes rolling through the spike peak.
		faults.Schedule(d.Eng, faults.RollingCrashes("web", 4, 7, 0.3, 2), 1, drillTargets(d))
		return d.Run(RunConfig{
			Profile:  load.Spike{Base: 120, Peak: 600, Start: 6, Duration: 6},
			Duration: 20, WarmupFrac: 0.1,
			RequestTimeout: 0.25, RetryBudget: budget,
			Shed: ShedPolicy{Mode: ShedDeadline, Deadline: 0.5},
		})
	}
	storm := run(0)
	budgeted := run(0.01)
	if storm.Throughput <= 0 {
		t.Fatal("unbudgeted drill livelocked: no goodput at all")
	}
	if storm.Retries <= budgeted.Retries {
		t.Fatalf("unbudgeted retries %d should exceed budgeted %d", storm.Retries, budgeted.Retries)
	}
	amp := func(r Result) float64 {
		if n := r.Attempts - r.Retries; n > 0 {
			return float64(r.Attempts) / float64(n)
		}
		return 1
	}
	if amp(storm) <= amp(budgeted) {
		t.Fatalf("retry amplification: storm %.3f should exceed budgeted %.3f", amp(storm), amp(budgeted))
	}
	if budgeted.RetryDenied == 0 {
		t.Fatal("the budget never denied a retry under a mid-spike crash")
	}
}

// TestSLOBrownoutDegrades: with a miss-heavy working set and an aggressive
// latency target, the controller must engage brownout (cache-only stale
// answers) and account the degraded replies.
func TestSLOBrownoutDegrades(t *testing.T) {
	tb := smallTestbed(microP(), 9, 2, 4)
	d := NewDeployment(tb, microP(), 6, 3, 1)
	// Request-level pressure: 120 conn/s × 40 calls ≈ 4800 req/s against a
	// ~2400 req/s web tier, so worker-thread waits blow a 50 ms target.
	rc := RunConfig{
		Profile: load.Steady{Rate: 120}, CallsPerConn: 40, Duration: 12, WarmupFrac: 0.1,
		CacheHit: 0.5,
		SLO:      &SLO{Latency: 0.05, Window: 1, Brownout: true},
	}
	d.WarmFor(rc)
	r := d.Run(rc)
	if r.SLOBreaches == 0 {
		t.Fatal("2× overload never burned a 50ms p99 SLO")
	}
	if r.BrownoutSecs <= 0 {
		t.Fatal("brownout never engaged")
	}
	if r.Degraded == 0 {
		t.Fatal("brownout engaged but no degraded answers were served")
	}
}

// TestSLOReserveActivates: a burning SLO must pull held-back reserve
// servers into the rotation.
func TestSLOReserveActivates(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	r := d.Run(RunConfig{
		Profile: load.Steady{Rate: 120}, CallsPerConn: 40, Duration: 12, WarmupFrac: 0.1,
		SLO: &SLO{Latency: 0.05, Window: 1, Reserve: 2},
	})
	if r.ActivePeak <= 4 {
		t.Fatalf("active peak %d: reserves never activated (started at 4 of 6)", r.ActivePeak)
	}
	if r.SLOBreaches == 0 {
		t.Fatal("no breaches recorded while reserves activated")
	}
}

func TestOverloadConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  RunConfig
	}{
		{"both generators", RunConfig{Concurrency: 64, Profile: load.Steady{Rate: 100}}},
		{"invalid profile", RunConfig{Profile: load.Steady{Rate: -1}}},
		{"nan profile", RunConfig{Profile: load.Steady{Rate: math.NaN()}}},
		{"negative retry budget", RunConfig{Concurrency: 64, RetryBudget: -0.1}},
		{"retry budget over 1", RunConfig{Concurrency: 64, RetryBudget: 1.5}},
		{"nan retry budget", RunConfig{Concurrency: 64, RetryBudget: math.NaN()}},
		{"unknown shed mode", RunConfig{Concurrency: 64, Shed: ShedPolicy{Mode: "yolo"}}},
		{"negative shed queue", RunConfig{Concurrency: 64, Shed: ShedPolicy{Mode: ShedDropTail, Queue: -1}}},
		{"nan shed deadline", RunConfig{Concurrency: 64, Shed: ShedPolicy{Mode: ShedDeadline, Deadline: math.NaN()}}},
		{"low frac over 1", RunConfig{Concurrency: 64, Shed: ShedPolicy{Mode: ShedPriority, LowFrac: 1.5}}},
		{"fast fail over 1", RunConfig{Concurrency: 64, Shed: ShedPolicy{Mode: ShedDropTail, FastFailFrac: 2}}},
		{"slo zero latency", RunConfig{Concurrency: 64, SLO: &SLO{}}},
		{"slo nan latency", RunConfig{Concurrency: 64, SLO: &SLO{Latency: math.NaN()}}},
		{"slo percentile 1", RunConfig{Concurrency: 64, SLO: &SLO{Latency: 0.5, Percentile: 1}}},
		{"slo availability over 1", RunConfig{Concurrency: 64, SLO: &SLO{Latency: 0.5, Availability: 1.5}}},
		{"slo negative window", RunConfig{Concurrency: 64, SLO: &SLO{Latency: 0.5, Window: -1}}},
		{"slo negative reserve", RunConfig{Concurrency: 64, SLO: &SLO{Latency: 0.5, Reserve: -1}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
	ok := RunConfig{
		Profile:        load.Spike{Base: 50, Peak: 500, Start: 5, Duration: 5},
		RequestTimeout: 0.25, RetryBudget: 0.1,
		Shed: ShedPolicy{Mode: ShedPriority, Queue: 64, LowFrac: 0.2, FastFailFrac: 0.1},
		SLO:  &SLO{Latency: 0.5, Percentile: 0.999, Availability: 0.99, Window: 2, Reserve: 1},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid overload config rejected: %v", err)
	}
}

// TestShedSteadyStateNoAlloc pins the fast-fail rejection path — shed
// decision, fractional CPU burn, 503 delivery, record recycling — at zero
// allocations per request (CI-gated alongside the admit path).
func TestShedSteadyStateNoAlloc(t *testing.T) {
	tb := smallTestbed(microP(), 9, 2, 4)
	d := NewDeployment(tb, microP(), 6, 3, 1)
	d.Warm(1.0)
	// Queue 0 with drop-tail sheds every request (the config layer would
	// default Queue; setting the resolved policy directly pins the path).
	d.shed = ShedPolicy{Mode: ShedDropTail, Queue: 0, FastFailFrac: 0.1}
	d.fastFailCPU = 0.1 * (d.Plat.Web.BaseCPU + d.Plat.Web.ReplyCPU)
	eng := d.Eng
	cfg := RunConfig{Concurrency: 1}.withDefaults()
	done := func(bool) {}
	for i := 0; i < 100; i++ {
		d.request(d.Clients[i%len(d.Clients)], d.Web[i%len(d.Web)], cfg, done)
		eng.RunUntil(eng.Now() + 0.05)
	}
	avg := testing.AllocsPerRun(200, func() {
		d.request(d.Clients[0], d.Web[1], cfg, done)
		eng.RunUntil(eng.Now() + 0.05)
	})
	if avg != 0 {
		t.Fatalf("steady-state shed path allocates %.2f allocs/op, want 0", avg)
	}
}
