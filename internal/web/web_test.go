package web

import (
	"testing"

	"edisim/internal/cluster"
	"edisim/internal/hw"
)

// microP and brawnyP are the baseline pair used across the web tests.
func microP() *hw.Platform  { m, _ := hw.BaselinePair(); return m }
func brawnyP() *hw.Platform { _, b := hw.BaselinePair(); return b }

// smallTestbed builds a reduced single-platform testbed.
func smallTestbed(p *hw.Platform, n, db, clients int) *cluster.Testbed {
	return cluster.New(cluster.Config{
		Groups:  []cluster.GroupConfig{{Platform: p, Nodes: n}},
		DBNodes: db, Clients: clients,
	})
}

// smallDeployment builds a reduced middle tier for fast tests.
func smallDeployment(t *testing.T, p *hw.Platform, nWeb, nCache int) *Deployment {
	t.Helper()
	tb := smallTestbed(p, nWeb+nCache, 2, 4)
	d := NewDeployment(tb, p, nWeb, nCache, 1)
	d.Warm(0.93)
	return d
}

func TestRunProducesThroughput(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	r := d.Run(RunConfig{Concurrency: 64, Duration: 5})
	// 64 conn/s × 8 calls ≈ 512 req/s offered.
	if r.Throughput < 400 || r.Throughput > 600 {
		t.Fatalf("throughput %.0f, want ≈512", r.Throughput)
	}
	if r.ErrorRate > 0.01 {
		t.Fatalf("unexpected errors at low load: %.3f", r.ErrorRate)
	}
	if r.MeanDelay <= 0 || r.MeanDelay > 0.1 {
		t.Fatalf("mean delay %.4f out of range", r.MeanDelay)
	}
}

func TestCacheHitRatioMatchesWarm(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	r := d.Run(RunConfig{Concurrency: 128, Duration: 5, CacheHit: 0.93})
	if r.HitRatio < 0.90 || r.HitRatio > 0.96 {
		t.Fatalf("measured hit ratio %.3f, want ≈0.93", r.HitRatio)
	}
}

func TestLowerHitRatioRaisesDBTraffic(t *testing.T) {
	high := smallDeployment(t, microP(), 6, 3)
	rHigh := high.Run(RunConfig{Concurrency: 64, Duration: 5, CacheHit: 0.93})

	lowTb := smallTestbed(microP(), 9, 2, 4)
	low := NewDeployment(lowTb, microP(), 6, 3, 1)
	low.Warm(0.60)
	rLow := low.Run(RunConfig{Concurrency: 64, Duration: 5, CacheHit: 0.60})

	if rLow.HitRatio >= rHigh.HitRatio {
		t.Fatalf("hit ratios: low-warm %.2f >= high-warm %.2f", rLow.HitRatio, rHigh.HitRatio)
	}
	// More misses → more DB lookups → more DB time observed.
	if rLow.DBDelay.N() <= rHigh.DBDelay.N() {
		t.Fatalf("DB lookups: %d (60%%) <= %d (93%%)", rLow.DBDelay.N(), rHigh.DBDelay.N())
	}
}

func TestBrawnyFasterThanMicroAtLowLoad(t *testing.T) {
	e := smallDeployment(t, microP(), 6, 3)
	re := e.Run(RunConfig{Concurrency: 32, Duration: 5})
	d := smallDeployment(t, brawnyP(), 2, 1)
	rd := d.Run(RunConfig{Concurrency: 32, Duration: 5})
	ratio := re.MeanDelay / rd.MeanDelay
	// §5.1.2 observation 1: micro delay ≈5× brawny at low load.
	if ratio < 3 || ratio > 8 {
		t.Fatalf("delay ratio %.1f, want ≈5", ratio)
	}
}

func TestOverloadProducesErrors(t *testing.T) {
	d := smallDeployment(t, microP(), 3, 2)
	// 3 web servers at ≈45 conn/s each saturate near 135 conn/s; 400 is
	// far beyond (the paper's error region).
	r := d.Run(RunConfig{Concurrency: 400, Duration: 12})
	if r.ErrorRate < 0.01 && r.ConnFailures == 0 {
		t.Fatalf("no errors under 3x overload: rate=%.4f", r.ErrorRate)
	}
}

func TestImageTrafficGrowsReplySizesAndDelay(t *testing.T) {
	plain := smallDeployment(t, microP(), 6, 3)
	rp := plain.Run(RunConfig{Concurrency: 64, Duration: 5, ImageFrac: 0})
	img := smallDeployment(t, microP(), 6, 3)
	ri := img.Run(RunConfig{Concurrency: 64, Duration: 5, ImageFrac: 0.20})
	if ri.MeanDelay <= rp.MeanDelay {
		t.Fatalf("image traffic should raise delay: %.4f vs %.4f", ri.MeanDelay, rp.MeanDelay)
	}
}

func TestPowerScalesWithLoad(t *testing.T) {
	idle := smallDeployment(t, microP(), 6, 3)
	rIdle := idle.Run(RunConfig{Concurrency: 16, Duration: 5})
	busy := smallDeployment(t, microP(), 6, 3)
	rBusy := busy.Run(RunConfig{Concurrency: 512, Duration: 5})
	if rBusy.MeanPower <= rIdle.MeanPower {
		t.Fatalf("power did not rise with load: %.1f vs %.1f",
			float64(rBusy.MeanPower), float64(rIdle.MeanPower))
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := smallDeployment(t, microP(), 3, 2).Run(RunConfig{Concurrency: 64, Duration: 3})
	b := smallDeployment(t, microP(), 3, 2).Run(RunConfig{Concurrency: 64, Duration: 3})
	if a.Throughput != b.Throughput || a.MeanDelay != b.MeanDelay || a.Energy != b.Energy {
		t.Fatalf("same seed produced different results: %v/%v vs %v/%v",
			a.Throughput, a.MeanDelay, b.Throughput, b.MeanDelay)
	}
}

func TestAvgReplyBytesMatchesPaper(t *testing.T) {
	cases := []struct{ frac, wantKB float64 }{
		{0, 1.5}, {0.06, 3.8}, {0.10, 5.8}, {0.20, 10},
	}
	for _, c := range cases {
		got := AvgReplyBytes(c.frac) / 1024
		if got < c.wantKB*0.85 || got > c.wantKB*1.15 {
			t.Errorf("avg reply at %.0f%% image: %.1fKB, paper says %.1fKB",
				100*c.frac, got, c.wantKB)
		}
	}
}

func TestTable7DecompositionShape(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	r := d.Run(RunConfig{Concurrency: 64, Duration: 5, ImageFrac: 0.2})
	if r.CacheDelay.N() == 0 || r.DBDelay.N() == 0 || r.WebTotal.N() == 0 {
		t.Fatal("decomposition not recorded")
	}
	// Web-side total includes the cache leg.
	if r.WebTotal.Mean() <= r.CacheDelay.Mean() {
		t.Fatalf("total %.4f <= cache %.4f", r.WebTotal.Mean(), r.CacheDelay.Mean())
	}
	// Edison cache delay at low load ≈4.6 ms (Table 7 first row band).
	if ms := r.CacheDelay.Mean() * 1e3; ms < 2 || ms > 8 {
		t.Fatalf("cache delay %.2fms, want ≈4.6ms", ms)
	}
}

func TestWebServerAdmissionLimits(t *testing.T) {
	d := smallDeployment(t, microP(), 3, 2)
	w := d.Web[0]
	// Exhaust the inflight bound synchronously.
	w.inflight = d.Plat.Web.MaxInflight
	if w.admitRequest(func() {}) {
		t.Fatal("request admitted beyond MaxInflight")
	}
	if w.errored != 1 {
		t.Fatalf("errored=%d", w.errored)
	}
}

func TestCacheServerStore(t *testing.T) {
	tb := smallTestbed(microP(), 5, 2, 4)
	d := NewDeployment(tb, microP(), 3, 2, 1) // unwarmed: byte accounting is exact
	c := d.Cache[0]
	k := key(1, 1)
	c.Set(k, 100)
	c.Set(k, 200) // overwrite
	if c.used != 200 {
		t.Fatalf("used %d after overwrite", c.used)
	}
	if _, ok := c.lookup(k); !ok {
		t.Fatal("stored key missing")
	}
	if _, ok := c.lookup(key(9, 99)); ok {
		t.Fatal("absent key found")
	}
	if c.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", c.HitRatio())
	}
}

func TestCacheForIsConsistent(t *testing.T) {
	d := smallDeployment(t, microP(), 3, 2)
	if d.cacheFor(key(1, 1)) != d.cacheFor(key(1, 1)) {
		t.Fatal("cache mapping not stable")
	}
	spread := map[*CacheServer]bool{}
	for i := 0; i < 50; i++ {
		spread[d.cacheFor(key(i%15, i*37))] = true
	}
	if len(spread) < 2 {
		t.Fatal("hashing does not spread keys across cache servers")
	}
}

// TestWebRequestSteadyStateNoAlloc pins the pooled request path — Send,
// admission, table/row draws, cache GET, reply assembly, delivery — at zero
// allocations per request once the record pool, message pool and PS-task
// pools have warmed up. The cache is fully warm so the path is the
// steady-state hit chain (the DB miss leg crosses the hw disk layer, which
// has its own closures and is pinned by the hw benchmarks).
func TestWebRequestSteadyStateNoAlloc(t *testing.T) {
	tb := smallTestbed(microP(), 9, 2, 4)
	d := NewDeployment(tb, microP(), 6, 3, 1)
	d.Warm(1.0)
	eng := d.Eng
	cfg := RunConfig{Concurrency: 1}.withDefaults()
	done := func(bool) {}
	// Warm every pool and the route cache.
	for i := 0; i < 100; i++ {
		d.request(d.Clients[i%len(d.Clients)], d.Web[i%len(d.Web)], cfg, done)
		eng.RunUntil(eng.Now() + 0.05)
	}
	avg := testing.AllocsPerRun(200, func() {
		d.request(d.Clients[0], d.Web[1], cfg, done)
		eng.RunUntil(eng.Now() + 0.05)
	})
	if avg != 0 {
		t.Fatalf("steady-state request path allocates %.2f allocs/op, want 0", avg)
	}
}
