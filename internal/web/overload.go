package web

import (
	"fmt"
	"math"

	"edisim/internal/hw"
	"edisim/internal/sim"
)

// This file is the overload-resilience layer: server-side admission
// control (ShedPolicy), client-side retry budgets, and the SLO controller
// (windowed quantiles, reserve activation, brownout). All of it is opt-in:
// with the knobs at their zero values Run's event stream is byte-identical
// to builds without this file.

// ShedMode selects the admission-control policy a web server applies
// before committing a worker thread to a request.
type ShedMode string

const (
	// ShedOff disables admission control (the paper's behavior: requests
	// queue until the server-side 2 s worker wait trips a 500).
	ShedOff ShedMode = ""
	// ShedDropTail rejects once the admitted-but-unfinished count reaches
	// Queue — a bounded listen queue.
	ShedDropTail ShedMode = "drop"
	// ShedDeadline rejects a request whose estimated wait for a worker
	// thread already exceeds Deadline — early rejection of work that would
	// blow its latency budget anyway, the cheapest time to fail.
	ShedDeadline ShedMode = "deadline"
	// ShedPriority tags a LowFrac fraction of requests as low-priority
	// (crawler/batch class) and sheds those at half the Queue bound,
	// keeping headroom for interactive traffic.
	ShedPriority ShedMode = "priority"
)

// ShedPolicy bounds what a web server accepts under overload. A rejection
// is a fast-fail 503: it burns FastFailFrac of a full request's CPU and
// returns a short reply, so shedding is cheap but not free. Rejections are
// final from the client's view (a 503 carries Retry-After; the simulated
// clients honor it by not retrying), so shedding never feeds the retry
// path.
type ShedPolicy struct {
	Mode ShedMode
	// Queue bounds the per-server admitted-but-unfinished request count
	// (default: the platform's MaxInflight).
	Queue int
	// Deadline is the estimated-wait bound for ShedDeadline, seconds
	// (default 1).
	Deadline float64
	// LowFrac is the fraction of traffic tagged low-priority under
	// ShedPriority (default 0.2).
	LowFrac float64
	// FastFailFrac is a rejection's CPU cost as a fraction of the
	// platform's BaseCPU+ReplyCPU service cost (default 0.1).
	FastFailFrac float64
}

// Enabled reports whether any admission control is configured.
func (p ShedPolicy) Enabled() bool { return p.Mode != ShedOff }

// withDefaults resolves unset knobs against the web tier's calibration.
func (p ShedPolicy) withDefaults(costs hw.WebCosts) ShedPolicy {
	if p.Queue == 0 {
		p.Queue = costs.MaxInflight
	}
	if p.Deadline == 0 {
		p.Deadline = 1
	}
	if p.LowFrac == 0 {
		p.LowFrac = 0.2
	}
	if p.FastFailFrac == 0 {
		p.FastFailFrac = 0.1
	}
	return p
}

// Validate rejects policies whose values would fail silently.
func (p ShedPolicy) Validate() error {
	switch p.Mode {
	case ShedOff, ShedDropTail, ShedDeadline, ShedPriority:
	default:
		return fmt.Errorf("web: unknown shed mode %q (want %q, %q or %q)", p.Mode, ShedDropTail, ShedDeadline, ShedPriority)
	}
	if p.Queue < 0 {
		return fmt.Errorf("web: shed queue %d must be non-negative", p.Queue)
	}
	if badDur(p.Deadline) {
		return fmt.Errorf("web: shed deadline %g must be finite and non-negative", p.Deadline)
	}
	if math.IsNaN(p.LowFrac) || p.LowFrac < 0 || p.LowFrac > 1 {
		return fmt.Errorf("web: shed low-priority fraction %g must be in [0,1]", p.LowFrac)
	}
	if math.IsNaN(p.FastFailFrac) || p.FastFailFrac < 0 || p.FastFailFrac > 1 {
		return fmt.Errorf("web: fast-fail fraction %g must be in [0,1]", p.FastFailFrac)
	}
	return nil
}

// refuseConn reports whether admission control refuses an arriving SYN
// outright (TCP RST). A refused client fails fast instead of entering the
// kernel retransmit schedule, which keeps the backlog out of the
// port-churn thrash region — without this, a sustained spike past the
// accept rate halves the accept rate exactly when it is needed most (the
// metastable collapse this layer exists to prevent). Down nodes are left
// to the normal drop/timeout path so crash accounting is unchanged.
func (w *WebServer) refuseConn() bool {
	p := &w.dep.shed
	if p.Mode == ShedOff {
		return false
	}
	w.syncIncarnation()
	if !w.Node.Up() {
		return false
	}
	// The thrash threshold is the hard ceiling for every mode: beyond it
	// accepting slows down and refusing is strictly better.
	limit := w.dep.Params.SynBacklog / 2
	switch p.Mode {
	case ShedDeadline:
		// Refuse when the backlog ahead already implies an accept wait
		// past the deadline.
		if float64(w.pendingSyn)*w.connInterval() > p.Deadline {
			return true
		}
	case ShedPriority:
		if w.dep.rnd.class.Bool(p.LowFrac) {
			limit /= 2
		}
	}
	return w.pendingSyn >= limit
}

// shouldShed applies the configured admission policy to a request arriving
// at w. Down nodes are left to admitRequest's 500 path so crash accounting
// is unchanged by shedding.
func (w *WebServer) shouldShed() bool {
	w.syncIncarnation()
	if !w.Node.Up() {
		return false
	}
	p := &w.dep.shed
	switch p.Mode {
	case ShedDropTail:
		return w.inflight >= p.Queue
	case ShedPriority:
		limit := p.Queue
		if w.dep.rnd.class.Bool(p.LowFrac) {
			limit = (limit + 1) / 2
		}
		return w.inflight >= limit
	case ShedDeadline:
		eng := w.dep.Eng
		at := eng.Now()
		if prev := w.lastReq + sim.Time(w.dep.loadFactor/w.costs().ReqRate); prev > at {
			at = prev
		}
		return float64(at-eng.Now()) > p.Deadline
	}
	return false
}

// SLO is a service-level objective plus the reactive controller that
// defends it. Every Window seconds the controller evaluates the window's
// latency quantile and availability; while the SLO burns it activates
// reserve web servers (one per window) and, when Brownout is set, degrades
// cache misses to cheap stale answers instead of DB trips. Two consecutive
// healthy windows wind the reaction back (hysteresis).
type SLO struct {
	// Latency is the response-time target in seconds at Percentile
	// (default percentile 0.99).
	Latency    float64
	Percentile float64
	// Availability is the floor on served/attempted per window; 0 disables
	// the availability clause.
	Availability float64
	// Window is the controller period in seconds (default 1).
	Window float64
	// Brownout enables degraded cache-only answers while burning.
	Brownout bool
	// Reserve holds back this many web servers from the routing rotation
	// at run start; the controller activates them while burning.
	Reserve int
	// Observer, when non-nil, receives every controller window verdict —
	// the run's time series for plots and phase-by-phase assertions.
	Observer func(SLOWindow)
}

// SLOWindow is one controller evaluation, T seconds after run start.
type SLOWindow struct {
	T            float64
	Served       int64 // operations completed OK in this window
	Ops          int64 // operations settled in this window (incl. failures)
	Shed         int64 // requests rejected by admission control
	Quantile     float64
	Availability float64
	Burning      bool
	Brownout     bool
	Active       int // web servers in the routing rotation after reacting
}

// withDefaults resolves unset SLO knobs.
func (s SLO) withDefaults() SLO {
	if s.Percentile == 0 {
		s.Percentile = 0.99
	}
	if s.Window == 0 {
		s.Window = 1
	}
	return s
}

// Validate rejects SLOs whose values would fail silently. A nil SLO is
// valid (no controller).
func (s *SLO) Validate() error {
	if s == nil {
		return nil
	}
	if math.IsNaN(s.Latency) || math.IsInf(s.Latency, 0) || s.Latency <= 0 {
		return fmt.Errorf("web: SLO latency target %g must be positive and finite", s.Latency)
	}
	if math.IsNaN(s.Percentile) || s.Percentile < 0 || s.Percentile >= 1 {
		return fmt.Errorf("web: SLO percentile %g must be in [0,1)", s.Percentile)
	}
	if math.IsNaN(s.Availability) || s.Availability < 0 || s.Availability > 1 {
		return fmt.Errorf("web: SLO availability floor %g must be in [0,1]", s.Availability)
	}
	if math.IsNaN(s.Window) || math.IsInf(s.Window, 0) || s.Window < 0 {
		return fmt.Errorf("web: SLO window %g must be finite and non-negative", s.Window)
	}
	if s.Reserve < 0 {
		return fmt.Errorf("web: SLO reserve %d must be non-negative", s.Reserve)
	}
	return nil
}

// retryBurst caps the retry-budget token balance: after a long quiet
// stretch at most this many retries can fire back-to-back.
const retryBurst = 10

// retryBudget is a Finagle-style token bucket bounding client retries
// fleet-wide: every first attempt deposits rate tokens (e.g. 0.1), every
// retry spends one, so retries are capped at roughly rate × traffic plus
// the burst allowance — a crash under peak load degrades instead of
// amplifying into a storm.
type retryBudget struct {
	rate   float64
	tokens float64
}

func (b *retryBudget) deposit() {
	b.tokens += b.rate
	if b.tokens > retryBurst {
		b.tokens = retryBurst
	}
}

func (b *retryBudget) spend() bool {
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// overloadCounters is the Deployment's per-run overload accounting:
// window-gated run totals for Result, and the SLO controller's
// per-evaluation-window counters (reset every tick).
type overloadCounters struct {
	shed, degraded             int64
	winServed, winOps, winShed int64
	// winArr counts connection arrivals per controller window; only
	// maintained when autoscale is armed (the predictive policies read an
	// arrival rate, closed-loop runs leave it zero).
	winArr int64
}

// noteShed records one rejected request (run total gated to the
// measurement window; controller window always).
func (d *Deployment) noteShed() {
	d.ovl.winShed++
	if now := d.Eng.Now(); now >= d.winStart && now <= d.winEnd {
		d.ovl.shed++
	}
}

// noteDegraded records one brownout cache-only answer.
func (d *Deployment) noteDegraded() {
	if now := d.Eng.Now(); now >= d.winStart && now <= d.winEnd {
		d.ovl.degraded++
	}
}

// noteSettled feeds the SLO controller's current window: every settled
// operation counts toward availability, successful ones contribute their
// latency to the window digest.
func (d *Deployment) noteSettled(ok bool, delay float64) {
	d.ovl.winOps++
	if ok {
		d.ovl.winServed++
		if d.sloDig != nil {
			d.sloDig.Add(delay)
		}
	}
}
