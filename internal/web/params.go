// Package web models the paper's online-service workload (§5.1): a
// Linux + Lighttpd + MySQL + PHP stack with memcached cache servers, driven
// by httperf-style load generators through HAProxy. Web and cache tiers run
// on any catalog platform's cluster; the MySQL database always runs on the
// testbed's infra-platform servers (two dedicated Dell R620s in the paper).
//
// The model is a discrete-event simulation on the shared substrate packages
// (sim, hw, netsim): requests consume CPU slices on processor-sharing nodes,
// cache/database round trips traverse the store-and-forward fabric, and
// connection establishment is rate-limited per server (the "ability to
// create new TCP ports and new threads" that the paper identifies as the
// real throughput ceiling). Per-platform service costs live in the hw
// platform catalog (hw.Platform.Web); the platform-independent protocol
// constants below are calibrated against paper observables, cited inline.
package web

// Params holds the platform-independent service limits; the per-platform
// CPU costs and admission rates come from hw.Platform.Web.
type Params struct {
	// SynBacklog is the per-server pending-connection queue; overflow drops
	// the SYN and the client retries on the kernel schedule.
	SynBacklog int
	// RetryBackoff is the client SYN retransmission schedule in seconds
	// (Linux: +1, +2, +4 → observed spikes at 1 s, 3 s, 7 s in Figure 11).
	RetryBackoff []float64
	// ThrashFactor degrades effective connection acceptance when the SYN
	// backlog is saturated (TIME_WAIT/port churn), producing the brawny
	// cluster's throughput drop at 2048 conn/s.
	ThrashFactor float64
	// TransferPenaltyPerKB scales down the effective connection and
	// request admission rates as replies grow: each worker thread and port
	// is held for the duration of the transfer, so bigger replies mean
	// fewer creations per second. This produces the paper's ≈15%
	// throughput loss at 20% image queries (§5.1.2, Figure 6) on both
	// clusters without touching CPU calibration.
	TransferPenaltyPerKB float64
}

// DefaultParams returns the calibration used for all paper reproductions.
func DefaultParams() Params {
	return Params{
		SynBacklog:           128,
		RetryBackoff:         []float64{1, 2, 4},
		ThrashFactor:         0.5,
		TransferPenaltyPerKB: 0.017,
	}
}

// Reply size model (§5.1.1): non-image replies average 1.5 KB; image
// replies ≈42 KB, so the paper's measured average reply sizes fall out:
// 0% → 1.5 KB, 6% → 3.8 KB, 10% → 5.8 KB, 20% → 10 KB.
const (
	plainReplyBytes = 1536
	imageReplyBytes = 43000
	requestBytes    = 300
	rpcHeaderBytes  = 60
)

// AvgReplyBytes reports the mean reply size at the given image fraction.
func AvgReplyBytes(imageFrac float64) float64 {
	return (1-imageFrac)*plainReplyBytes + imageFrac*imageReplyBytes
}
