// Package web models the paper's online-service workload (§5.1): a
// Linux + Lighttpd + MySQL + PHP stack with memcached cache servers, driven
// by httperf-style load generators through HAProxy. Web and cache tiers run
// on either the Edison or the Dell cluster; the MySQL database always runs
// on two dedicated Dell R620 servers, exactly as in the paper.
//
// The model is a discrete-event simulation on the shared substrate packages
// (sim, hw, netsim): requests consume CPU slices on processor-sharing nodes,
// cache/database round trips traverse the store-and-forward fabric, and
// connection establishment is rate-limited per server (the "ability to
// create new TCP ports and new threads" that the paper identifies as the
// real throughput ceiling). Every constant below is calibrated against a
// paper observable, cited inline.
package web

// Params holds the calibrated per-platform service costs and limits.
// Maps are keyed by hw.NodeSpec.Name ("Edison", "DellR620").
type Params struct {
	// WebBaseCPU is the single-core seconds a web server spends parsing a
	// request and issuing the cache lookup (Lighttpd + FastCGI dispatch +
	// PHP prologue).
	WebBaseCPU map[string]float64
	// WebReplyCPU is the single-core seconds spent handling the upstream
	// (cache or DB) reply and assembling the page, excluding per-byte cost.
	WebReplyCPU map[string]float64
	// CacheClientCPU is the single-core seconds PHP's memcached/MySQL
	// client spends receiving and unmarshalling an upstream reply. It is
	// part of the measured cache/DB delay (the paper timestamps around the
	// client call), which is how web-tier CPU queueing inflates Table 7's
	// cache delays at high request rates.
	CacheClientCPU map[string]float64
	// WebPerKBCPU is the additional single-core seconds per KB of reply
	// body (PHP string handling; §5.1.2: heavier images cost more CPU).
	WebPerKBCPU map[string]float64
	// CacheGetCPU is the single-core seconds memcached spends per GET.
	// Calibrated so Edison cache servers sit near the paper's 9% CPU and
	// Dell's near 1.6% at peak throughput.
	CacheGetCPU map[string]float64
	// DBQueryCPU is the single-core seconds MySQL spends per query on the
	// (always Dell) database servers, keyed by platform for completeness.
	DBQueryCPU map[string]float64
	// ConnRate is the sustainable new-connection acceptance rate per web
	// server (ports + threads). Calibrated to the error onsets: the Edison
	// cluster (24 web) errors beyond 1024 conn/s, the Dell cluster (2 web)
	// beyond 2048 (§5.1.2 observations 3 and 4).
	ConnRate map[string]float64
	// ReqRate is the sustainable request-service admission rate per web
	// server (thread churn). This is what caps the Dell cluster near
	// 7.5k req/s at only ≈45% CPU (§5.1.2: "throughput is limited by the
	// ability to create new TCP ports and new threads").
	ReqRate map[string]float64
	// MaxInflight is the per-server bound on requests being processed;
	// beyond it the server replies 500 (the paper's server errors).
	MaxInflight map[string]int
	// SynBacklog is the per-server pending-connection queue; overflow drops
	// the SYN and the client retries on the kernel schedule.
	SynBacklog int
	// RetryBackoff is the client SYN retransmission schedule in seconds
	// (Linux: +1, +2, +4 → observed spikes at 1 s, 3 s, 7 s in Figure 11).
	RetryBackoff []float64
	// ThrashFactor degrades effective connection acceptance when the SYN
	// backlog is saturated (TIME_WAIT/port churn), producing the Dell
	// throughput drop at 2048 conn/s.
	ThrashFactor float64
	// TransferPenaltyPerKB scales down the effective connection and
	// request admission rates as replies grow: each worker thread and port
	// is held for the duration of the transfer, so bigger replies mean
	// fewer creations per second. This produces the paper's ≈15%
	// throughput loss at 20% image queries (§5.1.2, Figure 6) on both
	// clusters without touching CPU calibration.
	TransferPenaltyPerKB float64
}

// DefaultParams returns the calibration used for all paper reproductions.
func DefaultParams() Params {
	return Params{
		// Edison per-request CPU ≈5.2 core-ms total at 1.5 KB replies:
		// 24 web servers at ≈86% CPU serve ≈7.5k req/s (Figure 4 peak and
		// §5.1.2 utilization report). Dell ≈1.4 core-ms: 2 servers at ≈45%.
		WebBaseCPU:     map[string]float64{"Edison": 2.4e-3, "DellR620": 0.55e-3},
		WebReplyCPU:    map[string]float64{"Edison": 1.4e-3, "DellR620": 0.50e-3},
		CacheClientCPU: map[string]float64{"Edison": 1.0e-3, "DellR620": 0.05e-3},
		WebPerKBCPU:    map[string]float64{"Edison": 0.16e-3, "DellR620": 0.018e-3},
		// Table 7: Edison cache delay 4.61 ms at 480 req/s (1.3 ms RTT +
		// service + transfer + client unmarshal); Dell 0.37 ms. Edison
		// cache servers run near 9% CPU at peak (§5.1.2), so the GET
		// itself is cheap even on the slow cores.
		CacheGetCPU: map[string]float64{"Edison": 0.3e-3, "DellR620": 0.06e-3},
		// Table 7: DB delay ≈1.6 ms measured from Dell web servers at low
		// load (the DB tier is Dell for both clusters).
		DBQueryCPU: map[string]float64{"Edison": 1.1e-3, "DellR620": 1.1e-3},
		// Error onsets: 1024 conn/s over 24 Edison servers = 42.7/s each
		// (errors start just beyond); 2048 over 2 Dell = 1024/s each.
		ConnRate: map[string]float64{"Edison": 45, "DellR620": 560},
		// Dell plateau: 2 × ≈4100 effective ≈ 8.2k req/s at ≈45% CPU (and
		// ≈7.2k at 20% image once the transfer penalty applies). Edison
		// servers are CPU-bound well before this admission cap binds.
		ReqRate:              map[string]float64{"Edison": 400, "DellR620": 4200},
		MaxInflight:          map[string]int{"Edison": 96, "DellR620": 1024},
		SynBacklog:           128,
		RetryBackoff:         []float64{1, 2, 4},
		ThrashFactor:         0.5,
		TransferPenaltyPerKB: 0.017,
	}
}

// Reply size model (§5.1.1): non-image replies average 1.5 KB; image
// replies ≈42 KB, so the paper's measured average reply sizes fall out:
// 0% → 1.5 KB, 6% → 3.8 KB, 10% → 5.8 KB, 20% → 10 KB.
const (
	plainReplyBytes = 1536
	imageReplyBytes = 43000
	requestBytes    = 300
	rpcHeaderBytes  = 60
)

// AvgReplyBytes reports the mean reply size at the given image fraction.
func AvgReplyBytes(imageFrac float64) float64 {
	return (1-imageFrac)*plainReplyBytes + imageFrac*imageReplyBytes
}
