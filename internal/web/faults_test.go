package web

import (
	"math"
	"strings"
	"testing"

	"edisim/internal/faults"
)

func TestRunConfigValidateRecoveryKnobs(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	base := RunConfig{Concurrency: 32, Duration: 5}
	with := func(mod func(*RunConfig)) RunConfig {
		c := base
		mod(&c)
		return c
	}
	cases := []struct {
		name    string
		cfg     RunConfig
		wantErr string // substring; "" means valid
	}{
		{"healthy zero recovery", base, ""},
		{"recovery enabled", with(func(c *RunConfig) { c.RequestTimeout = 0.5 }), ""},
		{"full recovery knobs", with(func(c *RunConfig) { c.RequestTimeout = 0.5; c.MaxRetries = 5; c.RetryBase = 0.1 }), ""},
		{"negative timeout", with(func(c *RunConfig) { c.RequestTimeout = -1 }), "request timeout"},
		{"nan timeout", with(func(c *RunConfig) { c.RequestTimeout = nan }), "request timeout"},
		{"inf timeout", with(func(c *RunConfig) { c.RequestTimeout = inf }), "request timeout"},
		{"negative retries", with(func(c *RunConfig) { c.MaxRetries = -2 }), "max retries"},
		{"negative retry base", with(func(c *RunConfig) { c.RetryBase = -0.1 }), "retry base"},
		{"nan retry base", with(func(c *RunConfig) { c.RetryBase = nan }), "retry base"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestRecoveryDefaultsOnlyWhenEnabled(t *testing.T) {
	off := RunConfig{Concurrency: 10}.withDefaults()
	if off.MaxRetries != 0 || off.RetryBase != 0 {
		t.Fatalf("recovery defaults filled with timeout off: %+v", off)
	}
	on := RunConfig{Concurrency: 10, RequestTimeout: 0.5}.withDefaults()
	if on.MaxRetries != 3 || on.RetryBase != 0.05 {
		t.Fatalf("recovery defaults wrong: MaxRetries=%d RetryBase=%g, want 3 and 0.05", on.MaxRetries, on.RetryBase)
	}
}

// TestFailoverSurvivesWebCrash: with client timeouts on, crashing one web
// server mid-run steers requests to the live replicas — the run keeps
// serving, counts timeouts and retries, and still beats a run with no
// recovery at all under the same fault.
func TestFailoverSurvivesWebCrash(t *testing.T) {
	tb := smallTestbed(microP(), 9, 2, 8)
	d := NewDeployment(tb, microP(), 6, 3, 1)
	rc := RunConfig{Concurrency: 256, Duration: 10, RequestTimeout: 0.25}
	d.WarmFor(rc)
	targets := make([]faults.Target, len(d.Web))
	for i, w := range d.Web {
		targets[i] = faults.Target{Node: w.Node, Fab: d.Fab}
	}
	// Half the tier crashes in a rolling wave starting at t=4 — past the
	// default warm-up (25% of 10 s), so the fault's timeouts land inside
	// the measurement window.
	plan := faults.RollingCrashes("web", 3, 4, 1.5, 2)
	faults.Schedule(d.Eng, plan, 1, map[string][]faults.Target{"web": targets})
	r := d.Run(rc)
	if r.Throughput <= 0 {
		t.Fatal("no throughput under a single-node crash with failover on")
	}
	if r.Timeouts == 0 {
		t.Fatal("a mid-run crash produced no client timeouts")
	}
	if r.Retries == 0 {
		t.Fatal("timeouts fired but nothing was retried")
	}
	if r.Attempts <= r.Retries {
		t.Fatalf("attempts %d must exceed retries %d", r.Attempts, r.Retries)
	}
	// Degraded, not dead: the error rate stays well below the crashed
	// node's request share lasting the whole window.
	if r.ErrorRate > 0.5 {
		t.Fatalf("error rate %.3f under failover, want < 0.5", r.ErrorRate)
	}
}

// TestCrashDegradesUnrecoveredRun: the same fault with recovery off must
// still degrade (lost requests) rather than deadlock the run.
func TestCrashDegradesUnrecoveredRun(t *testing.T) {
	tb := smallTestbed(microP(), 9, 2, 4)
	d := NewDeployment(tb, microP(), 6, 3, 1)
	rc := RunConfig{Concurrency: 64, Duration: 10}
	d.WarmFor(rc)
	victim := d.Web[1]
	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.NodeCrash, At: 2, Duration: 0, Role: "web"},
	}}
	faults.Schedule(d.Eng, plan, 1,
		map[string][]faults.Target{"web": {{Node: victim.Node, Fab: d.Fab}}})
	r := d.Run(rc)
	if r.Throughput <= 0 {
		t.Fatal("run deadlocked: no completed requests at all")
	}
	if r.Timeouts != 0 || r.Retries != 0 {
		t.Fatalf("recovery accounting nonzero with recovery off: timeouts=%d retries=%d", r.Timeouts, r.Retries)
	}
}

// TestFaultFreeRecoveryRunMatchesBaseline: enabling timeouts on a healthy
// run must not change what is measured beyond the extra accounting — no
// timeouts, no retries, attempts equal operations.
func TestFaultFreeRecoveryRunMatchesBaseline(t *testing.T) {
	rc := RunConfig{Concurrency: 32, Duration: 5, RequestTimeout: 2}
	d := smallDeployment(t, microP(), 6, 3)
	r := d.Run(rc)
	if r.Timeouts != 0 || r.Retries != 0 {
		t.Fatalf("healthy run counted timeouts=%d retries=%d, want 0/0", r.Timeouts, r.Retries)
	}
	if r.Attempts == 0 {
		t.Fatal("recovery-on run recorded no attempts")
	}
	if r.ErrorRate > 0.01 {
		t.Fatalf("healthy run with recovery on errored: %.3f", r.ErrorRate)
	}
}
