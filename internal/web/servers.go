package web

import (
	"edisim/internal/hw"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// WebServer is one Lighttpd+PHP node in the middle tier.
type WebServer struct {
	Node *hw.Node

	dep *Deployment

	// Connection admission (ports/threads for accept).
	lastAccept  sim.Time
	pendingSyn  int
	activeConns int

	// Request admission (thread churn).
	lastReq  sim.Time
	inflight int

	// Counters.
	accepted, synDropped, refused int64
	served, errored               int64

	// inc is the node incarnation the admission state belongs to; a crash
	// bumps the node's counter and the first admission after the reboot
	// resets the wiped kernel-side state (see syncIncarnation).
	inc uint64
}

func newWebServer(dep *Deployment, node *hw.Node) *WebServer {
	return &WebServer{Node: node, dep: dep}
}

// costs resolves the middle-tier platform's web calibration.
func (w *WebServer) costs() hw.WebCosts { return w.dep.Plat.Web }

// connInterval is the minimum spacing between accepted connections,
// inflated by the reply-size load factor (threads/ports held longer for
// bigger transfers) and when the SYN backlog is under pressure (port churn
// thrash).
func (w *WebServer) connInterval() float64 {
	base := w.dep.loadFactor / w.costs().ConnRate
	if w.pendingSyn > w.dep.Params.SynBacklog/2 {
		frac := float64(w.pendingSyn) / float64(w.dep.Params.SynBacklog)
		base /= 1 - w.dep.Params.ThrashFactor*frac
	}
	return base
}

// syncIncarnation lazily clears admission state wiped by a crash: the SYN
// backlog, connection and inflight counts died with the kernel, so the first
// admission attempt after a reboot starts from a clean table. Events queued
// before the crash may still decrement the fresh counters (briefly negative),
// which only loosens admission — matching a freshly booted, empty server.
// On a never-crashed node this is a single compare.
func (w *WebServer) syncIncarnation() {
	if inc := w.Node.Incarnation(); inc != w.inc {
		w.inc = inc
		w.pendingSyn, w.activeConns, w.inflight = 0, 0, 0
	}
}

// admitConn processes an arriving SYN. It returns false when the SYN is
// dropped (backlog full, or the host is down); otherwise accept() will run
// once the server gets to it.
func (w *WebServer) admitConn(accept func()) bool {
	w.syncIncarnation()
	if !w.Node.Up() {
		w.synDropped++
		return false
	}
	if w.pendingSyn >= w.dep.Params.SynBacklog {
		w.synDropped++
		return false
	}
	eng := w.dep.Eng
	at := eng.Now() + sim.Time(w.connInterval())
	if prev := w.lastAccept + sim.Time(w.connInterval()); prev > at {
		at = prev
	}
	w.lastAccept = at
	w.pendingSyn++
	eng.At(at, func() {
		w.pendingSyn--
		w.activeConns++
		w.accepted++
		accept()
	})
	return true
}

func (w *WebServer) closeConn() { w.activeConns-- }

// admitRequest applies the request-rate cap and the inflight bound.
// It returns false (500) when the server is overloaded or down.
func (w *WebServer) admitRequest(start func()) bool {
	w.syncIncarnation()
	if !w.Node.Up() {
		w.errored++
		return false
	}
	if w.inflight >= w.costs().MaxInflight {
		w.errored++
		return false
	}
	eng := w.dep.Eng
	interval := w.dep.loadFactor / w.costs().ReqRate
	at := eng.Now()
	if prev := w.lastReq + sim.Time(interval); prev > at {
		at = prev
	}
	// A request that would wait more than 2 s for a worker thread times
	// out server-side (the paper's 5xx under overload).
	if float64(at-eng.Now()) > 2.0 {
		w.errored++
		return false
	}
	w.lastReq = at
	w.inflight++
	eng.At(at, start)
	return true
}

func (w *WebServer) finishRequest(ok bool) {
	w.inflight--
	if ok {
		w.served++
	}
}

// CacheServer is one memcached node holding a real key→size store.
type CacheServer struct {
	Node *hw.Node

	dep   *Deployment
	items map[rowKey]units.Bytes
	used  units.Bytes

	gets, hits int64
}

func newCacheServer(dep *Deployment, node *hw.Node) *CacheServer {
	return &CacheServer{Node: node, dep: dep, items: make(map[rowKey]units.Bytes)}
}

// Set stores a value size under key (warm-up path).
func (c *CacheServer) Set(key rowKey, size units.Bytes) {
	if old, ok := c.items[key]; ok {
		c.used -= old
	}
	c.items[key] = size
	c.used += size
}

// lookup performs the in-memory hit check (the actual data structure, not a
// coin flip) and returns the stored size.
func (c *CacheServer) lookup(key rowKey) (units.Bytes, bool) {
	c.gets++
	size, ok := c.items[key]
	if ok {
		c.hits++
	}
	return size, ok
}

// HitRatio reports the measured hit ratio so far.
func (c *CacheServer) HitRatio() float64 {
	if c.gets == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.gets)
}

// DBServer is one MySQL node (always on the testbed's infra platform, a
// Dell R620 in the paper's setup).
type DBServer struct {
	Node *hw.Node

	dep      *Deployment
	queryCPU float64 // per-query single-core seconds on this platform
	queries  int64
}

func newDBServer(dep *Deployment, node *hw.Node, queryCPU float64) *DBServer {
	return &DBServer{Node: node, dep: dep, queryCPU: queryCPU}
}

// rowKey identifies a row in the synthetic wikipedia+images dataset: a
// dense integer (table × rowsPerTable + row). The pre-pooling code
// formatted a "tNN:rNNNNNN" string per lookup, which allocated on every
// request; the integer hashes and compares without allocating. (The query
// path is driven by the pooled webReq record in request.go.)
type rowKey int32

// key builds the rowKey for a table/row pair.
func key(table, row int) rowKey { return rowKey(table*rowsPerTable + row) }

// cacheFor maps a key to its cache server (client-side consistent hashing,
// as PHP memcached clients do): FNV-1a over the key's 4 little-endian bytes.
func (dep *Deployment) cacheFor(k rowKey) *CacheServer {
	var h uint32 = 2166136261
	v := uint32(k)
	for i := 0; i < 4; i++ {
		h = (h ^ (v & 0xff)) * 16777619
		v >>= 8
	}
	return dep.Cache[int(h)%len(dep.Cache)]
}
