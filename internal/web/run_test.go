package web

import (
	"testing"
)

func TestWithDefaults(t *testing.T) {
	c := RunConfig{Concurrency: 10}.withDefaults()
	if c.CacheHit != DefaultCacheHit {
		t.Fatalf("unset CacheHit resolved to %v, want %v", c.CacheHit, DefaultCacheHit)
	}
	if c.CallsPerConn != 8 || c.Duration != 30 || c.WarmupFrac != 0.25 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if got := (RunConfig{CacheHit: ColdCache}).withDefaults().CacheHit; got != 0 {
		t.Fatalf("ColdCache resolved to %v, want 0", got)
	}
	if got := (RunConfig{CacheHit: 0.5}).withDefaults().CacheHit; got != 0.5 {
		t.Fatalf("explicit CacheHit rewritten to %v", got)
	}
}

// TestColdCacheRunIsExpressible: a ColdCache run must measure a ~0 hit
// ratio and push every request to the database — the configuration the old
// zero-means-default API silently turned into a 93% warm run.
func TestColdCacheRunIsExpressible(t *testing.T) {
	tb := smallTestbed(microP(), 9, 2, 4)
	d := NewDeployment(tb, microP(), 6, 3, 1)
	d.Warm(ColdCache) // nothing resident
	r := d.Run(RunConfig{Concurrency: 32, Duration: 5, CacheHit: ColdCache})
	if r.HitRatio != 0 {
		t.Fatalf("cold cache measured hit ratio %.3f, want 0", r.HitRatio)
	}
	if r.DBDelay.N() == 0 {
		t.Fatal("cold cache run recorded no DB lookups")
	}
	if r.Throughput <= 0 {
		t.Fatal("cold cache run served nothing")
	}
}

// TestUtilTrackerMatchesKnownIntegral checks the change-driven utilization
// integral on a hand-built schedule: one node, one task occupying its
// single-core CPU for the first half of the window.
func TestUtilTrackerMatchesKnownIntegral(t *testing.T) {
	tb := smallTestbed(microP(), 1, 1, 1)
	nodes := tb.Nodes(microP())
	n := nodes[0]
	eng := tb.Eng

	tr := trackMeanUtil(eng, nodes, 10, 20)
	defer tr.detach()
	// The micro platform has 2 effective cores: one busy task = 0.5 utilization.
	// Busy from t=12 to t=17: 5 s of 0.5 over a 10 s window → mean 0.25.
	eng.At(12, func() { n.ComputeSeconds(5, nil) })
	eng.Run()
	if eng.Now() < 20 {
		eng.RunUntil(20)
	}
	got := tr.mean()
	if got < 0.24 || got > 0.26 {
		t.Fatalf("tracked mean utilization %.4f, want ≈0.25", got)
	}
}

// TestUtilTrackerAddsNoPollingEvents: an idle run must not accumulate
// timer events from utilization sampling.
func TestUtilTrackerAddsNoPollingEvents(t *testing.T) {
	tb := smallTestbed(microP(), 2, 1, 1)
	tr := trackMeanUtil(tb.Eng, tb.Nodes(microP()), 0, 100)
	defer tr.detach()
	tb.Eng.RunUntil(100)
	// Only the single window-start anchor event should have fired.
	if fired := tb.Eng.Fired(); fired > 1 {
		t.Fatalf("idle tracked run fired %d events, want <= 1", fired)
	}
}
