package web

import (
	"fmt"

	"edisim/internal/autoscale"
	"edisim/internal/sim"
	"edisim/internal/stats"
)

// This file adapts a Deployment's web tier onto the autoscale.Pool
// contract. When RunConfig.Autoscale arms the elasticity engine, routing
// switches from the SLO reserve prefix (d.Web[next%d.active]) to an
// explicit rotation slice the lifecycle manager edits; parked nodes are
// powered off (hw.Node.PowerDown, zero draw), booting nodes burn busy
// power for the platform's boot delay, and freshly joined nodes run at
// the platform's warm-up factor until their caches are hot. With
// Autoscale nil none of this code runs and the event stream is
// byte-identical to builds without it.

// fleetPool is the autoscale.Pool over a deployment's web servers. It
// snapshots each node's busy floor and straggler factor at construction so
// boot-burn and warm-up overrides can be unwound, both per transition and
// at run teardown (deployments are reusable).
type fleetPool struct {
	d          *Deployment
	inRot      []bool
	savedFloor []float64
	savedSlow  []float64
}

func newFleetPool(d *Deployment) *fleetPool {
	p := &fleetPool{
		d:          d,
		inRot:      make([]bool, len(d.Web)),
		savedFloor: make([]float64, len(d.Web)),
		savedSlow:  make([]float64, len(d.Web)),
	}
	for i, w := range d.Web {
		p.savedFloor[i] = w.Node.BusyFloor
		p.savedSlow[i] = w.Node.SlowFactor()
	}
	return p
}

func (p *fleetPool) Len() int { return len(p.d.Web) }

func (p *fleetPool) Join(i int) {
	if p.inRot[i] {
		return
	}
	w := p.d.Web[i]
	w.Node.SetBusyFloor(p.savedFloor[i]) // boot burn off
	p.d.rotation = append(p.d.rotation, w)
	p.inRot[i] = true
}

func (p *fleetPool) Leave(i int) {
	if !p.inRot[i] {
		return
	}
	w := p.d.Web[i]
	rot := p.d.rotation
	for j, s := range rot {
		if s == w {
			p.d.rotation = append(rot[:j], rot[j+1:]...)
			break
		}
	}
	p.inRot[i] = false
}

func (p *fleetPool) Busy(i int) bool {
	w := p.d.Web[i]
	w.syncIncarnation()
	return w.pendingSyn > 0 || w.activeConns > 0 || w.inflight > 0
}

// PowerOn boots the node: powered (PowerUp revives a parked node) and
// drawing full busy power for the boot's duration — firmware, kernel and
// service start-up peg the package — but not serving yet.
func (p *fleetPool) PowerOn(i int) {
	n := p.d.Web[i].Node
	n.PowerUp()
	n.SetBusyFloor(1)
}

// PowerOff parks the drained node at zero draw. The manager's drain
// contract means nothing is in flight; a busy park would silently kill
// requests, so it fails loudly instead.
func (p *fleetPool) PowerOff(i int) {
	if p.Busy(i) {
		panic(fmt.Sprintf("web: autoscale parked busy server %s", p.d.Web[i].Node.ID))
	}
	n := p.d.Web[i].Node
	n.SetBusyFloor(p.savedFloor[i])
	n.PowerDown()
}

// SetSpeed applies the warm-up penalty on top of whatever straggler factor
// the node carried at run start; factor 1 restores that baseline.
func (p *fleetPool) SetSpeed(i int, factor float64) {
	p.d.Web[i].Node.SetSlowFactor(p.savedSlow[i] * factor)
}

// restore unwinds every autoscale override so the deployment is reusable:
// parked nodes are re-powered, busy floors and straggler factors return to
// their run-start values, and the rotation is dropped.
func (p *fleetPool) restore() {
	for i, w := range p.d.Web {
		n := w.Node
		if n.Parked() {
			n.PowerUp()
		}
		n.SetBusyFloor(p.savedFloor[i])
		n.SetSlowFactor(p.savedSlow[i])
	}
	p.d.rotation = nil
	for i := range p.inRot {
		p.inRot[i] = false
	}
}

// tickUtil integrates each web node's CPU utilization continuously so the
// SLO tick can hand the policy a windowed mean over the serving set —
// instantaneous utilization of a few-core micro server is far too noisy to
// size a fleet on.
type tickUtil struct {
	integs  []*stats.Integrator
	prev    []float64
	cancels []func()
}

func newTickUtil(d *Deployment) *tickUtil {
	eng := d.Eng
	now := float64(eng.Now())
	tu := &tickUtil{
		integs: make([]*stats.Integrator, len(d.Web)),
		prev:   make([]float64, len(d.Web)),
	}
	for i, w := range d.Web {
		tu.integs[i] = stats.NewIntegrator(now, w.Node.Utilization())
		i := i
		tu.cancels = append(tu.cancels, w.Node.SubscribeUtil(func(u float64) {
			tu.integs[i].Set(float64(eng.Now()), u)
		}))
	}
	return tu
}

// window reports the mean utilization and mean in-flight depth across the
// current rotation for the window of the given length ending now, then
// advances every node's baseline to now.
func (tu *tickUtil) window(d *Deployment, pool *fleetPool, now sim.Time, window float64) (util, queue float64) {
	nowF := float64(now)
	n := 0
	for i, w := range d.Web {
		tot := tu.integs[i].Total(nowF)
		if pool.inRot[i] {
			util += (tot - tu.prev[i]) / window
			queue += float64(w.inflight)
			n++
		}
		tu.prev[i] = tot
	}
	if n > 0 {
		util /= float64(n)
		queue /= float64(n)
	}
	return util, queue
}

func (tu *tickUtil) detach() {
	for _, cancel := range tu.cancels {
		cancel()
	}
}

// armAutoscale resolves platform defaults into cfg.Autoscale, binds the
// policy's capacity thresholds and starts the lifecycle manager over the
// web tier. Returned pieces are owned by Run, which must call
// teardownAutoscale when the run ends.
func (d *Deployment) armAutoscale(cfg RunConfig) (*autoscale.Manager, *fleetPool, *tickUtil) {
	ac := *cfg.Autoscale
	if ac.BootDelay == 0 {
		ac.BootDelay = d.Plat.Boot.Delay
	}
	if ac.Warmup == 0 {
		ac.Warmup = d.Plat.Boot.Warmup
	}
	if ac.WarmupFactor == 0 {
		ac.WarmupFactor = d.Plat.Boot.WarmupFactor
	}
	ac.Policy = autoscale.Bind(ac.Policy, autoscale.Capacity{
		ConnRate:    d.Plat.Web.ConnRate,
		MaxInflight: d.Plat.Web.MaxInflight,
	})
	pool := newFleetPool(d)
	d.rotation = nil
	mgr, err := autoscale.NewManager(d.Eng, pool, ac)
	if err != nil {
		// Config.Validate ran in RunConfig.Validate; what reaches here is a
		// pool-shape mismatch (e.g. MinServing above the tier size), which
		// is a caller bug exactly like an invalid RunConfig.
		panic(err)
	}
	d.scaler = mgr
	return mgr, pool, newTickUtil(d)
}

// teardownAutoscale stops the manager (pending timers become no-ops) and
// restores every node override so the deployment can run again.
func (d *Deployment) teardownAutoscale(mgr *autoscale.Manager, pool *fleetPool, tu *tickUtil) {
	mgr.Halt()
	tu.detach()
	pool.restore()
	d.scaler = nil
}
