package web

import (
	"edisim/internal/stats"
	"edisim/internal/units"
)

// request drives one HTTP request through the stack:
//
//	client --req--> web [CPU: parse] --get--> cache [CPU] --value--> web
//	                 (on miss: web --q--> DB [CPU+disk] --row--> web)
//	web [CPU: assemble] --reply--> client
//
// done(ok) runs at the client when the reply (or the 500) fully arrives.
// The web-server-side interval and the cache/DB sub-intervals feed the
// Table 7 decomposition.
func (d *Deployment) request(client string, w *WebServer, cfg RunConfig, done func(bool)) {
	eng := d.Eng
	costs := d.Plat.Web
	cacheGetCPU := d.CachePlat.Web.CacheGetCPU

	d.Fab.Send(client, w.Node.ID, requestBytes, func() {
		arrived := eng.Now()
		admitted := w.admitRequest(func() {
			// Pick the table and row the paper's PHP page would.
			var table int
			if d.rnd.table.Bool(cfg.ImageFrac) {
				table = numPlainTables + d.rnd.table.Intn(numImageTables)
			} else {
				table = d.rnd.table.Intn(numPlainTables)
			}
			row := d.rnd.row.Intn(rowsPerTable)
			k := key(table, row)
			rowSize := units.Bytes(plainReplyBytes)
			if table >= numPlainTables {
				rowSize = units.Bytes(imageReplyBytes)
			}

			finish := func(size units.Bytes) {
				// Assemble the page and push the reply to the client.
				kb := float64(size) / 1024
				work := costs.ReplyCPU + costs.PerKBCPU*kb
				w.Node.ComputeSeconds(work, func() {
					d.recordWebTotal(float64(eng.Now() - arrived))
					w.finishRequest(true)
					d.Fab.Send(w.Node.ID, client, size+256, func() { done(true) })
				})
			}

			// PHP prologue, then the memcached GET.
			w.Node.ComputeSeconds(costs.BaseCPU, func() {
				cache := d.cacheFor(k)
				cacheStart := eng.Now()
				d.Fab.Send(w.Node.ID, cache.Node.ID, rpcHeaderBytes, func() {
					cache.Node.ComputeSeconds(cacheGetCPU, func() {
						size, hit := cache.lookup(k)
						if hit {
							d.Fab.Send(cache.Node.ID, w.Node.ID, size, func() {
								// The client-side unmarshal is inside the
								// timed $memcache->get() interval; at high
								// web CPU it queues and the measured cache
								// delay balloons (Table 7's right column).
								w.Node.ComputeSeconds(costs.CacheClientCPU, func() {
									d.recordCacheDelay(float64(eng.Now() - cacheStart))
									finish(size)
								})
							})
							return
						}
						// Miss: tiny negative response, then MySQL.
						d.Fab.Send(cache.Node.ID, w.Node.ID, rpcHeaderBytes, func() {
							d.recordCacheDelay(float64(eng.Now() - cacheStart))
							db := d.DBs[d.rnd.db.Intn(len(d.DBs))]
							dbStart := eng.Now()
							d.Fab.Send(w.Node.ID, db.Node.ID, requestBytes, func() {
								db.query(rowSize, func() {
									d.Fab.Send(db.Node.ID, w.Node.ID, rowSize, func() {
										w.Node.ComputeSeconds(costs.CacheClientCPU, func() {
											d.recordDBDelay(float64(eng.Now() - dbStart))
											finish(rowSize)
										})
									})
								})
							})
						})
					})
				})
			})
		})
		if !admitted {
			// 500: a short error page, still delivered.
			d.Fab.Send(w.Node.ID, client, 512, func() { done(false) })
		}
	})
}

// Table 7 decomposition accumulators. They live on the Deployment and are
// harvested/reset by Run.
func (d *Deployment) recordDBDelay(v float64)    { d.dbDelay.Add(v) }
func (d *Deployment) recordCacheDelay(v float64) { d.cacheDelay.Add(v) }
func (d *Deployment) recordWebTotal(v float64)   { d.webTotal.Add(v) }

// decomposition state (reset per run).
type decomposition struct {
	dbDelay, cacheDelay, webTotal stats.Summary
}
