package web

import (
	"edisim/internal/sim"
	"edisim/internal/stats"
	"edisim/internal/units"
)

// webReq is a pooled in-flight request record driven as a state machine:
//
//	client --req--> web [CPU: parse] --get--> cache [CPU] --value--> web
//	                 (on miss: web --q--> DB [CPU+disk] --row--> web)
//	web [CPU: assemble] --reply--> client
//
// Instead of allocating a fresh chain of closures per request, each record
// carries its cursor state (key, sizes, interval anchors) and a set of
// continuations pre-bound once when the record is created — the same
// pattern as netsim's pooled message and Flow records — so the steady-state
// request path is 0 allocs/op (CI-pinned). Records come from a Deployment
// freelist grown in chunks and are recycled when the reply (or the 500)
// fully arrives. A request stranded by a crash or cut link mid-chain never
// reaches a recycling continuation; its record is simply lost to the pool,
// like the request itself.
type webReq struct {
	d         *Deployment
	w         *WebServer
	cache     *CacheServer
	db        *DBServer
	client    string
	imageFrac float64
	done      func(bool)

	k          rowKey
	rowSize    units.Bytes // row size on the chosen table (miss reply size)
	replySize  units.Bytes
	arrived    sim.Time
	cacheStart sim.Time
	dbStart    sim.Time

	// Pre-bound continuations, created once per record (amortized to zero
	// by the pool), one per edge of the diagram above.
	arrivedFn, startFn, prologueFn, atCacheFn, cacheGetFn func()
	hitReturnFn, hitDoneFn                                func()
	missReturnFn, atDBFn, dbCPUFn, dbReadFn, dbReturnFn   func()
	dbDoneFn, assembledFn, okFn, errFn, shedFn            func()
}

// reqChunk is how many request records the freelist grows by at once.
const reqChunk = 64

// allocReq takes a request record from the freelist, growing it when empty.
func (d *Deployment) allocReq() *webReq {
	if len(d.freeReqs) == 0 {
		chunk := make([]webReq, reqChunk)
		for i := range chunk {
			r := &chunk[i]
			r.d = d
			r.arrivedFn = r.arrivedAtWeb
			r.startFn = r.start
			r.prologueFn = r.prologueDone
			r.atCacheFn = r.arrivedAtCache
			r.cacheGetFn = r.cacheLooked
			r.hitReturnFn = r.hitReturned
			r.hitDoneFn = r.hitUnmarshaled
			r.missReturnFn = r.missReturned
			r.atDBFn = r.arrivedAtDB
			r.dbCPUFn = r.dbComputed
			r.dbReadFn = r.dbRead
			r.dbReturnFn = r.dbReturned
			r.dbDoneFn = r.dbUnmarshaled
			r.assembledFn = r.assembled
			r.okFn = r.deliverOK
			r.errFn = r.deliverErr
			r.shedFn = r.shedComputed
			d.freeReqs = append(d.freeReqs, r)
		}
	}
	r := d.freeReqs[len(d.freeReqs)-1]
	d.freeReqs = d.freeReqs[:len(d.freeReqs)-1]
	return r
}

// recycleReq returns the record to the pool, releasing callback and server
// references for GC.
func (d *Deployment) recycleReq(r *webReq) {
	r.done = nil
	r.w = nil
	r.cache = nil
	r.db = nil
	d.freeReqs = append(d.freeReqs, r)
}

// request drives one HTTP request through the stack on a pooled record.
// done(ok) runs at the client when the reply (or the 500) fully arrives.
// The web-server-side interval and the cache/DB sub-intervals feed the
// Table 7 decomposition.
func (d *Deployment) request(client string, w *WebServer, cfg RunConfig, done func(bool)) {
	r := d.allocReq()
	r.w = w
	r.client = client
	r.imageFrac = cfg.ImageFrac
	r.done = done
	d.Fab.Send(client, w.Node.ID, requestBytes, r.arrivedFn)
}

// arrivedAtWeb runs when the request bytes reach the web server: admission
// control first (a fast-fail 503 at a fraction of full service cost), then
// admission, or a short 500 error page (still delivered) when overloaded.
func (r *webReq) arrivedAtWeb() {
	r.arrived = r.d.Eng.Now()
	if r.d.shed.Enabled() && r.w.shouldShed() {
		r.d.noteShed()
		r.w.refused++
		r.w.Node.ComputeSeconds(r.d.fastFailCPU, r.shedFn)
		return
	}
	if !r.w.admitRequest(r.startFn) {
		r.d.Fab.Send(r.w.Node.ID, r.client, 512, r.errFn)
	}
}

// shedComputed pushes the 503 rejection page after its fast-fail CPU burn.
func (r *webReq) shedComputed() {
	r.d.Fab.Send(r.w.Node.ID, r.client, 512, r.errFn)
}

// start runs when a worker thread picks the request up: choose the table
// and row the paper's PHP page would, then burn the parse prologue CPU.
func (r *webReq) start() {
	d := r.d
	var table int
	if d.rnd.table.Bool(r.imageFrac) {
		table = numPlainTables + d.rnd.table.Intn(numImageTables)
	} else {
		table = d.rnd.table.Intn(numPlainTables)
	}
	row := d.rnd.row.Intn(rowsPerTable)
	r.k = key(table, row)
	r.rowSize = units.Bytes(plainReplyBytes)
	if table >= numPlainTables {
		r.rowSize = units.Bytes(imageReplyBytes)
	}
	r.w.Node.ComputeSeconds(d.Plat.Web.BaseCPU, r.prologueFn)
}

// prologueDone launches the memcached GET at the key's cache server.
func (r *webReq) prologueDone() {
	d := r.d
	r.cache = d.cacheFor(r.k)
	r.cacheStart = d.Eng.Now()
	d.Fab.Send(r.w.Node.ID, r.cache.Node.ID, rpcHeaderBytes, r.atCacheFn)
}

// arrivedAtCache burns the server-side GET cost on the cache node.
func (r *webReq) arrivedAtCache() {
	r.cache.Node.ComputeSeconds(r.d.CachePlat.Web.CacheGetCPU, r.cacheGetFn)
}

// cacheLooked performs the in-memory hit check and sends back either the
// value or the tiny negative response.
func (r *webReq) cacheLooked() {
	size, hit := r.cache.lookup(r.k)
	if hit {
		r.replySize = size
		r.d.Fab.Send(r.cache.Node.ID, r.w.Node.ID, size, r.hitReturnFn)
		return
	}
	r.d.Fab.Send(r.cache.Node.ID, r.w.Node.ID, rpcHeaderBytes, r.missReturnFn)
}

// hitReturned runs when the cached value reaches the web server. The
// client-side unmarshal is inside the timed $memcache->get() interval; at
// high web CPU it queues and the measured cache delay balloons (Table 7's
// right column).
func (r *webReq) hitReturned() {
	r.w.Node.ComputeSeconds(r.d.Plat.Web.CacheClientCPU, r.hitDoneFn)
}

func (r *webReq) hitUnmarshaled() {
	r.d.recordCacheDelay(float64(r.d.Eng.Now() - r.cacheStart))
	r.finish(r.replySize)
}

// degradedReplyBytes is the size of a brownout answer: a stale or partial
// page assembled without the database round trip.
const degradedReplyBytes = 512

// missReturned runs when the negative response arrives: close the cache
// interval and fall through to MySQL — unless the SLO controller has
// engaged brownout, in which case the server answers with a cheap stale
// page and skips the DB trip entirely.
func (r *webReq) missReturned() {
	d := r.d
	d.recordCacheDelay(float64(d.Eng.Now() - r.cacheStart))
	if d.brownout {
		d.noteDegraded()
		r.finish(degradedReplyBytes)
		return
	}
	r.db = d.DBs[d.rnd.db.Intn(len(d.DBs))]
	r.dbStart = d.Eng.Now()
	d.Fab.Send(r.w.Node.ID, r.db.Node.ID, requestBytes, r.atDBFn)
}

// arrivedAtDB..dbRead execute one MySQL lookup on the record: query CPU,
// then a buffered read of the row (the DBServer keeps the counter).
func (r *webReq) arrivedAtDB() {
	r.db.queries++
	r.db.Node.ComputeSeconds(r.db.queryCPU, r.dbCPUFn)
}

func (r *webReq) dbComputed() {
	r.db.Node.Disk().Read(r.rowSize, true, r.dbReadFn)
}

func (r *webReq) dbRead() {
	r.d.Fab.Send(r.db.Node.ID, r.w.Node.ID, r.rowSize, r.dbReturnFn)
}

func (r *webReq) dbReturned() {
	r.w.Node.ComputeSeconds(r.d.Plat.Web.CacheClientCPU, r.dbDoneFn)
}

func (r *webReq) dbUnmarshaled() {
	r.d.recordDBDelay(float64(r.d.Eng.Now() - r.dbStart))
	r.finish(r.rowSize)
}

// finish assembles the page (reply CPU scales with size) and pushes the
// reply to the client.
func (r *webReq) finish(size units.Bytes) {
	r.replySize = size
	costs := r.d.Plat.Web
	kb := float64(size) / 1024
	r.w.Node.ComputeSeconds(costs.ReplyCPU+costs.PerKBCPU*kb, r.assembledFn)
}

func (r *webReq) assembled() {
	d := r.d
	d.recordWebTotal(float64(d.Eng.Now() - r.arrived))
	r.w.finishRequest(true)
	d.Fab.Send(r.w.Node.ID, r.client, r.replySize+256, r.okFn)
}

// deliverOK/deliverErr run at the client on full arrival of the reply/500:
// recycle first so the callback can immediately reuse the record.
func (r *webReq) deliverOK() {
	done := r.done
	r.d.recycleReq(r)
	done(true)
}

func (r *webReq) deliverErr() {
	done := r.done
	r.d.recycleReq(r)
	done(false)
}

// Table 7 decomposition accumulators. They live on the Deployment and are
// harvested/reset by Run.
func (d *Deployment) recordDBDelay(v float64)    { d.dbDelay.Add(v) }
func (d *Deployment) recordCacheDelay(v float64) { d.cacheDelay.Add(v) }
func (d *Deployment) recordWebTotal(v float64)   { d.webTotal.Add(v) }

// decomposition state (reset per run).
type decomposition struct {
	dbDelay, cacheDelay, webTotal stats.Summary
}
