package web

import (
	"testing"
)

// runScale measures throughput for a given web-server count at a fixed
// offered load per server.
func runScale(t *testing.T, nWeb, nCache int, conc float64) Result {
	t.Helper()
	tb := smallTestbed(microP(), nWeb+nCache, 2, 8)
	d := NewDeployment(tb, microP(), nWeb, nCache, 1)
	d.Warm(0.93)
	return d.Run(RunConfig{Concurrency: conc, Duration: 6})
}

// §5.1.2 observation 1: throughput scales linearly with cluster size.
func TestThroughputScalesLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	full := runScale(t, 24, 11, 512)
	half := runScale(t, 12, 6, 256)
	quarter := runScale(t, 6, 3, 128)
	r1 := full.Throughput / half.Throughput
	r2 := half.Throughput / quarter.Throughput
	if r1 < 1.8 || r1 > 2.2 || r2 < 1.8 || r2 > 2.2 {
		t.Fatalf("non-linear scaling: full/half=%.2f half/quarter=%.2f", r1, r2)
	}
}

// §5.1.2 observation 4: the maximum error-free concurrency scales down
// linearly with cluster size.
func TestErrorOnsetScalesWithClusterSize(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	// 6 web servers: ≈45 conn/s each → saturation near 270; 512 overloads.
	// The run must be long enough for the 1+2+4 s SYN retry schedule to
	// exhaust inside the measurement window.
	smallTb := smallTestbed(microP(), 9, 2, 8)
	smallDep := NewDeployment(smallTb, microP(), 6, 3, 1)
	smallDep.Warm(0.93)
	small := smallDep.Run(RunConfig{Concurrency: 512, Duration: 18})
	if small.ErrorRate < 0.005 && small.ConnFailures == 0 {
		t.Fatalf("quarter-scale cluster at 512 conn/s should error (rate %.4f)", small.ErrorRate)
	}
	// The full cluster absorbs the same load cleanly.
	full := runScale(t, 24, 11, 512)
	if full.ErrorRate > 0.005 {
		t.Fatalf("full cluster at 512 conn/s should be clean (rate %.4f)", full.ErrorRate)
	}
}

// The paper's efficiency headline: at peak, the micro tier does ≈3.5× the
// work per joule of the brawny tier.
func TestEnergyEfficiencyHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("efficiency sweep in -short mode")
	}
	e := runScale(t, 24, 11, 1024)
	dtb := smallTestbed(brawnyP(), 3, 2, 8)
	d := NewDeployment(dtb, brawnyP(), 2, 1, 1)
	d.Warm(0.93)
	rd := d.Run(RunConfig{Concurrency: 1024, Duration: 6})
	eff := (e.Throughput / float64(e.MeanPower)) / (rd.Throughput / float64(rd.MeanPower))
	if eff < 2.8 || eff > 4.5 {
		t.Fatalf("work-per-joule ratio %.2f, paper says ≈3.5", eff)
	}
}
