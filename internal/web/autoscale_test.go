package web

import (
	"strings"
	"testing"

	"edisim/internal/autoscale"
	"edisim/internal/load"
)

// autoscaleSLO is the controller every autoscale run hangs off: policies
// observe its windows, so it is required by Validate.
func autoscaleSLO() *SLO {
	return &SLO{Latency: 0.5, Window: 1}
}

func TestAutoscaleScalesUpOnSpike(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	r := d.Run(RunConfig{
		// Quiet base, then a spike to ~85% of tier capacity at t=10.
		Profile:  load.Spike{Base: 45, Peak: 230, Start: 10, Duration: 10},
		Duration: 25, WarmupFrac: 0.1,
		SLO: autoscaleSLO(),
		Autoscale: &autoscale.Config{
			Policy:         autoscale.TargetUtil{Target: 0.6},
			InitialServing: 2,
		},
	})
	if r.Boots == 0 || r.ScaleUps == 0 {
		t.Fatalf("spike never grew the fleet: boots=%d scale-ups=%d", r.Boots, r.ScaleUps)
	}
	if r.ActivePeak <= 2 {
		t.Fatalf("active peak %d never rose above the initial 2", r.ActivePeak)
	}
	if r.BootEnergy <= 0 {
		t.Fatal("boots happened but no boot energy was charged")
	}
	if r.MeanActive <= 0 || r.MeanActive > 6 {
		t.Fatalf("mean active %.2f outside (0,6]", r.MeanActive)
	}
	if r.Throughput == 0 {
		t.Fatal("no goodput")
	}
}

// TestAutoscaleDrainNeverKillsInflight is the PR's scale-down pin. The pool
// panics if the manager ever powers off a busy server, so a run that forces
// many drain cycles completing without panic — and without 500s — proves
// drain-before-park holds under real traffic.
func TestAutoscaleDrainNeverKillsInflight(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	r := d.Run(RunConfig{
		// Two full diurnal cycles: the trough forces scale-downs while
		// long-ish connections (8 calls each) are still in flight.
		Profile:  load.Diurnal{Min: 30, Max: 230, Period: 12},
		Duration: 24, WarmupFrac: 0.1,
		SLO: autoscaleSLO(),
		Autoscale: &autoscale.Config{
			Policy: autoscale.TargetUtil{Target: 0.6},
			// Shrink aggressively so the drain path is exercised hard.
			CooldownDown: 1,
		},
	})
	if r.ScaleDowns == 0 {
		t.Fatal("diurnal trough never triggered a scale-down; the drain pin proved nothing")
	}
	if r.Errors500 != 0 {
		t.Fatalf("%d requests failed during drain cycles, want 0", r.Errors500)
	}
	if r.ErrorRate != 0 {
		t.Fatalf("error rate %.4f during drain cycles, want 0", r.ErrorRate)
	}
}

func TestAutoscaleDeterministic(t *testing.T) {
	run := func() Result {
		d := smallDeployment(t, microP(), 6, 3)
		return d.Run(RunConfig{
			Profile:  load.Diurnal{Min: 30, Max: 230, Period: 10},
			Duration: 20, WarmupFrac: 0.1,
			RequestTimeout: 0.5, Shed: ShedPolicy{Mode: ShedDeadline, Deadline: 0.5},
			SLO: autoscaleSLO(),
			Autoscale: &autoscale.Config{
				Policy: autoscale.Predictive{Profile: load.Diurnal{Min: 30, Max: 230, Period: 10}},
			},
		})
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Offered != b.Offered ||
		a.ScaleUps != b.ScaleUps || a.ScaleDowns != b.ScaleDowns ||
		a.Boots != b.Boots || a.DrainCancels != b.DrainCancels ||
		a.BootEnergy != b.BootEnergy || a.MeanActive != b.MeanActive ||
		a.Energy != b.Energy ||
		a.Latency.Quantile(0.999) != b.Latency.Quantile(0.999) {
		t.Fatalf("autoscale run not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestAutoscaleEnergyBeatsStatic: on a diurnal cycle with a deep trough,
// parking idle servers must cut web-tier energy versus the static fleet
// while serving comparable goodput — the elasticity claim at the Run level
// (the experiment pins it per platform).
func TestAutoscaleEnergyBeatsStatic(t *testing.T) {
	prof := load.Diurnal{Min: 25, Max: 180, Period: 15}
	cfg := RunConfig{Profile: prof, Duration: 30, WarmupFrac: 0.1, SLO: autoscaleSLO()}

	static := smallDeployment(t, microP(), 6, 3).Run(cfg)

	elastic := cfg
	elastic.Autoscale = &autoscale.Config{
		Policy: autoscale.Predictive{Profile: prof},
	}
	scaled := smallDeployment(t, microP(), 6, 3).Run(elastic)

	if scaled.Energy >= static.Energy {
		t.Fatalf("elastic energy %.1fJ did not beat static %.1fJ on a deep diurnal trough",
			float64(scaled.Energy), float64(static.Energy))
	}
	if scaled.Throughput < 0.95*static.Throughput {
		t.Fatalf("elastic goodput %.0f/s gave up more than 5%% of static %.0f/s",
			scaled.Throughput, static.Throughput)
	}
	if scaled.MeanActive >= 6 {
		t.Fatalf("mean active %.2f: the fleet never actually shrank", scaled.MeanActive)
	}
}

// TestAutoscaleDeploymentReusable: after a run parks servers, the teardown
// must restore the deployment so a later plain run behaves normally.
func TestAutoscaleDeploymentReusable(t *testing.T) {
	d := smallDeployment(t, microP(), 6, 3)
	d.Run(RunConfig{
		Profile:  load.Steady{Rate: 40}, // idle tier: policy parks most servers
		Duration: 10, WarmupFrac: 0.1,
		SLO:       autoscaleSLO(),
		Autoscale: &autoscale.Config{Policy: autoscale.TargetUtil{Target: 0.6}},
	})
	for _, w := range d.Web {
		if w.Node.Parked() || !w.Node.Up() {
			t.Fatalf("teardown left %s parked/down", w.Node.ID)
		}
		if w.Node.SlowFactor() != 1 {
			t.Fatalf("teardown left %s at speed %g", w.Node.ID, w.Node.SlowFactor())
		}
	}
	if d.rotation != nil || d.scaler != nil {
		t.Fatal("teardown left the routing rotation armed")
	}
	r := d.Run(RunConfig{Concurrency: 64, Duration: 5})
	if r.Throughput < 400 || r.ErrorRate > 0.01 {
		t.Fatalf("post-autoscale plain run degraded: tp=%.0f err=%.3f", r.Throughput, r.ErrorRate)
	}
}

func TestAutoscaleConfigValidation(t *testing.T) {
	pol := autoscale.TargetUtil{}
	cases := []struct {
		name string
		cfg  RunConfig
		want string
	}{
		{"no slo", RunConfig{
			Profile:   load.Steady{Rate: 50},
			Autoscale: &autoscale.Config{Policy: pol},
		}, "needs an SLO controller"},
		{"with reserve", RunConfig{
			Profile:   load.Steady{Rate: 50},
			SLO:       &SLO{Latency: 0.5, Reserve: 2},
			Autoscale: &autoscale.Config{Policy: pol},
		}, "both edit the routing rotation"},
		{"nil policy", RunConfig{
			Profile:   load.Steady{Rate: 50},
			SLO:       autoscaleSLO(),
			Autoscale: &autoscale.Config{},
		}, "needs a Policy"},
		{"bad policy", RunConfig{
			Profile:   load.Steady{Rate: 50},
			SLO:       autoscaleSLO(),
			Autoscale: &autoscale.Config{Policy: autoscale.TargetUtil{Target: 2}},
		}, "must be in [0,1]"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	ok := RunConfig{
		Profile: load.Steady{Rate: 50}, SLO: autoscaleSLO(),
		Autoscale: &autoscale.Config{Policy: pol, InitialServing: 2, MinServing: 1},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid autoscale config rejected: %v", err)
	}
}
