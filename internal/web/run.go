package web

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/netsim"
	"edisim/internal/power"
	"edisim/internal/rng"
	"edisim/internal/sim"
	"edisim/internal/stats"
	"edisim/internal/units"
)

// Dataset geometry (§5.1.1): 15 tables, 11 plain and 4 with image blobs.
const (
	numPlainTables = 11
	numImageTables = 4
	rowsPerTable   = 2000
)

// Deployment is one cluster configured as the paper's middle tier: web
// servers plus cache servers from a single platform, with the shared
// infra-platform database tier and the client machines.
type Deployment struct {
	Eng    *sim.Engine
	Fab    *netsim.Fabric
	Params Params

	// Plat is the web-tier platform; its hw.Platform.Web block carries the
	// per-platform CPU costs and admission rates for the web servers. The
	// DB tier uses the testbed's infra platform instead.
	Plat *hw.Platform
	// CachePlat is the cache-tier platform (same as Plat in the paper's
	// homogeneous middle tiers; tiered deployments may split them).
	CachePlat *hw.Platform

	Web     []*WebServer
	Cache   []*CacheServer
	DBs     []*DBServer
	Clients []string

	meter *power.Meter

	rnd struct {
		arrival, table, row, db *rng.Source
	}

	// loadFactor scales admission intervals with the mean reply size of
	// the current run (threads and ports are held for transfer durations).
	loadFactor float64

	decomposition
}

// NewDeployment builds a middle tier of nWeb web servers and nCache cache
// servers on the chosen platform's node group of testbed tb. The paper's
// splits are in cluster.Table6.
func NewDeployment(tb *cluster.Testbed, p *hw.Platform, nWeb, nCache int, seed int64) *Deployment {
	return NewTieredDeployment(tb, p, nWeb, p, nCache, seed)
}

// NewTieredDeployment builds a middle tier whose web and cache tiers may
// sit on different platforms (e.g. a Pi3 web tier in front of a Xeon cache
// tier): nWeb web servers on webPlat's node group and nCache cache servers
// on cachePlat's. When the platforms coincide this is exactly NewDeployment:
// both tiers split one node group, web servers first.
func NewTieredDeployment(tb *cluster.Testbed, webPlat *hw.Platform, nWeb int, cachePlat *hw.Platform, nCache int, seed int64) *Deployment {
	var webNodes, cacheNodes []*hw.Node
	if webPlat == cachePlat {
		pool := tb.Nodes(webPlat)
		if nWeb+nCache > len(pool) {
			panic(fmt.Sprintf("web: need %d %s nodes, testbed has %d", nWeb+nCache, webPlat.Name, len(pool)))
		}
		webNodes, cacheNodes = pool[:nWeb], pool[nWeb:nWeb+nCache]
	} else {
		wp, cp := tb.Nodes(webPlat), tb.Nodes(cachePlat)
		if nWeb > len(wp) {
			panic(fmt.Sprintf("web: need %d %s web nodes, testbed has %d", nWeb, webPlat.Name, len(wp)))
		}
		if nCache > len(cp) {
			panic(fmt.Sprintf("web: need %d %s cache nodes, testbed has %d", nCache, cachePlat.Name, len(cp)))
		}
		webNodes, cacheNodes = wp[:nWeb], cp[:nCache]
	}
	if len(tb.DB) == 0 || len(tb.Clients) == 0 {
		panic("web: testbed needs DB servers and clients")
	}
	d := &Deployment{Eng: tb.Eng, Fab: tb.Fab, Params: DefaultParams(), Plat: webPlat, CachePlat: cachePlat, Clients: tb.Clients, loadFactor: 1}
	for _, n := range webNodes {
		d.Web = append(d.Web, newWebServer(d, n))
	}
	for _, n := range cacheNodes {
		d.Cache = append(d.Cache, newCacheServer(d, n))
	}
	for _, n := range tb.DB {
		d.DBs = append(d.DBs, newDBServer(d, n, tb.Infra.Web.DBQueryCPU))
	}
	meterName := webPlat.Label + "-cluster"
	if cachePlat != webPlat {
		meterName = webPlat.Label + "+" + cachePlat.Label + "-tier"
	}
	d.meter = power.NewMeter(meterName, append(append([]*hw.Node(nil), webNodes...), cacheNodes...))
	root := rng.New(seed)
	d.rnd.arrival = root.Derive("web/arrival")
	d.rnd.table = root.Derive("web/table")
	d.rnd.row = root.Derive("web/row")
	d.rnd.db = root.Derive("web/db")
	return d
}

// Warm preloads the cache tier so that a hitRatio fraction of uniformly
// drawn rows are resident, emulating the paper's warm-up stage. (Misses
// during the test stage do not insert, as in the paper, so the ratio stays
// fixed.)
func (d *Deployment) Warm(hitRatio float64) {
	if hitRatio < 0 { // ColdCache sentinel: nothing resident
		hitRatio = 0
	}
	resident := int(hitRatio * rowsPerTable)
	for t := 0; t < numPlainTables+numImageTables; t++ {
		size := units.Bytes(plainReplyBytes)
		if t >= numPlainTables {
			size = units.Bytes(imageReplyBytes)
		}
		for r := 0; r < resident; r++ {
			k := key(t, r)
			d.cacheFor(k).Set(k, size)
		}
	}
}

// WarmFor warms the cache tier for the run described by cfg, resolving the
// CacheHit default/sentinel exactly as Run will — use this rather than
// Warm(cfg.CacheHit) so the two paths cannot disagree about what an unset
// field means.
func (d *Deployment) WarmFor(cfg RunConfig) {
	d.Warm(cfg.withDefaults().CacheHit)
}

// DefaultCacheHit is the warmed hit ratio used across the paper's runs
// (§5.1.1), applied when RunConfig.CacheHit is left at its zero value.
const DefaultCacheHit = 0.93

// ColdCache is the RunConfig.CacheHit sentinel for a fully cold cache.
// Because the field's zero value means "use DefaultCacheHit", a literal 0
// cannot express "no hits"; any negative value (use this constant) does.
const ColdCache = -1

// RunConfig drives one httperf measurement (one x-axis point of Figs 4–9).
type RunConfig struct {
	Concurrency  float64 // new TCP connections per second (the x axis)
	CallsPerConn int     // requests per connection (paper tunes this; 8 here)
	ImageFrac    float64 // probability a request hits an image table
	// CacheHit is the warmed cache hit ratio. 0 (unset) means
	// DefaultCacheHit; pass ColdCache (or any negative value) for a
	// genuinely cold cache.
	CacheHit   float64
	Duration   float64 // generation time in simulated seconds
	WarmupFrac float64 // fraction of Duration excluded from measurement
}

// withDefaults fills unset fields with the values used across the paper
// reproduction and resolves the ColdCache sentinel.
func (c RunConfig) withDefaults() RunConfig {
	if c.CallsPerConn == 0 {
		c.CallsPerConn = 8
	}
	if c.Duration == 0 {
		c.Duration = 30
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.25
	}
	if c.CacheHit == 0 {
		c.CacheHit = DefaultCacheHit
	}
	if c.CacheHit < 0 {
		c.CacheHit = 0
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	Config RunConfig

	Throughput float64 // successful replies per second in the window
	MeanDelay  float64 // mean per-request response time (httperf view)
	Delays     *stats.Sample
	ConnDelays *stats.Sample // per-connection first-byte delays incl. SYN retries

	Errors500    int64
	ConnFailures int64
	ErrorRate    float64 // errored operations / attempted operations

	MeanPower units.Watts // cluster draw averaged over the window
	Energy    units.Joules

	// Table 7 decomposition, measured on the web servers.
	DBDelay, CacheDelay, WebTotal stats.Summary

	WebCPU, CacheCPU float64 // mean utilization over the window
	HitRatio         float64
}

// Run executes one measurement on a fresh traffic epoch. The deployment's
// caches must already be warmed.
func (d *Deployment) Run(cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	eng := d.Eng
	d.loadFactor = 1 + d.Params.TransferPenaltyPerKB*AvgReplyBytes(cfg.ImageFrac)/1024

	res := Result{Config: cfg, Delays: &stats.Sample{}, ConnDelays: &stats.Sample{}}
	winStart := eng.Now() + sim.Time(cfg.Duration*cfg.WarmupFrac)
	winEnd := eng.Now() + sim.Time(cfg.Duration)
	inWindow := func() bool { return eng.Now() >= winStart && eng.Now() <= winEnd }

	var served, errored, attempts int64

	// Window power accounting.
	var winEnergy float64
	eng.At(winStart, func() { d.meter.Reset() })
	eng.At(winEnd, func() {
		winEnergy = float64(d.meter.Energy())
	})
	// Integrate tier utilizations over the window for the §5.1.2 CPU
	// numbers. Tracking is change-driven (hw.Node.SubscribeUtil), so heavy
	// runs do not pay for a polling timer and the means are exact.
	webUtil := trackMeanUtil(eng, d.webNodes(), winStart, winEnd)
	cacheUtil := trackMeanUtil(eng, d.cacheNodes(), winStart, winEnd)
	defer webUtil.detach()
	defer cacheUtil.detach()

	// Connection generator: Poisson arrivals at Concurrency conn/s spread
	// over the client machines, each conn routed round-robin by HAProxy.
	next := 0
	var gen func()
	stopGen := eng.Now() + sim.Time(cfg.Duration)
	var launch func(client string, w *WebServer)
	gen = func() {
		if eng.Now() >= stopGen {
			return
		}
		client := d.Clients[next%len(d.Clients)]
		w := d.Web[next%len(d.Web)]
		next++
		launch(client, w)
		eng.After(d.rnd.arrival.Exp(1/cfg.Concurrency), gen)
	}

	// launch drives one connection: SYN (with kernel retries), then
	// CallsPerConn sequential requests.
	launch = func(client string, w *WebServer) {
		connStart := eng.Now()
		attempt := 0
		var try func()
		established := func() {
			// Run the request loop; record the conn setup + first reply
			// delay in ConnDelays (the python-logger view of Figs 10–11).
			call := 0
			var doCall func()
			doCall = func() {
				if call >= cfg.CallsPerConn {
					w.closeConn()
					return
				}
				call++
				first := call == 1
				reqStart := eng.Now()
				attempts++
				d.request(client, w, cfg, func(ok bool) {
					delay := float64(eng.Now() - reqStart)
					if inWindow() {
						if ok {
							served++
							res.Delays.Add(delay)
							if first {
								res.ConnDelays.Add(float64(eng.Now() - connStart))
							}
						} else {
							errored++
						}
					}
					doCall()
				})
			}
			doCall()
		}
		try = func() {
			// SYN travels to the server; ~60 bytes.
			d.Fab.Send(client, w.Node.ID, rpcHeaderBytes, func() {
				if w.admitConn(func() {
					// SYN-ACK back, then the conn is usable.
					d.Fab.Send(w.Node.ID, client, rpcHeaderBytes, established)
				}) {
					return
				}
				// Dropped: kernel retry schedule, then give up.
				if attempt < len(d.Params.RetryBackoff) {
					backoff := d.Params.RetryBackoff[attempt]
					attempt++
					eng.After(backoff, try)
					return
				}
				if inWindow() {
					res.ConnFailures++
					res.ConnDelays.Add(float64(eng.Now() - connStart))
				}
			})
		}
		try()
	}
	eng.After(d.rnd.arrival.Exp(1/cfg.Concurrency), gen)

	// Run to completion: generation stops at Duration, stragglers drain.
	eng.RunUntil(winEnd + sim.Time(20))

	window := float64(winEnd - winStart)
	res.Throughput = float64(served) / window
	res.MeanDelay = res.Delays.Mean()
	res.Errors500 = errored
	total := served + errored + res.ConnFailures
	if total > 0 {
		res.ErrorRate = float64(errored+res.ConnFailures) / float64(total)
	}
	res.MeanPower = units.Watts(winEnergy / window)
	res.Energy = units.Joules(winEnergy)
	res.WebCPU = webUtil.mean()
	res.CacheCPU = cacheUtil.mean()
	var gets, hits int64
	for _, c := range d.Cache {
		gets += c.gets
		hits += c.hits
	}
	if gets > 0 {
		res.HitRatio = float64(hits) / float64(gets)
	}
	res.DBDelay = d.dbDelay
	res.CacheDelay = d.cacheDelay
	res.WebTotal = d.webTotal
	d.dbDelay, d.cacheDelay, d.webTotal = stats.Summary{}, stats.Summary{}, stats.Summary{}
	return res
}

func (d *Deployment) webNodes() []*hw.Node {
	out := make([]*hw.Node, len(d.Web))
	for i, w := range d.Web {
		out[i] = w.Node
	}
	return out
}

func (d *Deployment) cacheNodes() []*hw.Node {
	out := make([]*hw.Node, len(d.Cache))
	for i, c := range d.Cache {
		out[i] = c.Node
	}
	return out
}

// utilTracker integrates the mean CPU utilization of a node set over a
// measurement window. It subscribes to per-node utilization changes instead
// of sampling on a timer: the integral is exact and no events are added to
// the engine beyond the single window-start anchor.
type utilTracker struct {
	nodes            []*hw.Node
	integs           []*stats.Integrator // one per node: exact and O(1) per change
	cancels          []func()
	winStart, winEnd float64
}

// trackMeanUtil attaches a tracker to the nodes for the window
// [winStart, winEnd]. Call detach after the run to unhook the callbacks.
func trackMeanUtil(eng *sim.Engine, nodes []*hw.Node, winStart, winEnd sim.Time) *utilTracker {
	tr := &utilTracker{
		nodes:    nodes,
		integs:   make([]*stats.Integrator, len(nodes)),
		winStart: float64(winStart),
		winEnd:   float64(winEnd),
	}
	for i := range nodes {
		tr.integs[i] = stats.NewIntegrator(tr.winStart, 0)
	}
	for i, n := range nodes {
		i := i
		tr.cancels = append(tr.cancels, n.SubscribeUtil(func(u float64) {
			tr.set(i, u, float64(eng.Now()))
		}))
	}
	// Anchor each integrand at window start with whatever is running then.
	eng.At(winStart, func() {
		for i, n := range nodes {
			tr.set(i, n.Utilization(), tr.winStart)
		}
	})
	return tr
}

// set updates one node's integrand, clamped to the measurement window.
// Changes before winStart are ignored — the window-start anchor reads the
// live utilization then — and changes after winEnd no longer matter.
func (tr *utilTracker) set(i int, u, now float64) {
	if now < tr.winStart || now > tr.winEnd {
		return
	}
	tr.integs[i].Set(now, u)
}

// mean reports the time-weighted mean utilization across the node set over
// the window: Σ per-node integrals / (nodes × window).
func (tr *utilTracker) mean() float64 {
	window := tr.winEnd - tr.winStart
	if window <= 0 || len(tr.nodes) == 0 {
		return 0
	}
	var total float64
	for _, in := range tr.integs {
		total += in.Total(tr.winEnd)
	}
	return total / (float64(len(tr.nodes)) * window)
}

// detach unhooks the tracker's own subscriptions (other observers on the
// same nodes are untouched).
func (tr *utilTracker) detach() {
	for _, cancel := range tr.cancels {
		cancel()
	}
}
