package web

import (
	"fmt"
	"math"

	"edisim/internal/autoscale"
	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/load"
	"edisim/internal/netsim"
	"edisim/internal/power"
	"edisim/internal/rng"
	"edisim/internal/sim"
	"edisim/internal/stats"
	"edisim/internal/units"
)

// Dataset geometry (§5.1.1): 15 tables, 11 plain and 4 with image blobs.
const (
	numPlainTables = 11
	numImageTables = 4
	rowsPerTable   = 2000
)

// Deployment is one cluster configured as the paper's middle tier: web
// servers plus cache servers from a single platform, with the shared
// infra-platform database tier and the client machines.
type Deployment struct {
	Eng    *sim.Engine
	Fab    *netsim.Fabric
	Params Params

	// Plat is the web-tier platform; its hw.Platform.Web block carries the
	// per-platform CPU costs and admission rates for the web servers. The
	// DB tier uses the testbed's infra platform instead.
	Plat *hw.Platform
	// CachePlat is the cache-tier platform (same as Plat in the paper's
	// homogeneous middle tiers; tiered deployments may split them).
	CachePlat *hw.Platform

	Web     []*WebServer
	Cache   []*CacheServer
	DBs     []*DBServer
	Clients []string

	meter *power.Meter

	rnd struct {
		arrival, table, row, db, class *rng.Source
	}

	// loadFactor scales admission intervals with the mean reply size of
	// the current run (threads and ports are held for transfer durations).
	loadFactor float64

	// freeReqs is the pooled webReq freelist (see request.go).
	freeReqs []*webReq

	// Overload-resilience state, reset by Run and inert at its zero values
	// (see overload.go): the resolved shedding policy and the CPU cost of
	// one fast-fail rejection, the active routing-rotation prefix of Web,
	// the brownout flag, the client retry budget, the SLO controller's
	// window digest, the measurement window bounds for gating, and the
	// overload counters.
	shed             ShedPolicy
	fastFailCPU      float64
	active           int
	brownout         bool
	budget           retryBudget
	sloDig           *stats.Digest
	winStart, winEnd sim.Time
	ovl              overloadCounters

	// Elasticity state (see autoscale.go), nil/empty unless
	// RunConfig.Autoscale arms the lifecycle manager: the manager itself
	// and the explicit routing rotation that replaces the d.active prefix
	// while it runs.
	scaler   *autoscale.Manager
	rotation []*WebServer

	decomposition
}

// NewDeployment builds a middle tier of nWeb web servers and nCache cache
// servers on the chosen platform's node group of testbed tb. The paper's
// splits are in cluster.Table6.
func NewDeployment(tb *cluster.Testbed, p *hw.Platform, nWeb, nCache int, seed int64) *Deployment {
	return NewTieredDeployment(tb, p, nWeb, p, nCache, seed)
}

// NewTieredDeployment builds a middle tier whose web and cache tiers may
// sit on different platforms (e.g. a Pi3 web tier in front of a Xeon cache
// tier): nWeb web servers on webPlat's node group and nCache cache servers
// on cachePlat's. When the platforms coincide this is exactly NewDeployment:
// both tiers split one node group, web servers first.
func NewTieredDeployment(tb *cluster.Testbed, webPlat *hw.Platform, nWeb int, cachePlat *hw.Platform, nCache int, seed int64) *Deployment {
	var webNodes, cacheNodes []*hw.Node
	if webPlat == cachePlat {
		pool := tb.Nodes(webPlat)
		if nWeb+nCache > len(pool) {
			panic(fmt.Sprintf("web: need %d %s nodes, testbed has %d", nWeb+nCache, webPlat.Name, len(pool)))
		}
		webNodes, cacheNodes = pool[:nWeb], pool[nWeb:nWeb+nCache]
	} else {
		wp, cp := tb.Nodes(webPlat), tb.Nodes(cachePlat)
		if nWeb > len(wp) {
			panic(fmt.Sprintf("web: need %d %s web nodes, testbed has %d", nWeb, webPlat.Name, len(wp)))
		}
		if nCache > len(cp) {
			panic(fmt.Sprintf("web: need %d %s cache nodes, testbed has %d", nCache, cachePlat.Name, len(cp)))
		}
		webNodes, cacheNodes = wp[:nWeb], cp[:nCache]
	}
	if len(tb.DB) == 0 || len(tb.Clients) == 0 {
		panic("web: testbed needs DB servers and clients")
	}
	d := &Deployment{Eng: tb.Eng, Fab: tb.Fab, Params: DefaultParams(), Plat: webPlat, CachePlat: cachePlat, Clients: tb.Clients, loadFactor: 1}
	for _, n := range webNodes {
		d.Web = append(d.Web, newWebServer(d, n))
	}
	for _, n := range cacheNodes {
		d.Cache = append(d.Cache, newCacheServer(d, n))
	}
	for _, n := range tb.DB {
		d.DBs = append(d.DBs, newDBServer(d, n, tb.Infra.Web.DBQueryCPU))
	}
	meterName := webPlat.Label + "-cluster"
	if cachePlat != webPlat {
		meterName = webPlat.Label + "+" + cachePlat.Label + "-tier"
	}
	d.meter = power.NewMeter(meterName, append(append([]*hw.Node(nil), webNodes...), cacheNodes...))
	root := rng.New(seed)
	d.rnd.arrival = root.Derive("web/arrival")
	d.rnd.table = root.Derive("web/table")
	d.rnd.row = root.Derive("web/row")
	d.rnd.db = root.Derive("web/db")
	// Priority-class draws (only consumed under ShedPriority; deriving the
	// substream draws nothing, so healthy runs are untouched).
	d.rnd.class = root.Derive("web/class")
	return d
}

// Warm preloads the cache tier so that a hitRatio fraction of uniformly
// drawn rows are resident, emulating the paper's warm-up stage. (Misses
// during the test stage do not insert, as in the paper, so the ratio stays
// fixed.)
func (d *Deployment) Warm(hitRatio float64) {
	if hitRatio < 0 { // ColdCache sentinel: nothing resident
		hitRatio = 0
	}
	resident := int(hitRatio * rowsPerTable)
	for t := 0; t < numPlainTables+numImageTables; t++ {
		size := units.Bytes(plainReplyBytes)
		if t >= numPlainTables {
			size = units.Bytes(imageReplyBytes)
		}
		for r := 0; r < resident; r++ {
			k := key(t, r)
			d.cacheFor(k).Set(k, size)
		}
	}
}

// WarmFor warms the cache tier for the run described by cfg, resolving the
// CacheHit default/sentinel exactly as Run will — use this rather than
// Warm(cfg.CacheHit) so the two paths cannot disagree about what an unset
// field means.
func (d *Deployment) WarmFor(cfg RunConfig) {
	d.Warm(cfg.withDefaults().CacheHit)
}

// DefaultCacheHit is the warmed hit ratio used across the paper's runs
// (§5.1.1), applied when RunConfig.CacheHit is left at its zero value.
const DefaultCacheHit = 0.93

// ColdCache is the RunConfig.CacheHit sentinel for a fully cold cache.
// Because the field's zero value means "use DefaultCacheHit", a literal 0
// cannot express "no hits"; any negative value (use this constant) does.
const ColdCache = -1

// RunConfig drives one httperf measurement (one x-axis point of Figs 4–9).
type RunConfig struct {
	Concurrency  float64 // new TCP connections per second (the x axis)
	CallsPerConn int     // requests per connection (paper tunes this; 8 here)
	ImageFrac    float64 // probability a request hits an image table
	// CacheHit is the warmed cache hit ratio. 0 (unset) means
	// DefaultCacheHit; pass ColdCache (or any negative value) for a
	// genuinely cold cache.
	CacheHit   float64
	Duration   float64 // generation time in simulated seconds
	WarmupFrac float64 // fraction of Duration excluded from measurement

	// Failure recovery (all zero = off, the paper's healthy-run behavior,
	// with an event stream byte-identical to builds without these knobs).
	//
	// RequestTimeout > 0 arms a client-side timer per request: a reply that
	// does not arrive in time abandons the attempt and retries — against
	// the next live web server when the current one is down — with capped
	// exponential backoff, up to MaxRetries times; exhaustion counts the
	// operation as errored. Connection setup gains the matching protection:
	// a SYN (or SYN-ACK) lost to a cut link times out on the kernel retry
	// schedule instead of hanging, and new connections steer around dead
	// servers to the next live one in ring order.
	RequestTimeout float64 // seconds; 0 disables all recovery machinery
	MaxRetries     int     // retries after the first attempt; 0 means 3 when enabled
	RetryBase      float64 // first backoff in seconds; 0 means 0.05 when enabled

	// Overload resilience (all zero = off, with an event stream
	// byte-identical to builds without these knobs).
	//
	// Profile switches the generator open-loop: connection arrivals follow
	// the profiled rate instead of the closed-loop Concurrency ladder, and
	// keep coming whether or not the servers keep up. Mutually exclusive
	// with Concurrency. Per-request Sample retention is replaced by the
	// bounded Latency digest so million-request runs stay flat in memory.
	Profile load.Profile
	// Shed configures server-side admission control (see ShedPolicy).
	Shed ShedPolicy
	// RetryBudget bounds client retries as a fraction of first attempts
	// (token bucket: each first attempt deposits RetryBudget tokens, each
	// retry spends one, burst-capped). 0 leaves PR 6's unbudgeted retries;
	// it only matters when RequestTimeout arms the retry machinery.
	RetryBudget float64
	// SLO attaches the reactive controller (windowed quantile +
	// availability checks, reserve activation, brownout). Nil = off.
	SLO *SLO
	// Autoscale arms the elasticity engine: a lifecycle manager that
	// grows and shrinks the web tier mid-run under the configured policy,
	// with platform-calibrated boot delays and warm-up penalties (zero
	// knobs resolve from hw.Platform.Boot). Requires SLO (the policy
	// observes the controller's windows) and excludes SLO.Reserve (both
	// would edit the routing rotation). Nil = a fixed fleet.
	Autoscale *autoscale.Config
}

// withDefaults fills unset fields with the values used across the paper
// reproduction and resolves the ColdCache sentinel.
func (c RunConfig) withDefaults() RunConfig {
	if c.CallsPerConn == 0 {
		c.CallsPerConn = 8
	}
	if c.Duration == 0 {
		c.Duration = 30
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.25
	}
	if c.CacheHit == 0 {
		c.CacheHit = DefaultCacheHit
	}
	if c.CacheHit < 0 {
		c.CacheHit = 0
	}
	if c.RequestTimeout > 0 {
		if c.MaxRetries == 0 {
			c.MaxRetries = 3
		}
		if c.RetryBase == 0 {
			c.RetryBase = 0.05
		}
	}
	return c
}

// badDur rejects the silent-failure values for a duration-like knob: NaN
// would poison every comparison quietly, ±Inf and negatives turn timers into
// never/always. Zero is left to the caller (usually a meaningful default).
func badDur(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }

// Validate rejects configurations whose zero-ish values would fail silently
// rather than loudly: NaN/Inf anywhere, negative times, rates and counts.
// Run panics on an invalid config; the public API surfaces the error.
func (c RunConfig) Validate() error {
	if c.Profile != nil {
		if err := c.Profile.Validate(); err != nil {
			return err
		}
		if c.Concurrency != 0 {
			return fmt.Errorf("web: set either Concurrency (closed-loop) or Profile (open-loop), not both")
		}
	} else if math.IsNaN(c.Concurrency) || math.IsInf(c.Concurrency, 0) || c.Concurrency <= 0 {
		return fmt.Errorf("web: concurrency %g must be positive and finite", c.Concurrency)
	}
	if c.CallsPerConn < 0 {
		return fmt.Errorf("web: calls per connection %d must be non-negative", c.CallsPerConn)
	}
	if math.IsNaN(c.ImageFrac) || c.ImageFrac < 0 || c.ImageFrac > 1 {
		return fmt.Errorf("web: image fraction %g must be in [0,1]", c.ImageFrac)
	}
	if math.IsNaN(c.CacheHit) || math.IsInf(c.CacheHit, 0) || c.CacheHit > 1 {
		return fmt.Errorf("web: cache hit ratio %g must be finite and at most 1", c.CacheHit)
	}
	if badDur(c.Duration) {
		return fmt.Errorf("web: duration %g must be finite and non-negative", c.Duration)
	}
	if math.IsNaN(c.WarmupFrac) || c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		return fmt.Errorf("web: warmup fraction %g must be in [0,1)", c.WarmupFrac)
	}
	if badDur(c.RequestTimeout) {
		return fmt.Errorf("web: request timeout %g must be finite and non-negative", c.RequestTimeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("web: max retries %d must be non-negative", c.MaxRetries)
	}
	if badDur(c.RetryBase) {
		return fmt.Errorf("web: retry base %g must be finite and non-negative", c.RetryBase)
	}
	if math.IsNaN(c.RetryBudget) || c.RetryBudget < 0 || c.RetryBudget > 1 {
		return fmt.Errorf("web: retry budget %g must be in [0,1]", c.RetryBudget)
	}
	if err := c.Shed.Validate(); err != nil {
		return err
	}
	if err := c.SLO.Validate(); err != nil {
		return err
	}
	if c.Autoscale != nil {
		if c.SLO == nil {
			return fmt.Errorf("web: Autoscale needs an SLO controller (policies observe its windows)")
		}
		if c.SLO.Reserve > 0 {
			return fmt.Errorf("web: Autoscale and SLO.Reserve both edit the routing rotation; use one")
		}
		if err := c.Autoscale.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of one run.
type Result struct {
	Config RunConfig

	Throughput float64 // successful replies per second in the window
	MeanDelay  float64 // mean per-request response time (httperf view)
	Delays     *stats.Sample
	ConnDelays *stats.Sample // per-connection first-byte delays incl. SYN retries

	Errors500    int64
	ConnFailures int64
	ErrorRate    float64 // errored operations / attempted operations

	// Recovery accounting (all zero when RequestTimeout is off). Attempts
	// counts request transmissions inside the window including retries, so
	// Attempts / (successes + failures) is the retry amplification factor.
	Timeouts int64
	Retries  int64
	Attempts int64

	MeanPower units.Watts // cluster draw averaged over the window
	Energy    units.Joules

	// Table 7 decomposition, measured on the web servers.
	DBDelay, CacheDelay, WebTotal stats.Summary

	WebCPU, CacheCPU float64 // mean utilization over the window
	HitRatio         float64

	// Overload accounting (all zero when the overload knobs are off).
	// Latency is always populated: the bounded-memory digest of in-window
	// response times that replaces Delays as the quantile source on
	// open-loop runs (where per-request Sample retention is skipped).
	Latency      *stats.Digest
	Offered      int64   // open-loop connection arrivals in the window
	Shed         int64   // operations rejected early by admission control (SYN refusals + request rejections) in the window
	Degraded     int64   // brownout cache-only answers in the window
	RetryDenied  int64   // retries suppressed by the budget in the window
	SLOBreaches  int64   // in-window controller evaluations that burned the SLO
	BrownoutSecs float64 // total time brownout was engaged
	ActivePeak   int     // high-water routing-rotation size (0 unless SLO set)

	// Elasticity accounting (all zero unless Autoscale is armed).
	ScaleUps     int64        // servers that joined the rotation by policy decision
	ScaleDowns   int64        // drain-before-park scale-downs started
	Boots        int64        // parked servers powered on
	DrainCancels int64        // drains reclaimed by a scale-up before parking
	BootEnergy   units.Joules // energy burned booting (busy draw × boot time), already inside Energy
	MeanActive   float64      // time-weighted mean serving servers over the window
}

// Run executes one measurement on a fresh traffic epoch. The deployment's
// caches must already be warmed.
func (d *Deployment) Run(cfg RunConfig) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	// ft gates every piece of recovery machinery: with it false the run's
	// event stream is byte-identical to the pre-fault-injection code.
	ft := cfg.RequestTimeout > 0
	// openLoop switches the generator to profiled arrivals; exact per-request
	// Sample retention is then dropped in favor of the bounded digest so
	// million-request runs stay flat in memory.
	openLoop := cfg.Profile != nil
	exact := !openLoop
	eng := d.Eng
	d.loadFactor = 1 + d.Params.TransferPenaltyPerKB*AvgReplyBytes(cfg.ImageFrac)/1024

	res := Result{Config: cfg, Delays: &stats.Sample{}, ConnDelays: &stats.Sample{}, Latency: stats.NewDigest()}
	winStart := eng.Now() + sim.Time(cfg.Duration*cfg.WarmupFrac)
	winEnd := eng.Now() + sim.Time(cfg.Duration)
	inWindow := func() bool { return eng.Now() >= winStart && eng.Now() <= winEnd }

	// Overload-resilience state (inert at the zero knobs: no extra events,
	// no extra RNG draws, identical routing).
	d.winStart, d.winEnd = winStart, winEnd
	d.shed, d.fastFailCPU = ShedPolicy{}, 0
	if cfg.Shed.Enabled() {
		d.shed = cfg.Shed.withDefaults(d.Plat.Web)
		d.fastFailCPU = d.shed.FastFailFrac * (d.Plat.Web.BaseCPU + d.Plat.Web.ReplyCPU)
	}
	budgeted := ft && cfg.RetryBudget > 0
	d.budget = retryBudget{rate: cfg.RetryBudget, tokens: retryBurst}
	d.active = len(d.Web)
	d.brownout = false
	d.sloDig = nil
	d.ovl = overloadCounters{}

	// Elasticity: the lifecycle manager takes over routing through
	// d.rotation (the SLO tick feeds it windowed signals below), parked
	// nodes power off and booting nodes burn busy draw — all inside the
	// same meter, so MeanPower/Energy price provisioning overhead too.
	var asMgr *autoscale.Manager
	var asPool *fleetPool
	var asUtil *tickUtil
	var asIntegWinStart, asIntegWinEnd float64
	if cfg.Autoscale != nil {
		asMgr, asPool, asUtil = d.armAutoscale(cfg)
		eng.At(winStart, func() { asIntegWinStart = asMgr.ServingIntegral(winStart) })
		eng.At(winEnd, func() { asIntegWinEnd = asMgr.ServingIntegral(winEnd) })
	}

	var served, errored, attempts int64

	// Window power accounting.
	var winEnergy float64
	eng.At(winStart, func() { d.meter.Reset() })
	eng.At(winEnd, func() {
		winEnergy = float64(d.meter.Energy())
	})
	// Integrate tier utilizations over the window for the §5.1.2 CPU
	// numbers. Tracking is change-driven (hw.Node.SubscribeUtil), so heavy
	// runs do not pay for a polling timer and the means are exact.
	webUtil := trackMeanUtil(eng, d.webNodes(), winStart, winEnd)
	cacheUtil := trackMeanUtil(eng, d.cacheNodes(), winStart, winEnd)
	defer webUtil.detach()
	defer cacheUtil.detach()

	// SLO controller: every Window seconds, judge the window's quantile and
	// availability, react (activate a reserve server, engage brownout), and
	// wind back after two consecutive healthy windows.
	sloOn := cfg.SLO != nil
	if sloOn {
		slo := cfg.SLO.withDefaults()
		baseActive := len(d.Web)
		if slo.Reserve > 0 {
			baseActive -= slo.Reserve
			if baseActive < 1 {
				baseActive = 1
			}
			d.active = baseActive
		}
		d.sloDig = stats.NewDigest()
		res.ActivePeak = d.active
		if asMgr != nil {
			res.ActivePeak = len(d.rotation)
		}
		runStart := eng.Now()
		healthy := 0
		var brownoutAt sim.Time
		var tick func()
		tick = func() {
			now := eng.Now()
			q := d.sloDig.Quantile(slo.Percentile)
			avail := 1.0
			if d.ovl.winOps > 0 {
				avail = float64(d.ovl.winServed) / float64(d.ovl.winOps)
			}
			burning := (d.sloDig.N() > 0 && q > slo.Latency) ||
				(d.ovl.winOps > 0 && slo.Availability > 0 && avail < slo.Availability)
			if burning {
				healthy = 0
				if inWindow() {
					res.SLOBreaches++
				}
				if asMgr == nil && d.active < len(d.Web) {
					d.active++
				}
				if slo.Brownout && !d.brownout {
					d.brownout = true
					brownoutAt = now
				}
			} else {
				healthy++
				if healthy >= 2 {
					if d.brownout {
						d.brownout = false
						res.BrownoutSecs += float64(now - brownoutAt)
					}
					if asMgr == nil && d.active > baseActive {
						d.active--
					}
				}
			}
			activeNow := d.active
			if asMgr != nil {
				// Autoscale replaces the reserve reaction above: the policy
				// sees this window's signals and the manager moves servers
				// through boot/drain/park around them.
				util, queue := asUtil.window(d, asPool, now, slo.Window)
				asMgr.Observe(autoscale.Signals{
					T:            float64(now - runStart),
					Util:         util,
					Queue:        queue,
					ShedRate:     float64(d.ovl.winShed) / slo.Window,
					ArrivalRate:  float64(d.ovl.winArr) / slo.Window,
					Quantile:     q,
					Availability: avail,
					Burning:      burning,
				})
				activeNow = len(d.rotation)
			}
			if activeNow > res.ActivePeak {
				res.ActivePeak = activeNow
			}
			if slo.Observer != nil {
				slo.Observer(SLOWindow{
					T:            float64(now - runStart),
					Served:       d.ovl.winServed,
					Ops:          d.ovl.winOps,
					Shed:         d.ovl.winShed,
					Quantile:     q,
					Availability: avail,
					Burning:      burning,
					Brownout:     d.brownout,
					Active:       activeNow,
				})
			}
			d.sloDig.Reset()
			d.ovl.winServed, d.ovl.winOps, d.ovl.winShed, d.ovl.winArr = 0, 0, 0, 0
			if now < winEnd {
				eng.After(slo.Window, tick)
			} else if d.brownout {
				// Close the books on a brownout still engaged at run end.
				d.brownout = false
				res.BrownoutSecs += float64(now - brownoutAt)
			}
		}
		eng.After(slo.Window, tick)
	}

	// Connection generator: Poisson arrivals at Concurrency conn/s spread
	// over the client machines, each conn routed round-robin by HAProxy.
	// With recovery on, the balancer health-checks: a conn aimed at a dead
	// server is steered to the next live one in ring order (identical
	// routing while everything is up).
	next := 0
	var gen func()
	stopGen := eng.Now() + sim.Time(cfg.Duration)
	var launch func(client string, w *WebServer)
	// fire starts one connection from the next client at the next web server
	// in the routing rotation: the explicit d.rotation slice when autoscale
	// is armed, else the d.Web prefix (only the SLO controller ever shrinks
	// that prefix below the full tier).
	fire := func() {
		client := d.Clients[next%len(d.Clients)]
		var w *WebServer
		if d.scaler != nil {
			d.ovl.winArr++
			w = d.rotation[next%len(d.rotation)]
		} else {
			w = d.Web[next%d.active]
		}
		next++
		if ft && !w.Node.Up() {
			if nl := d.nextLive(w); nl != nil {
				w = nl
			}
		}
		launch(client, w)
	}
	gen = func() {
		if eng.Now() >= stopGen {
			return
		}
		fire()
		eng.After(d.rnd.arrival.Exp(1/cfg.Concurrency), gen)
	}

	// launch drives one connection: SYN (with kernel retries), then
	// CallsPerConn sequential requests.
	launch = func(client string, w *WebServer) {
		connStart := eng.Now()
		attempt := 0
		var try func()
		established := func(conn *WebServer) {
			// Run the request loop; record the conn setup + first reply
			// delay in ConnDelays (the python-logger view of Figs 10–11).
			call := 0
			var doCall func()
			if !ft {
				doCall = func() {
					if call >= cfg.CallsPerConn {
						conn.closeConn()
						return
					}
					call++
					first := call == 1
					reqStart := eng.Now()
					attempts++
					d.request(client, conn, cfg, func(ok bool) {
						delay := float64(eng.Now() - reqStart)
						d.noteSettled(ok, delay)
						if inWindow() {
							if ok {
								served++
								res.Latency.Add(delay)
								if exact {
									res.Delays.Add(delay)
									if first {
										res.ConnDelays.Add(float64(eng.Now() - connStart))
									}
								}
							} else {
								errored++
							}
						}
						doCall()
					})
				}
			} else {
				// Recovery request loop: each call is a chain of attempts,
				// each guarded by the client timeout; a timed-out attempt is
				// abandoned (a late reply is ignored) and retried against a
				// live server after capped exponential backoff.
				doCall = func() {
					if call >= cfg.CallsPerConn {
						conn.closeConn()
						return
					}
					call++
					first := call == 1
					reqStart := eng.Now()
					settled := false
					tryNo := 0
					settle := func(ok bool) {
						settled = true
						delay := float64(eng.Now() - reqStart)
						d.noteSettled(ok, delay)
						if inWindow() {
							if ok {
								served++
								res.Latency.Add(delay)
								if exact {
									res.Delays.Add(delay)
									if first {
										res.ConnDelays.Add(float64(eng.Now() - connStart))
									}
								}
							} else {
								errored++
							}
						}
						doCall()
					}
					var tryReq func(srv *WebServer)
					tryReq = func(srv *WebServer) {
						tryNo++
						id := tryNo
						attempts++
						res.Attempts++
						if budgeted && id == 1 {
							d.budget.deposit()
						}
						timer := eng.After(cfg.RequestTimeout, func() {
							if settled || id != tryNo {
								return
							}
							tryNo++ // abandon: the straggling reply is ignored
							if inWindow() {
								res.Timeouts++
							}
							if id > cfg.MaxRetries {
								settle(false)
								return
							}
							// The retry budget keeps a crash under peak from
							// amplifying into a storm: no token, no retry —
							// the operation fails fast instead.
							if budgeted && !d.budget.spend() {
								if inWindow() {
									res.RetryDenied++
								}
								settle(false)
								return
							}
							if inWindow() {
								res.Retries++
							}
							backoff := cfg.RetryBase * float64(uint(1)<<uint(min(id-1, 3)))
							eng.After(backoff, func() {
								if settled {
									return
								}
								nxt := srv
								if !nxt.Node.Up() {
									if nl := d.nextLive(nxt); nl != nil {
										nxt = nl
									}
								}
								tryReq(nxt)
							})
						})
						d.request(client, srv, cfg, func(ok bool) {
							if settled || id != tryNo {
								return
							}
							timer.Cancel()
							settle(ok)
						})
					}
					start := conn
					if !start.Node.Up() {
						if nl := d.nextLive(start); nl != nil {
							start = nl
						}
					}
					tryReq(start)
				}
			}
			doCall()
		}
		// refused delivers a shed SYN's RST: the client gives up immediately
		// (no kernel retries), keeping the backlog below the thrash region.
		refused := func(srv *WebServer) {
			d.noteShed()
			d.Fab.Send(srv.Node.ID, client, rpcHeaderBytes, func() {
				d.ovl.winOps++
				if inWindow() {
					res.ConnFailures++
					if exact {
						res.ConnDelays.Add(float64(eng.Now() - connStart))
					}
				}
			})
		}
		if !ft {
			try = func() {
				// SYN travels to the server; ~60 bytes.
				d.Fab.Send(client, w.Node.ID, rpcHeaderBytes, func() {
					if w.refuseConn() {
						refused(w)
						return
					}
					if w.admitConn(func() {
						// SYN-ACK back, then the conn is usable.
						d.Fab.Send(w.Node.ID, client, rpcHeaderBytes, func() { established(w) })
					}) {
						return
					}
					// Dropped: kernel retry schedule, then give up.
					if attempt < len(d.Params.RetryBackoff) {
						backoff := d.Params.RetryBackoff[attempt]
						attempt++
						eng.After(backoff, try)
						return
					}
					d.ovl.winOps++
					if inWindow() {
						res.ConnFailures++
						if exact {
							res.ConnDelays.Add(float64(eng.Now() - connStart))
						}
					}
				})
			}
		} else {
			// Recovery handshake: a SYN or SYN-ACK lost to a cut link gets
			// no feedback, so each attempt also arms the kernel retransmit
			// timer; whichever fires first (explicit drop or timeout) drives
			// the shared retry schedule, steering to a live server.
			srv := w
			synNo := 0
			var est bool
			giveUp := func() {
				d.ovl.winOps++
				if inWindow() {
					res.ConnFailures++
					if exact {
						res.ConnDelays.Add(float64(eng.Now() - connStart))
					}
				}
			}
			dropped := func() {
				synNo++ // invalidate the attempt's other outcome path
				if attempt < len(d.Params.RetryBackoff) {
					backoff := d.Params.RetryBackoff[attempt]
					attempt++
					eng.After(backoff, try)
					return
				}
				giveUp()
			}
			try = func() {
				if est {
					return
				}
				if !srv.Node.Up() {
					nl := d.nextLive(srv)
					if nl == nil {
						giveUp()
						return
					}
					srv = nl
				}
				synNo++
				id := synNo
				target := srv
				d.Fab.Send(client, target.Node.ID, rpcHeaderBytes, func() {
					if est || id != synNo {
						return
					}
					if target.refuseConn() {
						synNo++ // RST settles the attempt; the retransmit timer is stale
						refused(target)
						return
					}
					if !target.admitConn(func() {
						d.Fab.Send(target.Node.ID, client, rpcHeaderBytes, func() {
							if est || id != synNo {
								return
							}
							est = true
							established(target)
						})
					}) {
						dropped()
					}
				})
				// Kernel retransmit timeout: reuse the backoff schedule's
				// current step as the wait for the (possibly lost) SYN-ACK.
				wait := d.Params.RetryBackoff[min(attempt, len(d.Params.RetryBackoff)-1)]
				eng.After(wait, func() {
					if est || id != synNo {
						return
					}
					dropped()
				})
			}
		}
		try()
	}
	if openLoop {
		// Open-loop pump: the profiled arrival process fires connections at
		// absolute instants regardless of how the fleet is doing — the
		// client population does not wait for responses.
		arr := load.NewArrivals(cfg.Profile, d.rnd.arrival, cfg.Duration)
		origin := eng.Now()
		var pump func()
		pump = func() {
			at, ok := arr.Next()
			if !ok {
				return
			}
			eng.At(origin+sim.Time(at), func() {
				if inWindow() {
					res.Offered++
				}
				fire()
				pump()
			})
		}
		pump()
	} else {
		eng.After(d.rnd.arrival.Exp(1/cfg.Concurrency), gen)
	}

	// Run to completion: generation stops at Duration, stragglers drain.
	eng.RunUntil(winEnd + sim.Time(20))

	window := float64(winEnd - winStart)
	res.Throughput = float64(served) / window
	if exact {
		res.MeanDelay = res.Delays.Mean()
	} else {
		res.MeanDelay = res.Latency.Mean()
	}
	res.Errors500 = errored
	total := served + errored + res.ConnFailures
	if total > 0 {
		res.ErrorRate = float64(errored+res.ConnFailures) / float64(total)
	}
	res.MeanPower = units.Watts(winEnergy / window)
	res.Energy = units.Joules(winEnergy)
	res.WebCPU = webUtil.mean()
	res.CacheCPU = cacheUtil.mean()
	var gets, hits int64
	for _, c := range d.Cache {
		gets += c.gets
		hits += c.hits
	}
	if gets > 0 {
		res.HitRatio = float64(hits) / float64(gets)
	}
	res.DBDelay = d.dbDelay
	res.CacheDelay = d.cacheDelay
	res.WebTotal = d.webTotal
	d.dbDelay, d.cacheDelay, d.webTotal = stats.Summary{}, stats.Summary{}, stats.Summary{}
	res.Shed = d.ovl.shed
	res.Degraded = d.ovl.degraded
	if asMgr != nil {
		st := asMgr.Stats()
		res.ScaleUps = st.ScaleUps
		res.ScaleDowns = st.ScaleDowns
		res.Boots = st.Boots
		res.DrainCancels = st.DrainCancels
		// Boot burn at the busy draw of whatever power model the web nodes
		// actually run (the cluster builder may have armed a non-default one).
		busy := d.Plat.Spec.Power.BusyDraw()
		if len(d.Web) > 0 {
			busy = d.Web[0].Node.PowerModel().BusyDraw()
		}
		res.BootEnergy = units.Joules(st.BootSecs * float64(busy))
		res.MeanActive = (asIntegWinEnd - asIntegWinStart) / window
		d.teardownAutoscale(asMgr, asPool, asUtil)
	}
	d.ovl = overloadCounters{}
	d.sloDig = nil
	d.brownout = false
	return res
}

// nextLive returns the first web server after w in ring order whose node is
// up, or nil when the whole tier is down. Ring order keeps failover
// deterministic and spreads a dead server's inherited load evenly. With
// autoscale armed the ring is the serving rotation, so retries never land on
// a booting or parked server (Up, but not serving).
func (d *Deployment) nextLive(w *WebServer) *WebServer {
	ring := d.Web
	if d.scaler != nil {
		ring = d.rotation
		if len(ring) == 0 {
			return nil
		}
	}
	start := 0
	for i, s := range ring {
		if s == w {
			start = i
			break
		}
	}
	for k := 1; k <= len(ring); k++ {
		if s := ring[(start+k)%len(ring)]; s.Node.Up() {
			return s
		}
	}
	return nil
}

func (d *Deployment) webNodes() []*hw.Node {
	out := make([]*hw.Node, len(d.Web))
	for i, w := range d.Web {
		out[i] = w.Node
	}
	return out
}

func (d *Deployment) cacheNodes() []*hw.Node {
	out := make([]*hw.Node, len(d.Cache))
	for i, c := range d.Cache {
		out[i] = c.Node
	}
	return out
}

// utilTracker integrates the mean CPU utilization of a node set over a
// measurement window. It subscribes to per-node utilization changes instead
// of sampling on a timer: the integral is exact and no events are added to
// the engine beyond the single window-start anchor.
type utilTracker struct {
	nodes            []*hw.Node
	integs           []*stats.Integrator // one per node: exact and O(1) per change
	cancels          []func()
	winStart, winEnd float64
}

// trackMeanUtil attaches a tracker to the nodes for the window
// [winStart, winEnd]. Call detach after the run to unhook the callbacks.
func trackMeanUtil(eng *sim.Engine, nodes []*hw.Node, winStart, winEnd sim.Time) *utilTracker {
	tr := &utilTracker{
		nodes:    nodes,
		integs:   make([]*stats.Integrator, len(nodes)),
		winStart: float64(winStart),
		winEnd:   float64(winEnd),
	}
	for i := range nodes {
		tr.integs[i] = stats.NewIntegrator(tr.winStart, 0)
	}
	for i, n := range nodes {
		i := i
		tr.cancels = append(tr.cancels, n.SubscribeUtil(func(u float64) {
			tr.set(i, u, float64(eng.Now()))
		}))
	}
	// Anchor each integrand at window start with whatever is running then.
	eng.At(winStart, func() {
		for i, n := range nodes {
			tr.set(i, n.Utilization(), tr.winStart)
		}
	})
	return tr
}

// set updates one node's integrand, clamped to the measurement window.
// Changes before winStart are ignored — the window-start anchor reads the
// live utilization then — and changes after winEnd no longer matter.
func (tr *utilTracker) set(i int, u, now float64) {
	if now < tr.winStart || now > tr.winEnd {
		return
	}
	tr.integs[i].Set(now, u)
}

// mean reports the time-weighted mean utilization across the node set over
// the window: Σ per-node integrals / (nodes × window).
func (tr *utilTracker) mean() float64 {
	window := tr.winEnd - tr.winStart
	if window <= 0 || len(tr.nodes) == 0 {
		return 0
	}
	var total float64
	for _, in := range tr.integs {
		total += in.Total(tr.winEnd)
	}
	return total / (float64(len(tr.nodes)) * window)
}

// detach unhooks the tracker's own subscriptions (other observers on the
// same nodes are untouched).
func (tr *utilTracker) detach() {
	for _, cancel := range tr.cancels {
		cancel()
	}
}
