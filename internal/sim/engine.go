// Package sim is edisim's discrete-event simulation kernel: a virtual clock,
// a cancellable event heap, FIFO k-server resources and a virtual-time
// processor-sharing resource. All higher-level models (CPUs, disks, network
// flows, web requests, MapReduce containers) are built from these primitives.
//
// The kernel is single-threaded and callback-based: an event is a func()
// executed at its scheduled virtual time. Determinism is guaranteed by
// breaking time ties with a monotone sequence number. One engine must only
// ever be driven from one goroutine, but any number of engines can run
// concurrently (see internal/runner), so the kernel keeps no global state.
//
// The event queue is a concrete 4-ary min-heap over pooled Event records:
// scheduling does not allocate in steady state (events are recycled through
// a per-engine freelist, grown in chunks), and the heap needs no interface
// boxing or indirect calls. Handles returned by At/After are small EventRef
// values stamped with the event's sequence number, so a stale handle —
// kept after its event fired or was cancelled — is detected and ignored
// rather than corrupting a recycled event.
package sim

import (
	"fmt"
	"math"
)

// Time is simulation time in seconds since the start of the run.
type Time float64

// Event is a pooled event record. User code never holds *Event directly;
// it holds EventRef handles, which stay safe across recycling.
type Event struct {
	at  Time
	seq uint64 // unique per scheduling; 0 while on the freelist
	fn  func()
	pos int // heap position
	eng *Engine
}

// EventRef is a cheap, copyable handle to a scheduled event. The zero value
// is inert. A ref stays valid-to-use (but inactive) after its event fires or
// is cancelled: every operation on a dead ref is a no-op.
type EventRef struct {
	ev  *Event
	seq uint64
}

// live reports whether the ref still names a scheduled event.
func (r EventRef) live() bool { return r.ev != nil && r.ev.seq == r.seq }

// Cancel removes the event from the schedule. Cancelling an already-fired,
// already-cancelled or zero ref is a no-op.
func (r EventRef) Cancel() {
	if r.live() {
		r.ev.eng.remove(r.ev)
	}
}

// Active reports whether the event is still scheduled (not fired, not
// cancelled).
func (r EventRef) Active() bool { return r.live() }

// Time reports when the event is scheduled to fire; zero for a dead ref.
func (r EventRef) Time() Time {
	if r.live() {
		return r.ev.at
	}
	return 0
}

// eventChunk is how many Event records the freelist grows by at once.
const eventChunk = 256

// Engine drives a simulation: it owns the clock and the pending event set.
type Engine struct {
	now     Time
	seq     uint64
	heap    []*Event // 4-ary min-heap on (at, seq)
	free    []*Event // recycled event records
	stopped bool
	fired   uint64

	// interrupt, when set, is polled every interruptStride events inside
	// Run/RunUntil; returning true abandons the run (see SetInterrupt).
	interrupt   func() bool
	interrupted bool
}

// interruptStride is how many events execute between interrupt polls: often
// enough that a cancelled context stops a stuck simulation within
// milliseconds of wall time, rare enough that the poll is invisible in the
// event-loop profile.
const interruptStride = 4096

// SetInterrupt installs a poll called every few thousand executed events
// during Run/RunUntil; when it returns true the run stops early (like Stop)
// and Interrupted reports true. It is how context cancellation reaches the
// inside of a long-running simulation: the engine is single-threaded, so
// without a checkpoint a stuck unit could only be abandoned between units.
// nil (the default) disables polling. The hook must be deterministic-safe:
// it is only ever used to abandon a run, never to steer one.
func (e *Engine) SetInterrupt(fn func() bool) { e.interrupt = fn }

// Interrupted reports whether the last Run/RunUntil was abandoned by the
// interrupt poll. Results computed after an interrupted run are partial.
func (e *Engine) Interrupted() bool { return e.interrupted }

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed, a cheap progress/cost metric.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc takes an event record from the freelist, growing it when empty.
func (e *Engine) alloc() *Event {
	if len(e.free) == 0 {
		chunk := make([]Event, eventChunk)
		for i := range chunk {
			chunk[i].eng = e
			e.free = append(e.free, &chunk[i])
		}
	}
	ev := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	return ev
}

// recycle invalidates outstanding refs and returns the record to the pool.
func (e *Engine) recycle(ev *Event) {
	ev.seq = 0
	ev.fn = nil // release the closure for GC
	e.free = append(e.free, ev)
}

// less orders events by (time, sequence): FIFO within a time tie.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores heap order moving the event at position i toward the root.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].pos = i
		i = p
	}
	h[i] = ev
	ev.pos = i
}

// siftDown restores heap order moving the event at position i toward the
// leaves.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		first := i*4 + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(h[c], h[m]) {
				m = c
			}
		}
		if !less(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].pos = i
		i = m
	}
	h[i] = ev
	ev.pos = i
}

// remove deletes a scheduled event from the heap and recycles it.
func (e *Engine) remove(ev *Event) {
	i := ev.pos
	n := len(e.heap) - 1
	if i != n {
		e.heap[i] = e.heap[n]
		e.heap[i].pos = i
	}
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if i < n {
		e.siftDown(i)
		e.siftUp(i)
	}
	e.recycle(ev)
}

// At schedules fn to run at absolute time t (>= Now) and returns a handle
// that can cancel it. Scheduling in the past panics: it is always a bug.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %g < %g", t, e.now))
	}
	if math.IsNaN(float64(t)) || math.IsInf(float64(t), 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", t))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.pos = len(e.heap)
	e.heap = append(e.heap, ev)
	e.siftUp(ev.pos)
	return EventRef{ev: ev, seq: ev.seq}
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	return e.At(e.now+Time(d), fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until none remain or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(math.Inf(1)))
}

// popHead removes the earliest event, advances the clock to it and returns
// its callback. The record is recycled before the callback runs, so the
// callback is free to schedule (and reuse) events.
func (e *Engine) popHead() func() {
	ev := e.heap[0]
	e.now = ev.at
	fn := ev.fn
	e.remove(ev)
	e.fired++
	return fn
}

// RunUntil executes events in time order until the next event would fire
// after deadline, none remain, or Stop is called. The clock is left at the
// time of the last executed event (or advanced to deadline when it is
// finite and later).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	e.interrupted = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].at > deadline {
			break
		}
		if e.interrupt != nil && e.fired%interruptStride == 0 && e.interrupt() {
			e.interrupted = true
			return
		}
		e.popHead()()
	}
	if !e.stopped && !math.IsInf(float64(deadline), 1) && deadline > e.now {
		e.now = deadline
	}
}

// Step executes exactly one event, reporting false when none remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	e.popHead()()
	return true
}
