// Package sim is edisim's discrete-event simulation kernel: a virtual clock,
// a cancellable event heap, FIFO k-server resources and a virtual-time
// processor-sharing resource. All higher-level models (CPUs, disks, network
// flows, web requests, MapReduce containers) are built from these primitives.
//
// The kernel is single-threaded and callback-based: an event is a func()
// executed at its scheduled virtual time. Determinism is guaranteed by
// breaking time ties with a monotone sequence number.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulation time in seconds since the start of the run.
type Time float64

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once popped or cancelled
	canceled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called.
func (ev *Event) Canceled() bool { return ev.canceled }

// Time reports when the event is (or was) scheduled to fire.
func (ev *Event) Time() Time { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine drives a simulation: it owns the clock and the pending event set.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed, a cheap progress/cost metric.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t (>= Now) and returns a handle
// that can cancel it. Scheduling in the past panics: it is always a bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %g < %g", t, e.now))
	}
	if math.IsNaN(float64(t)) || math.IsInf(float64(t), 0) {
		panic(fmt.Sprintf("sim: scheduling at non-finite time %v", t))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	return e.At(e.now+Time(d), fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until none remain or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(math.Inf(1)))
}

// RunUntil executes events in time order until the next event would fire
// after deadline, none remain, or Stop is called. The clock is left at the
// time of the last executed event (or advanced to deadline when it is
// finite and later).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	if !e.stopped && !math.IsInf(float64(deadline), 1) && deadline > e.now {
		e.now = deadline
	}
}

// Step executes exactly one non-cancelled event, reporting false when no
// events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		next := heap.Pop(&e.events).(*Event)
		if next.canceled {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
		return true
	}
	return false
}
