package sim

import "testing"

func TestProcShareSetSpeedFactor(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 100)
	var doneAt Time
	p.Submit(100, func() { doneAt = e.Now() })
	// Halve the speed halfway through: 0.5 s at full rate does half the
	// work, the remaining 50 units at 50 work/s take another 1 s.
	e.After(0.5, func() { p.SetSpeedFactor(0.5) })
	e.Run()
	if !almost(float64(doneAt), 1.5, 1e-9) {
		t.Fatalf("slowed task done at %v, want 1.5", doneAt)
	}
	if p.SpeedFactor() != 0.5 {
		t.Fatalf("speed factor %v, want 0.5", p.SpeedFactor())
	}
}

func TestProcShareSpeedFactorOneIsExact(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 2, 100)
	p.SetSpeedFactor(1)
	var doneAt Time
	p.Submit(137, func() { doneAt = e.Now() })
	e.Run()
	if float64(doneAt) != 1.37 {
		t.Fatalf("factor-1 task done at %v, want exactly 1.37", doneAt)
	}
}

func TestProcShareKillAll(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 2, 100)
	fired := 0
	p.Submit(100, func() { fired++ })
	p.Submit(100, func() { fired++ })
	e.After(0.5, p.KillAll)
	e.Run()
	if fired != 0 {
		t.Fatalf("%d callbacks fired after KillAll, want 0", fired)
	}
	if p.Active() != 0 {
		t.Fatalf("%d active tasks after KillAll, want 0", p.Active())
	}
	// The CPU still works after the massacre.
	var doneAt Time
	p.Submit(100, func() { doneAt = e.Now() })
	e.Run()
	if !almost(float64(doneAt), 1.5, 1e-9) {
		t.Fatalf("post-kill task done at %v, want 1.5", doneAt)
	}
}

func TestEngineInterrupt(t *testing.T) {
	e := NewEngine()
	stop := false
	e.SetInterrupt(func() bool { return stop })
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 10*interruptStride {
			stop = true
		}
		e.After(1e-6, tick)
	}
	e.After(0, tick)
	e.Run()
	if !e.Interrupted() {
		t.Fatal("engine did not report interruption")
	}
	// The poll happens every interruptStride events, so the run stops
	// within one stride of the trigger instead of draining the schedule.
	if n > 11*interruptStride {
		t.Fatalf("engine ran %d events past the interrupt point", n-10*interruptStride)
	}
}

func TestEngineInterruptUnsetRunsToCompletion(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 3*interruptStride {
			e.After(1e-6, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if n != 3*interruptStride || e.Interrupted() {
		t.Fatalf("uninterrupted engine ran %d events (interrupted=%v)", n, e.Interrupted())
	}
}

// BenchmarkProcShareSlowFactor pins the fault path's cost: a CPU running at
// a non-unit speed factor must stay allocation-free on the submit/complete
// hot path, like the healthy CPU BenchmarkProcShare pins.
func BenchmarkProcShareSlowFactor(b *testing.B) {
	e := NewEngine()
	p := NewProcShare(e, 2, 1000)
	p.SetSpeedFactor(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Submit(1, func() {})
		e.Run()
	}
}
