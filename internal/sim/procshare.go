package sim

import (
	"fmt"
	"math"
)

// ProcShare models an N-core processor shared by single-threaded tasks
// (egalitarian processor sharing): with m active tasks each runs at
// speed*min(1, N/m). It is the CPU model for web request processing,
// MapReduce containers and benchmark threads.
//
// The implementation uses virtual time: v(t) advances at the common
// per-task rate, each task completes when v reaches its submission v plus
// its work, so arrivals and departures cost O(log m) instead of O(m).
//
// PSTask records are pooled like Event records: Submit takes one from a
// per-processor freelist (grown in chunks) and completion or cancellation
// returns it, so the compute hot path does not allocate in steady state.
// User code never holds *PSTask directly; it holds PSTaskRef handles,
// which stay safe across recycling.
type ProcShare struct {
	eng   *Engine
	cores float64 // effective parallel capacity (cores × HT factor)
	speed float64 // work units per second per core at the current factor
	base  float64 // nominal per-core speed (speed = base × slow factor)

	v        float64 // virtual work served per task so far
	lastT    Time    // when v was last advanced
	tasks    psHeap
	nextDone EventRef

	// free is the PSTask record pool; taskSeq stamps each submission so
	// stale PSTaskRefs are detected after recycling. doneQueue is reusable
	// scratch for one completion round's callbacks; completeFn is the
	// bound complete closure (allocated once instead of per re-arm).
	free       []*PSTask
	taskSeq    uint64
	doneQueue  []func()
	completeFn func()

	// OnActiveChange, when set, is called whenever the number of active
	// tasks changes (after the change); used for utilization/power tracking.
	OnActiveChange func(active int)

	busyIntegral *psBusyIntegral
}

// psBusyIntegral tracks ∫ busyCores dt for utilization accounting.
type psBusyIntegral struct {
	lastT Time
	cur   float64
	area  float64
}

// PSTask is a pooled task record. User code never holds *PSTask directly;
// it holds PSTaskRef handles (see Submit).
type PSTask struct {
	key   float64 // v at which this task completes
	seq   uint64  // unique per submission; 0 while on the freelist
	index int     // heap position; -1 when not in the heap
	done  func()
	work  float64
	ps    *ProcShare
}

// PSTaskRef is a cheap, copyable handle to a submitted task. The zero value
// is inert. A ref stays valid-to-use after its task completes or is
// cancelled: every operation on a dead ref is a no-op.
type PSTaskRef struct {
	t   *PSTask
	seq uint64
}

// live reports whether the ref still names an in-flight task.
func (r PSTaskRef) live() bool { return r.t != nil && r.t.seq == r.seq }

// Active reports whether the task is still in flight (not completed, not
// cancelled).
func (r PSTaskRef) Active() bool { return r.live() }

// Cancel removes the task before completion. Cancelling a completed,
// already-cancelled or zero ref is a no-op.
func (r PSTaskRef) Cancel() {
	if r.live() {
		r.t.ps.cancel(r.t)
	}
}

// psTaskChunk is how many PSTask records the freelist grows by at once.
const psTaskChunk = 64

// allocTask takes a task record from the freelist, growing it when empty.
func (p *ProcShare) allocTask() *PSTask {
	if len(p.free) == 0 {
		chunk := make([]PSTask, psTaskChunk)
		for i := range chunk {
			chunk[i].ps = p
			p.free = append(p.free, &chunk[i])
		}
	}
	t := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return t
}

// recycleTask invalidates outstanding refs and returns the record to the
// pool.
func (p *ProcShare) recycleTask(t *PSTask) {
	t.seq = 0
	t.done = nil // release the closure for GC
	p.free = append(p.free, t)
}

// psHeap is a concrete binary min-heap on PSTask.key (virtual finish time),
// avoiding container/heap's interface boxing on the submit/complete path.
type psHeap []*PSTask

func (h psHeap) siftUp(i int) {
	t := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if h[p].key <= t.key {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = t
	t.index = i
}

func (h psHeap) siftDown(i int) {
	n := len(h)
	t := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h[c+1].key < h[c].key {
			c++
		}
		if h[c].key >= t.key {
			break
		}
		h[i] = h[c]
		h[i].index = i
		i = c
	}
	h[i] = t
	t.index = i
}

func (h *psHeap) push(t *PSTask) {
	t.index = len(*h)
	*h = append(*h, t)
	h.siftUp(t.index)
}

// remove deletes the task at heap position i and returns it.
func (h *psHeap) remove(i int) *PSTask {
	old := *h
	n := len(old) - 1
	t := old[i]
	if i != n {
		old[i] = old[n]
		old[i].index = i
	}
	old[n] = nil
	*h = old[:n]
	if i < n {
		h.siftDown(i)
		h.siftUp(i)
	}
	t.index = -1
	return t
}

// NewProcShare returns a processor with the given effective core count and
// per-core speed (work units per second).
func NewProcShare(eng *Engine, cores, speedPerCore float64) *ProcShare {
	if cores <= 0 || speedPerCore <= 0 {
		panic("sim: ProcShare needs positive cores and speed")
	}
	p := &ProcShare{
		eng:          eng,
		cores:        cores,
		speed:        speedPerCore,
		base:         speedPerCore,
		lastT:        eng.Now(),
		busyIntegral: &psBusyIntegral{lastT: eng.Now()},
	}
	p.completeFn = p.complete
	return p
}

// rate reports the current per-task service rate in work units per second.
func (p *ProcShare) rate() float64 {
	m := float64(len(p.tasks))
	if m == 0 {
		return 0
	}
	if m <= p.cores {
		return p.speed
	}
	return p.speed * p.cores / m
}

// busyCores reports how many cores are busy right now.
func (p *ProcShare) busyCores() float64 {
	m := float64(len(p.tasks))
	if m > p.cores {
		return p.cores
	}
	return m
}

// advance brings virtual time and the busy integral up to now.
func (p *ProcShare) advance() {
	now := p.eng.Now()
	dt := float64(now - p.lastT)
	if dt > 0 {
		p.v += dt * p.rate()
		p.lastT = now
	}
	bi := p.busyIntegral
	bdt := float64(now - bi.lastT)
	if bdt > 0 {
		bi.area += bi.cur * bdt
		bi.lastT = now
	}
	bi.cur = p.busyCores()
}

// Submit adds a task needing the given amount of work; done runs at
// completion. Zero-work tasks complete via a zero-delay event.
func (p *ProcShare) Submit(work float64, done func()) PSTaskRef {
	if work < 0 {
		panic(fmt.Sprintf("sim: negative work %g", work))
	}
	p.advance()
	p.taskSeq++
	t := p.allocTask()
	t.key = p.v + work
	t.seq = p.taskSeq
	t.done = done
	t.work = work
	p.tasks.push(t)
	p.busyIntegral.cur = p.busyCores()
	p.reschedule()
	if p.OnActiveChange != nil {
		p.OnActiveChange(len(p.tasks))
	}
	return PSTaskRef{t: t, seq: t.seq}
}

// CancelTask removes a task before completion. Cancelling a completed,
// already-cancelled or zero ref is a no-op (equivalent to ref.Cancel).
func (p *ProcShare) CancelTask(r PSTaskRef) { r.Cancel() }

// cancel removes a live task from the heap and recycles its record.
func (p *ProcShare) cancel(t *PSTask) {
	p.advance()
	p.tasks.remove(t.index)
	p.recycleTask(t)
	p.busyIntegral.cur = p.busyCores()
	p.reschedule()
	if p.OnActiveChange != nil {
		p.OnActiveChange(len(p.tasks))
	}
}

// veps is the virtual-time comparison tolerance. It must be RELATIVE to the
// accumulated virtual work: with an absolute epsilon, a long-running
// processor (v ≫ 1) can reach a state where the head task's remaining work
// is positive but the implied delay underflows the simulation clock's
// float64 resolution, livelocking the engine at a single instant.
func (p *ProcShare) veps() float64 {
	v := p.v
	if v < 0 {
		v = -v
	}
	return 1e-9 * (v + 1)
}

// reschedule re-arms the next-completion event for the current head task.
func (p *ProcShare) reschedule() {
	p.nextDone.Cancel()
	p.nextDone = EventRef{}
	if len(p.tasks) == 0 {
		return
	}
	head := p.tasks[0]
	remaining := head.key - p.v
	if remaining < 0 {
		remaining = 0
	}
	r := p.rate()
	dt := remaining / r
	p.nextDone = p.eng.After(dt, p.completeFn)
}

// complete pops every task whose virtual finish time has been reached.
// Finished records are recycled before their done callbacks run, so a
// callback submitting new work can reuse them immediately.
func (p *ProcShare) complete() {
	p.nextDone = EventRef{}
	p.advance()
	eps := p.veps()
	// Collect done callbacks in the reusable queue. complete never nests
	// (it only runs as an engine event), and callbacks submit tasks, not
	// callbacks, so iterating the queue below is safe.
	finished := p.doneQueue[:0]
	popped := 0
	for len(p.tasks) > 0 && p.tasks[0].key <= p.v+eps {
		t := p.tasks.remove(0)
		popped++
		if t.done != nil {
			finished = append(finished, t.done)
		}
		p.recycleTask(t)
	}
	p.busyIntegral.cur = p.busyCores()
	p.reschedule()
	if p.OnActiveChange != nil && popped > 0 {
		p.OnActiveChange(len(p.tasks))
	}
	for _, done := range finished {
		done()
	}
	for i := range finished {
		finished[i] = nil
	}
	p.doneQueue = finished[:0]
}

// SetSpeedFactor rescales the per-core speed to factor × the nominal speed
// (the construction-time speedPerCore). It models straggler injection: a
// factor below 1 slows every in-flight and future task proportionally from
// this instant on; factor 1 restores nominal speed. Work already served is
// untouched (virtual time is advanced before the rate changes). The factor
// must be positive and finite — a dead CPU is KillAll, not factor 0.
func (p *ProcShare) SetSpeedFactor(factor float64) {
	if !(factor > 0) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("sim: speed factor %g must be positive and finite", factor))
	}
	p.advance()
	p.speed = p.base * factor
	p.reschedule()
}

// SpeedFactor reports the current speed scaling (1 when never adjusted).
func (p *ProcShare) SpeedFactor() float64 { return p.speed / p.base }

// KillAll drops every in-flight task without running its done callback —
// the CPU side of a node crash. Outstanding PSTaskRefs go stale (every
// operation on them becomes a no-op); recovery is the caller's problem
// (upper-layer timeouts), exactly as with a real power loss.
func (p *ProcShare) KillAll() {
	if len(p.tasks) == 0 {
		return
	}
	p.advance()
	for len(p.tasks) > 0 {
		t := p.tasks.remove(len(p.tasks) - 1)
		p.recycleTask(t)
	}
	p.busyIntegral.cur = 0
	p.reschedule()
	if p.OnActiveChange != nil {
		p.OnActiveChange(0)
	}
}

// Active reports the number of in-flight tasks.
func (p *ProcShare) Active() int { return len(p.tasks) }

// Cores reports the effective core capacity.
func (p *ProcShare) Cores() float64 { return p.cores }

// Speed reports the per-core speed in work units per second.
func (p *ProcShare) Speed() float64 { return p.speed }

// Utilization reports busy cores / total cores at this instant.
func (p *ProcShare) Utilization() float64 { return p.busyCores() / p.cores }

// BusyCoreSeconds reports ∫ busyCores dt up to the current engine time.
func (p *ProcShare) BusyCoreSeconds() float64 {
	bi := p.busyIntegral
	return bi.area + bi.cur*float64(p.eng.Now()-bi.lastT)
}
