package sim

import "testing"

func TestResourceImmediateGrant(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	granted := 0
	r.Acquire(func() { granted++ })
	r.Acquire(func() { granted++ })
	if granted != 2 || r.InUse() != 2 {
		t.Fatalf("granted=%d inUse=%d, want 2,2", granted, r.InUse())
	}
}

func TestResourceFIFOQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	r.Acquire(func() { order = append(order, 0) })
	for i := 1; i <= 3; i++ {
		i := i
		r.Acquire(func() { order = append(order, i) })
	}
	if r.QueueLen() != 3 {
		t.Fatalf("queue len %d, want 3", r.QueueLen())
	}
	for i := 0; i < 3; i++ {
		r.Release()
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestResourceMaxQueueRejects(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	r.MaxQueue = 2
	r.Acquire(func() {})
	if !r.Acquire(func() {}) || !r.Acquire(func() {}) {
		t.Fatal("queueing within MaxQueue rejected")
	}
	if r.Acquire(func() {}) {
		t.Fatal("acquire beyond MaxQueue admitted")
	}
	if r.Rejected() != 1 {
		t.Fatalf("rejected=%d, want 1", r.Rejected())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	e := NewEngine()
	NewResource(e, 1).Release()
}

func TestResourcePeakInUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 3)
	r.Acquire(func() {})
	r.Acquire(func() {})
	r.Release()
	r.Release()
	if r.PeakInUse() != 2 {
		t.Fatalf("peak %d, want 2", r.PeakInUse())
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 4)
	r.Acquire(func() {})
	if got := r.Utilization(); got != 0.25 {
		t.Fatalf("utilization %g, want 0.25", got)
	}
}

// TestResourceWaiterRingBounded: a never-drained waiting line must keep its
// backing array proportional to queue depth (the ring compacts its dead
// prefix), not to total traffic, and FIFO order must survive compaction.
func TestResourceWaiterRingBounded(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	r.Acquire(func() {}) // permanent holder
	next := 0
	enqueue := func(id int) {
		r.Acquire(func() {
			if id != next {
				t.Fatalf("waiter %d granted, want %d", id, next)
			}
			next++
		})
	}
	// Keep the queue 2 deep across 100k grant cycles.
	enqueue(0)
	enqueue(1)
	for i := 0; i < 100000; i++ {
		enqueue(i + 2)
		r.Release() // grants waiter i, requeues the unit via the holder below
		r.TryAcquire()
	}
	if next != 100000 {
		t.Fatalf("granted %d waiters, want 100000", next)
	}
	if got := r.QueueLen(); got != 2 {
		t.Fatalf("queue length %d, want 2", got)
	}
	if c := cap(r.waiters); c > 1024 {
		t.Fatalf("waiter ring capacity %d after 100k cycles with a 2-deep queue, want bounded", c)
	}
}
