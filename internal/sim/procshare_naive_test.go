package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestProcShareMatchesNaiveOracle drives both implementations with an
// identical randomized workload (staggered arrivals, varying sizes) and
// requires identical completion times to within numerical tolerance.
func TestProcShareMatchesNaiveOracle(t *testing.T) {
	type arrival struct {
		at   float64
		work float64
	}
	run := func(arrivals []arrival, fast bool) []float64 {
		eng := NewEngine()
		var times []float64
		collect := func() { times = append(times, float64(eng.Now())) }
		if fast {
			p := NewProcShare(eng, 3, 100)
			for _, a := range arrivals {
				a := a
				eng.At(Time(a.at), func() { p.Submit(a.work, collect) })
			}
		} else {
			p := NewNaiveProcShare(eng, 3, 100)
			for _, a := range arrivals {
				a := a
				eng.At(Time(a.at), func() { p.Submit(a.work, collect) })
			}
		}
		eng.Run()
		return times
	}
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		var arrivals []arrival
		for i, r := range raw {
			arrivals = append(arrivals, arrival{
				at:   float64(i%7) * 0.25,
				work: float64(r%5000)/10 + 1,
			})
		}
		a := run(arrivals, true)
		b := run(arrivals, false)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			tol := 1e-6 * (1 + math.Abs(b[i]))
			if math.Abs(a[i]-b[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveProcShareBasic(t *testing.T) {
	eng := NewEngine()
	p := NewNaiveProcShare(eng, 1, 100)
	var t1, t2 Time
	p.Submit(100, func() { t1 = eng.Now() })
	p.Submit(100, func() { t2 = eng.Now() })
	eng.Run()
	if !almost(float64(t1), 2.0, 1e-9) || !almost(float64(t2), 2.0, 1e-9) {
		t.Fatalf("naive PS: %v, %v, want 2.0 both", t1, t2)
	}
	if p.Active() != 0 {
		t.Fatal("tasks left behind")
	}
}

// benchPS measures event-processing cost with n concurrent tasks.
func benchPS(b *testing.B, n int, fast bool) {
	for i := 0; i < b.N; i++ {
		eng := NewEngine()
		if fast {
			p := NewProcShare(eng, 4, 100)
			for j := 0; j < n; j++ {
				p.Submit(float64(j%17)+1, nil)
			}
		} else {
			p := NewNaiveProcShare(eng, 4, 100)
			for j := 0; j < n; j++ {
				p.Submit(float64(j%17)+1, nil)
			}
		}
		eng.Run()
	}
}

// Ablation (DESIGN.md): virtual-time PS vs naive rescan PS.
func BenchmarkAblation_ProcShareVirtualTime_1000(b *testing.B) { benchPS(b, 1000, true) }
func BenchmarkAblation_ProcShareNaive_1000(b *testing.B)       { benchPS(b, 1000, false) }
