package sim

import "testing"

// BenchmarkSchedule measures the schedule→fire round trip: one event is
// always pending, so every iteration exercises a heap push and pop.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

// BenchmarkScheduleDeep measures push/pop with a deep heap (4096 pending
// events), the regime the web sweeps run in.
func BenchmarkScheduleDeep(b *testing.B) {
	e := NewEngine()
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.After(float64(i)+1e6, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

// BenchmarkScheduleCancel measures the schedule→cancel churn that
// ProcShare.reschedule and the netsim flow set generate on every
// arrival/departure.
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.After(1, func() {})
		ev.Cancel()
	}
	e.Run()
}

// BenchmarkEngineDrain measures bulk scheduling followed by a full drain,
// in batches so the heap repeatedly grows and empties.
func BenchmarkEngineDrain(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	const batch = 1024
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			e.After(float64(j%17)+0.001, func() {})
		}
		e.Run()
	}
}

// BenchmarkProcShare measures task submit/complete through the
// processor-sharing CPU, the hot path of every compute call in the models.
func BenchmarkProcShare(b *testing.B) {
	e := NewEngine()
	p := NewProcShare(e, 2, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Submit(1, func() {})
		e.Run()
	}
}

// BenchmarkProcShareCancel measures submit/cancel churn through the pooled
// task records (speculative work torn down before completion).
func BenchmarkProcShareCancel(b *testing.B) {
	e := NewEngine()
	p := NewProcShare(e, 2, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Submit(1, nil).Cancel()
	}
	e.Run()
}
