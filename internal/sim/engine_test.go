package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if e.Now() != 5 {
		t.Fatalf("clock at %v, want 5", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want FIFO", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	if !ev.Active() {
		t.Fatal("Active() false while scheduled")
	}
	ev.Cancel()
	if ev.Active() {
		t.Fatal("Active() true after Cancel")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancel, want 0", e.Pending())
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

// TestEventRefStaleSafety: a ref kept after its event fired must become a
// no-op, even once the underlying record has been recycled for a new event.
func TestEventRefStaleSafety(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Run()
	if stale.Active() {
		t.Fatal("ref active after firing")
	}
	// Reschedule: the pool will hand back the same record.
	fired := false
	fresh := e.At(2, func() { fired = true })
	stale.Cancel() // must NOT cancel the recycled event
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
	if fresh.Active() {
		t.Fatal("fresh ref active after firing")
	}
	if stale.Time() != 0 {
		t.Fatalf("stale ref Time() = %v, want 0", stale.Time())
	}
}

// TestEngineSteadyStateNoAlloc: after warm-up, scheduling and firing events
// must not allocate (the freelist recycles records).
func TestEngineSteadyStateNoAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the pool.
	for i := 0; i < 10; i++ {
		e.After(1, fn)
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.Step()
	})
	if allocs > 0 {
		t.Fatalf("schedule/fire allocates %.1f objects per event, want 0", allocs)
	}
}

func TestEngineSchedulingFromEvent(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(1, func() {
		order = append(order, "a")
		e.After(1, func() { order = append(order, "c") })
		e.After(0, func() { order = append(order, "b") })
	})
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("fired %d events by t=5, want 5", count)
	}
	if e.Now() != 5 {
		t.Fatalf("clock %v, want 5", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("fired %d events total, want 10", count)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("clock %v, want 42", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("fired %d events, want 3 after Stop", count)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++ })
	e.At(2, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first Step: count=%d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second Step: count=%d", count)
	}
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

// Property: for any set of delays, events fire in sorted order and the
// final clock equals the max delay.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		var max Time
		for _, r := range raw {
			at := Time(r) / 8
			if at > max {
				max = at
			}
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) || e.Now() != max {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
