package sim

import "testing"

// TestPSTaskRecordsRecycled: records return to the pool when tasks finish,
// and a stale ref must stay dead without touching the reused record.
func TestPSTaskRecordsRecycled(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 1)
	ref1 := p.Submit(1, nil)
	if !ref1.Active() {
		t.Fatal("submitted task not active")
	}
	e.Run()
	if ref1.Active() {
		t.Fatal("completed task still active")
	}
	if got := len(p.free); got != psTaskChunk {
		t.Fatalf("free list has %d records after completion, want %d", got, psTaskChunk)
	}
	// The next Submit must reuse the recycled record; the stale ref stays dead.
	ref2 := p.Submit(1, nil)
	if ref1.t != ref2.t {
		t.Fatal("record not reused from the pool")
	}
	if ref1.Active() {
		t.Fatal("stale ref leaked into the reused record")
	}
	ref1.Cancel() // must NOT cancel the recycled task
	e.Run()
	if ref2.Active() {
		t.Fatal("second task not completed")
	}
}

// TestPSTaskCancelAfterFinish: cancelling a completed task is a no-op even
// after its record has been handed to a new task.
func TestPSTaskCancelAfterFinish(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 1)
	stale := p.Submit(1, nil)
	e.Run()
	fired := false
	fresh := p.Submit(1, func() { fired = true })
	stale.Cancel()
	p.CancelTask(stale)
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled task")
	}
	if fresh.Active() {
		t.Fatal("fresh ref active after completion")
	}
}

// TestPSTaskCancelRemoves: a live cancel removes the task, recycles the
// record, and the done callback never runs.
func TestPSTaskCancelRemoves(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 1)
	ref := p.Submit(100, func() { t.Fatal("cancelled task completed") })
	ref.Cancel()
	if ref.Active() {
		t.Fatal("ref active after cancel")
	}
	if p.Active() != 0 {
		t.Fatalf("%d active tasks after cancel, want 0", p.Active())
	}
	if got := len(p.free); got != psTaskChunk {
		t.Fatalf("free list has %d records after cancel, want %d", got, psTaskChunk)
	}
	ref.Cancel() // idempotent
	e.Run()
}

// TestPSTaskZeroRefInert: the zero PSTaskRef is inert.
func TestPSTaskZeroRefInert(t *testing.T) {
	var r PSTaskRef
	if r.Active() {
		t.Fatal("zero ref active")
	}
	r.Cancel() // must not panic
}

// TestProcShareSteadyStateNoAlloc: after warm-up, submit/complete churn
// through the processor-sharing resource must not allocate (pooled task
// records, reusable completion queue, pooled engine events).
func TestProcShareSteadyStateNoAlloc(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 2, 1000)
	fn := func() {}
	for i := 0; i < 10; i++ {
		p.Submit(1, fn)
		e.Run()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.Submit(1, fn)
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("Submit/complete allocates %.1f objects per task, want 0", allocs)
	}
	// Submit/cancel churn must not allocate either.
	allocs = testing.AllocsPerRun(1000, func() {
		p.Submit(1, fn).Cancel()
	})
	if allocs > 0 {
		t.Fatalf("Submit/Cancel allocates %.1f objects per task, want 0", allocs)
	}
}
