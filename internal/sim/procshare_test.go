package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProcShareSingleTask(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 2, 100) // 2 cores, 100 work/s each
	var doneAt Time
	p.Submit(100, func() { doneAt = e.Now() })
	e.Run()
	if !almost(float64(doneAt), 1.0, 1e-9) {
		t.Fatalf("single task done at %v, want 1.0", doneAt)
	}
}

func TestProcShareParallelTasksWithinCores(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 2, 100)
	var times []Time
	p.Submit(100, func() { times = append(times, e.Now()) })
	p.Submit(100, func() { times = append(times, e.Now()) })
	e.Run()
	// Two tasks, two cores: both finish at t=1, no slowdown.
	for _, at := range times {
		if !almost(float64(at), 1.0, 1e-9) {
			t.Fatalf("parallel task done at %v, want 1.0", at)
		}
	}
}

func TestProcShareContention(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 100)
	var times []Time
	for i := 0; i < 2; i++ {
		p.Submit(100, func() { times = append(times, e.Now()) })
	}
	e.Run()
	// Two equal tasks on one core under PS: both finish at t=2.
	for _, at := range times {
		if !almost(float64(at), 2.0, 1e-9) {
			t.Fatalf("contended task done at %v, want 2.0", at)
		}
	}
}

func TestProcShareLateArrival(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 100)
	var firstDone, secondDone Time
	p.Submit(100, func() { firstDone = e.Now() })
	e.At(0.5, func() {
		p.Submit(100, func() { secondDone = e.Now() })
	})
	e.Run()
	// Task 1 runs alone for 0.5s (50 done), then shares: remaining 50 at
	// rate 50 → finishes at 1.5. Task 2: 50 done by t=1.5, then alone:
	// remaining 50 at rate 100 → finishes at 2.0.
	if !almost(float64(firstDone), 1.5, 1e-9) {
		t.Fatalf("first done at %v, want 1.5", firstDone)
	}
	if !almost(float64(secondDone), 2.0, 1e-9) {
		t.Fatalf("second done at %v, want 2.0", secondDone)
	}
}

func TestProcShareZeroWork(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 100)
	done := false
	p.Submit(0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-work task never completed")
	}
}

func TestProcShareCancel(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 100)
	var aDone Time
	a := p.Submit(100, func() { t.Fatal("cancelled task completed") })
	p.Submit(100, func() { aDone = e.Now() })
	e.At(0.5, func() { p.CancelTask(a) })
	e.Run()
	// Survivor: 25 work done by 0.5 (shared), remaining 75 alone → 1.25.
	if !almost(float64(aDone), 1.25, 1e-9) {
		t.Fatalf("survivor done at %v, want 1.25", aDone)
	}
}

func TestProcShareUtilizationAndBusySeconds(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 4, 100)
	p.Submit(100, nil)
	p.Submit(100, nil)
	if got := p.Utilization(); !almost(got, 0.5, 1e-12) {
		t.Fatalf("utilization %g, want 0.5", got)
	}
	e.Run()
	// 2 tasks × 1s on separate cores → 2 busy-core-seconds.
	if got := p.BusyCoreSeconds(); !almost(got, 2.0, 1e-9) {
		t.Fatalf("busy core seconds %g, want 2", got)
	}
}

func TestProcShareActiveChangeCallback(t *testing.T) {
	e := NewEngine()
	p := NewProcShare(e, 1, 100)
	var transitions []int
	p.OnActiveChange = func(n int) { transitions = append(transitions, n) }
	p.Submit(50, nil)
	p.Submit(50, nil)
	e.Run()
	want := []int{1, 2, 0} // both finish simultaneously under PS
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

// Property: total completion time of n equal tasks on one core equals
// n × (work/speed), and conservation holds: busy-core-seconds equals total
// work / speed for any workload that fits within core count.
func TestProcShareConservationProperty(t *testing.T) {
	f := func(works []uint8) bool {
		if len(works) == 0 {
			return true
		}
		e := NewEngine()
		p := NewProcShare(e, 3, 50)
		var total float64
		for _, w := range works {
			work := float64(w%100) + 1
			total += work
			p.Submit(work, nil)
		}
		e.Run()
		// Work conservation: integrated busy-core-seconds × speed == total work.
		return almost(p.BusyCoreSeconds()*50, total, 1e-6*total+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: completions are ordered by submitted work when all tasks are
// submitted at the same instant (PS preserves work ordering).
func TestProcShareOrderingProperty(t *testing.T) {
	f := func(works []uint8) bool {
		if len(works) < 2 {
			return true
		}
		e := NewEngine()
		p := NewProcShare(e, 2, 10)
		type rec struct {
			work float64
			at   Time
		}
		var recs []*rec
		for _, w := range works {
			r := &rec{work: float64(w) + 1}
			recs = append(recs, r)
			p.Submit(r.work, func() { r.at = e.Now() })
		}
		e.Run()
		for i := range recs {
			for j := range recs {
				if recs[i].work < recs[j].work && recs[i].at > recs[j].at {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
