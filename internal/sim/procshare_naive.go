package sim

// NaiveProcShare is a reference implementation of egalitarian processor
// sharing that rescans every task on each arrival/departure: O(n) per event
// versus ProcShare's O(log n) virtual-time scheme. It exists as the
// correctness oracle for the equivalence property test and as the baseline
// for the ablation benchmark in DESIGN.md; simulations use ProcShare.
type NaiveProcShare struct {
	eng   *Engine
	cores float64
	speed float64

	tasks    []*naiveTask
	lastT    Time
	nextDone EventRef
}

type naiveTask struct {
	remaining float64
	done      func()
}

// NewNaiveProcShare mirrors NewProcShare.
func NewNaiveProcShare(eng *Engine, cores, speedPerCore float64) *NaiveProcShare {
	if cores <= 0 || speedPerCore <= 0 {
		panic("sim: NaiveProcShare needs positive cores and speed")
	}
	return &NaiveProcShare{eng: eng, cores: cores, speed: speedPerCore, lastT: eng.Now()}
}

func (p *NaiveProcShare) rate() float64 {
	m := float64(len(p.tasks))
	if m == 0 {
		return 0
	}
	if m <= p.cores {
		return p.speed
	}
	return p.speed * p.cores / m
}

// advance credits elapsed service to every task.
func (p *NaiveProcShare) advance() {
	now := p.eng.Now()
	dt := float64(now - p.lastT)
	p.lastT = now
	if dt <= 0 {
		return
	}
	served := dt * p.rate()
	for _, t := range p.tasks {
		t.remaining -= served
	}
}

// Submit mirrors ProcShare.Submit.
func (p *NaiveProcShare) Submit(work float64, done func()) {
	if work < 0 {
		panic("sim: negative work")
	}
	p.advance()
	p.tasks = append(p.tasks, &naiveTask{remaining: work, done: done})
	p.reschedule()
}

func (p *NaiveProcShare) reschedule() {
	p.nextDone.Cancel()
	p.nextDone = EventRef{}
	if len(p.tasks) == 0 {
		return
	}
	min := p.tasks[0].remaining
	for _, t := range p.tasks[1:] {
		if t.remaining < min {
			min = t.remaining
		}
	}
	if min < 0 {
		min = 0
	}
	p.nextDone = p.eng.After(min/p.rate(), p.complete)
}

func (p *NaiveProcShare) complete() {
	p.nextDone = EventRef{}
	p.advance()
	eps := 1e-9 * (1 + absf(p.servedScale()))
	var finished []*naiveTask
	var live []*naiveTask
	for _, t := range p.tasks {
		if t.remaining <= eps {
			finished = append(finished, t)
		} else {
			live = append(live, t)
		}
	}
	p.tasks = live
	p.reschedule()
	for _, t := range finished {
		if t.done != nil {
			t.done()
		}
	}
}

// servedScale estimates the magnitude of accumulated service for a relative
// epsilon, mirroring ProcShare's livelock guard.
func (p *NaiveProcShare) servedScale() float64 {
	return float64(p.eng.Now()) * p.speed
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Active reports in-flight tasks.
func (p *NaiveProcShare) Active() int { return len(p.tasks) }
