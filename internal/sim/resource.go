package sim

// Resource is a k-server FIFO resource: up to Capacity holders at once,
// excess acquirers wait in arrival order. It models thread pools, accept
// queues, disk queues and connection limits.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	// The waiting line is a growable FIFO ring: Acquire appends, Release
	// pops at head, and the slice is reset once drained, so steady-state
	// queueing reuses the backing array instead of allocating one waiter
	// record per queued acquire.
	waiters []func()
	head    int
	// MaxQueue, when > 0, bounds the waiting line; Acquire beyond it is
	// rejected immediately (models a full accept queue / backlog).
	MaxQueue int

	peakInUse int
	rejected  int64
}

// NewResource returns a resource with the given concurrent-holder capacity.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Acquire requests one unit. When a unit is free the callback runs
// immediately (synchronously); otherwise the caller queues. It returns true
// if the request was admitted (immediately or queued), false if it was
// rejected because the queue is full.
func (r *Resource) Acquire(fn func()) bool {
	if r.inUse < r.capacity {
		r.inUse++
		if r.inUse > r.peakInUse {
			r.peakInUse = r.inUse
		}
		fn()
		return true
	}
	if r.MaxQueue > 0 && len(r.waiters)-r.head >= r.MaxQueue {
		r.rejected++
		return false
	}
	r.waiters = append(r.waiters, fn)
	return true
}

// TryAcquire takes a unit only if one is free, without queueing.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity {
		r.inUse++
		if r.inUse > r.peakInUse {
			r.peakInUse = r.inUse
		}
		return true
	}
	return false
}

// Release returns one unit and hands it to the oldest waiter, if any.
// The waiter's callback runs synchronously.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	r.inUse--
	if r.head >= len(r.waiters) {
		return
	}
	fn := r.waiters[r.head]
	r.waiters[r.head] = nil // release the closure for GC
	r.head++
	if r.head == len(r.waiters) {
		// Drained: rewind so the backing array is reused from the start.
		r.waiters = r.waiters[:0]
		r.head = 0
	} else if r.head >= 64 && r.head*2 >= len(r.waiters) {
		// The dead prefix has caught up with the live region: compact to
		// the front (amortized O(1) per pop) so a never-drained queue's
		// backing array stays proportional to queue depth, not total
		// traffic.
		n := copy(r.waiters, r.waiters[r.head:])
		for i := n; i < len(r.waiters); i++ {
			r.waiters[i] = nil
		}
		r.waiters = r.waiters[:n]
		r.head = 0
	}
	r.inUse++
	fn()
}

// InUse reports the current number of holders.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// QueueLen reports the number of waiting acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) - r.head }

// PeakInUse reports the high-water mark of concurrent holders.
func (r *Resource) PeakInUse() int { return r.peakInUse }

// Rejected reports how many Acquire calls were refused by MaxQueue.
func (r *Resource) Rejected() int64 { return r.rejected }

// Utilization reports inUse/capacity at this instant.
func (r *Resource) Utilization() float64 {
	return float64(r.inUse) / float64(r.capacity)
}
