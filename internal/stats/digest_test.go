package stats

import (
	"math"
	"testing"

	"edisim/internal/rng"
)

func TestDigestEmpty(t *testing.T) {
	d := NewDigest()
	if d.N() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatalf("empty digest not zeroed: n=%d mean=%v min=%v max=%v", d.N(), d.Mean(), d.Min(), d.Max())
	}
	if q := d.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestDigestExactMoments(t *testing.T) {
	d := NewDigest()
	vals := []float64{0.001, 0.5, 0.25, 2.0, 0.125}
	var sum float64
	for _, v := range vals {
		d.Add(v)
		sum += v
	}
	if d.N() != int64(len(vals)) {
		t.Fatalf("N = %d, want %d", d.N(), len(vals))
	}
	if got, want := d.Mean(), sum/float64(len(vals)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if d.Min() != 0.001 || d.Max() != 2.0 {
		t.Fatalf("Min/Max = %v/%v, want 0.001/2", d.Min(), d.Max())
	}
}

// Quantiles must track a Sample (which keeps everything) to within the
// bucket resolution on a realistic latency-shaped distribution.
func TestDigestQuantileAccuracy(t *testing.T) {
	src := rng.New(42).Derive("digest")
	d := NewDigest()
	s := &Sample{}
	for i := 0; i < 200000; i++ {
		// Lognormal-ish latency: 5ms base with heavy multiplicative noise.
		v := 0.005 * math.Exp(src.Normal(0, 1))
		d.Add(v)
		s.Add(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := d.Quantile(q)
		want := s.Quantile(q)
		rel := math.Abs(got-want) / want
		if rel > 0.05 {
			t.Errorf("q=%v: digest %v vs exact %v (rel err %.3f > 0.05)", q, got, want, rel)
		}
	}
}

func TestDigestTailClamps(t *testing.T) {
	d := NewDigest()
	d.Add(0)          // below bottom bucket
	d.Add(1e-9)       // below bottom bucket
	d.Add(1e9)        // beyond top bucket
	d.Add(math.NaN()) // ignored
	if d.N() != 3 {
		t.Fatalf("N = %d, want 3 (NaN ignored)", d.N())
	}
	if d.Min() != 0 || d.Max() != 1e9 {
		t.Fatalf("Min/Max = %v/%v, want 0/1e9", d.Min(), d.Max())
	}
	// Quantiles stay clamped inside the observed range even for clamped
	// observations.
	if q := d.Quantile(1); q != 1e9 {
		t.Fatalf("Quantile(1) = %v, want 1e9", q)
	}
	if q := d.Quantile(0); q != 0 {
		t.Fatalf("Quantile(0) = %v, want 0", q)
	}
}

// A single observation is every quantile: the bucket midpoint would be an
// estimate, but the [Min, Max] clamp collapses it to the exact value.
func TestDigestSingleSample(t *testing.T) {
	d := NewDigest()
	d.Add(0.007)
	if d.N() != 1 || d.Mean() != 0.007 || d.Min() != 0.007 || d.Max() != 0.007 {
		t.Fatalf("single-sample moments wrong: n=%d mean=%v min=%v max=%v", d.N(), d.Mean(), d.Min(), d.Max())
	}
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 0.999, 1} {
		if got := d.Quantile(q); got != 0.007 {
			t.Errorf("Quantile(%v) = %v, want the lone sample 0.007", q, got)
		}
	}
}

// Values exactly at the bucket-range edges: digestMin itself belongs to the
// bottom bucket, anything beyond the covered range shares the top bucket —
// and a digest made only of clamped values still answers quantiles inside
// its exact observed [Min, Max].
func TestDigestBucketEdgeClamp(t *testing.T) {
	d := NewDigest()
	if i := bucketIndex(digestMin); i != 0 {
		t.Fatalf("bucketIndex(digestMin) = %d, want the bottom bucket 0", i)
	}
	if i := bucketIndex(digestMin * digestGamma * digestGamma); i <= 0 || i >= digestBuckets-1 {
		t.Fatalf("bucketIndex just above digestMin = %d, want an interior bucket", i)
	}
	if i := bucketIndex(1e12); i != digestBuckets-1 {
		t.Fatalf("bucketIndex(1e12) = %d, want the top bucket %d", i, digestBuckets-1)
	}
	// All observations clamp into the two edge buckets; quantiles must stay
	// inside the exact observed range, never at a bucket midpoint outside it.
	for i := 0; i < 10; i++ {
		d.Add(1e-8) // bottom bucket
		d.Add(1e7)  // top bucket
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := d.Quantile(q)
		if got < d.Min() || got > d.Max() {
			t.Errorf("Quantile(%v) = %v escaped the observed range [%v, %v]", q, got, d.Min(), d.Max())
		}
	}
	// Interior quantiles answer the bucket representative, not the exact
	// clamped observation: digestMin for the bottom bucket, the geometric
	// midpoint for the top — only q=0 and q=1 are exact at the tails.
	if got := d.Quantile(0.25); got != digestMin {
		t.Errorf("lower-half quantile %v, want the bottom bucket's representative %v", got, digestMin)
	}
	if got, want := d.Quantile(0.75), bucketMid(digestBuckets-1); got != want {
		t.Errorf("upper-half quantile %v, want the top bucket's representative %v", got, want)
	}
	if d.Quantile(0) != 1e-8 || d.Quantile(1) != 1e7 {
		t.Errorf("tail quantiles %v/%v, want the exact Min/Max 1e-8/1e7", d.Quantile(0), d.Quantile(1))
	}
}

func TestDigestMergeMatchesCombinedAdds(t *testing.T) {
	src := rng.New(7).Derive("merge")
	a, b, all := NewDigest(), NewDigest(), NewDigest()
	for i := 0; i < 5000; i++ {
		v := src.Exp(0.01)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		all.Add(v)
	}
	a.Merge(b)
	if a.N() != all.N() || math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Fatalf("merge: n=%d mean=%v, want n=%d mean=%v", a.N(), a.Mean(), all.N(), all.Mean())
	}
	for _, q := range []float64{0.5, 0.99} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("q=%v: merged %v != combined %v", q, got, want)
		}
	}
	a.Merge(nil) // no-op, must not panic
}

func TestDigestReset(t *testing.T) {
	d := NewDigest()
	for i := 0; i < 100; i++ {
		d.Add(float64(i) * 0.001)
	}
	d.Reset()
	if d.N() != 0 || d.Quantile(0.5) != 0 {
		t.Fatalf("reset digest not empty: n=%d", d.N())
	}
}

// The digest backs per-request latency tracking on the hot settle path, so
// Add must stay allocation-free.
func TestDigestAddSteadyStateNoAlloc(t *testing.T) {
	d := NewDigest()
	v := 0.003
	allocs := testing.AllocsPerRun(1000, func() {
		d.Add(v)
		v *= 1.0001
	})
	if allocs != 0 {
		t.Fatalf("Digest.Add allocates %v allocs/op, want 0", allocs)
	}
}
