// Package stats provides the measurement primitives used by the simulator:
// streaming summaries, histograms, percentiles, event-time series and
// time-weighted integrators (for utilization and power-over-time curves).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max using Welford's algorithm.
// The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds other into s, as if all of other's observations had been Added.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	d := other.mean - s.mean
	tot := n1 + n2
	s.mean += d * n2 / tot
	s.m2 += other.m2 + d*d*n1*n2/tot
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// N reports the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean reports the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var reports the sample variance (0 for fewer than two observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std reports the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// String renders "n=... mean=... std=... min=... max=...".
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Sample keeps every observation for exact percentiles. Use for delay
// distributions where the paper reports full histograms (Figs 10–11).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (p *Sample) Add(x float64) {
	p.xs = append(p.xs, x)
	p.sorted = false
}

// N reports the number of observations.
func (p *Sample) N() int { return len(p.xs) }

// Mean reports the arithmetic mean (0 when empty).
func (p *Sample) Mean() float64 {
	if len(p.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range p.xs {
		sum += x
	}
	return sum / float64(len(p.xs))
}

// Quantile reports the q-quantile (q in [0,1]) by linear interpolation.
// It returns 0 when empty.
func (p *Sample) Quantile(q float64) float64 {
	if len(p.xs) == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 1 {
		return p.xs[len(p.xs)-1]
	}
	pos := q * float64(len(p.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(p.xs) {
		return p.xs[len(p.xs)-1]
	}
	return p.xs[lo]*(1-frac) + p.xs[lo+1]*frac
}

// Values returns the (sorted) observations. The caller must not mutate them.
func (p *Sample) Values() []float64 {
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
	return p.xs
}

// Histogram counts observations into fixed-width bins over [lo,hi); values
// outside the range land in the under/overflow counters.
type Histogram struct {
	lo, width   float64
	bins        []int64
	under, over int64
	n           int64
}

// NewHistogram builds a histogram with nbins fixed-width bins spanning
// [lo,hi). It panics on a degenerate range.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram range")
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(nbins), bins: make([]int64, nbins)}
}

// Add records one observation. NaN observations are counted in the
// underflow bucket (they cannot be placed); ±Inf land in under/overflow.
func (h *Histogram) Add(x float64) {
	h.n++
	if math.IsNaN(x) || x < h.lo {
		h.under++
		return
	}
	i := int((x - h.lo) / h.width)
	if i >= len(h.bins) || i < 0 { // i<0 only for +Inf overflow artifacts
		h.over++
		return
	}
	h.bins[i]++
}

// N reports the total number of observations, including out-of-range ones.
func (h *Histogram) N() int64 { return h.n }

// Bin reports the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins reports the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinCenter reports the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Overflow reports the count of observations at or above the upper bound.
func (h *Histogram) Overflow() int64 { return h.over }

// Underflow reports the count of observations below the lower bound.
func (h *Histogram) Underflow() int64 { return h.under }

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.bins))
	copy(out, h.bins)
	return out
}
