package stats

import "testing"

func TestTimeSeriesAddAndAt(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(0, 1)
	ts.Add(1, 2)
	ts.Add(2, 3)
	if ts.Len() != 3 {
		t.Fatalf("len %d", ts.Len())
	}
	if ts.At(0.5) != 1 || ts.At(1) != 2 || ts.At(10) != 3 {
		t.Fatal("step interpolation wrong")
	}
	if ts.At(-1) != 0 {
		t.Fatal("value before first sample should be 0")
	}
	if ts.Max() != 3 {
		t.Fatalf("max %g", ts.Max())
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	ts := NewTimeSeries("x")
	ts.Add(2, 1)
	ts.Add(1, 1)
}

func TestTimeSeriesTimeWeightedMean(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(0, 10) // 10 for 1s
	ts.Add(1, 0)  // 0 for 3s
	ts.Add(4, 99) // terminal sample, no duration
	if got := ts.Mean(); !almost(got, 2.5, 1e-12) {
		t.Fatalf("time-weighted mean %g, want 2.5", got)
	}
}

func TestIntegratorPiecewise(t *testing.T) {
	in := NewIntegrator(0, 2) // value 2 from t=0
	in.Set(3, 5)              // 2*3=6 accumulated; value 5 from t=3
	in.Set(5, 0)              // +5*2=10 → 16
	if got := in.Total(10); !almost(got, 16, 1e-12) {
		t.Fatalf("integral %g, want 16", got)
	}
	if in.Value() != 0 {
		t.Fatalf("value %g, want 0", in.Value())
	}
}

func TestIntegratorBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Set did not panic")
		}
	}()
	in := NewIntegrator(5, 1)
	in.Set(4, 1)
}

func TestIntegratorTotalAtCurrentTime(t *testing.T) {
	in := NewIntegrator(0, 3)
	if got := in.Total(2); !almost(got, 6, 1e-12) {
		t.Fatalf("total %g, want 6", got)
	}
}
