package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 || !almost(s.Mean(), 3, 1e-12) {
		t.Fatalf("n=%d mean=%g", s.N(), s.Mean())
	}
	if !almost(s.Var(), 2.5, 1e-12) {
		t.Fatalf("var=%g, want 2.5", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min=%g max=%g", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var s1, s2, whole Summary
		for _, x := range a {
			if math.IsNaN(x) || math.Abs(x) > 1e12 {
				return true // avoid float overflow artifacts; not what Summary is for
			}
			s1.Add(x)
			whole.Add(x)
		}
		for _, x := range b {
			if math.IsNaN(x) || math.Abs(x) > 1e12 {
				return true
			}
			s2.Add(x)
			whole.Add(x)
		}
		s1.Merge(s2)
		tol := 1e-9 * (1 + math.Abs(whole.Mean()))
		return s1.N() == whole.N() && almost(s1.Mean(), whole.Mean(), tol) &&
			almost(s1.Min(), whole.Min(), 0) && almost(s1.Max(), whole.Max(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var p Sample
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	if !almost(p.Quantile(0), 1, 0) || !almost(p.Quantile(1), 100, 0) {
		t.Fatal("extreme quantiles wrong")
	}
	if q := p.Quantile(0.5); !almost(q, 50.5, 1e-9) {
		t.Fatalf("median %g, want 50.5", q)
	}
	if !almost(p.Mean(), 50.5, 1e-9) {
		t.Fatalf("mean %g, want 50.5", p.Mean())
	}
}

func TestSampleQuantileMonotonic(t *testing.T) {
	f := func(xs []float64, qa, qb float64) bool {
		var p Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			p.Add(x)
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		lo, hi := math.Min(qa, qb), math.Max(qa, qb)
		return p.Quantile(lo) <= p.Quantile(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(-1)  // underflow
	h.Add(0)   // bin 0
	h.Add(9.9) // bin 9
	h.Add(10)  // overflow
	h.Add(5)   // bin 5
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatalf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
	if h.Bin(0) != 1 || h.Bin(9) != 1 || h.Bin(5) != 1 {
		t.Fatalf("bins %v", h.Counts())
	}
	if h.N() != 5 {
		t.Fatalf("n=%d, want 5", h.N())
	}
	if !almost(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("bin center %g", h.BinCenter(0))
	}
}

func TestHistogramCountConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-5, 5, 7)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		var sum int64
		for _, c := range h.Counts() {
			sum += c
		}
		return sum+h.Underflow()+h.Overflow() == int64(n) && h.N() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}
