package stats

import "math"

// Digest is a bounded-memory streaming quantile estimator for latency-like
// positive values: observations land in logarithmically spaced buckets of
// ~4% relative width, so p50/p99/p999 queries carry at most ~2% relative
// error while the whole structure stays a fixed ~5 KB regardless of how
// many observations it absorbs. Open-loop runs that settle millions of
// requests use it in place of Sample (which retains every observation).
//
// The bucket geometry is fixed (digestMin × digestGamma^i, covering about
// 1 µs to 10⁴ s), so any two Digests merge bucket-for-bucket. Count, sum,
// min and max are tracked exactly: Mean, Min and Max are not estimates.
// The zero value is NOT ready to use; call NewDigest (the bucket array is
// embedded, so one allocation covers the whole lifetime).
type Digest struct {
	n        int64
	sum      float64
	min, max float64
	buckets  [digestBuckets]int64
}

const (
	// digestMin is the lower edge of bucket 1; everything at or below it
	// (including zero) lands in bucket 0.
	digestMin = 1e-6
	// digestGamma is the bucket width ratio: bucket i spans
	// [digestMin·γ^(i−1), digestMin·γ^i).
	digestGamma = 1.04
	// digestBuckets covers digestMin·γ^599 ≈ 1.6×10⁴ seconds.
	digestBuckets = 600
)

var digestLnGamma = math.Log(digestGamma)

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{} }

// Add records one observation. Values at or below digestMin clamp into the
// bottom bucket, values beyond the covered range into the top one (Min/Max
// still record them exactly). NaN observations are ignored: they cannot be
// ordered, and poisoning every quantile silently is worse than dropping
// them.
func (d *Digest) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if d.n == 0 {
		d.min, d.max = v, v
	} else {
		if v < d.min {
			d.min = v
		}
		if v > d.max {
			d.max = v
		}
	}
	d.n++
	d.sum += v
	d.buckets[bucketIndex(v)]++
}

// bucketIndex maps a value to its bucket, clamping both tails.
func bucketIndex(v float64) int {
	if v <= digestMin {
		return 0
	}
	i := 1 + int(math.Log(v/digestMin)/digestLnGamma)
	if i >= digestBuckets {
		return digestBuckets - 1
	}
	return i
}

// bucketMid is the representative value of bucket i (geometric midpoint).
func bucketMid(i int) float64 {
	if i == 0 {
		return digestMin
	}
	return digestMin * math.Exp((float64(i)-0.5)*digestLnGamma)
}

// N reports the number of observations.
func (d *Digest) N() int64 { return d.n }

// Mean reports the exact arithmetic mean (0 when empty).
func (d *Digest) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min reports the smallest observation (0 when empty).
func (d *Digest) Min() float64 {
	if d.n == 0 {
		return 0
	}
	return d.min
}

// Max reports the largest observation (0 when empty).
func (d *Digest) Max() float64 {
	if d.n == 0 {
		return 0
	}
	return d.max
}

// Quantile reports the q-quantile (q in [0,1]) to within the bucket
// resolution, clamped to the exact observed [Min, Max]. It returns 0 when
// empty.
func (d *Digest) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	rank := int64(q*float64(d.n-1)) + 1
	var cum int64
	for i := range d.buckets {
		cum += d.buckets[i]
		if cum >= rank {
			v := bucketMid(i)
			if v < d.min {
				v = d.min
			}
			if v > d.max {
				v = d.max
			}
			return v
		}
	}
	return d.max
}

// Merge folds other into d, as if all of other's observations had been
// Added. The geometry is fixed, so the merge is exact bucket addition.
func (d *Digest) Merge(other *Digest) {
	if other == nil || other.n == 0 {
		return
	}
	if d.n == 0 {
		d.min, d.max = other.min, other.max
	} else {
		if other.min < d.min {
			d.min = other.min
		}
		if other.max > d.max {
			d.max = other.max
		}
	}
	d.n += other.n
	d.sum += other.sum
	for i := range d.buckets {
		d.buckets[i] += other.buckets[i]
	}
}

// Reset empties the digest in place (no allocation) — the windowed-quantile
// idiom: one digest per evaluation window, Reset at each boundary.
func (d *Digest) Reset() { *d = Digest{} }
