package stats

import "fmt"

// Point is one (time, value) sample of a time series.
type Point struct {
	T float64 // simulation time, seconds
	V float64
}

// TimeSeries records (time, value) samples, e.g. cluster power or CPU
// utilization over a job's lifetime (Figures 12–17).
type TimeSeries struct {
	Name   string
	points []Point
}

// NewTimeSeries returns an empty named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Add appends a sample. Samples must be added in non-decreasing time order;
// out-of-order samples panic to surface simulator bugs immediately.
func (ts *TimeSeries) Add(t, v float64) {
	if n := len(ts.points); n > 0 && t < ts.points[n-1].T {
		panic(fmt.Sprintf("stats: out-of-order sample on %q: %g after %g", ts.Name, t, ts.points[n-1].T))
	}
	ts.points = append(ts.points, Point{T: t, V: v})
}

// Len reports the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// Points returns the underlying samples. The caller must not mutate them.
func (ts *TimeSeries) Points() []Point { return ts.points }

// At returns the value of the most recent sample at or before t
// (step interpolation); zero before the first sample.
func (ts *TimeSeries) At(t float64) float64 {
	v := 0.0
	for _, p := range ts.points {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// Max reports the largest sampled value (0 when empty).
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for i, p := range ts.points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Mean reports the time-weighted mean value over the sampled span, treating
// the series as a step function. Empty or single-sample series return the
// last value.
func (ts *TimeSeries) Mean() float64 {
	n := len(ts.points)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return ts.points[0].V
	}
	var area, span float64
	for i := 1; i < n; i++ {
		dt := ts.points[i].T - ts.points[i-1].T
		area += ts.points[i-1].V * dt
		span += dt
	}
	if span == 0 {
		return ts.points[n-1].V
	}
	return area / span
}

// Integrator accumulates the time integral of a step function, e.g. busy-core
// seconds or joules. Changes are applied with Set; Total(t) closes the
// current segment at time t.
type Integrator struct {
	lastT   float64
	current float64
	area    float64
	started bool
}

// NewIntegrator returns an integrator starting at time t0 with value v0.
func NewIntegrator(t0, v0 float64) *Integrator {
	return &Integrator{lastT: t0, current: v0, started: true}
}

// Set updates the integrand value at time t, accumulating the area of the
// segment that just ended. Time must not go backwards.
func (in *Integrator) Set(t, v float64) {
	if !in.started {
		in.lastT, in.current, in.started = t, v, true
		return
	}
	if t < in.lastT {
		panic(fmt.Sprintf("stats: integrator time went backwards: %g < %g", t, in.lastT))
	}
	in.area += in.current * (t - in.lastT)
	in.lastT = t
	in.current = v
}

// Value reports the current integrand value.
func (in *Integrator) Value() float64 { return in.current }

// Total reports the accumulated integral up to time t (which must be at or
// after the last Set).
func (in *Integrator) Total(t float64) float64 {
	if !in.started {
		return 0
	}
	if t < in.lastT {
		panic(fmt.Sprintf("stats: integrator total before last set: %g < %g", t, in.lastT))
	}
	return in.area + in.current*(t-in.lastT)
}
