package hw

import (
	"math"
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSpecsMatchPaperTable3(t *testing.T) {
	e := EdisonSpec().Power
	if !almost(float64(e.IdleDraw()), 1.40, 1e-9) || !almost(float64(e.BusyDraw()), 1.68, 1e-9) {
		t.Fatalf("Edison with adapter: idle %v busy %v, want 1.40/1.68", e.IdleDraw(), e.BusyDraw())
	}
	bare := PowerSpec{Idle: e.Idle, Busy: e.Busy}
	if !almost(float64(bare.IdleDraw()), 0.36, 1e-9) || !almost(float64(bare.BusyDraw()), 0.75, 1e-9) {
		t.Fatalf("bare Edison: idle %v busy %v, want 0.36/0.75", bare.IdleDraw(), bare.BusyDraw())
	}
	// Cluster of 35: 49.0 W idle, 58.8 W busy.
	if !almost(35*float64(e.IdleDraw()), 49.0, 1e-6) || !almost(35*float64(e.BusyDraw()), 58.8, 1e-6) {
		t.Fatal("35-node cluster power does not match Table 3")
	}
	d := DellR620Spec().Power
	if d.IdleDraw() != 52 || d.BusyDraw() != 109 {
		t.Fatalf("Dell: idle %v busy %v, want 52/109", d.IdleDraw(), d.BusyDraw())
	}
}

func TestPowerDrawClampsUtilization(t *testing.T) {
	p := DellR620Spec().Power
	if p.Draw(-1) != p.Draw(0) || p.Draw(2) != p.Draw(1) {
		t.Fatal("Draw does not clamp utilization")
	}
	mid := p.Draw(0.5)
	if !almost(float64(mid), (52+109)/2.0, 1e-9) {
		t.Fatalf("Draw(0.5)=%v", mid)
	}
}

func TestEstimateReplacementMatchesTable2(t *testing.T) {
	r := EstimateReplacement(EdisonSpec(), DellR620Spec())
	if r.ByCPU != 12 {
		t.Errorf("CPU replacement %d, want 12", r.ByCPU)
	}
	if r.ByRAM != 16 {
		t.Errorf("RAM replacement %d, want 16", r.ByRAM)
	}
	if r.ByNIC != 10 {
		t.Errorf("NIC replacement %d, want 10", r.ByNIC)
	}
	if r.Required != 16 {
		t.Errorf("required %d, want 16", r.Required)
	}
}

func TestCPUGapMatchesSection41(t *testing.T) {
	e, d := EdisonSpec().CPU, DellR620Spec().CPU
	perCore := float64(d.DMIPS) / float64(e.DMIPS)
	if perCore < 15 || perCore > 19 {
		t.Fatalf("per-core gap %.1f, want 15-18x (§4.1)", perCore)
	}
	whole := float64(d.TotalDMIPS()) / float64(e.TotalDMIPS())
	if whole < 90 || whole > 110 {
		t.Fatalf("whole-node gap %.1f, want 90-108x (§4.1)", whole)
	}
}

func TestNodeComputeTiming(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, EdisonSpec(), "e0")
	var doneAt sim.Time
	// One second of single-core Edison work.
	n.ComputeSeconds(1.0, func() { doneAt = eng.Now() })
	eng.Run()
	if !almost(float64(doneAt), 1.0, 1e-9) {
		t.Fatalf("compute finished at %v, want 1.0", doneAt)
	}
}

func TestNodeCrossPlatformSpeedRatio(t *testing.T) {
	eng := sim.NewEngine()
	ed := NewNode(eng, EdisonSpec(), "e0")
	dl := NewNode(eng, DellR620Spec(), "d0")
	const work = 11383.0 // one Dell-core-second of DMIPS-seconds
	var edDone, dlDone sim.Time
	ed.Compute(work, func() { edDone = eng.Now() })
	dl.Compute(work, func() { dlDone = eng.Now() })
	eng.Run()
	ratio := float64(edDone) / float64(dlDone)
	if ratio < 15 || ratio > 19 {
		t.Fatalf("same work ratio %.1f, want ≈18 (per-core gap)", ratio)
	}
}

func TestNodeEnergyIdleVsBusy(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, DellR620Spec(), "d0")
	eng.RunUntil(10) // 10 idle seconds
	idle := float64(n.Energy())
	if !almost(idle, 520, 1e-6) {
		t.Fatalf("idle energy %g J, want 520", idle)
	}
	// Saturate all effective cores for ~10s of single-core work each.
	cores := int(n.Spec.CPU.EffectiveCores())
	for i := 0; i < cores; i++ {
		n.ComputeSeconds(10, nil)
	}
	eng.Run()
	total := float64(n.Energy())
	busyPortion := total - idle
	if !almost(busyPortion, 1090, 60) { // ≈109 W × 10 s (HT rounding tolerance)
		t.Fatalf("busy energy %g J, want ≈1090", busyPortion)
	}
}

func TestNodeMemAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, EdisonSpec(), "e0")
	if err := n.AllocMem(900 * units.MB); err != nil {
		t.Fatalf("alloc within capacity failed: %v", err)
	}
	if err := n.AllocMem(200 * units.MB); err == nil {
		t.Fatal("over-capacity alloc succeeded")
	}
	n.FreeMem(900 * units.MB)
	if n.MemUsed() != 0 {
		t.Fatalf("mem used %v after free", n.MemUsed())
	}
}

func TestNodeFreeTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-free did not panic")
		}
	}()
	eng := sim.NewEngine()
	n := NewNode(eng, EdisonSpec(), "e0")
	n.FreeMem(1)
}

func TestBusyFloorRaisesPower(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, EdisonSpec(), "e0")
	base := float64(n.Power())
	n.SetBusyFloor(0.5)
	if float64(n.Power()) <= base {
		t.Fatal("busy floor did not raise power")
	}
}

func TestDiskTiming(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, EdisonSpec().Disk)
	var doneAt sim.Time
	// Direct write of 4.5 MB at 4.5 MB/s + 18 ms latency ≈ 1.018 s.
	d.Write(units.Bytes(4.5*float64(units.MB)), false, func() { doneAt = eng.Now() })
	eng.Run()
	if !almost(float64(doneAt), 1.018, 1e-3) {
		t.Fatalf("write finished at %v, want ≈1.018", doneAt)
	}
}

func TestDiskFIFOOrdering(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, DellR620Spec().Disk)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		d.Read(10*units.MB, false, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("disk completion order %v", order)
		}
	}
	if d.Ops() != 3 || d.BytesRead() != 30*units.MB {
		t.Fatalf("ops=%d read=%v", d.Ops(), d.BytesRead())
	}
}

func TestDiskBufferedFasterThanDirect(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDisk(eng, EdisonSpec().Disk)
	var directAt, bufAt sim.Time
	d.Write(units.MB, false, func() { directAt = eng.Now() })
	eng.Run()
	eng2 := sim.NewEngine()
	d2 := NewDisk(eng2, EdisonSpec().Disk)
	d2.Write(units.MB, true, func() { bufAt = eng2.Now() })
	eng2.Run()
	if bufAt >= directAt {
		t.Fatalf("buffered write (%v) not faster than direct (%v)", bufAt, directAt)
	}
}

func TestSubscribeUtilCancelSafety(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, EdisonSpec(), "n")

	var aCount, bCount int
	cancelA := n.SubscribeUtil(func(float64) { aCount++ })
	cancelA()
	cancelA() // double cancel: no-op

	// B reuses A's compacted slot; a stale cancelA must not touch it.
	cancelB := n.SubscribeUtil(func(float64) { bCount++ })
	cancelA()
	n.ComputeSeconds(0.1, nil)
	eng.Run()
	if bCount == 0 {
		t.Fatal("stale cancel silenced a later subscriber")
	}
	if aCount != 0 {
		t.Fatal("cancelled subscriber still notified")
	}

	// Stale cancel with an out-of-range captured index must not panic.
	c1 := n.SubscribeUtil(func(float64) {})
	cancelB()
	c1() // count hits 0, list compacts, generation bumps
	c2 := n.SubscribeUtil(func(float64) {})
	c1() // stale: index 1 of a len-1 list — must be a no-op, not a panic
	n.ComputeSeconds(0.1, nil)
	eng.Run()
	c2()
}
