package hw

import (
	"edisim/internal/sim"
	"edisim/internal/units"
)

// Disk is a FIFO storage device: one operation in service at a time, the
// rest queued, with per-operation latency plus size/throughput service time
// taken from the platform's measured DiskSpec (Table 5).
type Disk struct {
	eng  *sim.Engine
	spec DiskSpec
	q    *sim.Resource

	// down black-holes new operations (node crash); gen invalidates the
	// completion events of operations in flight at kill time; rate scales
	// service times for straggler injection (0 = never set = nominal).
	down bool
	gen  uint64
	rate float64

	readBytes, writeBytes units.Bytes
	ops                   int64
}

// NewDisk returns an idle disk with the given measured characteristics.
func NewDisk(eng *sim.Engine, spec DiskSpec) *Disk {
	return &Disk{eng: eng, spec: spec, q: sim.NewResource(eng, 1)}
}

// Read schedules a read of size bytes; buffered reads hit the page cache
// rate, direct reads the device rate. done runs when the data is available.
func (d *Disk) Read(size units.Bytes, buffered bool, done func()) {
	rate := d.spec.Read
	lat := d.spec.ReadLatency
	if buffered {
		rate = d.spec.BufRead
		lat = 0 // page-cache hit: no device latency
	}
	d.readBytes += size
	d.submit(lat+rate.Seconds(size), done)
}

// Write schedules a write of size bytes; buffered writes return at the
// page-cache rate, direct (dsync) writes at the committed-to-device rate.
func (d *Disk) Write(size units.Bytes, buffered bool, done func()) {
	rate := d.spec.Write
	lat := d.spec.WriteLatency
	if buffered {
		rate = d.spec.BufWrite
		lat = d.spec.WriteLatency / 4 // amortized by write-back
	}
	d.writeBytes += size
	d.submit(lat+rate.Seconds(size), done)
}

func (d *Disk) submit(service float64, done func()) {
	if d.down {
		return // black hole: the device is dead, done never runs
	}
	if d.rate > 0 && d.rate != 1 {
		service /= d.rate
	}
	d.ops++
	gen := d.gen
	d.q.Acquire(func() {
		d.eng.After(service, func() {
			if gen != d.gen {
				return // killed while in service
			}
			d.q.Release()
			if done != nil {
				done()
			}
		})
	})
}

// killAll drops every queued and in-service operation without running its
// done callback — the disk side of a node crash. The FIFO is replaced
// wholesale; stale completion events detect the generation bump and expire.
func (d *Disk) killAll() {
	d.down = true
	d.gen++
	d.q = sim.NewResource(d.eng, 1)
}

// restore re-opens a killed disk for new operations (reboot: the device is
// empty, any data-level consequences are the storage layer's to model).
func (d *Disk) restore() { d.down = false }

// setRateFactor rescales service times to nominal/factor (straggler
// injection). The caller (hw.Node.SetSlowFactor) validates the factor.
func (d *Disk) setRateFactor(factor float64) { d.rate = factor }

// QueueLen reports queued (not yet in service) operations.
func (d *Disk) QueueLen() int { return d.q.QueueLen() }

// Ops reports the total number of operations submitted.
func (d *Disk) Ops() int64 { return d.ops }

// BytesRead reports cumulative read volume.
func (d *Disk) BytesRead() units.Bytes { return d.readBytes }

// BytesWritten reports cumulative write volume.
func (d *Disk) BytesWritten() units.Bytes { return d.writeBytes }
