package hw

import (
	"edisim/internal/sim"
	"edisim/internal/units"
)

// Disk is a FIFO storage device: one operation in service at a time, the
// rest queued, with per-operation latency plus size/throughput service time
// taken from the platform's measured DiskSpec (Table 5).
type Disk struct {
	eng  *sim.Engine
	spec DiskSpec
	q    *sim.Resource

	readBytes, writeBytes units.Bytes
	ops                   int64
}

// NewDisk returns an idle disk with the given measured characteristics.
func NewDisk(eng *sim.Engine, spec DiskSpec) *Disk {
	return &Disk{eng: eng, spec: spec, q: sim.NewResource(eng, 1)}
}

// Read schedules a read of size bytes; buffered reads hit the page cache
// rate, direct reads the device rate. done runs when the data is available.
func (d *Disk) Read(size units.Bytes, buffered bool, done func()) {
	rate := d.spec.Read
	lat := d.spec.ReadLatency
	if buffered {
		rate = d.spec.BufRead
		lat = 0 // page-cache hit: no device latency
	}
	d.readBytes += size
	d.submit(lat+rate.Seconds(size), done)
}

// Write schedules a write of size bytes; buffered writes return at the
// page-cache rate, direct (dsync) writes at the committed-to-device rate.
func (d *Disk) Write(size units.Bytes, buffered bool, done func()) {
	rate := d.spec.Write
	lat := d.spec.WriteLatency
	if buffered {
		rate = d.spec.BufWrite
		lat = d.spec.WriteLatency / 4 // amortized by write-back
	}
	d.writeBytes += size
	d.submit(lat+rate.Seconds(size), done)
}

func (d *Disk) submit(service float64, done func()) {
	d.ops++
	d.q.Acquire(func() {
		d.eng.After(service, func() {
			d.q.Release()
			if done != nil {
				done()
			}
		})
	})
}

// QueueLen reports queued (not yet in service) operations.
func (d *Disk) QueueLen() int { return d.q.QueueLen() }

// Ops reports the total number of operations submitted.
func (d *Disk) Ops() int64 { return d.ops }

// BytesRead reports cumulative read volume.
func (d *Disk) BytesRead() units.Bytes { return d.readBytes }

// BytesWritten reports cumulative write volume.
func (d *Disk) BytesWritten() units.Bytes { return d.writeBytes }
