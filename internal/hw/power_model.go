package hw

import (
	"fmt"

	"edisim/internal/units"
)

// PowerModel maps CPU utilization to instantaneous node draw. The paper's
// calibrated linear model (PowerSpec, Table 3) is the default everywhere; a
// TDPCurve built from the platform's EnergyProfile is the production-shaped
// alternative. Models must be pure functions of utilization — nodes call
// Draw on every utilization change, inside the event hot path, so
// implementations must not allocate.
type PowerModel interface {
	// Draw reports instantaneous power at CPU utilization in [0,1]
	// (out-of-range inputs are clamped).
	Draw(util float64) units.Watts
	// IdleDraw is Draw(0); BusyDraw is Draw(1).
	IdleDraw() units.Watts
	BusyDraw() units.Watts
}

// The linear Table 3 model is itself a PowerModel.
var _ PowerModel = PowerSpec{}
var _ PowerModel = TDPCurve{}

// PowerModelKind names a PowerModel choice in configs, CLIs and the public
// Scenario API. The zero value is the paper-calibrated linear model, so a
// zero-knob config is byte-identical to the seed behavior.
type PowerModelKind string

const (
	// PowerLinear is the paper's calibrated two-point linear model (default).
	PowerLinear PowerModelKind = ""
	// PowerTDPCurve is the component-level model: piecewise TDP
	// interpolation plus memory, disk, board and PSU draws.
	PowerTDPCurve PowerModelKind = "tdp-curve"
)

// ParsePowerModelKind resolves a user-supplied model name. The empty string
// and "linear" select the default linear model.
func ParsePowerModelKind(s string) (PowerModelKind, error) {
	switch s {
	case "", "linear", "paper":
		return PowerLinear, nil
	case "tdp-curve", "tdp", "curve":
		return PowerTDPCurve, nil
	}
	return PowerLinear, fmt.Errorf("hw: unknown power model %q (want linear or tdp-curve)", s)
}

// EnergyProfile is a platform's component-level energy and carbon data: the
// published CPU TDP and per-component draws that parameterize the TDPCurve
// model, and the embodied-carbon figures the carbon layer amortizes over the
// service life. Catalog provenance is documented in PLATFORMS.md.
type EnergyProfile struct {
	// TDPWatts is the CPU package's published thermal design power.
	TDPWatts float64
	// MemWattsPerGB is DRAM draw per GB (≈0.38 W/GB for server DDR).
	MemWattsPerGB float64
	// Disks and DiskWatts: number of storage devices and draw per device
	// (≈3 W SSD, ≈7.5 W HDD, ≈0.1 W for an SD card).
	Disks     int
	DiskWatts float64
	// FixedWatts is everything utilization-independent outside CPU, memory
	// and disk: fans, baseboard, NICs or USB Ethernet adapters.
	FixedWatts float64
	// PSUOverhead is the wall-side loss fraction (0.10 = 90%-efficient PSU).
	PSUOverhead float64

	// EmbodiedKgCO2e is the manufacturing footprint of one server;
	// ServiceLifeYears is the amortization window.
	EmbodiedKgCO2e   float64
	ServiceLifeYears float64
}

// Modeled reports whether the profile carries enough data for a TDPCurve
// (ad-hoc specs without catalog data fall back to the linear model).
func (e EnergyProfile) Modeled() bool { return e.TDPWatts > 0 }

// TDP-fraction anchors: the Boavizta/cloud-carbon mapping of CPU load to
// fractions of TDP (SNIPPETS Snippet 1). 100% load exceeds TDP because real
// workloads with turbo headroom do.
const (
	tdpFracIdle = 0.12 // 0% CPU
	tdpFracLow  = 0.32 // 10% CPU
	tdpFracMid  = 0.75 // 50% CPU
	tdpFracBusy = 1.02 // 100% CPU
)

// TDPCurve is the component-level power model: CPU draw interpolated
// piecewise-linearly through the published-TDP anchors
// (0%→12%, 10%→32%, 50%→75%, 100%→102% of TDP), plus constant memory, disk
// and board draws, all scaled by the PSU loss. Draw is monotone
// non-decreasing and continuous in utilization, and allocation-free.
type TDPCurve struct {
	// TDP is the CPU package TDP in watts.
	TDP float64
	// Components is the utilization-independent draw (memory + disks +
	// fixed board draw) in watts, before PSU overhead.
	Components float64
	// PSU is the wall-side multiplier (1 + loss fraction), >= 1.
	PSU float64
}

// NewTDPCurve builds the curve for an energy profile and a memory capacity.
func NewTDPCurve(e EnergyProfile, mem units.Bytes) TDPCurve {
	psu := 1 + e.PSUOverhead
	if psu < 1 {
		psu = 1
	}
	return TDPCurve{
		TDP:        e.TDPWatts,
		Components: e.MemWattsPerGB*float64(mem)/float64(units.GB) + float64(e.Disks)*e.DiskWatts + e.FixedWatts,
		PSU:        psu,
	}
}

// Draw reports instantaneous wall power at the given CPU utilization.
func (c TDPCurve) Draw(util float64) units.Watts {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	var frac float64
	switch {
	case util <= 0.10:
		frac = tdpFracIdle + util/0.10*(tdpFracLow-tdpFracIdle)
	case util <= 0.50:
		frac = tdpFracLow + (util-0.10)/0.40*(tdpFracMid-tdpFracLow)
	default:
		frac = tdpFracMid + (util-0.50)/0.50*(tdpFracBusy-tdpFracMid)
	}
	return units.Watts((c.TDP*frac + c.Components) * c.PSU)
}

// IdleDraw reports wall power at zero utilization.
func (c TDPCurve) IdleDraw() units.Watts { return c.Draw(0) }

// BusyDraw reports wall power at full utilization.
func (c TDPCurve) BusyDraw() units.Watts { return c.Draw(1) }

// PowerModelFor resolves the platform's model of the given kind. The TDP
// curve requires catalog energy data; platforms without it (ad-hoc custom
// specs) keep the calibrated linear model for any kind.
func (p *Platform) PowerModelFor(kind PowerModelKind) PowerModel {
	if kind == PowerTDPCurve && p.Energy.Modeled() {
		return NewTDPCurve(p.Energy, p.Spec.Mem.Capacity)
	}
	return p.Spec.Power
}
