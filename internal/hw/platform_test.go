package hw

import (
	"strings"
	"testing"
)

// catalogWorkloads is the workload set every platform must calibrate (the
// six §5.2 jobs; internal/jobs.Names mirrors this list).
var catalogWorkloads = []string{"wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"}

// TestCatalogInvariants checks every registered platform: unique names and
// aliases, positive costs and capacities, a complete per-workload Hadoop
// calibration, sane web costs, and a well-formed network profile.
func TestCatalogInvariants(t *testing.T) {
	seen := map[string]string{} // lookup key -> owner platform
	claim := func(p *Platform, key string) {
		k := strings.ToLower(key)
		if owner, dup := seen[k]; dup {
			t.Errorf("%s: lookup key %q already taken by %s", p.Name, key, owner)
		}
		seen[k] = p.Name
	}

	if len(Platforms()) < 4 {
		t.Fatalf("catalog has %d platforms, want >= 4", len(Platforms()))
	}
	for _, p := range Platforms() {
		claim(p, p.Name)
		for _, a := range p.Aliases {
			claim(p, a)
		}
		if p.Label == "" || p.FullName == "" {
			t.Errorf("%s: missing display names", p.Name)
		}
		if p.Spec.Name != p.Name {
			t.Errorf("%s: spec name %q does not match", p.Name, p.Spec.Name)
		}

		// Economics and power.
		if p.UnitCost <= 0 {
			t.Errorf("%s: non-positive unit cost", p.Name)
		}
		if p.Spec.Power.BusyDraw() <= p.Spec.Power.IdleDraw() {
			t.Errorf("%s: busy draw not above idle", p.Name)
		}
		if p.MeterName == "" {
			t.Errorf("%s: no meter name", p.Name)
		}

		// Hardware capacities.
		if p.Spec.CPU.Cores <= 0 || p.Spec.CPU.DMIPS <= 0 || p.Spec.Mem.Capacity <= 0 ||
			p.Spec.Disk.Write <= 0 || p.Spec.NIC.TCPGoodput <= 0 {
			t.Errorf("%s: non-positive hardware capacity", p.Name)
		}

		// Network profile.
		n := p.Net
		if n.SwitchName == "" || n.CoreUplink <= 0 || !strings.Contains(n.HostFormat, "%") {
			t.Errorf("%s: malformed network profile %+v", p.Name, n)
		}
		if n.LeafFanout > 0 && (n.LeafPrefix == "" || n.LeafUplink <= 0) {
			t.Errorf("%s: leaf tier without prefix/uplink", p.Name)
		}
		if n.LeafFanout < 0 || n.AccessDelay < 0 || n.CoreDelay < 0 {
			t.Errorf("%s: negative network parameter", p.Name)
		}

		// Web calibration.
		w := p.Web
		for name, v := range map[string]float64{
			"BaseCPU": w.BaseCPU, "ReplyCPU": w.ReplyCPU, "CacheClientCPU": w.CacheClientCPU,
			"PerKBCPU": w.PerKBCPU, "CacheGetCPU": w.CacheGetCPU, "DBQueryCPU": w.DBQueryCPU,
			"ConnRate": w.ConnRate, "ReqRate": w.ReqRate, "MaxInflight": float64(w.MaxInflight),
		} {
			if v <= 0 {
				t.Errorf("%s: web cost %s not positive", p.Name, name)
			}
		}

		// Hadoop calibration: present and positive for every workload.
		h := p.Hadoop
		if h.BlockSize <= 0 || h.Replicas <= 0 || h.VCores <= 0 || h.NodeMemoryMB <= 0 ||
			h.SmallMapMemoryMB <= 0 || h.LargeMapMemoryMB <= 0 || h.ReduceMemoryMB <= 0 ||
			h.AMMemoryMB <= 0 || h.CombineSplit <= 0 || h.ContainerStartup <= 0 ||
			h.DaemonMem <= 0 || h.FullScaleTasks <= 0 || h.PiSamplesPerSec <= 0 {
			t.Errorf("%s: incomplete Hadoop profile", p.Name)
		}
		for _, job := range catalogWorkloads {
			jc, ok := h.Jobs[job]
			if !ok {
				t.Errorf("%s: no Hadoop calibration for %q", p.Name, job)
				continue
			}
			if jc.ReduceMBps <= 0 || jc.TaskOverheadSeconds <= 0 {
				t.Errorf("%s/%s: non-positive rates %+v", p.Name, job, jc)
			}
			// pi is the only fixed-work map job (rate comes from
			// PiSamplesPerSec); every other workload needs a map rate.
			if job != "pi" && jc.MapMBps <= 0 {
				t.Errorf("%s/%s: no map rate", p.Name, job)
			}
		}
		if len(h.Jobs) != len(catalogWorkloads) {
			t.Errorf("%s: %d calibrated jobs, want %d", p.Name, len(h.Jobs), len(catalogWorkloads))
		}

		// Master platform, when named, must resolve and be able to host
		// the daemons the platform itself cannot.
		if h.MasterPlatform != "" {
			if _, ok := LookupPlatform(h.MasterPlatform); !ok {
				t.Errorf("%s: unknown master platform %q", p.Name, h.MasterPlatform)
			}
		}

		// Fleet sizes for the cross-platform matrices.
		if p.Fleet.Web <= 0 || p.Fleet.Cache <= 0 || p.Fleet.Slaves <= 0 {
			t.Errorf("%s: incomplete fleet %+v", p.Name, p.Fleet)
		}
	}
}

func TestLookupPlatform(t *testing.T) {
	micro, brawny := BaselinePair()
	if micro == brawny {
		t.Fatal("baseline pair is one platform")
	}
	if !micro.Micro || brawny.Micro {
		t.Fatal("baseline pair sides swapped")
	}
	// Every name and alias resolves, case-insensitively.
	for _, p := range Platforms() {
		for _, key := range append([]string{p.Name, strings.ToUpper(p.Name)}, p.Aliases...) {
			got, ok := LookupPlatform(key)
			if !ok || got != p {
				t.Errorf("lookup %q: got %v, want %s", key, got, p.Name)
			}
		}
		if PlatformForSpec(p.Spec.Name) != p {
			t.Errorf("PlatformForSpec(%q) did not round-trip", p.Spec.Name)
		}
	}
	if _, ok := LookupPlatform("no-such-platform"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	if PlatformForSpec("no-such-spec") != nil {
		t.Fatal("bogus spec resolved")
	}
}

// TestPlatformsReturnsCopy: mutating the returned slice must not corrupt
// the registry.
func TestPlatformsReturnsCopy(t *testing.T) {
	a := Platforms()
	a[0] = nil
	if Platforms()[0] == nil {
		t.Fatal("Platforms exposes internal slice")
	}
}

// TestCatalogAliasExamples pins the lookup keys documented in PLATFORMS.md
// and used by cmd/paper -platforms.
func TestCatalogAliasExamples(t *testing.T) {
	for _, key := range []string{"pi3", "xeon-modern", "edison", "dell"} {
		if _, ok := LookupPlatform(key); !ok {
			t.Errorf("documented alias %q does not resolve", key)
		}
	}
}

// TestBaselinePairIsPaperTestbed pins the values every paper comparison
// depends on, so catalog edits cannot silently drift the baseline.
func TestBaselinePairIsPaperTestbed(t *testing.T) {
	micro, brawny := BaselinePair()
	if micro.Spec.CPU.Cores != 2 || float64(micro.Spec.CPU.DMIPS) != 632.3 {
		t.Errorf("micro CPU drifted: %+v", micro.Spec.CPU)
	}
	if brawny.Spec.CPU.Cores != 6 || float64(brawny.Spec.CPU.DMIPS) != 11383 {
		t.Errorf("brawny CPU drifted: %+v", brawny.Spec.CPU)
	}
	if micro.UnitCost != 120 || brawny.UnitCost != 2500 {
		t.Errorf("unit costs drifted: %v / %v", micro.UnitCost, brawny.UnitCost)
	}
	if micro.Hadoop.VCores != 2 || brawny.Hadoop.VCores != 12 {
		t.Errorf("vcores drifted: %d / %d", micro.Hadoop.VCores, brawny.Hadoop.VCores)
	}
}
