// Package hw models the two server platforms the paper compares: the Intel
// Edison sensor-class micro server and the Dell PowerEdge R620. Every
// constant in this file is taken from the paper's own measurements
// (Sections 3–4: Tables 2, 3, 5 and the §4.1–§4.4 numbers), which is how a
// simulation can stand in for the authors' physical testbed.
package hw

import (
	"edisim/internal/units"
)

// CPUSpec describes a processor package.
type CPUSpec struct {
	Cores   int         // physical cores
	Clock   units.MHz   // nameplate per-core clock
	DMIPS   units.DMIPS // measured Dhrystone MIPS for ONE core (§4.1)
	Threads int         // hardware threads (hyper-threading)
	HTYield float64     // extra effective capacity from HT, e.g. 0.25 = +25%
}

// EffectiveCores reports the parallel capacity used by the scheduler model:
// physical cores scaled by the hyper-threading yield.
func (c CPUSpec) EffectiveCores() float64 {
	f := 1.0
	if c.Threads > c.Cores {
		f += c.HTYield
	}
	return float64(c.Cores) * f
}

// TotalDMIPS reports aggregate integer throughput with all cores busy.
func (c CPUSpec) TotalDMIPS() units.DMIPS {
	return units.DMIPS(float64(c.DMIPS) * c.EffectiveCores())
}

// MemSpec describes main memory.
type MemSpec struct {
	Capacity  units.Bytes
	Bandwidth units.BytesPerSec // saturated large-block transfer rate (§4.2)
	ClockMHz  units.MHz
	// SaturationThreads is the thread count beyond which measured transfer
	// rate stops increasing (§4.2: 2 on Edison, 12 on Dell).
	SaturationThreads int
}

// DiskSpec describes the storage device with the paper's Table 5 figures.
type DiskSpec struct {
	Write        units.BytesPerSec // direct write (oflag=dsync)
	BufWrite     units.BytesPerSec // buffered write
	Read         units.BytesPerSec // direct read (cache flushed)
	BufRead      units.BytesPerSec // buffered (page-cache) read
	WriteLatency float64           // seconds per request (ioping)
	ReadLatency  float64           // seconds per request (ioping)
	Capacity     units.Bytes
}

// NICSpec describes the network interface.
type NICSpec struct {
	Bandwidth units.BytesPerSec
	// TCPGoodput/UDPGoodput are the measured achievable rates (§4.4),
	// slightly below nameplate due to framing overheads.
	TCPGoodput units.BytesPerSec
	UDPGoodput units.BytesPerSec
}

// PowerSpec is the linear power model measured in Table 3: draw moves from
// Idle to Busy with CPU utilization. AdapterIdle/AdapterBusy is the extra
// draw of the USB Ethernet adapter (Edison only, ~1 W — more than the SoC
// itself). Table 3 reports 0.36→0.75 W for the bare Edison but 1.40→1.68 W
// with the adapter, i.e. the adapter itself draws 1.04 W idle and 0.93 W
// under load; we keep both endpoints so node- and cluster-level figures
// (49.0 W idle / 58.8 W busy for 35 nodes) reproduce exactly.
type PowerSpec struct {
	Idle        units.Watts
	Busy        units.Watts
	AdapterIdle units.Watts
	AdapterBusy units.Watts
}

// Draw reports instantaneous power at the given CPU utilization in [0,1].
func (p PowerSpec) Draw(util float64) units.Watts {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	u := units.Watts(util)
	return p.Idle + u*(p.Busy-p.Idle) + p.AdapterIdle + u*(p.AdapterBusy-p.AdapterIdle)
}

// IdleDraw reports draw at zero utilization including the adapter.
func (p PowerSpec) IdleDraw() units.Watts { return p.Draw(0) }

// BusyDraw reports draw at full utilization including the adapter.
func (p PowerSpec) BusyDraw() units.Watts { return p.Draw(1) }

// NodeSpec bundles the full hardware description of one server.
type NodeSpec struct {
	Name  string
	CPU   CPUSpec
	Mem   MemSpec
	Disk  DiskSpec
	NIC   NICSpec
	Power PowerSpec
	Cost  float64 // purchase cost in USD (Table 9)
}

// EdisonSpec returns the Intel Edison micro server as measured in the paper:
// 2×500 MHz Atom-class cores, 632.3 DMIPS/core, 1 GB RAM at 2.2 GB/s,
// 8 GB microSD storage, 100 Mbps USB Ethernet, 0.36–0.75 W plus ~1 W adapter.
func EdisonSpec() NodeSpec {
	return NodeSpec{
		Name: "Edison",
		CPU: CPUSpec{
			Cores:   2,
			Clock:   500,
			DMIPS:   632.3, // §4.1 Dhrystone result
			Threads: 2,
			HTYield: 0,
		},
		Mem: MemSpec{
			Capacity:          1 * units.GB,
			Bandwidth:         units.BytesPerSec(2.2 * float64(units.GBps)), // §4.2
			ClockMHz:          800,
			SaturationThreads: 2,
		},
		Disk: DiskSpec{ // Table 5, 8 GB microSD
			Write:        units.BytesPerSec(4.5 * float64(units.MBps)),
			BufWrite:     units.BytesPerSec(9.3 * float64(units.MBps)),
			Read:         units.BytesPerSec(19.5 * float64(units.MBps)),
			BufRead:      units.BytesPerSec(737 * float64(units.MBps)),
			WriteLatency: 18.0e-3,
			ReadLatency:  7.0e-3,
			Capacity:     8 * units.GB,
		},
		NIC: NICSpec{ // §4.4: 93.9 / 94.8 Mbit/s over a 100 Mbps adapter
			Bandwidth:  units.Mbps(100),
			TCPGoodput: units.Mbps(93.9),
			UDPGoodput: units.Mbps(94.8),
		},
		// Table 3: bare 0.36→0.75 W, with adapter 1.40→1.68 W.
		Power: PowerSpec{Idle: 0.36, Busy: 0.75, AdapterIdle: 1.04, AdapterBusy: 0.93},
		Cost:  120, // Table 9 breakdown
	}
}

// DellR620Spec returns the Dell PowerEdge R620 as measured in the paper:
// 6×2 GHz Xeon E5-2620 (hyper-threaded), 11383 DMIPS/core, 16 GB RAM at
// 36 GB/s, 1 TB 15K SAS disk, 1 Gbps NIC, 52–109 W.
func DellR620Spec() NodeSpec {
	return NodeSpec{
		Name: "DellR620",
		CPU: CPUSpec{
			Cores:   6,
			Clock:   2000,
			DMIPS:   11383, // §4.1: one Dell core ≈ 18× one Edison core
			Threads: 12,
			// §4.1 and §7: the measured whole-node gap is "90 to 108×"
			// (≈100×) a whole 2-core Edison, which implies the 12 hardware
			// threads deliver ≈11.1 core-equivalents in Sysbench:
			// 6 × (1+0.85) × 11383 / (2 × 632.3) ≈ 100.
			HTYield: 0.85,
		},
		Mem: MemSpec{
			Capacity:          16 * units.GB,
			Bandwidth:         units.BytesPerSec(36 * float64(units.GBps)), // §4.2
			ClockMHz:          1333,
			SaturationThreads: 12,
		},
		Disk: DiskSpec{ // Table 5, 1 TB 15K RPM SAS
			Write:        units.BytesPerSec(24.0 * float64(units.MBps)),
			BufWrite:     units.BytesPerSec(83.2 * float64(units.MBps)),
			Read:         units.BytesPerSec(86.1 * float64(units.MBps)),
			BufRead:      units.BytesPerSec(3.1 * float64(units.GBps)),
			WriteLatency: 5.04e-3,
			ReadLatency:  0.829e-3,
			Capacity:     1 * units.TB,
		},
		NIC: NICSpec{ // §4.4: 942 / 948 Mbit/s over 1 Gbps
			Bandwidth:  units.Gbps(1),
			TCPGoodput: units.Mbps(942),
			UDPGoodput: units.Mbps(948),
		},
		Power: PowerSpec{Idle: 52, Busy: 109}, // Table 3
		Cost:  2500,                           // §3.1
	}
}

// ReplacementEstimate reproduces the paper's Table 2 back-of-the-envelope
// calculation: how many micro servers match one brawny server on each raw
// resource, and the max across resources.
type ReplacementEstimate struct {
	ByCPU, ByRAM, ByNIC, Required int
}

// EstimateReplacement computes Table 2 for any pair of specs using nameplate
// capacities (cores × clock, RAM size, NIC bandwidth), as the paper does.
func EstimateReplacement(micro, brawny NodeSpec) ReplacementEstimate {
	ceilDiv := func(a, b float64) int {
		n := int(a / b)
		if float64(n)*b < a {
			n++
		}
		return n
	}
	cpu := ceilDiv(float64(brawny.CPU.Cores)*float64(brawny.CPU.Clock),
		float64(micro.CPU.Cores)*float64(micro.CPU.Clock))
	ram := ceilDiv(float64(brawny.Mem.Capacity), float64(micro.Mem.Capacity))
	nic := ceilDiv(float64(brawny.NIC.Bandwidth), float64(micro.NIC.Bandwidth))
	req := cpu
	if ram > req {
		req = ram
	}
	if nic > req {
		req = nic
	}
	return ReplacementEstimate{ByCPU: cpu, ByRAM: ram, ByNIC: nic, Required: req}
}
