package hw

import (
	"fmt"

	"edisim/internal/sim"
	"edisim/internal/stats"
	"edisim/internal/units"
)

// Node is a running server instance inside a simulation: a processor-sharing
// CPU, a FIFO disk, a memory accountant and an energy integrator driven by
// CPU utilization through a pluggable PowerModel (the platform's calibrated
// linear model unless SetPowerModel arms another).
type Node struct {
	Spec NodeSpec
	ID   string

	// power maps utilization to draw; defaults to Spec.Power (linear).
	power PowerModel

	eng *sim.Engine
	cpu *sim.ProcShare
	dsk *Disk

	memUsed units.Bytes

	// down marks a crashed node: its CPU and disk black-hole new work (a
	// submission is silently dropped, done callbacks never run) and power
	// draw is zero until Restore. slow is the straggler factor (0 = never
	// set = nominal speed); it survives a crash/reboot cycle.
	down bool
	// parked marks a deliberate power-off (autoscaling): the node is down
	// like a crashed one, but fault-recovery Restore will not revive it —
	// only PowerUp does. This keeps a fault plan's crash/recover pair from
	// silently re-powering a node the autoscaler parked.
	parked bool
	slow   float64
	// incarnation counts crashes, letting services detect across a reboot
	// that their in-kernel state (backlogs, inflight counts) was wiped.
	incarnation uint64

	energy *stats.Integrator // integrates watts over time
	// BusyFloor pins a minimum "busy fraction" for power purposes, modeling
	// always-on daemons (e.g. datanode+nodemanager keep some load).
	BusyFloor float64

	// utilSubs are change subscribers (see SubscribeUtil); nil slots are
	// cancelled entries, compacted once the last subscriber leaves. The
	// generation counter invalidates cancel funcs issued before a
	// compaction, whose captured indices would otherwise alias new slots.
	utilSubs     []func(u float64)
	utilSubCount int
	utilSubGen   uint64
}

// NewNode instantiates a node of the given spec on the engine. The CPU's
// work unit is the DMIPS-second: submitting work W models W DMIPS-seconds of
// computation, so identical logical work takes ~18× longer per core on
// Edison than on Dell, exactly as §4.1 measures.
func NewNode(eng *sim.Engine, spec NodeSpec, id string) *Node {
	n := &Node{
		Spec:   spec,
		ID:     id,
		power:  spec.Power,
		eng:    eng,
		energy: stats.NewIntegrator(float64(eng.Now()), float64(spec.Power.IdleDraw())),
	}
	n.cpu = sim.NewProcShare(eng, spec.CPU.EffectiveCores(), float64(spec.CPU.DMIPS))
	n.cpu.OnActiveChange = func(int) { n.updatePower() }
	n.dsk = NewDisk(eng, spec.Disk)
	return n
}

// Engine returns the engine the node runs on.
func (n *Node) Engine() *sim.Engine { return n.eng }

// CPU returns the node's processor-sharing CPU.
func (n *Node) CPU() *sim.ProcShare { return n.cpu }

// Disk returns the node's storage device.
func (n *Node) Disk() *Disk { return n.dsk }

// SubscribeUtil registers fn to be called after the node's CPU utilization
// changes, with the new raw utilization in [0,1] (BusyFloor does not
// apply). It lets observers integrate utilization on change instead of
// polling the node on a timer. Any number of observers may subscribe; they
// are notified in registration order. The returned cancel function removes
// the subscription (idempotent).
func (n *Node) SubscribeUtil(fn func(u float64)) (cancel func()) {
	n.utilSubs = append(n.utilSubs, fn)
	n.utilSubCount++
	i := len(n.utilSubs) - 1
	gen := n.utilSubGen
	return func() {
		if gen != n.utilSubGen || n.utilSubs[i] == nil {
			return // stale (pre-compaction) or already cancelled
		}
		n.utilSubs[i] = nil
		n.utilSubCount--
		if n.utilSubCount == 0 {
			n.utilSubs = n.utilSubs[:0]
			n.utilSubGen++
		}
	}
}

// updatePower closes the current energy segment at the new utilization.
func (n *Node) updatePower() {
	u := n.cpu.Utilization()
	for _, fn := range n.utilSubs {
		if fn != nil {
			fn(u)
		}
	}
	if n.down {
		n.energy.Set(float64(n.eng.Now()), 0)
		return
	}
	if u < n.BusyFloor {
		u = n.BusyFloor
	}
	n.energy.Set(float64(n.eng.Now()), float64(n.power.Draw(u)))
}

// SetPowerModel swaps the node's utilization→draw model and immediately
// re-evaluates the energy integrator at the current utilization. A nil model
// restores the spec's linear default. Swapping models mid-run is legal: past
// energy was integrated under the old model, future segments use the new one.
func (n *Node) SetPowerModel(pm PowerModel) {
	if pm == nil {
		pm = n.Spec.Power
	}
	n.power = pm
	n.updatePower()
}

// PowerModel reports the active utilization→draw model.
func (n *Node) PowerModel() PowerModel { return n.power }

// Up reports whether the node is powered and serving (not crashed).
func (n *Node) Up() bool { return !n.down }

// Crash powers the node off: every in-flight CPU task and disk operation is
// dropped without its done callback (outstanding refs go stale), new work is
// black-holed until Restore, and the power draw falls to zero. Crashing a
// down node is a no-op. Memory reservations survive, as the reservation is
// a planning construct (YARN capacities), not live state.
func (n *Node) Crash() {
	if n.down {
		return
	}
	n.cpu.KillAll() // fires OnActiveChange → updatePower at the old state
	n.down = true
	n.incarnation++
	n.dsk.killAll()
	n.updatePower()
}

// Restore reboots a crashed node: it accepts work again (empty CPU and
// disk — the crash dropped everything) and resumes idle power draw. Any
// straggler slow factor set before the crash still applies. Restoring an
// up node is a no-op, and so is restoring a parked node: a deliberate
// power-off outlives fault recovery and ends only with PowerUp.
func (n *Node) Restore() {
	if n.parked {
		return
	}
	n.restore()
}

func (n *Node) restore() {
	if !n.down {
		return
	}
	n.down = false
	n.dsk.restore()
	n.updatePower()
}

// PowerDown parks the node: a deliberate power-off for elasticity, distinct
// from a crash only in who may revive it (PowerUp, not Restore). The caller
// is expected to have drained the node — parking is mechanically a crash,
// so anything still in flight is dropped. Parking a parked node is a no-op.
func (n *Node) PowerDown() {
	if n.parked {
		return
	}
	n.parked = true
	n.Crash()
}

// PowerUp un-parks the node and boots it (idle draw resumes, empty CPU and
// disk). It also revives a node that was crashed when parked. No-op unless
// parked.
func (n *Node) PowerUp() {
	if !n.parked {
		return
	}
	n.parked = false
	n.restore()
}

// Parked reports whether the node is deliberately powered off.
func (n *Node) Parked() bool { return n.parked }

// Incarnation reports how many times the node has crashed — 0 for a node
// that never failed. Services compare it against a remembered value to
// notice, lazily, that a reboot wiped their kernel-side state.
func (n *Node) Incarnation() uint64 { return n.incarnation }

// SetSlowFactor rescales the node's CPU speed and disk rate to factor × the
// nominal value — straggler injection (factor < 1) or recovery (factor 1).
// The factor must be positive and finite.
func (n *Node) SetSlowFactor(factor float64) {
	n.cpu.SetSpeedFactor(factor) // validates the factor
	n.slow = factor
	n.dsk.setRateFactor(factor)
}

// SlowFactor reports the current straggler factor (1 when never set).
func (n *Node) SlowFactor() float64 {
	if n.slow == 0 {
		return 1
	}
	return n.slow
}

// SetBusyFloor sets the minimum busy fraction (clamped to [0,1]) and
// immediately re-evaluates power.
func (n *Node) SetBusyFloor(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	n.BusyFloor = f
	n.updatePower()
}

// Compute submits work DMIPS-seconds to the CPU; done runs on completion.
// The returned handle can cancel the task and stays safe across pooled
// task-record recycling. On a crashed node the work is black-holed: the
// zero (inert) ref is returned and done never runs — recovery belongs to
// the caller's timeout machinery, as with a real dead host.
func (n *Node) Compute(work float64, done func()) sim.PSTaskRef {
	if n.down {
		return sim.PSTaskRef{}
	}
	return n.cpu.Submit(work, done)
}

// ComputeSeconds submits work sized so that it takes roughly seconds of
// single-core time on THIS platform when the CPU is otherwise idle.
func (n *Node) ComputeSeconds(seconds float64, done func()) sim.PSTaskRef {
	if n.down {
		return sim.PSTaskRef{}
	}
	return n.cpu.Submit(seconds*float64(n.Spec.CPU.DMIPS), done)
}

// Power reports instantaneous draw (zero while crashed).
func (n *Node) Power() units.Watts {
	if n.down {
		return 0
	}
	u := n.cpu.Utilization()
	if u < n.BusyFloor {
		u = n.BusyFloor
	}
	return n.power.Draw(u)
}

// Energy reports joules consumed from node creation until now.
func (n *Node) Energy() units.Joules {
	return units.Joules(n.energy.Total(float64(n.eng.Now())))
}

// Utilization reports instantaneous CPU utilization in [0,1].
func (n *Node) Utilization() float64 { return n.cpu.Utilization() }

// AllocMem reserves bytes of RAM, failing when the node would exceed its
// physical capacity — this is what disqualifies an Edison node from running
// the HDFS namenode/YARN resource-manager (§5.2).
func (n *Node) AllocMem(b units.Bytes) error {
	if n.memUsed+b > n.Spec.Mem.Capacity {
		return fmt.Errorf("hw: %s out of memory: used %v + req %v > cap %v",
			n.ID, n.memUsed, b, n.Spec.Mem.Capacity)
	}
	n.memUsed += b
	return nil
}

// FreeMem releases bytes of RAM.
func (n *Node) FreeMem(b units.Bytes) {
	if b > n.memUsed {
		panic(fmt.Sprintf("hw: %s freeing %v with only %v used", n.ID, b, n.memUsed))
	}
	n.memUsed -= b
}

// MemUsed reports currently reserved RAM.
func (n *Node) MemUsed() units.Bytes { return n.memUsed }

// MemUtilization reports reserved/capacity.
func (n *Node) MemUtilization() float64 {
	return float64(n.memUsed) / float64(n.Spec.Mem.Capacity)
}
