package hw

import (
	"strings"

	"edisim/internal/units"
)

// Platform is one catalog entry: everything the rest of the tree needs to
// know about a server platform, bundled as pure data. The hardware spec
// feeds the simulation substrate; the cost, network and calibration blocks
// feed the cluster builder, the web/Hadoop workload models and the TCO
// model. Adding a platform to the catalog is a data-only change — no
// consumer names platforms explicitly; they resolve entries through
// Platforms/LookupPlatform and iterate.
type Platform struct {
	// Name keys the catalog and matches NodeSpec.Name for nodes built from
	// this platform.
	Name string
	// Label is the short display name used in figure legends and table
	// columns ("Edison", "Dell").
	Label string
	// FullName is the long display name used in prose-style titles
	// ("Dell R620").
	FullName string
	// Aliases are extra lookup keys accepted by LookupPlatform (lower-case).
	Aliases []string
	// Micro marks sensor-class platforms (the paper's wimpy side); the
	// baseline pair is the first micro and first non-micro catalog entry.
	Micro bool

	Spec NodeSpec

	// UnitCost is the per-server purchase cost in USD (Table 9's Cs).
	UnitCost float64
	// MeterName names the power instrument metering a cluster of this
	// platform (the paper: a Mastech DC supply / an SNMP rack PDU).
	MeterName string

	Net    NetworkProfile
	Web    WebCosts
	Hadoop HadoopProfile
	Fleet  Fleet
	Boot   BootCosts

	// Energy is the component-level energy and carbon data behind the
	// TDPCurve power model and the embodied-carbon amortization
	// (PLATFORMS.md documents each figure's provenance). The paper's
	// calibrated linear model in Spec.Power stays the default; this block
	// only arms when a config selects PowerTDPCurve.
	Energy EnergyProfile
}

// BootCosts is the platform's provisioning calibration for elasticity:
// what it costs to bring a parked node into service. Values are
// sim-seconds on the same compressed timescale as the load profiles —
// what matters across platforms is the ratio (micro boards boot a minimal
// image in seconds; brawny servers pay BIOS/firmware POST measured in
// minutes), scaled so a compressed diurnal day still contains several
// boot opportunities. During Delay the node draws full busy power.
type BootCosts struct {
	// Delay is power-on → serving, seconds.
	Delay float64
	// Warmup is the cold-start window after joining the rotation, during
	// which the node runs at WarmupFactor speed (empty caches, cold JITs).
	Warmup float64
	// WarmupFactor is the speed factor while warming, in (0,1].
	WarmupFactor float64
}

// NetworkProfile describes how a cluster of this platform is cabled: hosts
// under optional leaf (per-box) switches under one root switch on the core.
// Delays are one-way propagation in seconds; they reproduce the paper's
// measured RTTs for the baseline pair (§4.4).
type NetworkProfile struct {
	// SwitchName is the root switch vertex ("edison-root", "dell-tor").
	SwitchName string
	// CoreUplink is the root switch's link to the core switch.
	CoreUplink units.BytesPerSec
	CoreDelay  float64
	// LeafFanout > 0 groups hosts into boxes of that many under leaf
	// switches named LeafPrefix+index; 0 attaches hosts to the root switch.
	LeafFanout      int
	LeafPrefix      string
	LeafUplink      units.BytesPerSec
	LeafUplinkDelay float64
	// AccessDelay is the host <-> (leaf or root) switch delay.
	AccessDelay float64
	// HostFormat is the fmt pattern for host vertex names ("edison%02d").
	HostFormat string
}

// WebCosts is the per-platform calibration of the §5.1 web-service model.
// CPU costs are single-core seconds; see internal/web for what each knob
// reproduces.
type WebCosts struct {
	BaseCPU        float64 // request parse + cache-lookup dispatch
	ReplyCPU       float64 // upstream reply handling + page assembly
	CacheClientCPU float64 // memcached/MySQL client unmarshal
	PerKBCPU       float64 // extra CPU per KB of reply body
	CacheGetCPU    float64 // memcached GET service time
	DBQueryCPU     float64 // MySQL per-query CPU (applies on DB-tier nodes)
	ConnRate       float64 // sustainable new-connection acceptance rate /s
	ReqRate        float64 // sustainable request admission rate /s
	MaxInflight    int     // per-server bound before 500s
}

// HadoopJobCosts is the per-(platform, workload) Hadoop calibration: MB per
// core-second rates and the fixed per-task-attempt overhead (§5.2).
type HadoopJobCosts struct {
	MapMBps             float64 // 0 for pi (fixed-work maps; see PiSamplesPerSec)
	ReduceMBps          float64
	TaskOverheadSeconds float64
}

// HadoopProfile is the platform's Hadoop deployment tuning (§5.2 lists these
// per platform) plus the per-workload cost table.
type HadoopProfile struct {
	BlockSize units.Bytes // HDFS block size (terasort equalizes separately)
	Replicas  int         // HDFS replication

	// Container sizes in MB: Small for plain per-file maps, Large for
	// combined-input / compute-heavy maps.
	SmallMapMemoryMB int
	LargeMapMemoryMB int
	ReduceMemoryMB   int
	AMMemoryMB       int
	// CombineSplit is the default CombineFileInputFormat split cap (the
	// deployment re-tunes it to one split per vcore at each cluster scale).
	CombineSplit units.Bytes

	// NodeManager capacity and JVM container startup time.
	NodeMemoryMB     int
	VCores           int
	ContainerStartup float64
	// DaemonMem is what datanode+nodemanager (plus OS) pin on a worker.
	DaemonMem units.Bytes
	// MasterPlatform names the platform hosting namenode+RM when this
	// platform cannot ("" = self-hosted master). The paper's Edison cluster
	// runs a Dell master because 1 GB cannot hold the daemons.
	MasterPlatform string

	// FullScaleTasks is one task slot per vcore of the paper-scale
	// cluster (70 on 35 Edisons, 24 on 2 Dells): pi's fixed map count and
	// terasort's reducer count, which the paper sizes identically (§5.2).
	FullScaleTasks int
	// PiSamplesPerSec is the platform's per-core Monte-Carlo sampling rate.
	PiSamplesPerSec float64

	// Jobs maps workload name -> calibrated rates.
	Jobs map[string]HadoopJobCosts
}

// Fleet is the platform's reference deployment for cross-platform scenario
// matrices: web/cache tier sizes and Hadoop slave count chosen so the fleet
// plays the same role the paper's clusters do (a rack-scale service tier).
type Fleet struct {
	Web, Cache int
	Slaves     int
}

// catalog is the ordered platform registry. The first micro and the first
// non-micro entry form the baseline pair (the paper's testbed).
var catalog = []*Platform{edisonPlatform(), dellR620Platform(), pi3Platform(), xeonModernPlatform()}

// Platforms returns all catalog entries in registration order.
func Platforms() []*Platform {
	out := make([]*Platform, len(catalog))
	copy(out, catalog)
	return out
}

// PlatformNames lists the catalog names in registration order (for CLI
// error messages and docs).
func PlatformNames() []string {
	out := make([]string, len(catalog))
	for i, p := range catalog {
		out[i] = p.Name
	}
	return out
}

// LookupPlatform resolves a platform by Name or alias, case-insensitively.
func LookupPlatform(name string) (*Platform, bool) {
	key := strings.ToLower(strings.TrimSpace(name))
	for _, p := range catalog {
		if strings.ToLower(p.Name) == key {
			return p, true
		}
		for _, a := range p.Aliases {
			if a == key {
				return p, true
			}
		}
	}
	return nil, false
}

// PlatformForSpec resolves the catalog entry whose spec a node was built
// from (nil when the spec is not a catalog platform, e.g. ad-hoc test specs).
func PlatformForSpec(specName string) *Platform {
	for _, p := range catalog {
		if p.Name == specName {
			return p
		}
	}
	return nil
}

// BaselinePair returns the paper's compared pair: the first micro entry and
// the first brawny entry of the catalog.
func BaselinePair() (micro, brawny *Platform) {
	for _, p := range catalog {
		if p.Micro && micro == nil {
			micro = p
		}
		if !p.Micro && brawny == nil {
			brawny = p
		}
	}
	if micro == nil || brawny == nil {
		panic("hw: catalog lacks a baseline pair")
	}
	return micro, brawny
}

// edisonPlatform is the Intel Edison micro server, entirely from the
// paper's measurements (Sections 3–6). This is the catalog's reference
// micro entry: every constant is cited in the spec and model packages.
func edisonPlatform() *Platform {
	return &Platform{
		Name:     "Edison",
		Label:    "Edison",
		FullName: "Edison",
		Aliases:  nil, // the name itself resolves case-insensitively
		Micro:    true,
		Spec:     EdisonSpec(),

		UnitCost:  120, // Table 9: device+breakout 68 + adapter 15 + SD/board 27 + switch share 10
		MeterName: "mastech-supply",

		Net: NetworkProfile{
			SwitchName:      "edison-root",
			CoreUplink:      units.Gbps(1), // the inter-room bottleneck (§5.1.1)
			CoreDelay:       0,
			LeafFanout:      7, // five boxes of seven (§3, Figure 1)
			LeafPrefix:      "edison-box",
			LeafUplink:      units.Gbps(1),
			LeafUplinkDelay: 0.05e-3,
			AccessDelay:     0.30e-3,
			HostFormat:      "edison%02d",
		},

		Web: WebCosts{
			// ≈5.2 core-ms per request at 1.5 KB replies: 24 servers at ≈86%
			// CPU serve ≈7.5k req/s (Figure 4 peak, §5.1.2).
			BaseCPU:        2.4e-3,
			ReplyCPU:       1.4e-3,
			CacheClientCPU: 1.0e-3,
			PerKBCPU:       0.16e-3,
			// Table 7: 4.61 ms cache delay at 480 req/s; cache servers near
			// 9% CPU at peak (§5.1.2).
			CacheGetCPU: 0.3e-3,
			DBQueryCPU:  1.1e-3,
			// Error onset just beyond 1024 conn/s over 24 servers (§5.1.2).
			ConnRate:    45,
			ReqRate:     400,
			MaxInflight: 96,
		},

		Hadoop: HadoopProfile{
			BlockSize:        16 * units.MB,
			Replicas:         2,
			SmallMapMemoryMB: 150,
			LargeMapMemoryMB: 300,
			ReduceMemoryMB:   300,
			AMMemoryMB:       100,
			CombineSplit:     15 * units.MB,
			NodeMemoryMB:     600,
			VCores:           2,
			ContainerStartup: 12.0, // ≈45 s trace ramp before CPU rises (§5.2.1)
			DaemonMem:        360 * units.MB,
			MasterPlatform:   "DellR620", // 1 GB cannot host RM+namenode (§5.2)
			FullScaleTasks:   70,
			PiSamplesPerSec:  0.97e6,
			Jobs: map[string]HadoopJobCosts{
				"wordcount":  {MapMBps: 0.30, ReduceMBps: 0.24, TaskOverheadSeconds: 26},
				"wordcount2": {MapMBps: 0.26, ReduceMBps: 0.40, TaskOverheadSeconds: 24},
				"logcount":   {MapMBps: 0.70, ReduceMBps: 0.50, TaskOverheadSeconds: 20},
				"logcount2":  {MapMBps: 0.60, ReduceMBps: 0.50, TaskOverheadSeconds: 16},
				"terasort":   {MapMBps: 1.5, ReduceMBps: 0.70, TaskOverheadSeconds: 20},
				"pi":         {ReduceMBps: 1, TaskOverheadSeconds: 10},
			},
		},

		Fleet: Fleet{Web: 24, Cache: 11, Slaves: 35},
		// Minimal Yocto image over a slow eMMC: quick to boot, slow to warm.
		Boot: BootCosts{Delay: 2, Warmup: 3, WarmupFactor: 0.6},

		// Atom-class "Tangier" SoC at ≈1 W scenario design power; the USB
		// Ethernet adapter is the fixed board draw (Table 3 measures it
		// bigger than the SoC). Board-scale embodied footprint.
		Energy: EnergyProfile{
			TDPWatts:         1.0,
			MemWattsPerGB:    0.38,
			Disks:            1,
			DiskWatts:        0.1, // microSD
			FixedWatts:       1.0, // USB Ethernet adapter
			PSUOverhead:      0.10,
			EmbodiedKgCO2e:   15,
			ServiceLifeYears: 3,
		},
	}
}

// dellR620Platform is the Dell PowerEdge R620, the paper's brawny side.
func dellR620Platform() *Platform {
	return &Platform{
		Name:     "DellR620",
		Label:    "Dell",
		FullName: "Dell R620",
		Aliases:  []string{"dell", "r620", "dell-r620"},
		Micro:    false,
		Spec:     DellR620Spec(),

		UnitCost:  2500, // §3.1
		MeterName: "rack-pdu",

		Net: NetworkProfile{
			SwitchName:  "dell-tor",
			CoreUplink:  units.Gbps(10),
			CoreDelay:   0,
			LeafFanout:  0, // hosts directly under the ToR
			AccessDelay: 0.06e-3,
			HostFormat:  "dell%d",
		},

		Web: WebCosts{
			// ≈1.4 core-ms per request: 2 servers plateau near 7.5k req/s at
			// only ≈45% CPU — admission-limited, not CPU-limited (§5.1.2).
			BaseCPU:        0.55e-3,
			ReplyCPU:       0.50e-3,
			CacheClientCPU: 0.05e-3,
			PerKBCPU:       0.018e-3,
			CacheGetCPU:    0.06e-3,
			DBQueryCPU:     1.1e-3, // Table 7: ≈1.6 ms DB delay at low load
			ConnRate:       560,    // error onset beyond 2048 conn/s over 2 servers
			ReqRate:        4200,
			MaxInflight:    1024,
		},

		Hadoop: HadoopProfile{
			BlockSize:        64 * units.MB,
			Replicas:         1,
			SmallMapMemoryMB: 500,
			LargeMapMemoryMB: 1024,
			ReduceMemoryMB:   1024,
			AMMemoryMB:       500,
			CombineSplit:     44 * units.MB,
			NodeMemoryMB:     12 * 1024,
			VCores:           12,
			ContainerStartup: 2.5, // ≈20 s trace ramp (§5.2.1)
			DaemonMem:        4 * units.GB,
			MasterPlatform:   "", // self-hosted master
			FullScaleTasks:   24,
			PiSamplesPerSec:  13e6,
			Jobs: map[string]HadoopJobCosts{
				"wordcount":  {MapMBps: 2.2, ReduceMBps: 1.5, TaskOverheadSeconds: 12},
				"wordcount2": {MapMBps: 2.0, ReduceMBps: 2.0, TaskOverheadSeconds: 10},
				"logcount":   {MapMBps: 4.5, ReduceMBps: 4.0, TaskOverheadSeconds: 6.5},
				"logcount2":  {MapMBps: 3.2, ReduceMBps: 4.0, TaskOverheadSeconds: 10},
				"terasort":   {MapMBps: 8.0, ReduceMBps: 6.0, TaskOverheadSeconds: 8},
				"pi":         {ReduceMBps: 8, TaskOverheadSeconds: 4},
			},
		},

		Fleet: Fleet{Web: 2, Cache: 1, Slaves: 2},
		// Server-class BIOS/RAID POST dominates: 5× the Edison delay on the
		// compressed timescale (minutes vs seconds in real fleets).
		Boot: BootCosts{Delay: 10, Warmup: 4, WarmupFactor: 0.7},

		// Xeon E5-2620 published TDP 95 W; one 15K SAS spindle at the HDD
		// class draw; fans/baseboard/RAID as fixed draw. Rack-server-class
		// embodied footprint (Dell LCA reports ≈1 tCO2e manufacturing).
		Energy: EnergyProfile{
			TDPWatts:         95,
			MemWattsPerGB:    0.38,
			Disks:            1,
			DiskWatts:        7.5, // HDD
			FixedWatts:       20,
			PSUOverhead:      0.08,
			EmbodiedKgCO2e:   1000,
			ServiceLifeYears: 3,
		},
	}
}

// pi3Platform is the Raspberry Pi 3 Model B: a catalog entry beyond the
// paper's testbed, calibrated from published data (ARM's 2.3 DMIPS/MHz
// Cortex-A53 figure, measured STREAM bandwidth, the Foundation's $35 list
// price and published idle/load power measurements — PLATFORMS.md cites
// each). Per-core ≈4.3× an Edison core; the same 100 Mbps NIC class and
// SD-card storage keep it in the paper's sensor-class envelope.
func pi3Platform() *Platform {
	return &Platform{
		Name:     "RPi3",
		Label:    "Pi3",
		FullName: "Raspberry Pi 3",
		Aliases:  []string{"pi3", "raspberry-pi-3"},
		Micro:    true,
		Spec: NodeSpec{
			Name: "RPi3",
			CPU: CPUSpec{
				Cores:   4,
				Clock:   1200,
				DMIPS:   2760, // ≈2.3 DMIPS/MHz Cortex-A53
				Threads: 4,
				HTYield: 0,
			},
			Mem: MemSpec{
				Capacity: 1 * units.GB,
				// Measured STREAM-class copy rate on the 32-bit LPDDR2-900
				// bus (~60% of the 3.6 GB/s nameplate), per the published
				// RPi3 memory benchmarks cited in PLATFORMS.md.
				Bandwidth:         units.BytesPerSec(2.2 * float64(units.GBps)),
				ClockMHz:          900,
				SaturationThreads: 4,
			},
			Disk: DiskSpec{ // class-10 microSD
				Write:        units.BytesPerSec(10 * float64(units.MBps)),
				BufWrite:     units.BytesPerSec(18 * float64(units.MBps)),
				Read:         units.BytesPerSec(22 * float64(units.MBps)),
				BufRead:      units.BytesPerSec(900 * float64(units.MBps)),
				WriteLatency: 14.0e-3,
				ReadLatency:  5.0e-3,
				Capacity:     32 * units.GB,
			},
			NIC: NICSpec{ // built-in 100 Mbps (USB-attached internally)
				Bandwidth:  units.Mbps(100),
				TCPGoodput: units.Mbps(94.1),
				UDPGoodput: units.Mbps(95.0),
			},
			// Published board measurements: ≈1.4 W idle (≈270 mA at 5.1 V),
			// ≈3.7 W under full CPU load (≈730 mA). No external adapter.
			Power: PowerSpec{Idle: 1.4, Busy: 3.7},
			Cost:  55,
		},

		UnitCost:  55, // board 35 + PSU/SD/switch share 20
		MeterName: "pi3-supply",

		Net: NetworkProfile{
			SwitchName:      "pi3-root",
			CoreUplink:      units.Gbps(1),
			CoreDelay:       0,
			LeafFanout:      8, // shelves of eight
			LeafPrefix:      "pi3-shelf",
			LeafUplink:      units.Gbps(1),
			LeafUplinkDelay: 0.05e-3,
			AccessDelay:     0.25e-3,
			HostFormat:      "pi3-%02d",
		},

		Web: WebCosts{
			// Edison web costs scaled by the ≈4.3× per-core gap, with the
			// same thread/port ceilings scaled by core count.
			BaseCPU:        0.65e-3,
			ReplyCPU:       0.40e-3,
			CacheClientCPU: 0.28e-3,
			PerKBCPU:       0.045e-3,
			CacheGetCPU:    0.09e-3,
			DBQueryCPU:     1.1e-3,
			ConnRate:       120,
			ReqRate:        1000,
			MaxInflight:    256,
		},

		Hadoop: HadoopProfile{
			BlockSize:        32 * units.MB,
			Replicas:         2,
			SmallMapMemoryMB: 150,
			LargeMapMemoryMB: 300,
			ReduceMemoryMB:   300,
			AMMemoryMB:       100,
			CombineSplit:     20 * units.MB,
			NodeMemoryMB:     700, // 1 GB minus OS + daemons
			VCores:           4,
			ContainerStartup: 5.0,
			DaemonMem:        360 * units.MB,
			MasterPlatform:   "DellR620", // 1 GB: same hybrid-master constraint
			FullScaleTasks:   48,
			PiSamplesPerSec:  4.2e6,
			Jobs: map[string]HadoopJobCosts{
				// Edison rates scaled by ≈3.3× (Java/I/O paths close less of
				// the gap than raw DMIPS, as the paper observes for Edison
				// vs Dell), overheads shrunk by the faster cores.
				"wordcount":  {MapMBps: 1.0, ReduceMBps: 0.80, TaskOverheadSeconds: 10},
				"wordcount2": {MapMBps: 0.90, ReduceMBps: 1.3, TaskOverheadSeconds: 9},
				"logcount":   {MapMBps: 2.2, ReduceMBps: 1.7, TaskOverheadSeconds: 8},
				"logcount2":  {MapMBps: 2.0, ReduceMBps: 1.7, TaskOverheadSeconds: 7},
				"terasort":   {MapMBps: 4.5, ReduceMBps: 2.2, TaskOverheadSeconds: 8},
				"pi":         {ReduceMBps: 3, TaskOverheadSeconds: 5},
			},
		},

		Fleet: Fleet{Web: 8, Cache: 4, Slaves: 12},
		// SD-card Linux boot: board-class delay, Edison-class warm-up.
		Boot: BootCosts{Delay: 3, Warmup: 3, WarmupFactor: 0.6},

		// BCM2837 package power under sustained load (no official TDP is
		// published; ≈2.5 W reproduces the measured 1.4→3.7 W board
		// envelope once LPDDR2, SD and the USB/LAN bridge are added).
		Energy: EnergyProfile{
			TDPWatts:         2.5,
			MemWattsPerGB:    0.38,
			Disks:            1,
			DiskWatts:        0.1, // microSD
			FixedWatts:       0.5, // USB hub + LAN9514 bridge
			PSUOverhead:      0.10,
			EmbodiedKgCO2e:   20,
			ServiceLifeYears: 3,
		},
	}
}

// xeonModernPlatform is a modern high-core-count Xeon server, anchored to
// the published Intel Xeon Gold 6248R datasheet (24C/48T at 3.0 GHz base,
// 205 W TDP, six DDR4-2933 channels, $2700 list) in a single-socket 1U
// chassis; PLATFORMS.md cites each figure. The brawny end-point for
// cross-platform scenarios.
func xeonModernPlatform() *Platform {
	return &Platform{
		Name:     "XeonModern",
		Label:    "Xeon",
		FullName: "modern Xeon (Gold 6248R class)",
		Aliases:  []string{"xeon-modern", "xeon"},
		Micro:    false,
		Spec: NodeSpec{
			Name: "XeonModern",
			CPU: CPUSpec{
				Cores:   24,
				Clock:   3000,  // 6248R base clock
				DMIPS:   32000, // ≈10.7 DMIPS/MHz server-core estimate
				Threads: 48,
				HTYield: 0.30,
			},
			Mem: MemSpec{
				Capacity: 128 * units.GB,
				// Published single-socket STREAM triad for six DDR4-2933
				// channels (≈75% of the 140.8 GB/s nameplate).
				Bandwidth:         units.BytesPerSec(105 * float64(units.GBps)),
				ClockMHz:          2933,
				SaturationThreads: 48,
			},
			Disk: DiskSpec{ // datacenter NVMe
				Write:        units.BytesPerSec(1.2 * float64(units.GBps)),
				BufWrite:     units.BytesPerSec(2.0 * float64(units.GBps)),
				Read:         units.BytesPerSec(2.5 * float64(units.GBps)),
				BufRead:      units.BytesPerSec(8.0 * float64(units.GBps)),
				WriteLatency: 0.05e-3,
				ReadLatency:  0.08e-3,
				Capacity:     2 * units.TB,
			},
			NIC: NICSpec{
				Bandwidth:  units.Gbps(10),
				TCPGoodput: units.Gbps(9.4),
				UDPGoodput: units.Gbps(9.6),
			},
			// Wall endpoints derived from the published 205 W TDP through
			// the Boavizta 12%/102%-of-TDP mapping plus 0.38 W/GB DRAM,
			// one NVMe SSD and fan/board draw at 90% PSU efficiency —
			// the same component model the TDPCurve uses (PLATFORMS.md).
			Power: PowerSpec{Idle: 122, Busy: 325},
			Cost:  9000,
		},

		UnitCost:  9000,
		MeterName: "xeon-pdu",

		Net: NetworkProfile{
			SwitchName:  "xeon-tor",
			CoreUplink:  units.Gbps(40),
			CoreDelay:   0,
			LeafFanout:  0,
			AccessDelay: 0.03e-3,
			HostFormat:  "xeon%d",
		},

		Web: WebCosts{
			// ≈3× the R620 per-core speed with 48 hardware threads; the
			// kernel connection/thread-churn ceilings rise with core count
			// but remain the binding constraint, as on the R620.
			BaseCPU:        0.18e-3,
			ReplyCPU:       0.16e-3,
			CacheClientCPU: 0.015e-3,
			PerKBCPU:       0.006e-3,
			CacheGetCPU:    0.02e-3,
			DBQueryCPU:     0.4e-3,
			ConnRate:       2200,
			ReqRate:        16000,
			MaxInflight:    4096,
		},

		Hadoop: HadoopProfile{
			BlockSize:        128 * units.MB,
			Replicas:         1,
			SmallMapMemoryMB: 1024,
			LargeMapMemoryMB: 2048,
			ReduceMemoryMB:   2048,
			AMMemoryMB:       1024,
			CombineSplit:     128 * units.MB,
			NodeMemoryMB:     96 * 1024,
			VCores:           48,
			ContainerStartup: 1.2,
			DaemonMem:        6 * units.GB,
			MasterPlatform:   "",
			FullScaleTasks:   48,
			PiSamplesPerSec:  40e6,
			Jobs: map[string]HadoopJobCosts{
				"wordcount":  {MapMBps: 6.5, ReduceMBps: 4.5, TaskOverheadSeconds: 4},
				"wordcount2": {MapMBps: 6.0, ReduceMBps: 6.0, TaskOverheadSeconds: 3.5},
				"logcount":   {MapMBps: 13, ReduceMBps: 12, TaskOverheadSeconds: 2.5},
				"logcount2":  {MapMBps: 9.5, ReduceMBps: 12, TaskOverheadSeconds: 3.5},
				"terasort":   {MapMBps: 24, ReduceMBps: 18, TaskOverheadSeconds: 3},
				"pi":         {ReduceMBps: 24, TaskOverheadSeconds: 1.5},
			},
		},

		Fleet: Fleet{Web: 1, Cache: 1, Slaves: 1},
		// Longest POST of the catalog — the amortization end-point: one huge
		// box that cannot scale in anyway (Fleet.Web is 1).
		Boot: BootCosts{Delay: 15, Warmup: 5, WarmupFactor: 0.7},

		// Published 6248R TDP; one datacenter NVMe drive at the SSD class
		// draw; fans/BMC/baseboard as fixed draw. Rack-server LCA-class
		// embodied footprint, heavier than the R620 for the larger DIMM
		// population.
		Energy: EnergyProfile{
			TDPWatts:         205,
			MemWattsPerGB:    0.38,
			Disks:            1,
			DiskWatts:        3.0, // SSD
			FixedWatts:       35,
			PSUOverhead:      0.10,
			EmbodiedKgCO2e:   1300,
			ServiceLifeYears: 3,
		},
	}
}
