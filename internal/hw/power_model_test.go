package hw

import (
	"math"
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// testCurve is a bare-CPU curve (no components, ideal PSU) so anchor checks
// read directly in fractions of TDP.
func testCurve(tdp float64) TDPCurve {
	return NewTDPCurve(EnergyProfile{TDPWatts: tdp}, 0)
}

// TestTDPCurveAnchors pins the Boavizta/Snippet-1 mapping: 0/10/50/100% CPU
// → 12/32/75/102% of TDP, and the component/PSU arithmetic around it.
func TestTDPCurveAnchors(t *testing.T) {
	c := testCurve(100)
	for _, tc := range []struct{ util, want float64 }{
		{0, 12}, {0.10, 32}, {0.50, 75}, {1.0, 102},
	} {
		if got := float64(c.Draw(tc.util)); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Draw(%v) = %v W, want %v W", tc.util, got, tc.want)
		}
	}
	if c.IdleDraw() != c.Draw(0) || c.BusyDraw() != c.Draw(1) {
		t.Error("Idle/BusyDraw disagree with Draw endpoints")
	}

	// Components add before the PSU multiplier: 1 GB at 0.38 W, two 3 W
	// SSDs, 5 W board draw, 10% PSU loss.
	full := NewTDPCurve(EnergyProfile{
		TDPWatts: 100, MemWattsPerGB: 0.38, Disks: 2, DiskWatts: 3,
		FixedWatts: 5, PSUOverhead: 0.10,
	}, 1*units.GB)
	want := (12 + 0.38 + 6 + 5) * 1.10
	if got := float64(full.Draw(0)); math.Abs(got-want) > 1e-9 {
		t.Errorf("component idle draw = %v W, want %v W", got, want)
	}

	// Out-of-range utilization clamps to the endpoints.
	if full.Draw(-3) != full.IdleDraw() || full.Draw(7) != full.BusyDraw() {
		t.Error("out-of-range utilization not clamped")
	}
	// A degenerate PSU overhead never discounts the wall draw.
	neg := NewTDPCurve(EnergyProfile{TDPWatts: 100, PSUOverhead: -0.5}, 0)
	if neg.Draw(1) != testCurve(100).Draw(1) {
		t.Error("negative PSU overhead not clamped to 1.0")
	}
}

// TestTDPCurveMonotoneContinuous is the property test pinning the curve
// model: over a dense utilization grid the draw must be non-decreasing, and
// adjacent samples must differ by no more than the steepest published
// segment's slope times the step (continuity — no jumps at the 10% and 50%
// knees).
func TestTDPCurveMonotoneContinuous(t *testing.T) {
	curves := map[string]TDPCurve{"bare": testCurve(205)}
	for _, p := range Platforms() {
		if p.Energy.Modeled() {
			curves[p.Name] = NewTDPCurve(p.Energy, p.Spec.Mem.Capacity)
		}
	}
	const steps = 100000
	for name, c := range curves {
		// Steepest segment is 0→10%: (0.32-0.12)×TDP over 0.10 utilization.
		maxSlope := c.TDP * (0.32 - 0.12) / 0.10 * c.PSU
		step := 1.0 / steps
		prev := float64(c.Draw(0))
		for i := 1; i <= steps; i++ {
			u := float64(i) * step
			cur := float64(c.Draw(u))
			if cur < prev {
				t.Fatalf("%s: draw decreases at u=%v: %v -> %v", name, u, prev, cur)
			}
			if cur-prev > maxSlope*step*(1+1e-9) {
				t.Fatalf("%s: jump at u=%v: %v -> %v exceeds max slope %v",
					name, u, prev, cur, maxSlope)
			}
			prev = cur
		}
		if idle, busy := float64(c.Draw(0)), float64(c.Draw(1)); busy <= idle {
			t.Errorf("%s: busy %v not above idle %v", name, busy, idle)
		}
	}
}

// TestTDPCurveDrawSteadyStateNoAlloc pins the curve Draw hot path at zero
// allocations through the PowerModel interface — the exact shape of the
// node's updatePower call. Runs under the CI alloc gate.
func TestTDPCurveDrawSteadyStateNoAlloc(t *testing.T) {
	var pm PowerModel = NewTDPCurve(EnergyProfile{
		TDPWatts: 205, MemWattsPerGB: 0.38, Disks: 1, DiskWatts: 3,
		FixedWatts: 35, PSUOverhead: 0.10,
	}, 128*units.GB)
	var sink units.Watts
	allocs := testing.AllocsPerRun(1000, func() {
		sink += pm.Draw(0.3) + pm.Draw(0.7) + pm.IdleDraw() + pm.BusyDraw()
	})
	if allocs != 0 {
		t.Fatalf("TDPCurve draw path allocates %v/op, want 0 (sink %v)", allocs, sink)
	}
}

// TestPowerModelForSelection: kinds resolve per platform, and platforms
// without catalog energy data keep the linear model for any kind.
func TestPowerModelForSelection(t *testing.T) {
	micro, _ := BaselinePair()
	if pm := micro.PowerModelFor(PowerLinear); pm != PowerModel(micro.Spec.Power) {
		t.Error("linear kind did not resolve to the spec's PowerSpec")
	}
	if _, ok := micro.PowerModelFor(PowerTDPCurve).(TDPCurve); !ok {
		t.Error("tdp-curve kind did not resolve to a TDPCurve")
	}
	bare := &Platform{Name: "adhoc", Spec: NodeSpec{Power: PowerSpec{Idle: 1, Busy: 2}}}
	if pm := bare.PowerModelFor(PowerTDPCurve); pm != PowerModel(bare.Spec.Power) {
		t.Error("platform without energy data did not fall back to linear")
	}
}

func TestParsePowerModelKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PowerModelKind
		ok   bool
	}{
		{"", PowerLinear, true},
		{"linear", PowerLinear, true},
		{"paper", PowerLinear, true},
		{"tdp-curve", PowerTDPCurve, true},
		{"tdp", PowerTDPCurve, true},
		{"curve", PowerTDPCurve, true},
		{"quadratic", PowerLinear, false},
	} {
		got, err := ParsePowerModelKind(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePowerModelKind(%q) = %v, %v; want %v, ok=%v",
				tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestNodeSetPowerModel: arming a curve changes draw and future energy
// segments; nil restores the linear default.
func TestNodeSetPowerModel(t *testing.T) {
	eng := sim.NewEngine()
	spec := EdisonSpec()
	n := NewNode(eng, spec, "n0")
	if n.Power() != spec.Power.IdleDraw() {
		t.Fatalf("default idle draw %v, want %v", n.Power(), spec.Power.IdleDraw())
	}
	curve := NewTDPCurve(EnergyProfile{TDPWatts: 10}, 0)
	n.SetPowerModel(curve)
	if n.Power() != curve.IdleDraw() {
		t.Fatalf("armed idle draw %v, want %v", n.Power(), curve.IdleDraw())
	}
	// One idle second under the curve model integrates the curve's idle draw.
	before := float64(n.Energy())
	eng.After(1, func() {})
	eng.Run()
	got := float64(n.Energy()) - before
	if want := float64(curve.IdleDraw()); math.Abs(got-want) > 1e-9 {
		t.Fatalf("1 s idle energy under curve = %v J, want %v J", got, want)
	}
	n.SetPowerModel(nil)
	if n.Power() != spec.Power.IdleDraw() {
		t.Fatal("nil did not restore the linear default")
	}
}

// BenchmarkTDPCurveDraw is the CI-pinned hot path benchmark: Draw through
// the PowerModel interface must stay allocation-free.
func BenchmarkTDPCurveDraw(b *testing.B) {
	var pm PowerModel = NewTDPCurve(EnergyProfile{
		TDPWatts: 205, MemWattsPerGB: 0.38, Disks: 1, DiskWatts: 3,
		FixedWatts: 35, PSUOverhead: 0.10,
	}, 128*units.GB)
	var sink units.Watts
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += pm.Draw(float64(i&127) / 127)
	}
	benchSink = float64(sink)
}

var benchSink float64
