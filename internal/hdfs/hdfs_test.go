package hdfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"edisim/internal/hw"
	"edisim/internal/netsim"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// testFS builds a filesystem over n Edison nodes on a star topology.
// t may be nil when called from property-test closures.
func testFS(t *testing.T, n, replication int, blockSize units.Bytes) (*sim.Engine, *FileSystem, []*hw.Node) {
	if t != nil {
		t.Helper()
	}
	eng := sim.NewEngine()
	fab := netsim.NewFabric(eng)
	fab.AddVertex("sw")
	fab.AddVertex("master")
	fab.Connect("master", "sw", units.Gbps(1), 0.1e-3)
	nodes := make([]*hw.Node, n)
	for i := range nodes {
		name := string(rune('a' + i))
		fab.AddVertex(name)
		fab.Connect(name, "sw", units.Mbps(100), 0.3e-3)
		nodes[i] = hw.NewNode(eng, hw.EdisonSpec(), name)
	}
	return eng, New(fab, "master", nodes, blockSize, replication, 7), nodes
}

func TestCreateInstantBlockCount(t *testing.T) {
	_, fs, _ := testFS(t, 5, 2, 16*units.MB)
	f := fs.CreateInstant("/a", 100*units.MB)
	if len(f.Blocks) != 7 { // ceil(100/16)
		t.Fatalf("got %d blocks, want 7", len(f.Blocks))
	}
	var total units.Bytes
	for _, b := range f.Blocks {
		total += b.Size
		if len(b.Replicas) != 2 {
			t.Fatalf("block %v has %d replicas", b.ID, len(b.Replicas))
		}
		if b.Replicas[0] == b.Replicas[1] {
			t.Fatalf("block %v replicas on same node", b.ID)
		}
	}
	if total != 100*units.MB {
		t.Fatalf("block sizes sum to %v", total)
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateInstantDuplicatePanics(t *testing.T) {
	_, fs, _ := testFS(t, 3, 1, 16*units.MB)
	fs.CreateInstant("/a", units.MB)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate create did not panic")
		}
	}()
	fs.CreateInstant("/a", units.MB)
}

func TestWriteReplicatesAndAccounts(t *testing.T) {
	eng, fs, nodes := testFS(t, 4, 2, 16*units.MB)
	done := false
	fs.Write(nodes[0].ID, nodes[0], "/w", 48*units.MB, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("write never completed")
	}
	f, ok := fs.Lookup("/w")
	if !ok || len(f.Blocks) != 3 {
		t.Fatalf("lookup failed or wrong block count")
	}
	// Write-path locality: first replica of every block is the writer.
	for _, b := range f.Blocks {
		if b.Replicas[0].Node != nodes[0] {
			t.Fatalf("block %v first replica not local to writer", b.ID)
		}
	}
	if fs.TotalStored() != 96*units.MB {
		t.Fatalf("stored %v, want 96MB (2 replicas)", fs.TotalStored())
	}
	if err := fs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBlockLocalVsRemote(t *testing.T) {
	eng, fs, nodes := testFS(t, 3, 1, 16*units.MB)
	f := fs.CreateInstant("/r", 16*units.MB)
	b := f.Blocks[0]
	holder := b.Replicas[0].Node

	var localDone, remoteDone sim.Time
	local := fs.ReadBlock(holder.ID, holder, b, func() { localDone = eng.Now() })
	if !local {
		t.Fatal("read on the replica holder should be local")
	}
	var other *hw.Node
	for _, n := range nodes {
		if n != holder {
			other = n
			break
		}
	}
	remote := fs.ReadBlock(other.ID, other, b, func() { remoteDone = eng.Now() })
	if remote {
		t.Fatal("read on a non-holder should be remote")
	}
	eng.Run()
	if remoteDone <= localDone {
		t.Fatalf("remote read (%v) should take longer than local (%v)", remoteDone, localDone)
	}
}

func TestFailNodeReReplicates(t *testing.T) {
	eng, fs, _ := testFS(t, 5, 2, 16*units.MB)
	fs.CreateInstant("/x", 160*units.MB) // 10 blocks × 2 replicas
	victim := fs.DataNodes()[0]
	held := 0
	for _, f := range []string{"/x"} {
		file, _ := fs.Lookup(f)
		for _, b := range file.Blocks {
			if victim.HasBlock(b.ID) {
				held++
			}
		}
	}
	var reReplicated int
	fs.FailNode(victim, func(n int) { reReplicated = n })
	eng.Run()
	if held > 0 && reReplicated == 0 {
		t.Fatalf("victim held %d blocks but nothing re-replicated", held)
	}
	// Every block must again have 2 live replicas.
	file, _ := fs.Lookup("/x")
	for _, b := range file.Blocks {
		live := 0
		for _, r := range b.Replicas {
			if r.Alive() {
				live++
			}
		}
		if live < 2 {
			t.Fatalf("block %v has %d live replicas after recovery", b.ID, live)
		}
	}
}

func TestFailDeadNodePanics(t *testing.T) {
	eng, fs, _ := testFS(t, 3, 1, 16*units.MB)
	d := fs.DataNodes()[0]
	fs.FailNode(d, nil)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("double fail did not panic")
		}
	}()
	fs.FailNode(d, nil)
}

func TestReplicationExceedsNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for replication > nodes")
		}
	}()
	testFS(t, 2, 3, 16*units.MB)
}

// Property: for any file size and block size, blocks partition the file
// exactly and invariants hold.
func TestBlockPartitionProperty(t *testing.T) {
	f := func(sizeKB uint32, blockKB uint16) bool {
		size := units.Bytes(sizeKB%100000) * units.KB
		block := units.Bytes(blockKB%2000+1) * units.KB
		_, fs, _ := testFS(nil, 4, 2, block)
		file := fs.CreateInstant("/p", size)
		var total units.Bytes
		for _, b := range file.Blocks {
			if b.Size > block || b.Size < 0 {
				return false
			}
			total += b.Size
		}
		return total == size && fs.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}
