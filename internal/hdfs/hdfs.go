// Package hdfs models the Hadoop Distributed File System as used in §5.2:
// a namenode holding file→block→replica metadata, datanodes storing block
// replicas on their node's disk, block placement with replication, and
// block reads/writes that move real byte counts through the disk and
// network models. The paper's configuration is reproduced by the callers:
// 16 MB blocks and replication 2 on the Edison cluster, 64 MB blocks and
// replication 1 on the Dell cluster (so both see ≈95% data-local maps).
package hdfs

import (
	"fmt"
	"sort"

	"edisim/internal/hw"
	"edisim/internal/netsim"
	"edisim/internal/rng"
	"edisim/internal/units"
)

// BlockID identifies one block of one file.
type BlockID struct {
	File  string
	Index int
}

// String renders "file#idx".
func (b BlockID) String() string { return fmt.Sprintf("%s#%d", b.File, b.Index) }

// Block is the namenode's record of one block.
type Block struct {
	ID       BlockID
	Size     units.Bytes
	Replicas []*DataNode // placement, first is the "primary"
}

// File is the namenode's record of one file.
type File struct {
	Name   string
	Size   units.Bytes
	Blocks []*Block
}

// DataNode stores replicas on one cluster node.
type DataNode struct {
	Node *hw.Node

	fs     *FileSystem
	blocks map[BlockID]bool
	used   units.Bytes
	alive  bool
}

// Used reports bytes stored on this datanode.
func (d *DataNode) Used() units.Bytes { return d.used }

// Alive reports whether the datanode is serving.
func (d *DataNode) Alive() bool { return d.alive }

// HasBlock reports whether a replica of b lives here.
func (d *DataNode) HasBlock(b BlockID) bool { return d.blocks[b] }

// FileSystem is the namenode plus the datanode set.
type FileSystem struct {
	BlockSize   units.Bytes
	Replication int

	fab   *netsim.Fabric
	files map[string]*File
	nodes []*DataNode
	rnd   *rng.Source

	// MasterVertex is where the namenode runs (for metadata RPC latency).
	MasterVertex string
}

// New creates a filesystem with the given block size and replication over
// the provided nodes. master is the fabric vertex hosting the namenode.
func New(fab *netsim.Fabric, master string, nodes []*hw.Node, blockSize units.Bytes, replication int, seed int64) *FileSystem {
	if blockSize <= 0 || replication <= 0 {
		panic("hdfs: invalid block size or replication")
	}
	if replication > len(nodes) {
		panic(fmt.Sprintf("hdfs: replication %d exceeds %d datanodes", replication, len(nodes)))
	}
	fs := &FileSystem{
		BlockSize:    blockSize,
		Replication:  replication,
		fab:          fab,
		files:        make(map[string]*File),
		rnd:          rng.New(seed).Derive("hdfs"),
		MasterVertex: master,
	}
	for _, n := range nodes {
		fs.nodes = append(fs.nodes, &DataNode{Node: n, fs: fs, blocks: make(map[BlockID]bool), alive: true})
	}
	return fs
}

// DataNodes returns the datanode set.
func (fs *FileSystem) DataNodes() []*DataNode { return fs.nodes }

// DataNodeOf finds the datanode on a given hardware node (nil if none).
func (fs *FileSystem) DataNodeOf(n *hw.Node) *DataNode {
	for _, d := range fs.nodes {
		if d.Node == n {
			return d
		}
	}
	return nil
}

// SetNodeAlive flips a datanode's liveness for a TRANSIENT outage: unlike
// FailNode, the replica metadata survives, because the blocks are still on
// the rebooted node's disk when it comes back. While dead the node serves no
// reads and takes no new replicas; readers fail over to surviving replicas
// (see ReadBlock). Unknown nodes are ignored.
func (fs *FileSystem) SetNodeAlive(n *hw.Node, alive bool) {
	if d := fs.DataNodeOf(n); d != nil {
		d.alive = alive
	}
}

// Files reports the stored file names, sorted.
func (fs *FileSystem) Files() []string {
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns a file's metadata.
func (fs *FileSystem) Lookup(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// TotalStored reports bytes across all replicas on all datanodes.
func (fs *FileSystem) TotalStored() units.Bytes {
	var total units.Bytes
	for _, d := range fs.nodes {
		total += d.used
	}
	return total
}

// placeReplicas picks Replication distinct live datanodes, preferring the
// local node first (HDFS's write-path locality), then random remotes.
func (fs *FileSystem) placeReplicas(local *DataNode) []*DataNode {
	var out []*DataNode
	if local != nil && local.alive {
		out = append(out, local)
	}
	perm := fs.rnd.Perm(len(fs.nodes))
	for _, i := range perm {
		if len(out) == fs.Replication {
			break
		}
		d := fs.nodes[i]
		if !d.alive || (local != nil && d == local) {
			continue
		}
		out = append(out, d)
	}
	if len(out) < fs.Replication {
		panic("hdfs: not enough live datanodes for replication")
	}
	return out
}

// CreateInstant registers a file and places its blocks without simulating
// the write I/O — used to set up pre-existing datasets (the paper's input
// files are already in HDFS when jobs start).
func (fs *FileSystem) CreateInstant(name string, size units.Bytes) *File {
	if _, exists := fs.files[name]; exists {
		panic(fmt.Sprintf("hdfs: file %q already exists", name))
	}
	f := &File{Name: name, Size: size}
	for off := units.Bytes(0); off < size || (size == 0 && off == 0); off += fs.BlockSize {
		bs := fs.BlockSize
		if size-off < bs {
			bs = size - off
		}
		b := &Block{ID: BlockID{File: name, Index: len(f.Blocks)}, Size: bs}
		b.Replicas = fs.placeReplicas(nil)
		for _, d := range b.Replicas {
			d.blocks[b.ID] = true
			d.used += bs
		}
		f.Blocks = append(f.Blocks, b)
		if size == 0 {
			break
		}
	}
	fs.files[name] = f
	return f
}

// Write streams a file of the given size from the writer vertex into HDFS:
// each block is pushed over the network to every replica and committed to
// each replica's disk (pipelined per block, sequential across blocks, as
// the HDFS client does). done runs when the last replica commits.
func (fs *FileSystem) Write(writer string, writerNode *hw.Node, name string, size units.Bytes, done func()) {
	if _, exists := fs.files[name]; exists {
		panic(fmt.Sprintf("hdfs: file %q already exists", name))
	}
	f := &File{Name: name, Size: size}
	fs.files[name] = f

	var local *DataNode
	for _, d := range fs.nodes {
		if writerNode != nil && d.Node == writerNode {
			local = d
		}
	}

	var writeBlock func(off units.Bytes)
	writeBlock = func(off units.Bytes) {
		if off >= size {
			if done != nil {
				done()
			}
			return
		}
		bs := fs.BlockSize
		if size-off < bs {
			bs = size - off
		}
		b := &Block{ID: BlockID{File: name, Index: len(f.Blocks)}, Size: bs}
		b.Replicas = fs.placeReplicas(local)
		f.Blocks = append(f.Blocks, b)

		remaining := len(b.Replicas)
		for _, d := range b.Replicas {
			d := d
			fs.fab.StartFlow(writer, d.Node.ID, bs, func() {
				d.Node.Disk().Write(bs, true, func() {
					d.blocks[b.ID] = true
					d.used += bs
					remaining--
					if remaining == 0 {
						writeBlock(off + bs)
					}
				})
			})
		}
	}
	writeBlock(0)
}

// readProbeInterval and maxReadProbes bound a reader's wait for a replica to
// come back from a transient outage: one probe per second for ten minutes,
// then the read is silently abandoned (the caller's watchdog owns recovery).
// The bound keeps the event stream finite when nothing ever recovers.
const (
	readProbeInterval = 1.0
	maxReadProbes     = 600
)

// ReadBlock delivers one block to the reader vertex: a local disk read when
// a replica is co-located, otherwise a remote replica's disk read plus a
// network flow. It reports whether the read was data-local.
//
// When every replica is down but still registered (a transient outage, see
// SetNodeAlive) the read probes once a second until a replica returns, up to
// maxReadProbes; a block with NO registered replicas is permanent data loss
// (FailNode removed them) and panics, as before.
func (fs *FileSystem) ReadBlock(reader string, readerNode *hw.Node, b *Block, done func()) (local bool) {
	// Prefer a replica on the reading node.
	for _, d := range b.Replicas {
		if d.alive && readerNode != nil && d.Node == readerNode {
			d.Node.Disk().Read(b.Size, true, done)
			return true
		}
	}
	fs.remoteRead(reader, b, done, 0)
	return false
}

// remoteRead reads from the first live replica, retrying while every replica
// is transiently dead.
func (fs *FileSystem) remoteRead(reader string, b *Block, done func(), probes int) {
	for _, d := range b.Replicas {
		if !d.alive {
			continue
		}
		d := d
		d.Node.Disk().Read(b.Size, true, func() {
			fs.fab.StartFlow(d.Node.ID, reader, b.Size, done)
		})
		return
	}
	if len(b.Replicas) == 0 {
		panic(fmt.Sprintf("hdfs: no live replica of %v", b.ID))
	}
	if probes >= maxReadProbes {
		return // abandoned: the caller's timeout machinery takes over
	}
	fs.fab.Engine().After(readProbeInterval, func() {
		fs.remoteRead(reader, b, done, probes+1)
	})
}

// FailNode marks a datanode dead: its replicas are lost, and every block it
// held is re-replicated from a surviving replica onto a fresh node (HDFS's
// recovery path). done receives the number of blocks re-replicated. Blocks
// whose only replica lived on d stay under-replicated (data loss), which
// CheckInvariants reports.
func (fs *FileSystem) FailNode(d *DataNode, done func(reReplicated int)) {
	if !d.alive {
		panic("hdfs: failing a dead datanode")
	}
	d.alive = false

	type job struct {
		b    *Block
		from *DataNode
		to   *DataNode
	}
	var jobs []job
	// Deterministic file order (map iteration would perturb placement).
	for _, name := range fs.Files() {
		f := fs.files[name]
		for _, b := range f.Blocks {
			held := false
			var survivors []*DataNode
			for _, r := range b.Replicas {
				if r == d {
					held = true
				} else {
					survivors = append(survivors, r)
				}
			}
			if !held {
				continue
			}
			// The dead node's replica is gone.
			b.Replicas = survivors
			var live []*DataNode
			for _, r := range survivors {
				if r.alive {
					live = append(live, r)
				}
			}
			if len(live) == 0 {
				continue // data loss; nothing to copy from
			}
			// Choose a live target not already holding the block.
			var target *DataNode
			for _, i := range fs.rnd.Perm(len(fs.nodes)) {
				cand := fs.nodes[i]
				if cand.alive && !cand.blocks[b.ID] {
					target = cand
					break
				}
			}
			if target == nil {
				continue
			}
			b.Replicas = append(b.Replicas, target)
			jobs = append(jobs, job{b: b, from: live[0], to: target})
		}
	}
	// Lost replicas no longer occupy the dead node's storage accounting.
	d.blocks = make(map[BlockID]bool)
	d.used = 0
	if len(jobs) == 0 {
		if done != nil {
			done(0)
		}
		return
	}
	remaining := len(jobs)
	for _, j := range jobs {
		j := j
		j.from.Node.Disk().Read(j.b.Size, true, func() {
			fs.fab.StartFlow(j.from.Node.ID, j.to.Node.ID, j.b.Size, func() {
				j.to.Node.Disk().Write(j.b.Size, true, func() {
					j.to.blocks[j.b.ID] = true
					j.to.used += j.b.Size
					remaining--
					if remaining == 0 && done != nil {
						done(len(jobs))
					}
				})
			})
		})
	}
}

// CheckInvariants verifies metadata consistency: every block has between 1
// and Replication live replicas on distinct nodes, and datanode byte
// accounting matches block sizes. It returns an error describing the first
// violation.
func (fs *FileSystem) CheckInvariants() error {
	expected := make(map[*DataNode]units.Bytes)
	for _, f := range fs.files {
		for _, b := range f.Blocks {
			seen := make(map[*DataNode]bool)
			live := 0
			for _, r := range b.Replicas {
				if seen[r] {
					return fmt.Errorf("hdfs: duplicate replica of %v", b.ID)
				}
				seen[r] = true
				if r.alive {
					live++
				}
				if !r.blocks[b.ID] {
					return fmt.Errorf("hdfs: replica map missing %v", b.ID)
				}
				expected[r] += b.Size
			}
			if live == 0 {
				return fmt.Errorf("hdfs: block %v has no live replica", b.ID)
			}
			if len(b.Replicas) > fs.Replication+1 {
				return fmt.Errorf("hdfs: block %v over-replicated", b.ID)
			}
		}
	}
	for _, d := range fs.nodes {
		if d.used != expected[d] {
			return fmt.Errorf("hdfs: datanode %s accounts %v, blocks sum to %v",
				d.Node.ID, d.used, expected[d])
		}
	}
	return nil
}
