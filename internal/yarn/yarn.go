// Package yarn models Hadoop YARN as configured in §5.2: a ResourceManager
// that grants containers against per-node memory/vcore capacities via
// heartbeat-driven allocation, NodeManagers on every slave, and container
// launch overheads (JVM spin-up) that differ sharply between platforms.
// The paper's key operational finding is reproduced structurally: an
// Edison node cannot host the ResourceManager/NameNode (insufficient RAM),
// so the Edison cluster runs a hybrid with a Dell master.
package yarn

import (
	"fmt"
	"sort"

	"edisim/internal/hw"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// NodeResources is the nameplate capacity a NodeManager offers (§5.2:
// 600 MB / 2 vcores on Edison, 12 GB / 12 vcores on Dell).
type NodeResources struct {
	MemoryMB int
	VCores   int
}

// ContainerRequest asks for one container of the given size.
type ContainerRequest struct {
	MemoryMB int
	VCores   int
	// PreferredNodes lists nodes whose local data make them better hosts
	// (HDFS locality); the scheduler tries them first.
	PreferredNodes []*NodeManager
	// Priority orders pending requests: higher first, FIFO within equal
	// priorities. MapReduce AMs use it to let a few early reducers start
	// shuffling ahead of the queued map backlog.
	Priority int
}

// Container is a granted allocation on a node.
type Container struct {
	Node *NodeManager
	Req  ContainerRequest

	released bool
}

// NodeManager tracks one slave's available resources.
type NodeManager struct {
	Node *hw.Node

	capacity NodeResources
	usedMem  int
	usedVC   int

	// unusable excludes the node from placement — crashed, unreachable or
	// blacklisted by an application master. Already-granted containers are
	// the application's to clean up (as in YARN, where the RM only learns of
	// their fate from heartbeats).
	unusable bool
}

// Usable reports whether the scheduler may place containers here.
func (nm *NodeManager) Usable() bool { return !nm.unusable }

// Available reports free resources.
func (nm *NodeManager) Available() NodeResources {
	return NodeResources{MemoryMB: nm.capacity.MemoryMB - nm.usedMem, VCores: nm.capacity.VCores - nm.usedVC}
}

// Capacity reports configured resources.
func (nm *NodeManager) Capacity() NodeResources { return nm.capacity }

func (nm *NodeManager) fits(r ContainerRequest) bool {
	return nm.capacity.MemoryMB-nm.usedMem >= r.MemoryMB && nm.capacity.VCores-nm.usedVC >= r.VCores
}

// ResourceManager grants containers over the slave set.
type ResourceManager struct {
	eng *sim.Engine

	// Master is the node hosting the RM + namenode (a Dell server in every
	// paper configuration; see §5.2).
	Master *hw.Node

	nodes   []*NodeManager
	pending []*pendingReq

	// HeartbeatInterval is the NM→RM heartbeat period gating allocation
	// (Hadoop default 1 s).
	HeartbeatInterval float64
	// GrantsPerHeartbeat caps how many containers the RM hands out per
	// heartbeat round, modeling RM scheduling throughput.
	GrantsPerHeartbeat int
	// ContainerStartup is the platform-dependent JVM launch time added
	// before a granted container begins useful work.
	ContainerStartup func(n *hw.Node) float64

	granted int64
	ticking bool
}

type pendingReq struct {
	req    ContainerRequest
	done   func(*Container)
	waited int // heartbeat rounds spent waiting for a data-local node
}

// delayRounds is how many heartbeat rounds a request with locality
// preferences waits for a preferred node before accepting any node (delay
// scheduling; this is how both clusters reach ≈95% data-local maps, §5.2).
const delayRounds = 4

// MasterMemoryMB is what namenode+RM consume on the master — far beyond an
// Edison node's 1 GB (§5.2: "a single Edison node cannot fulfill
// resource-intensive tasks").
const MasterMemoryMB = 8 * 1024

// ErrMasterTooSmall reports that the chosen master cannot host RM+namenode.
var ErrMasterTooSmall = fmt.Errorf("yarn: master node lacks memory for ResourceManager+NameNode (needs %d MB)", MasterMemoryMB)

// NewResourceManager builds an RM on master over the given slaves. It
// fails with ErrMasterTooSmall when the master cannot hold the daemons,
// reproducing the paper's failed Edison-master experiments.
func NewResourceManager(eng *sim.Engine, master *hw.Node, slaves []*hw.Node, res func(n *hw.Node) NodeResources) (*ResourceManager, error) {
	if err := master.AllocMem(units.Bytes(MasterMemoryMB) * units.MB); err != nil {
		return nil, ErrMasterTooSmall
	}
	rm := &ResourceManager{
		eng:                eng,
		Master:             master,
		HeartbeatInterval:  1.0,
		GrantsPerHeartbeat: 24,
		ContainerStartup:   DefaultContainerStartup,
	}
	for _, s := range slaves {
		nm := &NodeManager{Node: s, capacity: res(s)}
		rm.nodes = append(rm.nodes, nm)
	}
	return rm, nil
}

// DefaultResources returns the node platform's NodeManager capacity from
// the hw catalog (§5.2 for the baseline pair). Ad-hoc specs outside the
// catalog fall back to a sensor-class-vs-server heuristic on clock speed.
func DefaultResources(n *hw.Node) NodeResources {
	if p := hw.PlatformForSpec(n.Spec.Name); p != nil {
		return NodeResources{MemoryMB: p.Hadoop.NodeMemoryMB, VCores: p.Hadoop.VCores}
	}
	if n.Spec.CPU.Clock < 1000 {
		return NodeResources{MemoryMB: 600, VCores: 2}
	}
	return NodeResources{MemoryMB: 12 * 1024, VCores: 12}
}

// DefaultContainerStartup returns the node platform's JVM + container
// localization time from the hw catalog: the paper's traces show ≈20 s of
// ramp on the brawny cluster and ≈45 s (2.3×) on the micro cluster before
// CPU rises.
func DefaultContainerStartup(n *hw.Node) float64 {
	if p := hw.PlatformForSpec(n.Spec.Name); p != nil {
		return p.Hadoop.ContainerStartup
	}
	if n.Spec.CPU.Clock < 1000 {
		return 12.0
	}
	return 2.5
}

// Nodes returns the NodeManagers.
func (rm *ResourceManager) Nodes() []*NodeManager { return rm.nodes }

// Granted reports the total containers granted.
func (rm *ResourceManager) Granted() int64 { return rm.granted }

// Request queues a container request; done runs (after the heartbeat
// allocation delay and JVM startup) with the granted container.
func (rm *ResourceManager) Request(req ContainerRequest, done func(*Container)) {
	rm.pending = append(rm.pending, &pendingReq{req: req, done: done})
	rm.ensureTicking()
}

func (rm *ResourceManager) ensureTicking() {
	if rm.ticking {
		return
	}
	rm.ticking = true
	rm.eng.After(rm.HeartbeatInterval, rm.tick)
}

// tick is one heartbeat round: grant up to GrantsPerHeartbeat pending
// requests onto nodes with room, preferring data-local nodes. Requests are
// served by priority (stable within a class, preserving FIFO).
func (rm *ResourceManager) tick() {
	rm.ticking = false
	grants := 0
	sort.SliceStable(rm.pending, func(i, j int) bool {
		return rm.pending[i].req.Priority > rm.pending[j].req.Priority
	})
	var still []*pendingReq
	for _, p := range rm.pending {
		if grants >= rm.GrantsPerHeartbeat {
			still = append(still, p)
			continue
		}
		nm := rm.place(p.req, p.waited >= delayRounds)
		if nm == nil {
			p.waited++
			still = append(still, p)
			continue
		}
		grants++
		rm.granted++
		nm.usedMem += p.req.MemoryMB
		nm.usedVC += p.req.VCores
		c := &Container{Node: nm, Req: p.req}
		startup := rm.ContainerStartup(nm.Node)
		p := p
		rm.eng.After(startup, func() { p.done(c) })
	}
	rm.pending = still
	if len(rm.pending) > 0 {
		rm.ensureTicking()
	}
}

// place chooses a node for the request: preferred (data-local) first; any
// fitting node only once the request has waited out its delay-scheduling
// rounds (or has no preference).
func (rm *ResourceManager) place(req ContainerRequest, anyNode bool) *NodeManager {
	for _, nm := range req.PreferredNodes {
		if !nm.unusable && nm.fits(req) {
			return nm
		}
	}
	if len(req.PreferredNodes) > 0 && !anyNode {
		return nil
	}
	var best *NodeManager
	for _, nm := range rm.nodes {
		if nm.unusable || !nm.fits(req) {
			continue
		}
		if best == nil || nm.Available().MemoryMB > best.Available().MemoryMB {
			best = nm
		}
	}
	return best
}

// Release returns a container's resources; the next heartbeat can reuse
// them. Releasing twice panics (it is always an accounting bug).
func (rm *ResourceManager) Release(c *Container) {
	if c.released {
		panic("yarn: double release of container")
	}
	c.released = true
	c.Node.usedMem -= c.Req.MemoryMB
	c.Node.usedVC -= c.Req.VCores
	if len(rm.pending) > 0 {
		rm.ensureTicking()
	}
}

// SetNodeUsable includes or excludes a node from container placement
// (failure detection and blacklisting). Unknown nodes are ignored. Toggling
// usability never touches granted containers or queued requests; a request
// that can no longer be placed simply keeps waiting for the next heartbeat.
func (rm *ResourceManager) SetNodeUsable(n *hw.Node, usable bool) {
	if nm := rm.NodeManagerOf(n); nm != nil {
		nm.unusable = !usable
	}
}

// NodeManagerOf finds the NodeManager for a given hardware node.
func (rm *ResourceManager) NodeManagerOf(n *hw.Node) *NodeManager {
	for _, nm := range rm.nodes {
		if nm.Node == n {
			return nm
		}
	}
	return nil
}
