package yarn

import (
	"testing"

	"edisim/internal/hw"
	"edisim/internal/sim"
)

func testRM(t *testing.T, slaves int) (*sim.Engine, *ResourceManager, []*hw.Node) {
	t.Helper()
	eng := sim.NewEngine()
	master := hw.NewNode(eng, hw.DellR620Spec(), "master")
	nodes := make([]*hw.Node, slaves)
	for i := range nodes {
		nodes[i] = hw.NewNode(eng, hw.EdisonSpec(), "e"+string(rune('0'+i)))
	}
	rm, err := NewResourceManager(eng, master, nodes, DefaultResources)
	if err != nil {
		t.Fatal(err)
	}
	return eng, rm, nodes
}

func TestEdisonMasterRejected(t *testing.T) {
	eng := sim.NewEngine()
	master := hw.NewNode(eng, hw.EdisonSpec(), "em")
	_, err := NewResourceManager(eng, master, nil, DefaultResources)
	if err != ErrMasterTooSmall {
		t.Fatalf("got %v, want ErrMasterTooSmall (the paper's failed micro-master setup)", err)
	}
}

func TestDefaultResourcesMatchPaper(t *testing.T) {
	eng := sim.NewEngine()
	e := DefaultResources(hw.NewNode(eng, hw.EdisonSpec(), "e"))
	d := DefaultResources(hw.NewNode(eng, hw.DellR620Spec(), "d"))
	if e.MemoryMB != 600 || e.VCores != 2 {
		t.Fatalf("micro resources %+v, want 600MB/2vc (§5.2)", e)
	}
	if d.MemoryMB != 12*1024 || d.VCores != 12 {
		t.Fatalf("Dell resources %+v, want 12GB/12vc (§5.2)", d)
	}
}

func TestGrantAfterHeartbeat(t *testing.T) {
	eng, rm, _ := testRM(t, 2)
	var grantedAt sim.Time
	rm.Request(ContainerRequest{MemoryMB: 150}, func(c *Container) { grantedAt = eng.Now() })
	eng.Run()
	// ≥ one heartbeat (1 s) plus Edison container startup.
	if grantedAt < 1 {
		t.Fatalf("granted at %v, want >= heartbeat interval", grantedAt)
	}
	if rm.Granted() != 1 {
		t.Fatalf("granted count %d", rm.Granted())
	}
}

func TestMemoryCapacityEnforced(t *testing.T) {
	eng, rm, _ := testRM(t, 1) // one Edison: 600 MB
	granted := 0
	for i := 0; i < 5; i++ {
		rm.Request(ContainerRequest{MemoryMB: 150}, func(c *Container) { granted++ })
	}
	eng.RunUntil(30)
	// 600/150 = 4 fit; the 5th waits forever (no releases).
	if granted != 4 {
		t.Fatalf("granted %d containers on a 600MB node, want 4", granted)
	}
}

func TestReleaseUnblocksPending(t *testing.T) {
	eng, rm, _ := testRM(t, 1)
	var first *Container
	got := 0
	rm.Request(ContainerRequest{MemoryMB: 600}, func(c *Container) { first = c; got++ })
	rm.Request(ContainerRequest{MemoryMB: 600}, func(c *Container) { got++ })
	eng.RunUntil(20)
	if got != 1 {
		t.Fatalf("got %d grants before release, want 1", got)
	}
	rm.Release(first)
	eng.Run()
	if got != 2 {
		t.Fatalf("got %d grants after release, want 2", got)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	eng, rm, _ := testRM(t, 1)
	var c *Container
	rm.Request(ContainerRequest{MemoryMB: 100}, func(got *Container) { c = got })
	eng.Run()
	rm.Release(c)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	rm.Release(c)
}

func TestLocalityPreferenceHonored(t *testing.T) {
	eng, rm, nodes := testRM(t, 3)
	preferred := rm.NodeManagerOf(nodes[2])
	var got *Container
	rm.Request(ContainerRequest{MemoryMB: 150, PreferredNodes: []*NodeManager{preferred}},
		func(c *Container) { got = c })
	eng.Run()
	if got.Node != preferred {
		t.Fatalf("container placed on %s, want preferred %s", got.Node.Node.ID, preferred.Node.ID)
	}
}

func TestDelaySchedulingFallsBack(t *testing.T) {
	eng, rm, nodes := testRM(t, 2)
	// Fill the preferred node completely.
	full := rm.NodeManagerOf(nodes[0])
	var blocker *Container
	rm.Request(ContainerRequest{MemoryMB: 600, PreferredNodes: []*NodeManager{full}},
		func(c *Container) { blocker = c })
	eng.RunUntil(20) // heartbeat + Edison container startup (12 s)
	if blocker == nil || blocker.Node != full {
		t.Fatal("setup failed")
	}
	// This request prefers the full node but must eventually land elsewhere.
	requestAt := eng.Now()
	var fallback *Container
	var grantedAt sim.Time
	rm.Request(ContainerRequest{MemoryMB: 150, PreferredNodes: []*NodeManager{full}},
		func(c *Container) { fallback = c; grantedAt = eng.Now() })
	eng.RunUntil(requestAt + 60)
	if fallback == nil {
		t.Fatal("request never fell back to a non-preferred node")
	}
	if fallback.Node == full {
		t.Fatal("landed on the full node?")
	}
	// It must have waited out the delay-scheduling rounds first.
	if grantedAt < requestAt+Time(delayRounds) {
		t.Fatalf("fell back at %v, before delay rounds elapsed", grantedAt)
	}
}

// Time aliases sim.Time for test readability.
type Time = sim.Time

func TestGrantsPerHeartbeatThrottles(t *testing.T) {
	eng, rm, _ := testRM(t, 3) // 3 Edisons: 12 × 150MB slots
	rm.GrantsPerHeartbeat = 2
	times := make([]sim.Time, 0, 6)
	for i := 0; i < 6; i++ {
		rm.Request(ContainerRequest{MemoryMB: 150}, func(c *Container) {
			times = append(times, eng.Now())
		})
	}
	eng.Run()
	if len(times) != 6 {
		t.Fatalf("granted %d, want 6", len(times))
	}
	// With 2 grants per 1 s heartbeat, grants span ≥ 2 s.
	if span := times[5] - times[0]; span < 2 {
		t.Fatalf("grant span %v, want >= 2 heartbeats", span)
	}
}

func TestNodeManagerAccounting(t *testing.T) {
	eng, rm, nodes := testRM(t, 1)
	nm := rm.NodeManagerOf(nodes[0])
	var c *Container
	rm.Request(ContainerRequest{MemoryMB: 200, VCores: 1}, func(got *Container) { c = got })
	eng.Run()
	if nm.Available().MemoryMB != 400 || nm.Available().VCores != 1 {
		t.Fatalf("available %+v after grant", nm.Available())
	}
	rm.Release(c)
	if nm.Available().MemoryMB != 600 || nm.Available().VCores != 2 {
		t.Fatalf("available %+v after release", nm.Available())
	}
}
