// Package units defines the physical quantities used throughout edisim:
// data sizes, data rates, clock rates, power and energy. Keeping them as
// distinct named types catches unit mix-ups at compile time and gives every
// quantity a uniform, human-readable String form in reports.
package units

import "fmt"

// Bytes is a data size in bytes.
type Bytes int64

// Common data sizes.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// String renders the size with a binary-prefix unit, e.g. "1.5MB".
func (b Bytes) String() string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// BytesPerSec is a data rate in bytes per second.
type BytesPerSec float64

// Common data rates. Network rates follow the decimal convention used on
// datasheets (100 Mbps = 1e8 bit/s), storage rates the binary one.
const (
	KBps BytesPerSec = 1 << 10
	MBps BytesPerSec = 1 << 20
	GBps BytesPerSec = 1 << 30
)

// Mbps converts a decimal megabit-per-second figure (as printed on a NIC
// datasheet) to bytes per second.
func Mbps(v float64) BytesPerSec { return BytesPerSec(v * 1e6 / 8) }

// Gbps converts a decimal gigabit-per-second figure to bytes per second.
func Gbps(v float64) BytesPerSec { return Mbps(v * 1000) }

// String renders the rate in the most natural unit, e.g. "94.8Mbit/s".
func (r BytesPerSec) String() string {
	bits := float64(r) * 8
	switch {
	case bits >= 1e9:
		return fmt.Sprintf("%.2fGbit/s", bits/1e9)
	case bits >= 1e6:
		return fmt.Sprintf("%.1fMbit/s", bits/1e6)
	case bits >= 1e3:
		return fmt.Sprintf("%.1fKbit/s", bits/1e3)
	}
	return fmt.Sprintf("%.0fbit/s", bits)
}

// Seconds reports how long transferring b bytes takes at rate r.
// A non-positive rate yields +Inf-free, caller-friendly 0 only for b==0;
// callers must not pass r<=0 for b>0 (guarded by panic to catch bugs early).
func (r BytesPerSec) Seconds(b Bytes) float64 {
	if b == 0 {
		return 0
	}
	if r <= 0 {
		panic("units: transfer over non-positive rate")
	}
	return float64(b) / float64(r)
}

// MHz is a clock rate in megahertz.
type MHz float64

// String renders the clock rate, e.g. "500MHz" or "2.0GHz".
func (m MHz) String() string {
	if m >= 1000 {
		return fmt.Sprintf("%.1fGHz", float64(m)/1000)
	}
	return fmt.Sprintf("%.0fMHz", float64(m))
}

// Watts is instantaneous power draw.
type Watts float64

// String renders the power, e.g. "58.8W".
func (w Watts) String() string { return fmt.Sprintf("%.2fW", float64(w)) }

// Joules is accumulated energy.
type Joules float64

// String renders the energy, e.g. "17670J" or "43.4kJ".
func (j Joules) String() string {
	if j >= 10_000 {
		return fmt.Sprintf("%.1fkJ", float64(j)/1000)
	}
	return fmt.Sprintf("%.1fJ", float64(j))
}

// KWh converts the energy to kilowatt-hours (for TCO electricity pricing).
func (j Joules) KWh() float64 { return float64(j) / 3.6e6 }

// DMIPS is Dhrystone MIPS, the paper's integer-CPU capacity unit (§4.1).
type DMIPS float64

// String renders the capacity, e.g. "632.3 DMIPS".
func (d DMIPS) String() string { return fmt.Sprintf("%.1f DMIPS", float64(d)) }
