package units

import (
	"math"
	"testing"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{2 * KB, "2.00KB"},
		{3 * MB, "3.00MB"},
		{GB + GB/2, "1.50GB"},
		{2 * TB, "2.00TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMbpsConversion(t *testing.T) {
	if got := float64(Mbps(100)); got != 100e6/8 {
		t.Fatalf("Mbps(100) = %g bytes/s", got)
	}
	if got := float64(Gbps(1)); got != 1e9/8 {
		t.Fatalf("Gbps(1) = %g bytes/s", got)
	}
}

func TestRateSeconds(t *testing.T) {
	r := Mbps(100) // 12.5 MB/s decimal
	if got := r.Seconds(Bytes(12.5e6)); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("transfer time %g, want 1.0", got)
	}
	if got := r.Seconds(0); got != 0 {
		t.Fatalf("zero-byte transfer %g, want 0", got)
	}
}

func TestRateSecondsPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero rate")
		}
	}()
	BytesPerSec(0).Seconds(1)
}

func TestRateString(t *testing.T) {
	if got := Mbps(94.8).String(); got != "94.8Mbit/s" {
		t.Fatalf("rate string %q", got)
	}
	if got := Gbps(1).String(); got != "1.00Gbit/s" {
		t.Fatalf("rate string %q", got)
	}
}

func TestMHzString(t *testing.T) {
	if got := MHz(500).String(); got != "500MHz" {
		t.Fatalf("%q", got)
	}
	if got := MHz(2000).String(); got != "2.0GHz" {
		t.Fatalf("%q", got)
	}
}

func TestJoulesKWh(t *testing.T) {
	if got := Joules(3.6e6).KWh(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("3.6MJ = %g kWh, want 1", got)
	}
}
