package faults

import (
	"math"
	"strings"
	"testing"

	"edisim/internal/hw"
	"edisim/internal/sim"
)

func TestValidateTable(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	ok := Event{Kind: NodeCrash, At: 1, Duration: 10, Role: "web"}
	cases := []struct {
		name    string
		plan    *Plan
		wantErr string // substring; "" means valid
	}{
		{"nil plan", nil, ""},
		{"empty plan", &Plan{}, ""},
		{"good crash", &Plan{Events: []Event{ok}}, ""},
		{"good straggler", &Plan{Events: []Event{{Kind: Straggler, At: 0, Factor: 0.5, Role: "slave"}}}, ""},
		{"good jitter", &Plan{Events: []Event{ok}, Jitter: 2}, ""},
		{"unknown kind", &Plan{Events: []Event{{Kind: "meteor_strike", Role: "web"}}}, "unknown kind"},
		{"nan at", &Plan{Events: []Event{{Kind: NodeCrash, At: nan, Role: "web"}}}, "time"},
		{"negative at", &Plan{Events: []Event{{Kind: NodeCrash, At: -1, Role: "web"}}}, "time"},
		{"inf duration", &Plan{Events: []Event{{Kind: NodeCrash, Duration: inf, Role: "web"}}}, "duration"},
		{"negative duration", &Plan{Events: []Event{{Kind: NodeCrash, Duration: -5, Role: "web"}}}, "duration"},
		{"nan jitter", &Plan{Events: []Event{ok}, Jitter: nan}, "jitter"},
		{"negative jitter", &Plan{Events: []Event{ok}, Jitter: -1}, "jitter"},
		{"straggler zero factor", &Plan{Events: []Event{{Kind: Straggler, Role: "slave"}}}, "factor"},
		{"straggler negative factor", &Plan{Events: []Event{{Kind: Straggler, Factor: -0.5, Role: "slave"}}}, "factor"},
		{"degrade nan factor", &Plan{Events: []Event{{Kind: LinkDegrade, Factor: nan, Role: "slave"}}}, "factor"},
		{"crash ignores factor", &Plan{Events: []Event{{Kind: NodeCrash, Factor: -1, Role: "web"}}}, ""},
		{"empty role", &Plan{Events: []Event{{Kind: LinkCut}}}, "empty role"},
		{"negative index", &Plan{Events: []Event{{Kind: NodeCrash, Role: "web", Index: -1}}}, "negative index"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

func TestFilterAndRoles(t *testing.T) {
	p := &Plan{
		Jitter: 3,
		Events: []Event{
			{Kind: NodeCrash, At: 1, Role: "web"},
			{Kind: NodeCrash, At: 2, Role: "slave"},
			{Kind: Straggler, At: 3, Factor: 0.5, Role: "web"},
			{Kind: LinkCut, At: 4, Role: "master"},
		},
	}
	got := p.Roles()
	want := []string{"master", "slave", "web"}
	if len(got) != len(want) {
		t.Fatalf("Roles() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Roles() = %v, want %v", got, want)
		}
	}

	sub := p.Filter("web")
	if len(sub.Events) != 2 || sub.Events[0].At != 1 || sub.Events[1].At != 3 {
		t.Fatalf("Filter(web) = %+v, want the two web events in order", sub.Events)
	}
	if sub.Jitter != 3 {
		t.Fatalf("Filter dropped jitter: %g", sub.Jitter)
	}
	if s := p.Filter("nope"); !s.Empty() {
		t.Fatalf("Filter(nope) = %+v, want empty", s.Events)
	}
	var nilPlan *Plan
	if s := nilPlan.Filter("web"); !s.Empty() {
		t.Fatal("nil.Filter should be empty")
	}
	if r := nilPlan.Roles(); r != nil {
		t.Fatalf("nil.Roles() = %v, want nil", r)
	}
}

func TestRollingCrashes(t *testing.T) {
	p := RollingCrashes("web", 3, 10, 5, 4)
	if err := p.Validate(); err != nil {
		t.Fatalf("RollingCrashes plan invalid: %v", err)
	}
	if len(p.Events) != 3 {
		t.Fatalf("%d events, want 3", len(p.Events))
	}
	for i, e := range p.Events {
		wantAt := 10 + float64(i)*5
		if e.Kind != NodeCrash || e.At != wantAt || e.Duration != 4 || e.Role != "web" || e.Index != i {
			t.Fatalf("event %d = %+v, want crash at %g for 4 s on web[%d]", i, e, wantAt, i)
		}
	}
}

func TestScheduleCrashAndReboot(t *testing.T) {
	eng := sim.NewEngine()
	n := hw.NewNode(eng, hw.EdisonSpec(), "e0")
	plan := &Plan{Events: []Event{
		{Kind: NodeCrash, At: 1, Duration: 2, Role: "web"},
	}}
	Schedule(eng, plan, 42, map[string][]Target{"web": {{Node: n}}})
	var downAt, upAt bool
	eng.After(1.5, func() { downAt = !n.Up() })
	eng.After(3.5, func() { upAt = n.Up() })
	eng.Run()
	if !downAt || !upAt {
		t.Fatalf("node down@1.5=%v up@3.5=%v, want both true", downAt, upAt)
	}
}

func TestScheduleStraggler(t *testing.T) {
	eng := sim.NewEngine()
	n := hw.NewNode(eng, hw.EdisonSpec(), "e0")
	plan := &Plan{Events: []Event{
		{Kind: Straggler, At: 1, Duration: 2, Factor: 0.25, Role: "slave"},
	}}
	Schedule(eng, plan, 42, map[string][]Target{"slave": {{Node: n}}})
	var during, after float64
	eng.After(2, func() { during = n.SlowFactor() })
	eng.After(4, func() { after = n.SlowFactor() })
	eng.Run()
	if during != 0.25 || after != 1 {
		t.Fatalf("slow factor during=%g after=%g, want 0.25 then 1", during, after)
	}
}

func TestScheduleJitterIsSeedDeterministic(t *testing.T) {
	// Same seed → same jittered crash time; different seed → (almost surely)
	// a different one.
	crashAt := func(seed int64) sim.Time {
		eng := sim.NewEngine()
		n := hw.NewNode(eng, hw.EdisonSpec(), "e0")
		plan := &Plan{
			Jitter: 5,
			Events: []Event{{Kind: NodeCrash, At: 1, Role: "web"}},
		}
		Schedule(eng, plan, seed, map[string][]Target{"web": {{Node: n}}})
		var at sim.Time
		prev := true
		var tick func()
		tick = func() {
			if prev && !n.Up() {
				at = eng.Now()
				return
			}
			prev = n.Up()
			eng.After(0.01, tick)
		}
		eng.After(0, tick)
		eng.Run()
		return at
	}
	a, b, c := crashAt(7), crashAt(7), crashAt(8)
	if a != b {
		t.Fatalf("same seed gave different crash times: %v vs %v", a, b)
	}
	if a == c {
		t.Fatalf("seeds 7 and 8 gave the identical jitter %v; derivation looks seed-independent", a)
	}
}

func TestScheduleUnknownRolePanics(t *testing.T) {
	eng := sim.NewEngine()
	n := hw.NewNode(eng, hw.EdisonSpec(), "e0")
	plan := &Plan{Events: []Event{{Kind: NodeCrash, Role: "ghost"}}}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Schedule against an unknown role did not panic")
		}
	}()
	Schedule(eng, plan, 1, map[string][]Target{"web": {{Node: n}}})
}

func TestScheduleEmptyRolePanics(t *testing.T) {
	eng := sim.NewEngine()
	plan := &Plan{Events: []Event{{Kind: NodeCrash, Role: "web"}}}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Schedule against an empty role did not panic")
		}
	}()
	Schedule(eng, plan, 1, map[string][]Target{"web": {}})
}

func TestScheduleLinkEventWithoutFabricPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := hw.NewNode(eng, hw.EdisonSpec(), "e0")
	plan := &Plan{Events: []Event{{Kind: LinkCut, Role: "web"}}}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("link event against a fabric-less target did not panic")
		}
	}()
	Schedule(eng, plan, 1, map[string][]Target{"web": {{Node: n}}})
}

func TestScheduleNilPlanIsNoOp(t *testing.T) {
	eng := sim.NewEngine()
	Schedule(eng, nil, 1, nil)
	eng.Run()
	if eng.Now() != 0 {
		t.Fatalf("nil plan advanced the clock to %v", eng.Now())
	}
}
