// Package faults is edisim's deterministic fault-injection subsystem: a
// Plan is a declarative schedule of failure events — node crashes and
// reboots, straggler slowdowns, link cuts and degradations — that Schedule
// compiles into ordinary simulation events against the run's hardware. The
// schedule is a pure function of the plan, the injection seed and the target
// roster, so a faulty run is exactly as reproducible as a healthy one:
// bit-identical output for any worker count, and replayable from a seed.
//
// Faults only break things; recovery lives with the victims. A crash kills
// the node's in-flight CPU tasks and disk operations and cuts its links
// (in-flight transfers are lost without callbacks), so whatever timeout,
// retry or re-execution machinery the upper layer has — web client retries,
// MapReduce task re-attempts, HDFS replica failover — is what carries the
// workload through, exactly as on real hardware.
package faults

import (
	"fmt"
	"math"
	"sort"

	"edisim/internal/hw"
	"edisim/internal/netsim"
	"edisim/internal/rng"
	"edisim/internal/sim"
)

// Kind names a class of injected fault.
type Kind string

// The fault kinds a Plan can schedule.
const (
	// NodeCrash powers the target node off at At: in-flight CPU tasks and
	// disk operations are dropped without callbacks, its network links are
	// cut (active transfers lost) and power falls to zero. With a positive
	// Duration the node reboots (empty) at At+Duration; with Duration 0 it
	// stays down for the rest of the run.
	NodeCrash Kind = "node_crash"
	// Straggler rescales the target node's CPU speed and disk rate to
	// Factor × nominal at At (Factor < 1 slows it), restoring nominal speed
	// at At+Duration (or never, with Duration 0).
	Straggler Kind = "straggler"
	// LinkCut severs every network link adjacent to the target node at At —
	// active flows crossing them are aborted, messages dropped — and splices
	// them back at At+Duration (or never, with Duration 0). The node itself
	// keeps computing.
	LinkCut Kind = "link_cut"
	// LinkDegrade rescales the capacity of every link adjacent to the
	// target node to Factor × nameplate (0 < Factor) at At, restoring full
	// capacity at At+Duration (or never, with Duration 0).
	LinkDegrade Kind = "link_degrade"
)

// needsFactor reports whether the kind uses the Factor field.
func (k Kind) needsFactor() bool { return k == Straggler || k == LinkDegrade }

// valid reports whether the kind is one of the declared constants.
func (k Kind) valid() bool {
	switch k {
	case NodeCrash, Straggler, LinkCut, LinkDegrade:
		return true
	}
	return false
}

// Event is one scheduled fault: at time At (seconds into the run, optionally
// jittered — see Plan.Jitter), the fault lands on the Index-th target of the
// named Role, and is undone Duration seconds later (0 = permanent).
type Event struct {
	Kind     Kind
	At       float64 // injection time, seconds into the run
	Duration float64 // seconds until recovery; 0 = never recovers
	Factor   float64 // speed/capacity scale for Straggler and LinkDegrade
	Role     string  // target roster key, e.g. "slave", "web", "cache"
	Index    int     // target within the role, reduced modulo the roster size
}

// Plan is a reproducible fault schedule. The zero value (and nil) is the
// healthy run: scheduling it is a no-op and costs nothing.
type Plan struct {
	Events []Event
	// Jitter perturbs every event's At by a uniform seed-derived offset in
	// [0, Jitter) seconds, so repeated experiments at different seeds
	// explore different failure phasings while one seed stays exactly
	// reproducible. 0 (the default) keeps the literal schedule.
	Jitter float64
}

// Empty reports whether the plan schedules nothing (nil-safe).
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// finite rejects the silent-zero/NaN hazards on duration-like knobs.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks every event for the silent-failure hazards: non-finite or
// negative times and durations, non-positive or non-finite factors where one
// is needed, empty roles and unknown kinds. A nil plan is valid.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if !finite(p.Jitter) || p.Jitter < 0 {
		return fmt.Errorf("faults: jitter %g must be finite and non-negative", p.Jitter)
	}
	for i, e := range p.Events {
		if !e.Kind.valid() {
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
		if !finite(e.At) || e.At < 0 {
			return fmt.Errorf("faults: event %d (%s): time %g must be finite and non-negative", i, e.Kind, e.At)
		}
		if !finite(e.Duration) || e.Duration < 0 {
			return fmt.Errorf("faults: event %d (%s): duration %g must be finite and non-negative", i, e.Kind, e.Duration)
		}
		if e.Kind.needsFactor() && (!finite(e.Factor) || e.Factor <= 0) {
			return fmt.Errorf("faults: event %d (%s): factor %g must be finite and positive", i, e.Kind, e.Factor)
		}
		if e.Role == "" {
			return fmt.Errorf("faults: event %d (%s): empty role", i, e.Kind)
		}
		if e.Index < 0 {
			return fmt.Errorf("faults: event %d (%s): negative index %d", i, e.Kind, e.Index)
		}
	}
	return nil
}

// Filter returns the sub-plan containing only events against the given
// roles, preserving order and jitter. Experiments that run one plan against
// several independent testbeds (a web tier and a Hadoop cluster, say) use it
// to hand each testbed the events its roster can resolve; an event whose
// role exists nowhere is still a configuration bug, but that check belongs
// to the caller who sees every roster.
func (p *Plan) Filter(roles ...string) *Plan {
	if p.Empty() {
		return nil
	}
	keep := make(map[string]bool, len(roles))
	for _, r := range roles {
		keep[r] = true
	}
	out := &Plan{Jitter: p.Jitter}
	for _, e := range p.Events {
		if keep[e.Role] {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Roles lists the distinct roles the plan attacks, sorted (nil-safe).
func (p *Plan) Roles() []string {
	if p.Empty() {
		return nil
	}
	seen := map[string]bool{}
	for _, e := range p.Events {
		seen[e.Role] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Target is one attackable machine: the node, and the fabric its links live
// in (nil for a node with no modeled network, which restricts it to
// NodeCrash and Straggler events).
type Target struct {
	Node *hw.Node
	Fab  *netsim.Fabric
}

// crash takes the machine down: compute and storage first, then the links,
// so transfers in flight toward the node die with it.
func (t Target) crash() {
	t.Node.Crash()
	if t.Fab != nil {
		t.Fab.SetVertexLinks(t.Node.ID, 0)
	}
}

// restore reboots the machine and splices its links back.
func (t Target) restore() {
	t.Node.Restore()
	if t.Fab != nil {
		t.Fab.SetVertexLinks(t.Node.ID, 1)
	}
}

// Schedule compiles the plan into engine events against the given roster —
// role name → targets in a deterministic order (for cluster roles, rack
// order). It must be called before the run starts, with the engine clock at
// the run's origin; event times are relative to now. The seed drives the
// plan's jitter only; with Jitter 0 the schedule is literal and the seed is
// unused. Unknown roles and empty rosters panic: a plan attacking machines
// that do not exist is a configuration bug, not a quiet no-op.
func Schedule(eng *sim.Engine, plan *Plan, seed int64, roster map[string][]Target) {
	if plan.Empty() {
		return
	}
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed).Derive("faults/jitter")
	for i, e := range plan.Events {
		ts, ok := roster[e.Role]
		if !ok {
			known := make([]string, 0, len(roster))
			for r := range roster {
				known = append(known, r)
			}
			sort.Strings(known)
			panic(fmt.Sprintf("faults: event %d targets unknown role %q (roster: %v)", i, e.Role, known))
		}
		if len(ts) == 0 {
			panic(fmt.Sprintf("faults: event %d targets empty role %q", i, e.Role))
		}
		t := ts[e.Index%len(ts)]
		at := e.At
		if plan.Jitter > 0 {
			at += src.Uniform(0, plan.Jitter)
		}
		needsFab := e.Kind == LinkCut || e.Kind == LinkDegrade
		if needsFab && t.Fab == nil {
			panic(fmt.Sprintf("faults: event %d (%s) targets %s which has no fabric", i, e.Kind, t.Node.ID))
		}
		switch e.Kind {
		case NodeCrash:
			eng.After(at, t.crash)
			if e.Duration > 0 {
				eng.After(at+e.Duration, t.restore)
			}
		case Straggler:
			factor := e.Factor
			eng.After(at, func() { t.Node.SetSlowFactor(factor) })
			if e.Duration > 0 {
				eng.After(at+e.Duration, func() { t.Node.SetSlowFactor(1) })
			}
		case LinkCut:
			eng.After(at, func() { t.Fab.SetVertexLinks(t.Node.ID, 0) })
			if e.Duration > 0 {
				eng.After(at+e.Duration, func() { t.Fab.SetVertexLinks(t.Node.ID, 1) })
			}
		case LinkDegrade:
			factor := e.Factor
			eng.After(at, func() { t.Fab.SetVertexLinks(t.Node.ID, factor) })
			if e.Duration > 0 {
				eng.After(at+e.Duration, func() { t.Fab.SetVertexLinks(t.Node.ID, 1) })
			}
		}
	}
}

// RollingCrashes builds a plan that crashes count distinct targets of the
// role one after another — target i goes down at start + i×gap and reboots
// downtime seconds later — the classic rolling-failure availability drill.
func RollingCrashes(role string, count int, start, gap, downtime float64) *Plan {
	p := &Plan{}
	for i := 0; i < count; i++ {
		p.Events = append(p.Events, Event{
			Kind:     NodeCrash,
			At:       start + float64(i)*gap,
			Duration: downtime,
			Role:     role,
			Index:    i,
		})
	}
	return p
}
