package jobs

import (
	"fmt"
	"strconv"
	"strings"

	"edisim/internal/hw"
	"edisim/internal/mapred"
	"edisim/internal/units"
)

// Input geometry from §5.2: wordcount reads 200 files totaling 1 GB;
// logcount reads 500 log files totaling 1 GB; terasort sorts 10 GB in
// 64 MB blocks (168 input splits).
const (
	WordcountFiles = 200
	WordcountBytes = 1 * units.GB
	LogcountFiles  = 500
	LogcountBytes  = 1 * units.GB
	TerasortBytes  = 10 * units.GB
	PiSamples      = 10e9
)

// InputFiles names the HDFS input files for a job with the given count.
func InputFiles(job string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/input/%s/part-%05d", job, i)
	}
	return out
}

// --- Wordcount -------------------------------------------------------------

// WordcountMap splits a line into words and emits <word,1>.
func WordcountMap(record string, emit func(k, v string)) {
	for _, w := range strings.Fields(record) {
		emit(w, "1")
	}
}

// SumReduce adds up integer values — the reducer (and combiner) for both
// wordcount and logcount.
func SumReduce(key string, values []string, emit func(k, v string)) {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			panic(fmt.Sprintf("jobs: non-numeric count %q for %q", v, key))
		}
		sum += n
	}
	emit(key, strconv.Itoa(sum))
}

// Wordcount is the original example: 200 small files, one map container
// per file, no combiner, no input combining (§5.2.1). Container sizes and
// cost rates come from the platform's catalog entry.
func Wordcount(reduces int, p *hw.Platform) *mapred.JobDef {
	h := p.Hadoop
	return &mapred.JobDef{
		Name:           "wordcount",
		Inputs:         InputFiles("wordcount", WordcountFiles),
		NumReduces:     reduces,
		UseCombiner:    false,
		MapMemoryMB:    h.SmallMapMemoryMB,
		ReduceMemoryMB: h.ReduceMemoryMB,
		AMMemoryMB:     h.AMMemoryMB,
		Cost:           costFor("wordcount", p),
		Map:            WordcountMap,
		Reduce:         SumReduce,
	}
}

// Wordcount2 adds CombineFileInputFormat (splits capped at the platform's
// CombineSplit, one per vcore) and a combiner (§5.2.1 "optimized
// wordcount").
func Wordcount2(reduces int, p *hw.Platform) *mapred.JobDef {
	j := Wordcount(reduces, p)
	j.Name = "wordcount2"
	j.CombineInput = true
	j.UseCombiner = true
	j.MapMemoryMB = p.Hadoop.LargeMapMemoryMB
	j.MaxSplitSize = p.Hadoop.CombineSplit
	j.Cost = costFor("wordcount2", p)
	return j
}

// --- Logcount ----------------------------------------------------------------

// LogcountMap extracts <"date level", 1> from a Hadoop log line, e.g.
// <"2016-02-01 INFO", 1> (§5.2.2).
func LogcountMap(record string, emit func(k, v string)) {
	fields := strings.Fields(record)
	if len(fields) < 3 {
		return
	}
	date := fields[0]
	level := fields[2]
	switch level {
	case "INFO", "WARN", "DEBUG", "ERROR", "FATAL", "TRACE":
		emit(date+" "+level, "1")
	}
}

// Logcount counts log entries per (date, level); the original ships a
// combiner but does not combine input files.
func Logcount(reduces int, p *hw.Platform) *mapred.JobDef {
	h := p.Hadoop
	return &mapred.JobDef{
		Name:           "logcount",
		Inputs:         InputFiles("logcount", LogcountFiles),
		NumReduces:     reduces,
		UseCombiner:    true, // "does set the Combiner class" (§5.2.2)
		MapMemoryMB:    h.SmallMapMemoryMB,
		ReduceMemoryMB: h.ReduceMemoryMB,
		AMMemoryMB:     h.AMMemoryMB,
		Cost:           costFor("logcount", p),
		Map:            LogcountMap,
		Reduce:         SumReduce,
	}
}

// Logcount2 additionally combines the 500 small inputs into one split per
// vcore (§5.2.2).
func Logcount2(reduces int, p *hw.Platform) *mapred.JobDef {
	j := Logcount(reduces, p)
	j.Name = "logcount2"
	j.CombineInput = true
	j.MapMemoryMB = p.Hadoop.LargeMapMemoryMB
	j.MaxSplitSize = p.Hadoop.CombineSplit
	j.Cost = costFor("logcount2", p)
	return j
}

// --- Pi estimation -----------------------------------------------------------

// PiMap consumes one "offset numSamples" record and emits inside/outside
// counts from a quasi-random (Halton-sequence) point set, exactly like the
// Hadoop example's QuasiMonteCarlo mapper.
func PiMap(record string, emit func(k, v string)) {
	parts := strings.Fields(record)
	if len(parts) != 2 {
		panic(fmt.Sprintf("jobs: malformed pi record %q", record))
	}
	offset, err1 := strconv.ParseInt(parts[0], 10, 64)
	n, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		panic(fmt.Sprintf("jobs: malformed pi record %q", record))
	}
	var inside, outside int64
	for i := int64(0); i < n; i++ {
		x := halton(offset+i, 2) - 0.5
		y := halton(offset+i, 3) - 0.5
		if x*x+y*y <= 0.25 {
			inside++
		} else {
			outside++
		}
	}
	emit("inside", strconv.FormatInt(inside, 10))
	emit("outside", strconv.FormatInt(outside, 10))
}

// halton returns element i of the Halton low-discrepancy sequence in the
// given base.
func halton(i int64, base int64) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// PiEstimate folds a pi LocalRun output into the π estimate.
func PiEstimate(out []mapred.KV) float64 {
	var inside, total int64
	for _, kv := range out {
		n, err := strconv.ParseInt(kv.Value, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("jobs: bad pi output %v", kv))
		}
		total += n
		if kv.Key == "inside" {
			inside += n
		}
	}
	if total == 0 {
		return 0
	}
	return 4 * float64(inside) / float64(total)
}

// PiReduce sums partial counts per key.
func PiReduce(key string, values []string, emit func(k, v string)) {
	SumReduce(key, values, emit)
}

// Pi is the computationally-intensive job: 10 billion samples over the
// platform's full-scale task count (70 on the full Edison cluster, 24 on
// Dell), one reducer (§5.2.3).
func Pi(p *hw.Platform) *mapred.JobDef {
	h := p.Hadoop
	maps := h.FullScaleTasks
	return &mapred.JobDef{
		Name:           "pi",
		Inputs:         InputFiles("pi", maps),
		NumReduces:     1,
		UseCombiner:    false,
		MapMemoryMB:    h.LargeMapMemoryMB,
		ReduceMemoryMB: h.ReduceMemoryMB,
		AMMemoryMB:     h.AMMemoryMB,
		Cost:           piCost(maps, p),
		Map:            PiMap,
		Reduce:         PiReduce,
	}
}

// --- Terasort ----------------------------------------------------------------

// TerasortMap emits <key, record> with the 10-byte key prefix.
func TerasortMap(record string, emit func(k, v string)) {
	if len(record) < 10 {
		return
	}
	emit(record[:10], record)
}

// TerasortReduce emits records in key order (values under one key keep
// their arrival order, which suffices for sortedness by key).
func TerasortReduce(key string, values []string, emit func(k, v string)) {
	for _, v := range values {
		emit(key, v)
	}
}

// Terasort sorts 10 GB staged by teragen: 64 MB blocks on EVERY cluster
// (the paper equalizes block size for fairness), one reducer per vcore of
// the full-scale cluster (70 on Edison, 24 on Dell).
func Terasort(p *hw.Platform) *mapred.JobDef {
	h := p.Hadoop
	return &mapred.JobDef{
		Name:           "terasort",
		Inputs:         InputFiles("terasort", 1), // one big teragen output file
		NumReduces:     h.FullScaleTasks,
		UseCombiner:    false,
		MapMemoryMB:    h.LargeMapMemoryMB,
		ReduceMemoryMB: h.ReduceMemoryMB,
		AMMemoryMB:     h.AMMemoryMB,
		Cost:           costFor("terasort", p),
		Map:            TerasortMap,
		Reduce:         TerasortReduce,
	}
}
