package jobs

import (
	"fmt"
	"strconv"
	"strings"

	"edisim/internal/mapred"
	"edisim/internal/units"
)

// Platform name keys used by the cost models.
const (
	edison = "Edison"
	dell   = "DellR620"
)

// Input geometry from §5.2: wordcount reads 200 files totaling 1 GB;
// logcount reads 500 log files totaling 1 GB; terasort sorts 10 GB in
// 64 MB blocks (168 input splits).
const (
	WordcountFiles = 200
	WordcountBytes = 1 * units.GB
	LogcountFiles  = 500
	LogcountBytes  = 1 * units.GB
	TerasortBytes  = 10 * units.GB
	PiSamples      = 10e9
)

// InputFiles names the HDFS input files for a job with the given count.
func InputFiles(job string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/input/%s/part-%05d", job, i)
	}
	return out
}

// --- Wordcount -------------------------------------------------------------

// WordcountMap splits a line into words and emits <word,1>.
func WordcountMap(record string, emit func(k, v string)) {
	for _, w := range strings.Fields(record) {
		emit(w, "1")
	}
}

// SumReduce adds up integer values — the reducer (and combiner) for both
// wordcount and logcount.
func SumReduce(key string, values []string, emit func(k, v string)) {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			panic(fmt.Sprintf("jobs: non-numeric count %q for %q", v, key))
		}
		sum += n
	}
	emit(key, strconv.Itoa(sum))
}

// Wordcount is the original example: 200 small files, one map container
// per file, no combiner, no input combining (§5.2.1).
func Wordcount(edisonReduces, dellReduces int, platform string) *mapred.JobDef {
	reduces := edisonReduces
	mapMem, redMem, amMem := 150, 300, 100
	if platform == dell {
		reduces = dellReduces
		mapMem, redMem, amMem = 500, 1024, 500
	}
	return &mapred.JobDef{
		Name:           "wordcount",
		Inputs:         InputFiles("wordcount", WordcountFiles),
		NumReduces:     reduces,
		UseCombiner:    false,
		MapMemoryMB:    mapMem,
		ReduceMemoryMB: redMem,
		AMMemoryMB:     amMem,
		Cost:           wordcountCost,
		Map:            WordcountMap,
		Reduce:         SumReduce,
	}
}

// Wordcount2 adds CombineFileInputFormat (15 MB Edison / 44 MB Dell splits,
// one per vcore) and a combiner (§5.2.1 "optimized wordcount").
func Wordcount2(edisonReduces, dellReduces int, platform string) *mapred.JobDef {
	j := Wordcount(edisonReduces, dellReduces, platform)
	j.Name = "wordcount2"
	j.CombineInput = true
	j.UseCombiner = true
	j.MapMemoryMB = 300
	j.MaxSplitSize = 15 * units.MB
	if platform == dell {
		j.MapMemoryMB = 1024
		j.MaxSplitSize = 44 * units.MB
	}
	j.Cost = wordcount2Cost
	return j
}

// --- Logcount ----------------------------------------------------------------

// LogcountMap extracts <"date level", 1> from a Hadoop log line, e.g.
// <"2016-02-01 INFO", 1> (§5.2.2).
func LogcountMap(record string, emit func(k, v string)) {
	fields := strings.Fields(record)
	if len(fields) < 3 {
		return
	}
	date := fields[0]
	level := fields[2]
	switch level {
	case "INFO", "WARN", "DEBUG", "ERROR", "FATAL", "TRACE":
		emit(date+" "+level, "1")
	}
}

// Logcount counts log entries per (date, level); the original ships a
// combiner but does not combine input files.
func Logcount(edisonReduces, dellReduces int, platform string) *mapred.JobDef {
	reduces := edisonReduces
	mapMem, redMem, amMem := 150, 300, 100
	if platform == dell {
		reduces = dellReduces
		mapMem, redMem, amMem = 500, 1024, 500
	}
	return &mapred.JobDef{
		Name:           "logcount",
		Inputs:         InputFiles("logcount", LogcountFiles),
		NumReduces:     reduces,
		UseCombiner:    true, // "does set the Combiner class" (§5.2.2)
		MapMemoryMB:    mapMem,
		ReduceMemoryMB: redMem,
		AMMemoryMB:     amMem,
		Cost:           logcountCost,
		Map:            LogcountMap,
		Reduce:         SumReduce,
	}
}

// Logcount2 additionally combines the 500 small inputs into one split per
// vcore (§5.2.2).
func Logcount2(edisonReduces, dellReduces int, platform string) *mapred.JobDef {
	j := Logcount(edisonReduces, dellReduces, platform)
	j.Name = "logcount2"
	j.CombineInput = true
	j.MapMemoryMB = 300
	j.MaxSplitSize = 15 * units.MB
	if platform == dell {
		j.MapMemoryMB = 1024
		j.MaxSplitSize = 44 * units.MB
	}
	j.Cost = logcount2Cost
	return j
}

// --- Pi estimation -----------------------------------------------------------

// PiMap consumes one "offset numSamples" record and emits inside/outside
// counts from a quasi-random (Halton-sequence) point set, exactly like the
// Hadoop example's QuasiMonteCarlo mapper.
func PiMap(record string, emit func(k, v string)) {
	parts := strings.Fields(record)
	if len(parts) != 2 {
		panic(fmt.Sprintf("jobs: malformed pi record %q", record))
	}
	offset, err1 := strconv.ParseInt(parts[0], 10, 64)
	n, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		panic(fmt.Sprintf("jobs: malformed pi record %q", record))
	}
	var inside, outside int64
	for i := int64(0); i < n; i++ {
		x := halton(offset+i, 2) - 0.5
		y := halton(offset+i, 3) - 0.5
		if x*x+y*y <= 0.25 {
			inside++
		} else {
			outside++
		}
	}
	emit("inside", strconv.FormatInt(inside, 10))
	emit("outside", strconv.FormatInt(outside, 10))
}

// halton returns element i of the Halton low-discrepancy sequence in the
// given base.
func halton(i int64, base int64) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// PiEstimate folds a pi LocalRun output into the π estimate.
func PiEstimate(out []mapred.KV) float64 {
	var inside, total int64
	for _, kv := range out {
		n, err := strconv.ParseInt(kv.Value, 10, 64)
		if err != nil {
			panic(fmt.Sprintf("jobs: bad pi output %v", kv))
		}
		total += n
		if kv.Key == "inside" {
			inside += n
		}
	}
	if total == 0 {
		return 0
	}
	return 4 * float64(inside) / float64(total)
}

// PiReduce sums partial counts per key.
func PiReduce(key string, values []string, emit func(k, v string)) {
	SumReduce(key, values, emit)
}

// Pi is the computationally-intensive job: 10 billion samples over 70
// Edison or 24 Dell map containers, one reducer (§5.2.3).
func Pi(platform string) *mapred.JobDef {
	maps, mapMem, redMem, amMem := 70, 300, 300, 100
	if platform == dell {
		maps, mapMem, redMem, amMem = 24, 1024, 1024, 500
	}
	return &mapred.JobDef{
		Name:           "pi",
		Inputs:         InputFiles("pi", maps),
		NumReduces:     1,
		UseCombiner:    false,
		MapMemoryMB:    mapMem,
		ReduceMemoryMB: redMem,
		AMMemoryMB:     amMem,
		Cost:           piCost(maps),
		Map:            PiMap,
		Reduce:         PiReduce,
	}
}

// --- Terasort ----------------------------------------------------------------

// TerasortMap emits <key, record> with the 10-byte key prefix.
func TerasortMap(record string, emit func(k, v string)) {
	if len(record) < 10 {
		return
	}
	emit(record[:10], record)
}

// TerasortReduce emits records in key order (values under one key keep
// their arrival order, which suffices for sortedness by key).
func TerasortReduce(key string, values []string, emit func(k, v string)) {
	for _, v := range values {
		emit(key, v)
	}
}

// Terasort sorts 10 GB staged by teragen: 64 MB blocks on BOTH clusters
// (the paper equalizes block size for fairness), 70 or 24 reducers.
func Terasort(platform string) *mapred.JobDef {
	reduces, mapMem, redMem, amMem := 70, 300, 300, 100
	if platform == dell {
		reduces, mapMem, redMem, amMem = 24, 1024, 1024, 500
	}
	return &mapred.JobDef{
		Name:           "terasort",
		Inputs:         InputFiles("terasort", 1), // one big teragen output file
		NumReduces:     reduces,
		UseCombiner:    false,
		MapMemoryMB:    mapMem,
		ReduceMemoryMB: redMem,
		AMMemoryMB:     amMem,
		Cost:           terasortCost,
		Map:            TerasortMap,
		Reduce:         TerasortReduce,
	}
}
