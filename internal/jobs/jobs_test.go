package jobs

import (
	"math"
	"sort"
	"strings"
	"testing"

	"edisim/internal/hw"
	"edisim/internal/mapred"
)

// microP is the baseline micro platform used across the functional tests
// (the cost model is irrelevant to LocalRun correctness).
func microP() *hw.Platform {
	m, _ := hw.BaselinePair()
	return m
}

func TestWordcountLocalCorrectness(t *testing.T) {
	job := Wordcount(4, microP())
	inputs := map[string][]string{
		"f1": GenerateTextLines(1, 50, 8),
		"f2": GenerateTextLines(2, 50, 8),
	}
	res, err := mapred.LocalRun(job, inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Reference count.
	want := map[string]int{}
	total := 0
	for _, lines := range inputs {
		for _, l := range lines {
			for _, w := range strings.Fields(l) {
				want[w]++
				total++
			}
		}
	}
	gotTotal := 0
	for _, kv := range res.Output() {
		n := atoi(t, kv.Value)
		if want[kv.Key] != n {
			t.Fatalf("count[%s] = %d, want %d", kv.Key, n, want[kv.Key])
		}
		gotTotal += n
	}
	if gotTotal != total {
		t.Fatalf("total words %d, want %d", gotTotal, total)
	}
}

func TestWordcount2MatchesWordcount(t *testing.T) {
	inputs := map[string][]string{
		"f1": GenerateTextLines(3, 40, 6),
		"f2": GenerateTextLines(4, 40, 6),
	}
	r1, err := mapred.LocalRun(Wordcount(4, microP()), inputs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mapred.LocalRun(Wordcount2(4, microP()), inputs)
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := r1.Output(), r2.Output()
	if len(o1) != len(o2) {
		t.Fatalf("optimized wordcount changed output size: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("optimized wordcount changed results at %d: %v vs %v", i, o1[i], o2[i])
		}
	}
}

func TestLogcountExtractsDateLevel(t *testing.T) {
	job := Logcount(2, microP())
	res, err := mapred.LocalRun(job, map[string][]string{
		"log": {
			"2016-02-01 10:00:00,123 INFO some.Class: message",
			"2016-02-01 11:00:00,456 INFO other.Class: message",
			"2016-02-02 09:00:00,789 ERROR bad.Class: oops",
			"garbage line",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range res.Output() {
		got[kv.Key] = kv.Value
	}
	if got["2016-02-01 INFO"] != "2" || got["2016-02-02 ERROR"] != "1" {
		t.Fatalf("logcount output %v", got)
	}
	if len(got) != 2 {
		t.Fatalf("unexpected keys: %v", got)
	}
}

func TestLogcountGeneratedInput(t *testing.T) {
	job := Logcount(4, microP())
	lines := GenerateLogLines(5, 500)
	res, err := mapred.LocalRun(job, map[string][]string{"l": lines})
	if err != nil {
		t.Fatal(err)
	}
	var sum int
	for _, kv := range res.Output() {
		if !strings.HasPrefix(kv.Key, "2016-02-") {
			t.Fatalf("bad key %q", kv.Key)
		}
		sum += atoi(t, kv.Value)
	}
	if sum != 500 {
		t.Fatalf("counted %d entries, want 500", sum)
	}
}

func TestPiEstimateConverges(t *testing.T) {
	job := Pi(microP())
	// 8 map tasks × 40k samples.
	inputs := map[string][]string{}
	for i := 0; i < 8; i++ {
		inputs[InputFiles("pi", 8)[i]] = []string{itoa(int64(i*40000)) + " 40000"}
	}
	res, err := mapred.LocalRun(job, inputs)
	if err != nil {
		t.Fatal(err)
	}
	pi := PiEstimate(res.Output())
	if math.Abs(pi-math.Pi) > 0.01 {
		t.Fatalf("pi estimate %v too far from π (Halton sequence should converge fast)", pi)
	}
}

func TestTerasortOutputSorted(t *testing.T) {
	job := Terasort(microP())
	recs := GenerateTeraRecords(6, 500)
	res, err := mapred.LocalRun(job, map[string][]string{"t": recs})
	if err != nil {
		t.Fatal(err)
	}
	// TeraValidate: concatenating partitions in key-range order must yield
	// a key-sorted sequence; with a hash partitioner we validate per
	// partition plus global multiset equality.
	var all []string
	for _, p := range res.Partitions {
		for i := 1; i < len(p); i++ {
			if p[i-1].Key > p[i].Key {
				t.Fatal("partition not sorted by key")
			}
		}
		for _, kv := range p {
			all = append(all, kv.Value)
		}
	}
	if len(all) != len(recs) {
		t.Fatalf("record count changed: %d vs %d", len(all), len(recs))
	}
	sort.Strings(all)
	want := append([]string(nil), recs...)
	sort.Strings(want)
	for i := range want {
		if all[i] != want[i] {
			t.Fatal("terasort lost or corrupted records")
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := GenerateTextLines(42, 10, 5)
	b := GenerateTextLines(42, 10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("text generator not deterministic")
		}
	}
	if GenerateLogLines(1, 5)[0] == GenerateLogLines(2, 5)[0] {
		t.Fatal("different seeds gave identical log lines")
	}
	if len(GenerateTeraRecords(1, 3)[0]) != TeraRecordLen {
		t.Fatalf("tera record length %d", len(GenerateTeraRecords(1, 3)[0]))
	}
}

func TestDefMaxSplitSizeScalesWithCluster(t *testing.T) {
	h35, err := NewHadoop(microP(), 35, microP().Hadoop.BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	h8, err := NewHadoop(microP(), 8, microP().Hadoop.BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	j35 := h35.Def("wordcount2")
	j8 := h8.Def("wordcount2")
	if j8.MaxSplitSize <= j35.MaxSplitSize {
		t.Fatalf("smaller cluster should use larger splits: %v vs %v (§5.3)",
			j8.MaxSplitSize, j35.MaxSplitSize)
	}
}

func TestRunSmallClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	r, err := Run("logcount2", microP(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Duration <= 0 || r.Energy <= 0 {
		t.Fatalf("bad result: %+v", r)
	}
	if r.LocalityFraction() < 0.2 {
		t.Fatalf("locality %.2f suspiciously low", r.LocalityFraction())
	}
}

func pair() (micro, brawny *hw.Platform) { return hw.BaselinePair() }

// TestMixedSlaveGroupsEndToEnd runs terasort on a hybrid Edison+Dell slave
// set: the heterogeneous cluster the paper's hybrid (Dell master over
// Edison slaves) stops short of. The run must complete, be deterministic
// for a fixed seed, and actually use per-platform task rates — adding one
// Dell slave to an Edison group must beat adding one more Edison.
func TestMixedSlaveGroupsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	micro, brawny := pair()
	mixed := []SlaveGroup{{Platform: micro, Nodes: 3}, {Platform: brawny, Nodes: 1}}
	r1, err := RunGroups("terasort", mixed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Duration <= 0 || r1.Energy <= 0 || r1.ReduceTasks <= 0 {
		t.Fatalf("bad mixed result: %+v", r1)
	}
	r2, err := RunGroups("terasort", mixed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Duration != r2.Duration || r1.Energy != r2.Energy {
		t.Fatalf("mixed run not deterministic: %v/%v vs %v/%v", r1.Duration, r1.Energy, r2.Duration, r2.Energy)
	}
	allMicro, err := RunGroups("terasort", []SlaveGroup{{Platform: micro, Nodes: 4}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Duration >= allMicro.Duration {
		t.Fatalf("swapping an Edison slave for a Dell did not speed terasort up: mixed %.0f s vs all-Edison %.0f s",
			r1.Duration, allMicro.Duration)
	}
}

// TestMixedGroupsResolvePerPlatformCosts checks the JobDef carries one rate
// model per slave platform, keyed so mapred resolves them per container
// node, and that a mixed deployment's reducer count sums vcores across
// groups.
func TestMixedGroupsResolvePerPlatformCosts(t *testing.T) {
	micro, brawny := pair()
	h, err := NewHadoopGroups([]SlaveGroup{{Platform: micro, Nodes: 2}, {Platform: brawny, Nodes: 1}},
		micro.Hadoop.BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	j := h.Def("wordcount")
	if len(j.PlatformCosts) != 2 {
		t.Fatalf("PlatformCosts has %d entries, want 2", len(j.PlatformCosts))
	}
	em, ok1 := j.PlatformCosts[micro.Spec.Name]
	dm, ok2 := j.PlatformCosts[brawny.Spec.Name]
	if !ok1 || !ok2 {
		t.Fatalf("PlatformCosts missing a platform: %v", j.PlatformCosts)
	}
	if em.MapMBps >= dm.MapMBps {
		t.Fatalf("micro map rate %v should be below brawny %v", em.MapMBps, dm.MapMBps)
	}
	wantReduces := micro.Hadoop.VCores*2 + brawny.Hadoop.VCores*1
	if j.NumReduces != wantReduces {
		t.Fatalf("mixed reducer count %d, want %d (vcores summed across groups)", j.NumReduces, wantReduces)
	}
	// Homogeneous deployments keep the flat model: no per-platform table.
	hh, err := NewHadoop(micro, 2, micro.Hadoop.BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if jj := hh.Def("wordcount"); jj.PlatformCosts != nil {
		t.Fatalf("homogeneous JobDef grew PlatformCosts: %v", jj.PlatformCosts)
	}
}

// TestSlaveGroupValidation pins the error paths: empty sets, nil platforms,
// non-positive node counts and duplicate groups must error, not panic.
func TestSlaveGroupValidation(t *testing.T) {
	micro, _ := pair()
	cases := []struct {
		name   string
		groups []SlaveGroup
		want   string
	}{
		{"empty", nil, "at least one"},
		{"nil platform", []SlaveGroup{{Platform: nil, Nodes: 2}}, "without a platform"},
		{"zero nodes", []SlaveGroup{{Platform: micro, Nodes: 0}}, "positive node count"},
		{"negative nodes", []SlaveGroup{{Platform: micro, Nodes: -3}}, "positive node count"},
		{"duplicate group", []SlaveGroup{{Platform: micro, Nodes: 2}, {Platform: micro, Nodes: 1}}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewHadoopGroups(tc.groups, microP().Hadoop.BlockSize, 1)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("non-numeric %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
