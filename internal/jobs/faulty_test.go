package jobs

import (
	"testing"

	"edisim/internal/faults"
	"edisim/internal/hw"
	"edisim/internal/mapred"
)

// TestTerasortSurvivesMidJobCrash is the batch half of the availability
// story: a slave crashing mid-job (and rebooting later) must degrade the
// run — longer duration, re-executed work — but the job must still complete
// before a generous deadline rather than deadlock.
func TestTerasortSurvivesMidJobCrash(t *testing.T) {
	micro, _ := hw.BaselinePair()
	groups := []SlaveGroup{{Platform: micro, Nodes: 8}}

	base, err := RunGroups("terasort", groups, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Completed {
		t.Fatal("baseline terasort did not complete")
	}

	plan := &faults.Plan{Events: []faults.Event{
		{Kind: faults.NodeCrash, At: 0.3 * base.Duration, Duration: 120, Role: "slave", Index: 2},
	}}
	ft := &mapred.FaultTolerance{TaskTimeout: base.Duration}
	run := func() *mapred.JobResult {
		r, err := RunGroupsFaulty("terasort", groups, 11, plan, ft, 20*base.Duration, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	faulty := run()
	if !faulty.Completed {
		t.Fatalf("faulty terasort did not complete: failed=%v reason=%q duration=%v",
			faulty.Failed, faulty.FailReason, faulty.Duration)
	}
	if faulty.Duration <= base.Duration {
		t.Fatalf("crash did not slow the job: faulty %.1fs vs baseline %.1fs", faulty.Duration, base.Duration)
	}
	if faulty.TaskRetries == 0 {
		t.Fatal("crash recovery reported no task retries")
	}

	// Bit-identical reproducibility of the faulty run.
	again := run()
	if faulty.Duration != again.Duration || faulty.Energy != again.Energy ||
		faulty.TaskRetries != again.TaskRetries || faulty.LostMapOutputs != again.LostMapOutputs {
		t.Fatalf("faulty run not reproducible: (%v,%v,%d,%d) vs (%v,%v,%d,%d)",
			faulty.Duration, faulty.Energy, faulty.TaskRetries, faulty.LostMapOutputs,
			again.Duration, again.Energy, again.TaskRetries, again.LostMapOutputs)
	}
}

// TestFaultToleranceNilIsIdentical pins the zero-cost guarantee at the jobs
// layer: the same deployment and job with FT disabled and no plan must
// produce exactly the baseline result.
func TestFaultToleranceNilIsIdentical(t *testing.T) {
	micro, _ := hw.BaselinePair()
	groups := []SlaveGroup{{Platform: micro, Nodes: 6}}
	a, err := RunGroups("wordcount2", groups, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGroupsFaulty("wordcount2", groups, 7, nil, nil, 1e9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Energy != b.Energy || a.ShuffledBytes != b.ShuffledBytes {
		t.Fatalf("empty fault plan changed the run: (%v,%v) vs (%v,%v)", a.Duration, a.Energy, b.Duration, b.Energy)
	}
}
