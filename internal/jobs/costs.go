package jobs

import (
	"fmt"

	"edisim/internal/hw"
	"edisim/internal/mapred"
)

// Cost models calibrated against Table 8 (35 Edison slaves vs 2 Dell
// slaves). The per-platform rates — MB per core-second and fixed task
// overheads — live in the hw platform catalog (hw.Platform.Hadoop.Jobs);
// this file holds the per-job data-shape ratios, which are properties of
// the workload itself, and assembles mapred.CostModels from the two.
//
// The paper's own data forces two non-obvious conclusions that the catalog
// rates encode:
//
//  1. Per-core map rates differ between the baseline platforms by only
//     ≈4–8×, far below the 18× Dhrystone gap — data-intensive Java tasks
//     are bound by object churn and I/O paths, not integer issue width
//     (this is the paper's core claim about data-intensive work).
//  2. Fixed per-task overheads (~tens of seconds on Edison, ~ten on Dell)
//     dominate small-file jobs; combining inputs removes most of them
//     (wordcount 310 s → wordcount2 182 s on Edison; 213 s → 66 s on Dell).

// jobShape is the platform-independent byte geometry of one workload.
type jobShape struct {
	OutputRatio       float64 // map-output bytes per input byte
	CombineRatio      float64 // map-output shrink when the combiner runs
	ReduceOutputRatio float64 // final-output bytes per shuffled byte
}

var jobShapes = map[string]jobShape{
	"wordcount":  {OutputRatio: 1.1, CombineRatio: 1.0, ReduceOutputRatio: 0.07},
	"wordcount2": {OutputRatio: 1.1, CombineRatio: 0.05, ReduceOutputRatio: 0.6},
	"logcount":   {OutputRatio: 0.25, CombineRatio: 0.002, ReduceOutputRatio: 0.5},
	"logcount2":  {OutputRatio: 0.25, CombineRatio: 0.002, ReduceOutputRatio: 0.5},
	"terasort":   {OutputRatio: 1.0, CombineRatio: 1.0, ReduceOutputRatio: 1.0},
	"pi":         {OutputRatio: 1e-6, CombineRatio: 1.0, ReduceOutputRatio: 1.0},
}

// costFor assembles the mapred cost model for a job on a platform from the
// catalog rates and the job's shape.
func costFor(job string, p *hw.Platform) mapred.CostModel {
	rates, ok := p.Hadoop.Jobs[job]
	if !ok {
		panic(fmt.Sprintf("jobs: platform %s has no calibration for %q", p.Name, job))
	}
	shape, ok := jobShapes[job]
	if !ok {
		panic(fmt.Sprintf("jobs: unknown job shape %q", job))
	}
	return mapred.CostModel{
		MapMBps:             rates.MapMBps,
		ReduceMBps:          rates.ReduceMBps,
		TaskOverheadSeconds: rates.TaskOverheadSeconds,
		OutputRatio:         shape.OutputRatio,
		CombineRatio:        shape.CombineRatio,
		ReduceOutputRatio:   shape.ReduceOutputRatio,
	}
}

// piCost returns the pi cost model: pure compute, negligible bytes. The
// per-map fixed seconds encode 10 billion samples split across the map
// count at the platform's measured per-core sampling rate (≈0.97 M/s on an
// Edison core vs ≈13 M/s on a Xeon E5 core — the FP gap exceeds the
// integer gap).
func piCost(maps int, p *hw.Platform) mapred.CostModel {
	if p.Hadoop.PiSamplesPerSec <= 0 {
		panic(fmt.Sprintf("jobs: platform %s has no pi sampling rate", p.Name))
	}
	c := costFor("pi", p)
	c.MapFixedSeconds = PiSamples / float64(maps) / p.Hadoop.PiSamplesPerSec
	return c
}
