package jobs

import "edisim/internal/mapred"

// Cost models calibrated against Table 8 (35 Edison slaves vs 2 Dell
// slaves). Rates are MB per core-second of the platform; the wall-clock
// slowdown from oversubscribed containers (4 maps on 2 Edison cores, 24 on
// ≈11 Dell core-equivalents) emerges from the processor-sharing CPU model,
// so these numbers are per-core throughputs, not per-container wall rates.
//
// The paper's own data forces two non-obvious conclusions that these
// constants encode:
//
//  1. Per-core map rates differ between the platforms by only ≈4–8×, far
//     below the 18× Dhrystone gap — data-intensive Java tasks are bound by
//     object churn and I/O paths, not integer issue width (this is the
//     paper's core claim about data-intensive work).
//  2. Fixed per-task overheads (~tens of seconds on Edison, ~ten on Dell)
//     dominate small-file jobs; combining inputs removes most of them
//     (wordcount 310 s → wordcount2 182 s on Edison; 213 s → 66 s on Dell).
var (
	wordcountCost = mapred.CostModel{
		MapMBps:             map[string]float64{edison: 0.30, dell: 2.2},
		ReduceMBps:          map[string]float64{edison: 0.24, dell: 1.5},
		OutputRatio:         1.1, // <word,1> records slightly outgrow the text
		CombineRatio:        1.0, // wordcount has no combiner
		ReduceOutputRatio:   0.07,
		TaskOverheadSeconds: map[string]float64{edison: 26, dell: 12},
	}

	wordcount2Cost = mapred.CostModel{
		// The combiner adds per-record work in the map...
		MapMBps:    map[string]float64{edison: 0.26, dell: 2.0},
		ReduceMBps: map[string]float64{edison: 0.40, dell: 2.0},
		// ...but shrinks map output to per-split word histograms.
		OutputRatio:         1.1,
		CombineRatio:        0.05,
		ReduceOutputRatio:   0.6,
		TaskOverheadSeconds: map[string]float64{edison: 24, dell: 10},
	}

	logcountCost = mapred.CostModel{
		// Much lighter map than wordcount: one key per line.
		MapMBps:             map[string]float64{edison: 0.70, dell: 4.5},
		ReduceMBps:          map[string]float64{edison: 0.50, dell: 4.0},
		OutputRatio:         0.25,
		CombineRatio:        0.002, // few (date,level) pairs per task
		ReduceOutputRatio:   0.5,
		TaskOverheadSeconds: map[string]float64{edison: 20, dell: 6.5},
	}

	logcount2Cost = mapred.CostModel{
		MapMBps:             map[string]float64{edison: 0.60, dell: 3.2},
		ReduceMBps:          map[string]float64{edison: 0.50, dell: 4.0},
		OutputRatio:         0.25,
		CombineRatio:        0.002,
		ReduceOutputRatio:   0.5,
		TaskOverheadSeconds: map[string]float64{edison: 16, dell: 10},
	}

	terasortCost = mapred.CostModel{
		// Terasort is memory/merge-bound (§5.2.4: ≈60% CPU, ≈95% memory).
		MapMBps:             map[string]float64{edison: 1.5, dell: 8.0},
		ReduceMBps:          map[string]float64{edison: 0.70, dell: 6.0},
		OutputRatio:         1.0, // sort keeps every byte
		CombineRatio:        1.0,
		ReduceOutputRatio:   1.0,
		TaskOverheadSeconds: map[string]float64{edison: 20, dell: 8},
	}
)

// piCost returns the pi cost model: pure compute, negligible bytes. The
// per-map fixed seconds encode 10 billion samples split across the map
// count at the measured per-core sampling rates (≈0.84 M/s on an Edison
// core vs ≈22 M/s on a Xeon core — the FP gap exceeds the integer gap).
func piCost(maps int) mapred.CostModel {
	samplesPerMap := PiSamples / float64(maps)
	return mapred.CostModel{
		MapFixedSeconds: map[string]float64{
			edison: samplesPerMap / 0.97e6,
			dell:   samplesPerMap / 13e6,
		},
		ReduceMBps:          map[string]float64{edison: 1, dell: 8},
		OutputRatio:         1e-6,
		CombineRatio:        1.0,
		ReduceOutputRatio:   1.0,
		TaskOverheadSeconds: map[string]float64{edison: 10, dell: 4},
	}
}
