package jobs

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/mapred"
	"edisim/internal/units"
)

// Hadoop configuration from §5.2: block size and replication are chosen so
// both clusters see ≈95% data-local maps; terasort equalizes block size.
const (
	EdisonBlockSize = 16 * units.MB
	DellBlockSize   = 64 * units.MB
	TeraBlockSize   = 64 * units.MB
	EdisonReplicas  = 2
	DellReplicas    = 1
)

// Hadoop is a ready-to-run deployment: cluster + staged inputs.
type Hadoop struct {
	*mapred.Cluster
	Platform string // "Edison" or "DellR620"
	Slaves   int
}

// NewEdisonHadoop builds the paper's hybrid deployment: one Dell master
// (namenode + ResourceManager) and n Edison slaves.
func NewEdisonHadoop(n int, blockSize units.Bytes, seed int64) (*Hadoop, error) {
	tb := cluster.New(cluster.Config{EdisonNodes: n, DellNodes: 1})
	c, err := mapred.NewCluster(tb.Eng, tb.Fab, tb.Dell[0], tb.Edison, blockSize, EdisonReplicas, seed)
	if err != nil {
		return nil, err
	}
	return &Hadoop{Cluster: c, Platform: edison, Slaves: n}, nil
}

// NewDellHadoop builds the Dell deployment: one Dell master plus n Dell
// slaves (the paper uses n = 1 or 2).
func NewDellHadoop(n int, blockSize units.Bytes, seed int64) (*Hadoop, error) {
	tb := cluster.New(cluster.Config{DellNodes: n + 1})
	c, err := mapred.NewCluster(tb.Eng, tb.Fab, tb.Dell[0], tb.Dell[1:], blockSize, DellReplicas, seed)
	if err != nil {
		return nil, err
	}
	return &Hadoop{Cluster: c, Platform: dell, Slaves: n}, nil
}

// Stage registers a job's input files in HDFS (the datasets pre-exist when
// the paper's jobs start).
func (h *Hadoop) Stage(job string) {
	switch job {
	case "wordcount", "wordcount2":
		per := units.Bytes(int64(WordcountBytes) / WordcountFiles)
		for _, name := range InputFiles("wordcount", WordcountFiles) {
			h.FS.CreateInstant(name, per)
		}
	case "logcount", "logcount2":
		per := units.Bytes(int64(LogcountBytes) / LogcountFiles)
		for _, name := range InputFiles("logcount", LogcountFiles) {
			h.FS.CreateInstant(name, per)
		}
	case "pi":
		maps := 70
		if h.Platform == dell {
			maps = 24
		}
		for _, name := range InputFiles("pi", maps) {
			h.FS.CreateInstant(name, 4*units.KB)
		}
	case "terasort":
		h.FS.CreateInstant(InputFiles("terasort", 1)[0], TerasortBytes)
	default:
		panic(fmt.Sprintf("jobs: unknown job %q", job))
	}
}

// Def builds the JobDef for this deployment's platform. Reducer counts
// follow §5.2: one per vcore (70 on the full Edison cluster, 24 on Dell),
// scaled with cluster size; pi uses a single reducer.
func (h *Hadoop) Def(job string) *mapred.JobDef {
	edisonReduces := 2 * h.Slaves
	dellReduces := 12 * h.Slaves
	var j *mapred.JobDef
	switch job {
	case "wordcount":
		j = Wordcount(edisonReduces, dellReduces, h.Platform)
	case "wordcount2":
		j = Wordcount2(edisonReduces, dellReduces, h.Platform)
	case "logcount":
		j = Logcount(edisonReduces, dellReduces, h.Platform)
	case "logcount2":
		j = Logcount2(edisonReduces, dellReduces, h.Platform)
	case "pi":
		j = Pi(h.Platform)
	case "terasort":
		j = Terasort(h.Platform)
	default:
		panic(fmt.Sprintf("jobs: unknown job %q", job))
	}
	if j.CombineInput {
		// The paper re-tunes split sizes at each cluster scale so every
		// vcore gets exactly one map container.
		slots := edisonReduces
		if h.Platform == dell {
			slots = dellReduces
		}
		total := int64(WordcountBytes)
		j.MaxSplitSize = units.Bytes(total/int64(slots) + 1)
	}
	return j
}

// BlockSizeFor reports the paper's block size for a job on a platform.
func BlockSizeFor(job, platform string) units.Bytes {
	if job == "terasort" {
		return TeraBlockSize
	}
	if platform == dell {
		return DellBlockSize
	}
	return EdisonBlockSize
}

// Names lists the six workloads in the paper's order.
func Names() []string {
	return []string{"wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"}
}

// Run stages and executes one named job on a fresh deployment, returning
// the result. This is the one-call path used by experiments and benches.
func Run(job, platform string, slaves int, seed int64) (*mapred.JobResult, error) {
	var h *Hadoop
	var err error
	if platform == edison {
		h, err = NewEdisonHadoop(slaves, BlockSizeFor(job, platform), seed)
	} else {
		h, err = NewDellHadoop(slaves, BlockSizeFor(job, platform), seed)
	}
	if err != nil {
		return nil, err
	}
	h.Stage(job)
	return h.Cluster.Run(h.Def(job))
}

// EdisonPlatform and DellPlatform name the platforms for callers outside
// this package.
const (
	EdisonPlatform = edison
	DellPlatform   = dell
)
