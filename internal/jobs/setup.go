package jobs

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/hw"
	"edisim/internal/mapred"
	"edisim/internal/units"
)

// Hadoop configuration from §5.2: block size and replication live in each
// platform's catalog entry, chosen so clusters see ≈95% data-local maps;
// terasort equalizes block size across platforms for fairness.
const TeraBlockSize = 64 * units.MB

// Hadoop is a ready-to-run deployment: cluster + staged inputs.
type Hadoop struct {
	*mapred.Cluster
	Platform *hw.Platform
	Slaves   int
}

// NewHadoop builds a Hadoop deployment of n slaves on platform p. When the
// platform's catalog entry names a master platform (micro servers cannot
// host namenode + ResourceManager, §5.2), one extra node of that platform
// is deployed as the master — the paper's hybrid configuration; otherwise
// the deployment is homogeneous with one extra node of p as master.
func NewHadoop(p *hw.Platform, n int, blockSize units.Bytes, seed int64) (*Hadoop, error) {
	var master *hw.Node
	var workers []*hw.Node
	if mp := p.Hadoop.MasterPlatform; mp != "" {
		mplat, ok := hw.LookupPlatform(mp)
		if !ok {
			panic(fmt.Sprintf("jobs: platform %s names unknown master platform %q", p.Name, mp))
		}
		tb := cluster.New(cluster.Config{Groups: []cluster.GroupConfig{{Platform: p, Nodes: n}, {Platform: mplat, Nodes: 1}}})
		master = tb.Nodes(mplat)[0]
		workers = tb.Nodes(p)
		c, err := mapred.NewCluster(tb.Eng, tb.Fab, master, workers, blockSize, p.Hadoop.Replicas, seed)
		if err != nil {
			return nil, err
		}
		return &Hadoop{Cluster: c, Platform: p, Slaves: n}, nil
	}
	tb := cluster.New(cluster.Config{Groups: []cluster.GroupConfig{{Platform: p, Nodes: n + 1}}})
	all := tb.Nodes(p)
	c, err := mapred.NewCluster(tb.Eng, tb.Fab, all[0], all[1:], blockSize, p.Hadoop.Replicas, seed)
	if err != nil {
		return nil, err
	}
	return &Hadoop{Cluster: c, Platform: p, Slaves: n}, nil
}

// Stage registers a job's input files in HDFS (the datasets pre-exist when
// the paper's jobs start).
func (h *Hadoop) Stage(job string) {
	switch job {
	case "wordcount", "wordcount2":
		per := units.Bytes(int64(WordcountBytes) / WordcountFiles)
		for _, name := range InputFiles("wordcount", WordcountFiles) {
			h.FS.CreateInstant(name, per)
		}
	case "logcount", "logcount2":
		per := units.Bytes(int64(LogcountBytes) / LogcountFiles)
		for _, name := range InputFiles("logcount", LogcountFiles) {
			h.FS.CreateInstant(name, per)
		}
	case "pi":
		for _, name := range InputFiles("pi", h.Platform.Hadoop.FullScaleTasks) {
			h.FS.CreateInstant(name, 4*units.KB)
		}
	case "terasort":
		h.FS.CreateInstant(InputFiles("terasort", 1)[0], TerasortBytes)
	default:
		panic(fmt.Sprintf("jobs: unknown job %q", job))
	}
}

// Def builds the JobDef for this deployment's platform. Reducer counts
// follow §5.2: one per vcore (70 on the full Edison cluster, 24 on Dell),
// scaled with cluster size; pi uses a single reducer.
func (h *Hadoop) Def(job string) *mapred.JobDef {
	reduces := h.Platform.Hadoop.VCores * h.Slaves
	var j *mapred.JobDef
	switch job {
	case "wordcount":
		j = Wordcount(reduces, h.Platform)
	case "wordcount2":
		j = Wordcount2(reduces, h.Platform)
	case "logcount":
		j = Logcount(reduces, h.Platform)
	case "logcount2":
		j = Logcount2(reduces, h.Platform)
	case "pi":
		j = Pi(h.Platform)
	case "terasort":
		j = Terasort(h.Platform)
	default:
		panic(fmt.Sprintf("jobs: unknown job %q", job))
	}
	if j.CombineInput {
		// The paper re-tunes split sizes at each cluster scale so every
		// vcore gets exactly one map container.
		total := int64(WordcountBytes)
		j.MaxSplitSize = units.Bytes(total/int64(reduces) + 1)
	}
	return j
}

// BlockSizeFor reports the paper's block size for a job on a platform.
func BlockSizeFor(job string, p *hw.Platform) units.Bytes {
	if job == "terasort" {
		return TeraBlockSize
	}
	return p.Hadoop.BlockSize
}

// Names lists the six workloads in the paper's order.
func Names() []string {
	return []string{"wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"}
}

// Run stages and executes one named job on a fresh deployment, returning
// the result. This is the one-call path used by experiments and benches.
func Run(job string, p *hw.Platform, slaves int, seed int64) (*mapred.JobResult, error) {
	h, err := NewHadoop(p, slaves, BlockSizeFor(job, p), seed)
	if err != nil {
		return nil, err
	}
	h.Stage(job)
	return h.Cluster.Run(h.Def(job))
}
