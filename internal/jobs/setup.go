package jobs

import (
	"fmt"

	"edisim/internal/cluster"
	"edisim/internal/faults"
	"edisim/internal/hw"
	"edisim/internal/mapred"
	"edisim/internal/sim"
	"edisim/internal/units"
)

// Hadoop configuration from §5.2: block size and replication live in each
// platform's catalog entry, chosen so clusters see ≈95% data-local maps;
// terasort equalizes block size across platforms for fairness.
const TeraBlockSize = 64 * units.MB

// SlaveGroup sizes one platform's share of a Hadoop slave set. A
// deployment built from several groups is the mixed-platform cluster the
// paper could not build (its hybrid stops at a Dell master over Edison
// slaves): YARN places containers against each node's own catalog
// capacity, and task rates resolve per slave platform.
type SlaveGroup struct {
	Platform *hw.Platform
	Nodes    int
}

// Hadoop is a ready-to-run deployment: cluster + staged inputs.
type Hadoop struct {
	*mapred.Cluster
	// Platform is the primary (first-group) platform: cluster-global job
	// tuning — block size, replication, container memory sizes, reducer
	// scaling — follows it, exactly as one mapred-site.xml governs a real
	// mixed cluster.
	Platform *hw.Platform
	// Slaves is the total worker count across all groups.
	Slaves int
	// Groups is the slave set; a single entry is the paper's homogeneous
	// deployment.
	Groups []SlaveGroup
}

// NewHadoop builds a homogeneous Hadoop deployment of n slaves on platform
// p — one-group shorthand for NewHadoopGroups.
func NewHadoop(p *hw.Platform, n int, blockSize units.Bytes, seed int64) (*Hadoop, error) {
	return NewHadoopGroups([]SlaveGroup{{Platform: p, Nodes: n}}, blockSize, seed)
}

// MasterGroupIndex reports which slave group's platform hosts the
// namenode + ResourceManager as one extra node of that group: the first
// group able to self-host (catalog MasterPlatform empty). -1 means no
// group can, and NewHadoopGroups deploys the first group's catalog-named
// master platform as its own extra group — the paper's hybrid. Exported so
// public-API validation sizes group caps against the same rule the builder
// uses.
func MasterGroupIndex(groups []SlaveGroup) int {
	for i, g := range groups {
		if g.Platform != nil && g.Platform.Hadoop.MasterPlatform == "" {
			return i
		}
	}
	return -1
}

// NewHadoopGroups builds a Hadoop deployment over a (possibly mixed) slave
// set. The master is the first group platform able to host namenode +
// ResourceManager (micro servers cannot, §5.2), deployed as one extra node
// of that platform; when no group platform can, the first group's catalog
// MasterPlatform hosts it — the paper's hybrid configuration. HDFS
// placement, YARN capacities and container startup times all resolve per
// node, so a hybrid Edison+Dell slave set schedules exactly like the real
// thing would.
func NewHadoopGroups(groups []SlaveGroup, blockSize units.Bytes, seed int64) (*Hadoop, error) {
	return NewHadoopGroupsEnergy(groups, blockSize, seed, hw.PowerLinear)
}

// NewHadoopGroupsEnergy is NewHadoopGroups with a node power model armed on
// every node of the deployment (slaves and master alike) — how the energy
// layer reaches Hadoop testbeds.
func NewHadoopGroupsEnergy(groups []SlaveGroup, blockSize units.Bytes, seed int64,
	energy hw.PowerModelKind) (*Hadoop, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("jobs: deployment needs at least one slave group")
	}
	seen := map[*hw.Platform]bool{}
	total := 0
	for _, g := range groups {
		if g.Platform == nil {
			return nil, fmt.Errorf("jobs: slave group without a platform")
		}
		if g.Nodes <= 0 {
			return nil, fmt.Errorf("jobs: slave group %s needs a positive node count (got %d)", g.Platform.Name, g.Nodes)
		}
		if seen[g.Platform] {
			return nil, fmt.Errorf("jobs: duplicate slave group for %s", g.Platform.Name)
		}
		seen[g.Platform] = true
		total += g.Nodes
	}

	// Master selection: the first self-hosting-capable group platform, or
	// the first group's catalog-named master platform (hybrid).
	selfIdx := MasterGroupIndex(groups)
	var masterPlat *hw.Platform
	if selfIdx >= 0 {
		masterPlat = groups[selfIdx].Platform
	} else {
		mp := groups[0].Platform.Hadoop.MasterPlatform
		found, ok := hw.LookupPlatform(mp)
		if !ok {
			panic(fmt.Sprintf("jobs: platform %s names unknown master platform %q", groups[0].Platform.Name, mp))
		}
		masterPlat = found
	}

	gcs := make([]cluster.GroupConfig, 0, len(groups)+1)
	for i, g := range groups {
		n := g.Nodes
		if i == selfIdx {
			n++ // the master shares its platform's group
		}
		gcs = append(gcs, cluster.GroupConfig{Platform: g.Platform, Nodes: n})
	}
	if selfIdx < 0 {
		gcs = append(gcs, cluster.GroupConfig{Platform: masterPlat, Nodes: 1})
	}
	tb := cluster.New(cluster.Config{Groups: gcs, Energy: energy})

	var master *hw.Node
	var workers []*hw.Node
	for i, g := range groups {
		ns := tb.Nodes(g.Platform)
		if i == selfIdx {
			master, ns = ns[0], ns[1:]
		}
		workers = append(workers, ns...)
	}
	if selfIdx < 0 {
		master = tb.Nodes(masterPlat)[0]
	}

	primary := groups[0].Platform
	c, err := mapred.NewCluster(tb.Eng, tb.Fab, master, workers, blockSize, primary.Hadoop.Replicas, seed)
	if err != nil {
		return nil, err
	}
	return &Hadoop{Cluster: c, Platform: primary, Slaves: total, Groups: groups}, nil
}

// Stage registers a job's input files in HDFS (the datasets pre-exist when
// the paper's jobs start).
func (h *Hadoop) Stage(job string) {
	switch job {
	case "wordcount", "wordcount2":
		per := units.Bytes(int64(WordcountBytes) / WordcountFiles)
		for _, name := range InputFiles("wordcount", WordcountFiles) {
			h.FS.CreateInstant(name, per)
		}
	case "logcount", "logcount2":
		per := units.Bytes(int64(LogcountBytes) / LogcountFiles)
		for _, name := range InputFiles("logcount", LogcountFiles) {
			h.FS.CreateInstant(name, per)
		}
	case "pi":
		for _, name := range InputFiles("pi", h.Platform.Hadoop.FullScaleTasks) {
			h.FS.CreateInstant(name, 4*units.KB)
		}
	case "terasort":
		h.FS.CreateInstant(InputFiles("terasort", 1)[0], TerasortBytes)
	default:
		panic(fmt.Sprintf("jobs: unknown job %q", job))
	}
}

// Def builds the JobDef for this deployment. Reducer counts follow §5.2:
// one per vcore (70 on the full Edison cluster, 24 on Dell), summed across
// mixed groups; pi uses a single reducer. On mixed slave sets the primary
// platform provides the cluster-global container sizes while map/reduce
// rates and task overheads attach per slave platform.
func (h *Hadoop) Def(job string) *mapred.JobDef {
	reduces := 0
	for _, g := range h.Groups {
		reduces += g.Platform.Hadoop.VCores * g.Nodes
	}
	var j *mapred.JobDef
	switch job {
	case "wordcount":
		j = Wordcount(reduces, h.Platform)
	case "wordcount2":
		j = Wordcount2(reduces, h.Platform)
	case "logcount":
		j = Logcount(reduces, h.Platform)
	case "logcount2":
		j = Logcount2(reduces, h.Platform)
	case "pi":
		j = Pi(h.Platform)
	case "terasort":
		j = Terasort(h.Platform)
	default:
		panic(fmt.Sprintf("jobs: unknown job %q", job))
	}
	if j.CombineInput {
		// The paper re-tunes split sizes at each cluster scale so every
		// vcore gets exactly one map container.
		total := int64(WordcountBytes)
		j.MaxSplitSize = units.Bytes(total/int64(reduces) + 1)
	}
	if len(h.Groups) > 1 {
		j.PlatformCosts = make(map[string]mapred.CostModel, len(h.Groups))
		for _, g := range h.Groups {
			if job == "pi" {
				j.PlatformCosts[g.Platform.Spec.Name] = piCost(len(j.Inputs), g.Platform)
				continue
			}
			j.PlatformCosts[g.Platform.Spec.Name] = costFor(job, g.Platform)
		}
	}
	return j
}

// BlockSizeFor reports the paper's block size for a job on a platform.
func BlockSizeFor(job string, p *hw.Platform) units.Bytes {
	if job == "terasort" {
		return TeraBlockSize
	}
	return p.Hadoop.BlockSize
}

// Names lists the six workloads in the paper's order.
func Names() []string {
	return []string{"wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"}
}

// Run stages and executes one named job on a fresh homogeneous deployment,
// returning the result. This is the one-call path used by experiments and
// benches.
func Run(job string, p *hw.Platform, slaves int, seed int64) (*mapred.JobResult, error) {
	return RunGroups(job, []SlaveGroup{{Platform: p, Nodes: slaves}}, seed)
}

// RunEnergy is Run with a node power model armed on the deployment.
func RunEnergy(job string, p *hw.Platform, slaves int, seed int64,
	energy hw.PowerModelKind) (*mapred.JobResult, error) {
	return RunGroupsEnergy(job, []SlaveGroup{{Platform: p, Nodes: slaves}}, seed, energy)
}

// RunGroups stages and executes one named job on a fresh deployment over a
// (possibly mixed-platform) slave set — the heterogeneous-cluster
// counterpart of Run. Job tuning follows the first group's platform.
func RunGroups(job string, groups []SlaveGroup, seed int64) (*mapred.JobResult, error) {
	return RunGroupsEnergy(job, groups, seed, hw.PowerLinear)
}

// RunGroupsEnergy is RunGroups with a node power model armed on the
// deployment's testbed (experiments thread core Config.Energy here).
func RunGroupsEnergy(job string, groups []SlaveGroup, seed int64,
	energy hw.PowerModelKind) (*mapred.JobResult, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("jobs: %s needs at least one slave group", job)
	}
	if groups[0].Platform == nil {
		return nil, fmt.Errorf("jobs: slave group without a platform")
	}
	h, err := NewHadoopGroupsEnergy(groups, BlockSizeFor(job, groups[0].Platform), seed, energy)
	if err != nil {
		return nil, err
	}
	h.Stage(job)
	return h.Cluster.Run(h.Def(job))
}

// FaultRoster maps the deployment's nodes to fault-plan roles: "slave" (the
// workers, in cluster order) and "master". Every target carries the fabric,
// so link faults against either role resolve too.
func (h *Hadoop) FaultRoster() map[string][]faults.Target {
	slaves := make([]faults.Target, len(h.Workers))
	for i, w := range h.Workers {
		slaves[i] = faults.Target{Node: w, Fab: h.Fab}
	}
	return map[string][]faults.Target{
		"slave":  slaves,
		"master": {{Node: h.Master, Fab: h.Fab}},
	}
}

// RunGroupsFaulty stages and executes one named job under an injected fault
// plan with the given recovery policy, cutting the run off at deadline
// simulated seconds (a job that cannot recover — say, fault tolerance
// disabled under a permanent crash — heartbeats forever, so the engine is
// bounded rather than drained). interrupt (optional) is polled by the engine
// for cooperative cancellation. The result always reports completion state:
// Failed with FailReason "deadline exceeded" when the deadline fired first.
func RunGroupsFaulty(job string, groups []SlaveGroup, seed int64, plan *faults.Plan,
	ft *mapred.FaultTolerance, deadline float64, interrupt func() bool) (*mapred.JobResult, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("jobs: %s needs at least one slave group", job)
	}
	if groups[0].Platform == nil {
		return nil, fmt.Errorf("jobs: slave group without a platform")
	}
	h, err := NewHadoopGroups(groups, BlockSizeFor(job, groups[0].Platform), seed)
	if err != nil {
		return nil, err
	}
	if interrupt != nil {
		h.Eng.SetInterrupt(interrupt)
	}
	h.Stage(job)
	def := h.Def(job)
	def.FT = ft
	faults.Schedule(h.Eng, plan, seed, h.FaultRoster())
	res, err := h.Cluster.Start(def, nil)
	if err != nil {
		return nil, err
	}
	h.Eng.RunUntil(sim.Time(deadline))
	if !res.Completed && !res.Failed {
		res.Failed = true
		res.FailReason = "deadline exceeded"
	}
	return res, nil
}
