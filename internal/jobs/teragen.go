package jobs

import (
	"fmt"

	"edisim/internal/mapred"
	"edisim/internal/units"
)

// The paper's terasort pipeline has three parts (§5.2.4): TeraGen writes
// the input, TeraSort sorts it, TeraValidate checks global order. Only the
// TeraSort stage is timed and compared, but the other stages exist here so
// the full pipeline can run.

// Teragen simulates the map-only generation job: containers write the
// dataset into HDFS (one slice per map). It returns the generation wall
// time; the file is named like the terasort input so a subsequent
// Run/Def("terasort") consumes it.
func Teragen(h *Hadoop, size units.Bytes, maps int) (float64, error) {
	if maps <= 0 {
		return 0, fmt.Errorf("jobs: teragen needs maps > 0")
	}
	eng := h.Eng
	start := eng.Now()
	slice := units.Bytes(int64(size) / int64(maps))
	remaining := maps
	name := InputFiles("terasort", 1)[0]

	// Teragen writes one HDFS file; each "map" appends its slice. The
	// simulated filesystem writes whole files, so slices are written as
	// parts and accounted under one logical dataset.
	for i := 0; i < maps; i++ {
		part := fmt.Sprintf("%s.gen-%03d", name, i)
		writer := h.Workers[i%len(h.Workers)]
		h.FS.Write(writer.ID, writer, part, slice, func() {
			remaining--
		})
	}
	eng.Run()
	if remaining != 0 {
		return 0, fmt.Errorf("jobs: teragen incomplete: %d parts pending", remaining)
	}
	// Register the logical input (parts already occupy datanode storage;
	// the logical file is what terasort splits on).
	h.FS.CreateInstant(name, size)
	return float64(eng.Now() - start), nil
}

// TeraValidateLocal checks a LocalRun terasort output: within every
// partition keys must be non-decreasing, and the record multiset must be
// preserved. It returns an error describing the first violation.
func TeraValidateLocal(in []string, out *mapred.LocalResult) error {
	n := 0
	for p, kvs := range out.Partitions {
		for i := 1; i < len(kvs); i++ {
			if kvs[i-1].Key > kvs[i].Key {
				return fmt.Errorf("partition %d unsorted at %d", p, i)
			}
		}
		n += len(kvs)
	}
	if n != len(in) {
		return fmt.Errorf("record count changed: %d in, %d out", len(in), n)
	}
	return nil
}
