// Package jobs defines the paper's six MapReduce workloads — wordcount,
// wordcount2, logcount, logcount2, pi estimation and terasort (§5.2) — as
// real Map/Reduce functions with data generators, plus the per-platform
// cost models calibrated against Table 8.
package jobs

import (
	"fmt"
	"strings"

	"edisim/internal/rng"
)

// GenerateTextLines produces synthetic prose lines with a Zipf word
// distribution (wordcount input; the paper uses 200 files totaling 1 GB).
func GenerateTextLines(seed int64, lines, wordsPerLine int) []string {
	src := rng.New(seed).Derive("text")
	z := src.Zipf(1.2, 5000)
	out := make([]string, lines)
	var b strings.Builder
	for i := range out {
		b.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "word%04d", z.Next())
		}
		out[i] = b.String()
	}
	return out
}

// logLevels are the Hadoop log levels in descending frequency.
var logLevels = []string{"INFO", "INFO", "INFO", "INFO", "WARN", "DEBUG", "ERROR"}

// GenerateLogLines produces Yarn/Hadoop-style log lines spanning several
// days (logcount input; the paper uses 500 files totaling 1 GB).
func GenerateLogLines(seed int64, lines int) []string {
	src := rng.New(seed).Derive("logs")
	out := make([]string, lines)
	for i := range out {
		day := 1 + src.Intn(28)
		level := logLevels[src.Intn(len(logLevels))]
		out[i] = fmt.Sprintf("2016-02-%02d %02d:%02d:%02d,%03d %s org.apache.hadoop.yarn.server: container_%07d event %d",
			day, src.Intn(24), src.Intn(60), src.Intn(60), src.Intn(1000), level, src.Intn(1<<20), i)
	}
	return out
}

// TeraRecordLen is the TeraGen record size: 10-byte key + 90-byte payload.
const TeraRecordLen = 100

// GenerateTeraRecords produces TeraGen-style records: a random 10-byte key
// (hex-encoded here for printability) followed by a payload.
func GenerateTeraRecords(seed int64, n int) []string {
	src := rng.New(seed).Derive("tera")
	out := make([]string, n)
	for i := range out {
		key := make([]byte, 10)
		for j := range key {
			key[j] = byte('A' + src.Intn(26))
		}
		out[i] = fmt.Sprintf("%s%090d", key, i)
	}
	return out
}
