package jobs

import (
	"testing"

	"edisim/internal/mapred"
	"edisim/internal/units"
)

func TestTeragenWritesDataset(t *testing.T) {
	h, err := NewHadoop(microP(), 4, TeraBlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := Teragen(h, 256*units.MB, 8)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatalf("teragen took %v", elapsed)
	}
	if _, ok := h.FS.Lookup(InputFiles("terasort", 1)[0]); !ok {
		t.Fatal("terasort input missing after teragen")
	}
	// Replication 2: parts stored twice.
	if got := h.FS.TotalStored(); got < 512*units.MB {
		t.Fatalf("stored %v, want >= 512MB (2 replicas)", got)
	}
}

func TestTeraValidateLocalAcceptsSorted(t *testing.T) {
	recs := GenerateTeraRecords(3, 200)
	out, err := mapred.LocalRun(Terasort(microP()), map[string][]string{"in": recs})
	if err != nil {
		t.Fatal(err)
	}
	if err := TeraValidateLocal(recs, out); err != nil {
		t.Fatalf("valid output rejected: %v", err)
	}
}

func TestTeraValidateLocalRejectsLoss(t *testing.T) {
	recs := GenerateTeraRecords(4, 100)
	out, err := mapred.LocalRun(Terasort(microP()), map[string][]string{"in": recs})
	if err != nil {
		t.Fatal(err)
	}
	// Drop one output record: validation must fail.
	for p := range out.Partitions {
		if len(out.Partitions[p]) > 0 {
			out.Partitions[p] = out.Partitions[p][1:]
			break
		}
	}
	if err := TeraValidateLocal(recs, out); err == nil {
		t.Fatal("record loss not detected")
	}
}
