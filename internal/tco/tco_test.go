package tco

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"edisim/internal/carbon"
	"edisim/internal/hw"
)

func basePair() (micro, brawny *hw.Platform) { return hw.BaselinePair() }

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTable10MatchesPaper(t *testing.T) {
	paper := map[string][2]float64{
		"Web service, low utilization":  {7948.7, 4329.5},
		"Web service, high utilization": {8236.8, 4346.1},
		"Big data, low utilization":     {5348.2, 4352.4},
		"Big data, high utilization":    {5495.0, 4352.4},
	}
	for _, s := range Table10() {
		p := paper[s.Name]
		if !almost(s.Brawny.Total(), p[0], p[0]*0.01) {
			t.Errorf("%s: brawny %.1f, paper %.1f", s.Name, s.Brawny.Total(), p[0])
		}
		if !almost(s.Micro.Total(), p[1], p[1]*0.01) {
			t.Errorf("%s: micro %.1f, paper %.1f", s.Name, s.Micro.Total(), p[1])
		}
	}
}

func TestSavingsUpTo47Percent(t *testing.T) {
	best := 0.0
	for _, s := range Table10() {
		if s.Savings() > best {
			best = s.Savings()
		}
	}
	if best < 0.45 || best > 0.50 {
		t.Fatalf("best savings %.0f%%, paper says up to 47%%", 100*best)
	}
}

func TestEquipmentDominatesMicroCost(t *testing.T) {
	micro, _ := basePair()
	r := MustCompute(ForPlatform(micro, 35, 1.0))
	if r.Equipment != 35*micro.UnitCost {
		t.Fatalf("equipment %.0f", r.Equipment)
	}
	if r.Electricity > r.Equipment*0.1 {
		t.Fatalf("micro electricity %.1f should be tiny next to equipment %.0f",
			r.Electricity, r.Equipment)
	}
}

// TestInvalidInputsRejected pins the bugfix: out-of-range utilization and
// non-positive server counts are errors, never panics or negative costs —
// both are user-reachable through cmd/tcocalc and edisim.ComputeTCO.
func TestInvalidInputsRejected(t *testing.T) {
	micro, brawny := basePair()
	cases := []struct {
		name string
		in   Inputs
		want string // substring of the error
	}{
		{"utilization above 1", ForPlatform(brawny, 1, 1.5), "outside [0,1]"},
		{"negative utilization", ForPlatform(brawny, 3, -0.25), "outside [0,1]"},
		{"NaN utilization", ForPlatform(brawny, 3, math.NaN()), "outside [0,1]"},
		{"negative servers", ForPlatform(micro, -5, 0.5), "must be positive"},
		{"zero servers", ForPlatform(micro, 0, 0.5), "must be positive"},
		{"negative unit cost", Inputs{Servers: 1, CostPerUnit: -120, Utilization: 0.5, LifeYears: 3, PricePerKWh: 0.1}, "unit cost"},
		{"negative lifetime", Inputs{Servers: 1, CostPerUnit: 120, Utilization: 0.5, LifeYears: -3, PricePerKWh: 0.1}, "lifetime"},
		{"negative price", Inputs{Servers: 1, CostPerUnit: 120, Utilization: 0.5, LifeYears: 3, PricePerKWh: -0.1}, "electricity price"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Compute(tc.in)
			if err == nil {
				t.Fatalf("Compute(%+v) accepted invalid input: %+v", tc.in, r)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if r.Total() != 0 {
				t.Fatalf("invalid input still priced: %+v", r)
			}
		})
	}
}

func TestMustComputePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompute accepted invalid utilization")
		}
	}()
	_, brawny := basePair()
	MustCompute(ForPlatform(brawny, 1, 1.5))
}

// TestSizeForBudget pins the equal-spend sizing math: floor(budget / one
// server's 3-year cost), exact multiples included, with errors for
// non-positive budgets and invalid utilization.
func TestSizeForBudget(t *testing.T) {
	micro, brawny := basePair()
	perMicro := MustCompute(ForPlatform(micro, 1, 0.75)).Total()
	perBrawny := MustCompute(ForPlatform(brawny, 1, 0.75)).Total()
	cases := []struct {
		name    string
		p       *hw.Platform
		budget  float64
		util    float64
		want    int
		wantErr string
	}{
		{name: "under one server", p: brawny, budget: perBrawny * 0.99, util: 0.75, want: 0},
		{name: "exactly one server", p: brawny, budget: perBrawny, util: 0.75, want: 1},
		{name: "exact multiple", p: micro, budget: 7 * perMicro, util: 0.75, want: 7},
		{name: "just under a multiple", p: micro, budget: 7*perMicro - 1, util: 0.75, want: 6},
		{name: "paper web budget", p: micro, budget: MustCompute(ForPlatform(brawny, 3, 0.75)).Total(), util: 0.75},
		{name: "zero budget", p: micro, budget: 0, util: 0.5, wantErr: "must be positive"},
		{name: "negative budget", p: micro, budget: -100, util: 0.5, wantErr: "must be positive"},
		{name: "NaN budget", p: micro, budget: math.NaN(), util: 0.5, wantErr: "must be positive"},
		{name: "infinite budget", p: micro, budget: math.Inf(1), util: 0.5, wantErr: "finite"},
		{name: "bad utilization", p: micro, budget: 1000, util: 2, wantErr: "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := SizeForBudget(tc.p, tc.budget, tc.util)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got n=%d err=%v", tc.wantErr, n, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("SizeForBudget: %v", err)
			}
			if tc.want > 0 && n != tc.want {
				t.Fatalf("got %d servers, want %d", n, tc.want)
			}
			// The sized fleet must fit the budget, and one more must not.
			if n > 0 {
				if got := MustCompute(ForPlatform(tc.p, n, tc.util)).Total(); got > tc.budget*1.000001 {
					t.Fatalf("sized fleet $%.2f exceeds budget $%.2f", got, tc.budget)
				}
			}
			if over := MustCompute(ForPlatform(tc.p, n+1, tc.util)).Total(); over <= tc.budget*0.999999 {
				t.Fatalf("fleet of %d (+1) at $%.2f still fits budget $%.2f — not maximal", n+1, over, tc.budget)
			}
		})
	}
}

// TestSizeForBudgetOverflowClamped: a finite but absurd budget must clamp
// to MaxFleet, never wrap the int conversion into a negative fleet.
func TestSizeForBudgetOverflowClamped(t *testing.T) {
	micro, _ := basePair()
	n, err := SizeForBudget(micro, 1e30, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != MaxFleet {
		t.Fatalf("absurd budget sized to %d, want the MaxFleet clamp %d", n, MaxFleet)
	}
}

// TestSizeForBudgetMatchesPaperScale: at the paper's high-utilization web
// point, the brawny 3-server budget buys a micro fleet in the tens of
// nodes — the §6 "comparable cost" framing (the paper deploys 35).
func TestSizeForBudgetMatchesPaperScale(t *testing.T) {
	micro, brawny := basePair()
	budget := MustCompute(ForPlatform(brawny, 3, 0.75)).Total()
	n, err := SizeForBudget(micro, budget, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if n < 30 || n > 80 {
		t.Fatalf("budget $%.0f buys %d micro nodes; expected the paper's tens-of-nodes scale", budget, n)
	}
}

// TestSizingStaysAllocationFree pins that the budget-sizing path is pure
// math: it must never allocate, so experiments can size fleets per sweep
// point without touching the allocation-free request path's budget (the CI
// alloc-regression step runs this).
func TestSizingStaysAllocationFree(t *testing.T) {
	micro, brawny := basePair()
	budget := MustCompute(ForPlatform(brawny, 3, 0.75)).Total()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := SizeForBudget(micro, budget, 0.75); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SizeForBudget allocates %.1f times per call, want 0", allocs)
	}
}

func BenchmarkSizeForBudget(b *testing.B) {
	micro, brawny := basePair()
	budget := MustCompute(ForPlatform(brawny, 3, 0.75)).Total()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SizeForBudget(micro, budget, 0.75); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: TCO is monotone in utilization (peak power > idle power).
func TestTCOMonotoneInUtilization(t *testing.T) {
	f := func(u1, u2 float64) bool {
		u1 = math.Abs(math.Mod(u1, 1))
		u2 = math.Abs(math.Mod(u2, 1))
		if math.IsNaN(u1) || math.IsNaN(u2) {
			return true
		}
		lo, hi := math.Min(u1, u2), math.Max(u1, u2)
		_, brawny := basePair()
		return MustCompute(ForPlatform(brawny, 2, lo)).Total() <= MustCompute(ForPlatform(brawny, 2, hi)).Total()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cost scales linearly with server count.
func TestTCOLinearInServers(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		micro, _ := basePair()
		one := MustCompute(ForPlatform(micro, 1, 0.5)).Total()
		many := MustCompute(ForPlatform(micro, n, 0.5)).Total()
		return almost(many, float64(n)*one, 1e-6*many+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroKnobsMatchEquationOne pins the layering contract: with the PUE,
// intensity and carbon-price knobs at their zero values, the extended
// Compute is arithmetically the paper's Equation (1) — same electricity to
// the last bit, zero carbon cost.
func TestZeroKnobsMatchEquationOne(t *testing.T) {
	micro, _ := basePair()
	in := ForPlatform(micro, 35, 0.75)
	r := MustCompute(in)
	hours := in.LifeYears * 365 * 24
	meanWatts := in.Utilization*float64(in.Peak) + (1-in.Utilization)*float64(in.Idle)
	kwh := meanWatts / 1000 * hours * float64(in.Servers)
	if r.Electricity != kwh*in.PricePerKWh {
		t.Fatalf("electricity drifted from Equation (1): %v vs %v", r.Electricity, kwh*in.PricePerKWh)
	}
	if r.Carbon != 0 || r.CarbonGrams != 0 {
		t.Fatalf("zero knobs produced carbon: %+v", r)
	}
	if r.Total() != r.Equipment+r.Electricity {
		t.Fatal("carbon term leaked into the zero-knob total")
	}
}

// TestFacilityAndCarbonKnobs: PUE scales energy, intensity fills grams,
// the carbon price adds a cost term.
func TestFacilityAndCarbonKnobs(t *testing.T) {
	micro, _ := basePair()
	base := MustCompute(ForPlatform(micro, 10, 0.5))

	in := ForPlatform(micro, 10, 0.5)
	in.PUE = 1.5
	r := MustCompute(in)
	if !almost(r.KWh, 1.5*base.KWh, 1e-9*r.KWh) || !almost(r.Electricity, 1.5*base.Electricity, 1e-9) {
		t.Fatalf("PUE 1.5 did not scale energy: %+v vs %+v", r, base)
	}

	in.GramsPerKWh = 400
	in.CarbonPricePerTonne = 100
	r = MustCompute(in)
	if wantG := r.KWh * 400; !almost(r.CarbonGrams, wantG, 1e-6) {
		t.Fatalf("grams %v, want %v", r.CarbonGrams, wantG)
	}
	if wantC := r.CarbonGrams / 1e6 * 100; !almost(r.Carbon, wantC, 1e-9) {
		t.Fatalf("carbon cost %v, want %v", r.Carbon, wantC)
	}
	if !almost(r.Total(), r.Equipment+r.Electricity+r.Carbon, 1e-9) {
		t.Fatal("total does not include the carbon term")
	}

	// Invalid knobs are rejected like every other input.
	for _, bad := range []Inputs{
		func() Inputs { i := ForPlatform(micro, 1, 0.5); i.PUE = 0.8; return i }(),
		func() Inputs { i := ForPlatform(micro, 1, 0.5); i.PUE = math.NaN(); return i }(),
		func() Inputs { i := ForPlatform(micro, 1, 0.5); i.GramsPerKWh = -1; return i }(),
		func() Inputs { i := ForPlatform(micro, 1, 0.5); i.CarbonPricePerTonne = -5; return i }(),
	} {
		if _, err := Compute(bad); err == nil {
			t.Fatalf("invalid knob accepted: %+v", bad)
		}
	}
}

// TestRegionPricesCoverCarbonRegions: the price table and the carbon
// package's grid map share one region grammar — every region priced, every
// price positive.
func TestRegionPricesCoverCarbonRegions(t *testing.T) {
	for _, g := range carbon.Regions() {
		p, ok := RegionPrice(g.Region)
		if !ok || p <= 0 {
			t.Errorf("region %q has no positive price (got %v, %v)", g.Region, p, ok)
		}
	}
	if len(carbon.Regions()) == 0 {
		t.Fatal("no regions")
	}
	if _, ok := RegionPrice(" EU-NORTH "); !ok {
		t.Error("region price lookup not tolerant")
	}
	if _, ok := RegionPrice("atlantis"); ok {
		t.Error("bogus region priced")
	}
}

// TestForPlatformInRegion: regional inputs carry the region's price and
// intensity plus the default PUE, and the TDP-curve kind swaps the power
// endpoints.
func TestForPlatformInRegion(t *testing.T) {
	micro, _ := basePair()
	in, err := ForPlatformInRegion(micro, 5, 0.5, hw.PowerLinear, "eu-north", 80)
	if err != nil {
		t.Fatal(err)
	}
	grid := carbon.MustLookup("eu-north")
	price, _ := RegionPrice("eu-north")
	if in.PricePerKWh != price || in.GramsPerKWh != grid.Grams ||
		in.PUE != carbon.DefaultPUE || in.CarbonPricePerTonne != 80 {
		t.Fatalf("regional inputs wrong: %+v", in)
	}
	if _, err := ForPlatformInRegion(micro, 5, 0.5, hw.PowerLinear, "atlantis", 0); err == nil {
		t.Fatal("unknown region accepted")
	}

	curved := ForPlatformModel(micro, 5, 0.5, hw.PowerTDPCurve)
	pm := micro.PowerModelFor(hw.PowerTDPCurve)
	if curved.Peak != pm.BusyDraw() || curved.Idle != pm.IdleDraw() {
		t.Fatalf("curve endpoints not used: %+v", curved)
	}
	if curved.Peak == ForPlatform(micro, 5, 0.5).Peak {
		t.Fatal("curve endpoints identical to linear — kind not threaded")
	}
}
