package tco

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edisim/internal/hw"
)

func basePair() (micro, brawny *hw.Platform) { return hw.BaselinePair() }

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTable10MatchesPaper(t *testing.T) {
	paper := map[string][2]float64{
		"Web service, low utilization":  {7948.7, 4329.5},
		"Web service, high utilization": {8236.8, 4346.1},
		"Big data, low utilization":     {5348.2, 4352.4},
		"Big data, high utilization":    {5495.0, 4352.4},
	}
	for _, s := range Table10() {
		p := paper[s.Name]
		if !almost(s.Brawny.Total(), p[0], p[0]*0.01) {
			t.Errorf("%s: brawny %.1f, paper %.1f", s.Name, s.Brawny.Total(), p[0])
		}
		if !almost(s.Micro.Total(), p[1], p[1]*0.01) {
			t.Errorf("%s: micro %.1f, paper %.1f", s.Name, s.Micro.Total(), p[1])
		}
	}
}

func TestSavingsUpTo47Percent(t *testing.T) {
	best := 0.0
	for _, s := range Table10() {
		if s.Savings() > best {
			best = s.Savings()
		}
	}
	if best < 0.45 || best > 0.50 {
		t.Fatalf("best savings %.0f%%, paper says up to 47%%", 100*best)
	}
}

func TestEquipmentDominatesMicroCost(t *testing.T) {
	micro, _ := basePair()
	r := Compute(ForPlatform(micro, 35, 1.0))
	if r.Equipment != 35*micro.UnitCost {
		t.Fatalf("equipment %.0f", r.Equipment)
	}
	if r.Electricity > r.Equipment*0.1 {
		t.Fatalf("micro electricity %.1f should be tiny next to equipment %.0f",
			r.Electricity, r.Equipment)
	}
}

func TestUtilizationBoundsChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid utilization accepted")
		}
	}()
	_, brawny := basePair()
	Compute(ForPlatform(brawny, 1, 1.5))
}

// Property: TCO is monotone in utilization (peak power > idle power).
func TestTCOMonotoneInUtilization(t *testing.T) {
	f := func(u1, u2 float64) bool {
		u1 = math.Abs(math.Mod(u1, 1))
		u2 = math.Abs(math.Mod(u2, 1))
		if math.IsNaN(u1) || math.IsNaN(u2) {
			return true
		}
		lo, hi := math.Min(u1, u2), math.Max(u1, u2)
		_, brawny := basePair()
		return Compute(ForPlatform(brawny, 2, lo)).Total() <= Compute(ForPlatform(brawny, 2, hi)).Total()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cost scales linearly with server count.
func TestTCOLinearInServers(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		micro, _ := basePair()
		one := Compute(ForPlatform(micro, 1, 0.5)).Total()
		many := Compute(ForPlatform(micro, n, 0.5)).Total()
		return almost(many, float64(n)*one, 1e-6*many+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}
