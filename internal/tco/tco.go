// Package tco implements the paper's total-cost-of-ownership model
// (Section 6): equipment cost plus electricity over a server lifetime,
// C = Cs + Ts·Ceph·(U·Pp + (1−U)·Pi), with the Table 9 constants and the
// Table 10 scenarios. Per-platform unit costs and power endpoints come from
// the hw platform catalog, so any catalog entry can be priced.
package tco

import (
	"edisim/internal/hw"
	"edisim/internal/units"
)

// Inputs is the parameter set of Equation (1) for one cluster.
type Inputs struct {
	Servers     int
	CostPerUnit float64     // Cs per server, USD
	Peak        units.Watts // Pp per server
	Idle        units.Watts // Pi per server
	Utilization float64     // U in [0,1]
	LifeYears   float64     // Ts
	PricePerKWh float64     // Ceph
}

// Defaults from Table 9.
const (
	PricePerKWh = 0.10 // US average
	LifeYears   = 3.0
)

// Result is the cost breakdown in USD.
type Result struct {
	Equipment   float64
	Electricity float64
}

// Total reports equipment plus electricity.
func (r Result) Total() float64 { return r.Equipment + r.Electricity }

// Compute evaluates Equation (1).
func Compute(in Inputs) Result {
	if in.Utilization < 0 || in.Utilization > 1 {
		panic("tco: utilization must be within [0,1]")
	}
	hours := in.LifeYears * 365 * 24
	meanWatts := in.Utilization*float64(in.Peak) + (1-in.Utilization)*float64(in.Idle)
	kwh := meanWatts / 1000 * hours * float64(in.Servers)
	return Result{
		Equipment:   float64(in.Servers) * in.CostPerUnit,
		Electricity: kwh * in.PricePerKWh,
	}
}

// ForPlatform builds Inputs for n nodes of a catalog platform at
// utilization u, using the platform's unit cost and measured per-node
// power endpoints (with Ethernet adapter where applicable, Table 3).
func ForPlatform(p *hw.Platform, n int, u float64) Inputs {
	pw := p.Spec.Power
	return Inputs{
		Servers:     n,
		CostPerUnit: p.UnitCost,
		Peak:        pw.BusyDraw(),
		Idle:        pw.IdleDraw(),
		Utilization: u,
		LifeYears:   LifeYears,
		PricePerKWh: PricePerKWh,
	}
}

// Scenario is one Table 10 row comparing a micro fleet to a brawny fleet.
type Scenario struct {
	Name          string
	Brawny, Micro Result
}

// Savings reports the fractional saving of the micro cluster vs brawny.
func (s Scenario) Savings() float64 {
	if s.Brawny.Total() == 0 {
		return 0
	}
	return 1 - s.Micro.Total()/s.Brawny.Total()
}

// Table10 reproduces the paper's four scenarios over the baseline pair:
// web service compares 35 Edisons to 3 Dells at U ∈ {10%, 75%}; big data
// compares 35 Edisons (pinned at 100% utilization, since jobs run 1.35–4×
// longer) to 2 Dells at U ∈ {25%, 74%}.
func Table10() []Scenario {
	micro, brawny := hw.BaselinePair()
	return []Scenario{
		{
			Name:   "Web service, low utilization",
			Brawny: Compute(ForPlatform(brawny, 3, 0.10)),
			Micro:  Compute(ForPlatform(micro, 35, 0.10)),
		},
		{
			Name:   "Web service, high utilization",
			Brawny: Compute(ForPlatform(brawny, 3, 0.75)),
			Micro:  Compute(ForPlatform(micro, 35, 0.75)),
		},
		{
			Name:   "Big data, low utilization",
			Brawny: Compute(ForPlatform(brawny, 2, 0.25)),
			Micro:  Compute(ForPlatform(micro, 35, 1.0)),
		},
		{
			Name:   "Big data, high utilization",
			Brawny: Compute(ForPlatform(brawny, 2, 0.74)),
			Micro:  Compute(ForPlatform(micro, 35, 1.0)),
		},
	}
}
