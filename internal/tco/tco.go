// Package tco implements the paper's total-cost-of-ownership model
// (Section 6): equipment cost plus electricity over a server lifetime,
// C = Cs + Ts·Ceph·(U·Pp + (1−U)·Pi), with the Table 9 constants and the
// Table 10 scenarios. Per-platform unit costs and power endpoints come from
// the hw platform catalog, so any catalog entry can be priced — either at a
// fixed fleet size (Compute) or sized to a spending cap (SizeForBudget),
// which is how the paper's "35 Edisons vs 3 Dells at comparable cost"
// comparison generalizes to arbitrary platforms.
package tco

import (
	"fmt"
	"math"
	"strings"

	"edisim/internal/carbon"
	"edisim/internal/hw"
	"edisim/internal/units"
)

// Inputs is the parameter set of Equation (1) for one cluster, extended with
// the facility and carbon knobs of the layered model. All extensions default
// to zero values that reproduce the paper's Equation (1) exactly.
type Inputs struct {
	Servers     int
	CostPerUnit float64     // Cs per server, USD
	Peak        units.Watts // Pp per server
	Idle        units.Watts // Pi per server
	Utilization float64     // U in [0,1]
	LifeYears   float64     // Ts
	PricePerKWh float64     // Ceph

	// PUE multiplies IT energy by the facility overhead; 0 (and 1) mean no
	// overhead, values in (0,1) are invalid — a facility cannot return power.
	PUE float64
	// GramsPerKWh is the grid carbon intensity; 0 leaves carbon unmodeled.
	GramsPerKWh float64
	// CarbonPricePerTonne prices operational carbon in USD per tCO2e
	// (a carbon tax or internal carbon fee); 0 adds no cost.
	CarbonPricePerTonne float64
}

// Validate reports the first invalid field, if any. Every Compute input is
// user-reachable through cmd/tcocalc and the public edisim package, so
// out-of-range values must surface as errors, not panics or negative costs.
func (in Inputs) Validate() error {
	switch {
	case in.Servers <= 0:
		return fmt.Errorf("tco: server count %d must be positive", in.Servers)
	case math.IsNaN(in.Utilization) || in.Utilization < 0 || in.Utilization > 1:
		return fmt.Errorf("tco: utilization %v outside [0,1]", in.Utilization)
	case in.CostPerUnit < 0:
		return fmt.Errorf("tco: negative unit cost %v", in.CostPerUnit)
	case in.LifeYears < 0:
		return fmt.Errorf("tco: negative lifetime %v years", in.LifeYears)
	case in.PricePerKWh < 0:
		return fmt.Errorf("tco: negative electricity price %v", in.PricePerKWh)
	case math.IsNaN(in.PUE) || in.PUE < 0 || (in.PUE > 0 && in.PUE < 1):
		return fmt.Errorf("tco: PUE %v must be 0 (unmodeled) or >= 1", in.PUE)
	case math.IsNaN(in.GramsPerKWh) || in.GramsPerKWh < 0:
		return fmt.Errorf("tco: negative grid intensity %v gCO2e/kWh", in.GramsPerKWh)
	case math.IsNaN(in.CarbonPricePerTonne) || in.CarbonPricePerTonne < 0:
		return fmt.Errorf("tco: negative carbon price %v $/tCO2e", in.CarbonPricePerTonne)
	}
	return nil
}

// Defaults from Table 9.
const (
	PricePerKWh = 0.10 // US average
	LifeYears   = 3.0
)

// Result is the cost breakdown in USD, plus the energy and carbon totals
// the costs were derived from (zero when the corresponding knob is off).
type Result struct {
	Equipment   float64
	Electricity float64
	// Carbon is the carbon-price cost in USD (0 without a carbon price).
	Carbon float64

	// KWh is lifetime wall energy (PUE included); CarbonGrams is lifetime
	// operational carbon at the configured grid intensity.
	KWh         float64
	CarbonGrams float64
}

// Total reports equipment plus electricity plus carbon cost.
func (r Result) Total() float64 { return r.Equipment + r.Electricity + r.Carbon }

// Compute evaluates Equation (1) — extended by the facility (PUE) and
// carbon-price layers when those knobs are set — rejecting invalid inputs
// (non-positive server counts, utilization outside [0,1], negative costs)
// with an error. With the zero-valued knobs the arithmetic is exactly the
// paper's Equation (1).
func Compute(in Inputs) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	hours := in.LifeYears * 365 * 24
	meanWatts := in.Utilization*float64(in.Peak) + (1-in.Utilization)*float64(in.Idle)
	kwh := meanWatts / 1000 * hours * float64(in.Servers)
	if in.PUE > 1 {
		kwh *= in.PUE
	}
	grams := kwh * in.GramsPerKWh
	return Result{
		Equipment:   float64(in.Servers) * in.CostPerUnit,
		Electricity: kwh * in.PricePerKWh,
		Carbon:      grams / 1e6 * in.CarbonPricePerTonne,
		KWh:         kwh,
		CarbonGrams: grams,
	}, nil
}

// MustCompute is Compute for inputs known valid by construction (catalog
// platforms at fixed utilization points); it panics on invalid inputs.
func MustCompute(in Inputs) Result {
	r, err := Compute(in)
	if err != nil {
		panic(err)
	}
	return r
}

// ForPlatform builds Inputs for n nodes of a catalog platform at
// utilization u, using the platform's unit cost and measured per-node
// power endpoints (with Ethernet adapter where applicable, Table 3).
func ForPlatform(p *hw.Platform, n int, u float64) Inputs {
	return ForPlatformModel(p, n, u, hw.PowerLinear)
}

// ForPlatformModel is ForPlatform with the power endpoints taken from the
// named power model — armed with hw.PowerTDPCurve, the TCO prices the
// component-level curve's idle/busy wall draw instead of the calibrated
// linear endpoints.
func ForPlatformModel(p *hw.Platform, n int, u float64, kind hw.PowerModelKind) Inputs {
	// Concrete model types, not the PowerModel interface: boxing would
	// allocate, and budget sizing runs this per sweep point under the
	// allocation-free pin.
	var peak, idle units.Watts
	if kind == hw.PowerTDPCurve && p.Energy.Modeled() {
		c := hw.NewTDPCurve(p.Energy, p.Spec.Mem.Capacity)
		peak, idle = c.BusyDraw(), c.IdleDraw()
	} else {
		peak, idle = p.Spec.Power.BusyDraw(), p.Spec.Power.IdleDraw()
	}
	return Inputs{
		Servers:     n,
		CostPerUnit: p.UnitCost,
		Peak:        peak,
		Idle:        idle,
		Utilization: u,
		LifeYears:   LifeYears,
		PricePerKWh: PricePerKWh,
	}
}

// regionPrices maps the carbon package's region grammar to industrial
// electricity prices in USD/kWh (rounded recent annual averages; PLATFORMS.md
// cites the sources alongside the grid intensities). Cheap hydro in eu-north
// and the US Northwest, expensive post-2022 grids in Central Europe.
var regionPrices = map[string]float64{
	"us-east":      0.083,
	"us-west":      0.095,
	"eu-west":      0.17,
	"eu-north":     0.09,
	"eu-central":   0.20,
	"ap-south":     0.10,
	"ap-southeast": 0.13,
	"global":       PricePerKWh,
}

// RegionPrice reports the region's electricity price in USD/kWh. The region
// grammar is the carbon package's (case/whitespace tolerant).
func RegionPrice(region string) (float64, bool) {
	p, ok := regionPrices[strings.ToLower(strings.TrimSpace(region))]
	return p, ok
}

// ForPlatformInRegion builds regional Inputs: the region's electricity
// price and grid intensity, the default facility PUE, and power endpoints
// from the named model. carbonPricePerTonne prices the resulting
// operational carbon (0 = no carbon price).
func ForPlatformInRegion(p *hw.Platform, n int, u float64, kind hw.PowerModelKind,
	region string, carbonPricePerTonne float64) (Inputs, error) {
	price, ok := RegionPrice(region)
	grid, gok := carbon.Lookup(region)
	if !ok || !gok {
		return Inputs{}, fmt.Errorf("tco: unknown region %q (want one of %s)",
			region, strings.Join(carbon.RegionNames(), ", "))
	}
	in := ForPlatformModel(p, n, u, kind)
	in.PricePerKWh = price
	in.PUE = carbon.DefaultPUE
	in.GramsPerKWh = grid.Grams
	in.CarbonPricePerTonne = carbonPricePerTonne
	return in, nil
}

// sizeSlack absorbs float rounding when a budget is an exact multiple of
// the per-server cost: budgets are dollars, so a relative 1e-9 never admits
// a genuinely unaffordable server.
const sizeSlack = 1 + 1e-9

// MaxFleet caps SizeForBudget's answer: absurd budgets size to this bound
// instead of overflowing the int conversion. It sits far beyond anything
// the simulator (or the planet) deploys; callers with tighter bounds
// (cluster.MaxGroupNodes) clamp further.
const MaxFleet = math.MaxInt32

// SizeForBudget reports the largest fleet of platform p whose 3-year TCO at
// utilization u fits within budgetUSD — the equal-spend sizing behind the
// paper's 35-Edisons-vs-3-Dells framing (§6). The TCO is linear in the
// server count, so the answer is budget divided by one server's lifetime
// cost, rounded down (capped at MaxFleet); 0 means a single server already
// exceeds the budget.
func SizeForBudget(p *hw.Platform, budgetUSD, u float64) (int, error) {
	if math.IsNaN(budgetUSD) || math.IsInf(budgetUSD, 0) || budgetUSD <= 0 {
		return 0, fmt.Errorf("tco: budget $%v must be positive and finite", budgetUSD)
	}
	one, err := Compute(ForPlatform(p, 1, u))
	if err != nil {
		return 0, err
	}
	per := one.Total()
	if per <= 0 {
		return 0, fmt.Errorf("tco: platform %s has non-positive per-server cost $%v", p.Name, per)
	}
	q := budgetUSD / per * sizeSlack
	if q > MaxFleet {
		return MaxFleet, nil
	}
	return int(q), nil
}

// Scenario is one Table 10 row comparing a micro fleet to a brawny fleet.
type Scenario struct {
	Name          string
	Brawny, Micro Result
}

// Savings reports the fractional saving of the micro cluster vs brawny.
func (s Scenario) Savings() float64 {
	if s.Brawny.Total() == 0 {
		return 0
	}
	return 1 - s.Micro.Total()/s.Brawny.Total()
}

// Table10 reproduces the paper's four scenarios over the baseline pair:
// web service compares 35 Edisons to 3 Dells at U ∈ {10%, 75%}; big data
// compares 35 Edisons (pinned at 100% utilization, since jobs run 1.35–4×
// longer) to 2 Dells at U ∈ {25%, 74%}.
func Table10() []Scenario {
	micro, brawny := hw.BaselinePair()
	return []Scenario{
		{
			Name:   "Web service, low utilization",
			Brawny: MustCompute(ForPlatform(brawny, 3, 0.10)),
			Micro:  MustCompute(ForPlatform(micro, 35, 0.10)),
		},
		{
			Name:   "Web service, high utilization",
			Brawny: MustCompute(ForPlatform(brawny, 3, 0.75)),
			Micro:  MustCompute(ForPlatform(micro, 35, 0.75)),
		},
		{
			Name:   "Big data, low utilization",
			Brawny: MustCompute(ForPlatform(brawny, 2, 0.25)),
			Micro:  MustCompute(ForPlatform(micro, 35, 1.0)),
		},
		{
			Name:   "Big data, high utilization",
			Brawny: MustCompute(ForPlatform(brawny, 2, 0.74)),
			Micro:  MustCompute(ForPlatform(micro, 35, 1.0)),
		},
	}
}
