package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results, want 100", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("Map over 0 items returned %v", got)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	Each(3, 64, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent units with workers=3", p)
	}
}

func TestMapPanicIsDeterministic(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic did not propagate")
		}
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, "unit 7") {
			t.Fatalf("panic %v, want lowest index 7 reported", v)
		}
	}()
	Map(4, 32, func(i int) int {
		if i >= 7 {
			panic("boom")
		}
		return i
	})
}

func TestMapSerialMatchesParallel(t *testing.T) {
	f := func(i int) float64 {
		v := float64(i)
		for k := 0; k < 1000; k++ {
			v = v*1.0000001 + 0.5
		}
		return v
	}
	serial := Map(1, 50, f)
	parallel := Map(8, 50, f)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestMapRecoverPoisonedUnit(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, errs := MapRecover(workers, 8, func(i int) int {
			if i == 3 {
				panic("poisoned point")
			}
			return i * 10
		})
		for i := 0; i < 8; i++ {
			if i == 3 {
				continue
			}
			if errs[i] != nil || out[i] != i*10 {
				t.Fatalf("workers=%d: unit %d = (%d, %v), want (%d, nil)", workers, i, out[i], errs[i], i*10)
			}
		}
		pe, ok := errs[3].(*PanicError)
		if !ok {
			t.Fatalf("workers=%d: errs[3] = %v (%T), want *PanicError", workers, errs[3], errs[3])
		}
		if pe.Index != 3 || pe.Value != "poisoned point" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError = {Index:%d Value:%v stack:%d bytes}", workers, pe.Index, pe.Value, len(pe.Stack))
		}
		if msg := pe.Error(); !strings.Contains(msg, "unit 3 panicked") || !strings.Contains(msg, "poisoned point") {
			t.Fatalf("workers=%d: error text %q lacks unit and value", workers, msg)
		}
		if out[3] != 0 {
			t.Fatalf("workers=%d: panicked unit left a result %d", workers, out[3])
		}
	}
}

func TestMapRecoverAllHealthy(t *testing.T) {
	out, errs := MapRecover(4, 5, func(i int) int { return i })
	for i := range errs {
		if errs[i] != nil || out[i] != i {
			t.Fatalf("unit %d = (%d, %v)", i, out[i], errs[i])
		}
	}
}

func TestMapRecoverEmpty(t *testing.T) {
	out, errs := MapRecover(4, 0, func(i int) int { return i })
	if out != nil || errs != nil {
		t.Fatalf("MapRecover over 0 items returned (%v, %v)", out, errs)
	}
}
