// Package runner fans independent units of simulation work — whole
// experiments or single sweep points — across a bounded pool of goroutines
// while keeping results deterministic.
//
// The sim kernel is single-threaded by design; parallelism in edisim comes
// from running MANY engines at once, one per independent measurement. The
// contract that makes this safe and reproducible:
//
//   - each unit of work builds its own sim.Engine (and everything on it)
//     and derives its randomness from a seed that depends only on the unit's
//     identity, never on scheduling;
//   - results are returned in index order, so output is byte-identical
//     whatever the worker count.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the default parallelism: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// workerPanic carries a panic out of a worker goroutine.
type workerPanic struct {
	index int
	value any
	stack []byte
}

// Map evaluates f(0), …, f(n-1) and returns the results in index order.
// At most workers goroutines run concurrently; workers <= 1 (or n <= 1)
// evaluates inline on the calling goroutine with zero overhead. Workers
// claim indices from a shared counter, so load imbalance between points
// (cheap low-concurrency points vs expensive saturated ones) self-levels.
//
// If any f panics, workers stop claiming new units and Map re-panics on the
// calling goroutine (with the worker's stack attached), reporting the lowest
// panicking index among those recorded — deterministic for a deterministic f,
// since in-flight units either complete or panic the same way every run.
func Map[T any](workers, n int, f func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			out[i] = f(i)
		}
		return out
	}

	var (
		next     atomic.Int64
		panicked atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		panics   []workerPanic
	)
	next.Store(-1)
	work := func() {
		defer wg.Done()
		for !panicked.Load() { // stop claiming fresh units once one failed
			i := int(next.Add(1))
			if i >= n {
				return
			}
			func() {
				defer func() {
					if v := recover(); v != nil {
						mu.Lock()
						panics = append(panics, workerPanic{index: i, value: v, stack: debug.Stack()})
						mu.Unlock()
						panicked.Store(true)
					}
				}()
				out[i] = f(i)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()

	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.index < first.index {
				first = p
			}
		}
		panic(fmt.Sprintf("runner: unit %d panicked: %v\nworker stack:\n%s",
			first.index, first.value, first.stack))
	}
	return out
}

// PanicError is a worker panic converted into an error by MapRecover: the
// unit's index, the recovered value and the goroutine stack at the point of
// the panic.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: unit %d panicked: %v\nworker stack:\n%s", e.Index, e.Value, e.Stack)
}

// MapRecover evaluates f(0), …, f(n-1) like Map, but a panicking unit
// becomes a *PanicError in the errors slice instead of killing the process:
// the remaining units keep running and return their results. errs[i] is nil
// for every unit that completed; out[i] is the zero value for one that
// panicked. Used at the edisim API boundary, where one poisoned workload
// must surface as that unit's error, not tear down the caller.
func MapRecover[T any](workers, n int, f func(i int) T) (out []T, errs []error) {
	if n <= 0 {
		return nil, nil
	}
	errs = make([]error, n)
	out = Map(workers, n, func(i int) (r T) {
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		return f(i)
	})
	return out, errs
}

// Each runs f(i) for every index without collecting results.
func Each(workers, n int, f func(i int)) {
	Map(workers, n, func(i int) struct{} {
		f(i)
		return struct{}{}
	})
}
