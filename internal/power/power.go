// Package power provides the measurement side of the testbed: meters that
// aggregate node power/energy (the paper's Mastech DC supply for the Edison
// cluster, SNMP rack PDUs for the Dell cluster) and samplers that record
// power-over-time traces for the workload figures (Figs 4, 6, 12–17).
package power

import (
	"fmt"
	"math"

	"edisim/internal/hw"
	"edisim/internal/sim"
	"edisim/internal/stats"
	"edisim/internal/units"
)

// Meter aggregates instantaneous power and cumulative energy over a set of
// nodes. It corresponds to one physical measurement instrument.
type Meter struct {
	Name  string
	nodes []*hw.Node

	baseline map[*hw.Node]units.Joules
}

// NewMeter returns a meter over the given nodes. Energy readings are
// relative to the moment the meter was created (instrument switched on).
func NewMeter(name string, nodes []*hw.Node) *Meter {
	m := &Meter{Name: name, nodes: nodes, baseline: make(map[*hw.Node]units.Joules, len(nodes))}
	for _, n := range nodes {
		m.baseline[n] = n.Energy()
	}
	return m
}

// Reset zeroes the energy reading at the current simulation time.
func (m *Meter) Reset() {
	for _, n := range m.nodes {
		m.baseline[n] = n.Energy()
	}
}

// Power reports the summed instantaneous draw of all metered nodes.
func (m *Meter) Power() units.Watts {
	var w units.Watts
	for _, n := range m.nodes {
		w += n.Power()
	}
	return w
}

// Energy reports the summed joules consumed since creation or last Reset.
func (m *Meter) Energy() units.Joules {
	var j units.Joules
	for _, n := range m.nodes {
		j += n.Energy() - m.baseline[n]
	}
	return j
}

// Nodes reports the metered node set.
func (m *Meter) Nodes() []*hw.Node { return m.nodes }

// Sampler records a meter's power (and optionally other gauges) at a fixed
// interval into time series, like the psutil logger used in §5.2.
type Sampler struct {
	eng      *sim.Engine
	interval float64
	stopped  bool

	Power *stats.TimeSeries
	// Extra gauges sampled alongside power; each returns a value in [0,100]
	// or any unit the caller likes.
	gauges []gauge
}

type gauge struct {
	series *stats.TimeSeries
	read   func() float64
}

// NewSampler starts sampling the meter every interval seconds, beginning
// immediately. Stop it with Stop; it also stops when the engine drains.
// The interval must be a positive finite number of seconds: each tick
// reschedules the next at Now()+interval, so a zero (or negative, clamped
// to zero by the engine) delay would re-fire at the same simulated instant
// forever and livelock the run.
func NewSampler(eng *sim.Engine, m *Meter, interval float64) *Sampler {
	if math.IsNaN(interval) || math.IsInf(interval, 0) || interval <= 0 {
		panic(fmt.Sprintf("power: sampler interval must be a positive finite number of seconds, got %v", interval))
	}
	s := &Sampler{eng: eng, interval: interval, Power: stats.NewTimeSeries(m.Name + "/power")}
	var tick func()
	tick = func() {
		if s.stopped {
			return
		}
		s.Power.Add(float64(eng.Now()), float64(m.Power()))
		for _, g := range s.gauges {
			g.series.Add(float64(eng.Now()), g.read())
		}
		eng.After(interval, tick)
	}
	eng.After(0, tick)
	return s
}

// AddGauge samples read() alongside power and records it under name.
// It returns the series for later inspection.
func (s *Sampler) AddGauge(name string, read func() float64) *stats.TimeSeries {
	ts := stats.NewTimeSeries(name)
	s.gauges = append(s.gauges, gauge{series: ts, read: read})
	return ts
}

// Stop ends sampling after the current tick.
func (s *Sampler) Stop() { s.stopped = true }

// MeanUtilization is a helper returning a gauge function averaging CPU
// utilization (percent) across nodes.
func MeanUtilization(nodes []*hw.Node) func() float64 {
	return func() float64 {
		if len(nodes) == 0 {
			return 0
		}
		var u float64
		for _, n := range nodes {
			u += n.Utilization()
		}
		return 100 * u / float64(len(nodes))
	}
}

// MeanMemUtilization averages memory utilization (percent) across nodes.
func MeanMemUtilization(nodes []*hw.Node) func() float64 {
	return func() float64 {
		if len(nodes) == 0 {
			return 0
		}
		var u float64
		for _, n := range nodes {
			u += n.MemUtilization()
		}
		return 100 * u / float64(len(nodes))
	}
}
