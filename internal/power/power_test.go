package power

import (
	"math"
	"testing"

	"edisim/internal/hw"
	"edisim/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func twoNodes() (*sim.Engine, []*hw.Node) {
	eng := sim.NewEngine()
	return eng, []*hw.Node{
		hw.NewNode(eng, hw.EdisonSpec(), "e0"),
		hw.NewNode(eng, hw.EdisonSpec(), "e1"),
	}
}

func TestMeterPowerSumsNodes(t *testing.T) {
	_, nodes := twoNodes()
	m := NewMeter("supply", nodes)
	if got := float64(m.Power()); !almost(got, 2*1.40, 1e-9) {
		t.Fatalf("idle meter power %g, want 2.80", got)
	}
}

func TestMeterEnergyAccumulates(t *testing.T) {
	eng, nodes := twoNodes()
	m := NewMeter("supply", nodes)
	eng.RunUntil(100)
	// 2 idle Edisons × 1.40 W × 100 s = 280 J.
	if got := float64(m.Energy()); !almost(got, 280, 1e-6) {
		t.Fatalf("idle energy %g, want 280", got)
	}
}

func TestMeterReset(t *testing.T) {
	eng, nodes := twoNodes()
	m := NewMeter("supply", nodes)
	eng.RunUntil(50)
	m.Reset()
	eng.RunUntil(100)
	if got := float64(m.Energy()); !almost(got, 140, 1e-6) {
		t.Fatalf("post-reset energy %g, want 140", got)
	}
}

func TestMeterBusyEnergyHigher(t *testing.T) {
	eng, nodes := twoNodes()
	m := NewMeter("supply", nodes)
	// Saturate both cores of node 0 for 100 s.
	nodes[0].ComputeSeconds(100, nil)
	nodes[0].ComputeSeconds(100, nil)
	eng.Run()
	got := float64(m.Energy())
	// Node0 busy (1.68 W) + node1 idle (1.40 W), 100 s each = 308 J.
	if !almost(got, 308, 1) {
		t.Fatalf("energy %g, want ≈308", got)
	}
}

func TestSamplerRecordsSeries(t *testing.T) {
	eng, nodes := twoNodes()
	m := NewMeter("supply", nodes)
	s := NewSampler(eng, m, 1.0)
	util := s.AddGauge("cpu", MeanUtilization(nodes))
	nodes[0].ComputeSeconds(5, nil) // one of four cores busy for ~5s
	eng.RunUntil(10)
	s.Stop()
	eng.Run()
	if s.Power.Len() < 10 {
		t.Fatalf("power series has %d samples, want >=10", s.Power.Len())
	}
	// CPU gauge at t=2 should show 25% (1 of 2 cores on 1 of 2 nodes).
	if got := util.At(2); !almost(got, 25, 1e-6) {
		t.Fatalf("cpu gauge %g%%, want 25%%", got)
	}
	// Power while busy should exceed idle power.
	if s.Power.At(2) <= s.Power.At(9) {
		t.Fatalf("busy power %g not above idle %g", s.Power.At(2), s.Power.At(9))
	}
}

func TestMeanMemUtilizationGauge(t *testing.T) {
	_, nodes := twoNodes()
	if err := nodes[0].AllocMem(nodes[0].Spec.Mem.Capacity / 2); err != nil {
		t.Fatal(err)
	}
	got := MeanMemUtilization(nodes)()
	if !almost(got, 25, 1e-6) {
		t.Fatalf("mem gauge %g%%, want 25%%", got)
	}
}

func TestGaugesEmptyNodeList(t *testing.T) {
	if MeanUtilization(nil)() != 0 || MeanMemUtilization(nil)() != 0 {
		t.Fatal("empty node list gauges should read 0")
	}
}

func TestSamplerRejectsBadInterval(t *testing.T) {
	for _, tc := range []struct {
		name     string
		interval float64
	}{
		{"zero", 0},
		{"negative", -1},
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, nodes := twoNodes()
			m := NewMeter("supply", nodes)
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSampler(%v) did not panic", tc.interval)
				}
			}()
			NewSampler(eng, m, tc.interval)
		})
	}
}

func TestMeterEmptyNodeSet(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter("empty", nil)
	eng.RunUntil(100)
	if m.Power() != 0 || m.Energy() != 0 {
		t.Fatalf("empty meter reads %v W / %v J, want zeros", m.Power(), m.Energy())
	}
	m.Reset() // must not panic on a node-less meter
	s := NewSampler(eng, m, 1.0)
	eng.RunUntil(110)
	s.Stop()
	eng.Run()
	if got := s.Power.At(105); got != 0 {
		t.Fatalf("empty meter sampled %g W, want 0", got)
	}
}

func TestSamplerResetMidRun(t *testing.T) {
	eng, nodes := twoNodes()
	m := NewMeter("supply", nodes)
	s := NewSampler(eng, m, 1.0)
	eng.RunUntil(50)
	t0 := float64(eng.Now())
	m.Reset()
	eng.RunUntil(100)
	s.Stop()
	eng.Run()
	// Resetting the meter zeroes the energy baseline but must not disturb
	// the power trace: idle draw reads the same either side of the reset.
	want := 2 * 1.40 * (float64(eng.Now()) - t0)
	if got := float64(m.Energy()); !almost(got, want, 1e-6) {
		t.Fatalf("post-reset energy %g, want %g", got, want)
	}
	if before, after := s.Power.At(49), s.Power.At(51); before != after {
		t.Fatalf("power trace disturbed by Reset: %g before vs %g after", before, after)
	}
}

func TestGaugeAddedAfterStopStaysEmpty(t *testing.T) {
	eng, nodes := twoNodes()
	m := NewMeter("supply", nodes)
	s := NewSampler(eng, m, 1.0)
	eng.RunUntil(5)
	s.Stop()
	late := s.AddGauge("late", MeanUtilization(nodes))
	eng.RunUntil(20)
	eng.Run()
	if late.Len() != 0 {
		t.Fatalf("gauge added after Stop collected %d samples, want 0", late.Len())
	}
}

func TestMeterOverParkedNode(t *testing.T) {
	eng, nodes := twoNodes()
	m := NewMeter("supply", nodes)
	nodes[1].PowerDown()
	if got := float64(m.Power()); !almost(got, 1.40, 1e-9) {
		t.Fatalf("meter with one parked node reads %g W, want 1.40", got)
	}
	eng.RunUntil(100)
	// Only the live node accrues energy: 1.40 W × 100 s.
	if got := float64(m.Energy()); !almost(got, 140, 1e-6) {
		t.Fatalf("energy with one parked node %g, want 140", got)
	}
	nodes[1].PowerUp()
	if got := float64(m.Power()); !almost(got, 2*1.40, 1e-9) {
		t.Fatalf("meter after PowerUp reads %g W, want 2.80", got)
	}
}
