package autoscale

import (
	"fmt"
	"math"

	"edisim/internal/sim"
	"edisim/internal/stats"
)

// Pool is the fleet the Manager drives: a fixed array of server slots the
// web layer adapts onto its deployment. Slot indices are stable for the
// life of the run. The Manager guarantees it never calls PowerOff on a
// slot whose Busy still reports true — drain-before-park is the contract
// that scale-down cannot kill in-flight work.
type Pool interface {
	// Len is the number of slots (the provisioned fleet).
	Len() int
	// Join adds slot i to the serving rotation (boot completed, or a drain
	// was cancelled).
	Join(i int)
	// Leave removes slot i from the serving rotation; in-flight work on it
	// keeps running until Busy reports false.
	Leave(i int)
	// Busy reports whether slot i still holds in-flight work (connections,
	// requests or pending accepts).
	Busy(i int) bool
	// PowerOn begins slot i's boot: powered and drawing boot power, not
	// yet serving.
	PowerOn(i int)
	// PowerOff parks the drained slot i: zero draw.
	PowerOff(i int)
	// SetSpeed applies the warm-up penalty to slot i: factor 1 restores
	// nominal speed.
	SetSpeed(i int, factor float64)
}

// Config drives one Manager. The zero value of each knob selects the
// documented default; the web layer resolves BootDelay/Warmup/WarmupFactor
// from the platform's Boot calibration before it gets here.
type Config struct {
	// Policy decides the desired serving count each window (required).
	Policy Policy
	// BootDelay is power-on → serving in seconds (default 5). Boot energy
	// is charged at the node's busy draw for the whole delay.
	BootDelay float64
	// Warmup is the cold-start penalty window after a boot joins the
	// rotation, seconds (default 0: none). Negative disables explicitly.
	Warmup float64
	// WarmupFactor is the speed factor applied while warming (default 0.5).
	WarmupFactor float64
	// CooldownUp is the minimum seconds between scale-up reactions
	// (default 2); CooldownDown the same for scale-downs (default 6, so
	// the fleet grows faster than it shrinks).
	CooldownUp   float64
	CooldownDown float64
	// MinServing floors the rotation (default 1); MaxServing caps it
	// (default: the pool size). InitialServing is the rotation at run
	// start (default MaxServing — start provisioned, let the policy park).
	MinServing     int
	MaxServing     int
	InitialServing int
	// StepUp caps servers added per reaction (default 2). Scale-down is
	// always one server per reaction.
	StepUp int
	// DrainPoll is the busy-recheck period while draining, seconds
	// (default 0.25).
	DrainPoll float64
	// Observer, when non-nil, receives every fleet transition — the run's
	// scale-event time series.
	Observer func(Event)
}

// withDefaults resolves unset knobs against the pool size.
func (c Config) withDefaults(poolLen int) Config {
	if c.BootDelay == 0 {
		c.BootDelay = 5
	}
	if c.WarmupFactor == 0 {
		c.WarmupFactor = 0.5
	}
	if c.Warmup < 0 || c.WarmupFactor >= 1 {
		c.Warmup = 0
	}
	if c.CooldownUp == 0 {
		c.CooldownUp = 2
	}
	if c.CooldownDown == 0 {
		c.CooldownDown = 6
	}
	if c.MinServing == 0 {
		c.MinServing = 1
	}
	if c.MaxServing == 0 || c.MaxServing > poolLen {
		c.MaxServing = poolLen
	}
	if c.InitialServing == 0 {
		c.InitialServing = c.MaxServing
	}
	if c.StepUp == 0 {
		c.StepUp = 2
	}
	if c.DrainPoll == 0 {
		c.DrainPoll = 0.25
	}
	return c
}

// Validate rejects configs whose values would fail silently. Pool-relative
// bounds (MaxServing vs pool size) are checked by NewManager, which knows
// the pool.
func (c Config) Validate() error {
	if c.Policy == nil {
		return fmt.Errorf("autoscale: config needs a Policy")
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	for _, v := range [...]struct {
		name string
		v    float64
	}{
		{"boot delay", c.BootDelay}, {"cooldown up", c.CooldownUp},
		{"cooldown down", c.CooldownDown}, {"drain poll", c.DrainPoll},
	} {
		if math.IsNaN(v.v) || math.IsInf(v.v, 0) || v.v < 0 {
			return fmt.Errorf("autoscale: %s %g must be finite and non-negative", v.name, v.v)
		}
	}
	// Warmup may be negative (explicit "none"); NaN/Inf would still poison.
	if math.IsNaN(c.Warmup) || math.IsInf(c.Warmup, 0) {
		return fmt.Errorf("autoscale: warmup %g must be finite", c.Warmup)
	}
	if math.IsNaN(c.WarmupFactor) || c.WarmupFactor < 0 || c.WarmupFactor > 1 {
		return fmt.Errorf("autoscale: warmup factor %g must be in [0,1]", c.WarmupFactor)
	}
	if c.MinServing < 0 || c.MaxServing < 0 || c.InitialServing < 0 || c.StepUp < 0 {
		return fmt.Errorf("autoscale: serving bounds and step must be non-negative")
	}
	if c.MaxServing > 0 && c.MinServing > c.MaxServing {
		return fmt.Errorf("autoscale: MinServing %d above MaxServing %d", c.MinServing, c.MaxServing)
	}
	return nil
}

// EventKind labels one fleet transition.
type EventKind string

const (
	// EventBootStart: a parked slot was powered on.
	EventBootStart EventKind = "boot-start"
	// EventBootAbort: a scale-down caught a boot in flight; the slot goes
	// straight back to parked (it held no work).
	EventBootAbort EventKind = "boot-abort"
	// EventJoin: a booted slot entered the serving rotation.
	EventJoin EventKind = "join"
	// EventDrainStart: a serving slot left the rotation to drain.
	EventDrainStart EventKind = "drain-start"
	// EventDrainCancel: a scale-up reclaimed a draining slot — the
	// cheapest capacity there is (no boot, warm caches).
	EventDrainCancel EventKind = "drain-cancel"
	// EventPark: a drained slot was powered off.
	EventPark EventKind = "park"
)

// Event is one fleet transition, with the fleet state after it.
type Event struct {
	T    float64
	Kind EventKind
	Slot int

	Serving, Booting, Draining, Parked int
}

// Stats is the Manager's run accounting.
type Stats struct {
	// ScaleUps counts servers that entered the rotation by a policy
	// decision (boot joins + drain cancels); ScaleDowns counts drain
	// starts. Initial convergence to InitialServing is not counted.
	ScaleUps, ScaleDowns int64
	Boots                int64 // power-ons
	DrainCancels         int64
	Parks                int64 // power-offs after a drain
	// BootSecs is the total time slots spent booting (aborted boots count
	// their partial time); boot energy is BootSecs × the busy draw.
	BootSecs float64
}

type slotState uint8

const (
	slotServing slotState = iota
	slotBooting
	slotDraining
	slotParked
)

type slot struct {
	state slotState
	// seq invalidates pending timers (boot completion, warm-up end, drain
	// poll) when the slot transitions out from under them.
	seq uint64
	// since is when the current state began (boot accounting).
	since sim.Time
}

// Manager owns the fleet lifecycle: Observe feeds it one Signals window,
// it asks the Policy for a desired size and moves the pool there through
// boot/drain transitions. All decisions run on engine time, so runs are
// deterministic for a fixed seed and worker count.
type Manager struct {
	eng  *sim.Engine
	pool Pool
	cfg  Config

	slots                              []slot
	serving, booting, draining, parked int

	lastUp, lastDown sim.Time
	acted            bool // a reaction happened since start (gates cooldown)

	integ *stats.Integrator // serving count over time
	stats Stats
	dead  bool
}

// NewManager validates cfg against the pool, brings the pool to
// InitialServing (slots [0, initial) join, the rest park — not counted as
// scale events) and returns the manager ready for Observe calls.
func NewManager(eng *sim.Engine, pool Pool, cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := pool.Len()
	if n == 0 {
		return nil, fmt.Errorf("autoscale: pool is empty")
	}
	cfg = cfg.withDefaults(n)
	if cfg.MinServing > n {
		return nil, fmt.Errorf("autoscale: MinServing %d above pool size %d", cfg.MinServing, n)
	}
	if cfg.InitialServing < cfg.MinServing || cfg.InitialServing > cfg.MaxServing {
		return nil, fmt.Errorf("autoscale: InitialServing %d outside [%d,%d]",
			cfg.InitialServing, cfg.MinServing, cfg.MaxServing)
	}
	m := &Manager{eng: eng, pool: pool, cfg: cfg, slots: make([]slot, n)}
	now := eng.Now()
	for i := range m.slots {
		m.slots[i].since = now
		if i < cfg.InitialServing {
			m.slots[i].state = slotServing
			m.serving++
			pool.Join(i)
		} else {
			m.slots[i].state = slotParked
			m.parked++
			pool.PowerOff(i)
		}
	}
	m.integ = stats.NewIntegrator(float64(now), float64(m.serving))
	return m, nil
}

// Observe feeds one controller window to the policy and reacts. The fleet
// fields of sig are filled in here; callers provide the traffic and SLO
// signals. Steady-state calls (no transition) are allocation-free.
func (m *Manager) Observe(sig Signals) {
	if m.dead {
		return
	}
	sig.Serving, sig.Booting, sig.Draining, sig.Parked = m.serving, m.booting, m.draining, m.parked
	sig.BootDelay = m.cfg.BootDelay
	want := m.cfg.Policy.Desired(sig)
	if want < m.cfg.MinServing {
		want = m.cfg.MinServing
	}
	if want > m.cfg.MaxServing {
		want = m.cfg.MaxServing
	}
	committed := m.serving + m.booting
	now := m.eng.Now()
	switch {
	case want > committed:
		if m.acted && float64(now-m.lastUp) < m.cfg.CooldownUp {
			return
		}
		n := want - committed
		if n > m.cfg.StepUp {
			n = m.cfg.StepUp
		}
		added := 0
		// Reclaim draining slots first: no boot delay, warm caches.
		for i := range m.slots {
			if added == n {
				break
			}
			if m.slots[i].state == slotDraining {
				m.cancelDrain(i)
				added++
			}
		}
		for i := range m.slots {
			if added == n {
				break
			}
			if m.slots[i].state == slotParked {
				m.startBoot(i)
				added++
			}
		}
		if added > 0 {
			m.lastUp = now
			m.acted = true
		}
	case want < committed:
		if m.acted && float64(now-m.lastDown) < m.cfg.CooldownDown {
			return
		}
		// One server per reaction, cheapest first: abort a boot in flight
		// (it holds no work) before draining a serving slot.
		for i := len(m.slots) - 1; i >= 0; i-- {
			if m.slots[i].state == slotBooting {
				m.abortBoot(i)
				m.lastDown = now
				m.acted = true
				return
			}
		}
		if m.serving > m.cfg.MinServing {
			for i := len(m.slots) - 1; i >= 0; i-- {
				if m.slots[i].state == slotServing {
					m.startDrain(i)
					m.lastDown = now
					m.acted = true
					return
				}
			}
		}
	}
}

func (m *Manager) startBoot(i int) {
	m.slots[i].state = slotBooting
	m.slots[i].seq++
	m.slots[i].since = m.eng.Now()
	m.parked--
	m.booting++
	m.pool.PowerOn(i)
	m.stats.Boots++
	m.event(EventBootStart, i)
	seq := m.slots[i].seq
	m.eng.After(m.cfg.BootDelay, func() {
		if m.dead || m.slots[i].seq != seq {
			return
		}
		m.join(i, true)
	})
}

func (m *Manager) abortBoot(i int) {
	m.stats.BootSecs += float64(m.eng.Now() - m.slots[i].since)
	m.slots[i].state = slotParked
	m.slots[i].seq++
	m.slots[i].since = m.eng.Now()
	m.booting--
	m.parked++
	m.pool.PowerOff(i)
	m.event(EventBootAbort, i)
}

// join moves a booted slot (or, via cancelDrain, a reclaimed draining
// slot) into the rotation.
func (m *Manager) join(i int, fromBoot bool) {
	now := m.eng.Now()
	if fromBoot {
		m.stats.BootSecs += float64(now - m.slots[i].since)
		m.booting--
	}
	m.slots[i].state = slotServing
	m.slots[i].seq++
	m.slots[i].since = now
	m.serving++
	m.integ.Set(float64(now), float64(m.serving))
	m.pool.Join(i)
	m.stats.ScaleUps++
	if fromBoot {
		// Cold start: caches, JITs and connection pools are empty; the
		// server runs at WarmupFactor speed for the warm-up window.
		if m.cfg.Warmup > 0 {
			m.pool.SetSpeed(i, m.cfg.WarmupFactor)
			seq := m.slots[i].seq
			m.eng.After(m.cfg.Warmup, func() {
				if m.dead || m.slots[i].seq != seq {
					return
				}
				m.pool.SetSpeed(i, 1)
			})
		}
		m.event(EventJoin, i)
	}
}

func (m *Manager) cancelDrain(i int) {
	m.draining--
	m.stats.DrainCancels++
	m.join(i, false)
	m.event(EventDrainCancel, i)
}

func (m *Manager) startDrain(i int) {
	now := m.eng.Now()
	m.slots[i].state = slotDraining
	m.slots[i].seq++
	m.slots[i].since = now
	m.serving--
	m.draining++
	m.integ.Set(float64(now), float64(m.serving))
	m.pool.Leave(i)
	m.stats.ScaleDowns++
	m.event(EventDrainStart, i)
	if !m.pool.Busy(i) {
		m.park(i)
		return
	}
	seq := m.slots[i].seq
	var poll func()
	poll = func() {
		if m.dead || m.slots[i].seq != seq {
			return
		}
		if m.pool.Busy(i) {
			m.eng.After(m.cfg.DrainPoll, poll)
			return
		}
		m.park(i)
	}
	m.eng.After(m.cfg.DrainPoll, poll)
}

func (m *Manager) park(i int) {
	m.slots[i].state = slotParked
	m.slots[i].seq++
	m.slots[i].since = m.eng.Now()
	m.draining--
	m.parked++
	m.pool.PowerOff(i)
	m.stats.Parks++
	m.event(EventPark, i)
}

func (m *Manager) event(kind EventKind, i int) {
	if m.cfg.Observer == nil {
		return
	}
	m.cfg.Observer(Event{
		T: float64(m.eng.Now()), Kind: kind, Slot: i,
		Serving: m.serving, Booting: m.booting, Draining: m.draining, Parked: m.parked,
	})
}

// Counts reports the current fleet split.
func (m *Manager) Counts() (serving, booting, draining, parked int) {
	return m.serving, m.booting, m.draining, m.parked
}

// Stats reports the run accounting so far.
func (m *Manager) Stats() Stats { return m.stats }

// ServingIntegral reports ∫ serving dt from manager creation to t, which
// must be at or after the last transition. Two readings bracket a window's
// time-weighted mean serving count.
func (m *Manager) ServingIntegral(t sim.Time) float64 {
	return m.integ.Total(float64(t))
}

// Halt deactivates the manager: pending boot/warm-up/drain timers become
// no-ops and further Observe calls are ignored. The pool is left as-is;
// the owner restores node state (the web layer re-powers parked nodes so
// the deployment is reusable).
func (m *Manager) Halt() {
	m.dead = true
	for i := range m.slots {
		m.slots[i].seq++
	}
}
