// Package autoscale is the elasticity engine over the web tier: pluggable
// policies decide how many servers should be serving, and a lifecycle
// manager moves the fleet there through realistic transitions — power-on
// boot delays, cold-start warm-up penalties, drain-before-park scale-down —
// with cooldown hysteresis so policies cannot flap.
//
// The package is deliberately a leaf: it knows nothing about web servers or
// platforms. Policies read Signals (the SLO controller's windowed verdicts
// plus fleet state), the Manager drives an abstract Pool, and per-platform
// calibration arrives through Capacity binding — mirroring how
// internal/load binds RNG substreams.
package autoscale

import (
	"fmt"
	"math"

	"edisim/internal/load"
)

// Signals is one observation window delivered to a Policy: the SLO
// controller's verdict for the window plus the fleet state the Manager
// fills in before asking for a decision. All rates are per second over the
// window just ended.
type Signals struct {
	T float64 // seconds since run start

	// Fleet state (filled by the Manager; policies need not track it).
	Serving  int // servers in the routing rotation, including warming ones
	Booting  int // powered on, not yet serving
	Draining int // removed from the rotation, finishing in-flight work
	Parked   int // powered off
	// BootDelay is the fleet's power-on → serving latency in seconds;
	// predictive policies lead the profile by at least this much.
	BootDelay float64

	Util         float64 // mean CPU utilization of serving servers over the window, [0,1]
	Queue        float64 // mean in-flight requests per serving server at window end
	ShedRate     float64 // admission-control rejections per second in the window
	ArrivalRate  float64 // offered connection arrivals per second in the window
	Quantile     float64 // the window's latency quantile at the SLO percentile, seconds
	Availability float64 // served/settled in the window
	Burning      bool    // the SLO controller's verdict for the window
}

// Committed is the capacity already paid for: serving servers plus boots in
// flight. Policies return a desired serving count; the Manager compares it
// against Committed so a pending boot is not ordered twice.
func (s Signals) Committed() int { return s.Serving + s.Booting }

// Policy decides how many servers should be serving. Desired is evaluated
// once per SLO controller window; the Manager clamps the answer to
// [MinServing, MaxServing] and applies step limits and cooldowns, so a
// policy can be aggressive without flapping the fleet. Implementations must
// be deterministic pure functions of Signals (no wall clock, no RNG) and
// allocation-free in steady state — the tick is pinned at 0 allocs/op.
type Policy interface {
	// Name labels the policy in reports and events.
	Name() string
	// Desired returns the serving count the policy wants.
	Desired(s Signals) int
	// Validate rejects configurations that would fail silently.
	Validate() error
}

// Capacity is the per-platform calibration a policy may need: what one
// server sustains. The web layer binds it before the run starts, so zero
// thresholds in QueueDepth and Predictive resolve to platform-appropriate
// defaults instead of magic numbers.
type Capacity struct {
	// ConnRate is one server's sustainable new-connection accept rate /s.
	ConnRate float64
	// MaxInflight is one server's admitted-but-unfinished request bound.
	MaxInflight int
}

// CapacityBinder is implemented by policies whose defaults depend on the
// platform. BindCapacity returns a policy with unset thresholds resolved;
// it must not mutate the receiver.
type CapacityBinder interface {
	Policy
	BindCapacity(c Capacity) Policy
}

// Bind resolves a policy's platform-dependent defaults when it asks for
// them, and returns any other policy unchanged.
func Bind(p Policy, c Capacity) Policy {
	if b, ok := p.(CapacityBinder); ok {
		return b.BindCapacity(c)
	}
	return p
}

// --- Target utilization ------------------------------------------------------

// TargetUtil sizes the fleet so the measured serving-tier utilization sits
// at Target: desired = ceil(serving × util/Target), with a dead band of
// ±Tolerance around the target so measurement noise does not flap the
// fleet. This is the classic horizontal-pod-autoscaler shape.
type TargetUtil struct {
	// Target is the desired mean utilization (default 0.6).
	Target float64
	// Tolerance is the relative dead band around Target within which the
	// current size is kept (default 0.15).
	Tolerance float64
}

func (p TargetUtil) Name() string { return "target-util" }

func (p TargetUtil) Desired(s Signals) int {
	target := p.Target
	if target == 0 {
		target = 0.6
	}
	tol := p.Tolerance
	if tol == 0 {
		tol = 0.15
	}
	ratio := s.Util / target
	if ratio > 1-tol && ratio < 1+tol {
		return s.Committed()
	}
	// Size against the serving tier the utilization was measured on; a
	// burning SLO overrides a comfortable-looking utilization (queues can
	// grow while the CPU integral still reads low).
	want := int(math.Ceil(float64(s.Serving) * ratio))
	if s.Burning && want <= s.Committed() {
		want = s.Committed() + 1
	}
	return want
}

func (p TargetUtil) Validate() error {
	if math.IsNaN(p.Target) || p.Target < 0 || p.Target > 1 {
		return fmt.Errorf("autoscale: target utilization %g must be in [0,1]", p.Target)
	}
	if math.IsNaN(p.Tolerance) || p.Tolerance < 0 || p.Tolerance >= 1 {
		return fmt.Errorf("autoscale: utilization tolerance %g must be in [0,1)", p.Tolerance)
	}
	return nil
}

// --- Queue depth / shed rate -------------------------------------------------

// QueueDepth is the reactive policy: add a server while the mean per-server
// in-flight queue is above High or admission control is shedding, remove
// one when the queue falls below Low with no shedding. Thresholds default
// from the platform's MaxInflight through Capacity binding.
type QueueDepth struct {
	// High is the mean per-server in-flight depth above which a server is
	// added (default: MaxInflight/2 via Capacity binding).
	High float64
	// Low is the depth below which a server is removed (default High/8).
	Low float64
	// ShedTrips is the shed rate (/s) above which the policy scales up
	// regardless of queue depth (default 1).
	ShedTrips float64
	// Step is how many servers one high-queue reaction adds (default 1).
	Step int
}

func (p QueueDepth) Name() string { return "queue-depth" }

// BindCapacity resolves the queue thresholds against the platform bound.
func (p QueueDepth) BindCapacity(c Capacity) Policy {
	if p.High == 0 && c.MaxInflight > 0 {
		p.High = float64(c.MaxInflight) / 2
	}
	if p.Low == 0 {
		p.Low = p.High / 8
	}
	return p
}

func (p QueueDepth) Desired(s Signals) int {
	high := p.High
	if high == 0 {
		high = 32 // unbound fallback
	}
	low := p.Low
	if low == 0 {
		low = high / 8
	}
	trips := p.ShedTrips
	if trips == 0 {
		trips = 1
	}
	step := p.Step
	if step == 0 {
		step = 1
	}
	if s.Queue >= high || s.ShedRate > trips || s.Burning {
		return s.Committed() + step
	}
	if s.Queue <= low && s.ShedRate == 0 {
		return s.Committed() - 1
	}
	return s.Committed()
}

func (p QueueDepth) Validate() error {
	for _, v := range [...]struct {
		name string
		v    float64
	}{{"high watermark", p.High}, {"low watermark", p.Low}, {"shed trip rate", p.ShedTrips}} {
		if math.IsNaN(v.v) || math.IsInf(v.v, 0) || v.v < 0 {
			return fmt.Errorf("autoscale: queue %s %g must be finite and non-negative", v.name, v.v)
		}
	}
	if p.Low > p.High && p.High != 0 {
		return fmt.Errorf("autoscale: queue low watermark %g above high watermark %g", p.Low, p.High)
	}
	if p.Step < 0 {
		return fmt.Errorf("autoscale: queue step %d must be non-negative", p.Step)
	}
	return nil
}

// --- Predictive --------------------------------------------------------------

// Predictive extrapolates the arrival profile: it reads the profiled rate
// one boot delay (plus Lead) ahead and provisions capacity for it now, so
// a server ordered today is serving when the load it was ordered for
// arrives. It is the only policy that can beat the boot delay on a known
// diurnal cycle; on traffic the profile does not describe (faults,
// unmodeled spikes) it is blind, which is why it composes with the SLO
// controller's brownout rather than replacing it.
type Predictive struct {
	// Profile is the arrival profile to extrapolate (required). Note
	// Bursty's At reports its quiet-state base — the burst schedule is
	// random, so a predictive policy cannot see it by construction.
	Profile load.Profile
	// Lead is extra lookahead in seconds beyond the boot delay (default 0).
	Lead float64
	// PerServer is the conn/s one serving server should absorb
	// (default: 0.7 × the platform ConnRate via Capacity binding).
	PerServer float64
}

func (p Predictive) Name() string { return "predictive" }

// BindCapacity resolves the per-server absorption rate against the
// platform's accept rate, with 30% headroom for the Poisson spread.
func (p Predictive) BindCapacity(c Capacity) Policy {
	if p.PerServer == 0 && c.ConnRate > 0 {
		p.PerServer = 0.7 * c.ConnRate
	}
	return p
}

func (p Predictive) Desired(s Signals) int {
	per := p.PerServer
	if per <= 0 {
		return s.Committed() // unbound: hold
	}
	rate := p.Profile.At(s.T + s.BootDelay + p.Lead)
	want := int(math.Ceil(rate / per))
	// The profile is a model of the offered load, not of failures: while
	// the SLO burns, never scale below what is already committed.
	if s.Burning && want < s.Committed()+1 {
		want = s.Committed() + 1
	}
	return want
}

func (p Predictive) Validate() error {
	if p.Profile == nil {
		return fmt.Errorf("autoscale: predictive policy needs a load profile")
	}
	if err := p.Profile.Validate(); err != nil {
		return err
	}
	if math.IsNaN(p.Lead) || math.IsInf(p.Lead, 0) || p.Lead < 0 {
		return fmt.Errorf("autoscale: predictive lead %g must be finite and non-negative", p.Lead)
	}
	if math.IsNaN(p.PerServer) || math.IsInf(p.PerServer, 0) || p.PerServer < 0 {
		return fmt.Errorf("autoscale: predictive per-server rate %g must be finite and non-negative", p.PerServer)
	}
	return nil
}
