package autoscale

import (
	"math"
	"strings"
	"testing"

	"edisim/internal/load"
)

func TestTargetUtilDeadBandHolds(t *testing.T) {
	p := TargetUtil{Target: 0.6, Tolerance: 0.15}
	s := Signals{Serving: 4, Booting: 1, Util: 0.6}
	if got := p.Desired(s); got != s.Committed() {
		t.Fatalf("on-target util: desired %d, want committed %d", got, s.Committed())
	}
	// Edges of the dead band still hold.
	for _, u := range []float64{0.6 * (1 - 0.14), 0.6 * (1 + 0.14)} {
		s.Util = u
		if got := p.Desired(s); got != s.Committed() {
			t.Fatalf("util %g inside band: desired %d, want %d", u, got, s.Committed())
		}
	}
}

func TestTargetUtilScalesProportionally(t *testing.T) {
	p := TargetUtil{Target: 0.5}
	// 4 servers at 1.0 util against a 0.5 target: want ceil(4×2) = 8.
	if got := p.Desired(Signals{Serving: 4, Util: 1.0}); got != 8 {
		t.Fatalf("overload: desired %d, want 8", got)
	}
	// 8 servers at 0.1 util: want ceil(8×0.2) = 2.
	if got := p.Desired(Signals{Serving: 8, Util: 0.1}); got != 2 {
		t.Fatalf("idle: desired %d, want 2", got)
	}
}

func TestTargetUtilBurningOverridesComfortableUtil(t *testing.T) {
	p := TargetUtil{Target: 0.6}
	// Low measured util but a burning SLO (queues grow while the CPU
	// integral lags): must still add capacity.
	s := Signals{Serving: 4, Util: 0.2, Burning: true}
	if got := p.Desired(s); got <= s.Committed() {
		t.Fatalf("burning SLO at low util: desired %d, want > %d", got, s.Committed())
	}
}

func TestQueueDepthReacts(t *testing.T) {
	p := QueueDepth{High: 40, Low: 5}
	base := Signals{Serving: 3}

	s := base
	s.Queue = 50
	if got := p.Desired(s); got != 4 {
		t.Fatalf("deep queue: desired %d, want 4", got)
	}
	s = base
	s.Queue = 10 // between Low and High
	if got := p.Desired(s); got != 3 {
		t.Fatalf("mid queue: desired %d, want hold at 3", got)
	}
	s = base
	s.Queue = 2
	if got := p.Desired(s); got != 2 {
		t.Fatalf("shallow queue: desired %d, want 2", got)
	}
	// Shedding forces growth even with an empty queue.
	s = base
	s.ShedRate = 10
	if got := p.Desired(s); got != 4 {
		t.Fatalf("shedding: desired %d, want 4", got)
	}
	// A shallow queue with residual shedding must NOT scale down.
	s = base
	s.Queue = 2
	s.ShedRate = 0.5
	if got := p.Desired(s); got != 3 {
		t.Fatalf("shallow queue while shedding: desired %d, want hold at 3", got)
	}
}

func TestQueueDepthBindsToMaxInflight(t *testing.T) {
	p := Bind(QueueDepth{}, Capacity{MaxInflight: 96}).(QueueDepth)
	if p.High != 48 {
		t.Fatalf("bound High = %g, want 48 (MaxInflight/2)", p.High)
	}
	if p.Low != 6 {
		t.Fatalf("bound Low = %g, want 6 (High/8)", p.Low)
	}
	// Explicit thresholds survive binding.
	q := Bind(QueueDepth{High: 10, Low: 2}, Capacity{MaxInflight: 96}).(QueueDepth)
	if q.High != 10 || q.Low != 2 {
		t.Fatalf("explicit thresholds rebound: %+v", q)
	}
}

func TestPredictiveLeadsBootDelay(t *testing.T) {
	// A spike starting at t=60. With boot delay 5 and per-server 100, the
	// policy provisioning at t=55 already reads the spike rate (600 → 6
	// servers) even though the instantaneous rate is still the 50/s base.
	prof := load.Spike{Base: 50, Peak: 600, Start: 60, Duration: 40}
	p := Bind(Predictive{Profile: prof}, Capacity{ConnRate: 1000.0 / 7}).(Predictive)
	if math.Abs(p.PerServer-100) > 1e-9 {
		t.Fatalf("bound PerServer = %g, want 100", p.PerServer)
	}
	if got := p.Desired(Signals{T: 0, BootDelay: 5, Serving: 1}); got != 1 {
		t.Fatalf("t=0: desired %d, want 1 (base 50/s)", got)
	}
	if got := p.Desired(Signals{T: 55, BootDelay: 5, Serving: 1}); got != 6 {
		t.Fatalf("t=55: desired %d, want 6 (spike rate 600 one boot delay ahead)", got)
	}
}

func TestPredictiveBurningFloorsAtCommitted(t *testing.T) {
	prof := load.Steady{Rate: 10}
	p := Predictive{Profile: prof, PerServer: 100}
	// Profile says 1 server is plenty; a burning SLO (load the profile does
	// not model) must still grow the fleet.
	s := Signals{Serving: 3, Burning: true}
	if got := p.Desired(s); got != 4 {
		t.Fatalf("burning: desired %d, want committed+1 = 4", got)
	}
}

func TestPredictiveUnboundHolds(t *testing.T) {
	p := Predictive{Profile: load.Steady{Rate: 1000}}
	s := Signals{Serving: 2, Booting: 1}
	if got := p.Desired(s); got != s.Committed() {
		t.Fatalf("unbound PerServer: desired %d, want hold at %d", got, s.Committed())
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		want string // substring of the error, "" = valid
	}{
		{"target default", TargetUtil{}, ""},
		{"target range", TargetUtil{Target: 1.5}, "must be in [0,1]"},
		{"target NaN", TargetUtil{Target: math.NaN()}, "must be in [0,1]"},
		{"tolerance range", TargetUtil{Tolerance: 1}, "must be in [0,1)"},
		{"queue default", QueueDepth{}, ""},
		{"queue negative", QueueDepth{High: -1}, "non-negative"},
		{"queue inverted", QueueDepth{High: 5, Low: 10}, "above high watermark"},
		{"queue step", QueueDepth{Step: -1}, "must be non-negative"},
		{"predictive no profile", Predictive{}, "needs a load profile"},
		{"predictive ok", Predictive{Profile: load.Steady{Rate: 5}}, ""},
		{"predictive lead", Predictive{Profile: load.Steady{Rate: 5}, Lead: math.Inf(1)}, "finite"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestBindLeavesUnbindablePoliciesAlone(t *testing.T) {
	p := TargetUtil{Target: 0.5}
	if got := Bind(p, Capacity{ConnRate: 100}); got != Policy(p) {
		t.Fatalf("Bind changed a non-binder policy: %#v", got)
	}
}
