package autoscale

import (
	"fmt"
	"testing"

	"edisim/internal/sim"
)

// fakePool is an in-memory Pool that records every transition and lets a
// test script per-slot busyness.
type fakePool struct {
	n     int
	inRot []bool
	on    []bool
	busy  []bool
	speed []float64
	log   []string
}

func newFakePool(n int) *fakePool {
	p := &fakePool{
		n:     n,
		inRot: make([]bool, n),
		on:    make([]bool, n),
		busy:  make([]bool, n),
		speed: make([]float64, n),
	}
	for i := range p.on {
		p.on[i] = true
		p.speed[i] = 1
	}
	return p
}

func (p *fakePool) Len() int { return p.n }
func (p *fakePool) Join(i int) {
	p.inRot[i] = true
	p.log = append(p.log, fmt.Sprintf("join %d", i))
}
func (p *fakePool) Leave(i int) {
	p.inRot[i] = false
	p.log = append(p.log, fmt.Sprintf("leave %d", i))
}
func (p *fakePool) Busy(i int) bool { return p.busy[i] }
func (p *fakePool) PowerOn(i int) {
	p.on[i] = true
	p.log = append(p.log, fmt.Sprintf("on %d", i))
}
func (p *fakePool) PowerOff(i int) {
	if p.busy[i] {
		panic(fmt.Sprintf("fakePool: PowerOff busy slot %d", i))
	}
	p.on[i] = false
	p.log = append(p.log, fmt.Sprintf("off %d", i))
}
func (p *fakePool) SetSpeed(i int, f float64) {
	p.speed[i] = f
	p.log = append(p.log, fmt.Sprintf("speed %d %g", i, f))
}

// holdAt is a scriptable policy: Desired returns whatever the test set.
type holdAt struct{ want *int }

func (h holdAt) Name() string        { return "hold-at" }
func (h holdAt) Desired(Signals) int { return *h.want }
func (h holdAt) Validate() error     { return nil }

func testManager(t *testing.T, n int, cfg Config) (*sim.Engine, *fakePool, *Manager, *int) {
	t.Helper()
	eng := sim.NewEngine()
	pool := newFakePool(n)
	want := new(int)
	*want = cfg.InitialServing
	if cfg.Policy == nil {
		cfg.Policy = holdAt{want}
	}
	m, err := NewManager(eng, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, pool, m, want
}

func TestManagerInitialSplit(t *testing.T) {
	_, pool, m, _ := testManager(t, 8, Config{InitialServing: 3})
	serving, booting, draining, parked := m.Counts()
	if serving != 3 || booting != 0 || draining != 0 || parked != 5 {
		t.Fatalf("initial split = %d/%d/%d/%d, want 3/0/0/5", serving, booting, draining, parked)
	}
	for i := 0; i < 8; i++ {
		if wantRot := i < 3; pool.inRot[i] != wantRot {
			t.Fatalf("slot %d inRot=%v, want %v", i, pool.inRot[i], wantRot)
		}
		if wantOn := i < 3; pool.on[i] != wantOn {
			t.Fatalf("slot %d on=%v, want %v", i, pool.on[i], wantOn)
		}
	}
	if st := m.Stats(); st.Boots != 0 || st.ScaleUps != 0 || st.Parks != 0 {
		t.Fatalf("initial convergence counted as scale events: %+v", st)
	}
}

func TestManagerBootDelayGatesJoin(t *testing.T) {
	eng, pool, m, want := testManager(t, 4, Config{InitialServing: 1, BootDelay: 5})
	*want = 3
	m.Observe(Signals{})
	serving, booting, _, parked := m.Counts()
	if serving != 1 || booting != 2 || parked != 1 {
		t.Fatalf("after observe: %d/%d serving/booting, want 1/2", serving, booting)
	}
	// The booting slots are powered but not in rotation yet.
	if !pool.on[1] || !pool.on[2] || pool.inRot[1] || pool.inRot[2] {
		t.Fatalf("booting slots should be on but out of rotation: on=%v rot=%v", pool.on, pool.inRot)
	}
	eng.RunUntil(sim.Time(4.99))
	if s, _, _, _ := m.Counts(); s != 1 {
		t.Fatalf("joined before the boot delay elapsed: serving=%d", s)
	}
	eng.RunUntil(sim.Time(5.01))
	if s, b, _, _ := m.Counts(); s != 3 || b != 0 {
		t.Fatalf("after boot delay: serving=%d booting=%d, want 3/0", s, b)
	}
	st := m.Stats()
	if st.Boots != 2 || st.ScaleUps != 2 {
		t.Fatalf("stats: %+v, want 2 boots, 2 scale-ups", st)
	}
	if st.BootSecs < 9.99 || st.BootSecs > 10.01 {
		t.Fatalf("BootSecs = %g, want 10 (2 boots × 5s)", st.BootSecs)
	}
}

func TestManagerWarmupPenalty(t *testing.T) {
	eng, pool, m, want := testManager(t, 2, Config{
		InitialServing: 1, BootDelay: 2, Warmup: 3, WarmupFactor: 0.5,
	})
	*want = 2
	m.Observe(Signals{})
	eng.RunUntil(sim.Time(2.5)) // boot done at t=2, warming until t=5
	if pool.speed[1] != 0.5 {
		t.Fatalf("warming slot speed = %g, want 0.5", pool.speed[1])
	}
	eng.RunUntil(sim.Time(5.5))
	if pool.speed[1] != 1 {
		t.Fatalf("post-warm-up speed = %g, want 1", pool.speed[1])
	}
}

func TestManagerDrainWaitsForBusy(t *testing.T) {
	eng, pool, m, want := testManager(t, 3, Config{InitialServing: 3, DrainPoll: 0.25})
	pool.busy[2] = true // highest index drains first
	*want = 2
	m.Observe(Signals{})
	if s, _, d, _ := m.Counts(); s != 2 || d != 1 {
		t.Fatalf("after observe: serving=%d draining=%d, want 2/1", s, d)
	}
	if pool.inRot[2] {
		t.Fatal("draining slot still in rotation")
	}
	if !pool.on[2] {
		t.Fatal("draining slot was powered off while busy")
	}
	eng.RunUntil(sim.Time(3))
	if !pool.on[2] {
		t.Fatal("busy slot was parked")
	}
	pool.busy[2] = false
	eng.RunUntil(sim.Time(6))
	if pool.on[2] {
		t.Fatal("idle drained slot was not parked")
	}
	if _, _, d, parked := m.Counts(); d != 0 || parked != 1 {
		t.Fatalf("after park: draining=%d parked=%d, want 0/1", d, parked)
	}
	if st := m.Stats(); st.Parks != 1 || st.ScaleDowns != 1 {
		t.Fatalf("stats: %+v, want 1 park, 1 scale-down", st)
	}
}

func TestManagerIdleDrainParksImmediately(t *testing.T) {
	_, pool, m, want := testManager(t, 2, Config{InitialServing: 2})
	*want = 1
	m.Observe(Signals{})
	if pool.on[1] {
		t.Fatal("idle slot should park in the same event")
	}
}

func TestManagerDrainCancelReclaimsBeforeBooting(t *testing.T) {
	eng, pool, m, want := testManager(t, 3, Config{
		InitialServing: 3, BootDelay: 100, CooldownUp: 1, CooldownDown: 1,
	})
	pool.busy[2] = true
	*want = 2
	m.Observe(Signals{}) // slot 2 starts draining
	*want = 3
	eng.RunUntil(sim.Time(2)) // past CooldownUp
	m.Observe(Signals{})
	// The draining slot must rejoin instantly — no boot, no 100s delay.
	if s, b, d, _ := m.Counts(); s != 3 || b != 0 || d != 0 {
		t.Fatalf("after reclaim: %d/%d/%d serving/booting/draining, want 3/0/0", s, b, d)
	}
	if !pool.inRot[2] {
		t.Fatal("reclaimed slot not back in rotation")
	}
	st := m.Stats()
	if st.DrainCancels != 1 || st.Boots != 0 {
		t.Fatalf("stats: %+v, want 1 drain-cancel and 0 boots", st)
	}
	// The stale drain poll must not park the slot later.
	pool.busy[2] = false
	eng.RunUntil(sim.Time(10))
	if !pool.inRot[2] || !pool.on[2] {
		t.Fatal("stale drain poll parked a reclaimed slot")
	}
}

func TestManagerAbortsBootBeforeDraining(t *testing.T) {
	eng, pool, m, want := testManager(t, 4, Config{
		InitialServing: 2, BootDelay: 50, CooldownUp: 1, CooldownDown: 1,
	})
	*want = 3
	m.Observe(Signals{}) // slot 2 starts booting
	*want = 2
	eng.RunUntil(sim.Time(2))
	m.Observe(Signals{})
	// The boot is aborted (cheapest: holds no work); nobody drains.
	if s, b, d, parked := m.Counts(); s != 2 || b != 0 || d != 0 || parked != 2 {
		t.Fatalf("after abort: %d/%d/%d/%d, want 2/0/0/2", s, b, d, parked)
	}
	if pool.on[2] {
		t.Fatal("aborted boot left the slot powered")
	}
	// BootSecs charges the partial boot (2s), and the stale completion
	// timer at t=50 must not join the slot.
	if st := m.Stats(); st.BootSecs < 1.99 || st.BootSecs > 2.01 {
		t.Fatalf("BootSecs = %g, want 2 (partial boot)", st.BootSecs)
	}
	eng.RunUntil(sim.Time(60))
	if s, _, _, _ := m.Counts(); s != 2 {
		t.Fatalf("stale boot timer fired: serving=%d", s)
	}
}

func TestManagerCooldownsGateReactions(t *testing.T) {
	eng, _, m, want := testManager(t, 8, Config{
		InitialServing: 2, BootDelay: 0.1, CooldownUp: 5, CooldownDown: 5, StepUp: 1,
	})
	*want = 8
	m.Observe(Signals{})
	if _, b, _, _ := m.Counts(); b != 1 {
		t.Fatalf("first reaction: booting=%d, want 1 (StepUp)", b)
	}
	// A second observe inside the cooldown must be ignored.
	eng.RunUntil(sim.Time(1))
	m.Observe(Signals{})
	if s, b, _, _ := m.Counts(); s+b != 3 {
		t.Fatalf("cooldown violated: committed=%d, want 3", s+b)
	}
	// After the cooldown it reacts again.
	eng.RunUntil(sim.Time(6))
	m.Observe(Signals{})
	if s, b, _, _ := m.Counts(); s+b != 4 {
		t.Fatalf("post-cooldown: committed=%d, want 4", s+b)
	}
}

func TestManagerClampsToBounds(t *testing.T) {
	_, _, m, want := testManager(t, 6, Config{
		InitialServing: 3, MinServing: 2, MaxServing: 4, StepUp: 10, BootDelay: 0.1,
	})
	*want = 100
	m.Observe(Signals{})
	if s, b, _, _ := m.Counts(); s+b != 4 {
		t.Fatalf("MaxServing violated: committed=%d, want 4", s+b)
	}
	m2eng, _, m2, want2 := testManager(t, 6, Config{InitialServing: 3, MinServing: 2})
	_ = m2eng
	*want2 = 0
	m2.Observe(Signals{})
	m2.Observe(Signals{})
	if s, _, d, _ := m2.Counts(); s+d < 2 {
		t.Fatalf("MinServing violated: serving+draining=%d, want >= 2", s+d)
	}
}

func TestManagerScaleDownOnePerReaction(t *testing.T) {
	_, _, m, want := testManager(t, 6, Config{InitialServing: 6, CooldownDown: 0.1})
	*want = 1
	m.Observe(Signals{})
	// Idle slots park in the same event, so the reaction shows up as one
	// fewer serving — never more than one per Observe.
	if s, _, _, _ := m.Counts(); s != 5 {
		t.Fatalf("one reaction left %d serving, want 5 (exactly one down)", s)
	}
	if st := m.Stats(); st.ScaleDowns != 1 {
		t.Fatalf("ScaleDowns = %d, want 1", st.ScaleDowns)
	}
}

func TestManagerHaltSilencesTimers(t *testing.T) {
	eng, pool, m, want := testManager(t, 4, Config{InitialServing: 1, BootDelay: 5})
	*want = 3
	m.Observe(Signals{})
	m.Halt()
	eng.RunUntil(sim.Time(10))
	// Boot completions after Halt must not touch the pool.
	if pool.inRot[1] || pool.inRot[2] {
		t.Fatal("halted manager joined a slot")
	}
	m.Observe(Signals{}) // ignored, no panic
}

func TestManagerObserverSeesTransitions(t *testing.T) {
	var kinds []EventKind
	eng := sim.NewEngine()
	pool := newFakePool(3)
	want := 1
	m, err := NewManager(eng, pool, Config{
		Policy: holdAt{&want}, InitialServing: 1, BootDelay: 2, CooldownUp: 1, CooldownDown: 1,
		Observer: func(e Event) { kinds = append(kinds, e.Kind) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want = 2
	m.Observe(Signals{})
	eng.RunUntil(sim.Time(3))
	want = 1
	m.Observe(Signals{})
	eng.RunUntil(sim.Time(6))
	got := fmt.Sprint(kinds)
	exp := fmt.Sprint([]EventKind{EventBootStart, EventJoin, EventDrainStart, EventPark})
	if got != exp {
		t.Fatalf("event stream %v, want %v", got, exp)
	}
}

func TestManagerServingIntegral(t *testing.T) {
	eng, _, m, want := testManager(t, 4, Config{InitialServing: 2, BootDelay: 1})
	// 2 serving on [0,10): integral 20.
	eng.RunUntil(sim.Time(10))
	*want = 3
	m.Observe(Signals{})
	eng.RunUntil(sim.Time(20))
	// Joined at t=11: 2×11 + 3×9 = 49.
	got := m.ServingIntegral(sim.Time(20))
	if got < 48.99 || got > 49.01 {
		t.Fatalf("ServingIntegral(20) = %g, want 49", got)
	}
}

func TestNewManagerRejectsBadShapes(t *testing.T) {
	eng := sim.NewEngine()
	w := 1
	if _, err := NewManager(eng, newFakePool(0), Config{Policy: holdAt{&w}}); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewManager(eng, newFakePool(2), Config{Policy: holdAt{&w}, MinServing: 5}); err == nil {
		t.Fatal("MinServing above pool size accepted")
	}
	if _, err := NewManager(eng, newFakePool(4), Config{Policy: holdAt{&w}, InitialServing: 1, MinServing: 2}); err == nil {
		t.Fatal("InitialServing below MinServing accepted")
	}
	if _, err := NewManager(eng, newFakePool(4), Config{}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

// BenchmarkAutoscaleTick pins the steady-state Observe path: a policy
// decision that changes nothing must not allocate (it runs every SLO window
// on every run with autoscale armed).
func BenchmarkAutoscaleTick(b *testing.B) {
	eng := sim.NewEngine()
	pool := newFakePool(8)
	m, err := NewManager(eng, pool, Config{Policy: TargetUtil{}, InitialServing: 4})
	if err != nil {
		b.Fatal(err)
	}
	sig := Signals{T: 1, Util: 0.6, Queue: 3, ArrivalRate: 100, Availability: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(sig)
	}
}
