// Package netsim models the clusters' networks: hosts and switches joined by
// duplex links, static shortest-path routing, and two transfer mechanisms
// chosen by message size class:
//
//   - Send: store-and-forward FIFO per link, for small RPC-style messages
//     (HTTP requests, memcached gets, heartbeats). Queueing delay emerges
//     naturally as links saturate.
//   - StartFlow: max-min fair bandwidth sharing with progressive filling,
//     for bulk transfers (HDFS blocks, shuffle segments, iperf streams).
//
// Link capacities and propagation delays are set by internal/cluster to the
// paper's measured values (§4.4: 100 Mbps Edison NICs, 1 Gbps Dell NICs and
// inter-switch links; RTTs of 1.3 ms E–E, 0.8 ms D–E, 0.24 ms D–D).
package netsim

import (
	"fmt"
	"math"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// Link is one direction of a cable: src -> dst with a capacity and a
// propagation delay. Duplex cables are two Links.
type Link struct {
	Src, Dst string
	Capacity units.BytesPerSec
	Delay    float64 // one-way propagation delay in seconds

	q     *sim.Resource // transmission FIFO for Send messages
	bytes units.Bytes   // cumulative bytes carried (messages + flows); may
	// lag behind live flow progress until Fabric.FlushProgress credits it
	flows []linkSlot // active max-min flows crossing this link
	dirty bool       // on the fabric's dirty list for the next reallocate
	mark  uint64     // epoch stamp for the dirty-component sweep
	// Water-filling working state, validity-stamped by wfPass so passes
	// need no per-pass map or clearing (see waterFill).
	wfPass uint64
	wfRem  float64
	wfCnt  int
	// scale rescales the effective capacity for fault injection: 1 is the
	// healthy default, (0,1) a degraded link, 0 a cut. It multiplies the
	// nameplate capacity exactly, so at 1 every float downstream — water
	// filling, Send transmission times — is bit-identical to the
	// pre-fault-injection arithmetic.
	scale float64
}

// linkSlot is one entry of a link's flow list: the crossing flow plus the
// index of this link in that flow's path, so swap-removal can repair the
// moved entry's back-pointer (Flow.linkPos) in O(1).
type linkSlot struct {
	fl      *Flow
	pathIdx int32
}

// Bytes reports the cumulative bytes carried over this link.
func (l *Link) Bytes() units.Bytes { return l.bytes }

// Scale reports the link's capacity scale (1 healthy, 0 cut).
func (l *Link) Scale() float64 { return l.scale }

// Down reports whether the link is cut.
func (l *Link) Down() bool { return l.scale == 0 }

// effCap is the scaled capacity in bytes/sec used by both transfer models.
func (l *Link) effCap() float64 { return float64(l.Capacity) * l.scale }

// Fabric is the network graph plus the active flow set.
type Fabric struct {
	eng      *sim.Engine
	vertices map[string]bool
	adj      map[string][]*Link
	links    []*Link
	routes   map[[2]string][]*Link

	// flows is the live max-min flow set. Maintained by swap-removal (each
	// flow carries its index), so iteration order is NOT admission order;
	// every pass that cares — water-filling arithmetic, completion
	// callbacks — orders on Flow.seq instead (affectedFlows sorts, the
	// completion heap ties on seq), keeping reruns bit-identical.
	flows    []*Flow
	epoch    uint64
	nextDone sim.EventRef

	// doneHeap is the indexed 4-ary min-heap of projected completion times
	// (see doneheap.go); one engine event is armed at its minimum.
	doneHeap []*Flow

	// freeFlows is the Flow record pool (see StartFlow); flowSeq stamps
	// each started flow so stale FlowRefs are detected after recycling.
	// freeMsgs is the message record pool (see Send).
	freeFlows []*Flow
	flowSeq   uint64
	freeMsgs  []*message

	// Reusable scratch so steady-state flow churn does not allocate: the
	// links touched by the current water-filling pass, the pending done
	// callbacks of one completion round, the affected-flow list of the
	// dirty-component sweep, the abort set of a link-cut storm, and the
	// bound completeFlows closure (allocated once instead of per re-arm).
	wfPass     uint64
	wfLinks    []*Link
	doneQueue  []func()
	affScratch []*Flow
	abortFlows []*Flow
	completeFn func()

	// dirtyLinks are the links dirtied by flow arrivals/departures/capacity
	// changes since the last pass; eager selects the retained reference
	// implementation (eager crediting + full recompute + linear
	// next-completion scan) instead of the lazy default.
	dirtyLinks []*Link
	eager      bool
}

// NewFabric returns an empty network on the engine.
func NewFabric(eng *sim.Engine) *Fabric {
	f := &Fabric{
		eng:      eng,
		vertices: make(map[string]bool),
		adj:      make(map[string][]*Link),
		routes:   make(map[[2]string][]*Link),
	}
	f.completeFn = f.completeFlows
	return f
}

// SetEagerReference switches the fabric to the retained reference
// implementation of flow accounting: progress is credited to every live
// flow on every event (the old eager advanceFlows), every water-filling
// pass recomputes all flows from scratch, and the next completion is found
// by a linear scan — O(flows) per event, semantically equivalent to the
// lazy default (pinned within tolerance by TestLazyMatchesEagerReference).
// It exists as the equivalence baseline and debugging fallback, and must be
// selected before any flow starts.
func (f *Fabric) SetEagerReference(on bool) {
	if len(f.flows) > 0 || len(f.doneHeap) > 0 {
		panic("netsim: SetEagerReference with live flows")
	}
	f.eager = on
}

// Engine returns the engine the fabric runs on.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// AddVertex registers a host or switch by name. Re-adding is a no-op.
func (f *Fabric) AddVertex(name string) {
	f.vertices[name] = true
}

// Connect joins a and b with a duplex cable of the given per-direction
// capacity and one-way propagation delay. Routes are invalidated.
func (f *Fabric) Connect(a, b string, capacity units.BytesPerSec, delay float64) {
	if !f.vertices[a] || !f.vertices[b] {
		panic(fmt.Sprintf("netsim: connect of unknown vertex %q or %q", a, b))
	}
	if capacity <= 0 {
		panic("netsim: non-positive link capacity")
	}
	for _, pair := range [][2]string{{a, b}, {b, a}} {
		l := &Link{Src: pair[0], Dst: pair[1], Capacity: capacity, Delay: delay,
			q: sim.NewResource(f.eng, 1), scale: 1}
		f.adj[pair[0]] = append(f.adj[pair[0]], l)
		f.links = append(f.links, l)
	}
	f.routes = make(map[[2]string][]*Link)
}

// ConnectAsym joins a -> b only, for asymmetric capacities.
func (f *Fabric) ConnectAsym(a, b string, capacity units.BytesPerSec, delay float64) {
	if !f.vertices[a] || !f.vertices[b] {
		panic(fmt.Sprintf("netsim: connect of unknown vertex %q or %q", a, b))
	}
	l := &Link{Src: a, Dst: b, Capacity: capacity, Delay: delay, q: sim.NewResource(f.eng, 1), scale: 1}
	f.adj[a] = append(f.adj[a], l)
	f.links = append(f.links, l)
	f.routes = make(map[[2]string][]*Link)
}

// Route returns the shortest path (in hops) from src to dst as directed
// links, memoized. It panics when no route exists: topologies are static and
// a missing route is a configuration bug.
func (f *Fabric) Route(src, dst string) []*Link {
	if src == dst {
		return nil
	}
	key := [2]string{src, dst}
	if p, ok := f.routes[key]; ok {
		return p
	}
	// BFS over vertices.
	prev := map[string]*Link{src: nil}
	queue := []string{src}
	for len(queue) > 0 && prev[dst] == nil {
		v := queue[0]
		queue = queue[1:]
		for _, l := range f.adj[v] {
			if _, seen := prev[l.Dst]; !seen {
				prev[l.Dst] = l
				queue = append(queue, l.Dst)
			}
		}
		if _, ok := prev[dst]; ok {
			break
		}
	}
	back, ok := prev[dst]
	if !ok || back == nil {
		panic(fmt.Sprintf("netsim: no route %s -> %s", src, dst))
	}
	var rev []*Link
	for l := back; l != nil; l = prev[l.Src] {
		rev = append(rev, l)
	}
	path := make([]*Link, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	f.routes[key] = path
	return path
}

// Latency reports the one-way propagation delay from src to dst (no
// queueing, no transmission), i.e. an idealized tiny-packet trip.
func (f *Fabric) Latency(src, dst string) float64 {
	var d float64
	for _, l := range f.Route(src, dst) {
		d += l.Delay
	}
	return d
}

// RTT reports Latency both ways, matching what ping measures on idle links.
func (f *Fabric) RTT(a, b string) float64 {
	return f.Latency(a, b) + f.Latency(b, a)
}

// SetVertexLinks rescales the effective capacity of every link adjacent to
// vertex v (both directions) to scale × nameplate: 1 restores the healthy
// link, a value in (0,1) degrades it, and 0 cuts it. Cutting is a departure
// storm for the max-min flow set: every active flow crossing a cut link is
// aborted without its done callback (the sender's timeout machinery owns
// recovery), handled by the same incremental dirty-component sweep as normal
// departures. Flows started while a link on their path is down are admitted
// at rate 0 and resume when the link is restored. In-flight Send messages
// reaching a cut link are dropped (see message.acquired).
func (f *Fabric) SetVertexLinks(v string, scale float64) {
	if !(scale >= 0) || math.IsInf(scale, 0) {
		panic(fmt.Sprintf("netsim: link scale %g must be finite and non-negative", scale))
	}
	if !f.vertices[v] {
		panic(fmt.Sprintf("netsim: SetVertexLinks of unknown vertex %q", v))
	}
	if f.eager {
		f.advanceFlows()
	}
	changed := false
	for _, l := range f.links {
		if (l.Src == v || l.Dst == v) && l.scale != scale {
			l.scale = scale
			f.markDirty(l)
			changed = true
		}
	}
	if !changed {
		return
	}
	if scale == 0 {
		f.abortCrossing()
	}
	f.reallocate()
}

// abortCrossing drops every active flow whose path contains a just-cut
// link (flows parked at rate 0 on an earlier, unrelated cut keep waiting).
// Aborted flows never run their done callbacks — the transfer is simply
// lost, like a TCP connection through a yanked cable. The cut links must
// already be marked dirty by the caller; in the lazy default the victims
// are found through the cut links' own flow lists (cost proportional to the
// crossing flows, not the live set) and credited just before recycling, per
// the lazy-crediting invariant.
func (f *Fabric) abortCrossing() {
	if f.eager {
		live := f.flows[:0]
		for _, fl := range f.flows {
			crossed := false
			for _, l := range fl.path {
				if l.dirty && l.Down() {
					crossed = true
					break
				}
			}
			if !crossed {
				fl.idx = int32(len(live))
				live = append(live, fl)
				continue
			}
			f.unlink(fl)
			f.recycleFlow(fl)
		}
		for i := len(live); i < len(f.flows); i++ {
			f.flows[i] = nil
		}
		f.flows = live
		return
	}
	// The just-cut links sit on the dirty list; collect their crossing
	// flows once (epoch-deduplicated), then retire each.
	f.epoch++
	victims := f.abortFlows[:0]
	for _, l := range f.dirtyLinks {
		if !l.Down() {
			continue
		}
		for _, s := range l.flows {
			if s.fl.mark != f.epoch {
				s.fl.mark = f.epoch
				victims = append(victims, s.fl)
			}
		}
	}
	for _, fl := range victims {
		f.credit(fl)
		f.unlink(fl)
		f.removeFlow(fl)
		f.heapRemove(fl)
		f.recycleFlow(fl)
	}
	for i := range victims {
		victims[i] = nil
	}
	f.abortFlows = victims[:0]
}

// TotalBytes reports bytes carried across all links (each hop counted),
// crediting any lazily deferred flow progress first.
func (f *Fabric) TotalBytes() units.Bytes {
	f.FlushProgress()
	var total units.Bytes
	for _, l := range f.links {
		total += l.bytes
	}
	return total
}
