package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// leafSpineFabric builds a 2-spine × 2-leaf × 4-host fat tree: 100 Mbps
// host access links, 1 Gbps leaf-spine uplinks (the platform_matrix shape).
func leafSpineFabric(eng *sim.Engine) (*Fabric, []string) {
	f := NewFabric(eng)
	var hosts []string
	for s := 0; s < 2; s++ {
		f.AddVertex(fmt.Sprintf("spine%d", s))
	}
	for l := 0; l < 2; l++ {
		leaf := fmt.Sprintf("leaf%d", l)
		f.AddVertex(leaf)
		for s := 0; s < 2; s++ {
			f.Connect(leaf, fmt.Sprintf("spine%d", s), units.Gbps(1), 0.1e-3)
		}
		for h := 0; h < 4; h++ {
			host := fmt.Sprintf("h%d-%d", l, h)
			f.AddVertex(host)
			f.Connect(host, leaf, units.Mbps(100), 0.2e-3)
			hosts = append(hosts, host)
		}
	}
	return f, hosts
}

// table6Fabric builds the paper's Table 6 testbed shape: 35 Edison-class
// hosts (100 Mbps NICs) spread over three access switches, a Dell-class
// host (1 Gbps NIC) on a fourth, 1 Gbps inter-switch links to a root.
func table6Fabric(eng *sim.Engine) (*Fabric, []string) {
	f := NewFabric(eng)
	f.AddVertex("root")
	var hosts []string
	for s := 0; s < 3; s++ {
		sw := fmt.Sprintf("esw%d", s)
		f.AddVertex(sw)
		f.Connect(sw, "root", units.Gbps(1), 0.1e-3)
		for h := 0; h < 12 && len(hosts) < 35; h++ {
			host := fmt.Sprintf("e%02d", len(hosts))
			f.AddVertex(host)
			f.Connect(host, sw, units.Mbps(100), 0.3e-3)
			hosts = append(hosts, host)
		}
	}
	f.AddVertex("dsw")
	f.Connect("dsw", "root", units.Gbps(1), 0.1e-3)
	f.AddVertex("dell")
	f.Connect("dell", "dsw", units.Gbps(1), 0.1e-3)
	hosts = append(hosts, "dell")
	return f, hosts
}

// driveTrace schedules the given flow trace on the fabric, sampling every
// flow's rate at fixed intervals and recording completion times. Returned
// slices are deterministic given the trace.
type flowEvent struct {
	at       float64
	src, dst string
	size     units.Bytes
}

func driveTrace(eng *sim.Engine, f *Fabric, trace []flowEvent) (doneTimes []sim.Time, rateSamples []float64) {
	refs := make([]FlowRef, len(trace))
	doneTimes = make([]sim.Time, len(trace))
	var horizon float64
	for i, fe := range trace {
		i, fe := i, fe
		eng.At(sim.Time(fe.at), func() {
			refs[i] = f.StartFlow(fe.src, fe.dst, fe.size, func() {
				doneTimes[i] = eng.Now()
			})
		})
		if fe.at > horizon {
			horizon = fe.at
		}
	}
	// Sample all live rates on a fixed grid spanning the arrival window.
	for k := 0; k < 400; k++ {
		eng.At(sim.Time(float64(k)*horizon/400), func() {
			for _, r := range refs {
				rateSamples = append(rateSamples, float64(r.Rate()))
			}
		})
	}
	eng.Run()
	return doneTimes, rateSamples
}

// randomTrace builds a reproducible arrival/departure mix: flow sizes span
// RPC-ish to HDFS-block-ish so completions interleave heavily with
// arrivals.
func randomTrace(rng *rand.Rand, hosts []string, n int) []flowEvent {
	trace := make([]flowEvent, n)
	for i := range trace {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		trace[i] = flowEvent{
			at:   rng.Float64() * 2.0,
			src:  src,
			dst:  dst,
			size: units.Bytes(1e4 + rng.Float64()*2e6),
		}
	}
	return trace
}

// close reports a ≈ b within a relative tolerance generous enough to absorb
// the lazy/eager float-accumulation difference (progress credited in one
// closed-form chunk per rate change vs one chunk per event) but far tighter
// than any behavioral divergence.
func closeTo(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-6*math.Max(math.Abs(a), math.Abs(b))+1e-9
}

// TestLazyMatchesEagerReference: on randomized flow traces over the
// leaf-spine and Table-6 topologies, the lazy default (dirty-component
// crediting + completion heap) must reproduce the eager reference
// implementation within float tolerance — same completion time per flow,
// same completion order, same sampled rates. Rate samples that land in the
// sliver between the two modes' completion instants (one mode has finished
// the flow, the other finishes it a few ulps later) are excused only when
// one side reads exactly 0.
func TestLazyMatchesEagerReference(t *testing.T) {
	builders := map[string]func(*sim.Engine) (*Fabric, []string){
		"leafSpine": leafSpineFabric,
		"table6":    table6Fabric,
	}
	for name, build := range builders {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				engLazy := sim.NewEngine()
				fabLazy, hosts := build(engLazy)
				engEager := sim.NewEngine()
				fabEager, _ := build(engEager)
				fabEager.SetEagerReference(true)

				trace := randomTrace(rand.New(rand.NewSource(seed)), hosts, 120)
				doneLazy, ratesLazy := driveTrace(engLazy, fabLazy, trace)
				doneEager, ratesEager := driveTrace(engEager, fabEager, trace)

				checkEquivalence(t, trace, doneLazy, doneEager, ratesLazy, ratesEager)
			})
		}
	}
}

func checkEquivalence(t *testing.T, trace []flowEvent, doneLazy, doneEager []sim.Time, ratesLazy, ratesEager []float64) {
	t.Helper()
	for i := range doneLazy {
		if (doneLazy[i] == 0) != (doneEager[i] == 0) {
			t.Fatalf("flow %d (%s->%s): finished in one mode only: %v (lazy) vs %v (eager)",
				i, trace[i].src, trace[i].dst, doneLazy[i], doneEager[i])
		}
		if !closeTo(float64(doneLazy[i]), float64(doneEager[i])) {
			t.Fatalf("flow %d (%s->%s): completion %v (lazy) != %v (eager)",
				i, trace[i].src, trace[i].dst, doneLazy[i], doneEager[i])
		}
	}
	// Completion order must match exactly (the heap ties on admission seq to
	// reproduce the eager sweep's order).
	orderOf := func(done []sim.Time) []int {
		order := make([]int, 0, len(done))
		for i, d := range done {
			if d != 0 {
				order = append(order, i)
			}
		}
		sort.SliceStable(order, func(a, b int) bool { return done[order[a]] < done[order[b]] })
		return order
	}
	ol, oe := orderOf(doneLazy), orderOf(doneEager)
	for i := range ol {
		if ol[i] != oe[i] {
			// Permit swaps between flows whose completions are within
			// tolerance of each other — their order is float noise.
			if closeTo(float64(doneLazy[ol[i]]), float64(doneLazy[oe[i]])) {
				continue
			}
			t.Fatalf("completion order diverged at position %d: flow %d (lazy) vs %d (eager)", i, ol[i], oe[i])
		}
	}
	if len(ratesLazy) != len(ratesEager) {
		t.Fatalf("sample count %d != %d", len(ratesLazy), len(ratesEager))
	}
	for i := range ratesLazy {
		if ratesLazy[i] == ratesEager[i] {
			continue
		}
		if ratesLazy[i] == 0 || ratesEager[i] == 0 {
			continue // sample landed between the modes' completion instants
		}
		if !closeTo(ratesLazy[i], ratesEager[i]) {
			t.Fatalf("rate sample %d: %v (lazy) != %v (eager)",
				i, ratesLazy[i], ratesEager[i])
		}
	}
}

// faultStorm schedules link cut/degrade/restore storms against a couple of
// vertices: mass simultaneous rate changes, aborted crossing flows, and
// rate-0 admissions that must wait for restore — the paths most likely to
// break the lazy-crediting invariant.
func faultStorm(eng *sim.Engine, f *Fabric, victims []string) {
	for i, v := range victims {
		v := v
		base := 0.35 + 0.1*float64(i)
		eng.At(sim.Time(base), func() { f.SetVertexLinks(v, 0) })        // cut
		eng.At(sim.Time(base+0.3), func() { f.SetVertexLinks(v, 0.25) }) // partial restore, degraded
		eng.At(sim.Time(base+0.7), func() { f.SetVertexLinks(v, 1) })    // healthy
	}
}

// TestLazyMatchesEagerReferenceWithFaults runs the same lockstep comparison
// through link cut/degrade storms. Flows whose completion (in either mode)
// lands within a hair of a fault instant are excused from the per-flow
// checks: a cut arriving a few ulps before vs after a completion flips the
// flow between finished and aborted, which is fault-timing noise, not a
// divergence. The seeds are chosen so at most a handful of flows hit that
// window.
func TestLazyMatchesEagerReferenceWithFaults(t *testing.T) {
	builders := map[string]struct {
		build   func(*sim.Engine) (*Fabric, []string)
		victims []string
	}{
		"leafSpine": {leafSpineFabric, []string{"h0-1", "leaf1"}},
		"table6":    {table6Fabric, []string{"e05", "esw2"}},
	}
	for name, tc := range builders {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				engLazy := sim.NewEngine()
				fabLazy, hosts := tc.build(engLazy)
				faultStorm(engLazy, fabLazy, tc.victims)
				engEager := sim.NewEngine()
				fabEager, _ := tc.build(engEager)
				fabEager.SetEagerReference(true)
				faultStorm(engEager, fabEager, tc.victims)

				trace := randomTrace(rand.New(rand.NewSource(seed)), hosts, 120)
				doneLazy, ratesLazy := driveTrace(engLazy, fabLazy, trace)
				doneEager, ratesEager := driveTrace(engEager, fabEager, trace)

				finLazy, finEager, aborted := 0, 0, 0
				for i := range doneLazy {
					if doneLazy[i] != 0 {
						finLazy++
					}
					if doneEager[i] != 0 {
						finEager++
					}
					if (doneLazy[i] == 0) != (doneEager[i] == 0) {
						aborted++
						continue
					}
					if doneLazy[i] == 0 {
						continue // aborted in both modes
					}
					if !closeTo(float64(doneLazy[i]), float64(doneEager[i])) {
						t.Fatalf("flow %d (%s->%s): completion %v (lazy) != %v (eager)",
							i, trace[i].src, trace[i].dst, doneLazy[i], doneEager[i])
					}
				}
				if aborted > 2 {
					t.Fatalf("%d flows flipped finished/aborted across modes (fault-window noise budget is 2)", aborted)
				}
				if finLazy == len(trace) || finLazy == 0 {
					t.Fatalf("fault storm had no effect: %d/%d flows finished (lazy)", finLazy, len(trace))
				}
				mismatched := 0
				for i := range ratesLazy {
					if ratesLazy[i] == ratesEager[i] || ratesLazy[i] == 0 || ratesEager[i] == 0 {
						continue
					}
					if !closeTo(ratesLazy[i], ratesEager[i]) {
						mismatched++
					}
				}
				if mismatched > 0 {
					t.Fatalf("%d rate samples diverged beyond tolerance", mismatched)
				}
			})
		}
	}
}

// TestFlowChurnSteadyStateNoAlloc pins the whole lazy flow path — StartFlow,
// admission, dirty-component water-filling, heap re-keying, completion — at
// zero allocations per flow once the pools and scratch have warmed up.
func TestFlowChurnSteadyStateNoAlloc(t *testing.T) {
	eng := sim.NewEngine()
	f, hosts := leafSpineFabric(eng)
	// Warm: pools, route cache, heap/scratch capacity.
	for i := 0; i < 3; i++ {
		for j := 0; j < len(hosts); j++ {
			f.StartFlow(hosts[j], hosts[(j+3)%len(hosts)], units.Bytes(1e5), nil)
		}
		eng.RunUntil(eng.Now() + 1)
	}
	avg := testing.AllocsPerRun(200, func() {
		f.StartFlow(hosts[0], hosts[5], units.Bytes(2e5), nil)
		f.StartFlow(hosts[1], hosts[6], units.Bytes(1e5), nil)
		eng.RunUntil(eng.Now() + 1)
	})
	if avg != 0 {
		t.Fatalf("steady-state flow churn allocates %.2f allocs/op, want 0", avg)
	}
}

// TestIncrementalSkipsUntouchedComponent: a flow in a disjoint component
// keeps its exact rate object through churn elsewhere, and the dirty-link
// list drains after every pass.
func TestIncrementalSkipsUntouchedComponent(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng)
	for _, v := range []string{"a", "b", "c", "d", "sw1", "sw2"} {
		f.AddVertex(v)
	}
	f.Connect("a", "sw1", units.Mbps(100), 0)
	f.Connect("b", "sw1", units.Mbps(100), 0)
	f.Connect("c", "sw2", units.Mbps(100), 0)
	f.Connect("d", "sw2", units.Mbps(100), 0)
	// Long-lived flow in the c/d component.
	long := f.StartFlow("c", "d", units.Bytes(125e6), nil)
	// Churn in the a/b component.
	for i := 0; i < 5; i++ {
		f.StartFlow("a", "b", units.Bytes(1e5), nil)
	}
	eng.RunUntil(1)
	if got := float64(long.Rate()); got != 12.5e6 {
		t.Fatalf("untouched flow rate %v, want 12.5e6", got)
	}
	if len(f.dirtyLinks) != 0 {
		t.Fatalf("%d dirty links left after passes, want 0", len(f.dirtyLinks))
	}
	eng.Run()
	if !long.Finished() {
		t.Fatal("long flow never finished")
	}
}

// BenchmarkFlowChurnManyComponents measures reallocation cost with many
// disjoint active components: 128 long-lived pair flows plus churn on one
// pair — the platform_matrix many-nodes shape. The lazy pass only touches
// the churning component; the eager variant is the retained reference
// (credit + recompute every component on every event).
func BenchmarkFlowChurnManyComponents(b *testing.B) {
	for _, mode := range []struct {
		name  string
		eager bool
	}{{"lazy", false}, {"eager", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := sim.NewEngine()
			f := NewFabric(eng)
			f.SetEagerReference(mode.eager)
			const pairs = 128
			hosts := make([][2]string, pairs)
			for i := 0; i < pairs; i++ {
				sw := fmt.Sprintf("sw%d", i)
				a, c := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
				f.AddVertex(sw)
				f.AddVertex(a)
				f.AddVertex(c)
				f.Connect(a, sw, units.Gbps(1), 0)
				f.Connect(c, sw, units.Gbps(1), 0)
				hosts[i] = [2]string{a, c}
			}
			// Keep every pair busy with an effectively infinite background flow.
			for i := 0; i < pairs; i++ {
				f.StartFlow(hosts[i][0], hosts[i][1], units.Bytes(1e18), nil)
			}
			eng.RunUntil(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.StartFlow(hosts[0][0], hosts[0][1], units.Bytes(1e6), nil)
				eng.RunUntil(eng.Now() + 1)
			}
		})
	}
}
