package netsim

import (
	"fmt"
	"math/rand"
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// leafSpineFabric builds a 2-spine × 2-leaf × 4-host fat tree: 100 Mbps
// host access links, 1 Gbps leaf-spine uplinks (the platform_matrix shape).
func leafSpineFabric(eng *sim.Engine) (*Fabric, []string) {
	f := NewFabric(eng)
	var hosts []string
	for s := 0; s < 2; s++ {
		f.AddVertex(fmt.Sprintf("spine%d", s))
	}
	for l := 0; l < 2; l++ {
		leaf := fmt.Sprintf("leaf%d", l)
		f.AddVertex(leaf)
		for s := 0; s < 2; s++ {
			f.Connect(leaf, fmt.Sprintf("spine%d", s), units.Gbps(1), 0.1e-3)
		}
		for h := 0; h < 4; h++ {
			host := fmt.Sprintf("h%d-%d", l, h)
			f.AddVertex(host)
			f.Connect(host, leaf, units.Mbps(100), 0.2e-3)
			hosts = append(hosts, host)
		}
	}
	return f, hosts
}

// table6Fabric builds the paper's Table 6 testbed shape: 35 Edison-class
// hosts (100 Mbps NICs) spread over three access switches, a Dell-class
// host (1 Gbps NIC) on a fourth, 1 Gbps inter-switch links to a root.
func table6Fabric(eng *sim.Engine) (*Fabric, []string) {
	f := NewFabric(eng)
	f.AddVertex("root")
	var hosts []string
	for s := 0; s < 3; s++ {
		sw := fmt.Sprintf("esw%d", s)
		f.AddVertex(sw)
		f.Connect(sw, "root", units.Gbps(1), 0.1e-3)
		for h := 0; h < 12 && len(hosts) < 35; h++ {
			host := fmt.Sprintf("e%02d", len(hosts))
			f.AddVertex(host)
			f.Connect(host, sw, units.Mbps(100), 0.3e-3)
			hosts = append(hosts, host)
		}
	}
	f.AddVertex("dsw")
	f.Connect("dsw", "root", units.Gbps(1), 0.1e-3)
	f.AddVertex("dell")
	f.Connect("dell", "dsw", units.Gbps(1), 0.1e-3)
	hosts = append(hosts, "dell")
	return f, hosts
}

// driveTrace schedules the given flow trace on the fabric, sampling every
// flow's rate at fixed intervals and recording completion times. Returned
// slices are deterministic given the trace.
type flowEvent struct {
	at       float64
	src, dst string
	size     units.Bytes
}

func driveTrace(eng *sim.Engine, f *Fabric, trace []flowEvent) (doneTimes []sim.Time, rateSamples []float64) {
	refs := make([]FlowRef, len(trace))
	doneTimes = make([]sim.Time, len(trace))
	var horizon float64
	for i, fe := range trace {
		i, fe := i, fe
		eng.At(sim.Time(fe.at), func() {
			refs[i] = f.StartFlow(fe.src, fe.dst, fe.size, func() {
				doneTimes[i] = eng.Now()
			})
		})
		if fe.at > horizon {
			horizon = fe.at
		}
	}
	// Sample all live rates on a fixed grid spanning the arrival window.
	for k := 0; k < 400; k++ {
		eng.At(sim.Time(float64(k)*horizon/400), func() {
			for _, r := range refs {
				rateSamples = append(rateSamples, float64(r.Rate()))
			}
		})
	}
	eng.Run()
	return doneTimes, rateSamples
}

// randomTrace builds a reproducible arrival/departure mix: flow sizes span
// RPC-ish to HDFS-block-ish so completions interleave heavily with
// arrivals.
func randomTrace(rng *rand.Rand, hosts []string, n int) []flowEvent {
	trace := make([]flowEvent, n)
	for i := range trace {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		trace[i] = flowEvent{
			at:   rng.Float64() * 2.0,
			src:  src,
			dst:  dst,
			size: units.Bytes(1e4 + rng.Float64()*2e6),
		}
	}
	return trace
}

// TestIncrementalWaterFillingMatchesFull: on randomized flow traces over
// the leaf-spine and Table-6 topologies, the incremental (dirty-component)
// reallocation must reproduce the retained full recompute bit-identically —
// same sampled rates, same completion times, same event count.
func TestIncrementalWaterFillingMatchesFull(t *testing.T) {
	builders := map[string]func(*sim.Engine) (*Fabric, []string){
		"leafSpine": leafSpineFabric,
		"table6":    table6Fabric,
	}
	for name, build := range builders {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				engInc := sim.NewEngine()
				fabInc, hosts := build(engInc)
				engFull := sim.NewEngine()
				fabFull, _ := build(engFull)
				fabFull.SetFullReallocate(true)

				trace := randomTrace(rand.New(rand.NewSource(seed)), hosts, 120)
				doneInc, ratesInc := driveTrace(engInc, fabInc, trace)
				doneFull, ratesFull := driveTrace(engFull, fabFull, trace)

				for i := range doneInc {
					if doneInc[i] != doneFull[i] {
						t.Fatalf("flow %d (%s->%s): completion %v (incremental) != %v (full)",
							i, trace[i].src, trace[i].dst, doneInc[i], doneFull[i])
					}
				}
				if len(ratesInc) != len(ratesFull) {
					t.Fatalf("sample count %d != %d", len(ratesInc), len(ratesFull))
				}
				for i := range ratesInc {
					if ratesInc[i] != ratesFull[i] {
						t.Fatalf("rate sample %d: %v (incremental) != %v (full)",
							i, ratesInc[i], ratesFull[i])
					}
				}
				if engInc.Fired() != engFull.Fired() {
					t.Fatalf("event counts diverged: %d (incremental) != %d (full)",
						engInc.Fired(), engFull.Fired())
				}
			})
		}
	}
}

// TestIncrementalSkipsUntouchedComponent: a flow in a disjoint component
// keeps its exact rate object through churn elsewhere, and the dirty-link
// list drains after every pass.
func TestIncrementalSkipsUntouchedComponent(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng)
	for _, v := range []string{"a", "b", "c", "d", "sw1", "sw2"} {
		f.AddVertex(v)
	}
	f.Connect("a", "sw1", units.Mbps(100), 0)
	f.Connect("b", "sw1", units.Mbps(100), 0)
	f.Connect("c", "sw2", units.Mbps(100), 0)
	f.Connect("d", "sw2", units.Mbps(100), 0)
	// Long-lived flow in the c/d component.
	long := f.StartFlow("c", "d", units.Bytes(125e6), nil)
	// Churn in the a/b component.
	for i := 0; i < 5; i++ {
		f.StartFlow("a", "b", units.Bytes(1e5), nil)
	}
	eng.RunUntil(1)
	if got := float64(long.Rate()); got != 12.5e6 {
		t.Fatalf("untouched flow rate %v, want 12.5e6", got)
	}
	if len(f.dirtyLinks) != 0 {
		t.Fatalf("%d dirty links left after passes, want 0", len(f.dirtyLinks))
	}
	eng.Run()
	if !long.Finished() {
		t.Fatal("long flow never finished")
	}
}

// BenchmarkFlowChurnManyComponents measures reallocation cost with many
// disjoint active components: 128 long-lived pair flows plus churn on one
// pair — the platform_matrix many-nodes shape. The incremental pass only
// touches the churning component; the full variant is the retained
// reference recompute over every component on every event.
func BenchmarkFlowChurnManyComponents(b *testing.B) {
	for _, mode := range []struct {
		name string
		full bool
	}{{"incremental", false}, {"full", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := sim.NewEngine()
			f := NewFabric(eng)
			f.SetFullReallocate(mode.full)
			const pairs = 128
			hosts := make([][2]string, pairs)
			for i := 0; i < pairs; i++ {
				sw := fmt.Sprintf("sw%d", i)
				a, c := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
				f.AddVertex(sw)
				f.AddVertex(a)
				f.AddVertex(c)
				f.Connect(a, sw, units.Gbps(1), 0)
				f.Connect(c, sw, units.Gbps(1), 0)
				hosts[i] = [2]string{a, c}
			}
			// Keep every pair busy with an effectively infinite background flow.
			for i := 0; i < pairs; i++ {
				f.StartFlow(hosts[i][0], hosts[i][1], units.Bytes(1e18), nil)
			}
			eng.RunUntil(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.StartFlow(hosts[0][0], hosts[0][1], units.Bytes(1e6), nil)
				eng.RunUntil(eng.Now() + 1)
			}
		})
	}
}
