package netsim

import "edisim/internal/sim"

// Indexed min-heap of projected flow completion times.
//
// Lazy accounting makes a flow's completion closed-form — doneAt =
// lastT + remaining/rate while the rate is frozen — so the fabric keeps the
// live flows in a 4-ary min-heap keyed (doneAt, seq) and arms a single
// engine event at the heap minimum. Only re-water-filled flows are re-keyed
// (heapFix) and only completed/aborted flows are removed, so rescheduling
// after an arrival or departure costs O(component × log flows) instead of
// the old O(flows) next-completion scan. The heap mirrors the pooled 4-ary
// event kernel in internal/sim: concrete element type, no interface boxing,
// position indices stored on the records (Flow.heapPos, -1 when absent).
//
// Ties on doneAt break by admission sequence, so simultaneous completions
// pop — and run their done callbacks — in admission order, matching the
// old linear sweep.

// flowLess orders heap entries by (projected completion, admission seq).
func flowLess(a, b *Flow) bool {
	if a.doneAt != b.doneAt {
		return a.doneAt < b.doneAt
	}
	return a.seq < b.seq
}

// heapUp restores heap order moving the flow at position i toward the root.
func (f *Fabric) heapUp(i int) {
	h := f.doneHeap
	fl := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !flowLess(fl, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].heapPos = int32(i)
		i = p
	}
	h[i] = fl
	fl.heapPos = int32(i)
}

// heapDown restores heap order moving the flow at position i toward the
// leaves.
func (f *Fabric) heapDown(i int) {
	h := f.doneHeap
	n := len(h)
	fl := h[i]
	for {
		first := i*4 + 1
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if flowLess(h[c], h[m]) {
				m = c
			}
		}
		if !flowLess(h[m], fl) {
			break
		}
		h[i] = h[m]
		h[i].heapPos = int32(i)
		i = m
	}
	h[i] = fl
	fl.heapPos = int32(i)
}

// heapFix inserts the flow or restores its position after a doneAt change.
func (f *Fabric) heapFix(fl *Flow) {
	if fl.heapPos < 0 {
		fl.heapPos = int32(len(f.doneHeap))
		f.doneHeap = append(f.doneHeap, fl)
		f.heapUp(int(fl.heapPos))
		return
	}
	f.heapUp(int(fl.heapPos))
	f.heapDown(int(fl.heapPos))
}

// heapRemove deletes the flow from the heap; a no-op when absent.
func (f *Fabric) heapRemove(fl *Flow) {
	i := int(fl.heapPos)
	if i < 0 {
		return
	}
	n := len(f.doneHeap) - 1
	if i != n {
		f.doneHeap[i] = f.doneHeap[n]
		f.doneHeap[i].heapPos = int32(i)
	}
	f.doneHeap[n] = nil
	f.doneHeap = f.doneHeap[:n]
	if i < n {
		f.heapDown(i)
		f.heapUp(i)
	}
	fl.heapPos = -1
}

// heapPopMin removes and returns the earliest-completing flow.
func (f *Fabric) heapPopMin() *Flow {
	fl := f.doneHeap[0]
	f.heapRemove(fl)
	return fl
}

// armCompletion (re)arms the single pending-completion engine event at the
// heap minimum. With an empty heap no event is armed; flows at rate 0 are
// not in the heap (they cannot complete until a reallocation re-rates them).
func (f *Fabric) armCompletion() {
	if len(f.doneHeap) == 0 {
		f.nextDone.Cancel()
		f.nextDone = sim.EventRef{}
		return
	}
	at := f.doneHeap[0].doneAt
	if f.nextDone.Active() && f.nextDone.Time() == at {
		return
	}
	f.nextDone.Cancel()
	f.nextDone = f.eng.At(at, f.completeFn)
}
