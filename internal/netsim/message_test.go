package netsim

import (
	"testing"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// TestMessageRecordsRecycled: a delivered message returns its record to the
// pool and the next Send reuses it.
func TestMessageRecordsRecycled(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	f.Send("a", "b", 1000, nil)
	eng.Run()
	if got := len(f.freeMsgs); got != msgChunk {
		t.Fatalf("free list has %d records after delivery, want %d", got, msgChunk)
	}
	m1 := f.freeMsgs[len(f.freeMsgs)-1]
	f.Send("a", "b", 1000, nil)
	if len(f.freeMsgs) != msgChunk-1 {
		t.Fatal("record not taken from the pool")
	}
	eng.Run()
	if m2 := f.freeMsgs[len(f.freeMsgs)-1]; m1 != m2 {
		t.Fatal("record not reused from the pool")
	}
	if m1.done != nil || m1.path != nil {
		t.Fatal("recycled record retains its callback or path")
	}
}

// TestRoundTripSameHost: a self round trip still completes asynchronously,
// after two zero-delay events (request leg, reply leg).
func TestRoundTripSameHost(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	done := false
	f.RoundTrip("a", "a", 100, 100, func() { done = true })
	if done {
		t.Fatal("self round trip completed synchronously")
	}
	eng.Run()
	if !done {
		t.Fatal("self round trip never completed")
	}
	if eng.Fired() != 2 {
		t.Fatalf("self round trip fired %d events, want 2", eng.Fired())
	}
}

// TestSendSteadyStateNoAlloc: after warm-up, the per-request hot path —
// Send, RoundTrip and ProcShare.Submit — must not allocate, including when
// messages queue behind a busy link (the saturated-sweep regime).
func TestSendSteadyStateNoAlloc(t *testing.T) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Mbps(100), 0)
	cpu := sim.NewProcShare(eng, 2, 1000)
	fn := func() {}
	// Warm the pools, the route cache and the waiter ring.
	for i := 0; i < 10; i++ {
		f.Send("a", "b", 1000, fn)
		f.RoundTrip("a", "b", 100, 100, fn)
		cpu.Submit(1, fn)
		eng.Run()
	}
	cases := []struct {
		name string
		op   func()
	}{
		{"Send", func() { f.Send("a", "b", 1000, fn) }},
		{"RoundTrip", func() { f.RoundTrip("a", "b", 100, 100, fn) }},
		{"ProcShare.Submit", func() { cpu.Submit(1, fn) }},
		{"Send burst (queued)", func() {
			for j := 0; j < 8; j++ {
				f.Send("a", "b", 1000, fn)
			}
		}},
	}
	for _, c := range cases {
		allocs := testing.AllocsPerRun(500, func() {
			c.op()
			eng.Run()
		})
		if allocs > 0 {
			t.Errorf("%s allocates %.1f objects per op in steady state, want 0", c.name, allocs)
		}
	}
}

// BenchmarkSend measures the store-and-forward messaging path: one
// RPC-sized message over two hops, start to delivery.
func BenchmarkSend(b *testing.B) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Gbps(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Send("a", "b", 1000, nil)
		eng.Run()
	}
}

// BenchmarkSendQueued keeps 8 messages contending for the access link per
// round, the saturated shape where waiters queue.
func BenchmarkSendQueued(b *testing.B) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Gbps(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			f.Send("a", "b", 1000, nil)
		}
		eng.Run()
	}
}

// BenchmarkRoundTrip measures a full request/reply exchange on one pooled
// record.
func BenchmarkRoundTrip(b *testing.B) {
	eng := sim.NewEngine()
	f := lineFabric(eng, units.Gbps(1), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.RoundTrip("a", "b", 100, 100, nil)
		eng.Run()
	}
}
