package netsim

import (
	"edisim/internal/units"
)

// message is a pooled in-flight Send/RoundTrip record driven as a state
// machine: instead of allocating a fresh chain of closures per hop per
// message, each record carries its cursor (path + hop) and a set of
// continuations pre-bound once when the record is created, so steady-state
// messaging does not allocate. Records come from a fabric freelist (grown
// in chunks, like Flow and sim.Event records) and are recycled on final
// delivery. No handle type is exposed: a message is never cancellable or
// observable from user code, so — unlike Event/Flow — records need no
// sequence stamping; the record is owned by exactly one in-flight transfer
// from Send to delivery.
type message struct {
	fab  *Fabric
	path []*Link
	hop  int
	size units.Bytes
	done func()

	// RoundTrip support: when hasReply, final delivery of the request
	// re-launches the record as the reply leg (dst back to src) instead of
	// recycling it.
	hasReply  bool
	replySize units.Bytes
	src, dst  string

	// Pre-bound continuations, created once per record (amortized to zero
	// by the pool): acquired → transmission timer; transmitted → release
	// link, propagation timer; propagated → advance to the next hop.
	acqFn func()
	txFn  func()
	hopFn func()
}

// msgChunk is how many message records the freelist grows by at once.
const msgChunk = 64

// allocMsg takes a message record from the freelist, growing it when empty.
func (f *Fabric) allocMsg() *message {
	if len(f.freeMsgs) == 0 {
		chunk := make([]message, msgChunk)
		for i := range chunk {
			m := &chunk[i]
			m.fab = f
			m.acqFn = m.acquired
			m.txFn = m.transmitted
			m.hopFn = m.propagated
			f.freeMsgs = append(f.freeMsgs, m)
		}
	}
	m := f.freeMsgs[len(f.freeMsgs)-1]
	f.freeMsgs = f.freeMsgs[:len(f.freeMsgs)-1]
	return m
}

// recycleMsg returns the record to the pool. The path slice belongs to the
// route cache, so dropping the reference costs nothing.
func (f *Fabric) recycleMsg(m *message) {
	m.done = nil // release the closure for GC
	m.path = nil
	f.freeMsgs = append(f.freeMsgs, m)
}

// next advances the state machine: wait for the current hop's link, or
// deliver when past the last hop.
func (m *message) next() {
	if m.hop >= len(m.path) {
		m.deliver()
		return
	}
	m.path[m.hop].q.Acquire(m.acqFn)
}

// acquired runs when the current hop's link FIFO admits the message: hold
// the link for the transmission time. On a cut link the message is dropped
// silently — done never runs, like a frame on a dead cable; recovery belongs
// to the sender's timeout machinery. At scale 1 the transmission time is
// bit-identical to the unscaled capacity arithmetic (÷1.0 is exact).
func (m *message) acquired() {
	l := m.path[m.hop]
	if l.Down() {
		l.q.Release()
		m.fab.recycleMsg(m)
		return
	}
	m.fab.eng.After(float64(m.size)/l.effCap(), m.txFn)
}

// transmitted runs when the last byte leaves the link: free it for the next
// queued message and start propagation.
func (m *message) transmitted() {
	l := m.path[m.hop]
	l.q.Release()
	l.bytes += m.size
	m.fab.eng.After(l.Delay, m.hopFn)
}

// propagated runs when the last byte reaches the current hop's far end.
func (m *message) propagated() {
	m.hop++
	m.next()
}

// deliver runs when the message fully arrives at its destination: either
// turn the record around as the reply leg of a round trip, or finish.
func (m *message) deliver() {
	if m.hasReply {
		m.hasReply = false
		m.size = m.replySize
		if m.src == m.dst {
			// Same-host reply: zero-cost but still asynchronous.
			m.path = nil
			m.hop = 0
			m.fab.eng.After(0, m.hopFn)
			return
		}
		m.path = m.fab.Route(m.dst, m.src)
		m.hop = 0
		m.next()
		return
	}
	done := m.done
	m.fab.recycleMsg(m)
	if done != nil {
		done()
	}
}

// Send transmits a small message of size bytes from src to dst using
// store-and-forward FIFO links: at each hop the message waits for the link,
// occupies it for size/capacity seconds, then propagates. done runs when the
// last byte arrives at dst. Sending to self completes after a zero-cost
// event (still asynchronous, preserving causality).
//
// This is the right model for RPC-sized messages; use StartFlow for bulk
// data so that one big transfer does not head-of-line-block a link.
func (f *Fabric) Send(src, dst string, size units.Bytes, done func()) {
	if size < 0 {
		panic("netsim: negative message size")
	}
	if src == dst {
		f.eng.After(0, done)
		return
	}
	m := f.allocMsg()
	m.size = size
	m.done = done
	m.hasReply = false
	m.path = f.Route(src, dst)
	m.hop = 0
	m.next()
}

// RoundTrip sends a request of reqSize from src to dst, then a reply of
// respSize back; done runs when the reply fully arrives at src. The whole
// round trip rides one pooled record, so it does not allocate either.
func (f *Fabric) RoundTrip(src, dst string, reqSize, respSize units.Bytes, done func()) {
	if reqSize < 0 || respSize < 0 {
		panic("netsim: negative message size")
	}
	m := f.allocMsg()
	m.size = reqSize
	m.done = done
	m.hasReply = true
	m.replySize = respSize
	m.src, m.dst = src, dst
	if src == dst {
		// Same-host request leg: one zero-delay event, then deliver turns
		// the record around for the (also zero-delay) reply leg, matching
		// the two-event timeline of a self Send followed by a self Send.
		m.path = nil
		m.hop = 0
		f.eng.After(0, m.hopFn)
		return
	}
	m.path = f.Route(src, dst)
	m.hop = 0
	m.next()
}
