package netsim

import (
	"edisim/internal/units"
)

// Send transmits a small message of size bytes from src to dst using
// store-and-forward FIFO links: at each hop the message waits for the link,
// occupies it for size/capacity seconds, then propagates. done runs when the
// last byte arrives at dst. Sending to self completes after a zero-cost
// event (still asynchronous, preserving causality).
//
// This is the right model for RPC-sized messages; use StartFlow for bulk
// data so that one big transfer does not head-of-line-block a link.
func (f *Fabric) Send(src, dst string, size units.Bytes, done func()) {
	if size < 0 {
		panic("netsim: negative message size")
	}
	if src == dst {
		f.eng.After(0, done)
		return
	}
	path := f.Route(src, dst)
	f.sendHop(path, 0, size, done)
}

func (f *Fabric) sendHop(path []*Link, i int, size units.Bytes, done func()) {
	if i >= len(path) {
		if done != nil {
			done()
		}
		return
	}
	l := path[i]
	l.q.Acquire(func() {
		tx := l.Capacity.Seconds(size)
		f.eng.After(tx, func() {
			l.q.Release()
			l.bytes += size
			f.eng.After(l.Delay, func() {
				f.sendHop(path, i+1, size, done)
			})
		})
	})
}

// RoundTrip sends a request of reqSize from src to dst, then a reply of
// respSize back; done runs when the reply fully arrives at src.
func (f *Fabric) RoundTrip(src, dst string, reqSize, respSize units.Bytes, done func()) {
	f.Send(src, dst, reqSize, func() {
		f.Send(dst, src, respSize, done)
	})
}
