package netsim

import (
	"math"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// Flow is a bulk transfer receiving a max-min fair share of every link on
// its path. Rates are recomputed whenever any flow starts or finishes.
//
// Flow records are pooled on the fabric like sim.Event records: StartFlow
// takes one from a freelist (grown in chunks) and completion returns it, so
// the bulk-transfer hot path — one flow per HDFS block, shuffle segment or
// iperf stream — does not allocate in steady state. User code never holds
// *Flow directly; it holds FlowRef handles, which stay safe across
// recycling.
//
// Progress accounting is lazy (see the invariant in waterfill.go): a flow
// accumulates at its frozen rate from lastT without per-event bookkeeping,
// and credit brings remaining/lastT/link-byte counters up to now only when
// the rate is about to change or the flow leaves the fabric. Its projected
// completion is therefore closed-form (doneAt = lastT + remaining/rate) and
// lives in the fabric's completion heap (doneheap.go).
type Flow struct {
	Src, Dst string

	fab       *Fabric
	seq       uint64 // unique per start; 0 while on the freelist
	path      []*Link
	remaining float64 // bytes left as of lastT
	rate      float64 // bytes/sec, current allocation (frozen between passes)
	lastT     sim.Time
	done      func()
	frozen    bool // scratch flag for the water-filling pass

	idx     int32    // position in Fabric.flows
	heapPos int32    // position in the completion heap, -1 when absent
	doneAt  sim.Time // projected completion (heap key), valid while heapPos >= 0
	mark    uint64   // epoch stamp for the dirty-component sweep
	linkPos []int32  // position in each path link's flow list, parallel to path

	// Pre-bound continuations, created once per record (amortized to zero
	// by the pool) so StartFlow never allocates a closure: admission into
	// the bandwidth-sharing set after the propagation delay, and the
	// zero-cost completion of empty or same-host transfers.
	admitFn func()
	zeroFn  func()
}

// FlowRef is a cheap, copyable handle to a started flow. The zero value is
// inert. A ref stays valid-to-use after its flow completes: a dead ref
// reports Finished() == true and a zero rate.
type FlowRef struct {
	fl  *Flow
	seq uint64
}

// live reports whether the ref still names an in-flight flow.
func (r FlowRef) live() bool { return r.fl != nil && r.fl.seq == r.seq }

// Finished reports whether the transfer completed. The zero ref reports
// false (it never named a flow).
func (r FlowRef) Finished() bool { return r.fl != nil && !r.live() }

// Rate reports the current allocated rate in bytes/sec (0 once finished).
// The rate is always current — lazy accounting defers progress counters,
// never rate changes.
func (r FlowRef) Rate() units.BytesPerSec {
	if r.live() {
		return units.BytesPerSec(r.fl.rate)
	}
	return 0
}

// flowChunk is how many Flow records the freelist grows by at once.
const flowChunk = 64

// allocFlow takes a flow record from the freelist, growing it when empty.
func (f *Fabric) allocFlow() *Flow {
	if len(f.freeFlows) == 0 {
		chunk := make([]Flow, flowChunk)
		for i := range chunk {
			fl := &chunk[i]
			fl.fab = f
			fl.heapPos = -1
			fl.admitFn = fl.admit
			fl.zeroFn = fl.finishZero
			f.freeFlows = append(f.freeFlows, fl)
		}
	}
	fl := f.freeFlows[len(f.freeFlows)-1]
	f.freeFlows = f.freeFlows[:len(f.freeFlows)-1]
	return fl
}

// recycleFlow invalidates outstanding refs and returns the record to the
// pool. The path slice belongs to the route cache, so dropping the
// reference costs nothing; linkPos keeps its capacity for the next use.
func (f *Fabric) recycleFlow(fl *Flow) {
	fl.seq = 0
	fl.done = nil // release the closure for GC
	fl.path = nil
	fl.linkPos = fl.linkPos[:0]
	f.freeFlows = append(f.freeFlows, fl)
}

// StartFlow begins a bulk transfer of size bytes from src to dst; done runs
// when the last byte arrives. A zero-size flow completes via a zero-delay
// event. Same-host transfers skip the network (memory copy, modeled free).
func (f *Fabric) StartFlow(src, dst string, size units.Bytes, done func()) FlowRef {
	f.flowSeq++
	fl := f.allocFlow()
	fl.Src, fl.Dst = src, dst
	fl.seq = f.flowSeq
	fl.remaining = float64(size)
	fl.rate = 0
	fl.done = done
	fl.lastT = f.eng.Now()
	ref := FlowRef{fl: fl, seq: fl.seq}
	if src == dst || size == 0 {
		f.eng.After(0, fl.zeroFn)
		return ref
	}
	fl.path = f.Route(src, dst)
	// Propagation: first byte takes the path latency; model by delaying
	// admission of the flow into the bandwidth-sharing set.
	f.eng.After(f.Latency(src, dst), fl.admitFn)
	return ref
}

// finishZero completes an empty or same-host transfer: recycle first so the
// done callback can immediately reuse the record.
func (fl *Flow) finishZero() {
	f := fl.fab
	done := fl.done
	f.recycleFlow(fl)
	if done != nil {
		done()
	}
}

// admit adds the flow to the bandwidth-sharing set once its first byte has
// crossed the path, dirtying the path links for the incremental
// water-filling pass. Only the flow's connected component is touched: the
// lazy-crediting sweep in reallocate credits exactly the flows whose rate
// may change.
func (fl *Flow) admit() {
	f := fl.fab
	if f.eager {
		f.advanceFlows()
	}
	// The propagation window transferred nothing: advance lastT so the first
	// crediting pass doesn't pay the flow phantom bytes over [start, admit)
	// at its post-admission rate (the pre-lazy code had exactly that
	// double-count; the golden refresh covers the fix).
	fl.lastT = f.eng.Now()
	fl.idx = int32(len(f.flows))
	f.flows = append(f.flows, fl)
	fl.linkPos = fl.linkPos[:0]
	for i, l := range fl.path {
		fl.linkPos = append(fl.linkPos, int32(len(l.flows)))
		l.flows = append(l.flows, linkSlot{fl: fl, pathIdx: int32(i)})
		f.markDirty(l)
	}
	f.reallocate()
}

// credit brings one flow's lazy progress accounting up to now: remaining,
// lastT and the per-link byte counters. It MUST run before the flow's rate
// changes or the flow leaves the fabric (the lazy-crediting invariant, see
// waterfill.go). Idempotent at a fixed time.
func (f *Fabric) credit(fl *Flow) {
	now := f.eng.Now()
	dt := float64(now - fl.lastT)
	if dt > 0 && fl.rate > 0 {
		progress := fl.rate * dt
		if progress > fl.remaining {
			progress = fl.remaining
		}
		fl.remaining -= progress
		for _, l := range fl.path {
			l.bytes += units.Bytes(progress)
		}
	}
	fl.lastT = now
}

// advanceFlows credits progress to every active flow at its current rate —
// an O(flows) pass used by the eager reference mode on every event, and by
// FlushProgress on demand. The lazy default never calls it per event.
func (f *Fabric) advanceFlows() {
	for _, fl := range f.flows {
		f.credit(fl)
	}
}

// FlushProgress brings every live flow's lazy byte accounting up to now, so
// Link.Bytes and TotalBytes reflect all progress. Reports and assertions
// should call it (TotalBytes does so itself); the hot path never needs it.
func (f *Fabric) FlushProgress() { f.advanceFlows() }

// unlink removes the flow from its path links' flow lists (swap-remove via
// the linkPos back-pointers, O(path)) and marks the links dirty for the next
// reallocation pass.
func (f *Fabric) unlink(fl *Flow) {
	for i, l := range fl.path {
		pos := fl.linkPos[i]
		last := len(l.flows) - 1
		if int(pos) != last {
			moved := l.flows[last]
			l.flows[pos] = moved
			moved.fl.linkPos[moved.pathIdx] = pos
		}
		l.flows[last] = linkSlot{}
		l.flows = l.flows[:last]
		f.markDirty(l)
	}
}

// removeFlow drops the flow from the live set by swap-remove (lazy mode:
// admission order is restored where it matters by sorting affected
// components on seq; see affectedFlows).
func (f *Fabric) removeFlow(fl *Flow) {
	i := fl.idx
	last := len(f.flows) - 1
	if int(i) != last {
		f.flows[i] = f.flows[last]
		f.flows[i].idx = i
	}
	f.flows[last] = nil
	f.flows = f.flows[:last]
}

// completeFlows is the single pending-completion event: it finishes every
// flow whose projected completion has arrived, in (time, admission) order
// from the completion heap, then reallocates the perturbed components.
// Finished records are recycled before their done callbacks run, so a
// callback starting a new flow can reuse them immediately.
func (f *Fabric) completeFlows() {
	if f.eager {
		f.completeFlowsEager()
		return
	}
	f.nextDone = sim.EventRef{}
	now := f.eng.Now()
	// Collect done callbacks in the reusable queue. completeFlows never
	// nests (it only runs as an engine event), and callbacks append flows,
	// not callbacks, so iterating the queue below is safe.
	finished := f.doneQueue[:0]
	for len(f.doneHeap) > 0 && f.doneHeap[0].doneAt <= now {
		fl := f.heapPopMin()
		f.credit(fl)
		if fl.remaining > 0 {
			// Closed-form completion: the last float residue of the
			// transfer is delivered exactly at the projected instant.
			for _, l := range fl.path {
				l.bytes += units.Bytes(fl.remaining)
			}
			fl.remaining = 0
		}
		f.unlink(fl)
		f.removeFlow(fl)
		if fl.done != nil {
			finished = append(finished, fl.done)
		}
		f.recycleFlow(fl)
	}
	f.reallocate()
	for _, done := range finished {
		done()
	}
	for i := range finished {
		finished[i] = nil
	}
	f.doneQueue = finished[:0]
}

// completeFlowsEager is the reference-mode completion sweep: advance every
// flow eagerly and finish the drained ones in admission order, compacting
// the live set in place (the pre-lazy-accounting behavior).
func (f *Fabric) completeFlowsEager() {
	f.nextDone = sim.EventRef{}
	f.advanceFlows()
	const eps = 1 // byte tolerance
	finished := f.doneQueue[:0]
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.remaining <= eps {
			f.unlink(fl)
			if fl.done != nil {
				finished = append(finished, fl.done)
			}
			f.recycleFlow(fl)
		} else {
			fl.idx = int32(len(live))
			live = append(live, fl)
		}
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
	f.reallocate()
	for _, done := range finished {
		done()
	}
	for i := range finished {
		finished[i] = nil
	}
	f.doneQueue = finished[:0]
}

// rekey recomputes the flow's projected completion after a credit +
// possible rate change and fixes its heap position. Rate-0 flows (and the
// pathological non-finite projection) leave the heap: they cannot complete
// until a later reallocation re-rates them.
func (f *Fabric) rekey(fl *Flow, now sim.Time) {
	if fl.rate > 0 {
		at := now + sim.Time(fl.remaining/fl.rate)
		if !math.IsInf(float64(at), 0) {
			fl.doneAt = at
			f.heapFix(fl)
			return
		}
	}
	f.heapRemove(fl)
}

// ActiveFlows reports the number of in-flight bulk transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }
