package netsim

import (
	"math"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// Flow is a bulk transfer receiving a max-min fair share of every link on
// its path. Rates are recomputed whenever any flow starts or finishes.
type Flow struct {
	Src, Dst string

	fab       *Fabric
	path      []*Link
	remaining float64 // bytes left
	rate      float64 // bytes/sec, current allocation
	lastT     sim.Time
	done      func()
	finished  bool
	frozen    bool // scratch flag for the water-filling pass
}

// StartFlow begins a bulk transfer of size bytes from src to dst; done runs
// when the last byte arrives. A zero-size flow completes via a zero-delay
// event. Same-host transfers skip the network (memory copy, modeled free).
func (f *Fabric) StartFlow(src, dst string, size units.Bytes, done func()) *Flow {
	fl := &Flow{Src: src, Dst: dst, fab: f, remaining: float64(size), done: done,
		lastT: f.eng.Now()}
	if src == dst || size == 0 {
		f.eng.After(0, func() {
			fl.finished = true
			if done != nil {
				done()
			}
		})
		return fl
	}
	fl.path = f.Route(src, dst)
	// Propagation: first byte takes the path latency; model by delaying
	// admission of the flow into the bandwidth-sharing set.
	f.eng.After(f.Latency(src, dst), func() {
		f.advanceFlows()
		f.flows = append(f.flows, fl)
		for _, l := range fl.path {
			l.flowCount++
		}
		f.reallocate()
	})
	return fl
}

// Finished reports whether the transfer completed.
func (fl *Flow) Finished() bool { return fl.finished }

// Rate reports the current allocated rate in bytes/sec.
func (fl *Flow) Rate() units.BytesPerSec { return units.BytesPerSec(fl.rate) }

// advanceFlows credits progress to every active flow at its current rate.
func (f *Fabric) advanceFlows() {
	now := f.eng.Now()
	for _, fl := range f.flows {
		dt := float64(now - fl.lastT)
		if dt > 0 {
			progress := fl.rate * dt
			if progress > fl.remaining {
				progress = fl.remaining
			}
			fl.remaining -= progress
			for _, l := range fl.path {
				l.bytes += units.Bytes(progress)
			}
		}
		fl.lastT = now
	}
}

// reallocate runs progressive filling (water-filling) to a max-min fair
// allocation, then re-arms the single next-completion event.
func (f *Fabric) reallocate() {
	f.epoch++
	f.nextDone.Cancel()
	f.nextDone = sim.EventRef{}
	if len(f.flows) == 0 {
		return
	}

	type linkState struct {
		rem float64
		cnt int
	}
	state := make(map[*Link]*linkState)
	for _, fl := range f.flows {
		for _, l := range fl.path {
			if s, ok := state[l]; ok {
				s.cnt++
			} else {
				state[l] = &linkState{rem: float64(l.Capacity), cnt: 1}
			}
		}
	}
	unfrozen := len(f.flows)
	for _, fl := range f.flows {
		fl.frozen = false
	}
	for unfrozen > 0 {
		// Find the tightest link among links carrying unfrozen flows.
		minShare := math.Inf(1)
		for _, s := range state {
			if s.cnt > 0 {
				if share := s.rem / float64(s.cnt); share < minShare {
					minShare = share
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a link at the bottleneck share.
		progressed := false
		for _, fl := range f.flows {
			if fl.frozen {
				continue
			}
			bottlenecked := false
			for _, l := range fl.path {
				s := state[l]
				if s.cnt > 0 && s.rem/float64(s.cnt) <= minShare*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			fl.rate = minShare
			fl.frozen = true
			unfrozen--
			for _, l := range fl.path {
				s := state[l]
				s.rem -= minShare
				if s.rem < 0 {
					s.rem = 0
				}
				s.cnt--
			}
			progressed = true
		}
		if !progressed {
			break // numerical safety: should not happen
		}
	}

	// Re-arm the completion event for the earliest-finishing flow.
	next := math.Inf(1)
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	if next < 0 {
		next = 0
	}
	f.nextDone = f.eng.After(next, f.completeFlows)
}

// completeFlows advances progress and finishes every drained flow, in
// admission order, compacting the live set in place.
func (f *Fabric) completeFlows() {
	f.nextDone = sim.EventRef{}
	f.advanceFlows()
	const eps = 1 // byte tolerance
	var finished []*Flow
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.remaining <= eps {
			finished = append(finished, fl)
			for _, l := range fl.path {
				l.flowCount--
			}
			fl.finished = true
		} else {
			live = append(live, fl)
		}
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
	f.reallocate()
	for _, fl := range finished {
		if fl.done != nil {
			fl.done()
		}
	}
}

// ActiveFlows reports the number of in-flight bulk transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }
