package netsim

import (
	"math"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// Flow is a bulk transfer receiving a max-min fair share of every link on
// its path. Rates are recomputed whenever any flow starts or finishes.
//
// Flow records are pooled on the fabric like sim.Event records: StartFlow
// takes one from a freelist (grown in chunks) and completion returns it, so
// the bulk-transfer hot path — one flow per HDFS block, shuffle segment or
// iperf stream — does not allocate in steady state. User code never holds
// *Flow directly; it holds FlowRef handles, which stay safe across
// recycling.
type Flow struct {
	Src, Dst string

	fab       *Fabric
	seq       uint64 // unique per start; 0 while on the freelist
	path      []*Link
	remaining float64 // bytes left
	rate      float64 // bytes/sec, current allocation
	lastT     sim.Time
	done      func()
	frozen    bool // scratch flag for the water-filling pass
}

// FlowRef is a cheap, copyable handle to a started flow. The zero value is
// inert. A ref stays valid-to-use after its flow completes: a dead ref
// reports Finished() == true and a zero rate.
type FlowRef struct {
	fl  *Flow
	seq uint64
}

// live reports whether the ref still names an in-flight flow.
func (r FlowRef) live() bool { return r.fl != nil && r.fl.seq == r.seq }

// Finished reports whether the transfer completed. The zero ref reports
// false (it never named a flow).
func (r FlowRef) Finished() bool { return r.fl != nil && !r.live() }

// Rate reports the current allocated rate in bytes/sec (0 once finished).
func (r FlowRef) Rate() units.BytesPerSec {
	if r.live() {
		return units.BytesPerSec(r.fl.rate)
	}
	return 0
}

// flowChunk is how many Flow records the freelist grows by at once.
const flowChunk = 64

// allocFlow takes a flow record from the freelist, growing it when empty.
func (f *Fabric) allocFlow() *Flow {
	if len(f.freeFlows) == 0 {
		chunk := make([]Flow, flowChunk)
		for i := range chunk {
			chunk[i].fab = f
			f.freeFlows = append(f.freeFlows, &chunk[i])
		}
	}
	fl := f.freeFlows[len(f.freeFlows)-1]
	f.freeFlows = f.freeFlows[:len(f.freeFlows)-1]
	return fl
}

// recycleFlow invalidates outstanding refs and returns the record to the
// pool. The path slice belongs to the route cache, so dropping the
// reference costs nothing.
func (f *Fabric) recycleFlow(fl *Flow) {
	fl.seq = 0
	fl.done = nil // release the closure for GC
	fl.path = nil
	f.freeFlows = append(f.freeFlows, fl)
}

// StartFlow begins a bulk transfer of size bytes from src to dst; done runs
// when the last byte arrives. A zero-size flow completes via a zero-delay
// event. Same-host transfers skip the network (memory copy, modeled free).
func (f *Fabric) StartFlow(src, dst string, size units.Bytes, done func()) FlowRef {
	f.flowSeq++
	fl := f.allocFlow()
	fl.Src, fl.Dst = src, dst
	fl.seq = f.flowSeq
	fl.remaining = float64(size)
	fl.rate = 0
	fl.done = done
	fl.lastT = f.eng.Now()
	ref := FlowRef{fl: fl, seq: fl.seq}
	if src == dst || size == 0 {
		f.eng.After(0, func() {
			f.recycleFlow(fl)
			if done != nil {
				done()
			}
		})
		return ref
	}
	fl.path = f.Route(src, dst)
	// Propagation: first byte takes the path latency; model by delaying
	// admission of the flow into the bandwidth-sharing set.
	f.eng.After(f.Latency(src, dst), func() {
		f.advanceFlows()
		f.flows = append(f.flows, fl)
		for _, l := range fl.path {
			l.flowCount++
		}
		f.reallocate()
	})
	return ref
}

// advanceFlows credits progress to every active flow at its current rate.
func (f *Fabric) advanceFlows() {
	now := f.eng.Now()
	for _, fl := range f.flows {
		dt := float64(now - fl.lastT)
		if dt > 0 {
			progress := fl.rate * dt
			if progress > fl.remaining {
				progress = fl.remaining
			}
			fl.remaining -= progress
			for _, l := range fl.path {
				l.bytes += units.Bytes(progress)
			}
		}
		fl.lastT = now
	}
}

// reallocate runs progressive filling (water-filling) to a max-min fair
// allocation, then re-arms the single next-completion event.
func (f *Fabric) reallocate() {
	f.epoch++
	f.nextDone.Cancel()
	f.nextDone = sim.EventRef{}
	if len(f.flows) == 0 {
		return
	}

	// Build link states in the fabric's reusable scratch: the map is
	// cleared per pass and its entries point into an arena pre-sized to
	// the link count, so append below can never relocate live pointers.
	state := f.lsScratch
	clear(state)
	if cap(f.lsArena) < len(f.links) {
		f.lsArena = make([]linkState, 0, len(f.links))
	}
	f.lsArena = f.lsArena[:0]
	for _, fl := range f.flows {
		for _, l := range fl.path {
			if s, ok := state[l]; ok {
				s.cnt++
			} else {
				f.lsArena = append(f.lsArena, linkState{rem: float64(l.Capacity), cnt: 1})
				state[l] = &f.lsArena[len(f.lsArena)-1]
			}
		}
	}
	unfrozen := len(f.flows)
	for _, fl := range f.flows {
		fl.frozen = false
	}
	for unfrozen > 0 {
		// Find the tightest link among links carrying unfrozen flows.
		minShare := math.Inf(1)
		for _, s := range state {
			if s.cnt > 0 {
				if share := s.rem / float64(s.cnt); share < minShare {
					minShare = share
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a link at the bottleneck share.
		progressed := false
		for _, fl := range f.flows {
			if fl.frozen {
				continue
			}
			bottlenecked := false
			for _, l := range fl.path {
				s := state[l]
				if s.cnt > 0 && s.rem/float64(s.cnt) <= minShare*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			fl.rate = minShare
			fl.frozen = true
			unfrozen--
			for _, l := range fl.path {
				s := state[l]
				s.rem -= minShare
				if s.rem < 0 {
					s.rem = 0
				}
				s.cnt--
			}
			progressed = true
		}
		if !progressed {
			break // numerical safety: should not happen
		}
	}

	// Re-arm the completion event for the earliest-finishing flow.
	next := math.Inf(1)
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	if next < 0 {
		next = 0
	}
	f.nextDone = f.eng.After(next, f.completeFn)
}

// completeFlows advances progress and finishes every drained flow, in
// admission order, compacting the live set in place. Finished records are
// recycled before their done callbacks run, so a callback starting a new
// flow can reuse them immediately.
func (f *Fabric) completeFlows() {
	f.nextDone = sim.EventRef{}
	f.advanceFlows()
	const eps = 1 // byte tolerance
	// Collect done callbacks in the reusable queue. completeFlows never
	// nests (it only runs as an engine event), and callbacks append flows,
	// not callbacks, so iterating the queue below is safe.
	finished := f.doneQueue[:0]
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.remaining <= eps {
			for _, l := range fl.path {
				l.flowCount--
			}
			if fl.done != nil {
				finished = append(finished, fl.done)
			}
			f.recycleFlow(fl)
		} else {
			live = append(live, fl)
		}
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
	f.reallocate()
	for _, done := range finished {
		done()
	}
	for i := range finished {
		finished[i] = nil
	}
	f.doneQueue = finished[:0]
}

// ActiveFlows reports the number of in-flight bulk transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }
