package netsim

import (
	"math"

	"edisim/internal/sim"
	"edisim/internal/units"
)

// Flow is a bulk transfer receiving a max-min fair share of every link on
// its path. Rates are recomputed whenever any flow starts or finishes.
type Flow struct {
	Src, Dst string

	fab       *Fabric
	path      []*Link
	remaining float64 // bytes left
	rate      float64 // bytes/sec, current allocation
	lastT     sim.Time
	done      func()
	finished  bool
}

// StartFlow begins a bulk transfer of size bytes from src to dst; done runs
// when the last byte arrives. A zero-size flow completes via a zero-delay
// event. Same-host transfers skip the network (memory copy, modeled free).
func (f *Fabric) StartFlow(src, dst string, size units.Bytes, done func()) *Flow {
	fl := &Flow{Src: src, Dst: dst, fab: f, remaining: float64(size), done: done,
		lastT: f.eng.Now()}
	if src == dst || size == 0 {
		f.eng.After(0, func() {
			fl.finished = true
			if done != nil {
				done()
			}
		})
		return fl
	}
	fl.path = f.Route(src, dst)
	// Propagation: first byte takes the path latency; model by delaying
	// admission of the flow into the bandwidth-sharing set.
	f.eng.After(f.Latency(src, dst), func() {
		f.advanceFlows()
		f.flows[fl] = true
		for _, l := range fl.path {
			l.flowCount++
		}
		f.reallocate()
	})
	return fl
}

// Finished reports whether the transfer completed.
func (fl *Flow) Finished() bool { return fl.finished }

// Rate reports the current allocated rate in bytes/sec.
func (fl *Flow) Rate() units.BytesPerSec { return units.BytesPerSec(fl.rate) }

// advanceFlows credits progress to every active flow at its current rate.
func (f *Fabric) advanceFlows() {
	now := f.eng.Now()
	for fl := range f.flows {
		dt := float64(now - fl.lastT)
		if dt > 0 {
			progress := fl.rate * dt
			if progress > fl.remaining {
				progress = fl.remaining
			}
			fl.remaining -= progress
			for _, l := range fl.path {
				l.bytes += units.Bytes(progress)
			}
		}
		fl.lastT = now
	}
}

// reallocate runs progressive filling (water-filling) to a max-min fair
// allocation, then re-arms the single next-completion event.
func (f *Fabric) reallocate() {
	f.epoch++
	if f.nextDone != nil {
		f.nextDone.Cancel()
		f.nextDone = nil
	}
	if len(f.flows) == 0 {
		return
	}

	type linkState struct {
		rem float64
		cnt int
	}
	state := make(map[*Link]*linkState)
	for fl := range f.flows {
		for _, l := range fl.path {
			if s, ok := state[l]; ok {
				s.cnt++
			} else {
				state[l] = &linkState{rem: float64(l.Capacity), cnt: 1}
			}
		}
	}
	unfrozen := make(map[*Flow]bool, len(f.flows))
	for fl := range f.flows {
		unfrozen[fl] = true
	}
	for len(unfrozen) > 0 {
		// Find the tightest link among links carrying unfrozen flows.
		minShare := math.Inf(1)
		for _, s := range state {
			if s.cnt > 0 {
				if share := s.rem / float64(s.cnt); share < minShare {
					minShare = share
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Freeze every unfrozen flow crossing a link at the bottleneck share.
		progressed := false
		for fl := range unfrozen {
			bottlenecked := false
			for _, l := range fl.path {
				s := state[l]
				if s.cnt > 0 && s.rem/float64(s.cnt) <= minShare*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			fl.rate = minShare
			delete(unfrozen, fl)
			for _, l := range fl.path {
				s := state[l]
				s.rem -= minShare
				if s.rem < 0 {
					s.rem = 0
				}
				s.cnt--
			}
			progressed = true
		}
		if !progressed {
			break // numerical safety: should not happen
		}
	}

	// Re-arm the completion event for the earliest-finishing flow.
	next := math.Inf(1)
	for fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	if next < 0 {
		next = 0
	}
	f.nextDone = f.eng.After(next, f.completeFlows)
}

// completeFlows advances progress and finishes every drained flow.
func (f *Fabric) completeFlows() {
	f.nextDone = nil
	f.advanceFlows()
	const eps = 1 // byte tolerance
	var finished []*Flow
	for fl := range f.flows {
		if fl.remaining <= eps {
			finished = append(finished, fl)
		}
	}
	for _, fl := range finished {
		delete(f.flows, fl)
		for _, l := range fl.path {
			l.flowCount--
		}
		fl.finished = true
	}
	f.reallocate()
	for _, fl := range finished {
		if fl.done != nil {
			fl.done()
		}
	}
}

// ActiveFlows reports the number of in-flight bulk transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }
