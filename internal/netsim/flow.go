package netsim

import (
	"edisim/internal/sim"
	"edisim/internal/units"
)

// Flow is a bulk transfer receiving a max-min fair share of every link on
// its path. Rates are recomputed whenever any flow starts or finishes.
//
// Flow records are pooled on the fabric like sim.Event records: StartFlow
// takes one from a freelist (grown in chunks) and completion returns it, so
// the bulk-transfer hot path — one flow per HDFS block, shuffle segment or
// iperf stream — does not allocate in steady state. User code never holds
// *Flow directly; it holds FlowRef handles, which stay safe across
// recycling.
type Flow struct {
	Src, Dst string

	fab       *Fabric
	seq       uint64 // unique per start; 0 while on the freelist
	path      []*Link
	remaining float64 // bytes left
	rate      float64 // bytes/sec, current allocation
	lastT     sim.Time
	done      func()
	frozen    bool // scratch flag for the water-filling pass

	// Pre-bound continuations, created once per record (amortized to zero
	// by the pool) so StartFlow never allocates a closure: admission into
	// the bandwidth-sharing set after the propagation delay, and the
	// zero-cost completion of empty or same-host transfers.
	admitFn func()
	zeroFn  func()
}

// FlowRef is a cheap, copyable handle to a started flow. The zero value is
// inert. A ref stays valid-to-use after its flow completes: a dead ref
// reports Finished() == true and a zero rate.
type FlowRef struct {
	fl  *Flow
	seq uint64
}

// live reports whether the ref still names an in-flight flow.
func (r FlowRef) live() bool { return r.fl != nil && r.fl.seq == r.seq }

// Finished reports whether the transfer completed. The zero ref reports
// false (it never named a flow).
func (r FlowRef) Finished() bool { return r.fl != nil && !r.live() }

// Rate reports the current allocated rate in bytes/sec (0 once finished).
func (r FlowRef) Rate() units.BytesPerSec {
	if r.live() {
		return units.BytesPerSec(r.fl.rate)
	}
	return 0
}

// flowChunk is how many Flow records the freelist grows by at once.
const flowChunk = 64

// allocFlow takes a flow record from the freelist, growing it when empty.
func (f *Fabric) allocFlow() *Flow {
	if len(f.freeFlows) == 0 {
		chunk := make([]Flow, flowChunk)
		for i := range chunk {
			fl := &chunk[i]
			fl.fab = f
			fl.admitFn = fl.admit
			fl.zeroFn = fl.finishZero
			f.freeFlows = append(f.freeFlows, fl)
		}
	}
	fl := f.freeFlows[len(f.freeFlows)-1]
	f.freeFlows = f.freeFlows[:len(f.freeFlows)-1]
	return fl
}

// recycleFlow invalidates outstanding refs and returns the record to the
// pool. The path slice belongs to the route cache, so dropping the
// reference costs nothing.
func (f *Fabric) recycleFlow(fl *Flow) {
	fl.seq = 0
	fl.done = nil // release the closure for GC
	fl.path = nil
	f.freeFlows = append(f.freeFlows, fl)
}

// StartFlow begins a bulk transfer of size bytes from src to dst; done runs
// when the last byte arrives. A zero-size flow completes via a zero-delay
// event. Same-host transfers skip the network (memory copy, modeled free).
func (f *Fabric) StartFlow(src, dst string, size units.Bytes, done func()) FlowRef {
	f.flowSeq++
	fl := f.allocFlow()
	fl.Src, fl.Dst = src, dst
	fl.seq = f.flowSeq
	fl.remaining = float64(size)
	fl.rate = 0
	fl.done = done
	fl.lastT = f.eng.Now()
	ref := FlowRef{fl: fl, seq: fl.seq}
	if src == dst || size == 0 {
		f.eng.After(0, fl.zeroFn)
		return ref
	}
	fl.path = f.Route(src, dst)
	// Propagation: first byte takes the path latency; model by delaying
	// admission of the flow into the bandwidth-sharing set.
	f.eng.After(f.Latency(src, dst), fl.admitFn)
	return ref
}

// finishZero completes an empty or same-host transfer: recycle first so the
// done callback can immediately reuse the record.
func (fl *Flow) finishZero() {
	f := fl.fab
	done := fl.done
	f.recycleFlow(fl)
	if done != nil {
		done()
	}
}

// admit adds the flow to the bandwidth-sharing set once its first byte has
// crossed the path, dirtying the path links for the incremental
// water-filling pass.
func (fl *Flow) admit() {
	f := fl.fab
	f.advanceFlows()
	f.flows = append(f.flows, fl)
	for _, l := range fl.path {
		l.flowCount++
		f.markDirty(l)
	}
	f.reallocate()
}

// advanceFlows credits progress to every active flow at its current rate.
func (f *Fabric) advanceFlows() {
	now := f.eng.Now()
	for _, fl := range f.flows {
		dt := float64(now - fl.lastT)
		if dt > 0 {
			progress := fl.rate * dt
			if progress > fl.remaining {
				progress = fl.remaining
			}
			fl.remaining -= progress
			for _, l := range fl.path {
				l.bytes += units.Bytes(progress)
			}
		}
		fl.lastT = now
	}
}

// completeFlows advances progress and finishes every drained flow, in
// admission order, compacting the live set in place. Finished records are
// recycled before their done callbacks run, so a callback starting a new
// flow can reuse them immediately.
func (f *Fabric) completeFlows() {
	f.nextDone = sim.EventRef{}
	f.advanceFlows()
	const eps = 1 // byte tolerance
	// Collect done callbacks in the reusable queue. completeFlows never
	// nests (it only runs as an engine event), and callbacks append flows,
	// not callbacks, so iterating the queue below is safe.
	finished := f.doneQueue[:0]
	live := f.flows[:0]
	for _, fl := range f.flows {
		if fl.remaining <= eps {
			for _, l := range fl.path {
				l.flowCount--
				f.markDirty(l)
			}
			if fl.done != nil {
				finished = append(finished, fl.done)
			}
			f.recycleFlow(fl)
		} else {
			live = append(live, fl)
		}
	}
	for i := len(live); i < len(f.flows); i++ {
		f.flows[i] = nil
	}
	f.flows = live
	f.reallocate()
	for _, done := range finished {
		done()
	}
	for i := range finished {
		finished[i] = nil
	}
	f.doneQueue = finished[:0]
}

// ActiveFlows reports the number of in-flight bulk transfers.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }
